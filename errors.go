package starlink

import "starlink/internal/serrors"

// The structured error taxonomy. Every failure the framework reports —
// from deploy calls, registry mutations, Shutdown, and the drop events
// delivered to observers — is classified under one of these sentinels
// and asserted with errors.Is; the detailed message (case name,
// origin, configured bound) always travels with the sentinel via the
// wrapped error chain.
var (
	// ErrUnknownCase marks a reference to a merged automaton (a
	// "case") that is not loaded in the registry: deploying it,
	// unloading it, or selecting it for a dispatcher.
	ErrUnknownCase = serrors.ErrUnknownCase

	// ErrOverloaded marks work refused because a configured capacity
	// bound was hit: an initiator request beyond WithMaxSessions, or a
	// payload dropped from a full session inbox or ingest queue.
	ErrOverloaded = serrors.ErrOverloaded

	// ErrAmbiguousPayload marks an entry payload that classified under
	// more than one hosted case. The payload is still dispatched —
	// deterministically, to the lexicographically first case — and the
	// ambiguity reaches observers through OnClassify.
	ErrAmbiguousPayload = serrors.ErrAmbiguousPayload

	// ErrDraining marks work refused because the deployment is
	// draining: initiator requests arriving after Shutdown began, and
	// Sync calls on a draining dispatcher.
	ErrDraining = serrors.ErrDraining

	// ErrModelInvalid marks a model document (MDL, colored automaton
	// or merged automaton) that failed to parse or validate.
	ErrModelInvalid = serrors.ErrModelInvalid

	// ErrClosed marks an operation on a deployment that has already
	// been closed.
	ErrClosed = serrors.ErrClosed
)
