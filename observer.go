package starlink

import (
	"sync"
	"time"

	"starlink/internal/engine"
	"starlink/internal/netapi"
	"starlink/internal/provision"
	"starlink/internal/trace"
)

// TraceEvent is one flight-recorder entry: a pipeline stage boundary
// the session crossed. Stage is one of "classify", "recv", "parse",
// "transition", "translate", "compose", "send"; Outcome is "ok", "err"
// or "drop"; At is the offset from the arrival of the session's
// initiating payload; Bytes is the payload size where meaningful
// (ingress and egress stages), zero otherwise.
type TraceEvent struct {
	Stage   string
	At      time.Duration
	Bytes   int
	Outcome string
}

// FormatTrace renders a flight-recorder trace in its compact one-line
// text form, one "stage@offsetns+bytes=outcome" token per event,
// ';'-separated. The form round-trips exactly through ParseTrace.
func FormatTrace(evs []TraceEvent) string {
	return trace.FormatEvents(traceInternal(evs))
}

// ParseTrace parses the compact text form produced by FormatTrace.
// An empty string parses to no events.
func ParseTrace(s string) ([]TraceEvent, error) {
	evs, err := trace.ParseEvents(s)
	if err != nil {
		return nil, err
	}
	return traceEventsOf(evs), nil
}

// traceEventsOf converts internal recorder events to the public form.
func traceEventsOf(evs []trace.Event) []TraceEvent {
	if len(evs) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(evs))
	for i, ev := range evs {
		out[i] = TraceEvent{
			Stage:   ev.Stage.String(),
			At:      ev.At,
			Bytes:   ev.Bytes,
			Outcome: ev.Outcome.String(),
		}
	}
	return out
}

// traceInternal converts public trace events back to the internal
// form; unknown stage or outcome names are preserved as the recorder's
// "unknown" values so FormatTrace stays total.
func traceInternal(evs []TraceEvent) []trace.Event {
	if len(evs) == 0 {
		return nil
	}
	out := make([]trace.Event, len(evs))
	for i, ev := range evs {
		st := trace.Stage(trace.NumStages)
		for s := trace.Stage(0); int(s) < trace.NumStages; s++ {
			if s.String() == ev.Stage {
				st = s
				break
			}
		}
		o := trace.Outcome(3)
		for c := trace.Outcome(0); c < 3; c++ {
			if c.String() == ev.Outcome {
				o = c
				break
			}
		}
		out[i] = trace.Event{Stage: st, Outcome: o, At: ev.At, Bytes: ev.Bytes}
	}
	return out
}

// SessionStart announces an admitted session.
type SessionStart struct {
	// Case is the merged automaton bridging the session.
	Case string
	// Origin is the "ip:port" of the legacy client that opened it.
	Origin string
	// At is when the framework admitted the session.
	At time.Time
}

// SessionStats summarises one completed (or failed) bridge session
// (the paper's §VI translation-time measurement is the Duration
// field).
type SessionStats struct {
	// Case is the merged automaton that bridged the session.
	Case string
	// Origin is the "ip:port" of the legacy client that opened it.
	Origin string
	// Start is when the framework first received the request.
	Start time.Time
	// ReplyAt is when the first translated response was sent back to
	// the initiator — the endpoint of the paper's §VI translation-time
	// measurement. Zero if the session failed before replying.
	ReplyAt time.Time
	// End is when the session finished entirely.
	End time.Time
	// Duration is the paper's translation time: ReplyAt-Start when a
	// reply was sent, End-Start otherwise.
	Duration time.Duration
	// Err is non-nil when the session failed.
	Err error
	// Trace is the session's flight-recorder dump: the stage boundaries
	// it crossed, oldest first. Populated only when the session failed
	// (Err != nil) and the deployment's flight recorder is enabled (it
	// is by default; see WithFlightRecorder). Render with FormatTrace.
	Trace []TraceEvent
}

// Classification describes one entry payload classified by a
// dispatcher's shared listeners.
type Classification struct {
	// Case is the case the payload was dispatched to.
	Case string
	// Protocol and Message identify the classified entry message.
	Protocol string
	Message  string
	// Origin is the "ip:port" the payload came from.
	Origin string
	// Candidates lists every matching case when the classification was
	// ambiguous (nil otherwise).
	Candidates []string
	// Ambiguous reports whether more than one case matched.
	Ambiguous bool
	// FastPath reports whether the signature index classified the
	// payload without parsing.
	FastPath bool
	// Err is non-nil for ambiguous classifications, wrapping
	// ErrAmbiguousPayload.
	Err error
}

// CaseEvent announces a case (un)deployment. For a single-case Bridge
// the deploy event is emitted as DeployBridge returns, so on a
// real-socket runtime a fast client's first session events may be
// observed before it; dispatcher deploy events are emitted from the
// reconciliation loop, before the case serves traffic.
type CaseEvent struct {
	// Case is the merged automaton name.
	Case string
	// Generation is the registry generation the case's artifacts were
	// compiled at (zero for single-case bridges, which deploy outside
	// the reconciliation loop).
	Generation uint64
}

// Drop reports refused work with its structured reason: ErrOverloaded
// for capacity rejections and queue overflow, ErrDraining for
// initiator requests arriving mid-shutdown, ErrClosed for payloads
// reaching an already-closed case.
type Drop struct {
	// Case is the case that refused the work (empty when the drop
	// happened before a case was chosen).
	Case string
	// Origin is the "ip:port" the refused payload came from.
	Origin string
	// Reason classifies the refusal; assert with errors.Is.
	Reason error
}

// Observer receives every signal a deployment emits: session
// lifecycle, dispatch classification, case deploy/undeploy, and drops.
// Register observers with WithObserver; multiple observers compose
// into a chain invoked in registration order. Invocations are
// serialised per deployment, so implementations need no locking of
// their own unless shared across deployments.
//
// Callbacks run on the deployment's internal goroutines: keep them
// fast and non-blocking, and never call Close or Shutdown
// synchronously from inside a callback — those wait for the very
// goroutines the callback runs on. To tear a deployment down in
// reaction to an event, do it from a fresh goroutine.
//
// Implement the interface directly, or use Hooks to provide only the
// callbacks you need.
type Observer interface {
	OnSessionStart(SessionStart)
	OnSessionEnd(SessionStats)
	OnClassify(Classification)
	OnDeploy(CaseEvent)
	OnUndeploy(CaseEvent)
	OnDrop(Drop)
}

// Hooks adapts a set of optional callbacks into an Observer: nil
// fields are simply skipped. The zero Hooks observes nothing.
type Hooks struct {
	SessionStart func(SessionStart)
	SessionEnd   func(SessionStats)
	Classify     func(Classification)
	Deploy       func(CaseEvent)
	Undeploy     func(CaseEvent)
	Drop         func(Drop)
}

var _ Observer = Hooks{}

// OnSessionStart implements Observer.
func (h Hooks) OnSessionStart(e SessionStart) {
	if h.SessionStart != nil {
		h.SessionStart(e)
	}
}

// OnSessionEnd implements Observer.
func (h Hooks) OnSessionEnd(e SessionStats) {
	if h.SessionEnd != nil {
		h.SessionEnd(e)
	}
}

// OnClassify implements Observer.
func (h Hooks) OnClassify(e Classification) {
	if h.Classify != nil {
		h.Classify(e)
	}
}

// OnDeploy implements Observer.
func (h Hooks) OnDeploy(e CaseEvent) {
	if h.Deploy != nil {
		h.Deploy(e)
	}
}

// OnUndeploy implements Observer.
func (h Hooks) OnUndeploy(e CaseEvent) {
	if h.Undeploy != nil {
		h.Undeploy(e)
	}
}

// OnDrop implements Observer.
func (h Hooks) OnDrop(e Drop) {
	if h.Drop != nil {
		h.Drop(e)
	}
}

// observerChain fans one event out to every registered observer, in
// registration order. Its mutex is what delivers the Observer
// contract's "invocations are serialised per deployment": internal
// layers serialise only per engine, but a dispatcher hosts many
// engines (and emits classification events of its own), so the chain
// is the single point where all of a deployment's event sources
// converge. It also latches the undeploy notification so a bridge
// closed twice notifies once.
//
// obs is immutable after the chain is built (deployConfig collects
// observers before deployment), so the empty-chain fast path reads the
// length without taking the mutex: an empty chain costs a single
// branch on the hot path, no lock traffic.
type observerChain struct {
	obs  []Observer
	mu   sync.Mutex
	once sync.Once
}

func (c *observerChain) OnSessionStart(e SessionStart) {
	if len(c.obs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range c.obs {
		o.OnSessionStart(e)
	}
}

func (c *observerChain) OnSessionEnd(e SessionStats) {
	if len(c.obs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range c.obs {
		o.OnSessionEnd(e)
	}
}

func (c *observerChain) OnClassify(e Classification) {
	if len(c.obs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range c.obs {
		o.OnClassify(e)
	}
}

func (c *observerChain) OnDeploy(e CaseEvent) {
	if len(c.obs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range c.obs {
		o.OnDeploy(e)
	}
}

func (c *observerChain) OnUndeploy(e CaseEvent) {
	if len(c.obs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range c.obs {
		o.OnUndeploy(e)
	}
}

func (c *observerChain) OnDrop(e Drop) {
	if len(c.obs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range c.obs {
		o.OnDrop(e)
	}
}

func (c *observerChain) undeployOnce(e CaseEvent) {
	c.once.Do(func() { c.OnUndeploy(e) })
}

// statsOf converts engine session stats into the public form.
func statsOf(caseName string, s engine.SessionStats) SessionStats {
	return SessionStats{
		Case:     caseName,
		Origin:   s.Origin.String(),
		Start:    s.Start,
		ReplyAt:  s.ReplyAt,
		End:      s.End,
		Duration: s.Duration,
		Err:      s.Err,
		Trace:    traceEventsOf(s.Trace),
	}
}

// bridgeHooks wires the observer chain into a single-case engine. Each
// callback checks for an empty chain before building its event so the
// Addr→string conversions are never paid without an observer attached.
func bridgeHooks(caseName string, chain *observerChain) engine.Hooks {
	return engine.Hooks{
		SessionStart: func(origin netapi.Addr, at time.Time) {
			if len(chain.obs) == 0 {
				return
			}
			chain.OnSessionStart(SessionStart{Case: caseName, Origin: origin.String(), At: at})
		},
		SessionEnd: func(s engine.SessionStats) {
			if len(chain.obs) == 0 {
				return
			}
			chain.OnSessionEnd(statsOf(caseName, s))
		},
		Drop: func(origin netapi.Addr, reason error) {
			if len(chain.obs) == 0 {
				return
			}
			chain.OnDrop(Drop{Case: caseName, Origin: origin.String(), Reason: reason})
		},
	}
}

// dispatcherHooks wires the observer chain into a provisioning
// dispatcher.
func dispatcherHooks(chain *observerChain) provision.Hooks {
	return provision.Hooks{
		Deployed: func(caseName string, generation uint64) {
			chain.OnDeploy(CaseEvent{Case: caseName, Generation: generation})
		},
		Undeployed: func(caseName string) {
			chain.OnUndeploy(CaseEvent{Case: caseName})
		},
		SessionStart: func(caseName string, origin netapi.Addr, at time.Time) {
			if len(chain.obs) == 0 {
				return
			}
			chain.OnSessionStart(SessionStart{Case: caseName, Origin: origin.String(), At: at})
		},
		SessionEnd: func(caseName string, s engine.SessionStats) {
			if len(chain.obs) == 0 {
				return
			}
			chain.OnSessionEnd(statsOf(caseName, s))
		},
		Classified: func(ev provision.ClassifyEvent) {
			if len(chain.obs) == 0 {
				return
			}
			chain.OnClassify(Classification{
				Case:       ev.Case,
				Protocol:   ev.Protocol,
				Message:    ev.Message,
				Origin:     ev.Origin.String(),
				Candidates: ev.Candidates,
				Ambiguous:  ev.Ambiguous,
				FastPath:   ev.FastPath,
				Err:        ev.Err,
			})
		},
		Dropped: func(caseName string, origin netapi.Addr, reason error) {
			if len(chain.obs) == 0 {
				return
			}
			chain.OnDrop(Drop{Case: caseName, Origin: origin.String(), Reason: reason})
		},
	}
}
