// Allocation-regression tests for the pooled message fast path: the
// full parse → translate → compose round-trip of one bridged exchange
// must stay within a pinned allocation budget, so creeping per-packet
// garbage fails CI instead of surfacing as GC pressure under load.
package starlink_test

import (
	"testing"

	"starlink/internal/composer"
	"starlink/internal/message"
	"starlink/internal/parser"
	"starlink/internal/registry"
	"starlink/internal/translation"
)

// TestBridgeRoundTripAllocs drives the slp-to-upnp data path the way a
// session does — parse the SLP request, apply the translation logic
// for the SLP reply against the stored history, compose the reply —
// with every message returned to the pools, and pins the steady-state
// allocation count.
func TestBridgeRoundTripAllocs(t *testing.T) {
	reg, err := registry.Builtin()
	if err != nil {
		t.Fatal(err)
	}
	c, err := reg.Compiled("slp-to-upnp")
	if err != nil {
		t.Fatal(err)
	}
	slpSpec, _ := reg.Spec("SLP")
	p, err := parser.New(slpSpec, reg.Types())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := composer.New(slpSpec, reg.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// The initiator request on the wire.
	req := message.New("SLP", "SLPSrvRequest")
	req.AddPrimitive("Version", "Integer", message.Int(2))
	req.AddPrimitive("FunctionID", "Integer", message.Int(1))
	req.AddPrimitive("XID", "Integer", message.Int(42))
	req.AddPrimitive("LangTag", "String", message.Str("en"))
	req.AddPrimitive("SRVType", "String", message.Str("service:printer"))
	wire, err := comp.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	// The mid-session HTTP OK whose URLBase feeds the reply.
	httpOK := message.New("HTTP", "HTTPOk")
	httpOK.AddPrimitive("URLBase", "String", message.Str("http://10.0.0.7:5431/svc"))

	funcs := translation.NewFuncRegistry()
	roundTrip := func() {
		parsed, err := p.Parse(wire)
		if err != nil {
			t.Fatal(err)
		}
		out := message.NewPooled("SLP", "SLPSrvReply")
		env := translation.Env{Lookup: func(name string) *message.Message {
			switch name {
			case "SLPSrvRequest":
				return parsed
			case "HTTPOk":
				return httpOK
			}
			return nil
		}}
		if err := c.Merged.Logic.Apply(out, env, funcs); err != nil {
			t.Fatal(err)
		}
		if _, err := comp.Compose(out); err != nil {
			t.Fatal(err)
		}
		out.Release()
		parsed.Release()
	}
	roundTrip() // warm the pools

	// Budget: the measured steady state (~21 small allocations — value
	// strings, translated content, the composed wire) plus slack for
	// map-rehash jitter. The pre-PR pipeline spent several times this;
	// a budget breach means per-packet garbage crept back in.
	const budget = 40
	if got := testing.AllocsPerRun(200, roundTrip); got > budget {
		t.Errorf("bridge round-trip allocates %.1f per run, budget %d", got, budget)
	}
}
