// Package starlink is a Go implementation of the Starlink framework
// (Bromberg, Grace, Réveillère — "Starlink: runtime interoperability
// between heterogeneous middleware protocols", ICDCS 2011).
//
// Starlink makes two legacy systems that speak different middleware
// protocols interoperate at runtime, with no protocol-specific code:
// everything is driven by loadable high-level models —
//
//   - MDL specifications describing each protocol's message formats,
//     interpreted by generic parsers and composers;
//   - k-colored automata describing each protocol's behaviour and
//     network semantics (transport, ports, multicast, sync/async);
//   - merged automata chaining the protocols with δ-transitions and
//     carrying the translation logic that maps field content across.
//
// Quickstart (bridging an SLP client to a Bonjour service on the
// deterministic network simulator):
//
//	sim := simnet.New()
//	fw, _ := starlink.New(sim)
//	bridge, _ := fw.DeployBridge("10.0.0.5", "slp-to-bonjour")
//	defer bridge.Close()
//	// ... start a dnssd.Responder and an slp.UserAgent; the lookup
//	// completes across protocols, through the bridge.
//
// # Concurrency model
//
// The Automata Engine is a concurrent session runtime. Each initiator
// request opens a session keyed by (entry color, origin address) in a
// sharded session table; each session executes its
// receive→translate→compose loop on its own goroutine, fed by a
// bounded inbox channel. Inbound entry payloads are parsed and routed
// by a bounded ingest worker pool, and a max-sessions semaphore
// (WithMaxSessions) rejects initiator requests beyond the configured
// ceiling so overload degrades into dropped requests rather than
// unbounded memory growth. Timers and requester payloads post events
// into the session inbox instead of touching session state, so session
// state needs no locks. On the virtual-clock simulator the engine
// reports in-flight work through netapi.WorkTracker, which keeps
// simulated runs deterministic; see README.md for the full lifecycle.
//
// See examples/ for complete programs and DESIGN.md for the mapping
// from the paper's formal model to this implementation.
package starlink

import (
	"starlink/internal/core"
	"starlink/internal/engine"
	"starlink/internal/netapi"
	"starlink/internal/provision"
	"starlink/internal/registry"
)

// Framework is a Starlink deployment context: a model registry plus a
// network runtime (simulated or real).
type Framework = core.Framework

// Bridge is a deployed interoperability connector executing one merged
// automaton.
type Bridge = core.Bridge

// Registry is the mutable model store backing one or more frameworks.
type Registry = registry.Registry

// SessionStats summarises one bridged interaction (the paper's §VI
// translation-time measurement is the Duration field).
type SessionStats = engine.SessionStats

// BridgeOption configures a deployed bridge (observers, environment
// variables, timing).
type BridgeOption = engine.Option

// New creates a framework on the given runtime with the paper's
// case-study models preloaded (four protocol MDLs, eight colored
// automata, six merged automata).
func New(rt netapi.Runtime) (*Framework, error) { return core.New(rt) }

// NewEmpty creates a framework with no models loaded; use
// Framework.Registry to load your own MDL / automaton / merged
// automaton XML at runtime.
func NewEmpty(rt netapi.Runtime) *Framework { return core.NewEmpty(rt) }

// NewWithRegistry creates a framework sharing an existing model
// registry (and its warm compiled-case cache) — registries are
// runtime-independent, so one model corpus can back many deployments.
func NewWithRegistry(rt netapi.Runtime, reg *Registry) *Framework {
	return core.NewWithRegistry(rt, reg)
}

// WithObserver registers a per-session callback on a deployed bridge.
func WithObserver(fn func(SessionStats)) BridgeOption { return engine.WithObserver(fn) }

// WithVars injects bridge environment variables referenced by
// translation constants (e.g. ${bridge.host}).
func WithVars(vars map[string]string) BridgeOption { return engine.WithVars(vars) }

// WithMaxSessions bounds the number of concurrently live bridge
// sessions; initiator requests beyond the bound are rejected instead
// of queued.
func WithMaxSessions(n int) BridgeOption { return engine.WithMaxSessions(n) }

// Dispatcher is a multi-case bridge deployment: one daemon hosting
// every loaded case at once behind shared entry listeners, with
// inbound payloads classified to the right case by trial-parsing
// (see Framework.DeployDispatcher and internal/provision).
type Dispatcher = provision.Dispatcher

// DispatcherOption configures a deployed dispatcher.
type DispatcherOption = provision.Option

// WithEngineOptions passes bridge options to every engine a
// dispatcher deploys.
func WithEngineOptions(opts ...BridgeOption) DispatcherOption {
	return provision.WithEngineOptions(opts...)
}

// WithSessionObserver registers a per-session callback tagged with the
// case name that bridged the session.
func WithSessionObserver(fn func(caseName string, s SessionStats)) DispatcherOption {
	return provision.WithSessionObserver(fn)
}

// WithDispatchLogf routes dispatcher log lines (deploys, undeploys,
// ambiguous payload classifications) to fn.
func WithDispatchLogf(fn func(format string, args ...any)) DispatcherOption {
	return provision.WithLogf(fn)
}
