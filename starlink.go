// Package starlink is a Go implementation of the Starlink framework
// (Bromberg, Grace, Réveillère — "Starlink: runtime interoperability
// between heterogeneous middleware protocols", ICDCS 2011).
//
// Starlink makes two legacy systems that speak different middleware
// protocols interoperate at runtime, with no protocol-specific code:
// everything is driven by loadable high-level models —
//
//   - MDL specifications describing each protocol's message formats,
//     interpreted by generic parsers and composers;
//   - k-colored automata describing each protocol's behaviour and
//     network semantics (transport, ports, multicast, sync/async);
//   - merged automata chaining the protocols with δ-transitions and
//     carrying the translation logic that maps field content across.
//
// Quickstart (bridging an SLP client to a Bonjour service on the
// deterministic network simulator):
//
//	rt := starlink.Simulated()
//	fw, _ := starlink.New(rt)
//	bridge, _ := fw.DeployBridge(ctx, "10.0.0.5", "slp-to-bonjour")
//	defer bridge.Close()
//	// ... start a dnssd.Responder and an slp.UserAgent; the lookup
//	// completes across protocols, through the bridge.
//
// # Lifecycle
//
// Every deployment — a single-case Bridge or a multi-case Dispatcher —
// moves strictly forward through four states: Starting → Running →
// Draining → Closed. The context passed to DeployBridge and
// DeployDispatcher governs both the deploy and the deployment's
// lifetime (like exec.CommandContext): cancelling it closes the
// deployment, tearing down in-flight sessions through their
// per-session contexts. Shutdown(ctx) drains gracefully instead — no
// new sessions are admitted (late initiator requests are refused and
// observable as drops tagged ErrDraining), live sessions run to
// completion, and ctx bounds how long the drain may take. Close tears
// everything down immediately.
//
// # Errors
//
// Failures are classified under exported sentinels asserted with
// errors.Is: ErrUnknownCase (case not loaded), ErrModelInvalid (model
// failed to parse or validate), ErrOverloaded (capacity bound hit),
// ErrDraining (work refused mid-shutdown), ErrAmbiguousPayload
// (payload classified under several cases) and ErrClosed. The detailed
// message — case name, origin, bound — always travels with the
// sentinel.
//
// # Observability
//
// One Observer interface carries every signal: session start/end,
// dispatch classification, case deploy/undeploy, and drops with their
// structured reasons. Register any number with WithObserver (they
// compose into a chain), implement only what you need via Hooks, and
// read consistent counter snapshots at any time with
// Deployment.Metrics().
//
// Three deeper surfaces sit underneath the counters. Every session
// carries a flight recorder — a fixed-size, allocation-free ring of
// pipeline stage events (stage, offset from arrival, bytes, outcome)
// recorded at each stage boundary; a failed session's trace is dumped
// into SessionStats.Trace, live traces are visible through
// Deployment.Sessions, and WithFlightRecorder sizes or disables the
// ring. Every stage also feeds lock-free staged latency histograms,
// surfaced as quantile-and-bucket rows in Metrics.Latency (aggregate)
// and Metrics.CaseLatency (per case). And a Collector turns any set of
// deployments into an HTTP surface: Prometheus text exposition on
// /metrics and live debug pages (sessions, per-case breakdowns, trace
// dumps) under /debug/starlink/ — see cmd/starlinkd for the wired-up
// daemon.
//
// # Concurrency model
//
// The Automata Engine is a concurrent session runtime. Each initiator
// request opens a session keyed by (entry color, origin address) in a
// sharded session table; each session executes its
// receive→translate→compose loop on its own goroutine, fed by a
// bounded inbox channel. Inbound entry payloads flow through bounded,
// prioritized ingest lanes — control (session entry) over data
// (mid-session payloads) over telemetry (multicast chatter) — before a
// worker pool parses and routes them. Past the lanes' high watermark
// the transport read loops pause (releasing their buffers) and
// telemetry sheds first, control last (WithLanePolicy,
// WithWatermarks); a max-sessions semaphore (WithMaxSessions) bounds
// the live-session population on top. Both bounds surface as drops
// tagged ErrOverloaded, so overload degrades into dropped requests
// rather than unbounded memory growth. Timers and requester payloads
// post events
// into the session inbox instead of touching session state, so session
// state needs no locks. On the virtual-clock simulator the engine
// reports in-flight work through a work tracker, which keeps simulated
// runs deterministic; see README.md for the full lifecycle.
//
// See examples/ for complete programs and DESIGN.md for the mapping
// from the paper's formal model to this implementation.
package starlink

import (
	"context"
	"fmt"
	"sort"
	"time"

	"starlink/internal/core"
	"starlink/internal/engine"
	"starlink/internal/netapi"
	"starlink/internal/provision"
)

// State is a deployment's position in its lifecycle. Deployments move
// strictly forward: Starting → Running → (Draining →) Closed.
type State int

const (
	// StateStarting is the window before the deployment accepts
	// traffic.
	StateStarting State = iota
	// StateRunning accepts entry payloads and admits new sessions.
	StateRunning
	// StateDraining admits no new sessions but keeps delivering
	// payloads to the live ones so they can finish.
	StateDraining
	// StateClosed has released every listener, worker and session.
	StateClosed
)

// String names the state for logs and metrics.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// stateOf converts an engine lifecycle state to the public one.
func stateOf(s engine.State) State {
	switch s {
	case engine.StateStarting:
		return StateStarting
	case engine.StateRunning:
		return StateRunning
	case engine.StateDraining:
		return StateDraining
	default:
		return StateClosed
	}
}

// SessionInfo describes one currently live session: the case bridging
// it, its session-table key, the initiating client's address, when it
// started, and — when the flight recorder is enabled — the trace
// recorded so far.
type SessionInfo struct {
	Case   string
	Key    string
	Origin string
	Start  time.Time
	Trace  []TraceEvent
}

// Deployment is the management surface shared by every deployed
// connector — single-case bridges and multi-case dispatchers alike:
// lifecycle state, a consistent metrics snapshot, live session
// inspection, graceful drain and immediate teardown.
type Deployment interface {
	// State returns the deployment's lifecycle state.
	State() State
	// Metrics returns a consistent snapshot of the deployment's
	// counters and staged latency distributions.
	Metrics() Metrics
	// Sessions lists the currently live sessions, oldest first within
	// each case. Safe from any goroutine while sessions run; a live
	// trace may show an event mid-overwrite.
	Sessions() []SessionInfo
	// Shutdown drains gracefully: no new sessions, live ones run to
	// completion or until ctx expires, then everything is released.
	Shutdown(ctx context.Context) error
	// Close tears the deployment down immediately.
	Close() error
}

var (
	_ Deployment = (*Bridge)(nil)
	_ Deployment = (*Dispatcher)(nil)
)

// Framework is a Starlink deployment context: a model registry plus a
// network runtime (simulated or real).
type Framework struct {
	fw  *core.Framework
	reg *Registry
}

// New creates a framework on the given runtime with the paper's
// case-study models preloaded (four protocol MDLs, eight colored
// automata, six merged automata).
func New(rt *Runtime) (*Framework, error) {
	fw, err := core.New(rt.rt)
	if err != nil {
		return nil, err
	}
	return &Framework{fw: fw, reg: &Registry{r: fw.Registry()}}, nil
}

// NewEmpty creates a framework with no models loaded; use
// Framework.Registry to load your own MDL / automaton / merged
// automaton XML at runtime.
func NewEmpty(rt *Runtime) *Framework {
	fw := core.NewEmpty(rt.rt)
	return &Framework{fw: fw, reg: &Registry{r: fw.Registry()}}
}

// NewWithRegistry creates a framework sharing an existing model
// registry (and its warm compiled-case cache) — registries are
// runtime-independent, so one model corpus can back many deployments.
func NewWithRegistry(rt *Runtime, reg *Registry) *Framework {
	fw := core.NewWithRegistry(rt.rt, reg.r)
	return &Framework{fw: fw, reg: reg}
}

// Registry exposes the framework's model registry for loading,
// replacing and unloading models at runtime.
func (f *Framework) Registry() *Registry { return f.reg }

// DeployBridge creates a bridge host with the given IP, instantiates
// the named merged automaton on it and starts listening. The bridge is
// transparent: neither legacy side needs to know it exists.
//
// ctx governs both the deploy and the bridge's lifetime: a cancelled
// ctx aborts the deploy (releasing everything already created), and
// cancelling it later closes the bridge, tearing down in-flight
// sessions. Unknown case names fail with ErrUnknownCase.
func (f *Framework) DeployBridge(ctx context.Context, hostIP, caseName string, opts ...Option) (*Bridge, error) {
	cfg, err := compileOptions(targetBridge, opts)
	if err != nil {
		return nil, err
	}
	engOpts := cfg.engineOptions()
	if chain := cfg.chain(); chain != nil {
		engOpts = append(engOpts, engine.WithHooks(bridgeHooks(caseName, chain)))
	}
	b, err := f.fw.DeployBridge(ctx, hostIP, caseName, engOpts...)
	if err != nil {
		return nil, err
	}
	bridge := &Bridge{b: b, observers: cfg.chain()}
	bridge.notifyDeploy()
	if bridge.observers != nil {
		// Whatever path tears the bridge down — Close, Shutdown, or
		// cancellation of ctx — the observers hear about it exactly
		// once.
		go func() {
			<-b.Done()
			bridge.notifyUndeploy()
		}()
	}
	return bridge, nil
}

// DeployDispatcher creates a bridge host with the given IP and hosts
// the named cases on it — every loaded case when cases is empty —
// behind shared entry listeners, with inbound payloads classified to
// the right case (trial-parse or signature-index; see DESIGN.md).
//
// ctx follows the DeployBridge contract. Unknown case names fail with
// ErrUnknownCase. Call Sync after mutating the registry to pick up
// model changes with zero restart.
func (f *Framework) DeployDispatcher(ctx context.Context, hostIP string, cases []string, opts ...Option) (*Dispatcher, error) {
	cfg, err := compileOptions(targetDispatcher, opts)
	if err != nil {
		return nil, err
	}
	provOpts := cfg.provisionOptions()
	d, err := f.fw.DeployDispatcher(ctx, hostIP, cases, provOpts...)
	if err != nil {
		return nil, err
	}
	return &Dispatcher{d: d}, nil
}

// Bridge is a deployed interoperability connector executing one merged
// automaton.
type Bridge struct {
	b         *core.Bridge
	observers *observerChain
}

// Case returns the name of the merged automaton the bridge executes.
func (b *Bridge) Case() string { return b.b.Case }

// State returns the bridge's lifecycle state.
func (b *Bridge) State() State { return stateOf(b.b.Engine.State()) }

// Metrics returns a consistent snapshot of the bridge's session
// counters and staged latency distributions. The Dispatch section is
// zero for a single-case bridge.
func (b *Bridge) Metrics() Metrics {
	s := sessionMetricsOf(b.b.Engine.Stats())
	lat := latencyRowsOf(b.b.Engine.Latency())
	return Metrics{
		State:       b.State(),
		Sessions:    s,
		Cases:       map[string]SessionMetrics{b.b.Case: s},
		Latency:     lat,
		CaseLatency: map[string][]StageLatency{b.b.Case: lat},
		Lanes:       laneRowsOf(b.b.Engine.Lanes()),
		Transport:   transportMetricsOf(netapi.ReadIOStats()),
	}
}

// Sessions lists the bridge's currently live sessions, oldest first.
func (b *Bridge) Sessions() []SessionInfo {
	ls := b.b.Engine.LiveSessions()
	out := make([]SessionInfo, len(ls))
	for i, s := range ls {
		out[i] = SessionInfo{
			Case:   b.b.Case,
			Key:    s.Key,
			Origin: s.Origin.String(),
			Start:  s.Start,
			Trace:  traceEventsOf(s.Trace),
		}
	}
	return out
}

// Shutdown drains the bridge gracefully: no new sessions are admitted
// (late initiator requests surface as ErrDraining drops), live
// sessions run to completion, and ctx bounds the drain — on expiry the
// remaining sessions are torn down and the returned error wraps
// ctx.Err(). The bridge host is released either way.
func (b *Bridge) Shutdown(ctx context.Context) error {
	err := b.b.Shutdown(ctx)
	b.notifyUndeploy()
	return err
}

// Close undeploys the bridge immediately, tearing down in-flight
// sessions and releasing the bridge host.
func (b *Bridge) Close() error {
	err := b.b.Close()
	b.notifyUndeploy()
	return err
}

func (b *Bridge) notifyDeploy() {
	if b.observers != nil {
		b.observers.OnDeploy(CaseEvent{Case: b.b.Case})
	}
}

func (b *Bridge) notifyUndeploy() {
	if b.observers != nil {
		b.observers.undeployOnce(CaseEvent{Case: b.b.Case})
	}
}

// Dispatcher is a multi-case bridge deployment: one daemon hosting
// every selected case at once behind shared entry listeners, with
// inbound payloads classified to the right case.
type Dispatcher struct {
	d *provision.Dispatcher
}

// Cases lists the currently deployed case names, sorted.
func (d *Dispatcher) Cases() []string { return d.d.Cases() }

// Sync reconciles the hosted cases with the registry's current state:
// new cases are deployed, changed ones redeployed, unloaded ones
// undeployed. A Sync with nothing changed is a cheap no-op. Syncing a
// draining or closed dispatcher fails with ErrDraining / ErrClosed.
func (d *Dispatcher) Sync() error { return d.d.Sync() }

// State returns the dispatcher's lifecycle state.
func (d *Dispatcher) State() State { return stateOf(d.d.State()) }

// Metrics returns a consistent snapshot of the dispatcher's counters:
// per-case session metrics and staged latency distributions, their
// aggregates, and the classification counters and latencies of the
// shared entry listeners.
func (d *Dispatcher) Metrics() Metrics {
	m := Metrics{
		State:       d.State(),
		Dispatch:    dispatchMetricsOf(d.d.DispatchStats()),
		Cases:       map[string]SessionMetrics{},
		CaseLatency: map[string][]StageLatency{},
		Transport:   transportMetricsOf(netapi.ReadIOStats()),
	}
	for name, st := range d.d.Stats() {
		s := sessionMetricsOf(st)
		m.Cases[name] = s
		m.Sessions = m.Sessions.add(s)
	}
	var agg engine.LatencyDump
	for name, ld := range d.d.Latency() {
		m.CaseLatency[name] = latencyRowsOf(ld)
		agg.Merge(ld)
	}
	m.Latency = latencyRowsOf(agg)
	var laneAgg engine.LaneDump
	for _, ld := range d.d.Lanes() {
		laneAgg.Merge(ld)
	}
	m.Lanes = laneRowsOf(laneAgg)
	fast, slow := d.d.ClassifyLatency()
	m.Dispatch.FastPathLatency = stageLatencyOf("classify", fast)
	m.Dispatch.SlowPathLatency = stageLatencyOf("classify", slow)
	return m
}

// Sessions lists the dispatcher's currently live sessions across every
// hosted case, grouped by case name (sorted), oldest first within each.
func (d *Dispatcher) Sessions() []SessionInfo {
	byCase := d.d.LiveSessions()
	names := make([]string, 0, len(byCase))
	for name := range byCase {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []SessionInfo
	for _, name := range names {
		for _, s := range byCase[name] {
			out = append(out, SessionInfo{
				Case:   name,
				Key:    s.Key,
				Origin: s.Origin.String(),
				Start:  s.Start,
				Trace:  traceEventsOf(s.Trace),
			})
		}
	}
	return out
}

// Shutdown drains the dispatcher gracefully: every hosted case stops
// admitting new sessions immediately (late initiator requests surface
// as ErrDraining drops), live sessions keep receiving their
// mid-program entry payloads and run to completion, and once every
// case has drained — or ctx has expired — the dispatcher closes fully,
// releasing its listeners and host. The returned error wraps ctx.Err()
// if any case was torn down with sessions still live.
func (d *Dispatcher) Shutdown(ctx context.Context) error { return d.d.Shutdown(ctx) }

// Close undeploys everything immediately: listeners first (stopping
// inflow), then every case, tearing down their sessions and releasing
// the host.
func (d *Dispatcher) Close() error { return d.d.Close() }
