package starlink

import "starlink/internal/registry"

// Registry is the mutable model store backing one or more frameworks:
// MDL specifications, k-colored automata and merged automata, all
// loadable, replaceable and unloadable at runtime (the paper's §IV-A
// runtime extensibility). Every method is safe for concurrent use.
//
// A registry is runtime-independent — models and codecs hold no
// sockets — so one registry, with its compiled-case cache warm, can
// back any number of frameworks (NewWithRegistry).
type Registry struct {
	r *registry.Registry
}

// NewRegistry returns an empty model registry.
func NewRegistry() *Registry { return &Registry{r: registry.New()} }

// BuiltinRegistry returns a registry preloaded with every model of the
// paper's case study: four protocol MDLs, eight role-specific colored
// automata and six merged automata.
func BuiltinRegistry() (*Registry, error) {
	r, err := registry.Builtin()
	if err != nil {
		return nil, err
	}
	return &Registry{r: r}, nil
}

// LoadMDL parses, validates and indexes an MDL document; documents
// that fail either step are refused with ErrModelInvalid. Loading a
// protocol that already has an MDL is an error; use ReplaceMDL for
// replace semantics.
func (r *Registry) LoadMDL(doc string) error { return r.r.LoadMDL(doc) }

// LoadAutomaton parses, validates and indexes a colored automaton
// under a model name (e.g. "slp-server"). Loading a name twice is an
// error; use ReplaceAutomaton for replace semantics.
func (r *Registry) LoadAutomaton(name, doc string) error { return r.r.LoadAutomaton(name, doc) }

// LoadMerged parses, validates and indexes a merged automaton,
// resolving its automaton references against the registry. Loading a
// case name twice is an error; use ReplaceMerged for replace
// semantics.
func (r *Registry) LoadMerged(doc string) error { return r.r.LoadMerged(doc) }

// ReplaceMDL loads an MDL document, replacing any MDL already loaded
// for the protocol; every loaded merged automaton is re-resolved so no
// case keeps referencing the old spec. Replacing with an identical
// document is a no-op; changed reports whether anything was mutated.
func (r *Registry) ReplaceMDL(doc string) (changed bool, err error) { return r.r.ReplaceMDL(doc) }

// ReplaceAutomaton loads a colored automaton under a model name,
// replacing any automaton already loaded under it, with the same
// re-resolution and no-op semantics as ReplaceMDL.
func (r *Registry) ReplaceAutomaton(name, doc string) (changed bool, err error) {
	return r.r.ReplaceAutomaton(name, doc)
}

// ReplaceMerged loads a merged automaton document, replacing any case
// already loaded under its name and invalidating its compiled-case
// cache entry. Replacing with an identical document is a no-op.
func (r *Registry) ReplaceMerged(doc string) (changed bool, err error) {
	return r.r.ReplaceMerged(doc)
}

// Unload removes a merged automaton from the registry; unknown names
// fail with ErrUnknownCase. Deployments already running the case keep
// running; unloading only prevents new deployments (a dispatcher Sync
// undeploys it).
func (r *Registry) Unload(caseName string) error { return r.r.Unload(caseName) }

// Generation returns the registry's mutation generation: it starts at
// zero and increases on every effective mutation, so deployers can
// detect change cheaply.
func (r *Registry) Generation() uint64 { return r.r.Generation() }

// MergedNames lists the loaded case names, sorted.
func (r *Registry) MergedNames() []string { return r.r.MergedNames() }

// AutomatonNames lists the loaded automaton model names, sorted.
func (r *Registry) AutomatonNames() []string { return r.r.AutomatonNames() }

// Protocols lists the protocols with loaded MDLs, sorted.
func (r *Registry) Protocols() []string { return r.r.Protocols() }

// Backend exposes the underlying model store — a *registry.Registry
// from this module's internal packages. In-module tooling (the model
// directory watcher, mdlc, benchmarks) uses it to reach codec-level
// machinery; external users normally never need it.
func (r *Registry) Backend() any { return r.r }
