package starlink

import (
	"fmt"
	"time"

	"starlink/internal/engine"
	"starlink/internal/lanes"
	"starlink/internal/provision"
)

// Option configures a deployment. One option set serves both
// DeployBridge and DeployDispatcher; the few options that only make
// sense for one kind of deployment are scoped to it and rejected —
// with a descriptive error — when passed to the other, so a
// misconfiguration fails at deploy time instead of being silently
// ignored.
type Option struct {
	name  string
	scope deployTarget
	apply func(*deployConfig)
}

// deployTarget scopes an option to the deployments it applies to.
type deployTarget int

const (
	targetAny deployTarget = iota
	targetBridge
	targetDispatcher
)

func (t deployTarget) String() string {
	switch t {
	case targetBridge:
		return "bridge"
	case targetDispatcher:
		return "dispatcher"
	default:
		return "any"
	}
}

// deployConfig is the compiled form of an option list.
type deployConfig struct {
	engOpts        []engine.Option
	observers      []Observer
	trialParseOnly bool

	// lanePolicy accumulates WithLanePolicy and WithWatermarks so the
	// two options compose into one engine-level policy; laneSet records
	// that at least one of them appeared.
	lanePolicy lanes.Policy
	laneSet    bool

	chainOnce *observerChain
}

// compileOptions applies opts for the given target, rejecting options
// scoped to the other deployment kind.
func compileOptions(target deployTarget, opts []Option) (*deployConfig, error) {
	cfg := &deployConfig{}
	for _, o := range opts {
		if o.apply == nil {
			continue
		}
		if o.scope != targetAny && o.scope != target {
			return nil, fmt.Errorf("starlink: option %s applies only to %s deployments, not to a %s",
				o.name, o.scope, target)
		}
		o.apply(cfg)
	}
	return cfg, nil
}

// chain returns the deployment's observer chain, nil when no observer
// was registered.
func (c *deployConfig) chain() *observerChain {
	if len(c.observers) == 0 {
		return nil
	}
	if c.chainOnce == nil {
		c.chainOnce = &observerChain{obs: c.observers}
	}
	return c.chainOnce
}

// engineOptions renders the per-engine option list.
func (c *deployConfig) engineOptions() []engine.Option {
	out := append([]engine.Option(nil), c.engOpts...)
	if c.laneSet {
		out = append(out, engine.WithLanePolicy(c.lanePolicy))
	}
	return out
}

// provisionOptions renders the dispatcher option list (engine options
// ride along to every hosted case's engine).
func (c *deployConfig) provisionOptions() []provision.Option {
	var out []provision.Option
	if eo := c.engineOptions(); len(eo) > 0 {
		out = append(out, provision.WithEngineOptions(eo...))
	}
	if c.trialParseOnly {
		out = append(out, provision.WithTrialParseOnly())
	}
	if chain := c.chain(); chain != nil {
		out = append(out, provision.WithHooks(dispatcherHooks(chain)))
	}
	return out
}

// WithVars injects deployment environment variables referenced by
// translation constants (e.g. ${bridge.host}).
func WithVars(vars map[string]string) Option {
	return Option{name: "WithVars", apply: func(c *deployConfig) {
		c.engOpts = append(c.engOpts, engine.WithVars(vars))
	}}
}

// WithMaxSessions bounds the number of concurrently live sessions (per
// case, for a dispatcher). Initiator requests beyond the bound are
// rejected instead of queued — observable as drops tagged
// ErrOverloaded — so a flood degrades into dropped requests rather
// than unbounded memory growth. Values < 1 keep the default (4096).
func WithMaxSessions(n int) Option {
	return Option{name: "WithMaxSessions", apply: func(c *deployConfig) {
		c.engOpts = append(c.engOpts, engine.WithMaxSessions(n))
	}}
}

// WithReceiveTimeout bounds how long a session waits at a receive
// state with no convergence window before failing.
func WithReceiveTimeout(d time.Duration) Option {
	return Option{name: "WithReceiveTimeout", apply: func(c *deployConfig) {
		c.engOpts = append(c.engOpts, engine.WithReceiveTimeout(d))
	}}
}

// WithWindowJitter perturbs every convergence window by a uniform
// value in [-d/2, +d/2], modelling scheduler and retransmission
// variance (the paper's Fig. 12(b) min/max columns). Each session
// derives its own RNG from seed and its creation sequence number, so
// concurrent sessions never share a random stream and simulated runs
// stay reproducible.
func WithWindowJitter(d time.Duration, seed int64) Option {
	return Option{name: "WithWindowJitter", apply: func(c *deployConfig) {
		c.engOpts = append(c.engOpts, engine.WithWindowJitter(d, seed))
	}}
}

// WithIngestWorkers sets the size of the worker pool that parses and
// routes inbound entry payloads (per case, for a dispatcher).
func WithIngestWorkers(n int) Option {
	return Option{name: "WithIngestWorkers", apply: func(c *deployConfig) {
		c.engOpts = append(c.engOpts, engine.WithIngestWorkers(n))
	}}
}

// WithShardCount sets the number of session-table shards (per case,
// for a dispatcher).
func WithShardCount(n int) Option {
	return Option{name: "WithShardCount", apply: func(c *deployConfig) {
		c.engOpts = append(c.engOpts, engine.WithShardCount(n))
	}}
}

// WithObserver registers an observer on the deployment. Observers
// compose: every registered observer receives every event, in
// registration order. Use Hooks to implement only the callbacks you
// need.
func WithObserver(o Observer) Option {
	return Option{name: "WithObserver", apply: func(c *deployConfig) {
		if o != nil {
			c.observers = append(c.observers, o)
		}
	}}
}

// WithFlightRecorder sizes each session's flight-recorder ring in
// events (rounded up to a power of two, clamped to [4, 4096]). The
// default is 64 events per session; 0 disables recording entirely,
// leaving roughly one atomic load per stage boundary. Negative values
// keep the default. Latency histograms are unaffected — they are
// always on.
func WithFlightRecorder(events int) Option {
	return Option{name: "WithFlightRecorder", apply: func(c *deployConfig) {
		c.engOpts = append(c.engOpts, engine.WithTraceRing(events))
	}}
}

// ShedPolicy selects what a pressured ingest queue does with telemetry
// payloads once the high watermark trips (see WithLanePolicy).
type ShedPolicy int

const (
	// ShedOldest evicts the oldest queued telemetry payload to admit a
	// newer one — fresh chatter beats stale chatter. The default.
	ShedOldest ShedPolicy = iota
	// ShedRejectNew refuses incoming telemetry while pressured, keeping
	// what is already queued.
	ShedRejectNew
	// ShedDeferOnly never sheds: all admission control is left to the
	// transport backpressure gate (paused read loops) and to ring
	// capacity itself.
	ShedDeferOnly
)

// String returns the flag spelling ("shed-oldest", "reject-new",
// "defer").
func (p ShedPolicy) String() string { return p.mode().String() }

func (p ShedPolicy) mode() lanes.ShedMode {
	switch p {
	case ShedRejectNew:
		return lanes.RejectNew
	case ShedDeferOnly:
		return lanes.DeferOnly
	default:
		return lanes.ShedOldest
	}
}

// ParseShedPolicy parses the flag spelling accepted by String.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	m, err := lanes.ParseShedMode(s)
	if err != nil {
		return ShedOldest, err
	}
	switch m {
	case lanes.RejectNew:
		return ShedRejectNew, nil
	case lanes.DeferOnly:
		return ShedDeferOnly, nil
	default:
		return ShedOldest, nil
	}
}

// WithLanePolicy bounds the prioritized ingest lanes that sit between
// the transport read loops and each case's session router. Inbound
// payloads classify into three lanes — control (session entry),
// data (mid-session payloads of live sessions), telemetry (multicast
// chatter) — each a ring of capacity payloads; under pressure the
// telemetry lane degrades first per shed, and the control lane last.
// Shed payloads surface as drops tagged ErrOverloaded. capacity < 1
// keeps the default (1024 per lane). Composes with WithWatermarks.
func WithLanePolicy(capacity int, shed ShedPolicy) Option {
	return Option{name: "WithLanePolicy", apply: func(c *deployConfig) {
		c.laneSet = true
		if capacity >= 1 {
			c.lanePolicy.Capacity = capacity
		}
		c.lanePolicy.Mode = shed.mode()
	}}
}

// WithWatermarks sets the total-depth hysteresis thresholds of the
// ingest lanes (per case, for a dispatcher): at high queued payloads
// the transport read loops pause — releasing their buffers rather than
// queueing — and telemetry shedding begins; draining back to low
// resumes them. Deploy fails if high ≤ low or either is out of range
// for the lane capacity. Values ≤ 0 keep the defaults (75% and 37.5%
// of total capacity). Composes with WithLanePolicy.
func WithWatermarks(high, low int) Option {
	return Option{name: "WithWatermarks", apply: func(c *deployConfig) {
		c.laneSet = true
		if high > 0 {
			c.lanePolicy.High = high
		}
		if low > 0 {
			c.lanePolicy.Low = low
		}
	}}
}

// WithTrialParseOnly disables the dispatcher's signature-index fast
// path: every payload is classified by trial-parsing against the
// candidate entry parsers. For diagnostics and for benchmarking the
// two classification paths against each other. Dispatcher-only.
func WithTrialParseOnly() Option {
	return Option{name: "WithTrialParseOnly", scope: targetDispatcher, apply: func(c *deployConfig) {
		c.trialParseOnly = true
	}}
}
