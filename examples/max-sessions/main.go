// Example max-sessions demonstrates the concurrent engine's graceful
// overload behaviour: five SLP clients look up a Bonjour-advertised
// service at once through a bridge bounded to two concurrent sessions.
// Two clients are bridged; the other three are rejected (not queued)
// and simply see their convergence window close empty — exactly what
// an absent service looks like to a legacy SLP client.
package main

import (
	"fmt"
	"time"

	"starlink"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/simnet"
)

func main() {
	sim := simnet.New()
	fw, err := starlink.New(sim)
	if err != nil {
		panic(err)
	}
	bridge, err := fw.DeployBridge("10.0.0.5", "slp-to-bonjour",
		starlink.WithMaxSessions(2))
	if err != nil {
		panic(err)
	}
	defer bridge.Close()

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		panic(err)
	}

	done, answered := 0, 0
	for i := 0; i < 5; i++ {
		n, _ := sim.NewNode(fmt.Sprintf("10.0.1.%d", i+1))
		ua := slp.NewUserAgent(n, slp.WithConvergenceWait(300*time.Millisecond))
		ua.Lookup("service:printer", func(r slp.LookupResult) {
			done++
			if len(r.URLs) == 1 {
				answered++
			}
		})
	}
	if err := sim.RunUntil(func() bool { return done == 5 }, time.Minute); err != nil {
		panic(err)
	}
	sim.RunToQuiescence()

	st := bridge.Engine.Stats()
	fmt.Printf("5 concurrent clients, max 2 sessions: answered=%d rejected=%d completed=%d live=%d\n",
		answered, st.Rejected, st.Completed, st.Live)
	fmt.Printf("shard occupancy after drain: %v\n", bridge.Engine.ShardStats())
	if answered != 2 || st.Rejected != 3 || st.Live != 0 {
		panic("unexpected outcome")
	}
	fmt.Println("overload degraded gracefully: excess clients rejected, none queued, nothing leaked")
}
