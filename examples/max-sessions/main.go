// Example max-sessions demonstrates the concurrent engine's graceful
// overload behaviour: five SLP clients look up a Bonjour-advertised
// service at once through a bridge bounded to two concurrent sessions.
// Two clients are bridged; the other three are rejected (not queued)
// and simply see their convergence window close empty — exactly what
// an absent service looks like to a legacy SLP client. Each rejection
// also reaches the observer as a drop tagged ErrOverloaded.
package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"starlink"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/simnet"
)

func main() {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		panic(err)
	}
	overloadDrops := 0
	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour",
		starlink.WithMaxSessions(2),
		starlink.WithObserver(starlink.Hooks{
			Drop: func(d starlink.Drop) {
				if errors.Is(d.Reason, starlink.ErrOverloaded) {
					overloadDrops++
					fmt.Printf("observer: dropped %s: %v\n", d.Origin, d.Reason)
				}
			},
		}))
	if err != nil {
		panic(err)
	}
	defer bridge.Close()

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		panic(err)
	}

	done, answered := 0, 0
	for i := 0; i < 5; i++ {
		n, _ := sim.NewNode(fmt.Sprintf("10.0.1.%d", i+1))
		ua := slp.NewUserAgent(n, slp.WithConvergenceWait(300*time.Millisecond))
		ua.Lookup("service:printer", func(r slp.LookupResult) {
			done++
			if len(r.URLs) == 1 {
				answered++
			}
		})
	}
	if err := rt.RunUntil(func() bool { return done == 5 }, time.Minute); err != nil {
		panic(err)
	}
	sim.RunToQuiescence()

	m := bridge.Metrics()
	fmt.Printf("5 concurrent clients, max 2 sessions: answered=%d rejected=%d completed=%d live=%d\n",
		answered, m.Sessions.Rejected, m.Sessions.Completed, m.Sessions.Live)
	if answered != 2 || m.Sessions.Rejected != 3 || m.Sessions.Live != 0 || overloadDrops != 3 {
		panic("unexpected outcome")
	}
	fmt.Println("overload degraded gracefully: excess clients rejected, none queued, nothing leaked")
}
