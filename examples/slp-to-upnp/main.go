// The paper's Fig. 4 walkthrough: SLP ⊗ SSDP ⊗ HTTP.
//
// An SLP lookup is answered by a UPnP device through a three-protocol
// chain: the bridge turns the SLP SrvRqst into an SSDP M-SEARCH, takes
// the δ-transition with a setHost(λ) action to fetch the device
// description over HTTP, and composes the SLP SrvReply from the
// description's URLBase — exactly the merged automaton printed below.
//
// Run with: go run ./examples/slp-to-upnp
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"starlink"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/registry"
	"starlink/internal/simnet"
)

func main() {
	// Show the compiled merged automaton first (the runtime form of
	// the paper's Fig. 4).
	reg, err := registry.Builtin()
	if err != nil {
		log.Fatal(err)
	}
	merged, err := reg.Merged("slp-to-upnp")
	if err != nil {
		log.Fatal(err)
	}
	program, err := merged.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merged automaton slp-to-upnp compiles to:")
	for i, step := range program {
		fmt.Printf("  %2d  %s\n", i, step)
	}
	fmt.Println()

	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		log.Fatal(err)
	}
	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-upnp",
		starlink.WithObserver(starlink.Hooks{
			SessionEnd: func(s starlink.SessionStats) {
				fmt.Printf("bridge: SLP→SSDP→HTTP→SLP chain executed in %s\n", s.Duration)
			},
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer bridge.Close()

	// Legacy UPnP device: SSDP responder + HTTP description server.
	devNode, err := sim.NewNode("10.0.0.7")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := upnp.NewDevice(devNode, "urn:printer", "http://10.0.0.7:5431/print", 5431); err != nil {
		log.Fatal(err)
	}

	// Legacy SLP client.
	cliNode, err := sim.NewNode("10.0.0.1")
	if err != nil {
		log.Fatal(err)
	}
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(time.Second))
	done := false
	ua.Lookup("service:printer", func(r slp.LookupResult) {
		done = true
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		for _, u := range r.URLs {
			fmt.Printf("SLP client: SrvReply URL = %s\n", u)
		}
	})
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("the URL travelled UPnP description → HTTP OK → SLP SrvReply, per Fig. 5's assignments")
}
