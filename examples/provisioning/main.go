// Dynamic bridge provisioning: one daemon, every case, zero restarts.
//
// This example shows the runtime half of the paper's headline claim —
// bridges assembled from declarative models when heterogeneous parties
// actually meet. A single dispatcher hosts all six builtin cases at
// once behind shared entry listeners (no port conflicts, no duplicate
// deliveries, no loops between opposite-direction cases), classifies
// each inbound payload to the right case, and — when a seventh case is
// dropped into the model directory as XML files — deploys it with zero
// restart and bridges a session through it. At the end the dispatcher
// drains gracefully: Shutdown(ctx) lets live sessions finish before
// releasing everything.
//
// Run with: go run ./examples/provisioning
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"starlink"
	"starlink/internal/composer"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/parser"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/provision"
	"starlink/internal/registry"
	"starlink/internal/simnet"
	"starlink/internal/xpath"
)

func main() {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		log.Fatal(err)
	}

	// One dispatcher hosts every loaded case on one bridge node. One
	// observer carries every signal: classifications (including
	// ambiguities), deploys, and per-case sessions.
	disp, err := fw.DeployDispatcher(context.Background(), "10.0.0.5", nil,
		starlink.WithObserver(starlink.Hooks{
			Classify: func(c starlink.Classification) {
				if c.Ambiguous {
					fmt.Printf("  %v\n", c.Err)
				}
			},
			Deploy: func(e starlink.CaseEvent) {
				fmt.Printf("  deployed %s (generation %d)\n", e.Case, e.Generation)
			},
			SessionEnd: func(s starlink.SessionStats) {
				if s.Err == nil {
					fmt.Printf("  [%s] bridged a session from %s in %s\n", s.Case, s.Origin, s.Duration)
				}
			},
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer disp.Close()
	fmt.Printf("dispatcher hosts %d cases: %v\n\n", len(disp.Cases()), disp.Cases())

	// Legacy services: a Bonjour printer and a UPnP printer.
	devNode, err := sim.NewNode("10.0.0.7")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dnssd.NewResponder(devNode, "printer.local", "service:printer://10.0.0.7:515"); err != nil {
		log.Fatal(err)
	}
	upnpNode, err := sim.NewNode("10.0.0.8")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := upnp.NewDevice(upnpNode, "urn:printer", "http://10.0.0.8:5431/print", 5431); err != nil {
		log.Fatal(err)
	}

	// A legacy SLP client looks up the printer. Its multicast request
	// reaches the shared SLP listener, where TWO cases are candidates
	// (slp-to-bonjour and slp-to-upnp): the observer reports the
	// ambiguity (tagged ErrAmbiguousPayload) and the dispatcher routes
	// deterministically.
	cliNode, err := sim.NewNode("10.0.0.1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SLP lookup against the shared multicast listener:")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(time.Second))
	done := false
	ua.Lookup("service:printer", func(r slp.LookupResult) {
		done = true
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		for _, u := range r.URLs {
			fmt.Printf("  SLP client got: %s\n", u)
		}
	})
	if err := rt.RunUntil(func() bool { return done }, time.Minute); err != nil {
		log.Fatal(err)
	}

	// Now the dynamic part: drop a seventh case into a model directory
	// the daemon watches. The fixtures under examples/models define an
	// alternate SLP entry (unicast on port 1427) for the Fig. 4 chain.
	dir, err := os.MkdirTemp("", "starlink-models")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ireg := fw.Registry().Backend().(*registry.Registry)
	watcher := provision.NewWatcher(ireg, dir, 0, func(res provision.LoadResult) {
		if err := disp.Sync(); err != nil {
			log.Fatal(err)
		}
	}, nil)

	fmt.Println("\ndropping slp-to-upnp-alt model files into the watched directory...")
	for _, name := range []string{"slp-mdl.xml", "slp-server-alt.xml", "slp-to-upnp-alt.xml"} {
		data, err := os.ReadFile(filepath.Join("examples", "models", name))
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if err := watcher.Reload(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatcher now hosts %d cases: %v\n\n", len(disp.Cases()), disp.Cases())

	// Drive the new case: a raw SLP SrvRequest sent unicast to the new
	// entry endpoint, answered through SSDP + HTTP by the UPnP printer.
	spec, err := ireg.Spec("SLP")
	if err != nil {
		log.Fatal(err)
	}
	comp, err := composer.New(spec, ireg.Types(), nil)
	if err != nil {
		log.Fatal(err)
	}
	req := message.New("SLP", "SLPSrvRequest")
	req.AddPrimitive("Version", "Integer", message.Int(2))
	req.AddPrimitive("FunctionID", "Integer", message.Int(1))
	req.AddPrimitive("XID", "Integer", message.Int(99))
	req.AddPrimitive("LangTag", "String", message.Str("en"))
	req.AddPrimitive("SRVType", "String", message.Str("service:printer"))
	wire, err := comp.Compose(req)
	if err != nil {
		log.Fatal(err)
	}
	p, err := parser.New(spec, ireg.Types())
	if err != nil {
		log.Fatal(err)
	}
	urlPath := xpath.MustCompile("/field/primitiveField[label='URLEntry']/value")

	altDone := false
	sock, err := cliNode.OpenUDP(0, func(pkt netapi.Packet) {
		reply, err := p.Parse(pkt.Data)
		if err != nil {
			log.Fatal(err)
		}
		v, err := urlPath.Get(reply)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  SLP client got (via the hot-deployed case): %s\n", v.Text())
		altDone = true
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sock.Close()
	fmt.Println("unicast SLP lookup against the hot-deployed entry on 10.0.0.5:1427:")
	if err := sock.Send(netapi.Addr{IP: "10.0.0.5", Port: 1427}, wire); err != nil {
		log.Fatal(err)
	}
	if err := rt.RunUntil(func() bool { return altDone }, time.Minute); err != nil {
		log.Fatal(err)
	}

	m := disp.Metrics()
	fmt.Printf("\ndispatch counters: dispatched=%d ambiguous=%d suppressed=%d unroutable=%d parseErrs=%d\n",
		m.Dispatch.Dispatched, m.Dispatch.Ambiguous, m.Dispatch.Suppressed,
		m.Dispatch.Unroutable, m.Dispatch.ParseErrors)
	for name, st := range m.Cases {
		if st.Completed > 0 {
			fmt.Printf("  [%s] completed=%d\n", name, st.Completed)
		}
	}

	// Graceful teardown: drain instead of cutting sessions off. With
	// nothing live this completes immediately; with live sessions it
	// would let them finish (bounded by the context deadline).
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := disp.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndispatcher drained and closed: state=%s\n", disp.State())
}
