// Quickstart: bridge an SLP client to a Bonjour service at runtime.
//
// Three parties run on a deterministic network simulator:
//
//   - a legacy Bonjour (mDNS) responder advertising a printer,
//   - a legacy SLP user agent looking that printer up,
//   - a Starlink bridge deployed from the "slp-to-bonjour" merged
//     automaton — pure models, no protocol-specific code.
//
// The SLP client receives a perfectly ordinary SLP reply even though
// no SLP service exists anywhere on the network.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"starlink"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/simnet"
)

func main() {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)

	// Starlink: deploy the bridge from high-level models only. The
	// context governs the bridge's lifetime: cancelling it undeploys.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fw, err := starlink.New(rt)
	if err != nil {
		log.Fatal(err)
	}
	bridge, err := fw.DeployBridge(ctx, "10.0.0.5", "slp-to-bonjour",
		starlink.WithObserver(starlink.Hooks{
			SessionEnd: func(s starlink.SessionStats) {
				fmt.Printf("bridge: session from %s translated in %s\n", s.Origin, s.Duration)
			},
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer bridge.Close()

	// Legacy service: a Bonjour responder (it has never heard of SLP).
	svcNode, err := sim.NewNode("10.0.0.9")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		log.Fatal(err)
	}

	// Legacy client: an SLP user agent (it has never heard of Bonjour).
	cliNode, err := sim.NewNode("10.0.0.1")
	if err != nil {
		log.Fatal(err)
	}
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(500*time.Millisecond))
	done := false
	ua.Lookup("service:printer", func(r slp.LookupResult) {
		done = true
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("SLP client: lookup finished in %s\n", r.Elapsed)
		for _, u := range r.URLs {
			fmt.Printf("SLP client: found %s\n", u)
		}
	})

	if err := rt.RunUntil(func() bool { return done }, time.Minute); err != nil {
		log.Fatal(err)
	}
	m := bridge.Metrics()
	fmt.Printf("bridge metrics: state=%s completed=%d failed=%d\n",
		m.State, m.Sessions.Completed, m.Sessions.Failed)
	fmt.Println("interoperability achieved: an SLP request was answered by a Bonjour service")
}
