// The full §V case study: all six directed protocol pairs.
//
// For every ordered pair of {SLP, UPnP, Bonjour} this example deploys
// the corresponding merged automaton, runs a legacy client of the
// initiator protocol against a legacy service of the target protocol,
// and reports the discovered URL plus the bridge's translation time —
// the interoperability matrix the paper claims in §V ("There are six
// particular cases ... For each case, the legacy lookup application
// received a response").
//
// Run with: go run ./examples/interop-matrix
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"starlink"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/simnet"
)

const (
	slpType  = "service:printer"
	upnpType = "urn:printer"
	dnsName  = "printer.local"
	svcURL   = "service:printer://10.0.0.9:515"
	httpURL  = "http://10.0.0.7:5431/svc"
)

func main() {
	fmt.Printf("%-16s %-10s %-10s %-14s %s\n", "case", "client", "service", "translation", "discovered URL")
	for _, c := range []string{
		"slp-to-upnp", "slp-to-bonjour", "upnp-to-slp",
		"upnp-to-bonjour", "bonjour-to-upnp", "bonjour-to-slp",
	} {
		url, d, err := runCase(c)
		if err != nil {
			log.Fatalf("%s: %v", c, err)
		}
		parts := splitCase(c)
		fmt.Printf("%-16s %-10s %-10s %-14s %s\n", c, parts[0], parts[1], d.Round(time.Millisecond), url)
	}
	fmt.Println("\nall six pairs interoperate — no protocol-specific bridge code was written")
}

func splitCase(c string) [2]string {
	for i := 0; i+4 <= len(c); i++ {
		if c[i:i+4] == "-to-" {
			return [2]string{c[:i], c[i+4:]}
		}
	}
	return [2]string{c, ""}
}

// runCase deploys one bridge case and runs the matching legacy pair.
func runCase(name string) (string, time.Duration, error) {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		return "", 0, err
	}
	var translation time.Duration
	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", name,
		starlink.WithObserver(starlink.Hooks{
			SessionEnd: func(s starlink.SessionStats) {
				if s.Err == nil && translation == 0 {
					translation = s.Duration
				}
			},
		}))
	if err != nil {
		return "", 0, err
	}
	defer bridge.Close()

	// Start the target-side legacy service.
	svcNode, _ := sim.NewNode("10.0.0.9")
	devNode, _ := sim.NewNode("10.0.0.7")
	target := splitCase(name)[1]
	switch target {
	case "slp":
		if _, err := slp.NewServiceAgent(svcNode, slpType, svcURL); err != nil {
			return "", 0, err
		}
	case "bonjour":
		if _, err := dnssd.NewResponder(svcNode, dnsName, svcURL); err != nil {
			return "", 0, err
		}
	case "upnp":
		if _, err := upnp.NewDevice(devNode, upnpType, httpURL, 5431); err != nil {
			return "", 0, err
		}
	}

	// Run the initiator-side legacy client. Clients facing a →SLP
	// bridge must outlive its 6.25 s convergence window.
	cliNode, _ := sim.NewNode("10.0.0.1")
	var url string
	done := false
	switch splitCase(name)[0] {
	case "slp":
		ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(time.Second))
		ua.Lookup(slpType, func(r slp.LookupResult) {
			done = true
			if len(r.URLs) > 0 {
				url = r.URLs[0]
			}
		})
	case "upnp":
		cp := upnp.NewControlPoint(cliNode, upnp.WithMX(8*time.Second))
		cp.Discover(upnpType, func(r upnp.DiscoverResult) {
			done = true
			if len(r.ServiceURLs) > 0 {
				url = r.ServiceURLs[0]
			}
		})
	case "bonjour":
		b := dnssd.NewBrowser(cliNode, dnssd.WithBrowseWindow(8*time.Second))
		b.Browse(dnsName, func(r dnssd.BrowseResult) {
			done = true
			if len(r.URLs) > 0 {
				url = r.URLs[0]
			}
		})
	}
	if err := sim.RunUntil(func() bool { return done }, 2*time.Minute); err != nil {
		return "", 0, err
	}
	if url == "" {
		return "", 0, fmt.Errorf("no URL discovered")
	}
	return url, translation, nil
}
