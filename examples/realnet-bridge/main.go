// Real-socket deployment: the same bridge, over the operating system's
// network stack.
//
// Everything that ran on the simulator in the other examples runs here
// on loopback UDP sockets (multicast virtualised in-process, see
// internal/realnet): a Bonjour responder, a Starlink slp-to-bonjour
// bridge and an SLP client exchange real datagrams through 127.0.0.1.
//
// Run with: go run ./examples/realnet-bridge
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"starlink"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/realnet"
)

func main() {
	rt := starlink.Loopback()
	net := rt.Backend().(*realnet.Runtime)

	fw, err := starlink.New(rt)
	if err != nil {
		log.Fatal(err)
	}
	bridge, err := fw.DeployBridge(context.Background(), "127.0.0.1", "slp-to-bonjour",
		starlink.WithObserver(starlink.Hooks{
			SessionEnd: func(s starlink.SessionStats) {
				fmt.Printf("bridge: translated a session from %s in %s (real sockets)\n", s.Origin, s.Duration)
			},
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer bridge.Close()

	svcNode, err := net.NewNode("bonjour-service")
	if err != nil {
		log.Fatal(err)
	}
	responder, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://127.0.0.1:515")
	if err != nil {
		log.Fatal(err)
	}
	defer responder.Close()

	cliNode, err := net.NewNode("slp-client")
	if err != nil {
		log.Fatal(err)
	}
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(400*time.Millisecond))
	var urls []string
	done := false
	ua.Lookup("service:printer", func(r slp.LookupResult) {
		done = true
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		urls = r.URLs
	})
	if err := rt.RunUntil(func() bool { return done }, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	if len(urls) == 0 {
		log.Fatal("no reply — bridging over loopback failed")
	}
	fmt.Printf("SLP client found %s over real UDP\n", urls[0])
}
