// Command starlink-bench regenerates the paper's Fig. 12 tables: the
// native response times of the legacy discovery stacks (12(a)) and the
// Starlink translation times of the six bridge cases (12(b)), as
// min/median/max over -iters runs on the deterministic network
// simulator.
//
// Usage:
//
//	starlink-bench [-table a|b|both] [-iters 100] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"starlink/internal/bench"
)

func main() {
	table := flag.String("table", "both", "which table to run: a, b or both")
	iters := flag.Int("iters", 100, "iterations per row (the paper used 100)")
	seed := flag.Int64("seed", 1, "base RNG seed (results are deterministic per seed)")
	flag.Parse()

	if *table == "a" || *table == "both" {
		natives, err := bench.RunTable12a(*iters, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			os.Exit(1)
		}
		fmt.Println(bench.Table(
			fmt.Sprintf("Fig. 12(a) — Response time measures for legacy discovery protocols (ms, %d runs)", *iters),
			bench.NativeOrder, natives, bench.Fig12a))
	}
	if *table == "b" || *table == "both" {
		bridges, err := bench.RunTable12b(*iters, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			os.Exit(1)
		}
		fmt.Println(bench.Table(
			fmt.Sprintf("Fig. 12(b) — Translation times of Starlink connectors (ms, %d runs)", *iters),
			bench.CaseOrder, bridges, bench.Fig12b))
	}
	if *table != "a" && *table != "b" && *table != "both" {
		fmt.Fprintf(os.Stderr, "starlink-bench: unknown table %q (want a, b or both)\n", *table)
		os.Exit(2)
	}
}
