// Command starlink-bench regenerates the paper's Fig. 12 tables: the
// native response times of the legacy discovery stacks (12(a)) and the
// Starlink translation times of the six bridge cases (12(b)), as
// min/median/max over -iters runs on the deterministic network
// simulator.
//
// It also measures the concurrent Automata Engine's parallel-session
// throughput (-table p): the same multi-client bridge workload driven
// sequentially and across GOMAXPROCS workers, with the speedup.
//
// Usage:
//
//	starlink-bench [-table a|b|both|p] [-iters 100] [-seed 1]
//	               [-parallel-units 64] [-parallel-clients 16]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"starlink/internal/bench"
)

func main() {
	table := flag.String("table", "both", "which table to run: a, b, both or p (parallel throughput)")
	iters := flag.Int("iters", 100, "iterations per row (the paper used 100)")
	seed := flag.Int64("seed", 1, "base RNG seed (results are deterministic per seed)")
	punits := flag.Int("parallel-units", 64, "simulations driven by -table p")
	pclients := flag.Int("parallel-clients", 16, "concurrent bridge sessions per simulation in -table p")
	flag.Parse()

	if *table == "p" {
		runParallel(*punits, *pclients, *seed)
		return
	}

	if *table == "a" || *table == "both" {
		natives, err := bench.RunTable12a(*iters, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			os.Exit(1)
		}
		fmt.Println(bench.Table(
			fmt.Sprintf("Fig. 12(a) — Response time measures for legacy discovery protocols (ms, %d runs)", *iters),
			bench.NativeOrder, natives, bench.Fig12a))
	}
	if *table == "b" || *table == "both" {
		bridges, err := bench.RunTable12b(*iters, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			os.Exit(1)
		}
		fmt.Println(bench.Table(
			fmt.Sprintf("Fig. 12(b) — Translation times of Starlink connectors (ms, %d runs)", *iters),
			bench.CaseOrder, bridges, bench.Fig12b))
	}
	if *table != "a" && *table != "b" && *table != "both" {
		fmt.Fprintf(os.Stderr, "starlink-bench: unknown table %q (want a, b, both or p)\n", *table)
		os.Exit(2)
	}
}

// runParallel compares sequential against parallel session throughput
// on the concurrent engine: the same units, first on one worker, then
// on GOMAXPROCS workers.
func runParallel(units, clients int, seed int64) {
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("Parallel session throughput — %d simulations × %d concurrent bridge sessions\n", units, clients)
	seq, err := bench.RunParallelSessions(units, clients, 1, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlink-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("  sequential (1 worker):   %5d sessions in %8s  (%8.0f sessions/s)\n",
		seq.Sessions, seq.Elapsed.Round(0), seq.PerSecond)
	par, err := bench.RunParallelSessions(units, clients, workers, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlink-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("  parallel (%2d workers):   %5d sessions in %8s  (%8.0f sessions/s)\n",
		workers, par.Sessions, par.Elapsed.Round(0), par.PerSecond)
	if seq.PerSecond > 0 {
		fmt.Printf("  speedup: %.2fx (GOMAXPROCS=%d)\n", par.PerSecond/seq.PerSecond, workers)
	}
}
