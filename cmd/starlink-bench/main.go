// Command starlink-bench regenerates the paper's Fig. 12 tables: the
// native response times of the legacy discovery stacks (12(a)) and the
// Starlink translation times of the six bridge cases (12(b)), as
// min/median/max over -iters runs on the deterministic network
// simulator.
//
// It also measures the concurrent Automata Engine's parallel-session
// throughput (-table p): the same multi-client bridge workload driven
// sequentially and across GOMAXPROCS workers, with the speedup — and
// the realnet ingest saturation scenario (-table i): N UDP endpoints ×
// M senders over real loopback sockets with a classification-sized CPU
// cost per datagram, the workload that demonstrates per-endpoint
// parallel dispatch (PR 5) scaling with cores instead of with one
// dispatcher mutex.
//
// -table o runs the overload-protection scenario (PR 8): a mixed
// control/data/telemetry flood paced at -overload-factor times the
// consumer's calibrated service rate against the lane-prioritized
// bounded queue, reporting per-lane admission/shed counters, the
// watermark pause count, and control-lane latency against an
// uncontended baseline run.
//
// Usage:
//
//	starlink-bench [-table a|b|both|p|i|o] [-iters 100] [-seed 1]
//	               [-latency-hist]
//	               [-parallel-units 64] [-parallel-clients 16]
//	               [-ingest-endpoints 8] [-ingest-senders 32]
//	               [-ingest-packets 50000]
//	               [-overload-packets 4000] [-overload-senders 8]
//	               [-overload-factor 4]
//	               [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -latency-hist renders each measured row of tables 12(a)/12(b) as a
// log-linear latency distribution — the same internal/hist package the
// runtime pipeline uses for its staged histograms — with p50/p90/p99
// and the cumulative bucket ladder, so the offline Fig. 12 numbers and
// the live /metrics exposition read on one scale.
//
// The profile flags capture the run with runtime/pprof, so the Fig. 12
// reproduction can be inspected directly with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"starlink"
	"starlink/internal/bench"
	"starlink/internal/hist"
	"starlink/internal/lanes"
)

func main() {
	// All work happens in run so its defers (CPU profile flush, memory
	// profile write) execute on every path, including failures —
	// os.Exit would skip them and truncate the profiles.
	os.Exit(run())
}

func run() int {
	table := flag.String("table", "both", "which table to run: a, b, both, p (parallel throughput), i (ingest saturation) or o (overload protection)")
	iters := flag.Int("iters", 100, "iterations per row (the paper used 100)")
	latencyHist := flag.Bool("latency-hist", false, "render each table row as a latency histogram (p50/p90/p99 + bucket ladder)")
	seed := flag.Int64("seed", 1, "base RNG seed (results are deterministic per seed)")
	punits := flag.Int("parallel-units", 64, "simulations driven by -table p")
	pclients := flag.Int("parallel-clients", 16, "concurrent bridge sessions per simulation in -table p")
	iendpoints := flag.Int("ingest-endpoints", 8, "receiver UDP endpoints in -table i")
	isenders := flag.Int("ingest-senders", 32, "concurrent senders in -table i")
	ipackets := flag.Int("ingest-packets", 50000, "datagrams pushed through the ingress in -table i")
	imetricsOut := flag.String("metrics-out", "", "after a -table i run, write the Prometheus text exposition (including the transport batch counters) to this file")
	opackets := flag.Int("overload-packets", 4000, "datagrams in the -table o flood")
	osenders := flag.Int("overload-senders", 8, "sender nodes in -table o")
	ofactor := flag.Float64("overload-factor", 4, "arrival rate in -table o as a multiple of the consumer's service rate")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "starlink-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the final allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			}
		}()
	}

	if *table == "p" {
		return runParallel(*punits, *pclients, *seed)
	}
	if *table == "i" {
		return runIngest(*iendpoints, *isenders, *ipackets, *imetricsOut)
	}
	if *table == "o" {
		return runOverload(*opackets, *osenders, *ofactor)
	}

	if *table == "a" || *table == "both" {
		natives, err := bench.RunTable12a(*iters, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			return 1
		}
		fmt.Println(bench.Table(
			fmt.Sprintf("Fig. 12(a) — Response time measures for legacy discovery protocols (ms, %d runs)", *iters),
			bench.NativeOrder, natives, bench.Fig12a))
		if *latencyHist {
			printLatencyHists("12(a)", bench.NativeOrder, natives)
		}
	}
	if *table == "b" || *table == "both" {
		bridges, err := bench.RunTable12b(*iters, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			return 1
		}
		fmt.Println(bench.Table(
			fmt.Sprintf("Fig. 12(b) — Translation times of Starlink connectors (ms, %d runs)", *iters),
			bench.CaseOrder, bridges, bench.Fig12b))
		if *latencyHist {
			printLatencyHists("12(b)", bench.CaseOrder, bridges)
		}
	}
	if *table != "a" && *table != "b" && *table != "both" {
		fmt.Fprintf(os.Stderr, "starlink-bench: unknown table %q (want a, b, both, p, i or o)\n", *table)
		return 2
	}
	return 0
}

// printLatencyHists renders the measured samples of each table row
// through the runtime's own log-linear histogram (internal/hist):
// quantiles first, then the cumulative count at every ladder bound
// that the distribution actually reaches. Bucketed quantiles carry the
// histogram's resolution error (≤6.25%), which is the point — these
// are the same numbers a Prometheus scrape of the live pipeline would
// yield for the identical workload.
func printLatencyHists(table string, order []string, measured map[string]*bench.Stats) {
	ladder := hist.Ladder()
	fmt.Printf("Fig. %s latency distributions (log-linear histogram, bucketed quantiles)\n", table)
	for _, name := range order {
		st, ok := measured[name]
		if !ok || st.N() == 0 {
			continue
		}
		var h hist.Histogram
		for _, d := range st.Samples {
			h.Record(d)
		}
		s := h.Snapshot()
		fmt.Printf("  %-18s n=%-4d p50=%-10s p90=%-10s p99=%s\n",
			name, s.Count, s.Quantile(0.50).Round(time.Microsecond),
			s.Quantile(0.90).Round(time.Microsecond),
			s.Quantile(0.99).Round(time.Microsecond))
		cum := s.Cumulative(ladder)
		for i, bound := range ladder {
			if cum[i] == 0 {
				continue // below the distribution: nothing to say yet
			}
			fmt.Printf("    le %-10s %6d\n", bound.Round(time.Microsecond), cum[i])
			if cum[i] == s.Count {
				break // the rest of the ladder repeats the total
			}
		}
	}
	fmt.Println()
}

// runIngest drives the realnet ingest-saturation scenario once and
// reports aggregate packet throughput plus the realised receive
// batching. With metricsOut set it then writes the full Prometheus
// exposition — whose transport counters cover this process's runs — so
// CI can promcheck that the batch series are live.
func runIngest(endpoints, senders, packets int, metricsOut string) int {
	fmt.Printf("Ingest saturation — %d endpoints × %d senders, %d datagrams (GOMAXPROCS=%d)\n",
		endpoints, senders, packets, runtime.GOMAXPROCS(0))
	res, err := bench.RunParallelIngest(endpoints, senders, packets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlink-bench:", err)
		return 1
	}
	fmt.Printf("  %d packets in %s  (%8.0f pkts/s, %.1f µs/packet)\n",
		res.Packets, res.Elapsed.Round(0), res.PacketsPerSec,
		float64(res.Elapsed.Microseconds())/float64(res.Packets))
	if res.RecvBatches > 0 {
		fmt.Printf("  recv batching: %d recvmmsg wakeups carried %d datagrams (mean batch %.2f, %d multi-packet)\n",
			res.RecvBatches, res.RecvBatchPackets, res.MeanRecvBatch, res.RecvMultiBatches)
	} else {
		fmt.Println("  recv batching: inactive (portable per-datagram path)")
	}
	if metricsOut != "" {
		if err := writeMetricsExposition(metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "starlink-bench:", err)
			return 1
		}
	}
	return 0
}

// writeMetricsExposition captures one scrape of a fresh Collector's
// /metrics surface into a file. Deployment-level families are empty —
// nothing is registered — but the process-global transport families
// reflect every socket this benchmark process drove.
func writeMetricsExposition(path string) error {
	rec := httptest.NewRecorder()
	starlink.NewCollector().Handler().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return os.WriteFile(path, rec.Body.Bytes(), 0o644)
}

// runOverload floods the lane-prioritized bounded ingest at `factor`
// times its calibrated service rate and prints the overload-protection
// evidence: per-lane admission/shed accounting, the bounded queue
// depth, watermark pauses, and control-lane latency against an
// uncontended (0.5x) baseline run of the same scenario.
func runOverload(packets, senders int, factor float64) int {
	fmt.Printf("Overload protection — %d datagrams × %d senders at %gx the service rate (GOMAXPROCS=%d)\n",
		packets, senders, factor, runtime.GOMAXPROCS(0))
	basePackets := packets / 4
	if basePackets < 1024 {
		basePackets = 1024
	}
	base, err := bench.RunOverload(basePackets, senders, 0.5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlink-bench:", err)
		return 1
	}
	res, err := bench.RunOverload(packets, senders, factor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlink-bench:", err)
		return 1
	}
	fmt.Printf("  service time %s/payload; offered %d, delivered %d, processed %d in %s\n",
		res.ServiceTime.Round(time.Microsecond), res.Packets, res.Received,
		res.Processed, res.Elapsed.Round(time.Millisecond))
	for lane, c := range res.Lanes {
		fmt.Printf("  lane %-9s admitted=%-6d deferred=%-5d shed=%-5d capacity=%d\n",
			lanes.Lane(lane).String(), c.Admitted, c.Deferred, c.Shed, c.Capacity)
	}
	fmt.Printf("  queue depth peak %d of %d (bounded); %d watermark pause(s)\n",
		res.MaxDepth, res.TotalCapacity, res.Pauses)
	fmt.Printf("  control latency p50 %s  p99 %s  (telemetry p99 %s)\n",
		res.ControlP50.Round(time.Microsecond), res.ControlP99.Round(time.Microsecond),
		res.TelemetryP99.Round(time.Microsecond))
	if base.ControlP99 > 0 {
		fmt.Printf("  uncontended control p99 %s — %.2fx under %gx overload\n",
			base.ControlP99.Round(time.Microsecond),
			float64(res.ControlP99)/float64(base.ControlP99), factor)
	}
	return 0
}

// runParallel compares sequential against parallel session throughput
// on the concurrent engine: the same units, first on one worker, then
// on GOMAXPROCS workers.
func runParallel(units, clients int, seed int64) int {
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("Parallel session throughput — %d simulations × %d concurrent bridge sessions\n", units, clients)
	seq, err := bench.RunParallelSessions(units, clients, 1, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlink-bench:", err)
		return 1
	}
	fmt.Printf("  sequential (1 worker):   %5d sessions in %8s  (%8.0f sessions/s)\n",
		seq.Sessions, seq.Elapsed.Round(0), seq.PerSecond)
	par, err := bench.RunParallelSessions(units, clients, workers, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlink-bench:", err)
		return 1
	}
	fmt.Printf("  parallel (%2d workers):   %5d sessions in %8s  (%8.0f sessions/s)\n",
		workers, par.Sessions, par.Elapsed.Round(0), par.PerSecond)
	if seq.PerSecond > 0 {
		fmt.Printf("  speedup: %.2fx (GOMAXPROCS=%d)\n", par.PerSecond/seq.PerSecond, workers)
	}
	return 0
}
