// Command benchdiff compares two `go test -bench` output files the way
// benchstat does — median deltas with Mann-Whitney significance — and
// converts bench output into the JSON baseline format CI archives
// (BENCH_PR5.json). No external dependencies, so it runs anywhere the
// repo builds.
//
// Usage:
//
//	benchdiff old.txt new.txt     # benchstat-style comparison table
//	benchdiff -json run.txt       # JSON summary baseline to stdout
//	benchdiff -baseline BENCH_PR5.json [-max-regress 50] run.txt
//	                              # gate a fresh run against a committed
//	                              # JSON baseline: exit 1 if any common
//	                              # benchmark's ns/op median regressed
//	                              # by more than -max-regress percent
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"starlink/internal/bench"
)

func main() {
	jsonOut := flag.Bool("json", false, "summarise one bench output file as JSON instead of comparing two")
	baseline := flag.String("baseline", "", "committed JSON baseline to gate one fresh bench output file against")
	maxRegress := flag.Float64("max-regress", 50, "with -baseline: fail when a ns/op median regresses by more than this percent")
	alpha := flag.Float64("alpha", 0.05, "significance threshold for the Mann-Whitney test")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	parseFile := func(path string) []*bench.BenchSeries {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		series, err := bench.ParseBenchOutput(f)
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		return series
	}

	if *jsonOut {
		if flag.NArg() != 1 {
			fail(fmt.Errorf("-json wants exactly one bench output file"))
		}
		series := parseFile(flag.Arg(0))
		summaries := make([]bench.BenchSummary, 0, len(series))
		for _, s := range series {
			summaries = append(summaries, s.Summarise())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summaries); err != nil {
			fail(err)
		}
		return
	}

	if *baseline != "" {
		if flag.NArg() != 1 {
			fail(fmt.Errorf("-baseline wants exactly one fresh bench output file"))
		}
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fail(err)
		}
		var summaries []bench.BenchSummary
		if err := json.Unmarshal(raw, &summaries); err != nil {
			fail(fmt.Errorf("%s: %w", *baseline, err))
		}
		series := parseFile(flag.Arg(0))
		rows, regressed := bench.GateAgainstBaseline(summaries, series, *maxRegress)
		if len(rows) == 0 {
			fail(fmt.Errorf("no common benchmarks between %s and %s", *baseline, flag.Arg(0)))
		}
		fmt.Print(bench.FormatGate(rows, *maxRegress))
		if regressed {
			fmt.Fprintf(os.Stderr, "benchdiff: ns/op regression beyond %.0f%% against %s\n", *maxRegress, *baseline)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff old.txt new.txt | benchdiff -json run.txt | benchdiff -baseline base.json run.txt")
		os.Exit(2)
	}
	rows := bench.CompareBenches(parseFile(flag.Arg(0)), parseFile(flag.Arg(1)))
	if len(rows) == 0 {
		fail(fmt.Errorf("no common benchmarks between %s and %s", flag.Arg(0), flag.Arg(1)))
	}
	fmt.Print(bench.FormatDiff(rows, *alpha))
}
