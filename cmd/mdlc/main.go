// Command mdlc inspects and validates Starlink models: MDL
// specifications, k-colored automata and merged automata. It is the
// developer-facing half of the paper's "minimise development effort"
// requirement — model errors surface here, before deployment.
//
// Usage:
//
//	mdlc list                      list the built-in models
//	mdlc dot <automaton>           Graphviz export (Figs. 1/2/3/9)
//	mdlc program <case>            compiled execution program of a case
//	mdlc check <file.xml>          validate an MDL / automaton / merged
//	                               automaton document from disk
//	mdlc validate <dir>            load a model directory over the
//	                               builtins (the starlinkd -models
//	                               loader) and compile every case;
//	                               exits non-zero on the first error
//	mdlc lint <dir>                validate plus the full lint rule
//	                               set: dead-end states, dangling
//	                               translation fields, discriminator
//	                               collisions, shadowed messages,
//	                               non-round-trippable field layouts;
//	                               exits non-zero on any error-severity
//	                               diagnostic
//
// validate and lint share one rule registry (internal/mdllint);
// validate runs the schema tier, lint runs everything.
package main

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"starlink/internal/automata"
	"starlink/internal/mdl"
	"starlink/internal/mdllint"
	"starlink/internal/merge"
	"starlink/internal/registry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	reg, err := registry.Builtin()
	if err != nil {
		fatal(err)
	}
	switch os.Args[1] {
	case "list":
		fmt.Println("Protocols (MDLs):")
		for _, p := range reg.Protocols() {
			spec, _ := reg.Spec(p)
			fmt.Printf("  %-6s dialect=%s messages=%d\n", p, spec.Dialect, len(spec.Messages))
		}
		fmt.Println("Colored automata:")
		for _, n := range reg.AutomatonNames() {
			a, _ := reg.Automaton(n)
			fmt.Printf("  %-12s protocol=%s states=%d colors=%d\n", n, a.Protocol, len(a.States), len(a.Colors()))
		}
		fmt.Println("Merged automata (bridge cases):")
		for _, n := range reg.MergedNames() {
			m, _ := reg.Merged(n)
			fmt.Printf("  %-16s initiator=%s automata=%d δ=%d assignments=%d\n",
				n, m.Initiator, len(m.Automata), len(m.Deltas), len(m.Logic.Assignments))
		}
	case "dot":
		if len(os.Args) != 3 {
			usage()
			os.Exit(2)
		}
		a, err := reg.Automaton(os.Args[2])
		if err != nil {
			fatal(err)
		}
		fmt.Print(a.DOT())
	case "program":
		if len(os.Args) != 3 {
			usage()
			os.Exit(2)
		}
		m, err := reg.Merged(os.Args[2])
		if err != nil {
			fatal(err)
		}
		program, err := m.Compile()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("case %s (initiator %s), %d steps:\n", m.Name, m.Initiator, len(program))
		for i, s := range program {
			fmt.Printf("  %2d  %s\n", i, s)
		}
	case "check":
		if len(os.Args) != 3 {
			usage()
			os.Exit(2)
		}
		data, err := os.ReadFile(os.Args[2])
		if err != nil {
			fatal(err)
		}
		if err := checkDocument(reg, string(data)); err != nil {
			fatal(err)
		}
		fmt.Println("OK")
	case "validate":
		// The schema tier of the lint registry: every document loads
		// and every case (builtin and external) compiles end to end —
		// step program, entry-color index and MDL-specialised codecs,
		// exactly what a deployment needs.
		if len(os.Args) != 3 {
			usage()
			os.Exit(2)
		}
		ctx, diags, err := mdllint.Run(os.Args[2], mdllint.TierSchema)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			if d.Severity >= mdllint.SevError {
				fatal(errors.New(d.Message))
			}
		}
		fmt.Printf("%s: %s; %d cases compile\n", os.Args[2], ctx.Load, len(ctx.Reg.MergedNames()))
	case "lint":
		if len(os.Args) != 3 {
			usage()
			os.Exit(2)
		}
		_, diags, err := mdllint.Run(os.Args[2], mdllint.TierLint)
		if err != nil {
			fatal(err)
		}
		failed := false
		for _, d := range diags {
			fmt.Println(d)
			if d.Severity >= mdllint.SevError {
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Printf("%s: %d diagnostics, none above %s\n", os.Args[2], len(diags), maxSevName(diags))
	default:
		usage()
		os.Exit(2)
	}
}

// checkDocument validates a model document of any of the three kinds,
// dispatching on the root element.
func checkDocument(reg *registry.Registry, doc string) error {
	trimmed := strings.TrimSpace(doc)
	switch {
	case strings.HasPrefix(trimmed, "<MDL"):
		_, err := mdl.ParseXMLString(doc)
		return err
	case strings.HasPrefix(trimmed, "<Automaton"):
		_, err := automata.ParseXMLString(doc)
		return err
	case strings.HasPrefix(trimmed, "<MergedAutomaton"):
		_, err := merge.ParseXMLString(doc, merge.ResolverFunc(func(name string) (*automata.Automaton, error) {
			return reg.Automaton(name)
		}))
		return err
	default:
		return fmt.Errorf("mdlc: unrecognised document root (want MDL, Automaton or MergedAutomaton)")
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mdlc list | dot <automaton> | program <case> | check <file.xml> | validate <dir> | lint <dir>")
}

// maxSevName names the highest severity present, for the lint summary.
func maxSevName(diags []mdllint.Diagnostic) string {
	max, ok := mdllint.MaxSeverity(diags)
	if !ok {
		return mdllint.SevInfo.String()
	}
	return max.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdlc:", err)
	os.Exit(1)
}
