package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starlink"
	"starlink/internal/promtext"
	"starlink/internal/provision"
	"starlink/internal/registry"
)

// demoCases are the seven example cases the smoke test expects the
// daemon to host: the six builtins plus the hot-deployable alt entry
// from examples/models.
var demoCases = []string{
	"bonjour-to-slp", "bonjour-to-upnp",
	"slp-to-bonjour", "slp-to-upnp", "slp-to-upnp-alt",
	"upnp-to-bonjour", "upnp-to-slp",
}

// TestSmokeMetricsSurface is the in-process version of the CI smoke
// step: deploy the dispatcher exactly as main does (builtin models
// plus examples/models, loopback runtime, Collector observing), run
// one round of demo traffic, and assert the /metrics exposition
// parses, exposes per-stage latency histograms for all seven cases,
// and shows the traffic — including the deliberate parse error.
func TestSmokeMetricsSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("drives wall-clock demo traffic")
	}
	reg, err := starlink.BuiltinRegistry()
	if err != nil {
		t.Fatal(err)
	}
	ireg := reg.Backend().(*registry.Registry)
	if _, err := provision.LoadDir(ireg, "../../examples/models"); err != nil {
		t.Fatal(err)
	}
	rt := starlink.Loopback()
	fw := starlink.NewWithRegistry(rt, reg)
	col := starlink.NewCollector()
	const host = "127.0.0.1"
	disp, err := fw.DeployDispatcher(context.Background(), host, nil,
		starlink.WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()
	col.Register("starlinkd", disp)

	hosted := disp.Cases()
	if len(hosted) != len(demoCases) {
		t.Fatalf("hosted cases = %v, want %v", hosted, demoCases)
	}

	if err := runDemo(rt, ireg, host, 1, hosted); err != nil {
		t.Fatalf("demo traffic: %v", err)
	}

	scrape := func() *promtext.Exposition {
		rec := httptest.NewRecorder()
		col.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("GET /metrics = %d", rec.Code)
		}
		exp, err := promtext.Parse(strings.NewReader(rec.Body.String()))
		if err != nil {
			t.Fatalf("exposition does not parse: %v", err)
		}
		return exp
	}

	// The demo's lookups complete asynchronously; poll until the
	// traffic is visible or the deadline passes.
	deadline := time.Now().Add(30 * time.Second)
	var exp *promtext.Exposition
	for {
		exp = scrape()
		dispatched := sum(exp.Find("starlink_dispatch_total",
			map[string]string{"result": "dispatched"}))
		parseErrs := sum(exp.Find("starlink_dispatch_total",
			map[string]string{"result": "parse_errors"}))
		altDone := sum(exp.Find("starlink_sessions_total",
			map[string]string{"case": "slp-to-upnp-alt", "result": "completed"}))
		if dispatched > 0 && parseErrs > 0 && altDone > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("traffic not visible: dispatched=%v parse_errors=%v alt_completed=%v",
				dispatched, parseErrs, altDone)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Per-stage latency histograms for every hosted case.
	for _, cs := range demoCases {
		for _, stage := range []string{"classify", "recv", "parse", "transition", "translate", "compose", "send", "session"} {
			series := exp.Find("starlink_stage_latency_seconds_count",
				map[string]string{"case": cs, "stage": stage})
			if len(series) != 1 {
				t.Errorf("case %s stage %s: %d series, want 1", cs, stage, len(series))
			}
		}
	}
	// The alt case completed a session, so its whole pipeline is warm.
	for _, stage := range []string{"recv", "parse", "transition", "translate", "compose", "send", "session"} {
		if n := sum(exp.Find("starlink_stage_latency_seconds_count",
			map[string]string{"case": "slp-to-upnp-alt", "stage": stage})); n == 0 {
			t.Errorf("alt case stage %s histogram is empty", stage)
		}
	}
	// Drop counters are always exposed.
	for _, reason := range []string{"overloaded", "draining", "closed", "ambiguous", "other"} {
		if n := len(exp.Find("starlink_drops_total", map[string]string{"reason": reason})); n != 1 {
			t.Errorf("drops_total{reason=%q}: %d series, want 1", reason, n)
		}
	}
	// Classification latency histograms exist for the dispatcher.
	if n := sum(exp.Find("starlink_classify_latency_seconds_count", nil)); n == 0 {
		t.Error("classification latency histograms are empty")
	}

	// The debug pages serve.
	for _, path := range []string{"/debug/starlink/", "/debug/starlink/sessions", "/debug/starlink/failures"} {
		rec := httptest.NewRecorder()
		col.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d", path, rec.Code)
		}
	}
}

func sum(samples []promtext.Sample) float64 {
	var s float64
	for _, v := range samples {
		s += v.Value
	}
	return s
}
