// Command starlinkd deploys a Starlink bridge on the local machine
// over real sockets (loopback UDP/TCP with an in-process multicast
// registry — see internal/realnet). Legacy clients and services of the
// bridged protocols, started in the same process group via the
// examples or tests, interoperate transparently through it.
//
// Usage:
//
//	starlinkd -case slp-to-bonjour [-host 127.0.0.1] [-v]
//	          [-max-sessions 4096] [-stats-interval 30s]
//
// The daemon prints one line per bridged session, logs engine and
// session-table shard statistics periodically, and runs until
// interrupted. -max-sessions bounds the concurrent session count:
// initiator requests beyond it are rejected instead of queued.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"starlink"
	"starlink/internal/realnet"
)

func main() {
	caseName := flag.String("case", "slp-to-bonjour", "merged automaton to deploy (see mdlc list)")
	host := flag.String("host", "127.0.0.1", "bridge host address")
	verbose := flag.Bool("v", false, "log every session")
	maxSessions := flag.Int("max-sessions", 4096, "bound on concurrently live bridge sessions")
	statsInterval := flag.Duration("stats-interval", 30*time.Second, "how often to log shard statistics (0 disables)")
	flag.Parse()

	if *maxSessions < 1 {
		fatal(fmt.Errorf("-max-sessions must be >= 1, got %d", *maxSessions))
	}

	rt := realnet.New()
	fw, err := starlink.New(rt)
	if err != nil {
		fatal(err)
	}
	bridge, err := fw.DeployBridge(*host, *caseName,
		starlink.WithMaxSessions(*maxSessions),
		starlink.WithObserver(func(s starlink.SessionStats) {
			if s.Err != nil {
				fmt.Printf("session from %s FAILED after %s: %v\n", s.Origin, s.Duration, s.Err)
				return
			}
			if *verbose {
				fmt.Printf("session from %s bridged in %s\n", s.Origin, s.Duration)
			}
		}))
	if err != nil {
		fatal(err)
	}
	defer bridge.Close()

	fmt.Printf("starlinkd: case %s deployed on %s (max %d sessions); ctrl-c to stop\n",
		*caseName, *host, *maxSessions)

	stop := make(chan struct{})
	if *statsInterval > 0 {
		go func() {
			t := time.NewTicker(*statsInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					logStats(bridge)
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	logStats(bridge)
	st := bridge.Engine.Stats()
	fmt.Printf("starlinkd: %d sessions bridged, %d failed, %d rejected\n",
		st.Completed, st.Failed, st.Rejected)
}

// logStats prints the engine counters and the per-shard session
// distribution of the sharded table.
func logStats(bridge *starlink.Bridge) {
	st := bridge.Engine.Stats()
	shards := bridge.Engine.ShardStats()
	parts := make([]string, len(shards))
	for i, n := range shards {
		parts[i] = fmt.Sprintf("%d", n)
	}
	fmt.Printf("starlinkd: live=%d completed=%d failed=%d rejected=%d dropped=%d parseErrs=%d ignored=%d shards=[%s]\n",
		st.Live, st.Completed, st.Failed, st.Rejected, st.Dropped, st.ParseErrors, st.Ignored,
		strings.Join(parts, " "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "starlinkd:", err)
	os.Exit(1)
}
