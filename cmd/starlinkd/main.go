// Command starlinkd deploys a Starlink bridge on the local machine
// over real sockets (loopback UDP/TCP with an in-process multicast
// registry — see internal/realnet). Legacy clients and services of the
// bridged protocols, started in the same process group via the
// examples or tests, interoperate transparently through it.
//
// Usage:
//
//	starlinkd -case slp-to-bonjour [-host 127.0.0.1] [-v]
//
// The daemon prints one line per bridged session and runs until
// interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"starlink"
	"starlink/internal/realnet"
)

func main() {
	caseName := flag.String("case", "slp-to-bonjour", "merged automaton to deploy (see mdlc list)")
	host := flag.String("host", "127.0.0.1", "bridge host address")
	verbose := flag.Bool("v", false, "log every session")
	flag.Parse()

	rt := realnet.New()
	fw, err := starlink.New(rt)
	if err != nil {
		fatal(err)
	}
	bridge, err := fw.DeployBridge(*host, *caseName, starlink.WithObserver(func(s starlink.SessionStats) {
		if s.Err != nil {
			fmt.Printf("session from %s FAILED after %s: %v\n", s.Origin, s.Duration, s.Err)
			return
		}
		if *verbose {
			fmt.Printf("session from %s bridged in %s\n", s.Origin, s.Duration)
		}
	}))
	if err != nil {
		fatal(err)
	}
	defer bridge.Close()

	fmt.Printf("starlinkd: case %s deployed on %s; ctrl-c to stop\n", *caseName, *host)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("starlinkd: %d sessions bridged, %d failed\n",
		bridge.Engine.Completed, bridge.Engine.Failed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "starlinkd:", err)
	os.Exit(1)
}
