// Command starlinkd deploys Starlink bridges on the local machine
// over real sockets (loopback UDP/TCP with an in-process multicast
// registry — see internal/realnet). Legacy clients and services of the
// bridged protocols, started in the same process group via the
// examples or tests, interoperate transparently through it.
//
// The daemon is a multi-case runtime: one process hosts any number of
// merged automata at once behind shared entry listeners, and inbound
// payloads are classified to the right case by trial-parsing them
// against the candidate entry parsers (internal/provision). It is
// built entirely on the public starlink API — the same Framework,
// Deployment, Observer and Collector surface any embedding program
// uses.
//
// Usage:
//
//	starlinkd [-case all | name,name,...] [-host 127.0.0.1] [-v]
//	          [-models dir] [-models-poll 2s]
//	          [-max-sessions 4096] [-stats-interval 30s]
//	          [-drain-timeout 10s] [-pprof addr]
//	          [-metrics-addr addr] [-demo-traffic n]
//	          [-lane-capacity n] [-watermark-high n] [-watermark-low n]
//	          [-shed-policy shed-oldest|reject-new|defer]
//
// -case selects the cases to host: "all" (the default) hosts every
// loaded case, a comma-separated list hosts exactly those. -models
// names a directory of MDL / automaton / merged-automaton XML files
// loaded on top of the builtins at startup and hot-reloaded while the
// daemon runs — polled every -models-poll, and reloaded immediately on
// SIGHUP — so dropping a new case file into the directory deploys it
// with zero restart. The daemon logs one line per bridged session
// (with its case name), periodically logs per-case session stats plus
// the dispatcher's classification counters, and runs until signalled.
//
// -metrics-addr serves the observability surface on the given address:
// Prometheus text exposition on /metrics (per-case session and
// classification counters, per-stage latency histograms) and plain
// text debug pages under /debug/starlink/ (live sessions with their
// flight-recorder traces, recent failures).
//
// -lane-capacity, -watermark-high, -watermark-low and -shed-policy
// configure the prioritized ingest lanes (per case): each of the three
// lanes — control > data > telemetry — is a bounded ring of
// -lane-capacity payloads; past -watermark-high total queued payloads
// the transport read loops pause and telemetry sheds per -shed-policy
// (drops tagged ErrOverloaded, scrapeable as
// starlink_lane_shed_total), resuming below -watermark-low. Zero
// values keep the built-in defaults; -watermark-high must exceed
// -watermark-low when both are set.
//
// -demo-traffic runs n rounds of example traffic through the hosted
// cases over the in-process loopback network — legacy clients and
// services for every builtin case, a raw unicast SLP request for the
// hot-deployable slp-to-upnp-alt case when its models are loaded, and
// one deliberately malformed datagram (so the parse-error counters
// move). It exists for smoke tests: every scrapeable series has
// nonzero traffic behind it after one round.
//
// On SIGTERM or SIGINT the daemon drains gracefully: no new sessions
// are admitted (late initiator requests are refused and logged with
// their ErrDraining reason), live sessions run to completion, and the
// daemon exits once everything has drained or -drain-timeout has
// elapsed, whichever comes first.
//
// -pprof serves net/http/pprof on the given address (e.g.
// 127.0.0.1:6060) so a saturated ingress can be profiled live:
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"starlink"
	"starlink/internal/provision"
	"starlink/internal/registry"
)

func main() {
	caseList := flag.String("case", "all", `cases to host: "all" or a comma-separated list (see mdlc list)`)
	host := flag.String("host", "127.0.0.1", "bridge host address")
	verbose := flag.Bool("v", false, "log every session")
	modelsDir := flag.String("models", "", "directory of model XML files loaded over the builtins and hot-reloaded")
	modelsPoll := flag.Duration("models-poll", 2*time.Second, "how often to poll -models for changes (0 disables polling; SIGHUP still reloads)")
	maxSessions := flag.Int("max-sessions", 4096, "bound on concurrently live sessions per case")
	statsInterval := flag.Duration("stats-interval", 30*time.Second, "how often to log per-case statistics (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a graceful shutdown waits for live sessions (0 closes immediately)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060) for live saturation debugging")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/starlink/ on this address (e.g. 127.0.0.1:9464)")
	demoTraffic := flag.Int("demo-traffic", 0, "run this many rounds of example traffic through the hosted cases (0 disables)")
	laneCapacity := flag.Int("lane-capacity", 0, "per-lane ingest ring capacity per case (0 keeps the default, 1024)")
	watermarkHigh := flag.Int("watermark-high", 0, "total queued payloads that pause the transports and start shedding (0 keeps the default)")
	watermarkLow := flag.Int("watermark-low", 0, "total queued payloads at which paused transports resume (0 keeps the default)")
	shedPolicy := flag.String("shed-policy", "shed-oldest", "telemetry shedding under pressure: shed-oldest, reject-new or defer")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "starlinkd: pprof:", err)
			}
		}()
		fmt.Printf("starlinkd: pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	if *maxSessions < 1 {
		fatal(fmt.Errorf("-max-sessions must be >= 1, got %d", *maxSessions))
	}
	if *laneCapacity < 0 || *watermarkHigh < 0 || *watermarkLow < 0 {
		fatal(fmt.Errorf("-lane-capacity, -watermark-high and -watermark-low must be >= 0"))
	}
	if *watermarkHigh > 0 && *watermarkLow > 0 && *watermarkHigh <= *watermarkLow {
		fatal(fmt.Errorf("-watermark-high (%d) must exceed -watermark-low (%d)", *watermarkHigh, *watermarkLow))
	}
	shed, err := starlink.ParseShedPolicy(*shedPolicy)
	if err != nil {
		fatal(fmt.Errorf("-shed-policy: %w", err))
	}
	var cases []string
	if *caseList != "all" {
		for _, c := range strings.Split(*caseList, ",") {
			if c = strings.TrimSpace(c); c != "" {
				cases = append(cases, c)
			}
		}
		if len(cases) == 0 {
			fatal(fmt.Errorf(`-case must be "all" or a non-empty case list`))
		}
	}

	reg, err := starlink.BuiltinRegistry()
	if err != nil {
		fatal(err)
	}
	// The model directory loader and hot-reload watcher live below the
	// public surface; Backend is the sanctioned escape hatch.
	ireg := reg.Backend().(*registry.Registry)
	if *modelsDir != "" {
		if res, err := provision.LoadDir(ireg, *modelsDir); err != nil {
			fatal(err)
		} else if res.Changed() {
			fmt.Printf("starlinkd: models %s: %s\n", *modelsDir, res)
		}
	}

	rt := starlink.Loopback()
	fw := starlink.NewWithRegistry(rt, reg)

	// Cumulative session outcomes, counted by an observer so the final
	// tally survives the dispatcher's teardown; the Collector rides the
	// same chain and backs the /metrics and /debug/starlink/ surface.
	var total, failed atomic.Int64
	col := starlink.NewCollector()
	opts := []starlink.Option{
		starlink.WithMaxSessions(*maxSessions),
		starlink.WithLanePolicy(*laneCapacity, shed),
		starlink.WithWatermarks(*watermarkHigh, *watermarkLow),
		starlink.WithObserver(col),
		starlink.WithObserver(starlink.Hooks{
			SessionEnd: func(s starlink.SessionStats) {
				if s.Err != nil {
					failed.Add(1)
					fmt.Printf("starlinkd: [%s] session from %s FAILED after %s: %v\n", s.Case, s.Origin, s.Duration, s.Err)
					if len(s.Trace) > 0 {
						fmt.Printf("starlinkd: [%s] trace: %s\n", s.Case, starlink.FormatTrace(s.Trace))
					}
					return
				}
				total.Add(1)
				if *verbose {
					fmt.Printf("starlinkd: [%s] session from %s bridged in %s\n", s.Case, s.Origin, s.Duration)
				}
			},
			Deploy: func(e starlink.CaseEvent) {
				fmt.Printf("starlinkd: deployed %s (generation %d)\n", e.Case, e.Generation)
			},
			Undeploy: func(e starlink.CaseEvent) {
				if *verbose {
					fmt.Printf("starlinkd: undeployed %s\n", e.Case)
				}
			},
			Drop: func(d starlink.Drop) {
				if *verbose {
					fmt.Printf("starlinkd: [%s] dropped payload from %s: %v\n", d.Case, d.Origin, d.Reason)
				}
			},
		}),
	}
	disp, err := fw.DeployDispatcher(context.Background(), *host, cases, opts...)
	if err != nil {
		fatal(err)
	}
	defer disp.Close()
	col.Register("starlinkd", disp)

	if *metricsAddr != "" {
		srv := &http.Server{Addr: *metricsAddr, Handler: col.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "starlinkd: metrics:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("starlinkd: metrics on http://%s/metrics, debug on http://%s/debug/starlink/\n",
			*metricsAddr, *metricsAddr)
	}

	var watcher *provision.Watcher
	if *modelsDir != "" {
		watcher = provision.NewWatcher(ireg, *modelsDir, *modelsPoll, func(provision.LoadResult) {
			if err := disp.Sync(); err != nil {
				fmt.Fprintln(os.Stderr, "starlinkd: sync:", err)
			}
		}, func(format string, args ...any) {
			fmt.Printf("starlinkd: "+format+"\n", args...)
		})
		watcher.Start()
		defer watcher.Stop()
	}

	fmt.Printf("starlinkd: hosting %s on %s (max %d sessions/case); ctrl-c to stop\n",
		strings.Join(disp.Cases(), ", "), *host, *maxSessions)

	if *demoTraffic > 0 {
		go func() {
			if err := runDemo(rt, ireg, *host, *demoTraffic, disp.Cases()); err != nil {
				fmt.Fprintln(os.Stderr, "starlinkd: demo:", err)
			}
			// The marker line smoke tests wait for before scraping.
			fmt.Println("starlinkd: demo traffic complete")
		}()
	}

	stop := make(chan struct{})
	if *statsInterval > 0 {
		go func() {
			t := time.NewTicker(*statsInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					logStats(disp)
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s == syscall.SIGHUP {
			if watcher == nil {
				fmt.Println("starlinkd: SIGHUP ignored (no -models directory)")
				continue
			}
			fmt.Println("starlinkd: SIGHUP: reloading models")
			if err := watcher.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "starlinkd: reload:", err)
			}
			continue
		}
		break
	}
	close(stop)

	// Graceful drain: stop admitting new sessions, let the live ones
	// finish (bounded by -drain-timeout), then release everything.
	if live := disp.Metrics().Sessions.Live; *drainTimeout > 0 && live > 0 {
		fmt.Printf("starlinkd: draining %d live session(s) (up to %s)\n", live, *drainTimeout)
	}
	logStats(disp)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	err = disp.Shutdown(ctx)
	cancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "starlinkd: drain:", err)
	}
	fmt.Printf("starlinkd: %d sessions bridged, %d failed\n", total.Load(), failed.Load())
}

// logStats prints per-case session counters, staged latency quantiles
// and the dispatcher's payload-classification counters — all read from
// the public Metrics snapshot.
func logStats(disp *starlink.Dispatcher) {
	m := disp.Metrics()
	for _, n := range disp.Cases() {
		st, ok := m.Cases[n]
		if !ok {
			continue
		}
		fmt.Printf("starlinkd: [%s] live=%d completed=%d failed=%d rejected=%d dropped=%d parseErrs=%d ignored=%d\n",
			n, st.Live, st.Completed, st.Failed, st.Rejected, st.Dropped, st.ParseErrors, st.Ignored)
	}
	for _, row := range m.Latency {
		if row.Count == 0 {
			continue
		}
		fmt.Printf("starlinkd: latency %-10s n=%-6d p50=%-12s p90=%-12s p99=%s\n",
			row.Stage, row.Count, row.P50, row.P90, row.P99)
	}
	d := m.Dispatch
	fmt.Printf("starlinkd: dispatch: dispatched=%d ambiguous=%d suppressed=%d unroutable=%d parseErrs=%d fastpath=%d slowpath=%d\n",
		d.Dispatched, d.Ambiguous, d.Suppressed, d.Unroutable, d.ParseErrors, d.FastPath, d.SlowPath)
	for _, row := range m.Lanes {
		if row.Admitted == 0 && row.Shed == 0 {
			continue
		}
		fmt.Printf("starlinkd: lane %-9s depth=%d/%d admitted=%d deferred=%d shed=%d wait-p99=%s\n",
			row.Lane, row.Depth, row.Capacity, row.Admitted, row.Deferred, row.Shed, row.Wait.P99)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "starlinkd:", err)
	os.Exit(1)
}
