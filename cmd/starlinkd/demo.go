package main

import (
	"fmt"
	"time"

	"starlink/internal/composer"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/realnet"
	"starlink/internal/registry"

	"starlink"
)

// Demo service identities — the paper's printer case study, matching
// the translation logic of the builtin merged automata.
const (
	demoSLPType    = "service:printer"
	demoUPnPType   = "urn:printer"
	demoDNSName    = "printer.local"
	demoServiceURL = "service:printer://10.0.0.9:515"
	demoHTTPPort   = 5431
)

// demoRoundTimeout bounds how long one round waits for its lookups.
const demoRoundTimeout = 15 * time.Second

// runDemo drives example traffic through the hosted cases over the
// in-process loopback network: legacy services are started once, then
// each round runs an SLP lookup, a UPnP discovery and a Bonjour browse
// against the shared entry listeners, a raw unicast SLP request
// against the slp-to-upnp-alt entry when that case is hosted, and one
// deliberately malformed datagram so the parse-error counters move.
// Lookups that time out are logged, not fatal — the point is moving
// the metrics surface, and partial traffic still does.
func runDemo(rt *starlink.Runtime, ireg *registry.Registry, host string, rounds int, hosted []string) error {
	net, ok := rt.Backend().(*realnet.Runtime)
	if !ok {
		return fmt.Errorf("demo traffic needs the loopback runtime")
	}

	// Legacy services, one node each. They answer the bridged requests:
	// the UPnP printer serves slp-to-upnp / bonjour-to-upnp, the
	// Bonjour responder serves slp-to-bonjour / upnp-to-bonjour, the
	// SLP service agent serves upnp-to-slp / bonjour-to-slp.
	upnpNode, err := net.NewNode("demo-upnp-device")
	if err != nil {
		return err
	}
	if _, err := upnp.NewDevice(upnpNode, demoUPnPType, demoServiceURL, demoHTTPPort); err != nil {
		return err
	}
	bonjourNode, err := net.NewNode("demo-bonjour-service")
	if err != nil {
		return err
	}
	if _, err := dnssd.NewResponder(bonjourNode, demoDNSName, demoServiceURL); err != nil {
		return err
	}
	slpNode, err := net.NewNode("demo-slp-service")
	if err != nil {
		return err
	}
	if _, err := slp.NewServiceAgent(slpNode, demoSLPType, demoServiceURL); err != nil {
		return err
	}

	altHosted := false
	for _, c := range hosted {
		if c == "slp-to-upnp-alt" {
			altHosted = true
		}
	}
	var altWire []byte
	if altHosted {
		if altWire, err = composeAltRequest(ireg); err != nil {
			return fmt.Errorf("compose alt request: %w", err)
		}
	}

	cliNode, err := net.NewNode("demo-client")
	if err != nil {
		return err
	}
	// rawSock carries the alt-case unicast request and the malformed
	// datagram; replies are counted, not decoded.
	altReplies := 0
	rawSock, err := cliNode.OpenUDP(0, func(netapi.Packet) { altReplies++ })
	if err != nil {
		return err
	}
	defer rawSock.Close()

	for round := 1; round <= rounds; round++ {
		fmt.Printf("starlinkd: demo round %d/%d\n", round, rounds)
		done := make(chan string, 4)
		expect := 3

		ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(time.Second))
		ua.Lookup(demoSLPType, func(r slp.LookupResult) {
			done <- fmt.Sprintf("slp lookup: %d url(s)", len(r.URLs))
		})
		cp := upnp.NewControlPoint(cliNode, upnp.WithMX(time.Second))
		cp.Discover(demoUPnPType, func(r upnp.DiscoverResult) {
			done <- fmt.Sprintf("upnp discovery: %d url(s)", len(r.ServiceURLs))
		})
		br := dnssd.NewBrowser(cliNode, dnssd.WithBrowseWindow(time.Second))
		br.Browse(demoDNSName, func(r dnssd.BrowseResult) {
			done <- fmt.Sprintf("bonjour browse: %d url(s)", len(r.URLs))
		})

		if altHosted {
			if err := rawSock.Send(netapi.Addr{IP: host, Port: 1427}, altWire); err != nil {
				return fmt.Errorf("alt request: %w", err)
			}
		}
		// One malformed datagram to the shared SLP entry listener: no
		// candidate parser accepts it, so it lands in the dispatcher's
		// parse-error counter (and nowhere else).
		garbage := []byte("starlinkd demo: deliberately not a legacy protocol payload")
		if err := rawSock.Send(netapi.Addr{IP: slp.Group, Port: slp.Port}, garbage); err != nil {
			return fmt.Errorf("malformed datagram: %w", err)
		}

		deadline := time.After(demoRoundTimeout)
		for i := 0; i < expect; i++ {
			select {
			case msg := <-done:
				fmt.Printf("starlinkd: demo %s\n", msg)
			case <-deadline:
				fmt.Printf("starlinkd: demo round %d timed out waiting for lookups\n", round)
				i = expect
			}
		}
	}
	if altHosted {
		// The alt reply is asynchronous to the lookups; give it a beat.
		time.Sleep(200 * time.Millisecond)
		fmt.Printf("starlinkd: demo alt-case replies: %d\n", altReplies)
	}
	return nil
}

// composeAltRequest builds the raw SLP SrvRequest wire form the
// slp-to-upnp-alt entry (unicast :1427) expects, using the same
// MDL-driven composer the bridge itself uses.
func composeAltRequest(ireg *registry.Registry) ([]byte, error) {
	spec, err := ireg.Spec("SLP")
	if err != nil {
		return nil, err
	}
	comp, err := composer.New(spec, ireg.Types(), nil)
	if err != nil {
		return nil, err
	}
	req := message.New("SLP", "SLPSrvRequest")
	req.AddPrimitive("Version", "Integer", message.Int(2))
	req.AddPrimitive("FunctionID", "Integer", message.Int(1))
	req.AddPrimitive("XID", "Integer", message.Int(99))
	req.AddPrimitive("LangTag", "String", message.Str("en"))
	req.AddPrimitive("SRVType", "String", message.Str(demoSLPType))
	return comp.Compose(req)
}
