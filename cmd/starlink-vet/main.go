// Command starlink-vet runs Starlink's static-analysis suite: the
// project-specific analyzers that machine-check the runtime's ownership
// and concurrency invariants (see internal/analysis).
//
// Standalone:
//
//	starlink-vet ./...
//
// As a go vet backend (also covers _test.go files):
//
//	go build -o /tmp/starlink-vet ./cmd/starlink-vet
//	go vet -vettool=/tmp/starlink-vet ./...
//
// Exit status is 0 when clean, 2 when the suite reports diagnostics.
// Suppress a deliberate exception with
// `//lint:ignore <analyzer> <reason>` on or directly above the flagged
// line; the reason is mandatory.
package main

import (
	"os"

	"starlink/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:]))
}
