// Command promcheck validates a Prometheus text exposition and asserts
// the presence (and optionally positivity) of selected series. It is
// the assertion half of the CI observability smoke test: starlinkd
// serves /metrics, curl scrapes it, promcheck proves the exposition
// parses and the key series exist.
//
// Usage:
//
//	promcheck [-f exposition.txt] \
//	    -series 'starlink_drops_total{reason="overloaded"}' \
//	    -nonzero 'starlink_dispatch_total{result="dispatched"}'
//
// Each -series flag requires at least one sample whose name matches
// and whose labels include every pair given (extra labels on the
// sample are fine). -nonzero additionally requires the matched
// samples' sum to be > 0. Both flags repeat. With no -f the exposition
// is read from stdin. Exit status 0 on success, 1 on any failed
// assertion or parse error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"starlink/internal/promtext"
)

// seriesList collects repeated series selector flags.
type seriesList []string

func (s *seriesList) String() string { return strings.Join(*s, ", ") }

func (s *seriesList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// parseSelector splits 'name{k="v",k2="v2"}' into name and label map.
func parseSelector(sel string) (string, map[string]string, error) {
	brace := strings.IndexByte(sel, '{')
	if brace < 0 {
		return sel, nil, nil
	}
	if !strings.HasSuffix(sel, "}") {
		return "", nil, fmt.Errorf("unterminated label set in selector %q", sel)
	}
	name := sel[:brace]
	// Reuse the exposition sample parser by rendering the selector as a
	// sample line with a dummy value.
	exp, err := promtext.Parse(strings.NewReader(sel + " 0\n"))
	if err != nil || len(exp.Samples) != 1 {
		return "", nil, fmt.Errorf("bad selector %q: %v", sel, err)
	}
	return name, exp.Samples[0].Labels, nil
}

func main() {
	var (
		file    = flag.String("f", "", "exposition file (default stdin)")
		series  seriesList
		nonzero seriesList
	)
	flag.Var(&series, "series", "selector that must match ≥1 sample (repeatable)")
	flag.Var(&nonzero, "nonzero", "selector that must match ≥1 sample with sum > 0 (repeatable)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}
	exp, err := promtext.Parse(in)
	if err != nil {
		fatal("exposition does not parse: %v", err)
	}
	fmt.Printf("promcheck: parsed %d samples across %d series names\n",
		len(exp.Samples), len(exp.Names()))

	failures := 0
	check := func(sel string, wantNonzero bool) {
		name, labels, err := parseSelector(sel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			failures++
			return
		}
		matches := exp.Find(name, labels)
		if len(matches) == 0 {
			fmt.Fprintf(os.Stderr, "promcheck: no samples match %s\n", sel)
			failures++
			return
		}
		if wantNonzero {
			sum := 0.0
			for _, m := range matches {
				sum += m.Value
			}
			if sum <= 0 {
				fmt.Fprintf(os.Stderr, "promcheck: %s matched %d sample(s) but sum = %v, want > 0\n",
					sel, len(matches), sum)
				failures++
				return
			}
		}
		fmt.Printf("promcheck: ok %s (%d sample(s))\n", sel, len(matches))
	}
	for _, sel := range series {
		check(sel, false)
	}
	for _, sel := range nonzero {
		check(sel, true)
	}
	if failures > 0 {
		fatal("%d assertion(s) failed", failures)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
