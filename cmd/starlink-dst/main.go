// Command starlink-dst drives the deterministic simulation testing
// rig: single runs, parallel seed sweeps, and artifact replay.
//
//	starlink-dst list
//	starlink-dst run -scenario loss -seed 7 [-artifact-dir DIR]
//	starlink-dst sweep -scenarios loss,delay -seeds 200 [-workers N]
//	starlink-dst replay DIR/dst-loss-seed7.txt
//
// sweep partitions each scenario's seed range across worker
// subprocesses (one starlink-dst process per chunk, runs executed
// sequentially inside each — the lease-balance invariant reads a
// process-global counter, so runs never share a process concurrently).
// Every failing run is written as a self-contained artifact; replay
// re-executes an artifact and verifies the recorded interleaving and
// violations come back exactly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"starlink/internal/dst"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	var failed bool
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		failed, err = cmdRun(os.Args[2:])
	case "sweep":
		failed, err = cmdSweep(os.Args[2:])
	case "replay":
		failed, err = cmdReplay(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "starlink-dst: %v\n", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: starlink-dst <command> [flags]

commands:
  list                      print the scenario catalog
  run     -scenario NAME -seed N      execute one run
  sweep   -scenarios A,B -seeds N     sweep seeds across worker processes
  replay  ARTIFACT                    re-execute a failure artifact`)
}

func cmdList() error {
	names := dst.Names()
	scenarios := dst.Builtin()
	for _, n := range names {
		fmt.Printf("%-18s %s\n", n, scenarios[n].Info)
	}
	fmt.Printf("\nsweep default: %s\n", strings.Join(dst.SweepSet, ","))
	return nil
}

// runResult is the worker→parent line protocol (also printed by run).
type runResult struct {
	Scenario   string   `json:"scenario"`
	Seed       int64    `json:"seed"`
	TraceHash  string   `json:"trace_hash"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
	Artifact   string   `json:"artifact,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// executeRun performs one run and, on failure, writes the artifact.
func executeRun(name string, seed int64, cfg dst.Config, artifactDir string) runResult {
	out := runResult{Scenario: name, Seed: seed}
	sc, err := dst.Lookup(name)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	res, err := dst.Run(sc, seed, cfg)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.TraceHash = fmt.Sprintf("%016x", res.TraceHash)
	out.Pass = !res.Failed()
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, v.String())
	}
	if res.Failed() && artifactDir != "" {
		if err := os.MkdirAll(artifactDir, 0o755); err != nil {
			out.Error = err.Error()
			return out
		}
		path := filepath.Join(artifactDir, dst.ArtifactName(sc, seed))
		if err := os.WriteFile(path, []byte(dst.FormatArtifact(res)), 0o644); err != nil {
			out.Error = err.Error()
			return out
		}
		out.Artifact = path
	}
	return out
}

func cmdRun(args []string) (failed bool, err error) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scenario := fs.String("scenario", "", "scenario name (see list)")
	seed := fs.Int64("seed", 1, "simulation seed")
	models := fs.String("models", "examples/models", "models dir for reload scenarios")
	artifactDir := fs.String("artifact-dir", "", "write failure artifacts here")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *scenario == "" {
		return false, fmt.Errorf("run: -scenario is required")
	}
	r := executeRun(*scenario, *seed, dst.Config{ModelsDir: *models}, *artifactDir)
	if r.Error != "" {
		return false, fmt.Errorf("%s seed %d: %s", r.Scenario, r.Seed, r.Error)
	}
	report(r)
	return !r.Pass, nil
}

func report(r runResult) {
	if r.Pass {
		fmt.Printf("PASS %s seed=%d trace=%s\n", r.Scenario, r.Seed, r.TraceHash)
		return
	}
	fmt.Printf("FAIL %s seed=%d trace=%s\n", r.Scenario, r.Seed, r.TraceHash)
	for _, v := range r.Violations {
		fmt.Printf("  %s\n", v)
	}
	if r.Artifact != "" {
		fmt.Printf("  artifact: %s\n", r.Artifact)
	}
}

// cmdWorker is the sweep's child process: run a contiguous seed chunk
// sequentially, one JSON result line per run on stdout.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	scenario := fs.String("scenario", "", "scenario name")
	seeds := fs.String("seeds", "", "chunk as start:count")
	models := fs.String("models", "examples/models", "models dir")
	artifactDir := fs.String("artifact-dir", "", "artifact dir")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start, count, err := parseChunk(*seeds)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	cfg := dst.Config{ModelsDir: *models}
	for seed := start; seed < start+count; seed++ {
		if err := enc.Encode(executeRun(*scenario, seed, cfg, *artifactDir)); err != nil {
			return err
		}
	}
	return nil
}

func parseChunk(s string) (start, count int64, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("worker: -seeds wants start:count, got %q", s)
	}
	if start, err = strconv.ParseInt(a, 10, 64); err != nil {
		return 0, 0, err
	}
	if count, err = strconv.ParseInt(b, 10, 64); err != nil {
		return 0, 0, err
	}
	return start, count, nil
}

func cmdSweep(args []string) (failed bool, err error) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	scenarios := fs.String("scenarios", strings.Join(dst.SweepSet, ","),
		`comma-separated scenario names, or "all"`)
	seeds := fs.Int64("seeds", 100, "seeds per scenario")
	base := fs.Int64("seed-base", 1, "first seed")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent worker processes")
	models := fs.String("models", "examples/models", "models dir for reload scenarios")
	artifactDir := fs.String("artifact-dir", "dst-artifacts", "write failure artifacts here")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	names, err := resolveScenarios(*scenarios)
	if err != nil {
		return false, err
	}
	if *workers < 1 {
		*workers = 1
	}
	self, err := os.Executable()
	if err != nil {
		return false, err
	}

	// One job per (scenario, seed chunk): chunks sized so every
	// scenario spreads across the worker pool.
	type job struct {
		scenario     string
		start, count int64
	}
	var jobs []job
	chunk := *seeds / int64(*workers)
	if chunk < 1 {
		chunk = 1
	}
	for _, name := range names {
		for off := int64(0); off < *seeds; off += chunk {
			n := chunk
			if off+n > *seeds {
				n = *seeds - off
			}
			jobs = append(jobs, job{scenario: name, start: *base + off, count: n})
		}
	}

	var (
		mu       sync.Mutex
		results  []runResult
		firstErr error
	)
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cmd := exec.Command(self, "worker",
					"-scenario", j.scenario,
					"-seeds", fmt.Sprintf("%d:%d", j.start, j.count),
					"-models", *models,
					"-artifact-dir", *artifactDir)
				cmd.Stderr = os.Stderr
				out, err := cmd.StdoutPipe()
				if err == nil {
					err = cmd.Start()
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				sc := bufio.NewScanner(out)
				sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
				for sc.Scan() {
					var r runResult
					if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
						continue
					}
					mu.Lock()
					results = append(results, r)
					if !r.Pass || r.Error != "" {
						report(r)
					}
					mu.Unlock()
				}
				if err := cmd.Wait(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("worker %s %d:%d: %w", j.scenario, j.start, j.count, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return false, firstErr
	}

	// Summary per scenario.
	passCount := map[string]int{}
	failCount := map[string]int{}
	errCount := map[string]int{}
	for _, r := range results {
		switch {
		case r.Error != "":
			errCount[r.Scenario]++
		case r.Pass:
			passCount[r.Scenario]++
		default:
			failCount[r.Scenario]++
		}
	}
	total, failures := 0, 0
	for _, name := range names {
		p, f, e := passCount[name], failCount[name], errCount[name]
		total += p + f + e
		failures += f + e
		fmt.Printf("%-18s %d pass, %d fail, %d error\n", name, p, f, e)
	}
	fmt.Printf("sweep: %d runs, %d failures\n", total, failures)
	if want := int64(len(names)) * *seeds; int64(total) != want {
		return true, fmt.Errorf("sweep: expected %d runs, saw %d", want, total)
	}
	return failures > 0, nil
}

func resolveScenarios(arg string) ([]string, error) {
	if arg == "all" {
		// selftest-fail is intentionally unsatisfiable — it is for
		// exercising the artifact pipeline, never for sweeps.
		var out []string
		for _, n := range dst.Names() {
			if n != "selftest-fail" {
				out = append(out, n)
			}
		}
		return out, nil
	}
	names := strings.Split(arg, ",")
	sort.Strings(names)
	for _, n := range names {
		if _, err := dst.Lookup(n); err != nil {
			return nil, err
		}
	}
	return names, nil
}

func cmdReplay(args []string) (failed bool, err error) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	models := fs.String("models", "examples/models", "models dir for reload scenarios")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if fs.NArg() != 1 {
		return false, fmt.Errorf("replay: want exactly one artifact path")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return false, err
	}
	art, err := dst.ParseArtifact(string(data))
	if err != nil {
		return false, err
	}
	rep, err := dst.Replay(art, dst.Config{ModelsDir: *models})
	if err != nil {
		return false, err
	}
	if rep.Reproduced() {
		fmt.Printf("REPRODUCED %s seed=%d trace=%016x (%d violations)\n",
			art.Scenario.Name, art.Seed, art.TraceHash, len(rep.Result.Violations))
		for _, v := range rep.Result.Violations {
			fmt.Printf("  %s\n", v)
		}
		return false, nil
	}
	fmt.Printf("NOT REPRODUCED %s seed=%d\n", art.Scenario.Name, art.Seed)
	if !rep.TraceMatch {
		fmt.Printf("  trace diverged: %s\n", rep.Divergence)
	}
	if !rep.ViolationsMatch {
		fmt.Printf("  recorded violations: %v\n", art.Violations)
		var got []string
		for _, v := range rep.Result.Violations {
			got = append(got, v.String())
		}
		fmt.Printf("  replayed violations: %v\n", got)
	}
	return true, nil
}
