package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"starlink/internal/dst"
)

func TestParseChunk(t *testing.T) {
	start, count, err := parseChunk("5:17")
	if err != nil || start != 5 || count != 17 {
		t.Fatalf("parseChunk(5:17) = %d, %d, %v", start, count, err)
	}
	for _, bad := range []string{"", "5", "a:b", "5:"} {
		if _, _, err := parseChunk(bad); err == nil {
			t.Errorf("parseChunk(%q) accepted", bad)
		}
	}
}

func TestResolveScenarios(t *testing.T) {
	all, err := resolveScenarios("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range all {
		if n == "selftest-fail" {
			t.Fatal("`all` must exclude the intentionally failing scenario")
		}
	}
	if len(all) < len(dst.SweepSet) {
		t.Fatalf("`all` resolved %d scenarios, fewer than the sweep set", len(all))
	}
	if _, err := resolveScenarios("loss,nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestExecuteRunWritesArtifact drives the single-run path end to end:
// the intentional failure must produce an artifact that parses.
func TestExecuteRunWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	r := executeRun("selftest-fail", 3, dst.Config{}, dir)
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	if r.Pass {
		t.Fatal("selftest-fail passed")
	}
	if r.Artifact == "" {
		t.Fatal("no artifact written")
	}
	data, err := os.ReadFile(r.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	art, err := dst.ParseArtifact(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if art.Seed != 3 || art.Scenario.Name != "selftest-fail" {
		t.Fatalf("artifact identity: seed=%d scenario=%s", art.Seed, art.Scenario.Name)
	}
	if want := filepath.Join(dir, "dst-selftest-fail-seed3.txt"); r.Artifact != want {
		t.Fatalf("artifact path %s, want %s", r.Artifact, want)
	}
	if !strings.HasPrefix(r.TraceHash, "") || len(r.TraceHash) != 16 {
		t.Fatalf("trace hash %q not 16 hex digits", r.TraceHash)
	}
}
