package starlink_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starlink"
	"starlink/internal/promtext"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/simnet"
)

// scrape serves path from the collector and returns the body.
func scrape(t *testing.T, c *starlink.Collector, path string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s = %d", path, rec.Code)
	}
	return rec.Body.String()
}

// TestCollectorExposition runs real traffic through a bridge with a
// Collector attached and asserts the full observability surface: a
// parseable Prometheus exposition with per-stage latency histograms
// and drop counters, plus the plain text debug pages.
func TestCollectorExposition(t *testing.T) {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		t.Fatal(err)
	}
	col := starlink.NewCollector()
	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour",
		starlink.WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	col.Register("bridge", bridge)

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(300*time.Millisecond))
	done := false
	ua.Lookup("service:printer", func(slp.LookupResult) { done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}

	exp, err := promtext.Parse(strings.NewReader(scrape(t, col, "/metrics")))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if typ := exp.Types["starlink_stage_latency_seconds"]; typ != "histogram" {
		t.Errorf("stage latency TYPE = %q, want histogram", typ)
	}
	// Every pipeline stage plus the session row must expose a series
	// for the case; the stages this scenario exercises must be nonzero.
	for _, stage := range []string{"classify", "recv", "parse", "transition", "translate", "compose", "send", "session"} {
		cnt := exp.Find("starlink_stage_latency_seconds_count",
			map[string]string{"deployment": "bridge", "case": "slp-to-bonjour", "stage": stage})
		if len(cnt) != 1 {
			t.Fatalf("stage %q: %d count series, want 1", stage, len(cnt))
		}
		switch stage {
		case "recv", "parse", "transition", "translate", "compose", "send", "session":
			if cnt[0].Value == 0 {
				t.Errorf("stage %q histogram is empty after a completed session", stage)
			}
		}
	}
	// Drop counters always exist, zero-valued when nothing dropped.
	for _, reason := range []string{"overloaded", "draining", "closed", "ambiguous", "other"} {
		ds := exp.Find("starlink_drops_total", map[string]string{"reason": reason})
		if len(ds) != 1 {
			t.Errorf("drops_total{reason=%q}: %d series, want 1", reason, len(ds))
		}
	}
	// Lane series always exist for every lane, even when nothing queued
	// or shed; the control lane's wait histogram saw this scenario's
	// entry payloads.
	if typ := exp.Types["starlink_lane_wait_seconds"]; typ != "histogram" {
		t.Errorf("lane wait TYPE = %q, want histogram", typ)
	}
	for _, lane := range []string{"control", "data", "telemetry"} {
		labels := map[string]string{"deployment": "bridge", "lane": lane}
		if ds := exp.Find("starlink_lane_depth", labels); len(ds) != 1 {
			t.Errorf("lane_depth{lane=%q}: %d series, want 1", lane, len(ds))
		}
		if ds := exp.Find("starlink_lane_shed_total", labels); len(ds) != 1 || ds[0].Value != 0 {
			t.Errorf("lane_shed_total{lane=%q} = %+v, want one zero series", lane, ds)
		}
		if ds := exp.Find("starlink_lane_wait_seconds_count", labels); len(ds) != 1 {
			t.Errorf("lane_wait_seconds_count{lane=%q}: %d series, want 1", lane, len(ds))
		}
	}
	waits := exp.Find("starlink_lane_wait_seconds_count",
		map[string]string{"deployment": "bridge", "lane": "control"})
	if len(waits) != 1 || waits[0].Value == 0 {
		t.Errorf("control lane wait histogram empty after a session: %+v", waits)
	}
	comp := exp.Find("starlink_sessions_total",
		map[string]string{"deployment": "bridge", "case": "slp-to-bonjour", "result": "completed"})
	if len(comp) != 1 || comp[0].Value != 1 {
		t.Errorf("sessions_total completed = %+v, want 1", comp)
	}
	obs := exp.Find("starlink_observed_sessions_total", map[string]string{"result": "completed"})
	if len(obs) != 1 || obs[0].Value != 1 {
		t.Errorf("observed completed = %+v, want 1", obs)
	}

	// Histogram internal consistency: buckets cumulative, +Inf == count.
	buckets := exp.Find("starlink_stage_latency_seconds_bucket",
		map[string]string{"deployment": "bridge", "case": "slp-to-bonjour", "stage": "session"})
	last := -1.0
	for _, b := range buckets {
		if b.Value < last {
			t.Errorf("session buckets not cumulative: %v after %v", b.Value, last)
		}
		last = b.Value
	}
	if len(buckets) == 0 || buckets[len(buckets)-1].Labels["le"] != "+Inf" || buckets[len(buckets)-1].Value != 1 {
		t.Errorf("session +Inf bucket = %+v, want 1", buckets[len(buckets)-1:])
	}

	idx := scrape(t, col, "/debug/starlink/")
	if !strings.Contains(idx, "slp-to-bonjour") || !strings.Contains(idx, "stage") {
		t.Errorf("debug index missing case/latency rows:\n%s", idx)
	}
	if got := scrape(t, col, "/debug/starlink/sessions"); !strings.Contains(got, "0 live session(s)") {
		t.Errorf("sessions page = %q", got)
	}
}

// TestFailedSessionCarriesTrace force-closes a bridge with a live
// session and asserts the failure's SessionStats carries the
// flight-recorder trace, that the trace round-trips through its text
// form, and that the live session was visible via Sessions() first.
func TestFailedSessionCarriesTrace(t *testing.T) {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		t.Fatal(err)
	}
	col := starlink.NewCollector()
	var failed []starlink.SessionStats
	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour",
		starlink.WithObserver(col),
		starlink.WithObserver(starlink.Hooks{
			SessionEnd: func(s starlink.SessionStats) {
				if s.Err != nil {
					failed = append(failed, s)
				}
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	col.Register("bridge", bridge)

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(500*time.Millisecond))
	ua.Lookup("service:printer", func(slp.LookupResult) {})
	if err := rt.RunUntil(func() bool { return bridge.Metrics().Sessions.Live == 1 }, time.Minute); err != nil {
		t.Fatalf("no live session: %v", err)
	}

	live := bridge.Sessions()
	if len(live) != 1 || live[0].Case != "slp-to-bonjour" || len(live[0].Trace) == 0 {
		t.Fatalf("live sessions = %+v, want one with a trace", live)
	}
	if got := scrape(t, col, "/debug/starlink/sessions"); !strings.Contains(got, "1 live session(s)") ||
		!strings.Contains(got, "trace:") {
		t.Errorf("sessions page while live = %q", got)
	}

	// Tear the bridge down mid-session: the cut-off session fails and
	// must surface its trace.
	if err := bridge.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(failed) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(failed) != 1 {
		t.Fatalf("failed sessions = %d, want 1", len(failed))
	}
	tr := failed[0].Trace
	if len(tr) == 0 {
		t.Fatal("failed session carries no trace")
	}
	sawRecv := false
	for _, ev := range tr {
		if ev.Stage == "recv" {
			sawRecv = true
		}
	}
	if !sawRecv {
		t.Errorf("trace has no recv event: %s", starlink.FormatTrace(tr))
	}

	text := starlink.FormatTrace(tr)
	back, err := starlink.ParseTrace(text)
	if err != nil {
		t.Fatalf("ParseTrace(%q): %v", text, err)
	}
	if fmt.Sprint(back) != fmt.Sprint(tr) {
		t.Errorf("trace did not round-trip:\n got %v\nwant %v", back, tr)
	}

	// The collector retained the failure; its debug page shows the trace.
	if got := scrape(t, col, "/debug/starlink/failures"); !strings.Contains(got, "1 recent failure(s)") ||
		!strings.Contains(got, "trace:") {
		t.Errorf("failures page = %q", got)
	}
}

// TestCollectorDropClassification feeds structured drops straight into
// the observer interface and checks the errors.Is classification.
func TestCollectorDropClassification(t *testing.T) {
	col := starlink.NewCollector()
	col.OnDrop(starlink.Drop{Reason: fmt.Errorf("case x: %w", starlink.ErrOverloaded)})
	col.OnDrop(starlink.Drop{Reason: fmt.Errorf("case x: %w", starlink.ErrOverloaded)})
	col.OnDrop(starlink.Drop{Reason: fmt.Errorf("late: %w", starlink.ErrDraining)})
	col.OnDrop(starlink.Drop{Reason: fmt.Errorf("payload: %w", starlink.ErrAmbiguousPayload)})
	col.OnDrop(starlink.Drop{Reason: fmt.Errorf("whatever")})

	exp, err := promtext.Parse(strings.NewReader(scrape(t, col, "/metrics")))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"overloaded": 2, "draining": 1, "closed": 0, "ambiguous": 1, "other": 1}
	for reason, n := range want {
		ds := exp.Find("starlink_drops_total", map[string]string{"reason": reason})
		if len(ds) != 1 || ds[0].Value != n {
			t.Errorf("drops_total{reason=%q} = %+v, want %v", reason, ds, n)
		}
	}
}
