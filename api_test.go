package starlink_test

// API-compatibility guard for package starlink, in two parts:
//
//  1. TestPublicAPIGolden renders every exported declaration of the
//     package into a deterministic signature dump and compares it to
//     testdata/api.golden, so a PR that changes the public surface —
//     removes an identifier, changes a signature, adds a field — fails
//     until the golden file is regenerated deliberately with
//     `go test -run TestPublicAPIGolden -update .`.
//  2. TestNoInternalTypesInPublicAPI walks the same declarations and
//     fails if any exported signature, field, alias or declared type
//     references a type from an internal/ package: the public surface
//     must be expressible entirely in its own (and stdlib) terms, so
//     internals can evolve without breaking users.

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/api.golden")

// parsePackage parses the non-test files of the root package.
func parsePackage(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatal("no package files found")
	}
	return fset, files
}

// importMap maps local import names to import paths for one file.
func importMap(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		m[name] = path
	}
	return m
}

// internalRefs reports every reference to a starlink/internal package
// inside a type expression.
func internalRefs(expr ast.Expr, imports map[string]string) []string {
	var refs []string
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if path, ok := imports[id.Name]; ok && strings.HasPrefix(path, "starlink/internal") {
			refs = append(refs, fmt.Sprintf("%s.%s (%s)", id.Name, sel.Sel.Name, path))
		}
		return true
	})
	return refs
}

// render prints a node without doc comments.
func render(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := (&printer.Config{Mode: printer.UseSpaces, Tabwidth: 4}).Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// exportedStruct returns a copy of st with unexported fields elided
// (they are not part of the public surface).
func exportedStruct(st *ast.StructType) *ast.StructType {
	out := *st
	fields := &ast.FieldList{}
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			fields.List = append(fields.List, f) // embedded: keep
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			g := *f
			g.Names = names
			g.Doc, g.Comment = nil, nil
			fields.List = append(fields.List, &g)
		}
	}
	out.Fields = fields
	return &out
}

// publicDecl is one exported declaration: its sort key and rendering.
type publicDecl struct {
	key  string
	text string
	// typeExprs are the type expressions the leak check inspects,
	// with the file's import map.
	typeExprs []ast.Expr
	imports   map[string]string
	isAlias   bool
}

// collectAPI walks the package files and gathers every exported
// declaration.
func collectAPI(t *testing.T, fset *token.FileSet, files []*ast.File) []publicDecl {
	t.Helper()
	var decls []publicDecl
	for _, f := range files {
		imports := importMap(f)
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				recv := ""
				if d.Recv != nil && len(d.Recv.List) > 0 {
					rt := d.Recv.List[0].Type
					base := rt
					if star, ok := rt.(*ast.StarExpr); ok {
						base = star.X
					}
					id, ok := base.(*ast.Ident)
					if !ok || !id.IsExported() {
						continue // method on unexported type: not public
					}
					recv = id.Name + "."
				}
				fn := *d
				fn.Body = nil
				fn.Doc = nil
				var exprs []ast.Expr
				for _, fl := range []*ast.FieldList{d.Type.Params, d.Type.Results} {
					if fl == nil {
						continue
					}
					for _, p := range fl.List {
						exprs = append(exprs, p.Type)
					}
				}
				decls = append(decls, publicDecl{
					key:       "func " + recv + d.Name.Name,
					text:      render(t, fset, &fn),
					typeExprs: exprs,
					imports:   imports,
				})
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						cp := *s
						cp.Doc, cp.Comment = nil, nil
						if st, ok := cp.Type.(*ast.StructType); ok {
							cp.Type = exportedStruct(st)
						}
						var exprs []ast.Expr
						if st, ok := cp.Type.(*ast.StructType); ok {
							for _, fld := range st.Fields.List {
								exprs = append(exprs, fld.Type)
							}
						} else {
							exprs = append(exprs, cp.Type)
						}
						decls = append(decls, publicDecl{
							key:       "type " + s.Name.Name,
							text:      "type " + render(t, fset, &cp),
							typeExprs: exprs,
							imports:   imports,
							isAlias:   s.Assign.IsValid(),
						})
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, n := range s.Names {
							if !n.IsExported() {
								continue
							}
							text := kind + " " + n.Name
							var exprs []ast.Expr
							if s.Type != nil {
								text += " " + render(t, fset, s.Type)
								exprs = append(exprs, s.Type)
							}
							decls = append(decls, publicDecl{
								key:       kind + " " + n.Name,
								text:      text,
								typeExprs: exprs,
								imports:   imports,
							})
						}
					}
				}
			}
		}
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].key < decls[j].key })
	return decls
}

// TestPublicAPIGolden pins the exported surface of package starlink to
// testdata/api.golden.
func TestPublicAPIGolden(t *testing.T) {
	fset, files := parsePackage(t)
	decls := collectAPI(t, fset, files)
	var buf bytes.Buffer
	buf.WriteString("# Generated by `go test -run TestPublicAPIGolden -update .` — the exported API of package starlink.\n")
	for _, d := range decls {
		buf.WriteString(d.text)
		buf.WriteString("\n\n")
	}
	golden := filepath.Join("testdata", "api.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing %s (run `go test -run TestPublicAPIGolden -update .`): %v", golden, err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("public API changed.\nIf intentional, regenerate with `go test -run TestPublicAPIGolden -update .`\n--- got ---\n%s\n--- want ---\n%s",
			buf.String(), string(want))
	}
}

// TestNoInternalTypesInPublicAPI fails when an exported declaration
// leaks a type from starlink/internal/... — including type aliases,
// which would pin internals into the public surface.
func TestNoInternalTypesInPublicAPI(t *testing.T) {
	fset, files := parsePackage(t)
	decls := collectAPI(t, fset, files)
	for _, d := range decls {
		if d.isAlias {
			t.Errorf("%s is a type alias; the public surface must use real types", d.key)
		}
		for _, expr := range d.typeExprs {
			for _, ref := range internalRefs(expr, d.imports) {
				t.Errorf("%s leaks internal type %s", d.key, ref)
			}
		}
	}
}
