package starlink_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"starlink"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/simnet"
)

// drainHarness deploys slp-to-bonjour (as a bridge or a dispatcher),
// opens one live session with a long convergence window, and returns
// the pieces the drain tests share.
type drainHarness struct {
	rt    *starlink.Runtime
	sim   *simnet.Net
	dep   starlink.Deployment
	drops *[]starlink.Drop
}

func newDrainHarness(t *testing.T, dispatcher bool) *drainHarness {
	t.Helper()
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		t.Fatal(err)
	}
	drops := &[]starlink.Drop{}
	obs := starlink.WithObserver(starlink.Hooks{
		Drop: func(d starlink.Drop) { *drops = append(*drops, d) },
	})
	var dep starlink.Deployment
	if dispatcher {
		d, err := fw.DeployDispatcher(context.Background(), "10.0.0.5", []string{"slp-to-bonjour"}, obs)
		if err != nil {
			t.Fatal(err)
		}
		dep = d
	} else {
		b, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour", obs)
		if err != nil {
			t.Fatal(err)
		}
		dep = b
	}
	t.Cleanup(func() { _ = dep.Close() })

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	// One in-flight session: the client's convergence window keeps it
	// live until the virtual clock advances past it.
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(500*time.Millisecond))
	ua.Lookup("service:printer", func(slp.LookupResult) {})
	if err := rt.RunUntil(func() bool { return dep.Metrics().Sessions.Live == 1 }, time.Minute); err != nil {
		t.Fatalf("no live session: %v", err)
	}
	return &drainHarness{rt: rt, sim: sim, dep: dep, drops: drops}
}

// beginShutdown starts Shutdown on its own goroutine and waits (wall
// clock) for the deployment to reach Draining.
func (h *drainHarness) beginShutdown(t *testing.T, ctx context.Context) <-chan error {
	t.Helper()
	res := make(chan error, 1)
	go func() { res <- h.dep.Shutdown(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for h.dep.State() != starlink.StateDraining {
		if time.Now().After(deadline) {
			t.Fatalf("deployment never reached Draining (state %v)", h.dep.State())
		}
		time.Sleep(time.Millisecond)
	}
	return res
}

// testShutdownDrains is the graceful-drain contract, for both
// deployment kinds: a deployment with a live session, on Shutdown,
// accepts no new entries (late arrivals are refused with ErrDraining),
// completes the in-flight session, and then closes cleanly.
func testShutdownDrains(t *testing.T, dispatcher bool) {
	h := newDrainHarness(t, dispatcher)
	res := h.beginShutdown(t, context.Background())

	// A late arrival: a second client's initiator request lands while
	// the deployment is draining. It must be refused — and the refusal
	// must be observable, classified under ErrDraining.
	lateNode, _ := h.sim.NewNode("10.0.0.2")
	lateUA := slp.NewUserAgent(lateNode, slp.WithConvergenceWait(200*time.Millisecond))
	lateDone := false
	var lateURLs []string
	lateUA.Lookup("service:printer", func(r slp.LookupResult) { lateDone = true; lateURLs = r.URLs })
	if err := h.rt.RunUntil(func() bool { return len(*h.drops) > 0 }, time.Minute); err != nil {
		t.Fatalf("late arrival was not refused: %v", err)
	}
	drop := (*h.drops)[0]
	if !errors.Is(drop.Reason, starlink.ErrDraining) {
		t.Fatalf("drop reason %v is not ErrDraining", drop.Reason)
	}
	if drop.Case != "slp-to-bonjour" {
		t.Fatalf("drop = %+v", drop)
	}

	// The in-flight session completes once its convergence window
	// elapses — the drain waits for it rather than cutting it off.
	if err := h.rt.RunUntil(func() bool { return h.dep.Metrics().Sessions.Completed == 1 }, time.Minute); err != nil {
		t.Fatalf("in-flight session did not complete during drain: %v", err)
	}
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("Shutdown = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the last session drained")
	}
	if got := h.dep.State(); got != starlink.StateClosed {
		t.Fatalf("state = %v, want closed", got)
	}
	m := h.dep.Metrics()
	if m.Sessions.Completed != 1 || m.Sessions.Failed != 0 || m.Sessions.DrainRejected != 1 || m.Sessions.Live != 0 {
		t.Fatalf("metrics = %+v", m.Sessions)
	}
	// The refused client saw an empty window — exactly what an absent
	// service looks like to a legacy SLP client.
	h.sim.RunToQuiescence()
	if !lateDone || len(lateURLs) != 0 {
		t.Fatalf("late lookup: done=%v urls=%v", lateDone, lateURLs)
	}
}

func TestBridgeShutdownDrains(t *testing.T)     { testShutdownDrains(t, false) }
func TestDispatcherShutdownDrains(t *testing.T) { testShutdownDrains(t, true) }

// TestShutdownDeadlineForcesClose: when the drain context expires with
// sessions still live, Shutdown tears them down and reports the
// deadline.
func TestShutdownDeadlineForcesClose(t *testing.T) {
	h := newDrainHarness(t, false)
	// The virtual clock never advances past the session's convergence
	// window, so only the (wall-clock) deadline can end the drain.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res := h.beginShutdown(t, ctx)
	select {
	case err := <-res:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Shutdown = %v, want context.DeadlineExceeded in the chain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after its deadline")
	}
	if got := h.dep.State(); got != starlink.StateClosed {
		t.Fatalf("state = %v, want closed", got)
	}
	// The cut-off session must not vanish from the metrics surface: it
	// is counted Failed (torn down before completion).
	m := h.dep.Metrics().Sessions
	if m.Live != 0 || m.Completed != 0 || m.Failed != 1 {
		t.Fatalf("metrics after forced close = %+v, want the live session counted Failed", m)
	}
	for _, d := range *h.drops {
		t.Logf("drop: %+v", d)
	}
}

// TestShutdownIdempotent: shutting down twice (and closing after
// shutdown) is safe and returns nil.
func TestShutdownIdempotent(t *testing.T) {
	fw, err := starlink.New(starlink.Simulated())
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := b.State(); got != starlink.StateClosed {
		t.Fatalf("state = %v", got)
	}
}

// TestDispatcherSyncWhileDraining: registry reconciliation is refused
// once the dispatcher drains.
func TestDispatcherSyncWhileDraining(t *testing.T) {
	h := newDrainHarness(t, true)
	res := h.beginShutdown(t, context.Background())
	d := h.dep.(*starlink.Dispatcher)
	if err := d.Sync(); !errors.Is(err, starlink.ErrDraining) {
		t.Fatalf("Sync during drain = %v, want ErrDraining", err)
	}
	if err := h.rt.RunUntil(func() bool { return h.dep.Metrics().Sessions.Completed == 1 }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); !errors.Is(err, starlink.ErrClosed) {
		t.Fatalf("Sync after close = %v, want ErrClosed", err)
	}
}
