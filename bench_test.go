// Benchmarks regenerating the paper's evaluation (Fig. 12) plus
// micro-ablations of the framework's moving parts. The Fig. 12 benches
// run complete discovery interactions on the virtual-clock simulator,
// so one iteration costs milliseconds of wall time regardless of the
// protocol waits being simulated; reported values are wall-clock cost
// of the simulation, while the reproduced virtual-time tables come
// from `go run ./cmd/starlink-bench` (see EXPERIMENTS.md).
package starlink_test

import (
	"sync/atomic"
	"testing"

	"starlink/internal/automata"
	"starlink/internal/bench"
	"starlink/internal/composer"
	"starlink/internal/merge"
	"starlink/internal/message"
	"starlink/internal/models"
	"starlink/internal/parser"
	"starlink/internal/registry"
	"starlink/internal/translation"
	"starlink/internal/xpath"
)

// ---------------------------------------------------------------------
// Fig. 12(a): native legacy stacks
// ---------------------------------------------------------------------

func benchNative(b *testing.B, proto string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunNative(proto, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12aNativeSLP(b *testing.B)     { benchNative(b, "SLP") }
func BenchmarkFig12aNativeBonjour(b *testing.B) { benchNative(b, "Bonjour") }
func BenchmarkFig12aNativeUPnP(b *testing.B)    { benchNative(b, "UPnP") }

// ---------------------------------------------------------------------
// Fig. 12(b): the six Starlink connectors
// ---------------------------------------------------------------------

func benchBridge(b *testing.B, caseName string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunBridge(caseName, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12bCase1SLPToUPnP(b *testing.B)     { benchBridge(b, "slp-to-upnp") }
func BenchmarkFig12bCase2SLPToBonjour(b *testing.B)  { benchBridge(b, "slp-to-bonjour") }
func BenchmarkFig12bCase3UPnPToSLP(b *testing.B)     { benchBridge(b, "upnp-to-slp") }
func BenchmarkFig12bCase4UPnPToBonjour(b *testing.B) { benchBridge(b, "upnp-to-bonjour") }
func BenchmarkFig12bCase5BonjourToUPnP(b *testing.B) { benchBridge(b, "bonjour-to-upnp") }
func BenchmarkFig12bCase6BonjourToSLP(b *testing.B)  { benchBridge(b, "bonjour-to-slp") }

// ---------------------------------------------------------------------
// Concurrent session runtime: parallel vs sequential throughput
// ---------------------------------------------------------------------

// parallelUnitClients is sized so that at GOMAXPROCS ≥ 4 the parallel
// benchmark keeps ≥ 64 bridge sessions in flight (4 units × 16).
const parallelUnitClients = 16

// BenchmarkParallelSessions measures the concurrent engine under
// parallel load: every iteration bridges parallelUnitClients
// concurrent SLP sessions through one engine on an independent
// simulator, and RunParallel spreads iterations across GOMAXPROCS
// goroutines. Compare ns/op against BenchmarkSequentialSessions — the
// same workload driven one unit at a time — to see the parallel
// speedup (≥ 2× at GOMAXPROCS ≥ 4; the scaling axis is independent
// simulators per core, since each simulator serialises its own events
// to stay deterministic — see bench.RunParallelSessions). The same
// comparison is reproducible outside `go test` via
// `starlink-bench -table p`.
func BenchmarkParallelSessions(b *testing.B) {
	var seed atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := bench.RunParallelUnit(parallelUnitClients, seed.Add(1)); err != nil {
				// b.Fatal must not be called off the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkSequentialSessions is the sequential baseline for
// BenchmarkParallelSessions: identical per-iteration workload, no
// parallelism.
func BenchmarkSequentialSessions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunParallelUnit(parallelUnitClients, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablations: per-message cost of the framework's stages
// ---------------------------------------------------------------------

func mustRegistry(b *testing.B) *registry.Registry {
	b.Helper()
	reg, err := registry.Builtin()
	if err != nil {
		b.Fatal(err)
	}
	return reg
}

func slpRequestWire(b *testing.B) []byte {
	b.Helper()
	reg := mustRegistry(b)
	spec, _ := reg.Spec("SLP")
	c, err := composer.New(spec, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := message.New("SLP", "SLPSrvRequest")
	msg.AddPrimitive("Version", "Integer", message.Int(2))
	msg.AddPrimitive("FunctionID", "Integer", message.Int(1))
	msg.AddPrimitive("XID", "Integer", message.Int(42))
	msg.AddPrimitive("LangTag", "String", message.Str("en"))
	msg.AddPrimitive("SRVType", "String", message.Str("service:printer"))
	wire, err := c.Compose(msg)
	if err != nil {
		b.Fatal(err)
	}
	return wire
}

// BenchmarkParseSLPBinary measures the MDL-driven binary parser on an
// SLP SrvRequest (the generic interpreter the paper generates at
// runtime instead of compiling).
func BenchmarkParseSLPBinary(b *testing.B) {
	reg := mustRegistry(b)
	spec, _ := reg.Spec("SLP")
	p, err := parser.New(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	wire := slpRequestWire(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Steady-state parse: the message returns to the pool, as on
		// the engine's session path.
		msg, err := p.Parse(wire)
		if err != nil {
			b.Fatal(err)
		}
		msg.Release()
	}
}

// BenchmarkComposeSLPBinary measures the two-pass binary composer
// (function-field patching included).
func BenchmarkComposeSLPBinary(b *testing.B) {
	reg := mustRegistry(b)
	spec, _ := reg.Spec("SLP")
	c, err := composer.New(spec, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := message.New("SLP", "SLPSrvReply")
	msg.AddPrimitive("Version", "Integer", message.Int(2))
	msg.AddPrimitive("FunctionID", "Integer", message.Int(2))
	msg.AddPrimitive("XID", "Integer", message.Int(42))
	msg.AddPrimitive("LangTag", "String", message.Str("en"))
	msg.AddPrimitive("URLCount", "Integer", message.Int(1))
	msg.AddPrimitive("URLEntry", "String", message.Str("service:printer://10.0.0.9:515"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clone + release per iteration: compose mutates its message
		// (rule and function fields), and on the engine path each
		// composed message is session-owned and recycled.
		cl := msg.Clone()
		if _, err := c.Compose(cl); err != nil {
			b.Fatal(err)
		}
		cl.Release()
	}
}

// BenchmarkParseSSDPText measures the text-dialect parser with the
// Fields wildcard and structured URL explosion.
func BenchmarkParseSSDPText(b *testing.B) {
	reg := mustRegistry(b)
	spec, _ := reg.Spec("SSDP")
	p, err := parser.New(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	wire := []byte("HTTP/1.1 200 OK\r\n" +
		"CACHE-CONTROL: max-age=1800\r\n" +
		"LOCATION: http://10.0.0.7:5431/desc.xml\r\n" +
		"ST: urn:printer\r\n" +
		"USN: uuid:x\r\n\r\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := p.Parse(wire)
		if err != nil {
			b.Fatal(err)
		}
		msg.Release()
	}
}

// BenchmarkParseHTTPXMLBody measures text parsing plus XML body
// flattening (device description handling).
func BenchmarkParseHTTPXMLBody(b *testing.B) {
	reg := mustRegistry(b)
	spec, _ := reg.Spec("HTTP")
	p, err := parser.New(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	body := "<root><specVersion><major>1</major></specVersion>" +
		"<URLBase>http://10.0.0.7:5431/svc</URLBase>" +
		"<device><friendlyName>Printer</friendlyName></device></root>"
	wire := []byte("HTTP/1.1 200 OK\r\nContent-Type: text/xml\r\n\r\n" + body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := p.Parse(wire)
		if err != nil {
			b.Fatal(err)
		}
		msg.Release()
	}
}

// BenchmarkXPathGet measures field addressing through the Fig. 8 XPath
// subset.
func BenchmarkXPathGet(b *testing.B) {
	msg := message.New("SSDP", "SSDPResponse")
	msg.Add(&message.Field{Label: "LOCATION", Children: []*message.Field{
		{Label: "address", Value: message.Str("10.0.0.7")},
		{Label: "port", Value: message.Int(5431)},
	}})
	p := xpath.MustCompile("/field/structuredField[label='LOCATION']/primitiveField[label='port']/value")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Get(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslationApply measures applying the full Fig. 5
// assignment set for an outgoing SLP SrvReply.
func BenchmarkTranslationApply(b *testing.B) {
	reg := mustRegistry(b)
	m, err := reg.Merged("slp-to-upnp")
	if err != nil {
		b.Fatal(err)
	}
	funcs := translation.NewFuncRegistry()
	request := message.New("SLP", "SLPSrvRequest")
	request.AddPrimitive("XID", "Integer", message.Int(42))
	request.AddPrimitive("LangTag", "String", message.Str("en"))
	request.AddPrimitive("SRVType", "String", message.Str("service:printer"))
	ok := message.New("HTTP", "HTTPOk")
	ok.AddPrimitive("URLBase", "String", message.Str("http://10.0.0.7:5431/svc"))
	stored := map[string]*message.Message{"SLPSrvRequest": request, "HTTPOk": ok}
	env := translation.Env{Lookup: func(n string) *message.Message { return stored[n] }}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := message.NewPooled("SLP", "SLPSrvReply")
		if err := m.Logic.Apply(out, env, funcs); err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

// BenchmarkColorKey measures the §III-B perfect-hash encoding.
func BenchmarkColorKey(b *testing.B) {
	c := automata.NewColor(
		automata.Attr{Key: "transport_protocol", Value: "udp"},
		automata.Attr{Key: "port", Value: "427"},
		automata.Attr{Key: "mode", Value: "async"},
		automata.Attr{Key: "multicast", Value: "yes"},
		automata.Attr{Key: "group", Value: "239.255.255.253"},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Key()
	}
}

// BenchmarkMergedCompile measures linearising the Fig. 4 merged
// automaton into its execution program (the uncached compiler —
// Recompile bypasses the memo that the runtime path hits).
func BenchmarkMergedCompile(b *testing.B) {
	reg := mustRegistry(b)
	m, err := reg.Merged("slp-to-upnp")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Recompile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergedCompileMemoized measures what engine deployment
// actually pays: Compile on an already-compiled case. Expect zero
// allocations — repeated deployments of a cached case do zero
// recompilation.
func BenchmarkMergedCompileMemoized(b *testing.B) {
	reg := mustRegistry(b)
	m, err := reg.Merged("slp-to-upnp")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Compile(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Compile(); err != nil {
			b.Fatal(err)
		}
		if _, err := m.EntryProtocols(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledCaseHit measures the registry's compiled-case cache
// on the deployment hot path: program + entry index + full codec set
// for an unchanged case. Expect zero allocations after the first
// build — this is what makes redeploying (or hot-syncing) a cached
// case free.
func BenchmarkCompiledCaseHit(b *testing.B) {
	reg := mustRegistry(b)
	if _, err := reg.Compiled("slp-to-upnp"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Compiled("slp-to-upnp"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergedValidate measures the full merge-constraint check
// (δ constraints (2)/(3), weak-merge chain (4)).
func BenchmarkMergedValidate(b *testing.B) {
	reg := mustRegistry(b)
	m, err := reg.Merged("upnp-to-slp")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelLoad measures loading the entire built-in model corpus
// (four MDLs, eight automata, six merged automata) — the cost of
// "generating" a complete interoperability deployment at runtime.
func BenchmarkModelLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := registry.Builtin(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFramerText measures stream framing of an HTTP response.
func BenchmarkFramerText(b *testing.B) {
	reg := mustRegistry(b)
	spec, _ := reg.Spec("HTTP")
	fr, err := parser.NewFramer(spec)
	if err != nil {
		b.Fatal(err)
	}
	wire := []byte("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n0123456789")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fr.Frame(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// Silence unused-import lint for types used in helper signatures only.
var (
	_ = merge.StepRecv
	_ = models.SLPMDL
)
