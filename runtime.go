package starlink

import (
	"time"

	"starlink/internal/netapi"
	"starlink/internal/realnet"
	"starlink/internal/simnet"
)

// Runtime is the network substrate a framework deploys onto. Two
// implementations ship with the framework: the deterministic
// discrete-event simulator (Simulated) used by tests and the paper's
// Fig. 12 evaluation, and real loopback sockets (Loopback) used by the
// bridge daemon and the realnet examples.
type Runtime struct {
	rt netapi.Runtime
}

// Simulated returns a runtime backed by the deterministic network
// simulator: virtual clock, reproducible delivery order, and RunUntil
// conditions that observe fully quiesced engine state.
func Simulated() *Runtime { return &Runtime{rt: simnet.New()} }

// Loopback returns a runtime backed by real loopback UDP/TCP sockets
// with an in-process multicast registry. Time is the wall clock.
func Loopback() *Runtime { return &Runtime{rt: realnet.New()} }

// RunUntil drives the runtime until cond holds or the timeout (in
// runtime time — virtual under the simulator) elapses; it returns an
// error on timeout. Under the simulator, cond is evaluated only when
// the network and every engine are quiescent, so reading deployment
// metrics from cond is race-free.
func (r *Runtime) RunUntil(cond func() bool, timeout time.Duration) error {
	return r.rt.RunUntil(cond, timeout)
}

// Run drives the runtime for d (virtual or wall-clock time).
func (r *Runtime) Run(d time.Duration) { r.rt.Run(d) }

// Backend exposes the underlying runtime implementation — a
// *simnet.Net or *realnet.Runtime from this module's internal
// packages. In-module tools (examples, tests, the daemon) use it to
// create peer nodes for legacy protocol stacks; external users
// normally never need it.
func (r *Runtime) Backend() any { return r.rt }
