package starlink_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"starlink"
	"starlink/internal/netapi"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/simnet"
)

// TestPublicAPIQuickstart exercises the exact flow the package
// documentation promises.
func TestPublicAPIQuickstart(t *testing.T) {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		t.Fatal(err)
	}
	var sessions []starlink.SessionStats
	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour",
		starlink.WithObserver(starlink.Hooks{
			SessionEnd: func(s starlink.SessionStats) { sessions = append(sessions, s) },
		}),
		starlink.WithVars(map[string]string{"example.var": "x"}))
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	if got := bridge.State(); got != starlink.StateRunning {
		t.Fatalf("state = %v, want running", got)
	}

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(300*time.Millisecond))
	var urls []string
	done := false
	ua.Lookup("service:printer", func(r slp.LookupResult) { urls = r.URLs; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(urls) != 1 {
		t.Fatalf("urls = %v", urls)
	}
	if len(sessions) != 1 || sessions[0].Err != nil {
		t.Fatalf("sessions = %+v", sessions)
	}
	if sessions[0].Duration <= 0 || sessions[0].Duration > time.Second {
		t.Fatalf("translation time = %v", sessions[0].Duration)
	}
}

// TestPublicAPICustomModels loads a user-defined protocol pair through
// the registry — the runtime-extensibility path: a trivial text "PING"
// protocol bridged to a trivial binary "ECHO" protocol, defined
// entirely here, with zero framework changes.
func TestPublicAPICustomModels(t *testing.T) {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw := starlink.NewEmpty(rt)
	reg := fw.Registry()

	const pingMDL = `
<MDL protocol="PING" dialect="text">
 <Types><Method>String</Method><URI>String</URI><Version>String</Version><Payload>String</Payload></Types>
 <Header type="PING"><Method>32</Method><URI>32</URI><Version>13,10</Version><Fields>13,10:58</Fields></Header>
 <Message type="PingReq" mandatory="Payload"><Rule>Method=PING</Rule></Message>
 <Message type="PingResp"><Rule>Method=PONG</Rule></Message>
</MDL>`
	const echoMDL = `
<MDL protocol="ECHO" dialect="binary">
 <Types><Op>Integer</Op><Len>Integer</Len><Data>String</Data></Types>
 <Header type="ECHO"><Op>8</Op></Header>
 <Message type="EchoReq" mandatory="Data"><Rule>Op=1</Rule><Len>16</Len><Data>Len</Data></Message>
 <Message type="EchoResp"><Rule>Op=2</Rule><Len>16</Len><Data>Len</Data></Message>
</MDL>`
	const pingServer = `
<Automaton protocol="PING" initial="a" finals="b">
 <Color>
  <Attr key="transport_protocol" value="udp"/>
  <Attr key="port" value="7001"/>
  <Attr key="multicast" value="no"/>
 </Color>
 <State name="a"/><State name="b"/>
 <Transition from="a" to="b" action="receive" message="PingReq"/>
 <Transition from="b" to="b" action="send" message="PingResp" replyToOrigin="true"/>
</Automaton>`
	const echoClient = `
<Automaton protocol="ECHO" initial="a" finals="c">
 <Color>
  <Attr key="transport_protocol" value="udp"/>
  <Attr key="port" value="7002"/>
  <Attr key="multicast" value="yes"/>
  <Attr key="group" value="239.7.7.7"/>
 </Color>
 <State name="a"/><State name="b"/><State name="c"/>
 <Transition from="a" to="b" action="send" message="EchoReq"/>
 <Transition from="b" to="c" action="receive" message="EchoResp"/>
</Automaton>`
	const mergedDoc = `
<MergedAutomaton name="ping-to-echo" initiator="PING">
 <AutomatonRef protocol="PING" name="ping-server"/>
 <AutomatonRef protocol="ECHO" name="echo-client"/>
 <Equivalence output="EchoReq" inputs="PingReq"/>
 <Equivalence output="PingResp" inputs="EchoResp"/>
 <Delta from="PING:b" to="ECHO:a"/>
 <Delta from="ECHO:c" to="PING:b"/>
 <TranslationLogic>
  <Assignment>
   <Field><Message>EchoReq</Message><Xpath>/field/primitiveField[label='Data']/value</Xpath></Field>
   <Field><Message>PingReq</Message><Xpath>/field/primitiveField[label='Payload']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>PingResp</Message><Xpath>/field/primitiveField[label='URI']/value</Xpath></Field>
   <Value>ok</Value>
  </Assignment>
  <Assignment>
   <Field><Message>PingResp</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>P/1.0</Value>
  </Assignment>
  <Assignment>
   <Field><Message>PingResp</Message><Xpath>/field/primitiveField[label='Payload']/value</Xpath></Field>
   <Field><Message>EchoResp</Message><Xpath>/field/primitiveField[label='Data']/value</Xpath></Field>
  </Assignment>
 </TranslationLogic>
</MergedAutomaton>`

	for _, doc := range []string{pingMDL, echoMDL} {
		if err := reg.LoadMDL(doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.LoadAutomaton("ping-server", pingServer); err != nil {
		t.Fatal(err)
	}
	if err := reg.LoadAutomaton("echo-client", echoClient); err != nil {
		t.Fatal(err)
	}
	if err := reg.LoadMerged(mergedDoc); err != nil {
		t.Fatal(err)
	}

	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", "ping-to-echo")
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	// Legacy ECHO service (hand-rolled binary peer): op(1B) len(2B)
	// data; responds op=2 with upper-cased data.
	svcNode, _ := sim.NewNode("10.0.0.9")
	var svcSock netapi.UDPSocket
	svcSock, err = svcNode.JoinGroup(netapi.Addr{IP: "239.7.7.7", Port: 7002}, func(p netapi.Packet) {
		if len(p.Data) < 3 || p.Data[0] != 1 {
			return
		}
		n := int(p.Data[1])<<8 | int(p.Data[2])
		if 3+n > len(p.Data) {
			return
		}
		data := strings.ToUpper(string(p.Data[3 : 3+n]))
		out := append([]byte{2, byte(n >> 8), byte(n)}, data...)
		if err := svcSock.Send(p.From, out); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Legacy PING client (hand-rolled text peer).
	cliNode, _ := sim.NewNode("10.0.0.1")
	var resp string
	cliSock, err := cliNode.OpenUDP(0, func(p netapi.Packet) {
		text := string(p.Data)
		for _, line := range strings.Split(text, "\r\n") {
			if v, ok := strings.CutPrefix(line, "Payload:"); ok {
				resp = strings.TrimSpace(v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := "PING /svc P/1.0\r\nPayload: hello\r\n\r\n"
	if err := cliSock.Send(netapi.Addr{IP: "10.0.0.5", Port: 7001}, []byte(wire)); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()

	if resp != "HELLO" {
		t.Fatalf("resp = %q (bridged PING→ECHO→PING roundtrip broken)", resp)
	}
	if m := bridge.Metrics(); m.Sessions.Completed != 1 {
		t.Fatalf("completed = %d (metrics %+v)", m.Sessions.Completed, m)
	}
}
