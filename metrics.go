package starlink

import (
	"time"

	"starlink/internal/engine"
	"starlink/internal/hist"
	"starlink/internal/lanes"
	"starlink/internal/netapi"
	"starlink/internal/provision"
	"starlink/internal/trace"
)

// LatencyBucket is one cumulative histogram bucket: Count samples were
// ≤ UpperBound. Buckets nest Prometheus-style — each Count includes
// every smaller bucket's samples.
type LatencyBucket struct {
	UpperBound time.Duration
	Count      uint64
}

// StageLatency summarises the latency distribution of one pipeline
// stage (or of whole sessions, for the "session" row). Quantiles are
// log-linear histogram estimates with ≤6.25% relative error; Buckets
// is the fixed cumulative ladder the Prometheus exposition uses,
// exact at every bound.
type StageLatency struct {
	// Stage names the pipeline stage: "classify", "recv", "parse",
	// "transition", "translate", "compose", "send", or "session" for
	// the whole-session distribution (the paper's §VI translation time).
	Stage string
	// Count and Sum accumulate over all recorded samples.
	Count uint64
	Sum   time.Duration
	// P50, P90 and P99 are quantile estimates (upper bucket bounds).
	P50, P90, P99 time.Duration
	// Buckets is the cumulative distribution over the fixed ladder.
	Buckets []LatencyBucket
}

// SessionMetrics is a consistent snapshot of one deployment's (or one
// case's) session counters.
type SessionMetrics struct {
	// Live is the number of sessions currently executing.
	Live int
	// Completed and Failed count finished sessions.
	Completed int
	Failed    int
	// Rejected counts initiator requests refused by the max-sessions
	// bound (see WithMaxSessions).
	Rejected int
	// DrainRejected counts initiator requests refused because the
	// deployment was draining.
	DrainRejected int
	// Dropped counts payloads discarded from full inboxes or ingest
	// queues (backpressure; UDP semantics end to end).
	Dropped int
	// ParseErrors counts payloads no parser accepted.
	ParseErrors int
	// Ignored counts well-formed payloads no session wanted.
	Ignored int
	// Ingested counts payloads accepted off the deployment's entry
	// listeners; IngestedBatched counts the subset delivered by a
	// multi-packet batched receive syscall (recvmmsg) — nonzero only
	// on runtimes with the batched fast path, under enough load for
	// datagrams to queue between reads.
	Ingested        int
	IngestedBatched int
}

// add accumulates per-case metrics into an aggregate.
func (m SessionMetrics) add(o SessionMetrics) SessionMetrics {
	m.Live += o.Live
	m.Completed += o.Completed
	m.Failed += o.Failed
	m.Rejected += o.Rejected
	m.DrainRejected += o.DrainRejected
	m.Dropped += o.Dropped
	m.ParseErrors += o.ParseErrors
	m.Ignored += o.Ignored
	m.Ingested += o.Ingested
	m.IngestedBatched += o.IngestedBatched
	return m
}

// DispatchMetrics is a consistent snapshot of a dispatcher's payload
// classification counters. Zero-valued for single-case bridges, which
// bind their entry listeners directly.
type DispatchMetrics struct {
	// Dispatched counts payloads handed to a case's engine.
	Dispatched int
	// Ambiguous counts payloads that matched more than one case (each
	// was still dispatched, deterministically).
	Ambiguous int
	// Unroutable counts payloads that classified under some candidate
	// protocol but matched no case's entry message and no awaiting
	// session.
	Unroutable int
	// ParseErrors counts payloads no candidate classifier accepted.
	ParseErrors int
	// Suppressed counts the deployment's own multicast requests heard
	// back on shared listeners (never re-bridged: that would loop).
	Suppressed int
	// Rejected counts payloads that classified to a case whose engine
	// refused them outright (already closed).
	Rejected int
	// FastPath counts payloads classified by the signature index alone
	// (no parsing); SlowPath counts trial-parse classifications.
	FastPath int
	SlowPath int
	// FastPathLatency and SlowPathLatency are the latency distributions
	// of the classification decision itself, split by path.
	FastPathLatency StageLatency
	SlowPathLatency StageLatency
}

// LaneMetrics is a consistent snapshot of one ingest lane's admission
// accounting (see WithLanePolicy). One row per lane, priority order:
// "control", "data", "telemetry".
type LaneMetrics struct {
	// Lane names the lane: "control", "data" or "telemetry".
	Lane string
	// Depth is the number of payloads queued at snapshot time; Capacity
	// is the lane's ring bound (summed across ingest workers).
	Depth    int
	Capacity int
	// Admitted counts payloads accepted into the lane; Deferred counts
	// admissions that happened while the lane was pressured (the
	// transport gate was holding read loops paused); Shed counts
	// payloads dropped by the watermark policy, each surfaced as a drop
	// tagged ErrOverloaded.
	Admitted int
	Deferred int
	Shed     int
	// Wait is the queue-wait distribution: listener arrival to
	// ingest-worker pickup. Its Stage field repeats the lane name.
	Wait StageLatency
}

// Metrics is one deployment's full observability snapshot: lifecycle
// state, aggregate and per-case session counters, and — for
// dispatchers — the classification counters of the shared entry
// listeners. Obtain it from Deployment.Metrics at any time, from any
// goroutine.
type Metrics struct {
	// State is the deployment's lifecycle state at snapshot time.
	State State
	// Sessions aggregates the session counters across every case.
	Sessions SessionMetrics
	// Dispatch holds the dispatcher classification counters (zero for
	// a single-case bridge).
	Dispatch DispatchMetrics
	// Cases breaks the session counters down per hosted case.
	Cases map[string]SessionMetrics
	// Latency aggregates the staged latency distributions across every
	// case: one row per pipeline stage in pipeline order, then the
	// "session" row (whole-session durations).
	Latency []StageLatency
	// CaseLatency breaks the staged latency distributions down per
	// hosted case, same row layout as Latency.
	CaseLatency map[string][]StageLatency
	// Lanes aggregates the ingest-lane admission counters across every
	// case, one row per lane in priority order (control, data,
	// telemetry).
	Lanes []LaneMetrics
	// Transport is the process-wide transport syscall accounting —
	// batched vs per-datagram receives and sends, vectored stream
	// flushes. Process-global (all deployments in the process share
	// the transport layer), monotonic since process start.
	Transport TransportMetrics
}

// sessionMetricsOf converts engine counters to the public form.
func sessionMetricsOf(c engine.Counters) SessionMetrics {
	return SessionMetrics{
		Live:            c.Live,
		Completed:       c.Completed,
		Failed:          c.Failed,
		Rejected:        c.Rejected,
		DrainRejected:   c.DrainRejected,
		Dropped:         c.Dropped,
		ParseErrors:     c.ParseErrors,
		Ignored:         c.Ignored,
		Ingested:        c.Ingested,
		IngestedBatched: c.IngestedBatched,
	}
}

// stageLatencyOf converts one histogram snapshot to the public form.
func stageLatencyOf(stage string, s hist.Snapshot) StageLatency {
	ladder := hist.Ladder()
	cum := s.Cumulative(ladder)
	buckets := make([]LatencyBucket, len(ladder))
	for i, b := range ladder {
		buckets[i] = LatencyBucket{UpperBound: b, Count: cum[i]}
	}
	return StageLatency{
		Stage:   stage,
		Count:   s.Count,
		Sum:     s.Sum,
		P50:     s.Quantile(0.50),
		P90:     s.Quantile(0.90),
		P99:     s.Quantile(0.99),
		Buckets: buckets,
	}
}

// latencyRowsOf converts an engine latency dump to the public rows:
// the pipeline stages in order, then the "session" row.
func latencyRowsOf(d engine.LatencyDump) []StageLatency {
	rows := make([]StageLatency, 0, trace.NumStages+1)
	for i := range d.Stages {
		rows = append(rows, stageLatencyOf(trace.Stage(i).String(), d.Stages[i]))
	}
	rows = append(rows, stageLatencyOf("session", d.Session))
	return rows
}

// laneRowsOf converts an engine lane dump to the public rows, one per
// lane in priority order.
func laneRowsOf(d engine.LaneDump) []LaneMetrics {
	rows := make([]LaneMetrics, 0, lanes.NumLanes)
	for i := range d.Counters {
		c := d.Counters[i]
		rows = append(rows, LaneMetrics{
			Lane:     lanes.Lane(i).String(),
			Depth:    c.Depth,
			Capacity: c.Capacity,
			Admitted: int(c.Admitted),
			Deferred: int(c.Deferred),
			Shed:     int(c.Shed),
			Wait:     stageLatencyOf(lanes.Lane(i).String(), d.Wait[i]),
		})
	}
	return rows
}

// TransportMetrics is the process-wide transport syscall accounting:
// how ingress and egress traffic mapped onto syscalls. It pins the
// batched I/O fast paths structurally — RecvBatchPackets across
// RecvBatches gives the mean receive batch size, and
// RecvMultiBatches > 0 proves multi-packet batches actually happened —
// independent of wall-clock noise. Counters are process-global and
// monotonic; runtimes without the batched paths leave the batch
// counters at zero and count singles.
type TransportMetrics struct {
	// RecvBatches counts batched receive syscalls (recvmmsg);
	// RecvBatchPackets counts the datagrams they returned;
	// RecvMultiBatches counts the batches carrying more than one
	// datagram. RecvSingles counts per-datagram receives (portable
	// path).
	RecvBatches      uint64
	RecvBatchPackets uint64
	RecvMultiBatches uint64
	RecvSingles      uint64
	// SendBatches counts batched send syscalls (sendmmsg, multicast
	// fan-out); SendBatchPackets counts the datagrams they carried;
	// SendSingles counts per-datagram sends.
	SendBatches      uint64
	SendBatchPackets uint64
	SendSingles      uint64
	// StreamFlushes counts coalesced stream-writer flushes;
	// StreamFlushChunks counts the queued chunks those flushes drained
	// in one vectored write (writev) each.
	StreamFlushes     uint64
	StreamFlushChunks uint64
}

// transportMetricsOf converts the netapi transport counters to the
// public form.
func transportMetricsOf(s netapi.IOStats) TransportMetrics {
	return TransportMetrics{
		RecvBatches:       s.RecvBatches,
		RecvBatchPackets:  s.RecvBatchPackets,
		RecvMultiBatches:  s.RecvMultiBatches,
		RecvSingles:       s.RecvSingles,
		SendBatches:       s.SendBatches,
		SendBatchPackets:  s.SendBatchPackets,
		SendSingles:       s.SendSingles,
		StreamFlushes:     s.StreamFlushes,
		StreamFlushChunks: s.StreamFlushChunks,
	}
}

// dispatchMetricsOf converts dispatcher counters to the public form.
func dispatchMetricsOf(c provision.DispatchCounters) DispatchMetrics {
	return DispatchMetrics{
		Dispatched:  c.Dispatched,
		Ambiguous:   c.Ambiguous,
		Unroutable:  c.Unroutable,
		ParseErrors: c.ParseErrors,
		Suppressed:  c.Suppressed,
		Rejected:    c.Rejected,
		FastPath:    c.FastPath,
		SlowPath:    c.SlowPath,
	}
}
