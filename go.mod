module starlink

go 1.24
