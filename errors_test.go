package starlink_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"starlink"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/simnet"
)

// TestErrorTaxonomyDeploy exercises the deploy-time half of the
// structured error taxonomy with errors.Is assertions.
func TestErrorTaxonomyDeploy(t *testing.T) {
	newFW := func(t *testing.T) *starlink.Framework {
		t.Helper()
		fw, err := starlink.New(starlink.Simulated())
		if err != nil {
			t.Fatal(err)
		}
		return fw
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	tests := []struct {
		name string
		run  func(t *testing.T) error
		want error
	}{
		{
			name: "deploy bridge of unknown case",
			run: func(t *testing.T) error {
				_, err := newFW(t).DeployBridge(context.Background(), "10.0.0.5", "corba-to-soap")
				return err
			},
			want: starlink.ErrUnknownCase,
		},
		{
			name: "deploy dispatcher selecting unknown case",
			run: func(t *testing.T) error {
				_, err := newFW(t).DeployDispatcher(context.Background(), "10.0.0.5",
					[]string{"slp-to-bonjour", "corba-to-soap"})
				return err
			},
			want: starlink.ErrUnknownCase,
		},
		{
			name: "load malformed MDL",
			run: func(t *testing.T) error {
				return newFW(t).Registry().LoadMDL("<MDL protocol=")
			},
			want: starlink.ErrModelInvalid,
		},
		{
			name: "load merged automaton with unresolved references",
			run: func(t *testing.T) error {
				return newFW(t).Registry().LoadMerged(
					`<MergedAutomaton name="x" initiator="NOPE"><AutomatonRef protocol="NOPE" name="missing"/></MergedAutomaton>`)
			},
			want: starlink.ErrModelInvalid,
		},
		{
			name: "unload unknown case",
			run: func(t *testing.T) error {
				return newFW(t).Registry().Unload("corba-to-soap")
			},
			want: starlink.ErrUnknownCase,
		},
		{
			name: "deploy with cancelled context",
			run: func(t *testing.T) error {
				_, err := newFW(t).DeployBridge(cancelled, "10.0.0.5", "slp-to-bonjour")
				return err
			},
			want: context.Canceled,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatal("want an error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.want)
			}
		})
	}
}

// TestOptionScope verifies that the unified option set narrows per
// deployment kind: dispatcher-only options are rejected by
// DeployBridge with a descriptive error instead of being ignored.
func TestOptionScope(t *testing.T) {
	fw, err := starlink.New(starlink.Simulated())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour",
		starlink.WithTrialParseOnly()); err == nil {
		t.Fatal("dispatcher-only option must be rejected by DeployBridge")
	}
	// The same option is accepted by DeployDispatcher.
	d, err := fw.DeployDispatcher(context.Background(), "10.0.0.6", nil, starlink.WithTrialParseOnly())
	if err != nil {
		t.Fatal(err)
	}
	_ = d.Close()
}

// TestErrOverloadedObservable drives the max-sessions bound and
// asserts the rejection is observable as a drop wrapping
// ErrOverloaded.
func TestErrOverloadedObservable(t *testing.T) {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		t.Fatal(err)
	}
	var drops []starlink.Drop
	bridge, err := fw.DeployBridge(context.Background(), "10.0.0.5", "slp-to-bonjour",
		starlink.WithMaxSessions(1),
		starlink.WithObserver(starlink.Hooks{
			Drop: func(d starlink.Drop) { drops = append(drops, d) },
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 3; i++ {
		n, _ := sim.NewNode(fmt.Sprintf("10.0.1.%d", i+1))
		ua := slp.NewUserAgent(n, slp.WithConvergenceWait(300*time.Millisecond))
		ua.Lookup("service:printer", func(r slp.LookupResult) { done++ })
	}
	if err := rt.RunUntil(func() bool { return done == 3 }, time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()

	m := bridge.Metrics()
	if m.Sessions.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2 (metrics %+v)", m.Sessions.Rejected, m)
	}
	if len(drops) != 2 {
		t.Fatalf("drops = %d, want 2", len(drops))
	}
	for _, d := range drops {
		if !errors.Is(d.Reason, starlink.ErrOverloaded) {
			t.Fatalf("drop reason %v is not ErrOverloaded", d.Reason)
		}
		if d.Case != "slp-to-bonjour" || d.Origin == "" {
			t.Fatalf("drop missing detail: %+v", d)
		}
	}
}

// TestErrAmbiguousPayloadObservable sends one SLP request at a
// dispatcher hosting two SLP-initiated cases and asserts the
// classification event carries ErrAmbiguousPayload plus the candidate
// list, while the payload is still dispatched deterministically.
func TestErrAmbiguousPayloadObservable(t *testing.T) {
	rt := starlink.Simulated()
	sim := rt.Backend().(*simnet.Net)
	fw, err := starlink.New(rt)
	if err != nil {
		t.Fatal(err)
	}
	var ambiguous atomic.Pointer[starlink.Classification]
	d, err := fw.DeployDispatcher(context.Background(), "10.0.0.5",
		[]string{"slp-to-bonjour", "slp-to-upnp"},
		starlink.WithObserver(starlink.Hooks{
			Classify: func(c starlink.Classification) {
				if c.Ambiguous {
					ambiguous.Store(&c)
				}
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(300*time.Millisecond))
	done := false
	var urls []string
	ua.Lookup("service:printer", func(r slp.LookupResult) { done = true; urls = r.URLs })
	if err := rt.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(urls) != 1 {
		t.Fatalf("urls = %v (ambiguous payload was not dispatched)", urls)
	}
	ev := ambiguous.Load()
	if ev == nil {
		t.Fatal("no ambiguous classification observed")
	}
	if !errors.Is(ev.Err, starlink.ErrAmbiguousPayload) {
		t.Fatalf("classification err %v is not ErrAmbiguousPayload", ev.Err)
	}
	if len(ev.Candidates) != 2 || ev.Case != "slp-to-bonjour" {
		t.Fatalf("classification = %+v", ev)
	}
	if m := d.Metrics(); m.Dispatch.Ambiguous != 1 {
		t.Fatalf("dispatch metrics = %+v", m.Dispatch)
	}
}
