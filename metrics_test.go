package starlink_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"starlink"
	"starlink/internal/composer"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/protocols/slp"
	"starlink/internal/realnet"
	"starlink/internal/registry"
)

// composeSLPRequest builds a valid SLP SrvRequest wire form with the
// same MDL-driven composer the bridge uses.
func composeSLPRequest(t *testing.T, xid int) []byte {
	t.Helper()
	reg, err := registry.Builtin()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := reg.Spec("SLP")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := composer.New(spec, reg.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	req := message.New("SLP", "SLPSrvRequest")
	req.AddPrimitive("Version", "Integer", message.Int(2))
	req.AddPrimitive("FunctionID", "Integer", message.Int(1))
	req.AddPrimitive("XID", "Integer", message.Int(int64(xid)))
	req.AddPrimitive("LangTag", "String", message.Str("en"))
	req.AddPrimitive("SRVType", "String", message.Str("service:printer"))
	wire, err := comp.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// checkMetrics asserts the Metrics invariants that must hold at every
// instant, including mid-ingest and mid-drain: live counts never
// negative, per-case rows summing exactly to the aggregate, and the
// finished total (completed+failed+rejected+drain-rejected) never
// moving backwards between consecutive snapshots of the same
// observer. prevFinished is per-sampler: two goroutines can take
// snapshots in one order and compare them in the other, so cross-
// goroutine monotonicity is not a meaningful invariant.
func checkMetrics(t *testing.T, m starlink.Metrics, prevFinished *int64) {
	t.Helper()
	if m.Sessions.Live < 0 {
		t.Errorf("aggregate Live = %d, negative", m.Sessions.Live)
	}
	var sum starlink.SessionMetrics
	for cs, row := range m.Cases {
		if row.Live < 0 {
			t.Errorf("case %s Live = %d, negative", cs, row.Live)
		}
		sum.Live += row.Live
		sum.Completed += row.Completed
		sum.Failed += row.Failed
		sum.Rejected += row.Rejected
		sum.DrainRejected += row.DrainRejected
		sum.Dropped += row.Dropped
		sum.ParseErrors += row.ParseErrors
		sum.Ignored += row.Ignored
		sum.Ingested += row.Ingested
		sum.IngestedBatched += row.IngestedBatched
	}
	if sum != m.Sessions {
		t.Errorf("per-case rows sum to %+v, aggregate says %+v", sum, m.Sessions)
	}
	finished := int64(m.Sessions.Completed + m.Sessions.Failed + m.Sessions.Rejected + m.Sessions.DrainRejected)
	if finished < *prevFinished {
		t.Errorf("finished total went backwards: %d after %d", finished, *prevFinished)
	} else {
		*prevFinished = finished
	}
}

// TestMetricsConsistencyUnderLoad blasts concurrent SLP requests at a
// dispatcher over real sockets while sampler goroutines continuously
// read Metrics, then drains the dispatcher mid-traffic with a short
// deadline — the snapshots must satisfy the consistency invariants at
// every point, through ingest, teardown and after close. Run with
// -race in CI.
func TestMetricsConsistencyUnderLoad(t *testing.T) {
	rt := starlink.Loopback()
	net := rt.Backend().(*realnet.Runtime)
	fw, err := starlink.New(rt)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := fw.DeployDispatcher(context.Background(), "127.0.0.1",
		[]string{"slp-to-upnp", "slp-to-bonjour"},
		starlink.WithMaxSessions(32),
		starlink.WithReceiveTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Samplers: hammer the metrics surface while everything churns.
	// Each sampler tracks its own monotone-finished watermark.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prevFinished int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				checkMetrics(t, disp.Metrics(), &prevFinished)
				disp.Sessions() // live-session listing must be safe too
			}
		}()
	}

	// Senders: each goroutine owns a node with several sockets, every
	// socket a distinct origin (so each send can open a session), all
	// multicasting valid SLP requests at the shared entry listener.
	wire := composeSLPRequest(t, 7)
	dst := netapi.Addr{IP: slp.Group, Port: slp.Port}
	for g := 0; g < 4; g++ {
		node, err := net.NewNode("blast-" + string(rune('a'+g)))
		if err != nil {
			t.Fatal(err)
		}
		var socks []netapi.UDPSocket
		for s := 0; s < 8; s++ {
			sock, err := node.OpenUDP(0, func(netapi.Packet) {})
			if err != nil {
				t.Fatal(err)
			}
			defer sock.Close()
			socks = append(socks, sock)
		}
		wg.Add(1)
		go func(socks []netapi.UDPSocket) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := socks[i%len(socks)].Send(dst, wire); err != nil {
					return // listener gone: the drain has released it
				}
				time.Sleep(time.Millisecond)
			}
		}(socks)
	}

	// Let traffic and samplers overlap, then drain mid-blast with a
	// deadline short enough to force teardown of live sessions.
	time.Sleep(300 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	err = disp.Shutdown(ctx)
	cancel()
	_ = err // deadline teardown is an acceptable outcome here
	close(stop)
	wg.Wait()

	// Post-close snapshots must remain consistent and stable.
	final := disp.Metrics()
	var watermark int64
	checkMetrics(t, final, &watermark)
	if final.Sessions.Live != 0 {
		t.Errorf("Live = %d after close, want 0", final.Sessions.Live)
	}
	finished := final.Sessions.Completed + final.Sessions.Failed + final.Sessions.Rejected + final.Sessions.DrainRejected
	if finished == 0 {
		t.Error("no sessions finished — the blast never opened a session?")
	}
	if again := disp.Metrics(); again.Sessions != final.Sessions {
		t.Errorf("closed-dispatcher metrics not stable: %+v then %+v", final.Sessions, again.Sessions)
	}
}
