package automata

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// xmlAutomaton mirrors the on-disk XML form of a colored automaton:
//
//	<Automaton protocol="SLP" initial="s0" finals="s1">
//	  <Color>
//	    <Attr key="transport_protocol" value="udp"/>
//	    <Attr key="port" value="427"/>
//	  </Color>
//	  <State name="s0"/>
//	  <State name="s1"/>
//	  <Transition from="s0" to="s1" action="receive" message="SLPSrvRequest"/>
//	  <Transition from="s1" to="s1" action="send" message="SLPSrvReply" replyToOrigin="true"/>
//	</Automaton>
//
// A top-level <Color> applies to every state (the common case: a
// single-protocol automaton is uniformly k-colored); a <State> may
// embed its own <Color> to override.
type xmlAutomaton struct {
	XMLName  xml.Name        `xml:"Automaton"`
	Protocol string          `xml:"protocol,attr"`
	Initial  string          `xml:"initial,attr"`
	Finals   string          `xml:"finals,attr"`
	Color    *xmlColor       `xml:"Color"`
	States   []xmlState      `xml:"State"`
	Trans    []xmlTransition `xml:"Transition"`
}

type xmlColor struct {
	Attrs []xmlAttr `xml:"Attr"`
}

type xmlAttr struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

type xmlState struct {
	Name  string    `xml:"name,attr"`
	Color *xmlColor `xml:"Color"`
}

type xmlTransition struct {
	From          string `xml:"from,attr"`
	To            string `xml:"to,attr"`
	Action        string `xml:"action,attr"`
	Message       string `xml:"message,attr"`
	ReplyToOrigin bool   `xml:"replyToOrigin,attr"`
}

func (x *xmlColor) toColor() Color {
	if x == nil {
		return Color{}
	}
	attrs := make([]Attr, 0, len(x.Attrs))
	for _, a := range x.Attrs {
		attrs = append(attrs, Attr{Key: a.Key, Value: a.Value})
	}
	return NewColor(attrs...)
}

// ParseXML loads a colored automaton from XML and validates it.
func ParseXML(r io.Reader) (*Automaton, error) {
	var x xmlAutomaton
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("automata: %w", err)
	}
	a := &Automaton{Protocol: x.Protocol, Initial: x.Initial}
	for _, f := range strings.Split(x.Finals, ",") {
		if f = strings.TrimSpace(f); f != "" {
			a.Finals = append(a.Finals, f)
		}
	}
	base := x.Color.toColor()
	for _, s := range x.States {
		c := base
		if s.Color != nil {
			c = s.Color.toColor()
		}
		a.States = append(a.States, &State{Name: s.Name, Color: c})
	}
	for _, t := range x.Trans {
		var action ActionKind
		switch t.Action {
		case "receive", "?":
			action = Receive
		case "send", "!":
			action = Send
		default:
			return nil, fmt.Errorf("automata: %s: unknown action %q", x.Protocol, t.Action)
		}
		a.Transitions = append(a.Transitions, &Transition{
			From: t.From, To: t.To, Action: action,
			Message: t.Message, ReplyToOrigin: t.ReplyToOrigin,
		})
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Automaton, error) {
	return ParseXML(strings.NewReader(s))
}
