package automata

import (
	"strings"
	"testing"
	"testing/quick"
)

func slpColor() Color {
	return NewColor(
		Attr{AttrTransport, "udp"},
		Attr{AttrPort, "427"},
		Attr{AttrMode, "async"},
		Attr{AttrMulticast, "yes"},
		Attr{AttrGroup, "239.255.255.253"},
	)
}

// slpAutomaton reproduces the paper's Fig. 1.
func slpAutomaton() *Automaton {
	c := slpColor()
	return &Automaton{
		Protocol: "SLP",
		States:   []*State{{Name: "s0", Color: c}, {Name: "s1", Color: c}},
		Initial:  "s0",
		Finals:   []string{"s1"},
		Transitions: []*Transition{
			{From: "s0", To: "s1", Action: Receive, Message: "SLPSrvRequest"},
			{From: "s1", To: "s1", Action: Send, Message: "SLPSrvReply", ReplyToOrigin: true},
		},
	}
}

func TestColorCanonicalOrder(t *testing.T) {
	a := NewColor(Attr{"port", "427"}, Attr{"transport_protocol", "udp"})
	b := NewColor(Attr{"transport_protocol", "udp"}, Attr{"port", "427"})
	if !a.Equal(b) {
		t.Fatal("attribute order must not matter")
	}
	if a.Key() != b.Key() {
		t.Fatal("keys differ")
	}
	if a.Hash64() != b.Hash64() {
		t.Fatal("hashes differ")
	}
}

func TestColorAccessors(t *testing.T) {
	c := slpColor()
	if v, ok := c.Get(AttrGroup); !ok || v != "239.255.255.253" {
		t.Fatalf("group = %q,%v", v, ok)
	}
	if n, ok := c.GetInt(AttrPort); !ok || n != 427 {
		t.Fatalf("port = %d,%v", n, ok)
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("missing key should not be found")
	}
	if _, ok := c.GetInt(AttrMode); ok {
		t.Fatal("non-numeric GetInt should fail")
	}
	if c.IsZero() {
		t.Fatal("colored should not be zero")
	}
	var zero Color
	if !zero.IsZero() || zero.String() != "⊥" {
		t.Fatal("zero color misbehaves")
	}
}

func TestColorKeyInjective(t *testing.T) {
	// Tuples engineered to collide under naive concatenation.
	a := NewColor(Attr{"ab", "c"})
	b := NewColor(Attr{"a", "bc"})
	if a.Equal(b) {
		t.Fatal("distinct tuples must have distinct keys")
	}
	c := NewColor(Attr{"a", "b"}, Attr{"c", "d"})
	d := NewColor(Attr{"a", "bc"}, Attr{"", "d"})
	if c.Equal(d) {
		t.Fatal("length-prefixing failed")
	}
}

// Property: Key is injective over generated attribute tuples — the
// paper's "perfect hash function ... without collisions".
func TestQuickColorKeyInjective(t *testing.T) {
	type tuple struct {
		K1, V1, K2, V2 string
	}
	f := func(a, b tuple) bool {
		ca := NewColor(Attr{a.K1, a.V1}, Attr{a.K2, a.V2})
		cb := NewColor(Attr{b.K1, b.V1}, Attr{b.K2, b.V2})
		// Equal canonical attrs => equal key; different attrs => different key.
		sameAttrs := func() bool {
			x, y := ca.Attrs(), cb.Attrs()
			if len(x) != len(y) {
				return false
			}
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
			return true
		}()
		return sameAttrs == ca.Equal(cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFig1(t *testing.T) {
	a := slpAutomaton()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Colors()) != 1 {
		t.Fatalf("colors = %d, want 1 (single-protocol automaton)", len(a.Colors()))
	}
}

func TestValidateErrors(t *testing.T) {
	base := slpAutomaton

	t.Run("duplicate state", func(t *testing.T) {
		a := base()
		a.States = append(a.States, &State{Name: "s0", Color: slpColor()})
		if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("undefined initial", func(t *testing.T) {
		a := base()
		a.Initial = "ghost"
		if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "initial") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("no finals", func(t *testing.T) {
		a := base()
		a.Finals = nil
		if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "accepting") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("transition to undefined state", func(t *testing.T) {
		a := base()
		a.Transitions = append(a.Transitions, &Transition{From: "s1", To: "zz", Action: Send, Message: "M"})
		if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "undefined state") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("color crossing without delta", func(t *testing.T) {
		a := base()
		a.States = append(a.States, &State{Name: "s2", Color: NewColor(Attr{"port", "80"})})
		a.Transitions = append(a.Transitions, &Transition{From: "s1", To: "s2", Action: Send, Message: "M"})
		if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "crosses colors") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unreachable state", func(t *testing.T) {
		a := base()
		a.States = append(a.States, &State{Name: "island", Color: slpColor()})
		if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("transition without message", func(t *testing.T) {
		a := base()
		a.Transitions[0].Message = ""
		if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "no message") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestOutInTransitions(t *testing.T) {
	a := slpAutomaton()
	out := a.OutTransitions("s0")
	if len(out) != 1 || out[0].Message != "SLPSrvRequest" {
		t.Fatalf("out = %+v", out)
	}
	in := a.InTransitions("s1")
	if len(in) != 2 {
		t.Fatalf("in = %d", len(in))
	}
	if len(a.OutTransitions("nope")) != 0 {
		t.Fatal("unknown state should have no transitions")
	}
}

func TestTransitionLabel(t *testing.T) {
	tr := &Transition{Action: Receive, Message: "SLPSrvRequest"}
	if tr.Label() != "?SLPSrvRequest" {
		t.Fatalf("label = %q", tr.Label())
	}
	tr.Action = Send
	if tr.Label() != "!SLPSrvRequest" {
		t.Fatalf("label = %q", tr.Label())
	}
	if ActionInvalid.String() != "¿" {
		t.Fatal("invalid action string")
	}
}

func TestDOTExport(t *testing.T) {
	dot := slpAutomaton().DOT()
	for _, want := range []string{
		`digraph "SLP"`,
		`"s0" -> "s1" [label="?SLPSrvRequest"]`,
		`"s1" -> "s1" [label="!SLPSrvReply"]`,
		`"s1" [shape=doublecircle]`,
		"group=239.255.255.253",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

const fig2XML = `
<Automaton protocol="SSDP" initial="s0" finals="s2">
 <Color>
  <Attr key="transport_protocol" value="udp"/>
  <Attr key="port" value="1900"/>
  <Attr key="mode" value="async"/>
  <Attr key="multicast" value="yes"/>
  <Attr key="group" value="239.255.255.250"/>
 </Color>
 <State name="s0"/>
 <State name="s1"/>
 <State name="s2"/>
 <Transition from="s0" to="s1" action="send" message="SSDPMSearch"/>
 <Transition from="s1" to="s2" action="receive" message="SSDPResponse"/>
</Automaton>`

func TestParseXMLFig2(t *testing.T) {
	a, err := ParseXMLString(fig2XML)
	if err != nil {
		t.Fatal(err)
	}
	if a.Protocol != "SSDP" || a.Initial != "s0" || len(a.Finals) != 1 {
		t.Fatalf("a = %+v", a)
	}
	s, ok := a.StateByName("s1")
	if !ok {
		t.Fatal("s1 missing")
	}
	if g, _ := s.Color.Get(AttrGroup); g != "239.255.255.250" {
		t.Fatalf("group = %q", g)
	}
	if len(a.Transitions) != 2 || a.Transitions[0].Action != Send {
		t.Fatalf("transitions = %+v", a.Transitions)
	}
}

func TestParseXMLStateColorOverride(t *testing.T) {
	x := `
<Automaton protocol="P" initial="a" finals="a">
 <Color><Attr key="port" value="1"/></Color>
 <State name="a">
  <Color><Attr key="port" value="2"/></Color>
 </State>
</Automaton>`
	a, err := ParseXMLString(x)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := a.StateByName("a")
	if p, _ := s.Color.GetInt("port"); p != 2 {
		t.Fatalf("override port = %d", p)
	}
}

func TestParseXMLBadAction(t *testing.T) {
	x := `
<Automaton protocol="P" initial="a" finals="a">
 <State name="a"/>
 <Transition from="a" to="a" action="teleport" message="M"/>
</Automaton>`
	if _, err := ParseXMLString(x); err == nil || !strings.Contains(err.Error(), "unknown action") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseXMLInvalidAutomaton(t *testing.T) {
	x := `<Automaton protocol="P" initial="ghost" finals="a"><State name="a"/></Automaton>`
	if _, err := ParseXMLString(x); err == nil {
		t.Fatal("invalid automaton should fail validation")
	}
	if _, err := ParseXMLString("<not xml"); err == nil {
		t.Fatal("bad xml should fail")
	}
}
