// Package automata implements Starlink's k-colored automata
// (paper §III-B). A protocol's behaviour is an automaton
// A_k = (Q, M, q0, F, Act, →, ⇒) whose transitions send (!) or receive
// (?) abstract messages. States carry a *color*: the tuple of low-level
// network semantics (transport protocol, port, unicast/multicast,
// sync/async mode, group address). An automaton may pass between two
// states over the network only if they share a color; crossing colors
// requires a δ-transition in a merged automaton (package merge).
//
// The color function f maps the ordered attribute tuple to a unique
// value k "without collisions" — Color.Key is that injective encoding,
// with Hash64 as a compact display form.
package automata

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// Attr is one key-value pair of network semantics, e.g.
// {"transport_protocol", "udp"} or {"port", "427"}.
type Attr struct {
	Key   string
	Value string
}

// Color is an ordered list of network attributes. The zero Color is the
// "uncolored" value; merged-automaton bridge-only states may be
// uncolored.
type Color struct {
	attrs []Attr
}

// NewColor builds a color from attributes. Attributes are
// canonicalised by key so semantically equal colors compare equal
// regardless of declaration order.
func NewColor(attrs ...Attr) Color {
	cp := make([]Attr, len(attrs))
	copy(cp, attrs)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Key < cp[j].Key })
	return Color{attrs: cp}
}

// Attrs returns the canonicalised attributes.
func (c Color) Attrs() []Attr {
	out := make([]Attr, len(c.attrs))
	copy(out, c.attrs)
	return out
}

// Get returns the value of an attribute key.
func (c Color) Get(key string) (string, bool) {
	for _, a := range c.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// GetInt returns an integer attribute.
func (c Color) GetInt(key string) (int, bool) {
	v, ok := c.Get(key)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

// IsZero reports whether the color has no attributes.
func (c Color) IsZero() bool { return len(c.attrs) == 0 }

// Key is the perfect hash function f of §III-B: an injective canonical
// encoding of the attribute tuple. Two colors are the same k iff their
// Keys are equal. Keys and values are length-prefixed so no two
// distinct tuples share an encoding.
func (c Color) Key() string {
	var sb strings.Builder
	for _, a := range c.attrs {
		fmt.Fprintf(&sb, "%d:%s=%d:%s;", len(a.Key), a.Key, len(a.Value), a.Value)
	}
	return sb.String()
}

// Hash64 derives a compact 64-bit FNV-1a digest of the Key for display
// and logging. (Key itself is the collision-free identity.)
func (c Color) Hash64() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.Key()))
	return h.Sum64()
}

// Equal reports whether two colors are the same k.
func (c Color) Equal(o Color) bool { return c.Key() == o.Key() }

// String renders the color compactly for diagnostics.
func (c Color) String() string {
	if c.IsZero() {
		return "⊥"
	}
	parts := make([]string, 0, len(c.attrs))
	for _, a := range c.attrs {
		parts = append(parts, a.Key+"="+a.Value)
	}
	return strings.Join(parts, ",")
}

// Well-known color attribute keys used by the network engine.
const (
	AttrTransport = "transport_protocol" // "udp" or "tcp"
	AttrPort      = "port"
	AttrMode      = "mode"      // "sync" or "async"
	AttrMulticast = "multicast" // "yes" or "no"
	AttrGroup     = "group"     // multicast group address
)

// ActionKind distinguishes receive (?) from send (!) transitions,
// the Act = {?, !} set of the paper.
type ActionKind int

// Transition actions.
const (
	ActionInvalid ActionKind = iota
	Receive                  // ?m
	Send                     // !m
)

// String renders the paper's notation.
func (a ActionKind) String() string {
	switch a {
	case Receive:
		return "?"
	case Send:
		return "!"
	default:
		return "¿"
	}
}

// Transition is one edge of the automaton: s1 --(?m|!m)--> s2.
type Transition struct {
	From    string
	To      string
	Action  ActionKind
	Message string // abstract message name, e.g. "SLPSrvRequest"
	// ReplyToOrigin marks a send that must be addressed to the peer
	// whose request opened the session rather than to the color's
	// group/port (the legacy client awaiting the reply).
	ReplyToOrigin bool
}

// Label renders "?SLPSrvRequest" / "!SLPSrvReply".
func (t *Transition) Label() string { return t.Action.String() + t.Message }

// State is one node of the automaton.
type State struct {
	Name  string
	Color Color
}

// Automaton is a k-colored automaton for a single protocol.
type Automaton struct {
	// Protocol names the protocol whose behaviour this describes; it
	// must match the MDL spec's protocol so the engine can pair them.
	Protocol    string
	States      []*State
	Initial     string
	Finals      []string
	Transitions []*Transition
}

// StateByName returns the named state.
func (a *Automaton) StateByName(name string) (*State, bool) {
	for _, s := range a.States {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// IsFinal reports whether the named state is accepting.
func (a *Automaton) IsFinal(name string) bool {
	for _, f := range a.Finals {
		if f == name {
			return true
		}
	}
	return false
}

// OutTransitions returns the transitions leaving a state.
func (a *Automaton) OutTransitions(state string) []*Transition {
	var out []*Transition
	for _, t := range a.Transitions {
		if t.From == state {
			out = append(out, t)
		}
	}
	return out
}

// InTransitions returns the transitions entering a state.
func (a *Automaton) InTransitions(state string) []*Transition {
	var out []*Transition
	for _, t := range a.Transitions {
		if t.To == state {
			out = append(out, t)
		}
	}
	return out
}

// Colors returns the distinct colors used by the automaton's states, in
// first-use order. A single-protocol automaton is k-colored with one
// color; a merged automaton has one per protocol.
func (a *Automaton) Colors() []Color {
	var out []Color
	seen := map[string]bool{}
	for _, s := range a.States {
		if s.Color.IsZero() {
			continue
		}
		k := s.Color.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s.Color)
		}
	}
	return out
}

// Validate checks well-formedness: states named and unique, initial and
// final states exist, transitions reference existing states, every
// network transition connects same-colored states (the §III-B rule that
// an automaton passes between states "without any network issues, only
// if the concerned states share the same color"), and all states are
// reachable from the initial state.
func (a *Automaton) Validate() error {
	if a.Protocol == "" {
		return fmt.Errorf("automata: automaton without protocol name")
	}
	if len(a.States) == 0 {
		return fmt.Errorf("automata: %s: no states", a.Protocol)
	}
	names := map[string]bool{}
	for _, s := range a.States {
		if s.Name == "" {
			return fmt.Errorf("automata: %s: state without name", a.Protocol)
		}
		if names[s.Name] {
			return fmt.Errorf("automata: %s: duplicate state %q", a.Protocol, s.Name)
		}
		names[s.Name] = true
	}
	if a.Initial == "" {
		return fmt.Errorf("automata: %s: no initial state", a.Protocol)
	}
	if !names[a.Initial] {
		return fmt.Errorf("automata: %s: initial state %q undefined", a.Protocol, a.Initial)
	}
	if len(a.Finals) == 0 {
		return fmt.Errorf("automata: %s: no accepting states", a.Protocol)
	}
	for _, f := range a.Finals {
		if !names[f] {
			return fmt.Errorf("automata: %s: final state %q undefined", a.Protocol, f)
		}
	}
	adj := map[string][]string{}
	for _, t := range a.Transitions {
		if !names[t.From] || !names[t.To] {
			return fmt.Errorf("automata: %s: transition %s references undefined state (%s -> %s)",
				a.Protocol, t.Label(), t.From, t.To)
		}
		if t.Action != Receive && t.Action != Send {
			return fmt.Errorf("automata: %s: transition %s -> %s has invalid action",
				a.Protocol, t.From, t.To)
		}
		if t.Message == "" {
			return fmt.Errorf("automata: %s: transition %s -> %s has no message",
				a.Protocol, t.From, t.To)
		}
		from, _ := a.StateByName(t.From)
		to, _ := a.StateByName(t.To)
		if !from.Color.Equal(to.Color) {
			return fmt.Errorf("automata: %s: transition %s crosses colors %s -> %s without a δ-transition",
				a.Protocol, t.Label(), from.Color, to.Color)
		}
		adj[t.From] = append(adj[t.From], t.To)
	}
	// Reachability from the initial state.
	reached := map[string]bool{a.Initial: true}
	queue := []string{a.Initial}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if !reached[next] {
				reached[next] = true
				queue = append(queue, next)
			}
		}
	}
	for _, s := range a.States {
		if !reached[s.Name] {
			return fmt.Errorf("automata: %s: state %q unreachable from %q", a.Protocol, s.Name, a.Initial)
		}
	}
	return nil
}

// DOT renders the automaton in Graphviz format; the regenerable form of
// the paper's Figs. 1, 2, 3 and 9.
func (a *Automaton) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", a.Protocol)
	fmt.Fprintf(&sb, "  label=%q;\n", fmt.Sprintf("%s  k=%#x", colorLegend(a), colorsHash(a)))
	for _, s := range a.States {
		shape := "circle"
		if a.IsFinal(s.Name) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&sb, "  %q [shape=%s];\n", s.Name, shape)
	}
	fmt.Fprintf(&sb, "  _start [shape=point];\n  _start -> %q;\n", a.Initial)
	for _, t := range a.Transitions {
		fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", t.From, t.To, t.Label())
	}
	sb.WriteString("}\n")
	return sb.String()
}

func colorLegend(a *Automaton) string {
	cs := a.Colors()
	parts := make([]string, 0, len(cs))
	for _, c := range cs {
		parts = append(parts, c.String())
	}
	return strings.Join(parts, " | ")
}

func colorsHash(a *Automaton) uint64 {
	h := fnv.New64a()
	for _, c := range a.Colors() {
		h.Write([]byte(c.Key()))
	}
	return h.Sum64()
}
