package message

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		text string
	}{
		{"int", Int(42), KindInt, "42"},
		{"negative int", Int(-7), KindInt, "-7"},
		{"string", Str("hello"), KindString, "hello"},
		{"bytes", Bytes([]byte{0xde, 0xad}), KindBytes, "dead"},
		{"bool true", Bool(true), KindBool, "true"},
		{"bool false", Bool(false), KindBool, "false"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
			if got := tt.v.Text(); got != tt.text {
				t.Errorf("Text() = %q, want %q", got, tt.text)
			}
			if !tt.v.IsValid() {
				t.Error("IsValid() = false, want true")
			}
		})
	}
}

func TestZeroValueInvalid(t *testing.T) {
	var v Value
	if v.IsValid() {
		t.Fatal("zero Value should be invalid")
	}
	if v.Text() != "" {
		t.Fatalf("zero Value Text() = %q, want empty", v.Text())
	}
	if v.Kind().String() != "invalid" {
		t.Fatalf("zero Kind = %q", v.Kind().String())
	}
}

func TestValueAccessors(t *testing.T) {
	if i, ok := Int(9).AsInt(); !ok || i != 9 {
		t.Errorf("AsInt = %d,%v", i, ok)
	}
	if _, ok := Int(9).AsString(); ok {
		t.Error("AsString on int should fail")
	}
	if s, ok := Str("x").AsString(); !ok || s != "x" {
		t.Errorf("AsString = %q,%v", s, ok)
	}
	if b, ok := Bytes([]byte{1, 2}).AsBytes(); !ok || len(b) != 2 {
		t.Errorf("AsBytes = %v,%v", b, ok)
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Errorf("AsBool = %v,%v", v, ok)
	}
}

func TestBytesValueIsCopied(t *testing.T) {
	src := []byte{1, 2, 3}
	v := Bytes(src)
	src[0] = 99
	got, _ := v.AsBytes()
	if got[0] != 1 {
		t.Fatal("Bytes() must copy its input")
	}
	got[1] = 99
	again, _ := v.AsBytes()
	if again[1] != 2 {
		t.Fatal("AsBytes() must return a copy")
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Str("1"), false},
		{Str("a"), Str("a"), true},
		{Bytes([]byte{1}), Bytes([]byte{1}), true},
		{Bytes([]byte{1}), Bytes([]byte{2}), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Value{}, Value{}, true},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMessageAddAndField(t *testing.T) {
	m := New("SLP", "SLPSrvRequest")
	m.AddPrimitive("XID", "Integer", Int(77))
	m.AddPrimitive("SRVType", "String", Str("printer"))

	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	f, ok := m.Field("XID")
	if !ok {
		t.Fatal("XID not found")
	}
	if v, _ := f.Value.AsInt(); v != 77 {
		t.Errorf("XID = %d, want 77", v)
	}
	if _, ok := m.Field("missing"); ok {
		t.Error("missing field should not be found")
	}
}

func TestMessageAddReplacesSameLabel(t *testing.T) {
	m := New("P", "M")
	m.AddPrimitive("A", "Integer", Int(1))
	m.AddPrimitive("B", "Integer", Int(2))
	m.AddPrimitive("A", "Integer", Int(3))
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after replace", m.Len())
	}
	// Order must be preserved: A stays first.
	if m.Fields()[0].Label != "A" {
		t.Fatalf("first field = %q, want A", m.Fields()[0].Label)
	}
	f, _ := m.Field("A")
	if v, _ := f.Value.AsInt(); v != 3 {
		t.Fatalf("A = %d, want 3", v)
	}
}

func TestStructuredFieldPath(t *testing.T) {
	m := New("SSDP", "SSDPResponse")
	loc := &Field{Label: "LOCATION", Type: "URL", Children: []*Field{
		{Label: "protocol", Type: "String", Value: Str("http")},
		{Label: "address", Type: "String", Value: Str("10.0.0.2")},
		{Label: "port", Type: "Integer", Value: Int(5431)},
		{Label: "resource", Type: "String", Value: Str("/desc.xml")},
	}}
	m.Add(loc)

	f, ok := m.Path("LOCATION.port")
	if !ok {
		t.Fatal("LOCATION.port not found")
	}
	if v, _ := f.Value.AsInt(); v != 5431 {
		t.Errorf("port = %d, want 5431", v)
	}
	if !loc.IsStructured() {
		t.Error("LOCATION should be structured")
	}
	if _, ok := m.Path("LOCATION.nope"); ok {
		t.Error("bogus child found")
	}
	if _, ok := m.Path("NOPE.port"); ok {
		t.Error("bogus root found")
	}
}

func TestSetPathCreatesNested(t *testing.T) {
	m := New("P", "M")
	m.SetPath("URL.port", Int(80))
	f, ok := m.Path("URL.port")
	if !ok {
		t.Fatal("URL.port missing after SetPath")
	}
	if v, _ := f.Value.AsInt(); v != 80 {
		t.Fatalf("port = %d", v)
	}
	// Overwrite through SetPath.
	m.SetPath("URL.port", Int(8080))
	f, _ = m.Path("URL.port")
	if v, _ := f.Value.AsInt(); v != 8080 {
		t.Fatalf("port after overwrite = %d", v)
	}
}

func TestMandatoryFields(t *testing.T) {
	m := New("SLP", "SLPSrvReply")
	m.Add(&Field{Label: "URL", Type: "String", Mandatory: true, Value: Str("service:x")})
	m.Add(&Field{Label: "XID", Type: "Integer", Mandatory: true, Value: Int(1)})
	m.Add(&Field{Label: "LangTag", Type: "String", Value: Str("en")})
	got := m.MandatoryFields()
	if len(got) != 2 || got[0] != "URL" || got[1] != "XID" {
		t.Fatalf("MandatoryFields = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New("P", "M")
	m.AddPrimitive("A", "Integer", Int(1))
	m.Add(&Field{Label: "S", Children: []*Field{{Label: "x", Value: Str("v")}}})
	cp := m.Clone()
	if !m.Equal(cp) {
		t.Fatal("clone not equal")
	}
	// Mutating the clone must not affect the original.
	f, _ := cp.Path("S.x")
	f.Value = Str("changed")
	orig, _ := m.Path("S.x")
	if s, _ := orig.Value.AsString(); s != "v" {
		t.Fatal("clone aliases original")
	}
}

func TestMessageEqual(t *testing.T) {
	a := New("P", "M")
	a.AddPrimitive("A", "Integer", Int(1))
	b := New("P", "M")
	b.AddPrimitive("A", "Integer", Int(1))
	if !a.Equal(b) {
		t.Fatal("equal messages reported unequal")
	}
	b.AddPrimitive("B", "Integer", Int(2))
	if a.Equal(b) {
		t.Fatal("different lengths reported equal")
	}
	c := New("P", "Other")
	c.AddPrimitive("A", "Integer", Int(1))
	if a.Equal(c) {
		t.Fatal("different names reported equal")
	}
}

func TestStringRendering(t *testing.T) {
	m := New("SLP", "Req")
	m.AddPrimitive("XID", "Integer", Int(5))
	m.Add(&Field{Label: "U", Children: []*Field{{Label: "p", Value: Int(80)}}})
	got := m.String()
	want := "SLP/Req{XID=5, U[p=80]}"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestLabelsSorted(t *testing.T) {
	m := New("P", "M")
	m.AddPrimitive("Z", "Integer", Int(1))
	m.AddPrimitive("A", "Integer", Int(2))
	got := m.Labels()
	if len(got) != 2 || got[0] != "A" || got[1] != "Z" {
		t.Fatalf("Labels = %v", got)
	}
}

// Property: Clone always produces an Equal message, for arbitrary
// generated field sets.
func TestQuickCloneEqual(t *testing.T) {
	f := func(labels []string, ints []int64) bool {
		m := New("P", "M")
		for i, l := range labels {
			if l == "" {
				l = "empty"
			}
			var v Value
			if i < len(ints) {
				v = Int(ints[i])
			} else {
				v = Str(l)
			}
			m.AddPrimitive(l, "T", v)
		}
		return m.Equal(m.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Value Text/Equal are consistent for integers.
func TestQuickIntValueRoundtrip(t *testing.T) {
	f := func(v int64) bool {
		val := Int(v)
		got, ok := val.AsInt()
		return ok && got == v && val.Equal(Int(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
