// Package message implements Starlink's abstract message representation
// (paper §III-A). A network message, once parsed, becomes a protocol
// independent tree of labelled, typed fields. Primitive fields carry a
// value; structured fields carry child primitive fields (for example a
// URL field splits into protocol, address, port and resource).
//
// Abstract messages are the interface between the Starlink framework and
// the underlying network messages: parsers produce them, the automata
// engine manipulates them, and composers serialise them back to the wire.
//
// # Allocation discipline
//
// The bridge data path builds and discards one message tree per packet,
// so the package keeps that traffic off the garbage collector:
//
//   - Message and Field objects come from sync.Pool arenas (NewPooled,
//     NewField) and return to them through Release. Release is strictly
//     owner-driven: whoever holds the last reference to a tree calls it
//     exactly once, after which every node, value and BytesView aliasing
//     it is invalid. Trees built with New / plain literals may be mixed
//     in freely — Release feeds every node back to the pools regardless
//     of origin.
//   - Value.BytesView and Value.AppendText are the non-copying siblings
//     of AsBytes and Text, for callers that only read transiently.
//   - Path and SetPath split dotted paths ("LOCATION.port") at most
//     once and delegate to PathParts/SetPathParts; callers resolving the
//     same path repeatedly can pre-split it with SplitPath and use the
//     parts forms directly. (The model-driven hot path addresses fields
//     through precompiled xpath expressions instead.)
package message

import (
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind enumerates the dynamic types a primitive field value can carry.
type Kind int

// Value kinds. Starting at 1 so the zero Kind is invalid and detectable.
const (
	KindInvalid Kind = iota
	KindInt
	KindString
	KindBytes
	KindBool
)

// String returns the human readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is the content of a primitive field. The zero Value is invalid.
// Values are immutable once created.
type Value struct {
	kind Kind
	i    int64
	s    string
	b    []byte
	t    bool
}

// Int returns a Value holding an integer.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Str returns a Value holding a string.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bytes returns a Value holding a byte slice. The slice is copied so the
// Value cannot alias caller-owned memory.
func Bytes(v []byte) Value {
	cp := make([]byte, len(v))
	copy(cp, v)
	return Value{kind: KindBytes, b: cp}
}

// Bool returns a Value holding a boolean.
func Bool(v bool) Value { return Value{kind: KindBool, t: v} }

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds content.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer content; ok is false if the kind differs.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsString returns the string content; ok is false if the kind differs.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBytes returns a copy of the bytes content; ok is false if the kind differs.
func (v Value) AsBytes() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	cp := make([]byte, len(v.b))
	copy(cp, v.b)
	return cp, true
}

// BytesView returns the bytes content without copying; ok is false if
// the kind differs. The returned slice aliases the Value's backing
// store: it must not be mutated, and it is invalid once the owning
// message is Released. Use AsBytes when the bytes outlive the message.
func (v Value) BytesView() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	return v.b, true
}

// AsBool returns the boolean content; ok is false if the kind differs.
func (v Value) AsBool() (bool, bool) { return v.t, v.kind == KindBool }

// Text renders the value as a string regardless of kind. Integers render
// in decimal, bytes in hex. Used by rules, translation functions and
// diagnostics.
func (v Value) Text() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	case KindBytes:
		return hex.EncodeToString(v.b)
	case KindBool:
		if v.t {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// AppendText appends the Text rendering of the value to dst and returns
// the extended slice — the allocation-free sibling of Text for callers
// that already own a buffer.
func (v Value) AppendText(dst []byte) []byte {
	switch v.kind {
	case KindInt:
		return strconv.AppendInt(dst, v.i, 10)
	case KindString:
		return append(dst, v.s...)
	case KindBytes:
		return hex.AppendEncode(dst, v.b)
	case KindBool:
		if v.t {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	default:
		return dst
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindString:
		return v.s == o.s
	case KindBytes:
		return string(v.b) == string(o.b)
	case KindBool:
		return v.t == o.t
	default:
		return true
	}
}

// Field is one field of an abstract message (paper §III-A). A primitive
// field has Label, Type, Length (in bits; 0 when variable) and Value. A
// structured field has non-nil Children and no Value of its own.
type Field struct {
	// Label names the field, e.g. "XID" or "ST".
	Label string
	// Type is the MDL type name of the content, e.g. "Integer" or "URL".
	Type string
	// Length is the wire length of the field in bits; 0 means variable.
	Length int
	// Mandatory marks fields that participate in the semantic
	// equivalence operator |= (paper eq. 1, Mfields).
	Mandatory bool
	// Value is the content of a primitive field.
	Value Value
	// Children are the sub-fields of a structured field. A field with a
	// non-nil Children slice is structured even if the slice is empty.
	Children []*Field
}

var fieldPool = sync.Pool{New: func() any { return new(Field) }}

// NewField returns a zeroed Field from the pool. Fields added to a
// message are returned to the pool by the message's Release.
func NewField() *Field { return fieldPool.Get().(*Field) }

// Release resets the field tree and returns every node to the pool.
// The caller must hold the only reference; for fields inside a message
// use the message's Release instead.
func (f *Field) Release() {
	for _, c := range f.Children {
		c.Release()
	}
	*f = Field{}
	fieldPool.Put(f)
}

// IsStructured reports whether f is a structured field.
func (f *Field) IsStructured() bool { return f.Children != nil }

// Child returns the direct child field with the given label.
func (f *Field) Child(label string) (*Field, bool) {
	for _, c := range f.Children {
		if c.Label == label {
			return c, true
		}
	}
	return nil, false
}

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	cp := NewField()
	cp.Label, cp.Type, cp.Length, cp.Mandatory, cp.Value = f.Label, f.Type, f.Length, f.Mandatory, f.Value
	if f.Value.kind == KindBytes {
		// One copy of the backing bytes so the clone cannot alias f.
		cp.Value = Bytes(f.Value.b)
	}
	if f.Children != nil {
		cp.Children = make([]*Field, len(f.Children))
		for i, c := range f.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Equal reports deep equality of two fields.
func (f *Field) Equal(o *Field) bool {
	if f.Label != o.Label || f.Type != o.Type || f.Length != o.Length || f.Mandatory != o.Mandatory {
		return false
	}
	if (f.Children == nil) != (o.Children == nil) {
		return false
	}
	if f.Children == nil {
		return f.Value.Equal(o.Value)
	}
	if len(f.Children) != len(o.Children) {
		return false
	}
	for i := range f.Children {
		if !f.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// indexThreshold is the field count beyond which a message maintains a
// label→position map. Below it, lookups scan the slice — cheaper than
// allocating and maintaining a map for the small messages that dominate
// bridge traffic.
const indexThreshold = 8

// Message is an abstract message: a named, ordered set of fields
// belonging to a protocol. The paper writes msg.field for field
// selection; that is the Field / Path methods here.
type Message struct {
	// Protocol is the owning protocol, e.g. "SLP".
	Protocol string
	// Name identifies the message type within the protocol,
	// e.g. "SLPSrvRequest".
	Name   string
	fields []*Field
	// index maps label → position in fields; nil until the message
	// outgrows indexThreshold. Tracking positions (not pointers) makes
	// replacement in Add O(1).
	index  map[string]int
	pooled bool
}

var messagePool = sync.Pool{New: func() any { return new(Message) }}

// New creates an empty abstract message.
func New(protocol, name string) *Message {
	return &Message{Protocol: protocol, Name: name}
}

// NewPooled creates an empty abstract message drawn from the pool.
// Call Release when the tree is no longer referenced to recycle the
// message, its fields and its internals.
func NewPooled(protocol, name string) *Message {
	m := messagePool.Get().(*Message)
	m.Protocol, m.Name, m.pooled = protocol, name, true
	return m
}

// Release returns the message and every field in it to the pools. The
// caller must hold the last reference: after Release the message, its
// fields, and any BytesView obtained from them are invalid. Safe to
// call on messages built with New as well — their nodes feed the pools.
func (m *Message) Release() {
	for _, f := range m.fields {
		f.Release()
	}
	pooled := m.pooled
	fields := m.fields[:0]
	index := m.index
	for k := range index {
		delete(index, k)
	}
	*m = Message{}
	if pooled {
		// Keep the field slice and index map capacity for the next user.
		m.fields, m.index = fields, index
		messagePool.Put(m)
	}
}

// Add appends a field. Adding a field whose label already exists replaces
// the previous field in place (labels are unique within a message). The
// displaced field, if any, is left to the garbage collector — callers
// that know they hold its only reference should use Swap and Release it.
func (m *Message) Add(f *Field) { m.Swap(f) }

// Swap is Add returning the field the insertion displaced (nil when the
// label was new). Owners that built the displaced field from the pool
// can hand it back with Release.
func (m *Message) Swap(f *Field) *Field {
	if m.index == nil {
		for i, g := range m.fields {
			if g.Label == f.Label {
				m.fields[i] = f
				return g
			}
		}
		if len(m.fields) < indexThreshold {
			m.fields = append(m.fields, f)
			return nil
		}
		m.index = make(map[string]int, 2*indexThreshold)
		for i, g := range m.fields {
			m.index[g.Label] = i
		}
	}
	if i, ok := m.index[f.Label]; ok {
		old := m.fields[i]
		m.fields[i] = f
		return old
	}
	m.index[f.Label] = len(m.fields)
	m.fields = append(m.fields, f)
	return nil
}

// AddPrimitive is a convenience constructor for Add.
func (m *Message) AddPrimitive(label, typ string, v Value) *Field {
	f := &Field{Label: label, Type: typ, Value: v}
	m.Add(f)
	return f
}

// Field returns the top-level field with the given label.
func (m *Message) Field(label string) (*Field, bool) {
	if m.index != nil {
		i, ok := m.index[label]
		if !ok {
			return nil, false
		}
		return m.fields[i], true
	}
	for _, f := range m.fields {
		if f.Label == label {
			return f, true
		}
	}
	return nil, false
}

// Fields returns the fields in insertion order. The returned slice must
// not be mutated by callers; fields themselves may be.
func (m *Message) Fields() []*Field { return m.fields }

// Len returns the number of top-level fields.
func (m *Message) Len() int { return len(m.fields) }

// SplitPath splits a dotted path once, for reuse with PathParts and
// SetPathParts. Precompile paths that are resolved repeatedly; the
// split result is immutable and safe to share between goroutines.
func SplitPath(path string) []string { return strings.Split(path, ".") }

// Path selects a (possibly nested) field by dot-separated labels, the
// msg.field operation of §III-A: "LOCATION.port" selects the primitive
// port inside the structured LOCATION field.
func (m *Message) Path(path string) (*Field, bool) {
	if !strings.Contains(path, ".") {
		return m.Field(path)
	}
	return m.PathParts(strings.Split(path, "."))
}

// PathParts is Path over a precompiled (pre-split) dotted path. It does
// no parsing or allocation.
func (m *Message) PathParts(parts []string) (*Field, bool) {
	f, ok := m.Field(parts[0])
	if !ok {
		return nil, false
	}
	for _, p := range parts[1:] {
		f, ok = f.Child(p)
		if !ok {
			return nil, false
		}
	}
	return f, true
}

// SetPath assigns a value to the (possibly nested) primitive field at
// path, creating missing components as untyped primitives.
func (m *Message) SetPath(path string, v Value) *Field {
	if !strings.Contains(path, ".") {
		return m.setTop(path, v)
	}
	return m.SetPathParts(strings.Split(path, "."), v)
}

// setTop assigns a value to a top-level field, creating it if missing.
func (m *Message) setTop(label string, v Value) *Field {
	f, ok := m.Field(label)
	if !ok {
		f = NewField()
		f.Label = label
		m.Add(f)
	}
	f.Value = v
	return f
}

// SetPathParts is SetPath over a precompiled (pre-split) dotted path.
func (m *Message) SetPathParts(parts []string, v Value) *Field {
	f, ok := m.Field(parts[0])
	if !ok {
		f = NewField()
		f.Label = parts[0]
		m.Add(f)
	}
	for _, p := range parts[1:] {
		c, ok := f.Child(p)
		if !ok {
			c = NewField()
			c.Label = p
			if f.Children == nil {
				f.Children = []*Field{}
			}
			f.Children = append(f.Children, c)
		}
		f = c
	}
	f.Value = v
	return f
}

// MandatoryFields returns the labels of mandatory top-level fields —
// Mfields(n) in the paper's equivalence operator (eq. 1).
func (m *Message) MandatoryFields() []string {
	var out []string
	for _, f := range m.fields {
		if f.Mandatory {
			out = append(out, f.Label)
		}
	}
	return out
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	cp := New(m.Protocol, m.Name)
	for _, f := range m.fields {
		cp.Add(f.Clone())
	}
	return cp
}

// Equal reports deep equality (same protocol, name, fields and order).
func (m *Message) Equal(o *Message) bool {
	if m.Protocol != o.Protocol || m.Name != o.Name || len(m.fields) != len(o.fields) {
		return false
	}
	for i := range m.fields {
		if !m.fields[i].Equal(o.fields[i]) {
			return false
		}
	}
	return true
}

// String renders a compact single-line description for diagnostics.
func (m *Message) String() string {
	var b strings.Builder
	b.WriteString(m.Protocol)
	b.WriteByte('/')
	b.WriteString(m.Name)
	b.WriteByte('{')
	for i, f := range m.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		writeField(&b, f)
	}
	b.WriteString("}")
	return b.String()
}

func writeField(b *strings.Builder, f *Field) {
	if f.IsStructured() {
		b.WriteString(f.Label)
		b.WriteByte('[')
		for i, c := range f.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			writeField(b, c)
		}
		b.WriteString("]")
		return
	}
	b.WriteString(f.Label)
	b.WriteByte('=')
	b.WriteString(f.Value.Text())
}

// Labels returns the sorted labels of the top-level fields; useful in
// tests and error messages.
func (m *Message) Labels() []string {
	out := make([]string, 0, len(m.fields))
	for _, f := range m.fields {
		out = append(out, f.Label)
	}
	sort.Strings(out)
	return out
}
