// Package message implements Starlink's abstract message representation
// (paper §III-A). A network message, once parsed, becomes a protocol
// independent tree of labelled, typed fields. Primitive fields carry a
// value; structured fields carry child primitive fields (for example a
// URL field splits into protocol, address, port and resource).
//
// Abstract messages are the interface between the Starlink framework and
// the underlying network messages: parsers produce them, the automata
// engine manipulates them, and composers serialise them back to the wire.
package message

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the dynamic types a primitive field value can carry.
type Kind int

// Value kinds. Starting at 1 so the zero Kind is invalid and detectable.
const (
	KindInvalid Kind = iota
	KindInt
	KindString
	KindBytes
	KindBool
)

// String returns the human readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is the content of a primitive field. The zero Value is invalid.
// Values are immutable once created.
type Value struct {
	kind Kind
	i    int64
	s    string
	b    []byte
	t    bool
}

// Int returns a Value holding an integer.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Str returns a Value holding a string.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bytes returns a Value holding a byte slice. The slice is copied so the
// Value cannot alias caller-owned memory.
func Bytes(v []byte) Value {
	cp := make([]byte, len(v))
	copy(cp, v)
	return Value{kind: KindBytes, b: cp}
}

// Bool returns a Value holding a boolean.
func Bool(v bool) Value { return Value{kind: KindBool, t: v} }

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds content.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer content; ok is false if the kind differs.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsString returns the string content; ok is false if the kind differs.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBytes returns a copy of the bytes content; ok is false if the kind differs.
func (v Value) AsBytes() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	cp := make([]byte, len(v.b))
	copy(cp, v.b)
	return cp, true
}

// AsBool returns the boolean content; ok is false if the kind differs.
func (v Value) AsBool() (bool, bool) { return v.t, v.kind == KindBool }

// Text renders the value as a string regardless of kind. Integers render
// in decimal, bytes in hex. Used by rules, translation functions and
// diagnostics.
func (v Value) Text() string {
	switch v.kind {
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindString:
		return v.s
	case KindBytes:
		return fmt.Sprintf("%x", v.b)
	case KindBool:
		if v.t {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindString:
		return v.s == o.s
	case KindBytes:
		return string(v.b) == string(o.b)
	case KindBool:
		return v.t == o.t
	default:
		return true
	}
}

// Field is one field of an abstract message (paper §III-A). A primitive
// field has Label, Type, Length (in bits; 0 when variable) and Value. A
// structured field has non-nil Children and no Value of its own.
type Field struct {
	// Label names the field, e.g. "XID" or "ST".
	Label string
	// Type is the MDL type name of the content, e.g. "Integer" or "URL".
	Type string
	// Length is the wire length of the field in bits; 0 means variable.
	Length int
	// Mandatory marks fields that participate in the semantic
	// equivalence operator |= (paper eq. 1, Mfields).
	Mandatory bool
	// Value is the content of a primitive field.
	Value Value
	// Children are the sub-fields of a structured field. A field with a
	// non-nil Children slice is structured even if the slice is empty.
	Children []*Field
}

// IsStructured reports whether f is a structured field.
func (f *Field) IsStructured() bool { return f.Children != nil }

// Child returns the direct child field with the given label.
func (f *Field) Child(label string) (*Field, bool) {
	for _, c := range f.Children {
		if c.Label == label {
			return c, true
		}
	}
	return nil, false
}

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	cp := &Field{Label: f.Label, Type: f.Type, Length: f.Length, Mandatory: f.Mandatory, Value: f.Value}
	if f.Value.kind == KindBytes {
		cp.Value = Bytes(f.Value.b)
	}
	if f.Children != nil {
		cp.Children = make([]*Field, len(f.Children))
		for i, c := range f.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Equal reports deep equality of two fields.
func (f *Field) Equal(o *Field) bool {
	if f.Label != o.Label || f.Type != o.Type || f.Length != o.Length || f.Mandatory != o.Mandatory {
		return false
	}
	if (f.Children == nil) != (o.Children == nil) {
		return false
	}
	if f.Children == nil {
		return f.Value.Equal(o.Value)
	}
	if len(f.Children) != len(o.Children) {
		return false
	}
	for i := range f.Children {
		if !f.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Message is an abstract message: a named, ordered set of fields
// belonging to a protocol. The paper writes msg.field for field
// selection; that is the Field / Path methods here.
type Message struct {
	// Protocol is the owning protocol, e.g. "SLP".
	Protocol string
	// Name identifies the message type within the protocol,
	// e.g. "SLPSrvRequest".
	Name   string
	fields []*Field
	index  map[string]*Field
}

// New creates an empty abstract message.
func New(protocol, name string) *Message {
	return &Message{Protocol: protocol, Name: name, index: make(map[string]*Field)}
}

// Add appends a field. Adding a field whose label already exists replaces
// the previous field in place (labels are unique within a message).
func (m *Message) Add(f *Field) {
	if m.index == nil {
		m.index = make(map[string]*Field)
	}
	if old, ok := m.index[f.Label]; ok {
		for i, g := range m.fields {
			if g == old {
				m.fields[i] = f
				break
			}
		}
		m.index[f.Label] = f
		return
	}
	m.fields = append(m.fields, f)
	m.index[f.Label] = f
}

// AddPrimitive is a convenience constructor for Add.
func (m *Message) AddPrimitive(label, typ string, v Value) *Field {
	f := &Field{Label: label, Type: typ, Value: v}
	m.Add(f)
	return f
}

// Field returns the top-level field with the given label.
func (m *Message) Field(label string) (*Field, bool) {
	f, ok := m.index[label]
	return f, ok
}

// Fields returns the fields in insertion order. The returned slice must
// not be mutated by callers; fields themselves may be.
func (m *Message) Fields() []*Field { return m.fields }

// Len returns the number of top-level fields.
func (m *Message) Len() int { return len(m.fields) }

// Path selects a (possibly nested) field by dot-separated labels, the
// msg.field operation of §III-A: "LOCATION.port" selects the primitive
// port inside the structured LOCATION field.
func (m *Message) Path(path string) (*Field, bool) {
	parts := strings.Split(path, ".")
	f, ok := m.Field(parts[0])
	if !ok {
		return nil, false
	}
	for _, p := range parts[1:] {
		f, ok = f.Child(p)
		if !ok {
			return nil, false
		}
	}
	return f, true
}

// SetPath assigns a value to the (possibly nested) primitive field at
// path, creating missing components as untyped primitives.
func (m *Message) SetPath(path string, v Value) *Field {
	parts := strings.Split(path, ".")
	f, ok := m.Field(parts[0])
	if !ok {
		f = &Field{Label: parts[0]}
		m.Add(f)
	}
	for _, p := range parts[1:] {
		c, ok := f.Child(p)
		if !ok {
			c = &Field{Label: p}
			if f.Children == nil {
				f.Children = []*Field{}
			}
			f.Children = append(f.Children, c)
		}
		f = c
	}
	f.Value = v
	return f
}

// MandatoryFields returns the labels of mandatory top-level fields —
// Mfields(n) in the paper's equivalence operator (eq. 1).
func (m *Message) MandatoryFields() []string {
	var out []string
	for _, f := range m.fields {
		if f.Mandatory {
			out = append(out, f.Label)
		}
	}
	return out
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	cp := New(m.Protocol, m.Name)
	for _, f := range m.fields {
		cp.Add(f.Clone())
	}
	return cp
}

// Equal reports deep equality (same protocol, name, fields and order).
func (m *Message) Equal(o *Message) bool {
	if m.Protocol != o.Protocol || m.Name != o.Name || len(m.fields) != len(o.fields) {
		return false
	}
	for i := range m.fields {
		if !m.fields[i].Equal(o.fields[i]) {
			return false
		}
	}
	return true
}

// String renders a compact single-line description for diagnostics.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s{", m.Protocol, m.Name)
	for i, f := range m.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		writeField(&b, f)
	}
	b.WriteString("}")
	return b.String()
}

func writeField(b *strings.Builder, f *Field) {
	if f.IsStructured() {
		fmt.Fprintf(b, "%s[", f.Label)
		for i, c := range f.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			writeField(b, c)
		}
		b.WriteString("]")
		return
	}
	fmt.Fprintf(b, "%s=%s", f.Label, f.Value.Text())
}

// Labels returns the sorted labels of the top-level fields; useful in
// tests and error messages.
func (m *Message) Labels() []string {
	out := make([]string, 0, len(m.fields))
	for _, f := range m.fields {
		out = append(out, f.Label)
	}
	sort.Strings(out)
	return out
}
