package message

import "testing"

// The message layer sits on the per-packet fast path; these tests pin
// its allocation behaviour so regressions fail loudly instead of
// showing up as GC pressure under load.

func TestValueTextAllocs(t *testing.T) {
	cases := map[string]struct {
		v    Value
		want float64
	}{
		// Small-integer and string renders are allocation free; large
		// integers pay the result string; bytes pay hex.EncodeToString's
		// buffer + string (AppendText is the zero-alloc form).
		"int-small": {Int(7), 0},
		"string":    {Str("service:printer"), 0},
		"bool":      {Bool(true), 0},
		"int-large": {Int(1234567), 1},
		"bytes":     {Bytes([]byte{0xde, 0xad}), 2},
	}
	for name, tc := range cases {
		if got := testing.AllocsPerRun(100, func() { _ = tc.v.Text() }); got > tc.want {
			t.Errorf("%s: Text allocates %.1f per run, want <= %.0f", name, got, tc.want)
		}
	}
}

func TestValueAppendTextAllocs(t *testing.T) {
	buf := make([]byte, 0, 64)
	for name, v := range map[string]Value{
		"int":    Int(1234567890),
		"string": Str("urn:printer"),
		"bytes":  Bytes([]byte{1, 2, 3, 4}),
		"bool":   Bool(false),
	} {
		if got := testing.AllocsPerRun(100, func() { _ = v.AppendText(buf[:0]) }); got != 0 {
			t.Errorf("%s: AppendText allocates %.1f per run, want 0", name, got)
		}
	}
}

func TestValueAppendTextMatchesText(t *testing.T) {
	for _, v := range []Value{Int(-42), Int(0), Int(99), Int(1 << 40), Str("x"), Str(""),
		Bytes(nil), Bytes([]byte{0x00, 0xff, 0x5a}), Bool(true), Bool(false), {}} {
		if got, want := string(v.AppendText(nil)), v.Text(); got != want {
			t.Errorf("AppendText = %q, Text = %q", got, want)
		}
	}
}

func TestBytesViewAliasesWithoutCopy(t *testing.T) {
	v := Bytes([]byte{1, 2, 3})
	view, ok := v.BytesView()
	if !ok || len(view) != 3 {
		t.Fatalf("BytesView = %v, %v", view, ok)
	}
	cp, _ := v.AsBytes()
	if &view[0] == &cp[0] {
		t.Error("AsBytes must copy; BytesView must not")
	}
	if got := testing.AllocsPerRun(100, func() { v.BytesView() }); got != 0 {
		t.Errorf("BytesView allocates %.1f per run, want 0", got)
	}
	if _, ok := Str("x").BytesView(); ok {
		t.Error("BytesView on a string value must report not-ok")
	}
}

// nestedMessage builds LOCATION{address, port} plus filler fields on
// both sides of the index threshold.
func nestedMessage(extra int) *Message {
	m := New("SSDP", "SSDPResponse")
	m.Add(&Field{Label: "LOCATION", Children: []*Field{
		{Label: "address", Value: Str("10.0.0.7")},
		{Label: "port", Value: Int(5431)},
	}})
	for i := 0; i < extra; i++ {
		m.AddPrimitive("filler"+string(rune('A'+i)), "String", Str("x"))
	}
	return m
}

func TestPathPartsAllocs(t *testing.T) {
	parts := SplitPath("LOCATION.port")
	for _, extra := range []int{0, 12} { // linear-scan and map-indexed forms
		m := nestedMessage(extra)
		f, ok := m.PathParts(parts)
		if !ok {
			t.Fatal("PathParts failed")
		}
		if v, _ := f.Value.AsInt(); v != 5431 {
			t.Fatalf("port = %v", f.Value)
		}
		if got := testing.AllocsPerRun(100, func() { m.PathParts(parts) }); got != 0 {
			t.Errorf("extra=%d: PathParts allocates %.1f per run, want 0", extra, got)
		}
	}
}

func TestSetPathPartsAllocs(t *testing.T) {
	parts := SplitPath("LOCATION.port")
	for _, extra := range []int{0, 12} {
		m := nestedMessage(extra)
		// Existing target: pure overwrite must not allocate.
		if got := testing.AllocsPerRun(100, func() { m.SetPathParts(parts, Int(99)) }); got != 0 {
			t.Errorf("extra=%d: SetPathParts allocates %.1f per run, want 0", extra, got)
		}
		if f, _ := m.PathParts(parts); f.Value.Text() != "99" {
			t.Errorf("extra=%d: SetPathParts did not write", extra)
		}
	}
}

func TestPathMatchesPathParts(t *testing.T) {
	m := nestedMessage(0)
	f1, ok1 := m.Path("LOCATION.port")
	f2, ok2 := m.PathParts(SplitPath("LOCATION.port"))
	if ok1 != ok2 || f1 != f2 {
		t.Errorf("Path and PathParts disagree: %v/%v vs %v/%v", f1, ok1, f2, ok2)
	}
	if _, ok := m.Path("LOCATION.missing"); ok {
		t.Error("missing nested path must not resolve")
	}
}

func TestAddReplacesInPlaceAcrossIndexForms(t *testing.T) {
	for _, extra := range []int{0, 12} {
		m := nestedMessage(extra)
		m.AddPrimitive("ST", "String", Str("urn:a"))
		before := m.Len()
		m.AddPrimitive("ST", "String", Str("urn:b"))
		if m.Len() != before {
			t.Fatalf("extra=%d: replace grew the message", extra)
		}
		f, _ := m.Field("ST")
		if f.Value.Text() != "urn:b" {
			t.Errorf("extra=%d: replace kept the old field", extra)
		}
		// Order preserved: replaced field stays at its position.
		pos := -1
		for i, g := range m.Fields() {
			if g.Label == "ST" {
				pos = i
			}
		}
		if pos != before-1 {
			t.Errorf("extra=%d: replaced field moved to %d", extra, pos)
		}
	}
}

func TestPooledMessageReuse(t *testing.T) {
	m := NewPooled("SLP", "SLPSrvRequest")
	m.AddPrimitive("XID", "Integer", Int(42))
	m.Add(&Field{Label: "URL", Children: []*Field{{Label: "port", Value: Int(1)}}})
	m.Release()
	m2 := NewPooled("SSDP", "SSDPMSearch")
	if m2.Len() != 0 || m2.Protocol != "SSDP" || m2.Name != "SSDPMSearch" {
		t.Fatalf("reused message not reset: %v", m2)
	}
	if _, ok := m2.Field("XID"); ok {
		t.Error("reused message leaked a field from its previous life")
	}
	m2.Release()
}

func TestFieldCloneCopiesBytesOnce(t *testing.T) {
	f := &Field{Label: "Body", Value: Bytes([]byte{1, 2, 3})}
	cp := f.Clone()
	if !cp.Equal(f) {
		t.Fatal("clone differs")
	}
	ov, _ := f.Value.BytesView()
	cv, _ := cp.Value.BytesView()
	if &ov[0] == &cv[0] {
		t.Error("clone aliases the original's bytes")
	}
	// One Field + one backing array: the historical double copy is gone.
	if got := testing.AllocsPerRun(100, func() { f.Clone() }); got > 2 {
		t.Errorf("bytes clone allocates %.1f per run, want <= 2", got)
	}
}
