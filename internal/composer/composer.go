// Package composer implements Starlink's runtime-generated message
// composers (paper §IV-A): the inverse of package parser. A Composer is
// specialised by an MDL specification and serialises abstract messages
// back to the legacy protocol's wire format.
//
// Field values "may become available at different times, making it
// difficult to predict the message size and layout" (§III-A) — length
// and count fields are therefore computed by the composer itself:
//
//   - fields whose MDL type carries a function (Integer[f-length(X)],
//     f-totallength, f-count) are reserved on the first pass and patched
//     once the full encoding is known;
//   - fields referenced as a SizeRef/CountRef by a later field are
//     derived from the measured encoding, so callers never hand-compute
//     lengths.
package composer

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"starlink/internal/bitio"
	"starlink/internal/mdl"
	"starlink/internal/message"
	"starlink/internal/types"
)

// composePlan is the per-message compile-time layout knowledge: which
// fields derive their value from another field's encoded size or a
// group's element count. Built once at composer construction so the
// per-message compose pass does no layout analysis.
type composePlan struct {
	// sizeOwners maps a size field label to the label of the variable
	// field it measures; countOwners likewise for groups.
	sizeOwners  map[string]string
	countOwners map[string]string
}

// Composer serialises abstract messages under an MDL spec.
type Composer struct {
	spec  *mdl.Spec
	types *types.Registry
	funcs *types.FuncRegistry
	// plans holds the precompiled layout per message definition.
	plans map[string]*composePlan
	// Text-dialect precompiled layout: the fixed (non-wildcard) header
	// labels and the wildcard entry, if any.
	textFixed map[string]bool
	wildcard  *mdl.FieldDef
}

// New returns a composer for the specification. Nil registries use the
// built-ins.
func New(spec *mdl.Spec, reg *types.Registry, funcs *types.FuncRegistry) (*Composer, error) {
	if spec == nil {
		return nil, fmt.Errorf("composer: nil spec")
	}
	if reg == nil {
		reg = types.NewRegistry()
	}
	if funcs == nil {
		funcs = types.NewFuncRegistry()
	}
	c := &Composer{spec: spec, types: reg, funcs: funcs, plans: map[string]*composePlan{}}
	for _, def := range spec.Messages {
		p := &composePlan{sizeOwners: map[string]string{}, countOwners: map[string]string{}}
		indexOwners(spec.Header.Fields, p.sizeOwners, p.countOwners)
		indexOwners(def.Fields, p.sizeOwners, p.countOwners)
		c.plans[def.Name] = p
	}
	if spec.Dialect == mdl.DialectText {
		c.textFixed = map[string]bool{}
		for _, hf := range spec.Header.Fields {
			if hf.Wildcard {
				c.wildcard = hf
				continue
			}
			c.textFixed[hf.Label] = true
		}
	}
	return c, nil
}

// Spec returns the MDL specification the composer interprets.
func (c *Composer) Spec() *mdl.Spec { return c.spec }

// Compose serialises msg. The message's Name selects the message
// definition; the rule field is filled automatically so callers (and
// translation logic) never set protocol discriminators by hand.
//
//starlink:hotpath
func (c *Composer) Compose(msg *message.Message) ([]byte, error) {
	def, ok := c.spec.MessageByName(msg.Name)
	if !ok {
		return nil, fmt.Errorf("composer: spec %s has no message %q", c.spec.Protocol, msg.Name)
	}
	switch c.spec.Dialect {
	case mdl.DialectBinary:
		return c.composeBinary(msg, def)
	case mdl.DialectText:
		return c.composeText(msg, def)
	default:
		return nil, fmt.Errorf("composer: spec %s has invalid dialect", c.spec.Protocol)
	}
}

// ---------------------------------------------------------------------
// Binary dialect
// ---------------------------------------------------------------------

// patch records a function field whose value is computed after the
// first pass.
type patch struct {
	bitOff  int
	bits    int
	label   string
	funcRef *mdl.FuncRef
}

type binaryCtx struct {
	c       *Composer
	msg     *message.Message
	def     *mdl.MessageDef
	w       *bitio.Writer
	patches []patch
	plan    *composePlan
	// encCache memoizes variable-width field encodings within one
	// compose: size fields measure their owned field before it is
	// written, and f-length patches measure it after, so every variable
	// field would otherwise be encoded twice. Lazily allocated.
	encCache map[string][]byte
}

// encode returns the variable-width encoding of a field, memoized for
// the duration of one compose.
func (b *binaryCtx) encode(label string, f *message.Field) ([]byte, error) {
	if raw, ok := b.encCache[label]; ok {
		return raw, nil
	}
	raw, err := b.c.encodeValue(label, f, 0)
	if err != nil {
		return nil, err
	}
	if b.encCache == nil {
		b.encCache = make(map[string][]byte, 8)
	}
	b.encCache[label] = raw
	return raw, nil
}

// EncodedLength implements types.FuncContext.
func (b *binaryCtx) EncodedLength(label string) (int, error) {
	f, ok := b.msg.Field(label)
	if !ok {
		// Unset measured fields encode as empty.
		return 0, nil
	}
	raw, err := b.encode(label, f)
	if err != nil {
		return 0, err
	}
	return len(raw), nil
}

// TotalLength implements types.FuncContext.
func (b *binaryCtx) TotalLength() (int, error) { return (b.w.Len() + 7) / 8, nil }

// FieldValue implements types.FuncContext.
func (b *binaryCtx) FieldValue(label string) (message.Value, error) {
	f, ok := b.msg.Field(label)
	if !ok {
		return message.Value{}, fmt.Errorf("composer: f-value: no field %q", label)
	}
	return f.Value, nil
}

// Count implements types.FuncContext.
func (b *binaryCtx) Count(label string) (int, error) {
	f, ok := b.msg.Field(label)
	if !ok {
		return 0, nil
	}
	if !f.IsStructured() {
		return 0, fmt.Errorf("composer: f-count: field %q is not a group", label)
	}
	return len(f.Children), nil
}

var binCtxPool = sync.Pool{New: func() any { return new(binaryCtx) }}

func acquireBinaryCtx() *binaryCtx {
	ctx := binCtxPool.Get().(*binaryCtx)
	ctx.w = bitio.AcquireWriter()
	return ctx
}

func releaseBinaryCtx(ctx *binaryCtx) {
	bitio.ReleaseWriter(ctx.w)
	for k := range ctx.encCache {
		delete(ctx.encCache, k)
	}
	patches := ctx.patches[:0]
	cache := ctx.encCache
	*ctx = binaryCtx{patches: patches, encCache: cache}
	binCtxPool.Put(ctx)
}

//starlink:hotpath
func (c *Composer) composeBinary(msg *message.Message, def *mdl.MessageDef) ([]byte, error) {
	ctx := acquireBinaryCtx()
	defer releaseBinaryCtx(ctx)
	ctx.c, ctx.msg, ctx.def, ctx.plan = c, msg, def, c.plans[def.Name]

	if err := c.writeFields(ctx, c.spec.Header.Fields, msg, nil); err != nil {
		return nil, fmt.Errorf("composer: %s header: %w", c.spec.Protocol, err)
	}
	if err := c.writeFields(ctx, def.Fields, msg, nil); err != nil {
		return nil, fmt.Errorf("composer: %s %s body: %w", c.spec.Protocol, def.Name, err)
	}
	// Second pass: evaluate function fields now that the layout is known.
	for _, p := range ctx.patches {
		fn, err := c.funcs.Lookup(p.funcRef.Name)
		if err != nil {
			return nil, fmt.Errorf("composer: field %q: %w", p.label, err)
		}
		v, err := fn(ctx, p.funcRef.Args)
		if err != nil {
			return nil, fmt.Errorf("composer: field %q: %w", p.label, err)
		}
		n, ok := v.AsInt()
		if !ok {
			return nil, fmt.Errorf("composer: field %q: function result is not an integer", p.label)
		}
		if err := ctx.w.PatchBits(p.bitOff, uint64(n), p.bits); err != nil {
			return nil, fmt.Errorf("composer: field %q: %w", p.label, err)
		}
		// Reflect the computed value back into the abstract message so
		// parse(compose(m)) == m for function fields too.
		f := msg.SetPath(p.label, message.Int(n))
		f.Type = c.spec.TypeOf(p.label).TypeName
		f.Length = p.bits
	}
	return ctx.w.Bytes(), nil
}

func indexOwners(defs []*mdl.FieldDef, sizes, counts map[string]string) {
	for _, d := range defs {
		if d.IsGroup() {
			counts[d.CountRef] = d.Label
			indexOwners(d.Group, sizes, counts)
			continue
		}
		if d.SizeRef != "" {
			sizes[d.SizeRef] = d.Label
		}
	}
}

// scopedLookup resolves a label against the group-item scope first,
// then the message's top level.
func scopedLookup(msg *message.Message, scope *message.Field, label string) (*message.Field, bool) {
	if scope != nil {
		if f, ok := scope.Child(label); ok {
			return f, true
		}
	}
	return msg.Field(label)
}

// writeFields serialises a field list; group items pass their item
// field as scope for label lookups.
//
//starlink:hotpath
func (c *Composer) writeFields(ctx *binaryCtx, defs []*mdl.FieldDef, msg *message.Message, scope *message.Field) error {
	for _, def := range defs {
		if def.IsGroup() {
			g, ok := scopedLookup(msg, scope, def.Label)
			if !ok || !g.IsStructured() {
				// Absent group composes as empty (count field will be 0).
				continue
			}
			for i, item := range g.Children {
				if err := c.writeFields(ctx, def.Group, msg, item); err != nil {
					return fmt.Errorf("group %q item %d: %w", def.Label, i, err)
				}
			}
			continue
		}
		td := c.spec.TypeOf(def.Label)

		// Function fields: reserve and patch later.
		if td.Func != nil {
			if def.SizeBits <= 0 || def.SizeBits > 64 {
				return fmt.Errorf("field %q: function fields need fixed width <=64 bits", def.Label)
			}
			ctx.patches = append(ctx.patches, patch{
				bitOff:  ctx.w.Len(),
				bits:    def.SizeBits,
				label:   def.Label,
				funcRef: td.Func,
			})
			if err := ctx.w.WriteBits(0, def.SizeBits); err != nil {
				return err
			}
			continue
		}

		// Derived size/count fields: measured from the owned field.
		if owned, isSize := ctx.plan.sizeOwners[def.Label]; isSize && scope == nil {
			f, ok := scopedLookup(msg, scope, owned)
			var n int
			if ok {
				raw, err := ctx.encode(owned, f)
				if err != nil {
					return err
				}
				n = len(raw)
			}
			if err := c.writeIntField(ctx, msg, def, td, int64(n)); err != nil {
				return err
			}
			continue
		}
		if owned, isCount := ctx.plan.countOwners[def.Label]; isCount && scope == nil {
			n := 0
			if g, ok := scopedLookup(msg, scope, owned); ok && g.IsStructured() {
				n = len(g.Children)
			}
			if err := c.writeIntField(ctx, msg, def, td, int64(n)); err != nil {
				return err
			}
			continue
		}
		// Size fields inside groups measure their sibling.
		if scope != nil {
			if owned := siblingSizeOwner(defs, def.Label); owned != "" {
				f, ok := scopedLookup(msg, scope, owned)
				var n int
				if ok {
					raw, err := c.encodeValue(owned, f, 0)
					if err != nil {
						return err
					}
					n = len(raw)
				}
				if def.SizeBits <= 0 {
					return fmt.Errorf("group size field %q needs fixed width", def.Label)
				}
				if err := ctx.w.WriteBits(uint64(n), def.SizeBits); err != nil {
					return err
				}
				setScopedValue(scope, def.Label, message.Int(int64(n)))
				continue
			}
		}

		f, ok := scopedLookup(msg, scope, def.Label)
		if !ok {
			// The message's rule discriminator (e.g. FunctionID=2 for a
			// SrvReply, Flags=33792 for a DNS response) is implied by
			// the message name; other unset fields compose as zeroes.
			v := zeroValue(td, c.types)
			if scope == nil && def.Label == ctx.def.Rule.Field {
				rv, err := coerceValue(message.Str(ctx.def.Rule.Value), mustKind(c.types, td))
				if err != nil {
					return fmt.Errorf("field %q: rule value: %w", def.Label, err)
				}
				v = rv
			}
			f = &message.Field{Label: def.Label, Type: td.TypeName, Value: v}
			if scope == nil {
				msg.Add(f)
			}
		}
		if err := c.writeField(ctx, def, td, f, scope == nil); err != nil {
			return err
		}
	}
	return nil
}

// siblingSizeOwner returns the label of the field measured by a size
// field within the same group definition.
func siblingSizeOwner(defs []*mdl.FieldDef, sizeLabel string) string {
	for _, d := range defs {
		if d.SizeRef == sizeLabel {
			return d.Label
		}
	}
	return ""
}

func setScopedValue(scope *message.Field, label string, v message.Value) {
	if c, ok := scope.Child(label); ok {
		c.Value = v
		return
	}
	scope.Children = append(scope.Children, &message.Field{Label: label, Value: v})
}

//starlink:hotpath
func (c *Composer) writeIntField(ctx *binaryCtx, msg *message.Message, def *mdl.FieldDef, td mdl.TypeDef, n int64) error {
	if def.SizeBits <= 0 || def.SizeBits > 64 {
		return fmt.Errorf("field %q: derived integer needs fixed width <=64 bits", def.Label)
	}
	if err := ctx.w.WriteBits(uint64(n), def.SizeBits); err != nil {
		return fmt.Errorf("field %q: %w", def.Label, err)
	}
	f := msg.SetPath(def.Label, message.Int(n))
	f.Type = td.TypeName
	f.Length = def.SizeBits
	return nil
}

// writeField serialises one field. cacheable marks top-level fields
// whose variable-width encoding may be shared with the measurement
// passes (group items repeat labels, so they must not hit the cache).
//
//starlink:hotpath
func (c *Composer) writeField(ctx *binaryCtx, def *mdl.FieldDef, td mdl.TypeDef, f *message.Field, cacheable bool) error {
	m, err := c.types.Lookup(td.TypeName)
	if err != nil {
		return fmt.Errorf("field %q: %w", def.Label, err)
	}
	if def.SizeBits > 0 && m.Kind() == message.KindInt && def.SizeBits <= 64 {
		cv, err := coerceValue(f.Value, message.KindInt)
		if err != nil {
			return fmt.Errorf("field %q: %w", def.Label, err)
		}
		v, ok := cv.AsInt()
		if !ok {
			return fmt.Errorf("field %q: value %v is not an integer", def.Label, f.Value.Kind())
		}
		if v < 0 {
			return fmt.Errorf("field %q: negative value %d", def.Label, v)
		}
		if err := ctx.w.WriteBits(uint64(v), def.SizeBits); err != nil {
			return fmt.Errorf("field %q: %w", def.Label, err)
		}
		return nil
	}
	if def.SizeBits > 0 && m.Kind() == message.KindBool && def.SizeBits <= 64 {
		v, _ := f.Value.AsBool()
		var n uint64
		if v {
			n = 1
		}
		if err := ctx.w.WriteBits(n, def.SizeBits); err != nil {
			return fmt.Errorf("field %q: %w", def.Label, err)
		}
		return nil
	}
	var raw []byte
	if cacheable && def.SizeBits == 0 {
		raw, err = ctx.encode(def.Label, f)
	} else {
		raw, err = c.encodeValue(def.Label, f, def.SizeBits)
	}
	if err != nil {
		return err
	}
	if def.SizeBits > 0 && len(raw)*8 != def.SizeBits {
		return fmt.Errorf("field %q: encoded %d bits, field is %d", def.Label, len(raw)*8, def.SizeBits)
	}
	if err := ctx.w.WriteBytes(raw); err != nil {
		return fmt.Errorf("field %q: %w", def.Label, err)
	}
	return nil
}

// encodeValue marshals a field's value, imploding structured fields
// first.
func (c *Composer) encodeValue(label string, f *message.Field, bits int) ([]byte, error) {
	td := c.spec.TypeOf(label)
	m, err := c.types.Lookup(td.TypeName)
	if err != nil {
		return nil, fmt.Errorf("field %q: %w", label, err)
	}
	v := f.Value
	if f.IsStructured() {
		sm, ok := m.(types.StructuredMarshaller)
		if !ok {
			return nil, fmt.Errorf("field %q: structured value but type %q cannot implode", label, td.TypeName)
		}
		v, err = sm.Implode(f.Children)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", label, err)
		}
	}
	raw, err := m.Marshal(v, bits)
	if err != nil {
		return nil, fmt.Errorf("field %q: %w", label, err)
	}
	return raw, nil
}

// coerceValue converts between value kinds so translation constants
// (always strings) and cross-protocol copies compose cleanly: "12"
// becomes Int(12) for an Integer field, 12 becomes Str("12") for text.
func coerceValue(v message.Value, want message.Kind) (message.Value, error) {
	if v.Kind() == want {
		return v, nil
	}
	switch want {
	case message.KindInt:
		if s, ok := v.AsString(); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return message.Value{}, fmt.Errorf("cannot coerce %q to integer", s)
			}
			return message.Int(n), nil
		}
	case message.KindString:
		return message.Str(v.Text()), nil
	case message.KindBytes:
		if s, ok := v.AsString(); ok {
			return message.Bytes([]byte(s)), nil
		}
	}
	return message.Value{}, fmt.Errorf("cannot coerce %v to %v", v.Kind(), want)
}

func mustKind(reg *types.Registry, td mdl.TypeDef) message.Kind {
	m, err := reg.Lookup(td.TypeName)
	if err != nil {
		return message.KindString
	}
	return m.Kind()
}

func zeroValue(td mdl.TypeDef, reg *types.Registry) message.Value {
	m, err := reg.Lookup(td.TypeName)
	if err != nil {
		return message.Str("")
	}
	switch m.Kind() {
	case message.KindInt:
		return message.Int(0)
	case message.KindBool:
		return message.Bool(false)
	case message.KindBytes:
		return message.Bytes(nil)
	default:
		return message.Str("")
	}
}

// ---------------------------------------------------------------------
// Text dialect
// ---------------------------------------------------------------------

var textBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

//starlink:hotpath
func (c *Composer) composeText(msg *message.Message, def *mdl.MessageDef) ([]byte, error) {
	buf := textBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer textBufPool.Put(buf)
	fixed := c.textFixed
	wildcard := c.wildcard
	for _, hf := range c.spec.Header.Fields {
		if hf.Wildcard {
			continue
		}
		f, ok := msg.Field(hf.Label)
		if ok {
			if err := c.writeTextValue(buf, hf.Label, f); err != nil {
				return nil, err
			}
		} else if hf.Label == c.ruleLabelFor(def) {
			buf.WriteString(def.Rule.Value)
		}
		buf.Write(hf.Delim)
	}
	if wildcard != nil {
		// Messages carrying a body need a Content-Length so stream
		// framers can delimit them; compute it when absent (the text
		// dialect's counterpart of the binary f-length mechanism).
		if def.Body != mdl.BodyNone {
			if _, has := msg.Field("Content-Length"); !has {
				if bf, ok := msg.Field("Body"); ok {
					n := 0
					if b, ok := bf.Value.BytesView(); ok { // measuring only: no copy
						n = len(b)
					} else if s, ok := bf.Value.AsString(); ok {
						n = len(s)
					}
					msg.AddPrimitive("Content-Length", "Integer", message.Int(int64(n)))
				}
			}
		}
		// Emit every remaining field as a label<split> value line, in
		// message order for determinism (Body and structured helpers
		// excluded). Unset rule fields were already emitted above.
		for _, f := range msg.Fields() {
			if fixed[f.Label] || f.Label == "Body" {
				continue
			}
			buf.WriteString(f.Label)
			buf.WriteByte(wildcard.InnerSplit)
			buf.WriteString(" ")
			if err := c.writeTextValue(buf, f.Label, f); err != nil {
				return nil, err
			}
			buf.Write(wildcard.Delim)
		}
		buf.Write(wildcard.Delim) // blank line terminates the field run
	}
	switch def.Body {
	case mdl.BodyRaw, mdl.BodyXML:
		if f, ok := msg.Field("Body"); ok {
			// BytesView: the buffer copies on Write, so the transient
			// alias never outlives this call — no body-sized AsBytes
			// copy per composed message.
			if b, ok := f.Value.BytesView(); ok {
				buf.Write(b)
			} else if s, ok := f.Value.AsString(); ok {
				buf.WriteString(s)
			}
		}
	case mdl.BodyNone:
	}
	// The buffer returns to the pool; hand the caller its own copy.
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// ruleLabelFor returns the header label the message's rule constrains,
// so composing can default it (e.g. Method=M-SEARCH).
func (c *Composer) ruleLabelFor(def *mdl.MessageDef) string { return def.Rule.Field }

// writeTextValue renders a field's text form straight into the compose
// buffer: primitive values append via Value.AppendText into the
// buffer's spare capacity, so integer headers (MX, Content-Length)
// render without an intermediate string.
func (c *Composer) writeTextValue(buf *bytes.Buffer, label string, f *message.Field) error {
	if f.IsStructured() {
		text, err := c.textValue(label, f)
		if err != nil {
			return err
		}
		buf.WriteString(text)
		return nil
	}
	// Same unknown-type check textValue performs for structured fields.
	if _, err := c.types.Lookup(c.spec.TypeOf(label).TypeName); err != nil {
		return fmt.Errorf("field %q: %w", label, err)
	}
	buf.Write(f.Value.AppendText(buf.AvailableBuffer()))
	return nil
}

func (c *Composer) textValue(label string, f *message.Field) (string, error) {
	td := c.spec.TypeOf(label)
	m, err := c.types.Lookup(td.TypeName)
	if err != nil {
		return "", fmt.Errorf("field %q: %w", label, err)
	}
	if f.IsStructured() {
		sm, ok := m.(types.StructuredMarshaller)
		if !ok {
			return "", fmt.Errorf("field %q: structured value but type %q cannot implode", label, td.TypeName)
		}
		v, err := sm.Implode(f.Children)
		if err != nil {
			return "", fmt.Errorf("field %q: %w", label, err)
		}
		return v.Text(), nil
	}
	return f.Value.Text(), nil
}

// SortedLabels is a test helper exposing deterministic field ordering.
func SortedLabels(msg *message.Message) []string {
	out := msg.Labels()
	sort.Strings(out)
	return out
}
