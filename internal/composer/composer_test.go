package composer

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"starlink/internal/mdl"
	"starlink/internal/message"
	"starlink/internal/parser"
)

const slpMDL = `
<MDL protocol="SLP" dialect="binary">
 <Types>
  <Version>Integer</Version>
  <FunctionID>Integer</FunctionID>
  <MessageLength>Integer[f-totallength()]</MessageLength>
  <reserved>Integer</reserved>
  <NextExtOffset>Integer</NextExtOffset>
  <XID>Integer</XID>
  <LangTagLen>Integer</LangTagLen>
  <LangTag>String</LangTag>
  <PRLength>Integer</PRLength>
  <PRStringTable>String</PRStringTable>
  <SRVTypeLength>Integer</SRVTypeLength>
  <SRVType>String</SRVType>
  <ErrorCode>Integer</ErrorCode>
  <URLCount>Integer</URLCount>
  <URLEntry>String</URLEntry>
  <URLLength>Integer[f-length(URLEntry)]</URLLength>
 </Types>
 <Header type="SLP">
  <Version>8</Version>
  <FunctionID>8</FunctionID>
  <MessageLength>24</MessageLength>
  <reserved>16</reserved>
  <NextExtOffset>24</NextExtOffset>
  <XID>16</XID>
  <LangTagLen>16</LangTagLen>
  <LangTag>LangTagLen</LangTag>
 </Header>
 <Message type="SLPSrvRequest" mandatory="SRVType">
  <Rule>FunctionID=1</Rule>
  <PRLength>16</PRLength>
  <PRStringTable>PRLength</PRStringTable>
  <SRVTypeLength>16</SRVTypeLength>
  <SRVType>SRVTypeLength</SRVType>
 </Message>
 <Message type="SLPSrvReply" mandatory="URLEntry,XID">
  <Rule>FunctionID=2</Rule>
  <ErrorCode>16</ErrorCode>
  <URLCount>16</URLCount>
  <URLLength>16</URLLength>
  <URLEntry>URLLength</URLEntry>
 </Message>
</MDL>`

func newPair(t *testing.T, xml string) (*Composer, *parser.Parser) {
	t.Helper()
	spec, err := mdl.ParseXMLString(xml)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(spec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parser.New(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestComposeSLPRequestRoundtrip(t *testing.T) {
	c, p := newPair(t, slpMDL)
	msg := message.New("SLP", "SLPSrvRequest")
	msg.AddPrimitive("Version", "Integer", message.Int(2))
	msg.AddPrimitive("FunctionID", "Integer", message.Int(1))
	msg.AddPrimitive("XID", "Integer", message.Int(4242))
	msg.AddPrimitive("LangTag", "String", message.Str("en"))
	msg.AddPrimitive("SRVType", "String", message.Str("service:printer"))

	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "SLPSrvRequest" {
		t.Fatalf("name = %q", back.Name)
	}
	for _, check := range []struct {
		label string
		want  string
	}{
		{"XID", "4242"}, {"SRVType", "service:printer"}, {"LangTag", "en"},
		{"SRVTypeLength", "15"}, {"LangTagLen", "2"}, {"PRLength", "0"},
	} {
		f, ok := back.Field(check.label)
		if !ok {
			t.Fatalf("%s missing", check.label)
		}
		if got := f.Value.Text(); got != check.want {
			t.Errorf("%s = %q, want %q", check.label, got, check.want)
		}
	}
	// MessageLength must be patched to the real total.
	f, _ := back.Field("MessageLength")
	if got, _ := f.Value.AsInt(); got != int64(len(wire)) {
		t.Errorf("MessageLength = %d, wire = %d", got, len(wire))
	}
}

func TestComposeAutoDerivesLengths(t *testing.T) {
	c, _ := newPair(t, slpMDL)
	// Deliberately set a WRONG SRVTypeLength; composer must override it
	// with the measured length.
	msg := message.New("SLP", "SLPSrvRequest")
	msg.AddPrimitive("FunctionID", "Integer", message.Int(1))
	msg.AddPrimitive("SRVTypeLength", "Integer", message.Int(999))
	msg.AddPrimitive("SRVType", "String", message.Str("abc"))
	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	// SRVTypeLength occupies the 2 bytes before the final 3.
	n := len(wire)
	got := int(wire[n-5])<<8 | int(wire[n-4])
	if got != 3 {
		t.Fatalf("SRVTypeLength on wire = %d, want 3", got)
	}
}

func TestComposeSLPReplyRoundtrip(t *testing.T) {
	c, p := newPair(t, slpMDL)
	msg := message.New("SLP", "SLPSrvReply")
	msg.AddPrimitive("Version", "Integer", message.Int(2))
	msg.AddPrimitive("FunctionID", "Integer", message.Int(2))
	msg.AddPrimitive("XID", "Integer", message.Int(7))
	msg.AddPrimitive("LangTag", "String", message.Str("en"))
	msg.AddPrimitive("URLCount", "Integer", message.Int(1))
	msg.AddPrimitive("URLEntry", "String", message.Str("service:printer://10.0.0.9:515"))

	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := back.Field("URLEntry")
	if got, _ := f.Value.AsString(); got != "service:printer://10.0.0.9:515" {
		t.Errorf("URLEntry = %q", got)
	}
	f, _ = back.Field("URLLength")
	if got, _ := f.Value.AsInt(); got != 30 {
		t.Errorf("URLLength = %d", got)
	}
}

func TestComposeUnknownMessage(t *testing.T) {
	c, _ := newPair(t, slpMDL)
	msg := message.New("SLP", "Bogus")
	if _, err := c.Compose(msg); err == nil || !strings.Contains(err.Error(), "no message") {
		t.Fatalf("err = %v", err)
	}
}

func TestComposeUnsetFieldsDefaultToZero(t *testing.T) {
	c, p := newPair(t, slpMDL)
	msg := message.New("SLP", "SLPSrvRequest")
	msg.AddPrimitive("FunctionID", "Integer", message.Int(1))
	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := back.Field("SRVType")
	if got, _ := f.Value.AsString(); got != "" {
		t.Errorf("SRVType = %q, want empty", got)
	}
	f, _ = back.Field("XID")
	if got, _ := f.Value.AsInt(); got != 0 {
		t.Errorf("XID = %d, want 0", got)
	}
}

const ssdpMDL = `
<MDL protocol="SSDP" dialect="text">
 <Types>
  <Method>String</Method>
  <URI>String</URI>
  <Version>String</Version>
  <ST>String</ST>
  <MX>Integer</MX>
  <LOCATION>URL</LOCATION>
 </Types>
 <Header type="SSDP">
  <Method>32</Method>
  <URI>32</URI>
  <Version>13,10</Version>
  <Fields>13,10:58</Fields>
 </Header>
 <Message type="SSDPMSearch" mandatory="ST">
  <Rule>Method=M-SEARCH</Rule>
 </Message>
 <Message type="SSDPResponse" mandatory="LOCATION">
  <Rule>Method=HTTP/1.1</Rule>
 </Message>
</MDL>`

func TestComposeSSDPMSearch(t *testing.T) {
	c, p := newPair(t, ssdpMDL)
	msg := message.New("SSDP", "SSDPMSearch")
	msg.AddPrimitive("URI", "String", message.Str("*"))
	msg.AddPrimitive("Version", "String", message.Str("HTTP/1.1"))
	msg.AddPrimitive("HOST", "String", message.Str("239.255.255.250:1900"))
	msg.AddPrimitive("ST", "String", message.Str("urn:printer"))

	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	text := string(wire)
	if !strings.HasPrefix(text, "M-SEARCH * HTTP/1.1\r\n") {
		t.Fatalf("request line wrong: %q", text)
	}
	if !strings.Contains(text, "ST: urn:printer\r\n") {
		t.Fatalf("ST missing: %q", text)
	}
	if !strings.HasSuffix(text, "\r\n\r\n") {
		t.Fatalf("missing blank line: %q", text)
	}
	back, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "SSDPMSearch" {
		t.Fatalf("name = %q", back.Name)
	}
	f, _ := back.Field("ST")
	if got, _ := f.Value.AsString(); got != "urn:printer" {
		t.Errorf("ST = %q", got)
	}
}

func TestComposeSSDPResponseImplodesURL(t *testing.T) {
	c, p := newPair(t, ssdpMDL)
	msg := message.New("SSDP", "SSDPResponse")
	msg.AddPrimitive("URI", "String", message.Str("200"))
	msg.AddPrimitive("Version", "String", message.Str("OK"))
	loc := &message.Field{Label: "LOCATION", Type: "URL", Children: []*message.Field{
		{Label: "protocol", Value: message.Str("http")},
		{Label: "address", Value: message.Str("10.0.0.7")},
		{Label: "port", Value: message.Int(5431)},
		{Label: "resource", Value: message.Str("/desc.xml")},
	}}
	msg.Add(loc)
	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wire), "LOCATION: http://10.0.0.7:5431/desc.xml\r\n") {
		t.Fatalf("LOCATION not imploded: %q", wire)
	}
	back, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	port, ok := back.Path("LOCATION.port")
	if !ok {
		t.Fatal("LOCATION.port missing after roundtrip")
	}
	if v, _ := port.Value.AsInt(); v != 5431 {
		t.Errorf("port = %d", v)
	}
}

const httpMDL = `
<MDL protocol="HTTP" dialect="text">
 <Types>
  <Method>String</Method>
  <URI>String</URI>
  <Version>String</Version>
  <Content-Length>Integer</Content-Length>
 </Types>
 <Header type="HTTP">
  <Method>32</Method>
  <URI>32</URI>
  <Version>13,10</Version>
  <Fields>13,10:58</Fields>
 </Header>
 <Message type="HTTPGet">
  <Rule>Method=GET</Rule>
 </Message>
 <Message type="HTTPOk" body="xml" mandatory="URLBase">
  <Rule>Method=HTTP/1.1</Rule>
 </Message>
</MDL>`

func TestComposeHTTPOkWithBody(t *testing.T) {
	c, p := newPair(t, httpMDL)
	body := "<root><URLBase>http://10.0.0.7:5431/svc</URLBase></root>"
	msg := message.New("HTTP", "HTTPOk")
	msg.AddPrimitive("URI", "String", message.Str("200"))
	msg.AddPrimitive("Version", "String", message.Str("OK"))
	msg.AddPrimitive("Content-Length", "Integer", message.Int(int64(len(body))))
	msg.AddPrimitive("Body", "Bytes", message.Bytes([]byte(body)))

	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(wire), body) {
		t.Fatalf("body not appended: %q", wire)
	}
	back, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := back.Field("URLBase")
	if !ok {
		t.Fatal("URLBase missing")
	}
	if got, _ := f.Value.AsString(); got != "http://10.0.0.7:5431/svc" {
		t.Errorf("URLBase = %q", got)
	}
}

const groupMDL = `
<MDL protocol="G" dialect="binary">
 <Types>
  <FID>Integer</FID>
  <N>Integer</N>
  <L>Integer</L>
  <V>String</V>
 </Types>
 <Header type="G"><FID>8</FID></Header>
 <Message type="M">
  <Rule>FID=1</Rule>
  <N>16</N>
  <Repeat label="Items" count="N">
   <L>16</L>
   <V>L</V>
  </Repeat>
 </Message>
</MDL>`

func TestComposeRepeatGroupRoundtrip(t *testing.T) {
	c, p := newPair(t, groupMDL)
	msg := message.New("G", "M")
	msg.AddPrimitive("FID", "Integer", message.Int(1))
	group := &message.Field{Label: "Items", Type: "Group", Children: []*message.Field{}}
	for i, s := range []string{"alpha", "be", "gamma!"} {
		item := &message.Field{Label: message.Int(int64(i)).Text(), Children: []*message.Field{
			{Label: "V", Value: message.Str(s)},
		}}
		group.Children = append(group.Children, item)
	}
	msg.Add(group)

	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := back.Field("Items")
	if !ok || len(g.Children) != 3 {
		t.Fatalf("Items = %+v", g)
	}
	v, ok := back.Path("Items.1.V")
	if !ok {
		t.Fatal("Items.1.V missing")
	}
	if got, _ := v.Value.AsString(); got != "be" {
		t.Errorf("Items.1.V = %q", got)
	}
	n, _ := back.Field("N")
	if got, _ := n.Value.AsInt(); got != 3 {
		t.Errorf("N = %d", got)
	}
}

func TestComposeEmptyGroup(t *testing.T) {
	c, p := newPair(t, groupMDL)
	msg := message.New("G", "M")
	msg.AddPrimitive("FID", "Integer", message.Int(1))
	wire, err := c.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := back.Field("N")
	if got, _ := n.Value.AsInt(); got != 0 {
		t.Errorf("N = %d", got)
	}
}

// Property: compose∘parse is identity on the observable SLP request
// fields for arbitrary XIDs and service types.
func TestQuickSLPRequestRoundtrip(t *testing.T) {
	c, p := newPair(t, slpMDL)
	f := func(xid uint16, svcRaw []byte) bool {
		svc := make([]byte, 0, len(svcRaw))
		for _, b := range svcRaw {
			svc = append(svc, 'a'+b%26)
		}
		msg := message.New("SLP", "SLPSrvRequest")
		msg.AddPrimitive("FunctionID", "Integer", message.Int(1))
		msg.AddPrimitive("XID", "Integer", message.Int(int64(xid)))
		msg.AddPrimitive("SRVType", "String", message.Str(string(svc)))
		wire, err := c.Compose(msg)
		if err != nil {
			return false
		}
		back, err := p.Parse(wire)
		if err != nil {
			return false
		}
		fx, _ := back.Field("XID")
		fs, _ := back.Field("SRVType")
		gotXID, _ := fx.Value.AsInt()
		gotSvc, _ := fs.Value.AsString()
		return gotXID == int64(xid) && gotSvc == string(svc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: composed SLP wire always carries a correct MessageLength.
func TestQuickSLPMessageLengthInvariant(t *testing.T) {
	c, _ := newPair(t, slpMDL)
	f := func(svcRaw []byte) bool {
		svc := make([]byte, 0, len(svcRaw))
		for _, b := range svcRaw {
			svc = append(svc, 'a'+b%26)
		}
		msg := message.New("SLP", "SLPSrvRequest")
		msg.AddPrimitive("FunctionID", "Integer", message.Int(1))
		msg.AddPrimitive("SRVType", "String", message.Str(string(svc)))
		wire, err := c.Compose(msg)
		if err != nil {
			return false
		}
		got := int(wire[2])<<16 | int(wire[3])<<8 | int(wire[4])
		return got == len(wire)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: text compose∘parse preserves arbitrary wildcard fields.
func TestQuickSSDPWildcardRoundtrip(t *testing.T) {
	c, p := newPair(t, ssdpMDL)
	f := func(vals []uint16) bool {
		msg := message.New("SSDP", "SSDPMSearch")
		msg.AddPrimitive("URI", "String", message.Str("*"))
		msg.AddPrimitive("Version", "String", message.Str("HTTP/1.1"))
		want := map[string]string{}
		for i, v := range vals {
			label := "X-H" + message.Int(int64(i)).Text()
			val := "v" + message.Int(int64(v)).Text()
			want[label] = val
			msg.AddPrimitive(label, "String", message.Str(val))
		}
		wire, err := c.Compose(msg)
		if err != nil {
			return false
		}
		back, err := p.Parse(wire)
		if err != nil {
			return false
		}
		for label, val := range want {
			f, ok := back.Field(label)
			if !ok {
				return false
			}
			if got, _ := f.Value.AsString(); got != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestComposeDeterministic(t *testing.T) {
	c, _ := newPair(t, ssdpMDL)
	msg := message.New("SSDP", "SSDPMSearch")
	msg.AddPrimitive("URI", "String", message.Str("*"))
	msg.AddPrimitive("Version", "String", message.Str("HTTP/1.1"))
	msg.AddPrimitive("A", "String", message.Str("1"))
	msg.AddPrimitive("B", "String", message.Str("2"))
	w1, err := c.Compose(msg.Clone())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := c.Compose(msg.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1, w2) {
		t.Fatal("compose not deterministic")
	}
}
