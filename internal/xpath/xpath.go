// Package xpath evaluates the XPath subset Starlink's translation logic
// uses to address fields inside abstract messages (paper Fig. 8):
//
//	/field/primitiveField[label='ST']/value
//	/field/structuredField[label='LOCATION']/primitiveField[label='port']/value
//
// The abstract message object "conforms to an XML schema of the abstract
// message representation", allowing XPath expressions to read and write
// field values (§IV-A). This package implements exactly the grammar the
// models need: a /field root step, primitiveField/structuredField steps
// with a [label='...'] predicate, and a trailing /value step.
package xpath

import (
	"fmt"
	"strings"

	"starlink/internal/message"
)

// Step is one component of a parsed path.
type Step struct {
	// Axis is "field", "primitiveField", "structuredField" or "value".
	Axis string
	// Label is the [label='X'] predicate value, empty if absent.
	Label string
}

// Compiled is a compiled XPath expression. Compiling happens once at
// model-load / case-compile time; Eval/Get/Set on the steady-state
// bridge path do no parsing and no allocation (on success).
type Compiled struct {
	raw   string
	steps []Step
}

// Path is the historical name of Compiled, kept as an alias.
type Path = Compiled

// String returns the original expression.
func (p *Path) String() string { return p.raw }

// Steps returns a copy of the compiled step sequence. Static model
// tooling (mdlc lint) uses it to check that a path's field labels
// exist in the message the path is evaluated against.
func (p *Path) Steps() []Step { return append([]Step(nil), p.steps...) }

// Compile parses an expression. It fails on any construct outside the
// supported subset so model errors surface at load time, not mid-bridge.
func Compile(expr string) (*Compiled, error) {
	raw := expr
	expr = strings.TrimSpace(expr)
	if !strings.HasPrefix(expr, "/") {
		return nil, fmt.Errorf("xpath: %q must be absolute", raw)
	}
	parts := strings.Split(expr[1:], "/")
	if len(parts) == 0 {
		return nil, fmt.Errorf("xpath: %q is empty", raw)
	}
	p := &Compiled{raw: raw}
	for i, part := range parts {
		step, err := parseStep(part)
		if err != nil {
			return nil, fmt.Errorf("xpath: %q: %w", raw, err)
		}
		switch step.Axis {
		case "field":
			if i != 0 {
				return nil, fmt.Errorf("xpath: %q: field step must be first", raw)
			}
		case "value":
			if i != len(parts)-1 {
				return nil, fmt.Errorf("xpath: %q: value step must be last", raw)
			}
			if step.Label != "" {
				return nil, fmt.Errorf("xpath: %q: value step takes no predicate", raw)
			}
		case "primitiveField", "structuredField":
			if step.Label == "" {
				return nil, fmt.Errorf("xpath: %q: %s needs a [label='...'] predicate", raw, step.Axis)
			}
		default:
			return nil, fmt.Errorf("xpath: %q: unsupported step %q", raw, step.Axis)
		}
		p.steps = append(p.steps, step)
	}
	if len(p.steps) < 2 || p.steps[0].Axis != "field" {
		return nil, fmt.Errorf("xpath: %q must start with /field", raw)
	}
	return p, nil
}

// MustCompile is Compile, panicking on error; for tests and embedded
// model literals only.
func MustCompile(expr string) *Path {
	p, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return p
}

func parseStep(s string) (Step, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Step{}, fmt.Errorf("empty step")
	}
	open := strings.IndexByte(s, '[')
	if open < 0 {
		return Step{Axis: s}, nil
	}
	if !strings.HasSuffix(s, "]") {
		return Step{}, fmt.Errorf("unterminated predicate in %q", s)
	}
	axis := s[:open]
	pred := s[open+1 : len(s)-1]
	const prefix = "label="
	if !strings.HasPrefix(pred, prefix) {
		return Step{}, fmt.Errorf("unsupported predicate %q", pred)
	}
	val := pred[len(prefix):]
	if len(val) < 2 || (val[0] != '\'' && val[0] != '"') || val[len(val)-1] != val[0] {
		return Step{}, fmt.Errorf("predicate value %q must be quoted", val)
	}
	return Step{Axis: axis, Label: val[1 : len(val)-1]}, nil
}

// SelectField resolves the path down to the field it addresses (the
// step before any trailing /value).
//
//starlink:hotpath
func (p *Path) SelectField(msg *message.Message) (*message.Field, error) {
	var cur *message.Field
	for _, step := range p.steps {
		switch step.Axis {
		case "field":
			// Root: selection context is the message's field list.
			cur = nil
		case "value":
			if cur == nil {
				return nil, fmt.Errorf("xpath: %q: value step with no field selected", p.raw)
			}
			return cur, nil
		case "primitiveField", "structuredField":
			var next *message.Field
			if cur == nil {
				if f, ok := msg.Field(step.Label); ok {
					next = f
				}
			} else {
				if f, ok := cur.Child(step.Label); ok {
					next = f
				}
			}
			if next == nil {
				return nil, fmt.Errorf("xpath: %q: no field labelled %q in %s", p.raw, step.Label, msg.Name)
			}
			if step.Axis == "structuredField" && !next.IsStructured() {
				return nil, fmt.Errorf("xpath: %q: field %q is not structured", p.raw, step.Label)
			}
			cur = next
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("xpath: %q selects no field", p.raw)
	}
	return cur, nil
}

// Get reads the value the path addresses.
//
//starlink:hotpath
func (p *Path) Get(msg *message.Message) (message.Value, error) {
	f, err := p.SelectField(msg)
	if err != nil {
		return message.Value{}, err
	}
	return f.Value, nil
}

// Eval reads the value the compiled path addresses — the steady-state
// entry point: zero allocations on the success path.
//
//starlink:hotpath
func (p *Compiled) Eval(msg *message.Message) (message.Value, error) { return p.Get(msg) }

// Set writes a value at the path, creating intermediate fields as
// needed so translation targets need not pre-exist in the outgoing
// message template.
func (p *Path) Set(msg *message.Message, v message.Value) error {
	var cur *message.Field
	for _, step := range p.steps {
		switch step.Axis {
		case "field":
			cur = nil
		case "value":
			if cur == nil {
				return fmt.Errorf("xpath: %q: value step with no field selected", p.raw)
			}
			cur.Value = v
			return nil
		case "primitiveField", "structuredField":
			var next *message.Field
			if cur == nil {
				if f, ok := msg.Field(step.Label); ok {
					next = f
				} else {
					next = &message.Field{Label: step.Label}
					msg.Add(next)
				}
			} else {
				if f, ok := cur.Child(step.Label); ok {
					next = f
				} else {
					next = &message.Field{Label: step.Label}
					if cur.Children == nil {
						cur.Children = []*message.Field{}
					}
					cur.Children = append(cur.Children, next)
				}
			}
			if step.Axis == "structuredField" && next.Children == nil {
				next.Children = []*message.Field{}
			}
			cur = next
		}
	}
	if cur == nil {
		return fmt.Errorf("xpath: %q selects no field", p.raw)
	}
	cur.Value = v
	return nil
}

// FieldPath is a convenience constructor building the canonical
// expression for a dotted field path ("LOCATION.port" becomes
// /field/structuredField[label='LOCATION']/primitiveField[label='port']/value).
// The last component is primitive; all leading components structured.
func FieldPath(dotted string) *Path {
	parts := strings.Split(dotted, ".")
	var sb strings.Builder
	sb.WriteString("/field")
	for i, part := range parts {
		axis := "structuredField"
		if i == len(parts)-1 {
			axis = "primitiveField"
		}
		fmt.Fprintf(&sb, "/%s[label='%s']", axis, part)
	}
	sb.WriteString("/value")
	return MustCompile(sb.String())
}
