package xpath

import (
	"strings"
	"testing"
	"testing/quick"

	"starlink/internal/message"
)

func sampleMsg() *message.Message {
	m := message.New("SSDP", "SSDPResponse")
	m.AddPrimitive("ST", "String", message.Str("urn:printer"))
	m.AddPrimitive("MX", "Integer", message.Int(1))
	m.Add(&message.Field{Label: "LOCATION", Type: "URL", Children: []*message.Field{
		{Label: "protocol", Value: message.Str("http")},
		{Label: "address", Value: message.Str("10.0.0.7")},
		{Label: "port", Value: message.Int(5431)},
		{Label: "resource", Value: message.Str("/desc.xml")},
	}})
	return m
}

func TestGetPrimitive(t *testing.T) {
	p, err := Compile("/field/primitiveField[label='ST']/value")
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Get(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.AsString(); s != "urn:printer" {
		t.Fatalf("got %q", s)
	}
}

func TestGetNested(t *testing.T) {
	p := MustCompile("/field/structuredField[label='LOCATION']/primitiveField[label='port']/value")
	v, err := p.Get(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 5431 {
		t.Fatalf("got %d", i)
	}
}

func TestGetWithoutValueStep(t *testing.T) {
	// Selecting the field itself (no /value) is allowed for SelectField.
	p := MustCompile("/field/structuredField[label='LOCATION']")
	f, err := p.SelectField(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	if f.Label != "LOCATION" || !f.IsStructured() {
		t.Fatalf("field = %+v", f)
	}
}

func TestGetMissingField(t *testing.T) {
	p := MustCompile("/field/primitiveField[label='NOPE']/value")
	if _, err := p.Get(sampleMsg()); err == nil {
		t.Fatal("missing field should fail")
	}
}

func TestStructuredPredicateOnPrimitive(t *testing.T) {
	p := MustCompile("/field/structuredField[label='ST']/value")
	if _, err := p.Get(sampleMsg()); err == nil {
		t.Fatal("ST is primitive; structuredField step should fail")
	}
}

func TestSetExistingField(t *testing.T) {
	m := sampleMsg()
	p := MustCompile("/field/primitiveField[label='ST']/value")
	if err := p.Set(m, message.Str("urn:scanner")); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Field("ST")
	if s, _ := f.Value.AsString(); s != "urn:scanner" {
		t.Fatalf("ST = %q", s)
	}
}

func TestSetCreatesMissingFields(t *testing.T) {
	m := message.New("SLP", "SLPSrvReply")
	p := MustCompile("/field/primitiveField[label='URLEntry']/value")
	if err := p.Set(m, message.Str("service:x")); err != nil {
		t.Fatal(err)
	}
	f, ok := m.Field("URLEntry")
	if !ok {
		t.Fatal("URLEntry not created")
	}
	if s, _ := f.Value.AsString(); s != "service:x" {
		t.Fatalf("URLEntry = %q", s)
	}
}

func TestSetCreatesNestedStructure(t *testing.T) {
	m := message.New("P", "M")
	p := MustCompile("/field/structuredField[label='URL']/primitiveField[label='port']/value")
	if err := p.Set(m, message.Int(8080)); err != nil {
		t.Fatal(err)
	}
	f, ok := m.Path("URL.port")
	if !ok {
		t.Fatal("URL.port not created")
	}
	if i, _ := f.Value.AsInt(); i != 8080 {
		t.Fatalf("port = %d", i)
	}
	u, _ := m.Field("URL")
	if !u.IsStructured() {
		t.Fatal("URL should be structured")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []struct {
		expr string
		want string
	}{
		{"relative/path", "absolute"},
		{"/primitiveField[label='x']/value", "must start with /field"},
		{"/field/value/primitiveField[label='x']", "value step must be last"},
		{"/field/primitiveField/value", "needs a [label="},
		{"/field/primitiveField[label='x'", "unterminated"},
		{"/field/primitiveField[name='x']/value", "unsupported predicate"},
		{"/field/primitiveField[label=x]/value", "must be quoted"},
		{"/field/weirdAxis[label='x']/value", "unsupported step"},
		{"/field//value", "empty step"},
		{"/field/value[label='x']", "no predicate"},
	}
	for _, tt := range bad {
		_, err := Compile(tt.expr)
		if err == nil {
			t.Errorf("%q: want error", tt.expr)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%q: error %q missing %q", tt.expr, err, tt.want)
		}
	}
}

func TestDoubleQuotedPredicate(t *testing.T) {
	p, err := Compile(`/field/primitiveField[label="ST"]/value`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Get(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.AsString(); s != "urn:printer" {
		t.Fatalf("got %q", s)
	}
}

func TestFieldPathBuilder(t *testing.T) {
	p := FieldPath("LOCATION.port")
	v, err := p.Get(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 5431 {
		t.Fatalf("got %d", i)
	}
	p = FieldPath("ST")
	v, err = p.Get(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.AsString(); s != "urn:printer" {
		t.Fatalf("got %q", s)
	}
}

// Property: Set followed by Get returns the written value, for
// arbitrary label and integer payloads.
func TestQuickSetGetInverse(t *testing.T) {
	f := func(labelRaw []byte, val int64) bool {
		label := "F"
		for _, b := range labelRaw {
			label += string(rune('a' + b%26))
		}
		m := message.New("P", "M")
		p, err := Compile("/field/primitiveField[label='" + label + "']/value")
		if err != nil {
			return false
		}
		if err := p.Set(m, message.Int(val)); err != nil {
			return false
		}
		v, err := p.Get(m)
		if err != nil {
			return false
		}
		got, _ := v.AsInt()
		return got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCompiledEvalAllocs pins the steady-state contract for Set over
// existing fields; Eval's zero-alloc guarantee is enforced
// structurally by the //starlink:hotpath annotation (starlink-vet
// hotpathalloc), so only correctness is checked here.
func TestCompiledEvalAllocs(t *testing.T) {
	msg := message.New("SSDP", "SSDPResponse")
	msg.Add(&message.Field{Label: "LOCATION", Children: []*message.Field{
		{Label: "address", Value: message.Str("10.0.0.7")},
		{Label: "port", Value: message.Int(5431)},
	}})
	p := MustCompile("/field/structuredField[label='LOCATION']/primitiveField[label='port']/value")
	v, err := p.Eval(msg)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n != 5431 {
		t.Fatalf("Eval = %v", v)
	}
	// Set over existing fields is allocation free.
	if got := testing.AllocsPerRun(100, func() {
		if err := p.Set(msg, message.Int(80)); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("Compiled.Set allocates %.1f per run, want 0", got)
	}
}
