// Package serrors defines Starlink's structured error taxonomy: the
// sentinel errors every layer of the framework classifies its failures
// under, and the Mark helper that attaches a sentinel to a detailed
// error without losing either.
//
// The sentinels live here — in a leaf package with no Starlink
// dependencies — so that internal/core, internal/engine,
// internal/provision and internal/registry can all tag their errors
// with them, and the public starlink package can re-export them,
// without an import cycle. Callers assert on them with errors.Is:
//
//	if errors.Is(err, serrors.ErrUnknownCase) { ... }
//
// A marked error matches both the sentinel and everything the wrapped
// detail error matches (context cancellation, typed inner errors, ...).
package serrors

import "errors"

var (
	// ErrUnknownCase marks a reference to a merged automaton (a
	// "case") that is not loaded in the registry.
	ErrUnknownCase = errors.New("unknown case")

	// ErrOverloaded marks work rejected or dropped because a
	// configured capacity bound was hit: the max-sessions semaphore, a
	// full session inbox, or a full ingest queue.
	ErrOverloaded = errors.New("overloaded")

	// ErrAmbiguousPayload marks an entry payload that classified under
	// more than one hosted case. The payload is still dispatched — to
	// the lexicographically first case — but observers see the
	// ambiguity tagged with this sentinel.
	ErrAmbiguousPayload = errors.New("ambiguous payload")

	// ErrDraining marks work rejected because the deployment is
	// draining: it no longer admits new sessions and only lets the
	// in-flight ones finish.
	ErrDraining = errors.New("draining")

	// ErrModelInvalid marks a model document (MDL, colored automaton
	// or merged automaton) that failed to parse or validate.
	ErrModelInvalid = errors.New("model invalid")

	// ErrClosed marks an operation on a deployment that has already
	// been closed.
	ErrClosed = errors.New("closed")
)

// marked attaches a sentinel to a detail error. errors.Is matches the
// sentinel (via Is) and everything the detail matches (via Unwrap);
// errors.As reaches the detail's typed errors the same way.
type marked struct {
	err  error
	mark error
}

// Mark returns err tagged with the sentinel mark. A nil err returns
// nil. The result's Error text is err's own — the sentinel classifies,
// it does not decorate.
func Mark(err, mark error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, mark: mark}
}

func (m *marked) Error() string { return m.err.Error() }

func (m *marked) Unwrap() error { return m.err }

func (m *marked) Is(target error) bool { return errors.Is(m.mark, target) }
