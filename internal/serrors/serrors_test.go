package serrors

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestMarkMatchesSentinelAndDetail(t *testing.T) {
	detail := fmt.Errorf("deploy slp-to-upnp: %w", context.Canceled)
	err := Mark(detail, ErrDraining)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("marked error does not match its sentinel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("marked error lost the wrapped detail chain")
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatalf("marked error matches a foreign sentinel")
	}
	if got := err.Error(); got != detail.Error() {
		t.Fatalf("Error() = %q, want the detail text %q", got, detail.Error())
	}
}

func TestMarkNil(t *testing.T) {
	if Mark(nil, ErrClosed) != nil {
		t.Fatalf("Mark(nil, ...) must be nil")
	}
}

func TestMarkNested(t *testing.T) {
	err := fmt.Errorf("provision: case x: %w", Mark(errors.New("not loaded"), ErrUnknownCase))
	if !errors.Is(err, ErrUnknownCase) {
		t.Fatalf("sentinel lost through an outer fmt.Errorf wrap")
	}
}
