package hist

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexCoversRange checks the index function is monotone and
// that every value falls inside its bucket's bounds.
func TestBucketIndexCoversRange(t *testing.T) {
	prev := -1
	for _, v := range sampleValues() {
		i := bucketIndex(v)
		if i < 0 || i >= nBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		lo, hi := bucketBounds(i)
		cv := v
		if cv > maxVal {
			cv = maxVal
		}
		if cv < lo || cv > hi {
			t.Fatalf("value %d (clamped %d) outside bucket %d bounds [%d, %d]", v, cv, i, lo, hi)
		}
	}
}

// TestBucketBoundsContiguous checks buckets tile the value range with
// no gaps or overlaps.
func TestBucketBoundsContiguous(t *testing.T) {
	var next uint64
	for i := 0; i < nBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != next {
			t.Fatalf("bucket %d starts at %d, want %d", i, lo, next)
		}
		if hi < lo {
			t.Fatalf("bucket %d bounds inverted [%d, %d]", i, lo, hi)
		}
		next = hi + 1
	}
	if next != maxVal+1 {
		t.Fatalf("buckets end at %d, want %d", next-1, maxVal)
	}
}

func sampleValues() []uint64 {
	vals := []uint64{0, 1, 15, 16, 17, 31, 32, 1000, 1023, 1024, maxVal, maxVal + 1, maxVal * 2}
	for e := 4; e <= 40; e++ {
		v := uint64(1) << e
		vals = append(vals, v-1, v, v+1)
	}
	// Sorted insertion order matters for the monotonicity check.
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals
}

func TestRecordAndQuantile(t *testing.T) {
	h := &Histogram{}
	const n = 100_000
	rng := rand.New(rand.NewSource(7))
	var sum time.Duration
	for i := 0; i < n; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		h.Record(d)
		sum += d
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("Count = %d, want %d", s.Count, n)
	}
	if s.Sum != sum {
		t.Fatalf("Sum = %v, want %v", s.Sum, sum)
	}
	// Uniform [0, 10ms): p50 ≈ 5ms, p99 ≈ 9.9ms, within the 6.25%
	// resolution contract plus sampling noise.
	checkQuantile(t, s, 0.50, 5*time.Millisecond)
	checkQuantile(t, s, 0.90, 9*time.Millisecond)
	checkQuantile(t, s, 0.99, 9900*time.Microsecond)
}

func checkQuantile(t *testing.T, s Snapshot, q float64, want time.Duration) {
	t.Helper()
	got := s.Quantile(q)
	lo := time.Duration(float64(want) * 0.90)
	hi := time.Duration(float64(want) * 1.10)
	if got < lo || got > hi {
		t.Errorf("Quantile(%v) = %v, want within [%v, %v]", q, got, lo, hi)
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty Snapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	h := &Histogram{}
	h.Record(100 * time.Microsecond)
	s := h.Snapshot()
	for _, q := range []float64{0.0, 0.5, 1.0} {
		got := s.Quantile(q)
		if got < 100*time.Microsecond || got > time.Duration(float64(100*time.Microsecond)*1.07) {
			t.Fatalf("single-sample Quantile(%v) = %v", q, got)
		}
	}
	h.Record(-5 * time.Second) // clamps to 0
	if got := h.Snapshot().Count; got != 2 {
		t.Fatalf("Count after negative record = %d, want 2", got)
	}
}

func TestCumulativeAtLadderExact(t *testing.T) {
	h := &Histogram{}
	bounds := Ladder()
	if len(bounds) != 13 {
		t.Fatalf("Ladder has %d bounds, want 13", len(bounds))
	}
	// One sample exactly at each bound, one just above.
	for _, b := range bounds {
		h.Record(b)
		h.Record(b + 1)
	}
	s := h.Snapshot()
	for i, b := range bounds {
		// Bounds are bucket upper edges, so counts at each rung are
		// exact: all samples ≤ b.
		want := uint64(2*i + 1)
		if got := s.CumulativeAt(b); got != want {
			t.Errorf("CumulativeAt(%v) = %d, want %d", b, got, want)
		}
	}
	if got := s.CumulativeAt(-1); got != 0 {
		t.Errorf("CumulativeAt(-1) = %d, want 0", got)
	}
	cum := s.Cumulative(bounds)
	for i, b := range bounds {
		if cum[i] != s.CumulativeAt(b) {
			t.Errorf("Cumulative[%d] = %d, want %d", i, cum[i], s.CumulativeAt(b))
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i) * time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != sa.Count+sb.Count {
		t.Fatalf("merged Count = %d, want %d", merged.Count, sa.Count+sb.Count)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged Sum = %v, want %v", merged.Sum, sa.Sum+sb.Sum)
	}
	for _, bound := range Ladder() {
		want := sa.CumulativeAt(bound) + sb.CumulativeAt(bound)
		if got := merged.CumulativeAt(bound); got != want {
			t.Fatalf("merged CumulativeAt(%v) = %d, want %d", bound, got, want)
		}
	}
}

func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Record(time.Millisecond) // must not panic
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("nil Snapshot = %+v, want zero", s)
	}
}

// TestConcurrentRecord exercises sharded recording under the race
// detector and checks no sample is lost.
func TestConcurrentRecord(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot().Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
}

// TestRecordAllocs is the zero-allocation contract backing the
// //starlink:hotpath annotation on Record.
func TestRecordAllocs(t *testing.T) {
	h := &Histogram{}
	d := 123 * time.Microsecond
	if n := testing.AllocsPerRun(1000, func() { h.Record(d) }); n != 0 {
		t.Fatalf("Record allocates %v per op, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Record(d) }); n != 0 {
		t.Fatalf("nil Record allocates %v per op, want 0", n)
	}
}

func BenchmarkRecord(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkRecordParallel(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Duration(0)
		for pb.Next() {
			h.Record(d)
			d += 37 * time.Microsecond
		}
	})
}

func BenchmarkSnapshot(b *testing.B) {
	h := &Histogram{}
	for i := 0; i < 10_000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Snapshot()
	}
}
