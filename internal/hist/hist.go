// Package hist implements the lock-free latency histogram behind the
// framework's staged latency metrics (Metrics.Latency, the Prometheus
// exposition, starlink-bench -latency-hist).
//
// The layout is log-linear (HDR-style): each power-of-two octave is cut
// into 16 linear sub-buckets, giving a worst-case relative error of
// 2^-4 = 6.25% across the whole range — nanoseconds to tens of
// seconds — in a fixed 544-bucket table. Recording is wait-free: the
// bucket table is sharded into four independent arrays of atomic
// counters and a recording goroutine picks its shard by hashing the
// recorded value, so concurrent sessions rarely contend on one cache
// line. Record performs no allocation and no locking; it is annotated
// //starlink:hotpath and guarded by AllocsPerRun tests.
//
// Snapshot merges the shards into an immutable value that answers
// quantile and cumulative-count queries. Export code (the Prometheus
// writer, bench tables) uses the shared Ladder bounds so every consumer
// agrees on bucket boundaries.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits is the log2 of the linear sub-buckets per octave: the
	// resolution contract (relative error ≤ 2^-subBits).
	subBits  = 4
	subCount = 1 << subBits

	// maxExp is the largest indexed octave exponent: values at or above
	// 2^(maxExp+1) ns (~137 s) clamp into the last bucket.
	maxExp = 36
	maxVal = uint64(1)<<(maxExp+1) - 1

	nBuckets = subCount + (maxExp-subBits+1)*subCount

	shardBits  = 2
	shardCount = 1 << shardBits
)

// shard is one independently updated bucket table. Each recording
// goroutine lands on a shard by value hash; readers merge all shards.
type shard struct {
	counts [nBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Histogram is a lock-free log-linear duration histogram. The zero
// value is ready to use; all methods are safe for concurrent use. A nil
// *Histogram is a valid no-op recorder.
type Histogram struct {
	shards [shardCount]shard
}

// Record adds one duration sample. Negative durations clamp to zero,
// durations beyond ~137s clamp into the last bucket. Wait-free: two
// atomic adds on a shard selected by hashing the value.
//
//starlink:hotpath
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	sh := &h.shards[(v*0x9e3779b97f4a7c15)>>(64-shardBits)]
	sh.counts[bucketIndex(v)].Add(1)
	sh.sum.Add(v)
}

// bucketIndex maps a clamped sample value to its bucket: values below
// subCount get unit buckets, larger values log-linear octave buckets.
//
//starlink:hotpath
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	if v > maxVal {
		v = maxVal
	}
	e := bits.Len64(v) - 1
	return (e-subBits+1)*subCount + int((v>>(e-subBits))&(subCount-1))
}

// bucketBounds returns the inclusive value range [lo, hi] covered by
// bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < subCount {
		return uint64(i), uint64(i)
	}
	e := i>>subBits + subBits - 1
	width := uint64(1) << (e - subBits)
	lo = uint64(1)<<e + uint64(i&(subCount-1))*width
	return lo, lo + width - 1
}

// Snapshot is an immutable merged view of a histogram, safe to copy and
// to query from any goroutine.
type Snapshot struct {
	// Count is the total number of recorded samples.
	Count uint64
	// Sum is the sum of all recorded samples (clamped values).
	Sum time.Duration

	counts [nBuckets]uint64
}

// Snapshot merges the shards into an immutable view. Concurrent
// recording keeps going; the snapshot is a consistent-enough cut for
// metrics (each bucket is read atomically, the cut across buckets is
// not a single instant).
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		s.Sum += time.Duration(sh.sum.Load())
		for b := range sh.counts {
			if c := sh.counts[b].Load(); c != 0 {
				s.counts[b] += c
				s.Count += c
			}
		}
	}
	return s
}

// Merge adds another snapshot into s (per-case → aggregate rollups).
func (s *Snapshot) Merge(o Snapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
}

// Quantile returns the value at quantile q (0 < q ≤ 1) as the upper
// bound of the bucket holding that rank — at most one resolution step
// (6.25%) above the true sample. Returns 0 on an empty snapshot.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			_, hi := bucketBounds(i)
			return time.Duration(hi)
		}
	}
	_, hi := bucketBounds(nBuckets - 1)
	return time.Duration(hi)
}

// CumulativeAt counts the samples recorded in buckets that lie wholly
// at or below d — the count of samples ≤ d, exact whenever d+1 is a
// bucket boundary (every Ladder bound qualifies), otherwise rounded
// down by at most one sub-bucket.
func (s Snapshot) CumulativeAt(d time.Duration) uint64 {
	if d < 0 {
		return 0
	}
	v := uint64(d)
	var cum uint64
	for i := 0; i < nBuckets; i++ {
		if _, hi := bucketBounds(i); hi > v {
			break
		}
		cum += s.counts[i]
	}
	return cum
}

// Cumulative evaluates CumulativeAt for each bound, in order.
func (s Snapshot) Cumulative(bounds []time.Duration) []uint64 {
	out := make([]uint64, len(bounds))
	for i, b := range bounds {
		out[i] = s.CumulativeAt(b)
	}
	return out
}

// Ladder returns the shared export bucket bounds: thirteen
// octave-aligned steps from ~1µs (2^10−1 ns) to ~17s (2^34−1 ns), every
// fourth power of two. Each bound is the exact upper edge of a bucket,
// so CumulativeAt is exact at every rung; production exposition and
// starlink-bench both use it, keeping their bucket boundaries in
// agreement.
func Ladder() []time.Duration {
	out := make([]time.Duration, 0, (34-10)/2+1)
	for e := 10; e <= 34; e += 2 {
		out = append(out, time.Duration(uint64(1)<<e-1))
	}
	return out
}
