package types

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"starlink/internal/message"
)

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"Integer", "String", "Bytes", "Boolean", "FQDN", "URL", "IPv4"} {
		if _, err := r.Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := r.Lookup("Nope"); err == nil {
		t.Error("unknown type should fail")
	}
	if len(r.Names()) != 7 {
		t.Errorf("Names() = %v", r.Names())
	}
}

func TestRegistryDuplicate(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(IntegerMarshaller{}); err == nil {
		t.Fatal("duplicate register should fail")
	}
}

func TestIntegerMarshalWidths(t *testing.T) {
	m := IntegerMarshaller{}
	tests := []struct {
		v    int64
		bits int
		want []byte
	}{
		{2, 8, []byte{2}},
		{1, 16, []byte{0, 1}},
		{0xABCDEF, 24, []byte{0xAB, 0xCD, 0xEF}},
		{5, 3, []byte{5}},
		{65535, 16, []byte{0xFF, 0xFF}},
	}
	for _, tt := range tests {
		got, err := m.Marshal(message.Int(tt.v), tt.bits)
		if err != nil {
			t.Fatalf("Marshal(%d,%d): %v", tt.v, tt.bits, err)
		}
		if !bytes.Equal(got, tt.want) {
			t.Errorf("Marshal(%d,%d) = %v, want %v", tt.v, tt.bits, got, tt.want)
		}
		back, err := m.Unmarshal(got, tt.bits)
		if err != nil {
			t.Fatal(err)
		}
		if i, _ := back.AsInt(); i != tt.v {
			t.Errorf("roundtrip %d -> %d", tt.v, i)
		}
	}
}

func TestIntegerMarshalErrors(t *testing.T) {
	m := IntegerMarshaller{}
	if _, err := m.Marshal(message.Str("x"), 8); err == nil {
		t.Error("string value should fail")
	}
	if _, err := m.Marshal(message.Int(256), 8); err == nil {
		t.Error("overflow should fail")
	}
	if _, err := m.Marshal(message.Int(-1), 8); err == nil {
		t.Error("negative should fail")
	}
	if _, err := m.Marshal(message.Int(1), 0); err == nil {
		t.Error("zero width should fail")
	}
}

func TestStringMarshal(t *testing.T) {
	m := StringMarshaller{}
	got, err := m.Marshal(message.Str("abc"), 0)
	if err != nil || string(got) != "abc" {
		t.Fatalf("got %q err %v", got, err)
	}
	// Fixed width must match exactly.
	if _, err := m.Marshal(message.Str("abc"), 16); err == nil {
		t.Error("width mismatch should fail")
	}
	// Integers are allowed and render as decimal text.
	got, err = m.Marshal(message.Int(42), 0)
	if err != nil || string(got) != "42" {
		t.Fatalf("int-as-string: %q err %v", got, err)
	}
	v, err := m.Unmarshal([]byte("hi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.AsString(); s != "hi" {
		t.Fatalf("unmarshal = %q", s)
	}
}

func TestBytesMarshal(t *testing.T) {
	m := BytesMarshaller{}
	got, err := m.Marshal(message.Bytes([]byte{1, 2}), 16)
	if err != nil || !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := m.Marshal(message.Bytes([]byte{1}), 16); err == nil {
		t.Error("length mismatch should fail")
	}
	// Strings are accepted.
	got, err = m.Marshal(message.Str("ab"), 0)
	if err != nil || string(got) != "ab" {
		t.Fatalf("string-as-bytes: %v %v", got, err)
	}
}

func TestBooleanMarshal(t *testing.T) {
	m := BooleanMarshaller{}
	got, err := m.Marshal(message.Bool(true), 8)
	if err != nil || !bytes.Equal(got, []byte{1}) {
		t.Fatalf("got %v err %v", got, err)
	}
	v, err := m.Unmarshal([]byte{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := v.AsBool(); b {
		t.Fatal("0 should be false")
	}
	v, _ = m.Unmarshal([]byte{0, 4}, 16)
	if b, _ := v.AsBool(); !b {
		t.Fatal("nonzero should be true")
	}
}

func TestFQDNRoundtrip(t *testing.T) {
	m := FQDNMarshaller{}
	tests := []string{"printer._slp._udp.local", "a.b", "local", ""}
	for _, name := range tests {
		enc, err := m.Marshal(message.Str(name), 0)
		if err != nil {
			t.Fatalf("Marshal(%q): %v", name, err)
		}
		v, err := m.Unmarshal(enc, 0)
		if err != nil {
			t.Fatalf("Unmarshal(%q): %v", name, err)
		}
		if s, _ := v.AsString(); s != name {
			t.Errorf("roundtrip %q -> %q", name, s)
		}
	}
}

func TestFQDNWireFormat(t *testing.T) {
	m := FQDNMarshaller{}
	enc, err := m.Marshal(message.Str("ab.c"), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{2, 'a', 'b', 1, 'c', 0}
	if !bytes.Equal(enc, want) {
		t.Fatalf("enc = %v, want %v", enc, want)
	}
}

func TestFQDNErrors(t *testing.T) {
	m := FQDNMarshaller{}
	if _, err := m.Marshal(message.Str("a..b"), 0); err == nil {
		t.Error("empty label should fail")
	}
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := m.Marshal(message.Str(string(long)), 0); err == nil {
		t.Error("64+ byte label should fail")
	}
	if _, _, err := DecodeFQDN([]byte{5, 'a'}); err == nil {
		t.Error("truncated label should fail")
	}
	if _, _, err := DecodeFQDN([]byte{}); err == nil {
		t.Error("empty data should fail")
	}
	if _, _, err := DecodeFQDN([]byte{0xC0, 0x01}); err == nil {
		t.Error("compression pointer should be rejected")
	}
}

func TestDecodeFQDNConsumed(t *testing.T) {
	data := []byte{1, 'a', 0, 0xFF, 0xFF}
	name, n, err := DecodeFQDN(data)
	if err != nil {
		t.Fatal(err)
	}
	if name != "a" || n != 3 {
		t.Fatalf("got %q consumed %d", name, n)
	}
}

func TestURLExplodeImplode(t *testing.T) {
	m := URLMarshaller{}
	children, err := m.Explode(message.Str("http://10.0.0.2:5431/desc.xml"))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]message.Value{}
	for _, c := range children {
		byLabel[c.Label] = c.Value
	}
	if s, _ := byLabel["protocol"].AsString(); s != "http" {
		t.Errorf("protocol = %q", s)
	}
	if s, _ := byLabel["address"].AsString(); s != "10.0.0.2" {
		t.Errorf("address = %q", s)
	}
	if p, _ := byLabel["port"].AsInt(); p != 5431 {
		t.Errorf("port = %d", p)
	}
	if s, _ := byLabel["resource"].AsString(); s != "/desc.xml" {
		t.Errorf("resource = %q", s)
	}
	back, err := m.Implode(children)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := back.AsString(); s != "http://10.0.0.2:5431/desc.xml" {
		t.Errorf("implode = %q", s)
	}
}

func TestURLExplodeDefaults(t *testing.T) {
	m := URLMarshaller{}
	children, err := m.Explode(message.Str("http://example.com"))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]message.Value{}
	for _, c := range children {
		byLabel[c.Label] = c.Value
	}
	if p, _ := byLabel["port"].AsInt(); p != 80 {
		t.Errorf("default http port = %d, want 80", p)
	}
	if r, _ := byLabel["resource"].AsString(); r != "/" {
		t.Errorf("default resource = %q", r)
	}
}

func TestURLImplodeMissing(t *testing.T) {
	m := URLMarshaller{}
	if _, err := m.Implode(nil); err == nil {
		t.Fatal("missing children should fail")
	}
}

func TestIPv4Roundtrip(t *testing.T) {
	m := IPv4Marshaller{}
	enc, err := m.Marshal(message.Str("239.255.255.253"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, []byte{239, 255, 255, 253}) {
		t.Fatalf("enc = %v", enc)
	}
	v, err := m.Unmarshal(enc, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.AsString(); s != "239.255.255.253" {
		t.Fatalf("roundtrip = %q", s)
	}
	if _, err := m.Marshal(message.Str("1.2.3"), 32); err == nil {
		t.Error("3 octets should fail")
	}
	if _, err := m.Marshal(message.Str("1.2.3.999"), 32); err == nil {
		t.Error("octet overflow should fail")
	}
	if _, err := m.Unmarshal([]byte{1, 2}, 32); err == nil {
		t.Error("short data should fail")
	}
}

// Property: Integer marshal/unmarshal is identity for values fitting the
// width.
func TestQuickIntegerRoundtrip(t *testing.T) {
	m := IntegerMarshaller{}
	f := func(raw uint64, width uint8) bool {
		bits := int(width%64) + 1
		var v uint64
		if bits == 64 {
			v = raw
		} else {
			v = raw % (1 << uint(bits))
		}
		enc, err := m.Marshal(message.Int(int64(v)), bits)
		if err != nil {
			// int64 overflow for 64-bit values with the high bit set
			// is expected to fail (negative check).
			return int64(v) < 0
		}
		back, err := m.Unmarshal(enc, bits)
		if err != nil {
			return false
		}
		got, _ := back.AsInt()
		return uint64(got) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FQDN roundtrips for arbitrary label sets.
func TestQuickFQDNRoundtrip(t *testing.T) {
	m := FQDNMarshaller{}
	f := func(parts []uint8) bool {
		labels := make([]string, 0, len(parts))
		for i, p := range parts {
			n := int(p%20) + 1
			label := ""
			for j := 0; j < n; j++ {
				label += string(rune('a' + (i+j)%26))
			}
			labels = append(labels, label)
		}
		name := ""
		for i, l := range labels {
			if i > 0 {
				name += "."
			}
			name += l
		}
		enc, err := m.Marshal(message.Str(name), 0)
		if err != nil {
			return false
		}
		v, err := m.Unmarshal(enc, 0)
		if err != nil {
			return false
		}
		s, _ := v.AsString()
		return s == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

type fakeCtx struct {
	lengths map[string]int
	total   int
	values  map[string]message.Value
	counts  map[string]int
}

func (f fakeCtx) EncodedLength(l string) (int, error) {
	n, ok := f.lengths[l]
	if !ok {
		return 0, fmt.Errorf("no field %q", l)
	}
	return n, nil
}
func (f fakeCtx) TotalLength() (int, error) { return f.total, nil }
func (f fakeCtx) FieldValue(l string) (message.Value, error) {
	v, ok := f.values[l]
	if !ok {
		return message.Value{}, fmt.Errorf("no field %q", l)
	}
	return v, nil
}
func (f fakeCtx) Count(l string) (int, error) {
	n, ok := f.counts[l]
	if !ok {
		return 0, fmt.Errorf("no group %q", l)
	}
	return n, nil
}

func TestBuiltinFuncs(t *testing.T) {
	reg := NewFuncRegistry()
	ctx := fakeCtx{
		lengths: map[string]int{"URLEntry": 17},
		total:   64,
		values:  map[string]message.Value{"XID": message.Int(9)},
		counts:  map[string]int{"Answers": 3},
	}

	fn, err := reg.Lookup("f-length")
	if err != nil {
		t.Fatal(err)
	}
	v, err := fn(ctx, []string{"URLEntry"})
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 17 {
		t.Errorf("f-length = %d", i)
	}
	if _, err := fn(ctx, nil); err == nil {
		t.Error("f-length with no args should fail")
	}

	fn, _ = reg.Lookup("f-totallength")
	v, err = fn(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 64 {
		t.Errorf("f-totallength = %d", i)
	}

	fn, _ = reg.Lookup("f-count")
	v, err = fn(ctx, []string{"Answers"})
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 3 {
		t.Errorf("f-count = %d", i)
	}

	fn, _ = reg.Lookup("f-value")
	v, err = fn(ctx, []string{"XID"})
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 9 {
		t.Errorf("f-value = %d", i)
	}

	if _, err := reg.Lookup("f-nope"); err == nil {
		t.Error("unknown func should fail")
	}
	if err := reg.Register("f-length", fLength); err == nil {
		t.Error("duplicate func should fail")
	}
}
