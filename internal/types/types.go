// Package types implements the pluggable marshaller/unmarshaller
// mechanism of the Starlink MDL (paper §IV-A). Each MDL type name
// (Integer, String, FQDN, URL, ...) is backed by a Marshaller that
// converts between wire bytes and abstract message values. Registering
// new marshallers extends the language dynamically, with no compiler
// changes — the paper's example is adding an FQDN type by plugging in a
// marshaller that maps DNS-encoded names to strings.
package types

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"starlink/internal/message"
)

// Marshaller converts field content between wire representation and
// abstract message values.
type Marshaller interface {
	// Name is the MDL type name this marshaller serves.
	Name() string
	// Kind is the abstract value kind produced by Unmarshal.
	Kind() message.Kind
	// Marshal encodes v. bits is the fixed field width in bits, or 0
	// for variable-length fields (the encoding then determines length).
	Marshal(v message.Value, bits int) ([]byte, error)
	// Unmarshal decodes data (already extracted from the wire; for
	// fixed-width fields exactly ceil(bits/8) bytes with the value in
	// the low bits when bits%8 != 0).
	Unmarshal(data []byte, bits int) (message.Value, error)
}

// StructuredMarshaller is implemented by types that decode into
// structured fields (paper §III-A's URL example: protocol, address,
// port, resource children).
type StructuredMarshaller interface {
	Marshaller
	// Explode turns a decoded value into child fields.
	Explode(v message.Value) ([]*message.Field, error)
	// Implode rebuilds the primitive value from child fields.
	Implode(children []*message.Field) (message.Value, error)
}

// Registry maps MDL type names to marshallers. The zero value is empty;
// NewRegistry returns one preloaded with the built-in types.
type Registry struct {
	byName map[string]Marshaller
}

// NewRegistry returns a registry with all built-in types registered:
// Integer, String, Bytes, Boolean, FQDN, URL and IPv4.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]Marshaller)}
	for _, m := range []Marshaller{
		IntegerMarshaller{},
		StringMarshaller{},
		BytesMarshaller{},
		BooleanMarshaller{},
		FQDNMarshaller{},
		URLMarshaller{},
		IPv4Marshaller{},
	} {
		r.MustRegister(m)
	}
	return r
}

// Register adds a marshaller; it fails if the name is already taken.
func (r *Registry) Register(m Marshaller) error {
	if _, exists := r.byName[m.Name()]; exists {
		return fmt.Errorf("types: %q already registered", m.Name())
	}
	r.byName[m.Name()] = m
	return nil
}

// MustRegister is Register, panicking on error; for package setup only.
func (r *Registry) MustRegister(m Marshaller) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Lookup returns the marshaller for an MDL type name.
func (r *Registry) Lookup(name string) (Marshaller, error) {
	m, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("types: unknown type %q", name)
	}
	return m, nil
}

// Names returns the registered type names (unordered).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	return out
}

// IntegerMarshaller handles unsigned big-endian integers up to 64 bits.
type IntegerMarshaller struct{}

// Name implements Marshaller.
func (IntegerMarshaller) Name() string { return "Integer" }

// Kind implements Marshaller.
func (IntegerMarshaller) Kind() message.Kind { return message.KindInt }

// Marshal implements Marshaller.
func (IntegerMarshaller) Marshal(v message.Value, bits int) ([]byte, error) {
	i, ok := v.AsInt()
	if !ok {
		return nil, fmt.Errorf("types: Integer marshal: value is %v, not int", v.Kind())
	}
	if bits <= 0 || bits > 64 {
		return nil, fmt.Errorf("types: Integer requires fixed width 1..64 bits, got %d", bits)
	}
	if i < 0 {
		return nil, fmt.Errorf("types: Integer marshal: negative value %d", i)
	}
	if bits < 64 && uint64(i) >= 1<<uint(bits) {
		return nil, fmt.Errorf("types: value %d does not fit in %d bits", i, bits)
	}
	nbytes := (bits + 7) / 8
	out := make([]byte, nbytes)
	u := uint64(i)
	for b := nbytes - 1; b >= 0; b-- {
		out[b] = byte(u)
		u >>= 8
	}
	return out, nil
}

// Unmarshal implements Marshaller.
func (IntegerMarshaller) Unmarshal(data []byte, bits int) (message.Value, error) {
	if bits <= 0 || bits > 64 {
		return message.Value{}, fmt.Errorf("types: Integer requires fixed width 1..64 bits, got %d", bits)
	}
	var u uint64
	for _, b := range data {
		u = u<<8 | uint64(b)
	}
	return message.Int(int64(u)), nil
}

// StringMarshaller handles UTF-8 text.
type StringMarshaller struct{}

// Name implements Marshaller.
func (StringMarshaller) Name() string { return "String" }

// Kind implements Marshaller.
func (StringMarshaller) Kind() message.Kind { return message.KindString }

// Marshal implements Marshaller.
func (StringMarshaller) Marshal(v message.Value, bits int) ([]byte, error) {
	s, ok := v.AsString()
	if !ok {
		// Allow marshalling integer values as their decimal text; text
		// protocols carry numbers as strings (e.g. an MX header).
		if i, iok := v.AsInt(); iok {
			s = strconv.FormatInt(i, 10)
		} else {
			return nil, fmt.Errorf("types: String marshal: value is %v", v.Kind())
		}
	}
	if bits > 0 && len(s)*8 != bits {
		return nil, fmt.Errorf("types: string %q is %d bits, field is %d", s, len(s)*8, bits)
	}
	return []byte(s), nil
}

// Unmarshal implements Marshaller.
func (StringMarshaller) Unmarshal(data []byte, bits int) (message.Value, error) {
	return message.Str(string(data)), nil
}

// BytesMarshaller handles opaque byte strings.
type BytesMarshaller struct{}

// Name implements Marshaller.
func (BytesMarshaller) Name() string { return "Bytes" }

// Kind implements Marshaller.
func (BytesMarshaller) Kind() message.Kind { return message.KindBytes }

// Marshal implements Marshaller.
func (BytesMarshaller) Marshal(v message.Value, bits int) ([]byte, error) {
	b, ok := v.AsBytes()
	if !ok {
		if s, sok := v.AsString(); sok {
			b = []byte(s)
		} else {
			return nil, fmt.Errorf("types: Bytes marshal: value is %v", v.Kind())
		}
	}
	if bits > 0 && len(b)*8 != bits {
		return nil, fmt.Errorf("types: bytes length %d bits, field is %d", len(b)*8, bits)
	}
	return b, nil
}

// Unmarshal implements Marshaller.
func (BytesMarshaller) Unmarshal(data []byte, bits int) (message.Value, error) {
	return message.Bytes(data), nil
}

// BooleanMarshaller handles single-bit or single-byte booleans.
type BooleanMarshaller struct{}

// Name implements Marshaller.
func (BooleanMarshaller) Name() string { return "Boolean" }

// Kind implements Marshaller.
func (BooleanMarshaller) Kind() message.Kind { return message.KindBool }

// Marshal implements Marshaller.
func (BooleanMarshaller) Marshal(v message.Value, bits int) ([]byte, error) {
	b, ok := v.AsBool()
	if !ok {
		return nil, fmt.Errorf("types: Boolean marshal: value is %v", v.Kind())
	}
	var out byte
	if b {
		out = 1
	}
	return []byte{out}, nil
}

// Unmarshal implements Marshaller.
func (BooleanMarshaller) Unmarshal(data []byte, bits int) (message.Value, error) {
	for _, b := range data {
		if b != 0 {
			return message.Bool(true), nil
		}
	}
	return message.Bool(false), nil
}

// FQDNMarshaller handles DNS name encoding: length-prefixed labels
// terminated by a zero byte ("3www7example3com0" style). This is the
// paper's example of extending the MDL type system with a plug-in
// marshaller; it is required by the mDNS (Bonjour) MDL.
type FQDNMarshaller struct{}

// Name implements Marshaller.
func (FQDNMarshaller) Name() string { return "FQDN" }

// Kind implements Marshaller.
func (FQDNMarshaller) Kind() message.Kind { return message.KindString }

// Marshal implements Marshaller.
func (FQDNMarshaller) Marshal(v message.Value, bits int) ([]byte, error) {
	s, ok := v.AsString()
	if !ok {
		return nil, fmt.Errorf("types: FQDN marshal: value is %v", v.Kind())
	}
	var out []byte
	if s != "" && s != "." {
		for _, label := range strings.Split(strings.TrimSuffix(s, "."), ".") {
			if len(label) == 0 {
				return nil, fmt.Errorf("types: FQDN %q has empty label", s)
			}
			if len(label) > 63 {
				return nil, fmt.Errorf("types: FQDN label %q exceeds 63 bytes", label)
			}
			out = append(out, byte(len(label)))
			out = append(out, label...)
		}
	}
	out = append(out, 0)
	return out, nil
}

// Unmarshal implements Marshaller.
func (FQDNMarshaller) Unmarshal(data []byte, bits int) (message.Value, error) {
	s, _, err := DecodeFQDN(data)
	if err != nil {
		return message.Value{}, err
	}
	return message.Str(s), nil
}

// DecodeFQDN decodes a DNS-encoded name from the front of data,
// returning the dotted name and the number of bytes consumed. It is
// exported because variable-length FQDN fields require the parser to
// learn the consumed length.
func DecodeFQDN(data []byte) (name string, n int, err error) {
	var labels []string
	i := 0
	for {
		if i >= len(data) {
			return "", 0, fmt.Errorf("types: truncated FQDN")
		}
		l := int(data[i])
		i++
		if l == 0 {
			break
		}
		if l > 63 {
			return "", 0, fmt.Errorf("types: FQDN label length %d (compression unsupported)", l)
		}
		if i+l > len(data) {
			return "", 0, fmt.Errorf("types: truncated FQDN label")
		}
		labels = append(labels, string(data[i:i+l]))
		i += l
	}
	return strings.Join(labels, "."), i, nil
}

// URLMarshaller handles URLs carried as text on the wire, decoding them
// into the structured field of §III-A: protocol, address, port and
// resource children.
type URLMarshaller struct{}

// Name implements Marshaller.
func (URLMarshaller) Name() string { return "URL" }

// Kind implements Marshaller.
func (URLMarshaller) Kind() message.Kind { return message.KindString }

// Marshal implements Marshaller.
func (URLMarshaller) Marshal(v message.Value, bits int) ([]byte, error) {
	s, ok := v.AsString()
	if !ok {
		return nil, fmt.Errorf("types: URL marshal: value is %v", v.Kind())
	}
	return []byte(s), nil
}

// Unmarshal implements Marshaller.
func (URLMarshaller) Unmarshal(data []byte, bits int) (message.Value, error) {
	return message.Str(string(data)), nil
}

// Explode implements StructuredMarshaller.
func (URLMarshaller) Explode(v message.Value) ([]*message.Field, error) {
	s, ok := v.AsString()
	if !ok {
		return nil, fmt.Errorf("types: URL explode: value is %v", v.Kind())
	}
	u, err := url.Parse(strings.TrimSpace(s))
	if err != nil {
		return nil, fmt.Errorf("types: URL explode %q: %w", s, err)
	}
	port := int64(0)
	if p := u.Port(); p != "" {
		pv, err := strconv.ParseInt(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("types: URL port %q: %w", p, err)
		}
		port = pv
	} else if u.Scheme == "http" {
		port = 80
	}
	resource := u.Path
	if resource == "" {
		resource = "/"
	}
	return []*message.Field{
		{Label: "protocol", Type: "String", Value: message.Str(u.Scheme)},
		{Label: "address", Type: "String", Value: message.Str(u.Hostname())},
		{Label: "port", Type: "Integer", Value: message.Int(port)},
		{Label: "resource", Type: "String", Value: message.Str(resource)},
	}, nil
}

// Implode implements StructuredMarshaller.
func (URLMarshaller) Implode(children []*message.Field) (message.Value, error) {
	get := func(label string) (message.Value, bool) {
		for _, c := range children {
			if c.Label == label {
				return c.Value, true
			}
		}
		return message.Value{}, false
	}
	proto, ok := get("protocol")
	if !ok {
		return message.Value{}, fmt.Errorf("types: URL implode: missing protocol")
	}
	addr, ok := get("address")
	if !ok {
		return message.Value{}, fmt.Errorf("types: URL implode: missing address")
	}
	var hostport string
	host, _ := addr.AsString()
	if pv, ok := get("port"); ok {
		if p, pok := pv.AsInt(); pok && p > 0 {
			hostport = fmt.Sprintf("%s:%d", host, p)
		}
	}
	if hostport == "" {
		hostport = host
	}
	resource := "/"
	if rv, ok := get("resource"); ok {
		if r, rok := rv.AsString(); rok && r != "" {
			resource = r
		}
	}
	scheme, _ := proto.AsString()
	return message.Str(fmt.Sprintf("%s://%s%s", scheme, hostport, resource)), nil
}

// IPv4Marshaller handles 32-bit IPv4 addresses in dotted-quad text form.
type IPv4Marshaller struct{}

// Name implements Marshaller.
func (IPv4Marshaller) Name() string { return "IPv4" }

// Kind implements Marshaller.
func (IPv4Marshaller) Kind() message.Kind { return message.KindString }

// Marshal implements Marshaller.
func (IPv4Marshaller) Marshal(v message.Value, bits int) ([]byte, error) {
	s, ok := v.AsString()
	if !ok {
		return nil, fmt.Errorf("types: IPv4 marshal: value is %v", v.Kind())
	}
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return nil, fmt.Errorf("types: invalid IPv4 %q", s)
	}
	out := make([]byte, 4)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return nil, fmt.Errorf("types: invalid IPv4 octet %q", p)
		}
		out[i] = byte(n)
	}
	return out, nil
}

// Unmarshal implements Marshaller.
func (IPv4Marshaller) Unmarshal(data []byte, bits int) (message.Value, error) {
	if len(data) != 4 {
		return message.Value{}, fmt.Errorf("types: IPv4 needs 4 bytes, got %d", len(data))
	}
	return message.Str(fmt.Sprintf("%d.%d.%d.%d", data[0], data[1], data[2], data[3])), nil
}

// Compile-time interface compliance checks.
var (
	_ Marshaller           = IntegerMarshaller{}
	_ Marshaller           = StringMarshaller{}
	_ Marshaller           = BytesMarshaller{}
	_ Marshaller           = BooleanMarshaller{}
	_ Marshaller           = FQDNMarshaller{}
	_ StructuredMarshaller = URLMarshaller{}
	_ Marshaller           = IPv4Marshaller{}
)
