package types

import (
	"fmt"

	"starlink/internal/message"
)

// FuncContext provides a field function with access to the message being
// composed: encoded sibling field lengths and the total message length.
// Implemented by the composer.
type FuncContext interface {
	// EncodedLength returns the wire length in bytes of the named
	// field's encoding within the current message.
	EncodedLength(fieldLabel string) (int, error)
	// TotalLength returns the total wire length in bytes of the
	// message once fully composed.
	TotalLength() (int, error)
	// FieldValue returns the abstract value of the named field.
	FieldValue(fieldLabel string) (message.Value, error)
	// Count returns the number of elements of the named repeated group.
	Count(groupLabel string) (int, error)
}

// Func computes the value of a function field during composition
// (paper §IV-A: "the named f-method is executed by the marshaller when
// writing the type", e.g. Integer[f-length(URLEntry)]).
type Func func(ctx FuncContext, args []string) (message.Value, error)

// FuncRegistry maps f-method names to implementations.
type FuncRegistry struct {
	byName map[string]Func
}

// NewFuncRegistry returns a registry preloaded with the built-in
// functions: f-length, f-totallength, f-count and f-value.
func NewFuncRegistry() *FuncRegistry {
	r := &FuncRegistry{byName: make(map[string]Func)}
	r.MustRegister("f-length", fLength)
	r.MustRegister("f-totallength", fTotalLength)
	r.MustRegister("f-count", fCount)
	r.MustRegister("f-value", fValue)
	return r
}

// Register adds a function; it fails if the name is taken.
func (r *FuncRegistry) Register(name string, fn Func) error {
	if _, exists := r.byName[name]; exists {
		return fmt.Errorf("types: function %q already registered", name)
	}
	r.byName[name] = fn
	return nil
}

// MustRegister is Register, panicking on error; for package setup only.
func (r *FuncRegistry) MustRegister(name string, fn Func) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// Lookup returns the function with the given name.
func (r *FuncRegistry) Lookup(name string) (Func, error) {
	fn, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("types: unknown function %q", name)
	}
	return fn, nil
}

// fLength returns the encoded byte length of the referenced field
// (SLP's URLLength = f-length(URLEntry)).
func fLength(ctx FuncContext, args []string) (message.Value, error) {
	if len(args) != 1 {
		return message.Value{}, fmt.Errorf("types: f-length wants 1 arg, got %d", len(args))
	}
	n, err := ctx.EncodedLength(args[0])
	if err != nil {
		return message.Value{}, err
	}
	return message.Int(int64(n)), nil
}

// fTotalLength returns the total message length in bytes (SLP's
// MessageLength header field).
func fTotalLength(ctx FuncContext, args []string) (message.Value, error) {
	if len(args) != 0 {
		return message.Value{}, fmt.Errorf("types: f-totallength wants 0 args, got %d", len(args))
	}
	n, err := ctx.TotalLength()
	if err != nil {
		return message.Value{}, err
	}
	return message.Int(int64(n)), nil
}

// fCount returns the number of elements in a repeated group (DNS
// ANCOUNT = f-count(Answers)).
func fCount(ctx FuncContext, args []string) (message.Value, error) {
	if len(args) != 1 {
		return message.Value{}, fmt.Errorf("types: f-count wants 1 arg, got %d", len(args))
	}
	n, err := ctx.Count(args[0])
	if err != nil {
		return message.Value{}, err
	}
	return message.Int(int64(n)), nil
}

// fValue copies another field's abstract value (used to mirror a header
// field into a body position, or for fixed echoes).
func fValue(ctx FuncContext, args []string) (message.Value, error) {
	if len(args) != 1 {
		return message.Value{}, fmt.Errorf("types: f-value wants 1 arg, got %d", len(args))
	}
	return ctx.FieldValue(args[0])
}
