package realnet

import (
	"sync"
	"testing"
	"time"

	"starlink/internal/netapi"
)

func TestUnicastUDPLoopback(t *testing.T) {
	rt := New()
	a, err := rt.NewNode("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := rt.NewNode("10.0.0.2")

	var got string
	bs, err := b.OpenUDP(0, func(p netapi.Packet) { got = string(p.Data) })
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	as, err := a.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()
	if err := as.Send(bs.LocalAddr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntil(func() bool { return got == "hello" }, 3*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastRegistryFanout(t *testing.T) {
	rt := New()
	group := netapi.Addr{IP: "239.255.255.253", Port: 427}
	recvA, recvB := false, false

	a, _ := rt.NewNode("svc-a")
	b, _ := rt.NewNode("svc-b")
	c, _ := rt.NewNode("client")

	sa, err := a.JoinGroup(group, func(netapi.Packet) { recvA = true })
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := b.JoinGroup(group, func(netapi.Packet) { recvB = true })
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	cs, _ := c.OpenUDP(0, func(netapi.Packet) {})
	defer cs.Close()
	if err := cs.Send(group, []byte("query")); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntil(func() bool { return recvA && recvB }, 3*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestGroupReplyToSource(t *testing.T) {
	rt := New()
	group := netapi.Addr{IP: "224.0.0.251", Port: 5353}
	svc, _ := rt.NewNode("svc")
	cli, _ := rt.NewNode("cli")

	var svcSock netapi.UDPSocket
	svcSock, err := svc.JoinGroup(group, func(p netapi.Packet) {
		if err := svcSock.Send(p.From, []byte("pong")); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svcSock.Close()

	var got string
	cs, _ := cli.OpenUDP(0, func(p netapi.Packet) { got = string(p.Data) })
	defer cs.Close()
	if err := cs.Send(group, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntil(func() bool { return got == "pong" }, 3*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRoundtrip(t *testing.T) {
	rt := New()
	srv, _ := rt.NewNode("srv")
	cli, _ := rt.NewNode("cli")

	l, err := srv.ListenStream(0, nil, func(c netapi.Conn, data []byte) {
		if data != nil {
			if err := c.Send(append([]byte("echo:"), data...)); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Find the listener's port by dialing its Close-protected API is
	// not exposed; use a fixed port instead.
	l2, err := srv.ListenStream(39571, nil, func(c netapi.Conn, data []byte) {
		if data != nil {
			if err := c.Send(append([]byte("echo:"), data...)); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()

	var got string
	conn, err := cli.DialStream(netapi.Addr{IP: "127.0.0.1", Port: 39571}, func(c netapi.Conn, data []byte) {
		if data != nil {
			got += string(data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntil(func() bool { return got == "echo:ping" }, 3*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTimerFireAndCancel(t *testing.T) {
	rt := New()
	n, _ := rt.NewNode("x")
	fired := false
	n.After(20*time.Millisecond, func() { fired = true })
	if err := rt.RunUntil(func() bool { return fired }, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	cancelled := false
	id := n.After(50*time.Millisecond, func() { cancelled = true })
	n.Cancel(id)
	rt.Run(80 * time.Millisecond)
	if cancelled {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunUntilTimeout(t *testing.T) {
	rt := New()
	if err := rt.RunUntil(func() bool { return false }, 30*time.Millisecond); err == nil {
		t.Fatal("want timeout")
	}
}

func TestGatedUDPReadLoopPausesAndResumes(t *testing.T) {
	rt := New()
	a, err := rt.NewNode("sender")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := rt.NewNode("receiver")

	gate := netapi.NewFlowGate()
	gated := netapi.Gated(netapi.Node(b), gate)

	var mu sync.Mutex
	var got []string
	bs, err := gated.OpenUDP(0, func(p netapi.Packet) {
		mu.Lock()
		got = append(got, string(p.Data))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	as, err := a.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()

	// Prove the gated path delivers at all before pausing.
	if err := as.Send(bs.LocalAddr(), []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	}, 3*time.Second); err != nil {
		t.Fatal(err)
	}

	gate.Pause()
	for i := 0; i < 5; i++ {
		if err := as.Send(bs.LocalAddr(), []byte{'p', byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	paused := len(got)
	mu.Unlock()
	if paused != 1 {
		t.Fatalf("handler ran %d times while gate blocked, want 1 (the warmup)", paused)
	}

	gate.Resume()
	if err := rt.RunUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 6
	}, 3*time.Second); err != nil {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("after resume got %d deliveries, want 6: %v (%v)", len(got), got, err)
	}
}

func TestGatedStreamReadLoopPausesAndResumes(t *testing.T) {
	rt := New()
	srv, err := rt.NewNode("server")
	if err != nil {
		t.Fatal(err)
	}
	cli, _ := rt.NewNode("client")

	gate := netapi.NewFlowGate()
	gated := netapi.Gated(netapi.Node(srv), gate)

	var mu sync.Mutex
	var total int
	l, err := gated.ListenStream(0, nil, func(c netapi.Conn, chunk []byte) {
		mu.Lock()
		total += len(chunk)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	addr := l.(interface{ Addr() netapi.Addr }).Addr()

	conn, err := cli.DialStream(addr, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.Send([]byte("warm")); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return total == 4
	}, 3*time.Second); err != nil {
		t.Fatal(err)
	}

	gate.Pause()
	// Give the read loop a beat to park on the gate, then send while
	// blocked: bytes must sit in the kernel buffer, not reach recv.
	time.Sleep(20 * time.Millisecond)
	if err := conn.Send([]byte("blocked-bytes")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	pausedTotal := total
	mu.Unlock()
	if pausedTotal != 4 {
		t.Fatalf("recv saw %d bytes while gate blocked, want 4 (the warmup)", pausedTotal)
	}

	gate.Resume()
	if err := rt.RunUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return total == 4+len("blocked-bytes")
	}, 3*time.Second); err != nil {
		t.Fatal(err)
	}
}
