//go:build !linux || starlink.nobatch

package realnet

import "net/netip"

// batchIO marks this build as portable-only: no batched syscall paths
// exist, every read loop and fan-out runs per-datagram. This is the
// non-Linux build and the `starlink.nobatch` CI matrix leg.
const batchIO = false

// batchState is empty on portable builds; the Linux build hangs the
// sendmmsg scratch off it.
type batchState struct{}

// readLoopBatch is never selected when batchIO is false; it delegates
// to the portable loop so both builds compile identically.
func (s *udpSocket) readLoopBatch() { s.readLoopSerial() }

// fanoutBatch delegates to the serial fan-out on portable builds.
func (s *udpSocket) fanoutBatch(data []byte, dsts []netip.AddrPort) error {
	return s.fanoutSerial(data, dsts)
}
