//go:build linux && !starlink.nobatch

package realnet

import (
	"fmt"
	"net/netip"
	"runtime"
	"syscall"
	"unsafe"

	"starlink/internal/netapi"
)

// batchIO marks this build as carrying the batched syscall paths;
// SetBatchIO can still turn them off at runtime (equivalence tests).
const batchIO = true

// recvBatch is the slab size of the batched read loop: how many
// datagrams one recvmmsg may return. 32 × 64 KiB bounds a socket's
// pinned pool memory at 2 MiB while amortising the syscall (and the
// per-batch lease accounting) 32-fold under saturation.
const recvBatch = 32

// mmsghdr mirrors the kernel's struct mmsghdr. No explicit padding:
// Go's implicit trailing padding of the embedded Msghdr matches the
// kernel layout on both 64-bit (56+4 → 64) and 32-bit (28+4 → 32)
// ABIs.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
}

// sysSENDMMSG is sendmmsg(2)'s syscall number. The stdlib syscall
// tables on linux/amd64 and linux/386 predate the syscall, so the
// numbers are spelled here for every arch; 0 (unknown arch) makes the
// multicast fan-out fall back to serial sends while recvmmsg — whose
// number the stdlib does carry everywhere — keeps batching.
var sysSENDMMSG = func() uintptr {
	switch runtime.GOARCH {
	case "amd64":
		return 307
	case "386":
		return 345
	case "arm":
		return 374
	case "arm64", "riscv64", "loong64":
		return 269
	case "ppc64", "ppc64le":
		return 349
	case "s390x":
		return 358
	case "mips", "mipsle":
		return 4343
	case "mips64", "mips64le":
		return 5302
	}
	return 0
}()

// putSockaddr fills an IPv4 sockaddr. Port is raw memory in network
// byte order (the stdlib idiom), not a host-order uint16.
func putSockaddr(sa *syscall.RawSockaddrInet4, ip netip.Addr, port uint16) {
	sa.Family = syscall.AF_INET
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0] = byte(port >> 8)
	p[1] = byte(port)
	sa.Addr = ip.Unmap().As4()
}

// sockaddrAddr reads the source address of a received datagram back
// out of its sockaddr.
func sockaddrAddr(sa *syscall.RawSockaddrInet4) netip.Addr {
	return netip.AddrFrom4(sa.Addr)
}

// sockaddrPort reads the (network byte order) port.
func sockaddrPort(sa *syscall.RawSockaddrInet4) int {
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	return int(p[0])<<8 | int(p[1])
}

// ---------------------------------------------------------------------
// Batched receive: one recvmmsg fills a leased slab of pool buffers.
// ---------------------------------------------------------------------

// recvBatcher is the batched read loop's reusable syscall state: a
// leased buffer slab plus the parallel mmsghdr/iovec/sockaddr arrays
// one recvmmsg call scatters into. The raw-conn callback is built once
// at construction so the hot loop creates no closures.
type recvBatcher struct {
	s     *udpSocket
	bufs  netapi.Batch
	hdrs  [recvBatch]mmsghdr
	iovs  [recvBatch]syscall.Iovec
	names [recvBatch]syscall.RawSockaddrInet4
	n     int
	errno syscall.Errno
	fn    func(uintptr) bool
}

func newRecvBatcher(s *udpSocket) *recvBatcher {
	rb := &recvBatcher{s: s, bufs: netapi.LeaseBatch(recvBatch)}
	rb.fn = func(fd uintptr) bool {
		for {
			r, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&rb.hdrs[0])), recvBatch, 0, 0, 0)
			switch errno {
			case 0:
				rb.n = int(r)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park in the netpoller until readable
			default:
				rb.errno = errno
				return true
			}
		}
	}
	return rb
}

// recv performs one batched receive, parking in the runtime netpoller
// while the socket has nothing to read. The headers are rebuilt every
// call: Refill may have swapped buffers into the slab, and the kernel
// overwrites Namelen/Flags/msgLen on each return.
func (rb *recvBatcher) recv() error {
	for i := range rb.hdrs {
		backing := rb.bufs[i].Backing()
		rb.iovs[i].Base = &backing[0]
		rb.iovs[i].SetLen(len(backing))
		h := &rb.hdrs[i]
		h.hdr.Name = (*byte)(unsafe.Pointer(&rb.names[i]))
		h.hdr.Namelen = uint32(unsafe.Sizeof(rb.names[i]))
		h.hdr.Iov = &rb.iovs[i]
		h.hdr.Iovlen = 1
		h.hdr.Flags = 0
		h.msgLen = 0
	}
	rb.n = 0
	rb.errno = 0
	if err := rb.s.rc.Read(rb.fn); err != nil {
		return err
	}
	if rb.errno != 0 {
		return rb.errno
	}
	return nil
}

// readLoopBatch is the Linux fast-path read loop: it leases a slab of
// pool buffers once, fills up to recvBatch datagrams per syscall, and
// dispatches them in arrival order under the socket's domain with the
// same per-delivery lease protocol as the portable loop — each packet
// gets its own frame-local lease flag, and only the slots whose leases
// were taken are re-leased (Refill) before the next batch.
//
// The flow gate is checked per batch: a blocked gate parks the loop
// with the slab released (a paused reader must not pin 2 MiB of pool),
// and a batch already read when the gate closes is held — one bounded
// in-flight batch, the batch-shaped extension of the portable loop's
// one-datagram hold — and delivered in order on reopen.
//
//starlink:hotpath
func (s *udpSocket) readLoopBatch() {
	rb := newRecvBatcher(s)
	for {
		if g := s.gate; g != nil && g.Blocked() {
			rb.bufs.Release()
			g.Wait()
			if s.closed.Load() {
				return
			}
			rb.bufs.Refill()
		}
		if err := rb.recv(); err != nil {
			rb.bufs.Release()
			return // socket closed
		}
		if g := s.gate; g != nil && g.Blocked() {
			// The batch was already off the wire when the gate closed:
			// hold it (one bounded slab) and deliver in order on reopen.
			g.Wait()
		}
		if s.closed.Load() {
			continue
		}
		n := rb.n
		if n == 0 {
			continue
		}
		netapi.CountRecvBatch(n)
		s.dom.mu.Lock()
		for i := 0; i < n; i++ {
			if s.closed.Load() {
				break
			}
			buf := rb.bufs[i]
			buf.SetFilled(int(rb.hdrs[i].msgLen))
			// Per-delivery lease signal in this loop's own frame, exactly
			// as on the portable path (see netapi.Buffer): one flag per
			// datagram, never shared across the batch.
			retained := false
			pkt := netapi.Packet{
				From:  netapi.Addr{IP: s.srcIP(sockaddrAddr(&rb.names[i])), Port: sockaddrPort(&rb.names[i])},
				To:    s.addr,
				Data:  buf.Bytes(),
				Buf:   buf,
				Batch: n,
			}
			pkt.BindLeaseFlag(&retained)
			s.handler(pkt)
			if retained {
				rb.bufs[i] = nil // transferred: the handler releases it
			}
		}
		s.dom.mu.Unlock()
		s.rt.wake()
		rb.bufs.Refill()
	}
}

// ---------------------------------------------------------------------
// Batched send: one sendmmsg fans a datagram out to all group members.
// ---------------------------------------------------------------------

// sendBatcher is the multicast fan-out's reusable syscall state,
// guarded by the socket's sendMu. The header/iovec/sockaddr arrays are
// rebuilt per fan-out (slice growth may move them), but their backing
// storage is reused across sends, so a steady-state fan-out allocates
// nothing.
type sendBatcher struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet4
	next  int
	errno syscall.Errno
	fn    func(uintptr) bool
}

func (sb *sendBatcher) init() {
	sb.fn = func(fd uintptr) bool {
		for sb.next < len(sb.hdrs) {
			r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&sb.hdrs[sb.next])),
				uintptr(len(sb.hdrs)-sb.next), 0, 0, 0)
			switch errno {
			case 0:
				netapi.CountSendBatch(int(r))
				sb.next += int(r)
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park until writable, resume from next
			default:
				sb.errno = errno
				return true
			}
		}
		return true
	}
}

// batchState is the per-socket scratch the Linux batch paths hang off
// udpSocket; the portable build replaces it with an empty struct.
type batchState struct {
	send sendBatcher
}

// fanoutBatch transmits data to every destination with as few
// sendmmsg calls as the socket buffer allows (one, when not full).
// Caller holds s.sendMu. Unknown-arch builds (sysSENDMMSG == 0) fall
// back to serial sends.
func (s *udpSocket) fanoutBatch(data []byte, dsts []netip.AddrPort) error {
	if sysSENDMMSG == 0 {
		return s.fanoutSerial(data, dsts)
	}
	sb := &s.batch.send
	if sb.fn == nil {
		sb.init()
	}
	n := len(dsts)
	if cap(sb.hdrs) < n {
		sb.hdrs = make([]mmsghdr, n)
		sb.iovs = make([]syscall.Iovec, n)
		sb.names = make([]syscall.RawSockaddrInet4, n)
	}
	sb.hdrs = sb.hdrs[:n]
	sb.iovs = sb.iovs[:n]
	sb.names = sb.names[:n]
	for i, dst := range dsts {
		putSockaddr(&sb.names[i], dst.Addr(), dst.Port())
		iov := &sb.iovs[i]
		if len(data) > 0 {
			iov.Base = &data[0]
		} else {
			iov.Base = nil
		}
		iov.SetLen(len(data))
		h := &sb.hdrs[i]
		h.hdr = syscall.Msghdr{}
		h.hdr.Name = (*byte)(unsafe.Pointer(&sb.names[i]))
		h.hdr.Namelen = uint32(unsafe.Sizeof(sb.names[i]))
		h.hdr.Iov = iov
		h.hdr.Iovlen = 1
	}
	sb.next = 0
	sb.errno = 0
	err := s.rc.Write(sb.fn)
	runtime.KeepAlive(data)
	if err != nil {
		return fmt.Errorf("realnet: multicast sendmmsg: %w", err)
	}
	if sb.errno != 0 {
		return fmt.Errorf("realnet: multicast sendmmsg: %w", sb.errno)
	}
	return nil
}
