package realnet_test

import (
	"sync"
	"testing"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/realnet"
)

// withBatchIO runs fn with the batched fast paths forced on or off,
// restoring the previous setting afterwards. Sockets sample the toggle
// when their read loop starts, so fn must create its own sockets.
func withBatchIO(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := realnet.SetBatchIO(on)
	defer realnet.SetBatchIO(prev)
	fn()
}

// deliveredPacket is the part of a delivery the batched and portable
// paths must agree on byte-for-byte.
type deliveredPacket struct {
	from    netapi.Addr
	to      netapi.Addr
	payload string
}

// runDeliverySequence blasts n ordered unicast datagrams plus one
// multicast fan-out through a fresh runtime and returns everything the
// receivers saw, in order. Used under both batch settings to pin
// path equivalence.
func runDeliverySequence(t *testing.T, n int) (unicast []deliveredPacket, members [2][]deliveredPacket) {
	t.Helper()
	baseline := netapi.LeasedBuffers()
	rt := realnet.New()

	recvNode, _ := rt.NewNode("10.0.0.5")
	done := make(chan struct{})
	sock, err := recvNode.OpenUDP(0, func(pkt netapi.Packet) {
		if pkt.Batch < 1 {
			t.Errorf("realnet delivery has Batch = %d, want >= 1", pkt.Batch)
		}
		unicast = append(unicast, deliveredPacket{pkt.From, pkt.To, string(pkt.Data)})
		if len(unicast) == n {
			close(done)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	group := netapi.Addr{IP: "239.255.255.253", Port: 427}
	memberNode, _ := rt.NewNode("10.0.0.6")
	var memberSocks []netapi.UDPSocket
	var memberDone [2]chan struct{}
	for i := 0; i < 2; i++ {
		i := i
		memberDone[i] = make(chan struct{})
		ms, err := memberNode.JoinGroup(group, func(pkt netapi.Packet) {
			members[i] = append(members[i], deliveredPacket{pkt.From, pkt.To, string(pkt.Data)})
			close(memberDone[i])
		})
		if err != nil {
			t.Fatal(err)
		}
		memberSocks = append(memberSocks, ms)
	}

	sendNode, _ := rt.NewNode("10.0.0.1")
	cli, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := cli.Send(sock.LocalAddr(), []byte{'u', byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Send(group, []byte("fan-out")); err != nil {
		t.Fatal(err)
	}
	for _, ch := range []chan struct{}{done, memberDone[0], memberDone[1]} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("deliveries incomplete: %d/%d unicast, members %d/%d",
				len(unicast), n, len(members[0]), len(members[1]))
		}
	}

	// Tear down and require the lease ledger to return to its baseline:
	// batched read loops hold whole slabs, and every buffer of every
	// slab must go back to the pool on close.
	_ = cli.Close()
	_ = sock.Close()
	for _, ms := range memberSocks {
		_ = ms.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for netapi.LeasedBuffers() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("lease ledger did not settle: %d leased, baseline %d",
				netapi.LeasedBuffers(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
	return unicast, members
}

// TestBatchPortableEquivalence pins the core contract of the recvmmsg
// fast path: same ordered deliveries, same real source addresses, same
// payloads, and a balanced lease ledger — batched and per-datagram
// paths must be indistinguishable to handlers.
func TestBatchPortableEquivalence(t *testing.T) {
	const n = 200
	var batched, portable []deliveredPacket
	var batchedM, portableM [2][]deliveredPacket
	withBatchIO(t, true, func() { batched, batchedM = runDeliverySequence(t, n) })
	withBatchIO(t, false, func() { portable, portableM = runDeliverySequence(t, n) })

	check := func(name string, got, want []deliveredPacket) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: batched saw %d deliveries, portable %d", name, len(got), len(want))
		}
		for i := range got {
			// Ports are ephemeral and differ between the two runs; the
			// IPs and payload order must match exactly.
			if got[i].payload != want[i].payload || got[i].from.IP != want[i].from.IP {
				t.Fatalf("%s delivery %d: batched %+v vs portable %+v", name, i, got[i], want[i])
			}
		}
	}
	check("unicast", batched, portable)
	check("member-0", batchedM[0], portableM[0])
	check("member-1", batchedM[1], portableM[1])

	// The From address is the sender's real source, not a placeholder:
	// loopback traffic must carry 127.0.0.1 and a nonzero ephemeral
	// port on both paths.
	for _, seq := range [][]deliveredPacket{batched, portable} {
		for _, d := range seq {
			if d.from.IP != "127.0.0.1" || d.from.Port == 0 {
				t.Fatalf("delivery carries From %+v, want real loopback source", d.from)
			}
		}
	}
}

// The batched receive path must hold the PR 5 allocation bound: reads
// land in slab-leased pooled buffers and dispatch inline, so the
// amortised cost per datagram stays within the per-datagram path's
// budget.
func TestBatchedRecvPathAllocs(t *testing.T) {
	withBatchIO(t, true, func() { measureRecvAllocs(t) })
}

// The portable path must hold the same bound with batching off — the
// CI no-batch leg runs the whole suite, and this pins the fallback's
// steady state explicitly.
func TestPortableRecvPathAllocs(t *testing.T) {
	withBatchIO(t, false, func() { measureRecvAllocs(t) })
}

func measureRecvAllocs(t *testing.T) {
	t.Helper()
	rt := realnet.New()
	recvNode, _ := rt.NewNode("10.0.0.5")
	got := make(chan struct{}, 1)
	sock, err := recvNode.OpenUDP(0, func(pkt netapi.Packet) {
		got <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	sendNode, _ := rt.NewNode("10.0.0.1")
	cli, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	dst := sock.LocalAddr()
	payload := []byte("service request frame")
	roundTrip := func() {
		if err := cli.Send(dst, payload); err != nil {
			t.Error(err)
		}
		<-got
	}
	for i := 0; i < 100; i++ {
		roundTrip() // warm the runtime, the pool and the slab
	}
	if avg := testing.AllocsPerRun(200, roundTrip); avg > 3 {
		t.Fatalf("UDP send+recv path allocates %.1f/op, want <= 3", avg)
	}
}

// Multicast Send must not allocate per call: the member snapshot lands
// in a per-socket scratch slice and the sendmmsg vectors are reused
// across fan-outs.
func TestMulticastSendAllocs(t *testing.T) {
	rt := realnet.New()
	group := netapi.Addr{IP: "239.255.255.253", Port: 427}
	memberNode, _ := rt.NewNode("10.0.0.6")
	for i := 0; i < 4; i++ {
		ms, err := memberNode.JoinGroup(group, func(netapi.Packet) {})
		if err != nil {
			t.Fatal(err)
		}
		defer ms.Close()
	}
	sendNode, _ := rt.NewNode("10.0.0.1")
	cli, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	payload := []byte("announce")
	send := func() {
		if err := cli.Send(group, payload); err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < 50; i++ {
		send() // warm the scratch slices to their high-water capacity
	}
	if avg := testing.AllocsPerRun(200, send); avg > 1 {
		t.Fatalf("multicast Send allocates %.1f/op, want <= 1", avg)
	}
}

// TestBatchedMulticastSendRace hammers concurrent multicast fan-outs
// while the group's membership churns — members join and close under
// the senders' feet. Run with -race in CI; the member snapshot, the
// per-socket send scratch and the sendmmsg vectors must all stay
// data-race free.
func TestBatchedMulticastSendRace(t *testing.T) {
	rt := realnet.New()
	group := netapi.Addr{IP: "239.255.255.250", Port: 1900}
	memberNode, _ := rt.NewNode("10.0.0.6")

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Senders: several sockets fanning out to the same group at once.
	for i := 0; i < 4; i++ {
		node, _ := rt.NewNode("10.0.0.1")
		cli, err := node.OpenUDP(0, func(netapi.Packet) {})
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		wg.Add(1)
		go func(s netapi.UDPSocket) {
			defer wg.Done()
			payload := []byte("burst")
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Send(group, payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(cli)
	}

	// Churner: membership grows and shrinks continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var live []netapi.UDPSocket
		defer func() {
			for _, s := range live {
				_ = s.Close()
			}
		}()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s, err := memberNode.JoinGroup(group, func(netapi.Packet) {})
			if err != nil {
				t.Error(err)
				return
			}
			live = append(live, s)
			if len(live) > 6 {
				_ = live[0].Close()
				live = live[1:]
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
