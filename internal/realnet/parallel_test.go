package realnet_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlink/internal/netapi"
	"starlink/internal/realnet"
)

// Two endpoints of a detached node must dispatch in parallel: endpoint
// A's handler blocks until endpoint B's handler has run. Under the
// retired global dispatcher lock (or any serialisation of the two
// endpoints) this deadlocks; under per-endpoint serial execution it
// completes.
func TestDetachedEndpointsDispatchInParallel(t *testing.T) {
	rt := realnet.New()
	recvNode, _ := rt.NewNode("10.0.0.5")
	dn := netapi.Detach(recvNode)
	if dn == recvNode {
		t.Fatal("realnet must support netapi.EndpointDetacher")
	}

	gate := make(chan struct{})
	done := make(chan struct{})
	sockA, err := dn.OpenUDP(0, func(netapi.Packet) {
		<-gate // blocks endpoint A until endpoint B dispatched
		close(done)
	})
	if err != nil {
		t.Fatal(err)
	}
	var gateOnce sync.Once
	sockB, err := dn.OpenUDP(0, func(netapi.Packet) {
		gateOnce.Do(func() { close(gate) })
	})
	if err != nil {
		t.Fatal(err)
	}

	sendNode, _ := rt.NewNode("10.0.0.1")
	cli, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(sockA.LocalAddr(), []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Give A's handler a moment to enter its blocking wait, then hit B.
	time.Sleep(20 * time.Millisecond)
	if err := cli.Send(sockB.LocalAddr(), []byte("b")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("endpoints are serialised: B's handler never ran while A's was blocked")
	}
}

// Callbacks for one socket must stay ordered even though distinct
// endpoints dispatch in parallel (the per-endpoint half of the
// contract).
func TestSameEndpointStaysOrdered(t *testing.T) {
	rt := realnet.New()
	recvNode, _ := rt.NewNode("10.0.0.5")
	dn := netapi.Detach(recvNode)

	const n = 200
	var seq []byte
	done := make(chan struct{})
	sock, err := dn.OpenUDP(0, func(pkt netapi.Packet) {
		// Handlers for one endpoint are serial: no locking needed.
		seq = append(seq, pkt.Data[0])
		if len(seq) == n {
			close(done)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	sendNode, _ := rt.NewNode("10.0.0.1")
	cli, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := cli.Send(sock.LocalAddr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("received %d of %d datagrams", len(seq), n)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1]+1 {
			t.Fatalf("out of order at %d: %d after %d", i, seq[i], seq[i-1])
		}
	}
}

// The UDP receive path must stay allocation-free in steady state: the
// datagram is read into a pooled leased buffer and the handler runs
// inline — no per-packet copy, closure or address allocation (the PR 5
// regression guard for the old fresh-buffer-plus-copy double work).
func TestUDPRecvPathAllocs(t *testing.T) {
	rt := realnet.New()
	recvNode, _ := rt.NewNode("10.0.0.5")
	got := make(chan struct{}, 1)
	sock, err := recvNode.OpenUDP(0, func(pkt netapi.Packet) {
		got <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	sendNode, _ := rt.NewNode("10.0.0.1")
	cli, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	dst := sock.LocalAddr()
	payload := []byte("service request frame")
	roundTrip := func() {
		if err := cli.Send(dst, payload); err != nil {
			t.Error(err)
		}
		<-got
	}
	for i := 0; i < 100; i++ {
		roundTrip() // warm the runtime and the buffer pool
	}
	if avg := testing.AllocsPerRun(200, roundTrip); avg > 3 {
		t.Fatalf("UDP send+recv path allocates %.1f/op, want <= 3", avg)
	}
}

// A handler that takes the packet's lease owns the bytes beyond the
// callback; the runtime leases a fresh buffer and keeps delivering.
func TestTakeLeaseKeepsDataStable(t *testing.T) {
	rt := realnet.New()
	recvNode, _ := rt.NewNode("10.0.0.5")
	type held struct {
		lease *netapi.Buffer
		data  []byte
	}
	heldCh := make(chan held, 8)
	sock, err := recvNode.OpenUDP(0, func(pkt netapi.Packet) {
		heldCh <- held{lease: pkt.TakeLease(), data: pkt.Data}
	})
	if err != nil {
		t.Fatal(err)
	}
	sendNode, _ := rt.NewNode("10.0.0.1")
	cli, err := sendNode.OpenUDP(0, func(netapi.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := cli.Send(sock.LocalAddr(), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		select {
		case h := <-heldCh:
			if h.lease == nil {
				t.Fatal("realnet datagrams must carry a lease")
			}
			if want := fmt.Sprintf("payload-%d", i); string(h.data) != want {
				t.Fatalf("payload %d = %q, want %q (buffer reused while leased?)", i, h.data, want)
			}
			h.lease.Release()
		case <-time.After(5 * time.Second):
			t.Fatalf("datagram %d never arrived", i)
		}
	}
}

// Concurrent stream sends coalesce into ordered writes: every byte
// arrives exactly once.
func TestStreamWriteCoalescing(t *testing.T) {
	rt := realnet.New()
	srvNode, _ := rt.NewNode("10.0.0.5")
	var total atomic.Int64
	l, err := srvNode.ListenStream(0, nil, func(c netapi.Conn, data []byte) {
		total.Add(int64(len(data)))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	port := listenerPort(t, rt, srvNode, l)

	cliNode, _ := rt.NewNode("10.0.0.1")
	conn, err := cliNode.DialStream(netapi.Addr{IP: "10.0.0.5", Port: port}, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	const senders, chunk, per = 16, 128, 25
	payload := make([]byte, chunk)
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := conn.Send(payload); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	want := int64(senders * chunk * per)
	if err := rt.RunUntil(func() bool { return total.Load() == want }, 5*time.Second); err != nil {
		t.Fatalf("received %d of %d bytes: %v", total.Load(), want, err)
	}
}

// listenerPort extracts the bound port of a stream listener by dialing
// is not possible without it, so derive it from a throwaway probe conn.
func listenerPort(t *testing.T, rt *realnet.Runtime, srvNode netapi.Node, l netapi.Closer) int {
	t.Helper()
	type porter interface{ Addr() netapi.Addr }
	if p, ok := l.(porter); ok {
		return p.Addr().Port
	}
	t.Fatal("listener does not expose its bound address")
	return 0
}

// Closing a clean detached-dialed connection through ParkConn keeps
// the TCP connection alive in the runtime's dial-reuse pool: the next
// detached DialStream to the same destination reuses it (same local
// port, no new handshake), and the reused connection still delivers
// both ways. Dials go through netapi.Detach, as netengine's requesters
// do — only private-domain connections are poolable.
func TestDialStreamReuse(t *testing.T) {
	rt := realnet.New()
	srvNode, _ := rt.NewNode("10.0.0.5")
	var srvConns []netapi.Conn
	var mu sync.Mutex
	l, err := srvNode.ListenStream(0, func(c netapi.Conn) {
		mu.Lock()
		srvConns = append(srvConns, c)
		mu.Unlock()
	}, func(c netapi.Conn, data []byte) {
		if data != nil {
			_ = c.Send(append([]byte("re:"), data...))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	port := listenerPort(t, rt, srvNode, l)
	dest := netapi.Addr{IP: "10.0.0.5", Port: port}

	cliNode, _ := rt.NewNode("10.0.0.1")
	cli := netapi.Detach(cliNode)
	got1 := make(chan string, 1)
	conn1, err := cli.DialStream(dest, func(c netapi.Conn, data []byte) {
		if data != nil {
			got1 <- string(data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn1.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got1:
		if r != "re:one" {
			t.Fatalf("reply = %q", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply on first connection")
	}

	parker, ok := cliNode.(netapi.ConnParker)
	if !ok {
		t.Fatal("realnet nodes must implement netapi.ConnParker")
	}
	if !parker.ParkConn(conn1) {
		t.Fatal("a clean dialed connection must be parkable")
	}

	got2 := make(chan string, 1)
	conn2, err := cli.DialStream(dest, func(c netapi.Conn, data []byte) {
		if data != nil {
			got2 <- string(data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if conn2.LocalAddr() != conn1.LocalAddr() {
		t.Fatalf("expected connection reuse: %v vs %v", conn2.LocalAddr(), conn1.LocalAddr())
	}
	if err := conn2.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got2:
		if r != "re:two" {
			t.Fatalf("reply = %q", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply on reused connection")
	}
	mu.Lock()
	accepted := len(srvConns)
	mu.Unlock()
	if accepted != 1 {
		t.Fatalf("server accepted %d connections, want 1 (reuse)", accepted)
	}
	if err := conn2.Close(); err != nil {
		t.Fatal(err)
	}
}

// The dial-reuse pool must never cross dispatch domains: a connection
// dialed undetached runs its callbacks on the node's root domain, so
// it is not parkable; an undetached DialStream never claims a parked
// connection (it would inherit a foreign private domain instead of the
// node's root domain); and Send on a parked connection is refused
// until a claimant takes it over.
func TestConnPoolRespectsDispatchDomains(t *testing.T) {
	rt := realnet.New()
	srvNode, _ := rt.NewNode("10.0.0.5")
	l, err := srvNode.ListenStream(0, nil, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	dest := netapi.Addr{IP: "10.0.0.5", Port: listenerPort(t, rt, srvNode, l)}

	cliNode, _ := rt.NewNode("10.0.0.1")
	parker, ok := cliNode.(netapi.ConnParker)
	if !ok {
		t.Fatal("realnet nodes must implement netapi.ConnParker")
	}

	rootConn, err := cliNode.DialStream(dest, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if parker.ParkConn(rootConn) {
		t.Fatal("a root-domain (undetached) connection must not be parkable")
	}
	if err := rootConn.Close(); err != nil {
		t.Fatal(err)
	}

	cli := netapi.Detach(cliNode)
	pooled, err := cli.DialStream(dest, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if !parker.ParkConn(pooled) {
		t.Fatal("a clean detached-dialed connection must be parkable")
	}
	if err := pooled.Send([]byte("x")); err == nil {
		t.Fatal("Send on a parked connection must be refused")
	}

	fresh, err := cliNode.DialStream(dest, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.LocalAddr() == pooled.LocalAddr() {
		t.Fatal("an undetached dial must not claim a parked private-domain connection")
	}
	if err := fresh.Close(); err != nil {
		t.Fatal(err)
	}

	claimed, err := cli.DialStream(dest, func(netapi.Conn, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if claimed.LocalAddr() != pooled.LocalAddr() {
		t.Fatal("a detached dial must reuse the parked connection")
	}
	if err := claimed.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := claimed.Close(); err != nil {
		t.Fatal(err)
	}
}
