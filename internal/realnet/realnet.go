// Package realnet implements netapi over real loopback sockets. It lets
// the same protocol stacks and bridges that run under the simulator run
// over the operating system's UDP and TCP on 127.0.0.1 — used by the
// examples and the starlinkd daemon.
//
// Substitution note (DESIGN.md §5): IP multicast is virtualised with an
// in-process group registry — joining a group binds a real ephemeral
// UDP port and registers it; sending to a group address fans out
// unicast datagrams to every member. Containers frequently lack
// multicast routes, and the paper's evaluation was single-machine, so
// the rendezvous semantics are preserved exactly while staying
// deployable anywhere.
//
// Concurrency (netapi's per-endpoint contract): there is no global
// dispatcher lock. Every endpoint dispatches its callbacks under a
// serial dispatch domain; by default all endpoints and timers of one
// node share the node's root domain (protocol components keep their
// single-threaded model), while endpoints opened through a detached
// node view (netapi.Detach) each get a private domain and run in
// parallel — the mode the Automata Engine and the provisioning
// dispatcher use, which lets a multi-case deployment ingest on every
// core at once.
//
// Buffer ownership: inbound datagrams are read straight into leased
// pooled buffers (netapi.Buffer) and handed to the handler without
// copying; a handler that keeps the bytes past the callback takes the
// lease (Packet.TakeLease) and releases it, otherwise the buffer is
// reused for the next read. Stream chunks are likewise delivered as
// views into the connection's read buffer, valid only for the duration
// of the callback.
package realnet

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"starlink/internal/netapi"
)

// loopback is the address every real socket binds to.
var loopback = netip.AddrFrom4([4]byte{127, 0, 0, 1})

// batchDisabled turns the batched syscall paths (recvmmsg read loop,
// sendmmsg multicast fan-out) off at runtime on builds that carry them
// (batchIO). Read loops sample the setting when they start; Send
// checks it per fan-out.
var batchDisabled atomic.Bool

// SetBatchIO enables or disables the batched I/O fast paths at runtime
// and reports the previous setting. It exists for the equivalence
// tests, which drive identical traffic through the batched and
// portable paths in one (Linux) build; production code leaves the
// default (enabled where compiled in). Sockets already running keep
// the read-loop mode they started with. On portable builds (non-Linux
// or the no-batch tag) the toggle records state but there is no
// batched path to enable.
func SetBatchIO(on bool) (prev bool) {
	return !batchDisabled.Swap(!on)
}

// useBatchIO reports whether newly started read loops and multicast
// fan-outs take the batched syscall paths.
func useBatchIO() bool { return batchIO && !batchDisabled.Load() }

// maxParkedPerDest bounds the dial-reuse pool per destination address.
const maxParkedPerDest = 4

// domain is one serial dispatch context: callbacks scheduled on a
// domain never overlap. Handlers run holding mu; RunUntil locks every
// node's root domain to evaluate its condition against quiesced state.
//
// root marks a node's root domain (shared by the node's undetached
// endpoints and timers) as opposed to the private domain of a detached
// endpoint. The dial-reuse pool only handles private-domain
// connections: a claimed connection keeps the domain it was dialed
// with, and handing a root domain to an unrelated claimant would break
// the per-node serial-execution contract.
type domain struct {
	rt   *Runtime
	mu   sync.Mutex
	root bool
}

// run executes one callback on the domain and wakes RunUntil waiters.
func (d *domain) run(fn func()) {
	d.mu.Lock()
	fn()
	d.mu.Unlock()
	d.rt.wake()
}

// Runtime is a real-socket netapi runtime.
//
// Locking: stateMu guards the runtime's own tables (timers, groups,
// the dial-reuse pool, closed flags); per-domain mutexes serialise
// handler callbacks. Handlers run holding only their domain, so they
// may freely call Send / After / Cancel / Close, which take stateMu
// (or a connection's write mutex) but never another domain.
//
// Components such as the concurrent Automata Engine hand payloads off
// to worker goroutines; they report that work through the node's
// netapi.WorkTracker so RunUntil only evaluates its condition while no
// handed-off work is in flight (which also publishes the workers'
// writes to the condition).
type Runtime struct {
	stateMu  sync.Mutex // guards timers, groups, pool and closed flags
	waitCh   chan struct{}
	timers   map[netapi.TimerID]*time.Timer
	timerSeq uint64
	groups   map[netapi.Addr][]*udpSocket // group address -> members
	parked   map[int][]*streamConn        // dial-reuse pool, by remote port

	rootsMu sync.Mutex
	roots   []*domain // root domain of every live node, creation order

	workMu   sync.Mutex
	inflight int
}

var _ netapi.Runtime = (*Runtime)(nil)

// New creates a runtime.
func New() *Runtime {
	return &Runtime{
		waitCh: make(chan struct{}, 1),
		timers: map[netapi.TimerID]*time.Timer{},
		groups: map[netapi.Addr][]*udpSocket{},
		parked: map[int][]*streamConn{},
	}
}

// WorkAdd registers one unit of in-flight off-dispatch work
// (netapi.WorkTracker).
func (rt *Runtime) WorkAdd() {
	rt.workMu.Lock()
	rt.inflight++
	rt.workMu.Unlock()
}

// WorkDone retires one unit of in-flight work and wakes RunUntil
// waiters (netapi.WorkTracker).
func (rt *Runtime) WorkDone() {
	rt.workMu.Lock()
	rt.inflight--
	rt.workMu.Unlock()
	rt.wake()
}

// idle reports whether no handed-off work is in flight; acquiring
// workMu publishes the finished workers' writes.
func (rt *Runtime) idle() bool {
	rt.workMu.Lock()
	defer rt.workMu.Unlock()
	return rt.inflight == 0
}

// wake nudges RunUntil waiters.
func (rt *Runtime) wake() {
	select {
	case rt.waitCh <- struct{}{}:
	default:
	}
}

// NewNode returns a host bound to 127.0.0.1. The requested IP is kept
// as a label only; all real sockets live on loopback.
func (rt *Runtime) NewNode(ip string) (netapi.Node, error) {
	if ip == "" {
		ip = "127.0.0.1"
	}
	n := &node{rt: rt, label: ip, owned: map[netapi.Closer]struct{}{}}
	n.root = &domain{rt: rt, root: true}
	rt.rootsMu.Lock()
	rt.roots = append(rt.roots, n.root)
	rt.rootsMu.Unlock()
	return n, nil
}

// RunUntil waits (wall-clock) until cond holds or timeout elapses.
// cond is evaluated with every node's root domain locked, so state
// written by undetached handler callbacks is safe to read; state owned
// by detached endpoints must be read through the owning component's
// own synchronisation.
func (rt *Runtime) RunUntil(cond func() bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if rt.idle() {
			rt.rootsMu.Lock()
			roots := append([]*domain(nil), rt.roots...)
			rt.rootsMu.Unlock()
			for _, d := range roots {
				d.mu.Lock()
			}
			ok := cond()
			for i := len(roots) - 1; i >= 0; i-- {
				roots[i].mu.Unlock()
			}
			if ok {
				return nil
			}
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("realnet: RunUntil: timeout after %s", timeout)
		}
		wait := 10 * time.Millisecond
		if remain < wait {
			wait = remain
		}
		select {
		case <-rt.waitCh:
		case <-time.After(wait):
		}
	}
}

// Run sleeps for d of wall-clock time (events dispatch in background).
func (rt *Runtime) Run(d time.Duration) { time.Sleep(d) }

type node struct {
	rt    *Runtime
	label string
	// root is the node's default dispatch domain: every endpoint the
	// node opens directly, and every timer it schedules, dispatches
	// there.
	root *domain

	// owned tracks the live sockets, listeners and dialed connections
	// this node opened, so Close can release them all. Entries remove
	// themselves when closed individually, keeping the set bounded by
	// the number of live endpoints rather than the churn.
	ownedMu sync.Mutex
	closed  bool
	owned   map[netapi.Closer]struct{}
}

// adopt registers a resource for teardown with the node. If the node
// is already closed the resource is closed immediately.
func (n *node) adopt(c netapi.Closer) {
	n.ownedMu.Lock()
	if n.closed {
		n.ownedMu.Unlock()
		_ = c.Close()
		return
	}
	n.owned[c] = struct{}{}
	n.ownedMu.Unlock()
}

// forget unregisters a resource that closed itself.
func (n *node) forget(c netapi.Closer) {
	n.ownedMu.Lock()
	delete(n.owned, c)
	n.ownedMu.Unlock()
}

// Close releases every socket, listener and dialed connection the node
// opened (including through detached views). Closing twice is a no-op.
func (n *node) Close() error {
	n.ownedMu.Lock()
	if n.closed {
		n.ownedMu.Unlock()
		return nil
	}
	n.closed = true
	owned := make([]netapi.Closer, 0, len(n.owned))
	for c := range n.owned {
		owned = append(owned, c)
	}
	n.owned = map[netapi.Closer]struct{}{}
	n.ownedMu.Unlock()
	for _, c := range owned {
		_ = c.Close()
	}
	n.rt.rootsMu.Lock()
	for i, d := range n.rt.roots {
		if d == n.root {
			n.rt.roots = append(n.rt.roots[:i], n.rt.roots[i+1:]...)
			break
		}
	}
	n.rt.rootsMu.Unlock()
	return nil
}

var (
	_ netapi.Node             = (*node)(nil)
	_ netapi.WorkTracker      = (*node)(nil)
	_ netapi.EndpointDetacher = (*node)(nil)
	_ netapi.ConnParker       = (*node)(nil)
	_ netapi.FlowLimiter      = (*node)(nil)
)

func (n *node) IP() string { return "127.0.0.1" }

// WorkAdd / WorkDone expose the runtime's work tracker on the node
// (netapi.WorkTracker).
func (n *node) WorkAdd()  { n.rt.WorkAdd() }
func (n *node) WorkDone() { n.rt.WorkDone() }

func (n *node) Now() time.Time { return time.Now() }

// DetachEndpoints returns a view of the node whose endpoints each get
// a private dispatch domain (netapi.EndpointDetacher). Timers and
// node-level resources are shared with the underlying node.
func (n *node) DetachEndpoints() netapi.Node { return &detachedNode{node: n} }

// GateEndpoints returns a view of the node whose subsequently opened
// ingress endpoints honor the flow gate (netapi.FlowLimiter): while
// the gate is blocked their read loops park — releasing their leased
// buffers first — and resume when it reopens. Egress (DialStream) is
// never gated.
func (n *node) GateEndpoints(g *netapi.FlowGate) netapi.Node {
	return &gatedNode{node: n, gate: g}
}

// detachedNode is a node view for thread-safe components: endpoints
// opened through it dispatch on private per-endpoint domains.
type detachedNode struct{ *node }

var (
	_ netapi.Node             = (*detachedNode)(nil)
	_ netapi.WorkTracker      = (*detachedNode)(nil)
	_ netapi.EndpointDetacher = (*detachedNode)(nil)
	_ netapi.FlowLimiter      = (*detachedNode)(nil)
)

// DetachEndpoints on an already detached view is the identity.
func (d *detachedNode) DetachEndpoints() netapi.Node { return d }

// GateEndpoints on a detached view keeps the detachment: endpoints are
// gated AND get private dispatch domains.
func (d *detachedNode) GateEndpoints(g *netapi.FlowGate) netapi.Node {
	return &gatedNode{node: d.node, detached: true, gate: g}
}

func (d *detachedNode) OpenUDP(port int, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	return d.node.openUDP(&domain{rt: d.rt}, nil, port, h)
}

func (d *detachedNode) JoinGroup(group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	return d.node.joinGroup(&domain{rt: d.rt}, nil, group, h)
}

func (d *detachedNode) ListenStream(port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	return d.node.listenStream(true, nil, port, accept, recv)
}

func (d *detachedNode) DialStream(to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	return d.node.dialStream(&domain{rt: d.rt}, to, recv)
}

// gatedNode is a node view whose ingress endpoints honor a flow gate;
// with detached set they also get private per-endpoint dispatch
// domains (the combination the Automata Engine uses).
type gatedNode struct {
	*node
	detached bool
	gate     *netapi.FlowGate
}

var (
	_ netapi.Node             = (*gatedNode)(nil)
	_ netapi.WorkTracker      = (*gatedNode)(nil)
	_ netapi.EndpointDetacher = (*gatedNode)(nil)
	_ netapi.FlowLimiter      = (*gatedNode)(nil)
	_ netapi.ConnParker       = (*gatedNode)(nil)
)

// domainFor picks the dispatch domain for a newly opened endpoint.
func (g *gatedNode) domainFor() *domain {
	if g.detached {
		return &domain{rt: g.rt}
	}
	return g.root
}

// DetachEndpoints keeps the gate and adds per-endpoint domains.
func (g *gatedNode) DetachEndpoints() netapi.Node {
	return &gatedNode{node: g.node, detached: true, gate: g.gate}
}

// GateEndpoints rebinds the view to another gate.
func (g *gatedNode) GateEndpoints(fg *netapi.FlowGate) netapi.Node {
	return &gatedNode{node: g.node, detached: g.detached, gate: fg}
}

func (g *gatedNode) OpenUDP(port int, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	return g.node.openUDP(g.domainFor(), g.gate, port, h)
}

func (g *gatedNode) JoinGroup(group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	return g.node.joinGroup(g.domainFor(), g.gate, group, h)
}

func (g *gatedNode) ListenStream(port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	return g.node.listenStream(g.detached, g.gate, port, accept, recv)
}

func (g *gatedNode) DialStream(to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	if g.detached {
		return g.node.dialStream(&domain{rt: g.rt}, to, recv)
	}
	return g.node.dialStream(g.root, to, recv)
}

func (n *node) After(d time.Duration, fn func()) netapi.TimerID {
	n.rt.stateMu.Lock()
	n.rt.timerSeq++
	id := netapi.TimerID(n.rt.timerSeq)
	n.rt.stateMu.Unlock()
	t := time.AfterFunc(d, func() {
		n.rt.stateMu.Lock()
		_, live := n.rt.timers[id]
		delete(n.rt.timers, id)
		n.rt.stateMu.Unlock()
		if !live {
			return // cancelled between fire and dispatch
		}
		n.root.run(fn)
	})
	n.rt.stateMu.Lock()
	n.rt.timers[id] = t
	n.rt.stateMu.Unlock()
	return id
}

func (n *node) Cancel(id netapi.TimerID) {
	n.rt.stateMu.Lock()
	defer n.rt.stateMu.Unlock()
	if t, ok := n.rt.timers[id]; ok {
		t.Stop()
		delete(n.rt.timers, id)
	}
}

// ---------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------

type udpSocket struct {
	rt    *Runtime
	owner *node
	dom   *domain
	conn  *net.UDPConn
	// rc is the socket's raw control handle for the batched recvmmsg /
	// sendmmsg paths: the syscall callbacks run under the runtime
	// netpoller, so a would-block parks the goroutine until the fd is
	// ready instead of spinning.
	rc      syscall.RawConn
	addr    netapi.Addr
	handler netapi.PacketHandler
	// gate, when non-nil, pauses the read loop while blocked
	// (backpressure from a pressured ingest queue downstream).
	gate   *netapi.FlowGate
	groups []netapi.Addr
	closed atomic.Bool

	// srcCache interns source-IP strings so the read loop builds each
	// peer's dotted-quad exactly once. Owned exclusively by the read
	// loop goroutine — no locking.
	srcCache map[netip.Addr]string

	// sendMu serialises the multicast fan-out scratch: the snapshot of
	// member destinations (sendDsts, reused across sends — no per-call
	// slice) and the platform batch state.
	sendMu   sync.Mutex
	sendDsts []netip.AddrPort
	batch    batchState
}

var _ netapi.UDPSocket = (*udpSocket)(nil)

func (n *node) OpenUDP(port int, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	return n.openUDP(n.root, nil, port, h)
}

func (n *node) openUDP(dom *domain, gate *netapi.FlowGate, port int, h netapi.PacketHandler) (*udpSocket, error) {
	if h == nil {
		return nil, fmt.Errorf("realnet: OpenUDP needs a handler")
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
	if err != nil {
		return nil, fmt.Errorf("realnet: %w", err)
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("realnet: %w", err)
	}
	local := conn.LocalAddr().(*net.UDPAddr)
	s := &udpSocket{
		rt:      n.rt,
		owner:   n,
		dom:     dom,
		conn:    conn,
		rc:      rc,
		addr:    netapi.Addr{IP: "127.0.0.1", Port: local.Port},
		handler: h,
		gate:    gate,
	}
	n.adopt(s)
	go s.readLoop()
	return s, nil
}

func (n *node) JoinGroup(group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	return n.joinGroup(n.root, nil, group, h)
}

func (n *node) joinGroup(dom *domain, gate *netapi.FlowGate, group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	if !group.IsMulticast() {
		return nil, fmt.Errorf("realnet: %s is not a multicast group", group)
	}
	s, err := n.openUDP(dom, gate, 0, h)
	if err != nil {
		return nil, err
	}
	n.rt.stateMu.Lock()
	n.rt.groups[group] = append(n.rt.groups[group], s)
	s.groups = append(s.groups, group)
	n.rt.stateMu.Unlock()
	return s, nil
}

// readLoop selects the socket's receive path once, at goroutine
// start: the batched recvmmsg loop where the build carries it and
// runtime batching is on, the portable per-datagram loop otherwise.
func (s *udpSocket) readLoop() {
	if useBatchIO() {
		s.readLoopBatch()
		return
	}
	s.readLoopSerial()
}

// srcIP returns the interned dotted-quad string of a datagram source.
// Called only from the socket's read loop goroutine, which owns the
// cache: each distinct peer pays the formatting allocation once, after
// which the receive path is allocation-free again. The cache is
// bounded defensively — loopback traffic cannot have many sources, but
// an unbounded map keyed by remote-controlled input must not exist.
func (s *udpSocket) srcIP(a netip.Addr) string {
	a = a.Unmap()
	if ip, ok := s.srcCache[a]; ok {
		return ip
	}
	ip := a.String()
	if s.srcCache == nil {
		s.srcCache = make(map[netip.Addr]string)
	}
	if len(s.srcCache) < 4096 {
		s.srcCache[a] = ip
	}
	return ip
}

// readLoopSerial reads datagrams one at a time straight into leased
// pooled buffers and invokes the handler inline under the socket's
// dispatch domain: no per-datagram copy, closure or allocation. If the
// handler takes the buffer's lease the loop leases a fresh one;
// otherwise the same buffer is reused for the next read.
//
//starlink:hotpath
func (s *udpSocket) readLoopSerial() {
	buf := netapi.NewBuffer()
	for {
		if g := s.gate; g != nil && g.Blocked() {
			// Backpressure: the downstream ingest queue crossed its high
			// watermark. Release the leased buffer before parking — a
			// paused read loop must not pin pool memory — and re-lease
			// once the gate reopens at the low watermark.
			buf.Release()
			g.Wait()
			if s.closed.Load() {
				return
			}
			buf = netapi.NewBuffer()
		}
		nr, from, err := s.conn.ReadFromUDPAddrPort(buf.Backing())
		if err != nil {
			buf.Release()
			return // socket closed
		}
		if g := s.gate; g != nil && g.Blocked() {
			// A read was already in flight when the gate closed: hold
			// this one datagram (a single bounded buffer) and deliver it
			// in order once the gate reopens.
			g.Wait()
		}
		if s.closed.Load() {
			continue
		}
		netapi.CountRecvSingle()
		buf.SetFilled(nr)
		// The lease-transfer signal lives in this loop's own frame, not
		// on the buffer: once the handler takes the lease the new owner
		// may Release and the pool may re-lease the buffer to another
		// read loop before we look, so buffer state checked here could
		// belong to the buffer's next life (see netapi.Buffer).
		retained := false
		pkt := netapi.Packet{
			From:  netapi.Addr{IP: s.srcIP(from.Addr()), Port: int(from.Port())},
			To:    s.addr,
			Data:  buf.Bytes(),
			Buf:   buf,
			Batch: 1,
		}
		pkt.BindLeaseFlag(&retained)
		s.dom.mu.Lock()
		if !s.closed.Load() {
			s.handler(pkt)
		}
		s.dom.mu.Unlock()
		s.rt.wake()
		if retained {
			// The handler owns the old buffer now (it will release it
			// when done); lease a fresh one for the next datagram.
			buf = netapi.NewBuffer()
		}
	}
}

func (s *udpSocket) LocalAddr() netapi.Addr { return s.addr }

// Send transmits a datagram. A multicast destination fans out to all
// live group members: the member snapshot reuses a per-socket scratch
// slice (no per-send allocation), and on the Linux fast path the whole
// fan-out is one sendmmsg instead of one write syscall per member.
//
//starlink:hotpath
func (s *udpSocket) Send(to netapi.Addr, data []byte) error {
	if to.IsMulticast() {
		s.sendMu.Lock()
		dsts := s.sendDsts[:0]
		s.rt.stateMu.Lock()
		for _, m := range s.rt.groups[to] {
			if !m.closed.Load() {
				dsts = append(dsts, netip.AddrPortFrom(loopback, uint16(m.addr.Port)))
			}
		}
		s.rt.stateMu.Unlock()
		s.sendDsts = dsts
		var err error
		if useBatchIO() && len(dsts) > 1 {
			err = s.fanoutBatch(data, dsts)
		} else {
			err = s.fanoutSerial(data, dsts)
		}
		s.sendMu.Unlock()
		return err
	}
	netapi.CountSendSingle()
	dst := netip.AddrPortFrom(loopback, uint16(to.Port))
	if _, err := s.conn.WriteToUDPAddrPort(data, dst); err != nil {
		return fmt.Errorf("realnet: send to %s: %w", to, err)
	}
	return nil
}

// fanoutSerial transmits data to every destination with one write
// syscall per member — the portable fan-out, and the single-member
// fast case. Caller holds s.sendMu.
func (s *udpSocket) fanoutSerial(data []byte, dsts []netip.AddrPort) error {
	for _, dst := range dsts {
		netapi.CountSendSingle()
		if _, err := s.conn.WriteToUDPAddrPort(data, dst); err != nil {
			return fmt.Errorf("realnet: multicast to %s: %w", dst, err)
		}
	}
	return nil
}

func (s *udpSocket) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.rt.stateMu.Lock()
	for _, key := range s.groups {
		members := s.rt.groups[key]
		for i, m := range members {
			if m == s {
				s.rt.groups[key] = append(members[:i], members[i+1:]...)
				break
			}
		}
	}
	s.rt.stateMu.Unlock()
	s.owner.forget(s)
	return s.conn.Close()
}

// ---------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------

type listener struct {
	rt     *Runtime
	owner  *node
	ln     net.Listener
	closed atomic.Bool
}

// Addr returns the listener's bound address (ephemeral listens learn
// their port here).
func (l *listener) Addr() netapi.Addr {
	ta := l.ln.Addr().(*net.TCPAddr)
	return netapi.Addr{IP: "127.0.0.1", Port: ta.Port}
}

func (n *node) ListenStream(port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	return n.listenStream(false, nil, port, accept, recv)
}

func (n *node) listenStream(detached bool, gate *netapi.FlowGate, port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	if recv == nil {
		return nil, fmt.Errorf("realnet: ListenStream needs a recv handler")
	}
	ln, err := net.Listen("tcp4", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("realnet: %w", err)
	}
	l := &listener{rt: n.rt, owner: n, ln: ln}
	n.adopt(l)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			dom := n.root
			if detached {
				// Each accepted connection is its own endpoint: give it
				// a private domain so connections ingest in parallel.
				dom = &domain{rt: n.rt}
			}
			sc := newStreamConn(n.rt, c, recv, dom)
			sc.owner = n
			sc.gate = gate
			n.adopt(sc)
			dom.run(func() {
				if accept != nil {
					accept(sc)
				}
			})
			go sc.readLoop()
		}
	}()
	return l, nil
}

func (l *listener) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	l.owner.forget(l)
	return l.ln.Close()
}

// connState is a stream connection's pool lifecycle, guarded by the
// runtime's stateMu.
type connState int

const (
	connActive connState = iota
	connParked           // in the dial-reuse pool, no user
	connClosed
)

type streamConn struct {
	rt     *Runtime
	dom    *domain
	c      net.Conn
	local  netapi.Addr
	remote netapi.Addr
	dialed bool

	// recv is the inbound handler, guarded by dom.mu. Invariant: recv
	// and the pool state change together under BOTH dom.mu and stateMu
	// (lock order: dom.mu → stateMu), so under dom.mu alone a nil recv
	// means the connection has no user (parked or closed) — a claim in
	// progress can never be observed half-done.
	recv netapi.StreamHandler

	// state and owner are guarded by rt.stateMu. owner is nil while the
	// connection sits in the dial-reuse pool (no node owns it).
	state connState
	owner *node

	// gate, when non-nil (accepted conns on a gated listener), pauses
	// the read loop while blocked. Immutable after the read loop starts.
	gate *netapi.FlowGate

	// Write coalescing: the first sender becomes the writer and drains
	// the chunks queued by concurrent senders, so N concurrent sends
	// become few syscalls while per-sender order is preserved. Each
	// queued send is its own chunk (copied into recycled storage from
	// wfree) and the writer drains the whole backlog with ONE vectored
	// write (net.Buffers → writev) per drain pass instead of one write
	// per chunk; wvec is the writer-owned scratch header vector, copied
	// from the batch because net.Buffers.WriteTo consumes its receiver.
	// werr latches the first write error for subsequent senders.
	// wparked is latched by ParkConn in the same wmu critical section
	// that proves the write path clean, and cleared when a claimant
	// takes over: a Send racing the park fails instead of interleaving
	// its bytes with the next claimant's traffic.
	wmu     sync.Mutex
	wbusy   bool
	wparked bool
	wqueue  [][]byte
	wqspare [][]byte
	wfree   [][]byte
	wvec    net.Buffers
	werr    error
}

// maxRecycledChunk bounds the capacity of a coalescing chunk kept on
// the free list (a multi-MB burst chunk must not be pinned by an idle
// connection); maxFreeChunks bounds how many are kept.
const (
	maxRecycledChunk = 64 * 1024
	maxFreeChunks    = 32
)

var _ netapi.Conn = (*streamConn)(nil)

func newStreamConn(rt *Runtime, c net.Conn, recv netapi.StreamHandler, dom *domain) *streamConn {
	la := c.LocalAddr().(*net.TCPAddr)
	ra := c.RemoteAddr().(*net.TCPAddr)
	return &streamConn{
		rt: rt, c: c, recv: recv, dom: dom,
		local:  netapi.Addr{IP: "127.0.0.1", Port: la.Port},
		remote: netapi.Addr{IP: "127.0.0.1", Port: ra.Port},
	}
}

func (n *node) DialStream(to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	return n.dialStream(n.root, to, recv)
}

func (n *node) dialStream(dom *domain, to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	if recv == nil {
		return nil, fmt.Errorf("realnet: DialStream needs a recv handler")
	}
	// Only detached dials may reuse a parked connection: the claimed
	// conn keeps the private domain it was dialed with, which for a
	// detached caller is exactly the per-endpoint domain it would have
	// been given anyway. An undetached dial needs its callbacks on the
	// node's root domain, so it always opens a fresh connection.
	if !dom.root {
		if sc := n.rt.claimParked(to, recv, n); sc != nil {
			n.adopt(sc)
			return sc, nil
		}
	}
	c, err := net.DialTimeout("tcp4", fmt.Sprintf("127.0.0.1:%d", to.Port), 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("realnet: dial %s: %w", to, err)
	}
	sc := newStreamConn(n.rt, c, recv, dom)
	sc.dialed = true
	sc.owner = n
	n.adopt(sc)
	go sc.readLoop()
	return sc, nil
}

// removeParkedLocked drops a connection from the dial-reuse pool.
// Caller holds rt.stateMu.
func (rt *Runtime) removeParkedLocked(sc *streamConn) {
	pool := rt.parked[sc.remote.Port]
	for i, p := range pool {
		if p == sc {
			pool = append(pool[:i], pool[i+1:]...)
			break
		}
	}
	if len(pool) == 0 {
		delete(rt.parked, sc.remote.Port)
	} else {
		rt.parked[sc.remote.Port] = pool
	}
}

// claimParked pops a live parked connection to the destination from
// the dial-reuse pool, rebinding its receive handler and owner in one
// atomic step (under the connection's domain plus stateMu), or returns
// nil. Only detached dials call it, and ParkConn only admits
// private-domain connections, so the claimant inherits a dispatch
// domain used by this connection alone — never a node's root domain.
// The pool is keyed by remote port: every realnet socket lives on
// loopback, and node IPs are labels only.
func (rt *Runtime) claimParked(to netapi.Addr, recv netapi.StreamHandler, owner *node) *streamConn {
	for {
		rt.stateMu.Lock()
		var cand *streamConn
		pool := rt.parked[to.Port]
		for i := len(pool) - 1; i >= 0; i-- {
			if pool[i].state == connParked {
				cand = pool[i]
				break
			}
		}
		rt.stateMu.Unlock()
		if cand == nil {
			return nil
		}
		// Re-check under both locks: the candidate may have been
		// claimed by a racing dial or evicted by stray bytes meanwhile.
		cand.dom.mu.Lock()
		rt.stateMu.Lock()
		if cand.state == connParked {
			cand.state = connActive
			rt.removeParkedLocked(cand)
			cand.recv = recv
			cand.owner = owner
			cand.unparkWrites()
			rt.stateMu.Unlock()
			cand.dom.mu.Unlock()
			return cand
		}
		rt.stateMu.Unlock()
		cand.dom.mu.Unlock()
	}
}

// ParkConn returns a healthy detached-dialed connection to the
// runtime's dial-reuse pool (netapi.ConnParker): a later detached
// DialStream to the same address reuses the established connection
// instead of a fresh TCP handshake — the client-side reuse behind
// netengine.NewRequester (whose engine always dials detached).
// Parking transfers ownership from the node to the runtime: the
// connection no longer closes with the node, it lives in the pool
// (bounded per destination) until claimed or evicted. Bytes arriving
// while parked evict the connection (they would desynchronise the
// next user).
func (n *node) ParkConn(c netapi.Conn) bool {
	sc, ok := c.(*streamConn)
	if !ok || !sc.dialed {
		return false
	}
	if sc.dom.root {
		// A connection dialed undetached dispatches on its node's root
		// domain; parking it would hand that domain to whichever caller
		// claims the connection next, entangling two nodes' serial
		// execution. Only private-domain (detached) dials are poolable.
		return false
	}
	// The user-to-parked transition is atomic under all three locks
	// (see the recv invariant on streamConn): the write-path clean
	// check happens under wmu inside the same critical section that
	// latches wparked, so a Send racing the park either lands entirely
	// before it (wbusy/wbuf then fail the check) or observes wparked
	// and refuses — no write can start between the check and the state
	// change. A concurrent claim likewise can never observe the
	// connection pooled but still carrying the old handler.
	sc.dom.mu.Lock()
	n.rt.stateMu.Lock()
	sc.wmu.Lock()
	clean := sc.werr == nil && !sc.wbusy && len(sc.wqueue) == 0
	if !clean || sc.state != connActive || len(n.rt.parked[sc.remote.Port]) >= maxParkedPerDest {
		sc.wmu.Unlock()
		n.rt.stateMu.Unlock()
		sc.dom.mu.Unlock()
		return false
	}
	sc.wparked = true
	// Drop the coalescing scratch: a burst before the park can have
	// grown it to many MB, which an idle pooled connection must not pin.
	sc.wqueue, sc.wqspare, sc.wfree, sc.wvec = nil, nil, nil, nil
	sc.state = connParked
	n.rt.parked[sc.remote.Port] = append(n.rt.parked[sc.remote.Port], sc)
	sc.recv = nil
	owner := sc.owner
	sc.owner = nil
	sc.wmu.Unlock()
	n.rt.stateMu.Unlock()
	sc.dom.mu.Unlock()
	if owner != nil {
		owner.forget(sc)
	}
	return true
}

// readLoop delivers inbound chunks as views into the connection's read
// buffer, serially under the connection's domain. The slice is valid
// only for the duration of the callback; consumers copy or consume
// (the netengine framer appends into its own per-connection buffer).
func (sc *streamConn) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		if g := sc.gate; g != nil {
			// Backpressure: stop pulling bytes off the wire while the
			// downstream ingest queue is pressured; unread data queues in
			// the kernel socket buffer and then in the peer's send path.
			g.Wait()
		}
		nr, err := sc.c.Read(buf)
		if nr > 0 {
			if g := sc.gate; g != nil {
				// A read already in flight when the gate closed: hold the
				// chunk until reopen so recv never runs while paused.
				g.Wait()
			}
			sc.dom.mu.Lock()
			recv := sc.recv
			if recv == nil {
				// No user: stray bytes on a parked (or already closed)
				// connection would desynchronise the next user — evict.
				sc.rt.stateMu.Lock()
				if sc.state == connParked {
					sc.rt.removeParkedLocked(sc)
					sc.unparkWrites()
				}
				sc.state = connClosed
				sc.rt.stateMu.Unlock()
				sc.dom.mu.Unlock()
				_ = sc.c.Close()
				return
			}
			recv(sc, buf[:nr])
			sc.dom.mu.Unlock()
			sc.rt.wake()
		}
		if err != nil {
			sc.dom.mu.Lock()
			recv := sc.recv
			sc.rt.stateMu.Lock()
			st := sc.state
			if st == connParked {
				sc.rt.removeParkedLocked(sc)
				sc.unparkWrites()
			}
			sc.state = connClosed
			owner := sc.owner
			sc.owner = nil
			sc.rt.stateMu.Unlock()
			if st == connActive && recv != nil {
				if owner != nil {
					owner.forget(sc)
				}
				recv(sc, nil)
				sc.dom.mu.Unlock()
				sc.rt.wake()
			} else {
				sc.dom.mu.Unlock()
			}
			_ = sc.c.Close()
			return
		}
	}
}

func (sc *streamConn) LocalAddr() netapi.Addr  { return sc.local }
func (sc *streamConn) RemoteAddr() netapi.Addr { return sc.remote }

// unparkWrites clears the wparked latch on every transition out of the
// parked state (claimed, evicted by stray bytes, or closed), so a
// stale holder's Send reports the write path's real error instead of
// claiming the connection is still pooled. Callers hold stateMu (and
// possibly dom.mu); taking wmu here follows the dom.mu → stateMu → wmu
// lock order.
func (sc *streamConn) unparkWrites() {
	sc.wmu.Lock()
	sc.wparked = false
	sc.wmu.Unlock()
}

// Send transmits data in order. Concurrent senders coalesce: the first
// one becomes the writer; later senders queue their bytes as chunks
// (copied into recycled storage) and return. The writer drains the
// whole queued backlog with one vectored write (net.Buffers → writev)
// per drain pass, so N concurrent sends cost ~one syscall regardless
// of how many chunks piled up. A write error is returned to the writer
// that hit it and latched for every later sender.
func (sc *streamConn) Send(data []byte) error {
	sc.wmu.Lock()
	if sc.wparked {
		sc.wmu.Unlock()
		return fmt.Errorf("realnet: send on a parked connection")
	}
	if sc.werr != nil {
		err := sc.werr
		sc.wmu.Unlock()
		return fmt.Errorf("realnet: %w", err)
	}
	if sc.wbusy {
		// Queue this send as its own chunk, reusing freed storage when
		// a recycled chunk is available.
		var chunk []byte
		if n := len(sc.wfree); n > 0 {
			chunk = sc.wfree[n-1]
			sc.wfree = sc.wfree[:n-1]
		}
		sc.wqueue = append(sc.wqueue, append(chunk, data...))
		sc.wmu.Unlock()
		return nil
	}
	sc.wbusy = true
	sc.wmu.Unlock()
	_, err := sc.c.Write(data)
	var prev [][]byte
	for {
		sc.wmu.Lock()
		// Recycle the previous drain pass's chunks: storage onto the
		// bounded free list, the header slice as the next queue.
		for _, c := range prev {
			if cap(c) <= maxRecycledChunk && len(sc.wfree) < maxFreeChunks {
				sc.wfree = append(sc.wfree, c[:0])
			}
		}
		if prev != nil {
			sc.wqspare = prev[:0]
		}
		prev = nil
		if err != nil {
			sc.werr = err
			sc.wbusy = false
			sc.wqueue, sc.wqspare, sc.wfree, sc.wvec = nil, nil, nil, nil
			sc.wmu.Unlock()
			return fmt.Errorf("realnet: %w", err)
		}
		if len(sc.wqueue) == 0 {
			sc.wbusy = false
			sc.wmu.Unlock()
			return nil
		}
		batch := sc.wqueue
		sc.wqueue = sc.wqspare[:0]
		sc.wqspare = nil
		sc.wmu.Unlock()
		// One writev drains the whole backlog. WriteTo consumes its
		// receiver, so it runs on a local header copy of the
		// writer-owned scratch vector — sc.wvec keeps addressing the
		// scratch backing array from index 0 for the next pass, and
		// batch keeps the chunk headers alive for recycling.
		netapi.CountStreamFlush(len(batch))
		sc.wvec = append(sc.wvec[:0], batch...)
		vec := sc.wvec
		_, err = vec.WriteTo(sc.c)
		prev = batch
	}
}

func (sc *streamConn) Close() error {
	sc.rt.stateMu.Lock()
	st := sc.state
	sc.state = connClosed
	owner := sc.owner
	sc.owner = nil
	if st == connParked {
		sc.rt.removeParkedLocked(sc)
		sc.unparkWrites()
	}
	sc.rt.stateMu.Unlock()
	if st == connClosed {
		return nil
	}
	if owner != nil {
		owner.forget(sc)
	}
	return sc.c.Close()
}
