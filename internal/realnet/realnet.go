// Package realnet implements netapi over real loopback sockets. It lets
// the same protocol stacks and bridges that run under the simulator run
// over the operating system's UDP and TCP on 127.0.0.1 — used by the
// examples and the starlinkd daemon.
//
// Substitution note (DESIGN.md §5): IP multicast is virtualised with an
// in-process group registry — joining a group binds a real ephemeral
// UDP port and registers it; sending to a group address fans out
// unicast datagrams to every member. Containers frequently lack
// multicast routes, and the paper's evaluation was single-machine, so
// the rendezvous semantics are preserved exactly while staying
// deployable anywhere.
//
// All handler callbacks are serialised through a single dispatcher
// mutex, giving protocol code the same single-threaded execution model
// as the simulator.
package realnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"starlink/internal/netapi"
)

// Runtime is a real-socket netapi runtime.
//
// Locking: dispatchMu serialises handler callbacks (the single
// dispatcher contract of netapi); stateMu guards the runtime's own
// tables and every socket/connection closed flag. Handlers run holding
// only dispatchMu, so they may freely call Send / After / Cancel /
// Close, which take only stateMu.
//
// Components such as the concurrent Automata Engine hand payloads off
// to worker goroutines; they report that work through the node's
// netapi.WorkTracker so RunUntil only evaluates its condition while no
// handed-off work is in flight (which also publishes the workers'
// writes to the condition).
type Runtime struct {
	dispatchMu sync.Mutex // held during every callback
	stateMu    sync.Mutex // guards timers, groups and closed flags
	waitCh     chan struct{}
	timers     map[netapi.TimerID]*time.Timer
	timerSeq   uint64
	groups     map[string][]*udpSocket // group "ip:port" -> members

	workMu   sync.Mutex
	inflight int
}

var _ netapi.Runtime = (*Runtime)(nil)

// New creates a runtime.
func New() *Runtime {
	return &Runtime{
		waitCh: make(chan struct{}, 1),
		timers: map[netapi.TimerID]*time.Timer{},
		groups: map[string][]*udpSocket{},
	}
}

// WorkAdd registers one unit of in-flight off-dispatcher work
// (netapi.WorkTracker).
func (rt *Runtime) WorkAdd() {
	rt.workMu.Lock()
	rt.inflight++
	rt.workMu.Unlock()
}

// WorkDone retires one unit of in-flight work and wakes RunUntil
// waiters (netapi.WorkTracker).
func (rt *Runtime) WorkDone() {
	rt.workMu.Lock()
	rt.inflight--
	rt.workMu.Unlock()
	select {
	case rt.waitCh <- struct{}{}:
	default:
	}
}

// idle reports whether no handed-off work is in flight; acquiring
// workMu publishes the finished workers' writes.
func (rt *Runtime) idle() bool {
	rt.workMu.Lock()
	defer rt.workMu.Unlock()
	return rt.inflight == 0
}

// dispatch runs fn under the dispatcher lock and wakes RunUntil waiters.
func (rt *Runtime) dispatch(fn func()) {
	rt.dispatchMu.Lock()
	fn()
	rt.dispatchMu.Unlock()
	select {
	case rt.waitCh <- struct{}{}:
	default:
	}
}

// NewNode returns a host bound to 127.0.0.1. The requested IP is kept
// as a label only; all real sockets live on loopback.
func (rt *Runtime) NewNode(ip string) (netapi.Node, error) {
	if ip == "" {
		ip = "127.0.0.1"
	}
	return &node{rt: rt, label: ip, owned: map[netapi.Closer]struct{}{}}, nil
}

// RunUntil waits (wall-clock) until cond holds or timeout elapses.
// cond is evaluated under the dispatcher lock.
func (rt *Runtime) RunUntil(cond func() bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if rt.idle() {
			rt.dispatchMu.Lock()
			ok := cond()
			rt.dispatchMu.Unlock()
			if ok {
				return nil
			}
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("realnet: RunUntil: timeout after %s", timeout)
		}
		wait := 10 * time.Millisecond
		if remain < wait {
			wait = remain
		}
		select {
		case <-rt.waitCh:
		case <-time.After(wait):
		}
	}
}

// Run sleeps for d of wall-clock time (events dispatch in background).
func (rt *Runtime) Run(d time.Duration) { time.Sleep(d) }

type node struct {
	rt    *Runtime
	label string

	// owned tracks the live sockets, listeners and dialed connections
	// this node opened, so Close can release them all. Entries remove
	// themselves when closed individually, keeping the set bounded by
	// the number of live endpoints rather than the churn.
	ownedMu sync.Mutex
	closed  bool
	owned   map[netapi.Closer]struct{}
}

// adopt registers a resource for teardown with the node. If the node
// is already closed the resource is closed immediately.
func (n *node) adopt(c netapi.Closer) {
	n.ownedMu.Lock()
	if n.closed {
		n.ownedMu.Unlock()
		_ = c.Close()
		return
	}
	n.owned[c] = struct{}{}
	n.ownedMu.Unlock()
}

// forget unregisters a resource that closed itself.
func (n *node) forget(c netapi.Closer) {
	n.ownedMu.Lock()
	delete(n.owned, c)
	n.ownedMu.Unlock()
}

// Close releases every socket, listener and dialed connection the node
// opened. Closing twice is a no-op.
func (n *node) Close() error {
	n.ownedMu.Lock()
	if n.closed {
		n.ownedMu.Unlock()
		return nil
	}
	n.closed = true
	owned := make([]netapi.Closer, 0, len(n.owned))
	for c := range n.owned {
		owned = append(owned, c)
	}
	n.owned = map[netapi.Closer]struct{}{}
	n.ownedMu.Unlock()
	for _, c := range owned {
		_ = c.Close()
	}
	return nil
}

var (
	_ netapi.Node        = (*node)(nil)
	_ netapi.WorkTracker = (*node)(nil)
)

func (n *node) IP() string { return "127.0.0.1" }

// WorkAdd / WorkDone expose the runtime's work tracker on the node
// (netapi.WorkTracker).
func (n *node) WorkAdd()  { n.rt.WorkAdd() }
func (n *node) WorkDone() { n.rt.WorkDone() }

func (n *node) Now() time.Time { return time.Now() }

func (n *node) After(d time.Duration, fn func()) netapi.TimerID {
	n.rt.stateMu.Lock()
	n.rt.timerSeq++
	id := netapi.TimerID(n.rt.timerSeq)
	n.rt.stateMu.Unlock()
	t := time.AfterFunc(d, func() {
		n.rt.stateMu.Lock()
		_, live := n.rt.timers[id]
		delete(n.rt.timers, id)
		n.rt.stateMu.Unlock()
		if !live {
			return // cancelled between fire and dispatch
		}
		n.rt.dispatch(fn)
	})
	n.rt.stateMu.Lock()
	n.rt.timers[id] = t
	n.rt.stateMu.Unlock()
	return id
}

func (n *node) Cancel(id netapi.TimerID) {
	n.rt.stateMu.Lock()
	defer n.rt.stateMu.Unlock()
	if t, ok := n.rt.timers[id]; ok {
		t.Stop()
		delete(n.rt.timers, id)
	}
}

// ---------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------

type udpSocket struct {
	rt      *Runtime
	owner   *node
	conn    *net.UDPConn
	addr    netapi.Addr
	handler netapi.PacketHandler
	groups  []string
	closed  bool
}

var _ netapi.UDPSocket = (*udpSocket)(nil)

func (n *node) OpenUDP(port int, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	if h == nil {
		return nil, fmt.Errorf("realnet: OpenUDP needs a handler")
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
	if err != nil {
		return nil, fmt.Errorf("realnet: %w", err)
	}
	local := conn.LocalAddr().(*net.UDPAddr)
	s := &udpSocket{
		rt:      n.rt,
		owner:   n,
		conn:    conn,
		addr:    netapi.Addr{IP: "127.0.0.1", Port: local.Port},
		handler: h,
	}
	n.adopt(s)
	go s.readLoop()
	return s, nil
}

func (n *node) JoinGroup(group netapi.Addr, h netapi.PacketHandler) (netapi.UDPSocket, error) {
	if !group.IsMulticast() {
		return nil, fmt.Errorf("realnet: %s is not a multicast group", group)
	}
	sock, err := n.OpenUDP(0, h)
	if err != nil {
		return nil, err
	}
	s := sock.(*udpSocket)
	key := group.String()
	n.rt.stateMu.Lock()
	n.rt.groups[key] = append(n.rt.groups[key], s)
	s.groups = append(s.groups, key)
	n.rt.stateMu.Unlock()
	return s, nil
}

func (s *udpSocket) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		src := netapi.Addr{IP: "127.0.0.1", Port: from.Port}
		s.rt.dispatch(func() {
			s.rt.stateMu.Lock()
			closed := s.closed
			s.rt.stateMu.Unlock()
			if closed {
				return
			}
			s.handler(netapi.Packet{From: src, To: s.addr, Data: data})
		})
	}
}

func (s *udpSocket) LocalAddr() netapi.Addr { return s.addr }

func (s *udpSocket) Send(to netapi.Addr, data []byte) error {
	if to.IsMulticast() {
		s.rt.stateMu.Lock()
		members := make([]*udpSocket, 0, len(s.rt.groups[to.String()]))
		for _, m := range s.rt.groups[to.String()] {
			if !m.closed {
				members = append(members, m)
			}
		}
		s.rt.stateMu.Unlock()
		for _, m := range members {
			dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: m.addr.Port}
			if _, err := s.conn.WriteToUDP(data, dst); err != nil {
				return fmt.Errorf("realnet: multicast to %s: %w", m.addr, err)
			}
		}
		return nil
	}
	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: to.Port}
	if _, err := s.conn.WriteToUDP(data, dst); err != nil {
		return fmt.Errorf("realnet: send to %s: %w", to, err)
	}
	return nil
}

func (s *udpSocket) Close() error {
	s.rt.stateMu.Lock()
	if s.closed {
		s.rt.stateMu.Unlock()
		return nil
	}
	s.closed = true
	for _, key := range s.groups {
		members := s.rt.groups[key]
		for i, m := range members {
			if m == s {
				s.rt.groups[key] = append(members[:i], members[i+1:]...)
				break
			}
		}
	}
	s.rt.stateMu.Unlock()
	s.owner.forget(s)
	return s.conn.Close()
}

// ---------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------

type listener struct {
	rt     *Runtime
	owner  *node
	ln     net.Listener
	closed bool
}

func (n *node) ListenStream(port int, accept netapi.ConnHandler, recv netapi.StreamHandler) (netapi.Closer, error) {
	if recv == nil {
		return nil, fmt.Errorf("realnet: ListenStream needs a recv handler")
	}
	ln, err := net.Listen("tcp4", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("realnet: %w", err)
	}
	l := &listener{rt: n.rt, owner: n, ln: ln}
	n.adopt(l)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			sc := newStreamConn(n.rt, c, recv)
			sc.owner = n
			n.adopt(sc)
			n.rt.dispatch(func() {
				if accept != nil {
					accept(sc)
				}
			})
			go sc.readLoop()
		}
	}()
	return l, nil
}

func (l *listener) Close() error {
	l.rt.stateMu.Lock()
	already := l.closed
	l.closed = true
	l.rt.stateMu.Unlock()
	if already {
		return nil
	}
	l.owner.forget(l)
	return l.ln.Close()
}

type streamConn struct {
	rt     *Runtime
	owner  *node // nil until adopted; accepted and dialed conns both register
	c      net.Conn
	recv   netapi.StreamHandler
	local  netapi.Addr
	remote netapi.Addr
	closed bool
}

var _ netapi.Conn = (*streamConn)(nil)

func newStreamConn(rt *Runtime, c net.Conn, recv netapi.StreamHandler) *streamConn {
	la := c.LocalAddr().(*net.TCPAddr)
	ra := c.RemoteAddr().(*net.TCPAddr)
	return &streamConn{
		rt: rt, c: c, recv: recv,
		local:  netapi.Addr{IP: "127.0.0.1", Port: la.Port},
		remote: netapi.Addr{IP: "127.0.0.1", Port: ra.Port},
	}
}

func (n *node) DialStream(to netapi.Addr, recv netapi.StreamHandler) (netapi.Conn, error) {
	if recv == nil {
		return nil, fmt.Errorf("realnet: DialStream needs a recv handler")
	}
	c, err := net.DialTimeout("tcp4", fmt.Sprintf("127.0.0.1:%d", to.Port), 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("realnet: dial %s: %w", to, err)
	}
	sc := newStreamConn(n.rt, c, recv)
	sc.owner = n
	n.adopt(sc)
	go sc.readLoop()
	return sc, nil
}

func (sc *streamConn) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, err := sc.c.Read(buf)
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			sc.rt.dispatch(func() { sc.recv(sc, data) })
		}
		if err != nil {
			sc.rt.dispatch(func() {
				sc.rt.stateMu.Lock()
				already := sc.closed
				sc.closed = true
				sc.rt.stateMu.Unlock()
				if !already {
					if sc.owner != nil {
						sc.owner.forget(sc)
					}
					sc.recv(sc, nil)
				}
			})
			return
		}
	}
}

func (sc *streamConn) LocalAddr() netapi.Addr  { return sc.local }
func (sc *streamConn) RemoteAddr() netapi.Addr { return sc.remote }

func (sc *streamConn) Send(data []byte) error {
	if _, err := sc.c.Write(data); err != nil {
		return fmt.Errorf("realnet: %w", err)
	}
	return nil
}

func (sc *streamConn) Close() error {
	sc.rt.stateMu.Lock()
	already := sc.closed
	sc.closed = true
	sc.rt.stateMu.Unlock()
	if already {
		return nil
	}
	if sc.owner != nil {
		sc.owner.forget(sc)
	}
	return sc.c.Close()
}
