package netengine

import (
	"strings"
	"testing"
	"time"

	"starlink/internal/automata"
	"starlink/internal/mdl"
	"starlink/internal/netapi"
	"starlink/internal/parser"
	"starlink/internal/simnet"
)

func color(attrs ...automata.Attr) automata.Color { return automata.NewColor(attrs...) }

func udpMulticastColor(group string, port string) automata.Color {
	return color(
		automata.Attr{Key: automata.AttrTransport, Value: "udp"},
		automata.Attr{Key: automata.AttrPort, Value: port},
		automata.Attr{Key: automata.AttrMulticast, Value: "yes"},
		automata.Attr{Key: automata.AttrGroup, Value: group},
	)
}

func TestSchemeOf(t *testing.T) {
	s, err := SchemeOf(udpMulticastColor("239.1.2.3", "427"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Transport != "udp" || !s.Multicast || s.Group != "239.1.2.3" || s.Port != 427 {
		t.Fatalf("s = %+v", s)
	}
	// Convergence attribute.
	c := color(
		automata.Attr{Key: automata.AttrTransport, Value: "udp"},
		automata.Attr{Key: automata.AttrMulticast, Value: "yes"},
		automata.Attr{Key: automata.AttrGroup, Value: "239.1.1.1"},
		automata.Attr{Key: "convergence", Value: "6250"},
	)
	s, err = SchemeOf(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Convergence != 6250*time.Millisecond {
		t.Fatalf("convergence = %v", s.Convergence)
	}
	// Errors.
	if _, err := SchemeOf(color(automata.Attr{Key: automata.AttrTransport, Value: "carrier-pigeon"})); err == nil {
		t.Fatal("bad transport should fail")
	}
	if _, err := SchemeOf(color(automata.Attr{Key: automata.AttrMulticast, Value: "yes"})); err == nil {
		t.Fatal("multicast without group should fail")
	}
	// Default transport is udp.
	s, err = SchemeOf(color(automata.Attr{Key: automata.AttrPort, Value: "9"}))
	if err != nil || s.Transport != "udp" {
		t.Fatalf("s = %+v err = %v", s, err)
	}
}

func TestListenMulticastAndReply(t *testing.T) {
	sim := simnet.New()
	bridgeNode, _ := sim.NewNode("10.0.0.5")
	cliNode, _ := sim.NewNode("10.0.0.1")
	e := New(bridgeNode)
	if e.Node() != bridgeNode {
		t.Fatal("Node() broken")
	}

	var got string
	closer, err := e.Listen(udpMulticastColor("239.9.9.9", "500"), nil, func(data []byte, src Source, lease *netapi.Buffer) {
		got = string(data)
		if err := src.Reply([]byte("pong")); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	var reply string
	sock, _ := cliNode.OpenUDP(0, func(p netapi.Packet) { reply = string(p.Data) })
	if err := sock.Send(netapi.Addr{IP: "239.9.9.9", Port: 500}, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if got != "ping" || reply != "pong" {
		t.Fatalf("got=%q reply=%q", got, reply)
	}
}

func TestListenPlainUDP(t *testing.T) {
	sim := simnet.New()
	bridgeNode, _ := sim.NewNode("10.0.0.5")
	cliNode, _ := sim.NewNode("10.0.0.1")
	e := New(bridgeNode)
	c := color(
		automata.Attr{Key: automata.AttrTransport, Value: "udp"},
		automata.Attr{Key: automata.AttrPort, Value: "4100"},
		automata.Attr{Key: automata.AttrMulticast, Value: "no"},
	)
	var got string
	if _, err := e.Listen(c, nil, func(data []byte, src Source, lease *netapi.Buffer) { got = string(data) }); err != nil {
		t.Fatal(err)
	}
	sock, _ := cliNode.OpenUDP(0, func(netapi.Packet) {})
	if err := sock.Send(netapi.Addr{IP: "10.0.0.5", Port: 4100}, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if got != "direct" {
		t.Fatalf("got = %q", got)
	}
}

const httpSpec = `
<MDL protocol="HTTP" dialect="text">
 <Types><Method>String</Method><URI>String</URI><Version>String</Version></Types>
 <Header type="HTTP"><Method>32</Method><URI>32</URI><Version>13,10</Version><Fields>13,10:58</Fields></Header>
 <Message type="HTTPGet"><Rule>Method=GET</Rule></Message>
 <Message type="HTTPOk" body="raw"><Rule>Method=HTTP/1.1</Rule></Message>
</MDL>`

func tcpColor(port string) automata.Color {
	return color(
		automata.Attr{Key: automata.AttrTransport, Value: "tcp"},
		automata.Attr{Key: automata.AttrPort, Value: port},
		automata.Attr{Key: automata.AttrMulticast, Value: "no"},
	)
}

func TestTCPListenAndRequesterFraming(t *testing.T) {
	sim := simnet.New()
	bridgeNode, _ := sim.NewNode("10.0.0.5")
	cliNode, _ := sim.NewNode("10.0.0.1")
	spec, err := mdl.ParseXMLString(httpSpec)
	if err != nil {
		t.Fatal(err)
	}
	framer, err := parser.NewFramer(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Bridge-side TCP listener answering framed GETs.
	srv := New(bridgeNode)
	served := 0
	if _, err := srv.Listen(tcpColor("8080"), framer, func(data []byte, src Source, lease *netapi.Buffer) {
		served++
		if err := src.Reply([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi")); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Client-side requester dialing the listener.
	cli := New(cliNode)
	var response string
	req, err := cli.NewRequester(tcpColor("8080"), netapi.Addr{IP: "10.0.0.5", Port: 8080}, framer,
		func(data []byte, src Source, lease *netapi.Buffer) { response = string(data) })
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()
	if err := req.Send([]byte("GET /x HTTP/1.1\r\nHost: b\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if served != 1 {
		t.Fatalf("served = %d", served)
	}
	if !strings.Contains(response, "200 OK") || !strings.HasSuffix(response, "hi") {
		t.Fatalf("response = %q", response)
	}
}

func TestTCPListenerNeedsFramer(t *testing.T) {
	sim := simnet.New()
	n, _ := sim.NewNode("10.0.0.5")
	e := New(n)
	if _, err := e.Listen(tcpColor("8081"), nil, func([]byte, Source, *netapi.Buffer) {}); err == nil {
		t.Fatal("tcp listen without framer should fail")
	}
	if _, err := e.NewRequester(tcpColor("8081"), netapi.Addr{IP: "10.0.0.5", Port: 8081}, nil, func([]byte, Source, *netapi.Buffer) {}); err == nil {
		t.Fatal("tcp requester without framer should fail")
	}
}

func TestRequesterUDPMulticastDefaultDest(t *testing.T) {
	sim := simnet.New()
	bridgeNode, _ := sim.NewNode("10.0.0.5")
	memberNode, _ := sim.NewNode("10.0.0.9")
	var got string
	var member netapi.UDPSocket
	member, err := memberNode.JoinGroup(netapi.Addr{IP: "239.5.5.5", Port: 700}, func(p netapi.Packet) {
		got = string(p.Data)
		_ = member.Send(p.From, []byte("resp"))
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(bridgeNode)
	var resp string
	r, err := e.NewRequester(udpMulticastColor("239.5.5.5", "700"), netapi.Addr{}, nil,
		func(data []byte, src Source, lease *netapi.Buffer) { resp = string(data) })
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Send([]byte("query")); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if got != "query" || resp != "resp" {
		t.Fatalf("got=%q resp=%q", got, resp)
	}
}

func TestRequesterUDPUnicastNeedsDest(t *testing.T) {
	sim := simnet.New()
	n, _ := sim.NewNode("10.0.0.5")
	e := New(n)
	c := color(
		automata.Attr{Key: automata.AttrTransport, Value: "udp"},
		automata.Attr{Key: automata.AttrMulticast, Value: "no"},
	)
	if _, err := e.NewRequester(c, netapi.Addr{}, nil, func([]byte, Source, *netapi.Buffer) {}); err == nil {
		t.Fatal("unicast requester without dest should fail")
	}
}

func TestTCPRequesterConnectionRefused(t *testing.T) {
	sim := simnet.New()
	n, _ := sim.NewNode("10.0.0.5")
	spec, _ := mdl.ParseXMLString(httpSpec)
	framer, _ := parser.NewFramer(spec)
	e := New(n)
	if _, err := e.NewRequester(tcpColor("1"), netapi.Addr{IP: "10.0.0.99", Port: 1}, framer, func([]byte, Source, *netapi.Buffer) {}); err == nil {
		t.Fatal("dial to nowhere should fail")
	}
}

func TestSourceReplyUnknown(t *testing.T) {
	var s Source
	if err := s.Reply([]byte("x")); err == nil {
		t.Fatal("empty source reply should fail")
	}
}
