// Package netengine implements Starlink's Network Engine (paper Fig. 6):
// it realises the low-level network semantics captured by automaton
// colors. Given a color — transport protocol, port, unicast/multicast,
// sync/async mode, group — it opens the right kind of endpoint:
//
//   - Listen binds the endpoints for server-role (entry) states:
//     multicast group membership, plain UDP port, or a TCP listener
//     with MDL-driven framing;
//   - NewRequester opens the client-role channel used when the bridge
//     itself issues requests: an ephemeral UDP socket (multicast or
//     unicast) or a TCP connection to a destination supplied by a
//     setHost λ action.
//
// Every inbound payload is delivered with a Source handle that Reply
// can use to answer the exact peer — the mechanism behind the paper's
// transparent replies to legacy clients — and a routing key combining
// the endpoint's color with the peer address, which the concurrent
// Automata Engine uses to shard sessions.
//
// Concurrency: the engine opens its endpoints on a detached node view
// (netapi.Detach), so distinct endpoints dispatch in parallel while
// callbacks for one endpoint stay serial — framing state is owned per
// endpoint and needs no locking on the delivery path. Reply/Send may
// be called from any goroutine (the engine replies from per-session
// goroutines).
//
// Buffer ownership: datagram payloads are handed to the Handler with
// the leased receive buffer backing them (nil for framed stream
// payloads and simulated deliveries, which are heap-owned and
// immutable). A handler that keeps the bytes past the callback keeps
// the lease and must Release it exactly once.
package netengine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/netapi"
	"starlink/internal/parser"
)

// Source identifies where an inbound payload came from, with enough
// context to reply and to route the payload to a session.
type Source struct {
	// Addr is the peer's address.
	Addr netapi.Addr
	// Batch is the receive-batch size the payload arrived in
	// (netapi.Packet.Batch): >1 when a batched receive syscall carried
	// it, 1 for per-datagram reads, 0 for streams and untracked
	// runtimes. Feeds the engine's batched-ingest counters.
	Batch int
	// colorKey is the §III-B key of the color the payload arrived on.
	colorKey string
	// sock is the UDP socket the payload arrived on (nil for streams).
	sock netapi.UDPSocket
	// conn is the stream connection (nil for datagrams).
	conn netapi.Conn
}

// RoutingKey identifies the (color, peer) pair a payload belongs to —
// the session-table key of the concurrent engine: payloads from the
// same legacy client socket on the same colored endpoint always map to
// the same key.
func (s Source) RoutingKey() string { return s.colorKey + "|" + s.Addr.String() }

// IsStream reports whether the payload arrived on a stream connection.
// A connected peer has already committed to a session-oriented
// exchange, which the ingest lane classifier weighs above datagram
// chatter of unknown intent.
func (s Source) IsStream() bool { return s.conn != nil }

// Reply sends data back to the source peer: unicast for datagrams, on
// the same connection for streams.
func (s Source) Reply(data []byte) error {
	switch {
	case s.conn != nil:
		return s.conn.Send(data)
	case s.sock != nil:
		return s.sock.Send(s.Addr, data)
	default:
		return fmt.Errorf("netengine: reply to unknown source")
	}
}

// Handler consumes inbound payloads (whole datagrams, or framed
// messages on streams). lease is the pooled buffer backing data when
// the runtime delivered it leased: the handler owns it and must
// Release it exactly once when done with data. A nil lease means data
// is heap-owned and immutable — safe to keep, nothing to release.
// Handlers for one endpoint run serially; distinct endpoints may
// invoke their handlers in parallel.
type Handler func(data []byte, src Source, lease *netapi.Buffer)

// splitFrames appends a stream chunk to *buf and extracts every
// complete frame. On an unframeable remainder it resets *buf — so
// later healthy data is not wedged behind a corrupt prefix — and
// reports ok=false; frames completed before the error are still
// returned. Callers hold their buffer lock and deliver the returned
// frames after releasing it.
func splitFrames(framer *parser.Framer, buf *[]byte, data []byte) (frames [][]byte, ok bool) {
	*buf = append(*buf, data...)
	for {
		n, err := framer.Frame(*buf)
		if err != nil {
			*buf = nil
			return frames, false
		}
		if n == 0 {
			return frames, true
		}
		frames = append(frames, (*buf)[:n])
		*buf = (*buf)[n:]
	}
}

// Engine opens colored endpoints on one node (the bridge host).
type Engine struct {
	base    netapi.Node // the node as handed in (identity, ownership)
	node    netapi.Node // detached view used to open requester endpoints
	ingress netapi.Node // detached (and optionally gated) view for entry listeners
}

// Option configures an Engine.
type Option func(*Engine)

// WithGate puts every entry listener the engine opens behind the flow
// gate (netapi.FlowLimiter): while the gate is blocked — the ingest
// queue downstream crossed its high watermark — the listeners' read
// loops pause instead of piling payloads onto the queue. Requester
// endpoints are never gated: responses to the bridge's own in-flight
// requests must keep flowing for sessions to finish and drain the
// backlog that caused the pause.
func WithGate(g *netapi.FlowGate) Option {
	return func(e *Engine) { e.ingress = netapi.Gated(e.node, g) }
}

// New creates an engine on the node. The engine's endpoints are opened
// through a detached view of the node when the runtime supports
// per-endpoint parallel dispatch: the Automata Engine and the
// provisioning dispatcher are thread-safe, so serialising their
// entry listeners against each other would only re-impose the global
// dispatcher bottleneck this layer retired.
func New(node netapi.Node, opts ...Option) *Engine {
	e := &Engine{base: node, node: netapi.Detach(node)}
	e.ingress = e.node
	for _, o := range opts {
		o(e)
	}
	return e
}

// Node returns the bridge host node.
func (e *Engine) Node() netapi.Node { return e.base }

// ColorScheme extracts the transport decisions from a color.
type ColorScheme struct {
	Transport string // "udp" or "tcp"
	Port      int
	Multicast bool
	Group     string
	// Convergence is how long a requester-side receive collects
	// responses before proceeding (the SLP multicast convergence
	// window); zero means advance on first response.
	Convergence time.Duration
}

// SchemeOf interprets a color's attributes.
func SchemeOf(c automata.Color) (ColorScheme, error) {
	var s ColorScheme
	s.Transport, _ = c.Get(automata.AttrTransport)
	if s.Transport == "" {
		s.Transport = "udp"
	}
	if s.Transport != "udp" && s.Transport != "tcp" {
		return s, fmt.Errorf("netengine: unsupported transport %q", s.Transport)
	}
	s.Port, _ = c.GetInt(automata.AttrPort)
	if mc, _ := c.Get(automata.AttrMulticast); mc == "yes" {
		s.Multicast = true
		g, ok := c.Get(automata.AttrGroup)
		if !ok {
			return s, fmt.Errorf("netengine: multicast color without group: %s", c)
		}
		s.Group = g
	}
	if ms, ok := c.GetInt("convergence"); ok {
		s.Convergence = time.Duration(ms) * time.Millisecond
	}
	return s, nil
}

// Listen opens the entry endpoint for a server-role color. framer may
// be nil for datagram transports.
func (e *Engine) Listen(c automata.Color, framer *parser.Framer, h Handler) (netapi.Closer, error) {
	scheme, err := SchemeOf(c)
	if err != nil {
		return nil, err
	}
	colorKey := c.Key()
	switch {
	case scheme.Transport == "udp" && scheme.Multicast:
		group := netapi.Addr{IP: scheme.Group, Port: scheme.Port}
		// The handler needs the socket it is registered on (to reply),
		// but the socket only exists once JoinGroup returns — and under
		// per-endpoint dispatch a datagram may race the assignment. An
		// atomic cell closes the data race; loadSock waits out the
		// nanoseconds-wide bind window so even the very first datagram
		// gets a Source that can Reply.
		cell := new(atomic.Value)
		sock, err := e.ingress.JoinGroup(group, func(pkt netapi.Packet) {
			h(pkt.Data, Source{Addr: pkt.From, Batch: pkt.Batch, colorKey: colorKey, sock: loadSock(cell)}, pkt.TakeLease())
		})
		if err != nil {
			return nil, fmt.Errorf("netengine: listen %s: %w", c, err)
		}
		cell.Store(sock)
		return sock, nil
	case scheme.Transport == "udp":
		cell := new(atomic.Value)
		sock, err := e.ingress.OpenUDP(scheme.Port, func(pkt netapi.Packet) {
			h(pkt.Data, Source{Addr: pkt.From, Batch: pkt.Batch, colorKey: colorKey, sock: loadSock(cell)}, pkt.TakeLease())
		})
		if err != nil {
			return nil, fmt.Errorf("netengine: listen %s: %w", c, err)
		}
		cell.Store(sock)
		return sock, nil
	default: // tcp
		if framer == nil {
			return nil, fmt.Errorf("netengine: tcp listen %s needs a framer", c)
		}
		// Framing state is owned per connection: chunks for one
		// connection arrive serially, so the accumulation buffer needs
		// no lock of its own; the sync.Map only mediates the
		// conn→state lookup across parallel connections.
		var buffers sync.Map // netapi.Conn -> *connFraming
		l, err := e.ingress.ListenStream(scheme.Port, nil, func(conn netapi.Conn, data []byte) {
			if data == nil {
				buffers.Delete(conn)
				return
			}
			v, ok := buffers.Load(conn)
			if !ok {
				// Only a connection's first chunk allocates its state;
				// LoadOrStore unconditionally would allocate per chunk.
				v, _ = buffers.LoadOrStore(conn, &connFraming{})
			}
			st := v.(*connFraming)
			frames, ok := splitFrames(framer, &st.buf, data)
			if !ok {
				buffers.Delete(conn)
			}
			for _, frame := range frames {
				h(frame, Source{Addr: conn.RemoteAddr(), colorKey: colorKey, conn: conn}, nil)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("netengine: listen %s: %w", c, err)
		}
		return l, nil
	}
}

// connFraming is one stream connection's frame-accumulation state,
// touched only by that connection's serial delivery callbacks.
type connFraming struct {
	buf []byte
}

// loadSock resolves the socket a handler is running on. The cell is
// stored immediately after the successful open returns; a datagram
// dispatched inside that window (possible under per-endpoint parallel
// dispatch) briefly yields until the store lands, so Reply always has
// its socket. An open that fails never runs the handler, so the wait
// cannot be unbounded.
func loadSock(cell *atomic.Value) netapi.UDPSocket {
	for {
		if s, ok := cell.Load().(netapi.UDPSocket); ok {
			return s
		}
		runtime.Gosched()
	}
}

// Requester is a client-role channel: the bridge's own outgoing
// request path for one protocol within one session.
type Requester struct {
	scheme ColorScheme
	dest   netapi.Addr
	node   netapi.Node
	sock   netapi.UDPSocket
	conn   netapi.Conn

	// frMu guards the stream framing state: delivery mutates it from
	// the connection's serial domain, while Close inspects it from the
	// session goroutine to decide whether the connection is at a clean
	// frame boundary and can be parked for reuse.
	frMu  sync.Mutex
	frBuf []byte
}

// NewRequester opens a requester channel for the color. dest overrides
// the destination (required for TCP, where the address comes from a
// setHost λ action; optional for UDP where the color's group/port is
// the default destination).
func (e *Engine) NewRequester(c automata.Color, dest netapi.Addr, framer *parser.Framer, h Handler) (*Requester, error) {
	scheme, err := SchemeOf(c)
	if err != nil {
		return nil, err
	}
	r := &Requester{scheme: scheme, node: e.node}
	colorKey := c.Key()
	switch scheme.Transport {
	case "udp":
		switch {
		case !dest.IsZero():
			r.dest = dest
		case scheme.Multicast:
			r.dest = netapi.Addr{IP: scheme.Group, Port: scheme.Port}
		default:
			return nil, fmt.Errorf("netengine: requester %s needs a destination", c)
		}
		cell := new(atomic.Value)
		sock, err := e.node.OpenUDP(0, func(pkt netapi.Packet) {
			h(pkt.Data, Source{Addr: pkt.From, Batch: pkt.Batch, colorKey: colorKey, sock: loadSock(cell)}, pkt.TakeLease())
		})
		if err != nil {
			return nil, fmt.Errorf("netengine: requester %s: %w", c, err)
		}
		cell.Store(sock)
		r.sock = sock
		return r, nil
	default: // tcp
		if dest.IsZero() {
			return nil, fmt.Errorf("netengine: tcp requester %s needs a setHost destination", c)
		}
		if framer == nil {
			return nil, fmt.Errorf("netengine: tcp requester %s needs a framer", c)
		}
		r.dest = dest
		conn, err := e.node.DialStream(dest, func(conn netapi.Conn, data []byte) {
			if data == nil {
				return
			}
			r.frMu.Lock()
			frames, _ := splitFrames(framer, &r.frBuf, data)
			r.frMu.Unlock()
			for _, frame := range frames {
				h(frame, Source{Addr: conn.RemoteAddr(), colorKey: colorKey, conn: conn}, nil)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("netengine: requester dial %s: %w", dest, err)
		}
		r.conn = conn
		return r, nil
	}
}

// Send transmits a request on the channel.
func (r *Requester) Send(data []byte) error {
	if r.conn != nil {
		return r.conn.Send(data)
	}
	return r.sock.Send(r.dest, data)
}

// Convergence returns the color's response-collection window.
func (r *Requester) Convergence() time.Duration { return r.scheme.Convergence }

// LocalAddr returns the channel's local socket address — the source
// address peers (and multicast group members) see on its requests.
func (r *Requester) LocalAddr() netapi.Addr {
	if r.conn != nil {
		return r.conn.LocalAddr()
	}
	if r.sock != nil {
		return r.sock.LocalAddr()
	}
	return netapi.Addr{}
}

// EgressTable is a concurrent set of the local addresses a bridge
// deployment currently sends requests from. A multi-case dispatcher
// consults it on every inbound entry payload: a payload whose source
// is one of our own requester sockets is the bridge hearing its own
// multicast request, and bridging it again through an
// opposite-direction case would loop traffic forever.
type EgressTable struct {
	mu    sync.RWMutex
	addrs map[netapi.Addr]int
}

// NewEgressTable returns an empty table.
func NewEgressTable() *EgressTable {
	return &EgressTable{addrs: map[netapi.Addr]int{}}
}

// Add registers a local egress address (refcounted).
func (t *EgressTable) Add(a netapi.Addr) {
	if a.IsZero() {
		return
	}
	t.mu.Lock()
	t.addrs[a]++
	t.mu.Unlock()
}

// Remove unregisters one registration of the address.
func (t *EgressTable) Remove(a netapi.Addr) {
	if a.IsZero() {
		return
	}
	t.mu.Lock()
	if n := t.addrs[a]; n <= 1 {
		delete(t.addrs, a)
	} else {
		t.addrs[a] = n - 1
	}
	t.mu.Unlock()
}

// Contains reports whether the address is a registered egress source.
func (t *EgressTable) Contains(a netapi.Addr) bool {
	t.mu.RLock()
	_, ok := t.addrs[a]
	t.mu.RUnlock()
	return ok
}

// Close releases the channel. A stream channel whose inbound side sits
// at a clean frame boundary is parked in the runtime's dial-reuse pool
// (netapi.ConnParker) instead of torn down, so the next session's
// requester to the same destination skips the TCP handshake — the
// client-side connection reuse of the NewRequester path.
func (r *Requester) Close() error {
	if r.conn != nil {
		conn := r.conn
		r.conn = nil
		r.frMu.Lock()
		clean := len(r.frBuf) == 0
		r.frMu.Unlock()
		if clean {
			if parker, ok := r.node.(netapi.ConnParker); ok && parker.ParkConn(conn) {
				return nil
			}
		}
		return conn.Close()
	}
	if r.sock != nil {
		return r.sock.Close()
	}
	return nil
}
