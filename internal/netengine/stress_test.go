package netengine

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlink/internal/mdl"
	"starlink/internal/netapi"
	"starlink/internal/parser"
	"starlink/internal/realnet"
)

// Many per-session goroutines replying on one realnet stream
// connection while the peer keeps sending: the engine's sessions do
// exactly this (Reply from session goroutines, entry payloads arriving
// concurrently), so the conn's write coalescing and the framer's
// reassembly must hold up under -race and deliver every frame intact.
func TestConcurrentReplySendOneStreamConn(t *testing.T) {
	rt := realnet.New()
	srvNode, _ := rt.NewNode("10.0.0.5")
	cliNode, _ := rt.NewNode("10.0.0.1")
	spec, err := mdl.ParseXMLString(httpSpec)
	if err != nil {
		t.Fatal(err)
	}
	framer, err := parser.NewFramer(spec)
	if err != nil {
		t.Fatal(err)
	}

	const (
		repliers   = 16
		perReplier = 50
		requests   = 100
	)
	reply := []byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi")

	srv := New(srvNode)
	var (
		mu       sync.Mutex
		src      *Source
		srcReady = make(chan struct{})
		served   atomic.Int64
	)
	closer, err := srv.Listen(tcpColor("0"), framer, func(data []byte, s Source, lease *netapi.Buffer) {
		served.Add(1)
		mu.Lock()
		if src == nil {
			cp := s
			src = &cp
			close(srcReady)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	addr := closer.(interface{ Addr() netapi.Addr }).Addr()

	cli := New(cliNode)
	var receivedFrames atomic.Int64
	req, err := cli.NewRequester(tcpColor("0"), netapi.Addr{IP: "10.0.0.5", Port: addr.Port}, framer,
		func(data []byte, s Source, lease *netapi.Buffer) {
			if !strings.HasSuffix(string(data), "hi") {
				t.Errorf("corrupt frame: %q", data)
			}
			receivedFrames.Add(1)
		})
	if err != nil {
		t.Fatal(err)
	}
	defer req.Close()

	get := []byte("GET /x HTTP/1.1\r\nHost: b\r\n\r\n")
	if err := req.Send(get); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srcReady:
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the first request")
	}

	// Hammer the one connection from both directions at once.
	var wg sync.WaitGroup
	for i := 0; i < repliers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perReplier; j++ {
				if err := src.Reply(reply); err != nil {
					t.Errorf("reply: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < requests/4; j++ {
				if err := req.Send(get); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	wantReplies := int64(repliers * perReplier)
	wantServed := int64(1 + requests)
	err = rt.RunUntil(func() bool {
		return receivedFrames.Load() == wantReplies && served.Load() == wantServed
	}, 10*time.Second)
	if err != nil {
		t.Fatalf("frames=%d/%d served=%d/%d: %v",
			receivedFrames.Load(), wantReplies, served.Load(), wantServed, err)
	}
}
