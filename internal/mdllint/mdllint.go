// Package mdllint statically verifies Starlink model directories:
// MDL specifications, k-colored automata and merged automata, loaded
// over the builtins exactly as starlinkd -models would load them.
//
// The checks are organised as a single rule registry with two
// strictness tiers. The schema tier is what `mdlc validate` has always
// run — the model must load and every case must compile end to end.
// The lint tier adds rules for model defects that load-time validation
// accepts but that fail (or silently misbehave) at bridge runtime:
// automaton states no execution can leave, transition messages with no
// MDL definition, translation logic addressing fields that do not
// exist, message rules that shadow each other or can never match,
// field widths the wire codec cannot round-trip, and dispatcher
// discriminator collisions between cases sharing a network color.
package mdllint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"starlink/internal/automata"
	"starlink/internal/mdl"
	"starlink/internal/message"
	"starlink/internal/provision"
	"starlink/internal/registry"
	"starlink/internal/translation"
)

// Severity grades a diagnostic.
type Severity int

// Severity levels, in increasing order of gravity. Info marks
// conditions the runtime handles deliberately (counted ambiguity);
// Warning marks conditions the linter cannot prove safe; Error marks
// defects that will fail or misbehave at runtime.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String renders the conventional lowercase level name.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Tier selects how much of the rule registry runs.
type Tier int

// Tiers. TierSchema is the `mdlc validate` contract: models load and
// cases compile. TierLint additionally runs every lint rule.
const (
	TierSchema Tier = iota
	TierLint
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Rule is the reporting rule's name.
	Rule string
	// Severity grades the finding.
	Severity Severity
	// Model names the model the finding is about (protocol, automaton
	// model name, case name or directory).
	Model string
	// Message is the human-readable description.
	Message string
}

// String renders "error: rule: model: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Severity, d.Rule, d.Model, d.Message)
}

// Context is the shared state rules run against: the registry after
// the directory load, plus the load outcome itself.
type Context struct {
	Reg *registry.Registry
	// Dir is the linted model directory.
	Dir string
	// Load is the directory load result (valid when LoadErr is nil).
	Load provision.LoadResult
	// LoadErr is the directory load failure, if any. Models applied
	// before the failing file stay applied, so lint rules still run
	// over the partial state.
	LoadErr error
}

// Rule is one named check.
type Rule struct {
	Name string
	Tier Tier
	// Doc is a one-line description for listings and documentation.
	Doc string
	Run func(*Context) []Diagnostic
}

// Rules returns the full registry in execution order. The first two
// rules form the schema tier (the historical `mdlc validate`); the
// rest are lint-tier.
func Rules() []Rule {
	return []Rule{
		{
			Name: "model-load",
			Tier: TierSchema,
			Doc:  "every document in the directory parses and validates",
			Run:  ruleModelLoad,
		},
		{
			Name: "case-compile",
			Tier: TierSchema,
			Doc:  "every merged case compiles end to end (program, entries, codecs)",
			Run:  ruleCaseCompile,
		},
		{
			Name: "unknown-message",
			Tier: TierLint,
			Doc:  "automaton transitions only use messages their protocol's MDL defines",
			Run:  ruleUnknownMessage,
		},
		{
			Name: "dead-end-state",
			Tier: TierLint,
			Doc:  "every non-final state has an outgoing transition or δ-transition",
			Run:  ruleDeadEndState,
		},
		{
			Name: "translation-field",
			Tier: TierLint,
			Doc:  "translation logic and λ actions address existing messages and fields",
			Run:  ruleTranslationField,
		},
		{
			Name: "shadowed-message",
			Tier: TierLint,
			Doc:  "no two messages of a protocol share a discriminator value",
			Run:  ruleShadowedMessage,
		},
		{
			Name: "unmatchable-rule",
			Tier: TierLint,
			Doc:  "every message rule value is representable in its header field",
			Run:  ruleUnmatchableRule,
		},
		{
			Name: "lossy-roundtrip",
			Tier: TierLint,
			Doc:  "every fixed-width field can round-trip through the wire codec",
			Run:  ruleLossyRoundtrip,
		},
		{
			Name: "discriminator-collision",
			Tier: TierLint,
			Doc:  "cases sharing an entry color have statically disjoint discriminators",
			Run:  ruleDiscriminatorCollision,
		},
	}
}

// Run loads dir over the builtin models and executes every rule at or
// below the requested tier. The returned diagnostics are ordered by
// rule registration order; the error covers only infrastructure
// failures (the builtin registry itself broken) — model problems are
// diagnostics, not errors.
func Run(dir string, tier Tier) (*Context, []Diagnostic, error) {
	reg, err := registry.Builtin()
	if err != nil {
		return nil, nil, err
	}
	ctx := &Context{Reg: reg, Dir: dir}
	ctx.Load, ctx.LoadErr = provision.LoadDir(reg, dir)
	var diags []Diagnostic
	for _, r := range Rules() {
		if r.Tier > tier {
			continue
		}
		diags = append(diags, r.Run(ctx)...)
	}
	return ctx, diags, nil
}

// MaxSeverity returns the highest severity present, and false when
// there are no diagnostics.
func MaxSeverity(diags []Diagnostic) (Severity, bool) {
	if len(diags) == 0 {
		return SevInfo, false
	}
	max := SevInfo
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// ---- schema tier ----

func ruleModelLoad(ctx *Context) []Diagnostic {
	if ctx.LoadErr == nil {
		return nil
	}
	return []Diagnostic{{
		Rule:     "model-load",
		Severity: SevError,
		Model:    ctx.Dir,
		Message:  ctx.LoadErr.Error(),
	}}
}

func ruleCaseCompile(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	for _, name := range ctx.Reg.MergedNames() {
		if _, err := ctx.Reg.Compiled(name); err != nil {
			diags = append(diags, Diagnostic{
				Rule:     "case-compile",
				Severity: SevError,
				Model:    name,
				Message:  err.Error(),
			})
		}
	}
	return diags
}

// ---- lint tier ----

// specs returns the loaded MDL specs keyed by protocol.
func specs(ctx *Context) map[string]*mdl.Spec {
	out := map[string]*mdl.Spec{}
	for _, p := range ctx.Reg.Protocols() {
		if s, err := ctx.Reg.Spec(p); err == nil {
			out[p] = s
		}
	}
	return out
}

// findMessage locates an abstract message definition across all loaded
// specs (abstract message names are globally unique in practice; the
// merged-automaton validator relies on the same lookup).
func findMessage(specs map[string]*mdl.Spec, name string) (*mdl.MessageDef, *mdl.Spec) {
	for _, s := range specs {
		if d, ok := s.MessageByName(name); ok {
			return d, s
		}
	}
	return nil, nil
}

// ruleUnknownMessage flags automaton transitions whose message has no
// definition in the protocol's MDL. Nothing at load or compile time
// checks this pairing; the failure otherwise surfaces mid-bridge when
// the engine asks the codec to parse or compose the unknown message.
func ruleUnknownMessage(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	for _, n := range ctx.Reg.AutomatonNames() {
		a, err := ctx.Reg.Automaton(n)
		if err != nil {
			continue
		}
		spec, err := ctx.Reg.Spec(a.Protocol)
		if err != nil {
			diags = append(diags, Diagnostic{
				Rule:     "unknown-message",
				Severity: SevError,
				Model:    n,
				Message:  fmt.Sprintf("automaton protocol %q has no MDL loaded", a.Protocol),
			})
			continue
		}
		for _, t := range a.Transitions {
			if _, ok := spec.MessageByName(t.Message); !ok {
				diags = append(diags, Diagnostic{
					Rule:     "unknown-message",
					Severity: SevError,
					Model:    n,
					Message: fmt.Sprintf("transition %s -> %s uses message %q, which MDL %s does not define",
						t.From, t.To, t.Message, a.Protocol),
				})
			}
		}
	}
	return diags
}

// ruleDeadEndState flags non-final states no execution can leave:
// no outgoing transition in the automaton and no δ-transition leaving
// the state in any loaded case. Automaton validation guarantees
// reachability but not liveness — a session parked in such a state
// holds its color's network resources forever.
func ruleDeadEndState(ctx *Context) []Diagnostic {
	// δ sources, by automaton pointer (the registry hands every merged
	// case the same shared *Automaton it serves standalone).
	deltaOut := map[*automata.Automaton]map[string]bool{}
	for _, name := range ctx.Reg.MergedNames() {
		m, err := ctx.Reg.Merged(name)
		if err != nil {
			continue
		}
		for _, d := range m.Deltas {
			for _, a := range m.Automata {
				if a.Protocol == d.From.Protocol {
					if deltaOut[a] == nil {
						deltaOut[a] = map[string]bool{}
					}
					deltaOut[a][d.From.State] = true
				}
			}
		}
	}
	var diags []Diagnostic
	for _, n := range ctx.Reg.AutomatonNames() {
		a, err := ctx.Reg.Automaton(n)
		if err != nil {
			continue
		}
		for _, s := range a.States {
			if a.IsFinal(s.Name) || len(a.OutTransitions(s.Name)) > 0 || deltaOut[a][s.Name] {
				continue
			}
			diags = append(diags, Diagnostic{
				Rule:     "dead-end-state",
				Severity: SevWarning,
				Model:    n,
				Message: fmt.Sprintf("state %q is not final and has no outgoing transition or δ-transition; a session reaching it never terminates",
					s.Name),
			})
		}
	}
	return diags
}

// messageAcceptsAnyLabel reports whether a message's field set is open:
// a wildcard header/body run absorbs arbitrary label:value lines, and a
// non-none body (e.g. XML) contributes fields invisible to the MDL.
func messageAcceptsAnyLabel(spec *mdl.Spec, def *mdl.MessageDef) bool {
	if def.Body != mdl.BodyNone {
		return true
	}
	for _, f := range spec.Header.Fields {
		if f.Wildcard {
			return true
		}
	}
	for _, f := range def.Fields {
		if f.Wildcard {
			return true
		}
	}
	return false
}

// messageLabels collects every field label addressable on a message:
// the shared header fields plus the message body fields, including
// repeat-group members.
func messageLabels(spec *mdl.Spec, def *mdl.MessageDef) map[string]bool {
	labels := map[string]bool{}
	var walk func([]*mdl.FieldDef)
	walk = func(fields []*mdl.FieldDef) {
		for _, f := range fields {
			labels[f.Label] = true
			if f.IsGroup() {
				walk(f.Group)
			}
		}
	}
	walk(spec.Header.Fields)
	walk(def.Fields)
	return labels
}

// checkFieldRef validates one translation FieldRef against the loaded
// specs: the message must exist, and the path's first labelled step
// must name a field the message can actually carry.
func checkFieldRef(sp map[string]*mdl.Spec, caseName, role string, ref translation.FieldRef) []Diagnostic {
	def, spec := findMessage(sp, ref.Message)
	if def == nil {
		return []Diagnostic{{
			Rule:     "translation-field",
			Severity: SevError,
			Model:    caseName,
			Message:  fmt.Sprintf("%s references message %q, which no loaded MDL defines", role, ref.Message),
		}}
	}
	if ref.Path == nil || messageAcceptsAnyLabel(spec, def) {
		return nil
	}
	for _, step := range ref.Path.Steps() {
		if step.Label == "" {
			continue
		}
		if !messageLabels(spec, def)[step.Label] {
			return []Diagnostic{{
				Rule:     "translation-field",
				Severity: SevError,
				Model:    caseName,
				Message: fmt.Sprintf("%s addresses field %q of message %q, but MDL %s defines no such field",
					role, step.Label, ref.Message, spec.Protocol),
			}}
		}
		// Only the first labelled step is checked: nested structured
		// fields (URL explosion) exist per-value, not per-schema.
		break
	}
	return nil
}

// ruleTranslationField checks that every assignment and λ action in
// every case addresses messages and fields the loaded MDLs define.
// Load-time validation compiles the XPath expressions but resolves
// nothing; a dangling reference otherwise fails at apply time, dropping
// the session mid-bridge.
func ruleTranslationField(ctx *Context) []Diagnostic {
	sp := specs(ctx)
	var diags []Diagnostic
	for _, name := range ctx.Reg.MergedNames() {
		m, err := ctx.Reg.Merged(name)
		if err != nil {
			continue
		}
		if m.Logic != nil {
			for i, a := range m.Logic.Assignments {
				role := fmt.Sprintf("assignment %d target", i)
				diags = append(diags, checkFieldRef(sp, name, role, a.Target)...)
				if a.Source != nil {
					role = fmt.Sprintf("assignment %d source", i)
					diags = append(diags, checkFieldRef(sp, name, role, *a.Source)...)
				}
			}
		}
		for _, d := range m.Deltas {
			for _, act := range d.Actions {
				for j, arg := range act.Args {
					role := fmt.Sprintf("λ %s arg %d on %s->%s", act.Name, j, d.From, d.To)
					diags = append(diags, checkFieldRef(sp, name, role, arg)...)
				}
			}
		}
	}
	return diags
}

// ruleShadowedMessage flags two messages of one protocol selected by
// the same (rule field, rule value) pair. SelectMessage takes the first
// match in spec order, so the later message is unreachable on parse.
func ruleShadowedMessage(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	for _, p := range sortedKeys(specs(ctx)) {
		spec := specs(ctx)[p]
		first := map[string]string{}
		for _, m := range spec.Messages {
			key := m.Rule.Field + "\x00" + m.Rule.Value
			if prev, ok := first[key]; ok {
				diags = append(diags, Diagnostic{
					Rule:     "shadowed-message",
					Severity: SevError,
					Model:    p,
					Message: fmt.Sprintf("message %q is unreachable: rule %s=%s already selects %q (first match wins)",
						m.Name, m.Rule.Field, m.Rule.Value, prev),
				})
				continue
			}
			first[key] = m.Name
		}
	}
	return diags
}

// ruleUnmatchableRule flags rule values that can never equal the
// rendered rule field: a value outside an integer field's range parses
// fine at load time but matches no payload, so the message is dead.
func ruleUnmatchableRule(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	sp := specs(ctx)
	for _, p := range sortedKeys(sp) {
		spec := sp[p]
		if spec.Dialect != mdl.DialectBinary {
			continue
		}
		for _, m := range spec.Messages {
			if kindOf(ctx, spec, m.Rule.Field) != message.KindInt {
				continue
			}
			fd := headerField(spec, m.Rule.Field)
			if fd == nil || fd.SizeBits <= 0 || fd.SizeBits > 64 {
				continue
			}
			v, err := strconv.ParseUint(m.Rule.Value, 10, 64)
			if err != nil {
				diags = append(diags, Diagnostic{
					Rule:     "unmatchable-rule",
					Severity: SevError,
					Model:    p,
					Message: fmt.Sprintf("message %q rule value %q is not an integer, but field %q is integer-typed: the rule can never match",
						m.Name, m.Rule.Value, m.Rule.Field),
				})
				continue
			}
			if fd.SizeBits < 64 && v >= 1<<uint(fd.SizeBits) {
				diags = append(diags, Diagnostic{
					Rule:     "unmatchable-rule",
					Severity: SevError,
					Model:    p,
					Message: fmt.Sprintf("message %q rule value %d does not fit the %d-bit field %q: the rule can never match",
						m.Name, v, fd.SizeBits, m.Rule.Field),
				})
			}
		}
	}
	return diags
}

// ruleLossyRoundtrip flags field layouts the wire codec cannot carry
// through a parse⇄compose round trip: integer fields wider than the
// 64-bit value representation, and non-integer fields with a width
// that is not a whole number of bytes — the parser rejects the latter
// on every payload ("non-integer type with unaligned width").
func ruleLossyRoundtrip(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	sp := specs(ctx)
	for _, p := range sortedKeys(sp) {
		spec := sp[p]
		if spec.Dialect != mdl.DialectBinary {
			continue
		}
		check := func(where string, fields []*mdl.FieldDef) {
			var walk func(fields []*mdl.FieldDef)
			walk = func(fields []*mdl.FieldDef) {
				for _, f := range fields {
					if f.IsGroup() {
						walk(f.Group)
						continue
					}
					kind := kindOf(ctx, spec, f.Label)
					fixedKind := kind == message.KindInt || kind == message.KindBool
					if f.SizeBits > 0 {
						if fixedKind && f.SizeBits > 64 {
							diags = append(diags, Diagnostic{
								Rule:     "lossy-roundtrip",
								Severity: SevError,
								Model:    p,
								Message: fmt.Sprintf("%s: field %q is %d bits wide, but integer values carry at most 64: the value cannot round-trip",
									where, f.Label, f.SizeBits),
							})
						}
						if !fixedKind && f.SizeBits%8 != 0 {
							diags = append(diags, Diagnostic{
								Rule:     "lossy-roundtrip",
								Severity: SevError,
								Model:    p,
								Message: fmt.Sprintf("%s: field %q has non-integer type and unaligned width %d bits: every parse fails at runtime",
									where, f.Label, f.SizeBits),
							})
						}
					}
					if f.SizeRef != "" && kindOf(ctx, spec, f.SizeRef) != message.KindInt {
						diags = append(diags, Diagnostic{
							Rule:     "lossy-roundtrip",
							Severity: SevError,
							Model:    p,
							Message: fmt.Sprintf("%s: field %q takes its length from %q, which is not integer-typed",
								where, f.Label, f.SizeRef),
						})
					}
				}
			}
			walk(fields)
		}
		check("header", spec.Header.Fields)
		for _, m := range spec.Messages {
			check("message "+m.Name, m.Fields)
		}
	}
	return diags
}

// entry is one (case, protocol) entry point on a color.
type entry struct {
	caseName string
	protocol string
	color    automata.Color
}

// ruleDiscriminatorCollision mirrors the dispatcher's rebind step:
// entry points of all cases are grouped by color key, and groups with
// more than one member are checked for classification collisions.
//
//   - Two cases entering on the same protocol and color is the
//     deliberate one-to-many configuration: the dispatcher counts the
//     ambiguity and deterministically picks the lexicographically first
//     case, so this reports as Info.
//   - Two different protocols on one color collide if their derived
//     signatures read the same payload location and share a
//     discriminator value (Error), and are unprovable when either
//     signature cannot be derived or the locations differ (Warning).
func ruleDiscriminatorCollision(ctx *Context) []Diagnostic {
	sp := specs(ctx)
	byColor := map[string][]entry{}
	for _, name := range ctx.Reg.MergedNames() {
		m, err := ctx.Reg.Merged(name)
		if err != nil {
			continue
		}
		entries, err := m.EntryProtocols()
		if err != nil {
			continue // case-compile reports it
		}
		for proto, color := range entries {
			k := color.Key()
			byColor[k] = append(byColor[k], entry{caseName: name, protocol: proto, color: color})
		}
	}
	var diags []Diagnostic
	for _, k := range sortedKeys(byColor) {
		group := byColor[k]
		if len(group) < 2 {
			continue
		}
		sort.Slice(group, func(i, j int) bool {
			if group[i].protocol != group[j].protocol {
				return group[i].protocol < group[j].protocol
			}
			return group[i].caseName < group[j].caseName
		})
		// Same-protocol overlap: runtime-ambiguous, deliberately so.
		byProto := map[string][]entry{}
		for _, e := range group {
			byProto[e.protocol] = append(byProto[e.protocol], e)
		}
		for _, proto := range sortedKeys(byProto) {
			es := byProto[proto]
			if len(es) < 2 {
				continue
			}
			var names []string
			for _, e := range es {
				names = append(names, e.caseName)
			}
			diags = append(diags, Diagnostic{
				Rule:     "discriminator-collision",
				Severity: SevInfo,
				Model:    strings.Join(names, ", "),
				Message: fmt.Sprintf("cases share entry color %s on protocol %s; the dispatcher resolves the ambiguity to the lexicographically first case",
					es[0].color, proto),
			})
		}
		// Cross-protocol overlap: must be statically separable.
		protos := sortedKeys(byProto)
		for i := 0; i < len(protos); i++ {
			for j := i + 1; j < len(protos); j++ {
				e1, e2 := byProto[protos[i]][0], byProto[protos[j]][0]
				diags = append(diags, checkCrossProto(sp, e1, e2)...)
			}
		}
	}
	return diags
}

// checkCrossProto decides whether two different protocols entering on
// one color have provably disjoint discriminators.
func checkCrossProto(sp map[string]*mdl.Spec, e1, e2 entry) []Diagnostic {
	model := e1.caseName + ", " + e2.caseName
	spec1, spec2 := sp[e1.protocol], sp[e2.protocol]
	if spec1 == nil || spec2 == nil {
		return nil // unknown-message reports the missing MDL
	}
	sig1 := provision.DeriveSignatureInfo(spec1)
	sig2 := provision.DeriveSignatureInfo(spec2)
	if sig1 == nil || sig2 == nil {
		return []Diagnostic{{
			Rule:     "discriminator-collision",
			Severity: SevWarning,
			Model:    model,
			Message: fmt.Sprintf("protocols %s and %s share entry color %s but at least one has no derivable signature; the dispatcher falls back to trial parsing",
				e1.protocol, e2.protocol, e1.color),
		}}
	}
	if sig1.Dialect != sig2.Dialect {
		// A binary and a text discriminator read the payload
		// incompatibly; trial order decides. Not provably disjoint.
		return []Diagnostic{{
			Rule:     "discriminator-collision",
			Severity: SevWarning,
			Model:    model,
			Message: fmt.Sprintf("protocols %s (%s) and %s (%s) share entry color %s across dialects; disjointness is not statically provable",
				e1.protocol, sig1.Dialect, e2.protocol, sig2.Dialect, e1.color),
		}}
	}
	sameLocation := false
	switch sig1.Dialect {
	case mdl.DialectBinary:
		sameLocation = sig1.BitOff == sig2.BitOff && sig1.Bits == sig2.Bits
	case mdl.DialectText:
		sameLocation = string(sig1.RuleDelim) == string(sig2.RuleDelim) &&
			len(sig1.LeadDelims) == len(sig2.LeadDelims)
		for i := 0; sameLocation && i < len(sig1.LeadDelims); i++ {
			sameLocation = string(sig1.LeadDelims[i]) == string(sig2.LeadDelims[i])
		}
	}
	if !sameLocation {
		return []Diagnostic{{
			Rule:     "discriminator-collision",
			Severity: SevWarning,
			Model:    model,
			Message: fmt.Sprintf("protocols %s and %s share entry color %s but read their discriminators from different payload locations; disjointness is not statically provable",
				e1.protocol, e2.protocol, e1.color),
		}}
	}
	var diags []Diagnostic
	for _, r1 := range sig1.Rules {
		for _, r2 := range sig2.Rules {
			collide := false
			switch sig1.Dialect {
			case mdl.DialectBinary:
				collide = r1.IntVal == r2.IntVal
			case mdl.DialectText:
				collide = r1.TextVal == r2.TextVal
			}
			if collide {
				diags = append(diags, Diagnostic{
					Rule:     "discriminator-collision",
					Severity: SevError,
					Model:    model,
					Message: fmt.Sprintf("a payload on color %s classifies as both %s/%s and %s/%s: the discriminator values are identical",
						e1.color, e1.protocol, r1.Message, e2.protocol, r2.Message),
				})
			}
		}
	}
	return diags
}

// ---- helpers ----

// kindOf resolves a field label's value kind through the type registry;
// unknown type names count as string (TypeOf's default).
func kindOf(ctx *Context, spec *mdl.Spec, label string) message.Kind {
	td := spec.TypeOf(label)
	m, err := ctx.Reg.Types().Lookup(td.TypeName)
	if err != nil {
		return message.KindString
	}
	return m.Kind()
}

// headerField returns the header field definition with the label.
func headerField(spec *mdl.Spec, label string) *mdl.FieldDef {
	for _, f := range spec.Header.Fields {
		if f.Label == label {
			return f
		}
	}
	return nil
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// diagnostic output.
func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
