package mdllint

import (
	"strings"
	"testing"
)

// TestRulesRegistry pins the registry shape: unique names, docs, a
// runner per rule, and the schema tier listed before the lint tier so
// `mdlc validate` output order stays stable.
func TestRulesRegistry(t *testing.T) {
	rules := Rules()
	if len(rules) < 7 {
		t.Fatalf("registry has %d rules, want at least 7", len(rules))
	}
	seen := map[string]bool{}
	lintSeen := false
	for _, r := range rules {
		if r.Name == "" || r.Doc == "" || r.Run == nil {
			t.Errorf("rule %+v incomplete", r)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Tier == TierLint {
			lintSeen = true
		} else if lintSeen {
			t.Errorf("schema-tier rule %q listed after a lint-tier rule", r.Name)
		}
	}
	for _, name := range []string{"model-load", "case-compile", "dead-end-state", "translation-field", "discriminator-collision"} {
		if !seen[name] {
			t.Errorf("registry missing rule %q", name)
		}
	}
}

// TestShippedModelsClean lints the shipped example directory over the
// builtins: all seven cases must compile and nothing above Info may be
// reported. The Info-level diagnostics are the deliberate one-to-many
// color sharing between cases entering on the same protocol.
func TestShippedModelsClean(t *testing.T) {
	ctx, diags, err := Run("../../examples/models", TierLint)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.LoadErr != nil {
		t.Fatalf("examples/models failed to load: %v", ctx.LoadErr)
	}
	if got := len(ctx.Reg.MergedNames()); got != 7 {
		t.Fatalf("got %d cases, want 7 (6 builtin + slp-to-upnp-alt)", got)
	}
	for _, d := range diags {
		if d.Severity > SevInfo {
			t.Errorf("shipped models not clean: %s", d)
		}
	}
	// The SLP one-to-many sharing (slp-to-bonjour and slp-to-upnp both
	// enter on the SLP multicast color) must be visible as Info.
	found := false
	for _, d := range diags {
		if d.Rule == "discriminator-collision" && d.Severity == SevInfo &&
			strings.Contains(d.Model, "slp-to-bonjour") && strings.Contains(d.Model, "slp-to-upnp") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an Info discriminator-collision for slp-to-bonjour/slp-to-upnp, got %v", diags)
	}
}

// TestBrokenModels lints a directory that loads and compiles cleanly
// (the schema tier passes) but carries one instance of every lint-tier
// defect class.
func TestBrokenModels(t *testing.T) {
	ctx, diags, err := Run("testdata/broken", TierLint)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.LoadErr != nil {
		t.Fatalf("testdata/broken must load (its defects are lint-tier): %v", ctx.LoadErr)
	}
	byRule := map[string][]Diagnostic{}
	for _, d := range diags {
		byRule[d.Rule] = append(byRule[d.Rule], d)
	}
	if len(byRule["model-load"])+len(byRule["case-compile"]) != 0 {
		t.Errorf("schema tier should be clean on testdata/broken: %v", diags)
	}
	wantRule := func(rule string, sev Severity, frag string) {
		t.Helper()
		for _, d := range byRule[rule] {
			if d.Severity == sev && strings.Contains(d.Message, frag) {
				return
			}
		}
		t.Errorf("missing %s/%s diagnostic containing %q; got %v", rule, sev, frag, byRule[rule])
	}
	wantRule("unknown-message", SevError, `message "BRKGoodbye"`)
	wantRule("dead-end-state", SevWarning, `state "s2"`)
	wantRule("translation-field", SevError, `message "HTTPBogus"`)
	wantRule("translation-field", SevError, `field "LangTagg"`)
	wantRule("shadowed-message", SevError, `"BRKHelloTwin" is unreachable`)
	wantRule("unmatchable-rule", SevError, "does not fit the 8-bit field")
	wantRule("lossy-roundtrip", SevError, "unaligned width 12 bits")
	wantRule("lossy-roundtrip", SevError, "80 bits wide")
	wantRule("lossy-roundtrip", SevError, `length from "NameLen"`)

	distinctKinds := 0
	for rule, ds := range byRule {
		if rule == "discriminator-collision" { // builtin Info sharing, not a defect
			continue
		}
		if len(ds) > 0 {
			distinctKinds++
		}
	}
	if distinctKinds < 3 {
		t.Errorf("want at least 3 distinct diagnostic kinds, got %d: %v", distinctKinds, byRule)
	}
	if max, ok := MaxSeverity(diags); !ok || max != SevError {
		t.Errorf("max severity = %v/%v, want error", max, ok)
	}
}

// TestSchemaTierSubset runs the broken directory at the schema tier
// only: it loads and compiles, so `mdlc validate` accepts what
// `mdlc lint` rejects — the two tiers are genuinely different.
func TestSchemaTierSubset(t *testing.T) {
	_, diags, err := Run("testdata/broken", TierSchema)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("schema tier should pass testdata/broken, got %v", diags)
	}
}

// TestInvalidModelsSchemaTier checks the validate contract: a document
// that fails load-time validation surfaces as a model-load error at
// the schema tier.
func TestInvalidModelsSchemaTier(t *testing.T) {
	ctx, diags, err := Run("testdata/invalid", TierSchema)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.LoadErr == nil {
		t.Fatal("testdata/invalid should fail to load")
	}
	if len(diags) != 1 || diags[0].Rule != "model-load" || diags[0].Severity != SevError {
		t.Fatalf("want exactly one model-load error, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "bad-mdl.xml") {
		t.Errorf("model-load diagnostic should name the failing file: %s", diags[0])
	}
}

// TestSeverityStrings pins the rendered forms used by mdlc output.
func TestSeverityStrings(t *testing.T) {
	for sev, want := range map[Severity]string{SevInfo: "info", SevWarning: "warning", SevError: "error"} {
		if got := sev.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", sev, got, want)
		}
	}
	d := Diagnostic{Rule: "dead-end-state", Severity: SevWarning, Model: "m", Message: "x"}
	if got := d.String(); got != "warning: dead-end-state: m: x" {
		t.Errorf("Diagnostic.String() = %q", got)
	}
}
