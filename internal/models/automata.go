package models

// Colored automata for each protocol, in both roles the bridge can
// play. The server-role SLP automaton is the paper's Fig. 1 (the
// bridge stands in for an SLP service: it receives the request and
// eventually replies). The client roles (Figs. 2 and 3 and the mDNS
// client of Fig. 9) are what the bridge executes toward the real
// legacy service on the other side.

// SLPServerAutomaton is Fig. 1: ?SLP_SrvReq then !SLP_SrvReply.
const SLPServerAutomaton = `
<Automaton protocol="SLP" initial="s0" finals="s1">
 <Color>
  <Attr key="transport_protocol" value="udp"/>
  <Attr key="port" value="427"/>
  <Attr key="mode" value="async"/>
  <Attr key="multicast" value="yes"/>
  <Attr key="group" value="239.255.255.253"/>
 </Color>
 <State name="s0"/>
 <State name="s1"/>
 <Transition from="s0" to="s1" action="receive" message="SLPSrvRequest"/>
 <Transition from="s1" to="s1" action="send" message="SLPSrvReply" replyToOrigin="true"/>
</Automaton>`

// SLPClientAutomaton is the requester role used by the →SLP bridge
// cases. Its color carries the multicast convergence window (ms) that
// an SLP requester must wait to collect replies — the behaviour behind
// the ~6.2-6.3 s →SLP rows of Fig. 12(b).
const SLPClientAutomaton = `
<Automaton protocol="SLP" initial="s0" finals="s2">
 <Color>
  <Attr key="transport_protocol" value="udp"/>
  <Attr key="port" value="427"/>
  <Attr key="mode" value="async"/>
  <Attr key="multicast" value="yes"/>
  <Attr key="group" value="239.255.255.253"/>
  <Attr key="convergence" value="6250"/>
 </Color>
 <State name="s0"/>
 <State name="s1"/>
 <State name="s2"/>
 <Transition from="s0" to="s1" action="send" message="SLPSrvRequest"/>
 <Transition from="s1" to="s2" action="receive" message="SLPSrvReply"/>
</Automaton>`

// SSDPClientAutomaton is Fig. 2: !SSDP_Search then ?SSDP_Resp.
const SSDPClientAutomaton = `
<Automaton protocol="SSDP" initial="s0" finals="s2">
 <Color>
  <Attr key="transport_protocol" value="udp"/>
  <Attr key="port" value="1900"/>
  <Attr key="mode" value="async"/>
  <Attr key="multicast" value="yes"/>
  <Attr key="group" value="239.255.255.250"/>
 </Color>
 <State name="s0"/>
 <State name="s1"/>
 <State name="s2"/>
 <Transition from="s0" to="s1" action="send" message="SSDPMSearch"/>
 <Transition from="s1" to="s2" action="receive" message="SSDPResponse"/>
</Automaton>`

// SSDPServerAutomaton is the responder role for the UPnP→X cases.
const SSDPServerAutomaton = `
<Automaton protocol="SSDP" initial="s0" finals="s2">
 <Color>
  <Attr key="transport_protocol" value="udp"/>
  <Attr key="port" value="1900"/>
  <Attr key="mode" value="async"/>
  <Attr key="multicast" value="yes"/>
  <Attr key="group" value="239.255.255.250"/>
 </Color>
 <State name="s0"/>
 <State name="s1"/>
 <State name="s2"/>
 <Transition from="s0" to="s1" action="receive" message="SSDPMSearch"/>
 <Transition from="s1" to="s2" action="send" message="SSDPResponse" replyToOrigin="true"/>
</Automaton>`

// HTTPClientAutomaton is Fig. 3: !HTTP_GET then ?HTTP_OK over
// synchronous TCP. The destination comes from a setHost λ action.
const HTTPClientAutomaton = `
<Automaton protocol="HTTP" initial="s0" finals="s2">
 <Color>
  <Attr key="transport_protocol" value="tcp"/>
  <Attr key="port" value="80"/>
  <Attr key="mode" value="sync"/>
  <Attr key="multicast" value="no"/>
 </Color>
 <State name="s0"/>
 <State name="s1"/>
 <State name="s2"/>
 <Transition from="s0" to="s1" action="send" message="HTTPGet"/>
 <Transition from="s1" to="s2" action="receive" message="HTTPOk"/>
</Automaton>`

// HTTPServerAutomaton is the description-serving role for the reverse
// UPnP cases: the bridge itself answers the control point's GET on its
// own port 8080.
const HTTPServerAutomaton = `
<Automaton protocol="HTTP" initial="s0" finals="s2">
 <Color>
  <Attr key="transport_protocol" value="tcp"/>
  <Attr key="port" value="8080"/>
  <Attr key="mode" value="sync"/>
  <Attr key="multicast" value="no"/>
 </Color>
 <State name="s0"/>
 <State name="s1"/>
 <State name="s2"/>
 <Transition from="s0" to="s1" action="receive" message="HTTPGet"/>
 <Transition from="s1" to="s2" action="send" message="HTTPOk" replyToOrigin="true"/>
</Automaton>`

// MDNSClientAutomaton is Fig. 9: !DNS_Question then ?DNS_Response.
const MDNSClientAutomaton = `
<Automaton protocol="mDNS" initial="s0" finals="s2">
 <Color>
  <Attr key="transport_protocol" value="udp"/>
  <Attr key="port" value="5353"/>
  <Attr key="mode" value="async"/>
  <Attr key="multicast" value="yes"/>
  <Attr key="group" value="224.0.0.251"/>
 </Color>
 <State name="s0"/>
 <State name="s1"/>
 <State name="s2"/>
 <Transition from="s0" to="s1" action="send" message="DNSQuestion"/>
 <Transition from="s1" to="s2" action="receive" message="DNSResponse"/>
</Automaton>`

// MDNSServerAutomaton is the responder role for the Bonjour→X cases.
const MDNSServerAutomaton = `
<Automaton protocol="mDNS" initial="s0" finals="s1">
 <Color>
  <Attr key="transport_protocol" value="udp"/>
  <Attr key="port" value="5353"/>
  <Attr key="mode" value="async"/>
  <Attr key="multicast" value="yes"/>
  <Attr key="group" value="224.0.0.251"/>
 </Color>
 <State name="s0"/>
 <State name="s1"/>
 <Transition from="s0" to="s1" action="receive" message="DNSQuestion"/>
 <Transition from="s1" to="s1" action="send" message="DNSResponse" replyToOrigin="true"/>
</Automaton>`

// Automata maps model name to automaton document. Names carry the role
// because the same protocol behaves differently depending on which
// side of it the bridge plays.
var Automata = map[string]string{
	"slp-server":  SLPServerAutomaton,
	"slp-client":  SLPClientAutomaton,
	"ssdp-client": SSDPClientAutomaton,
	"ssdp-server": SSDPServerAutomaton,
	"http-client": HTTPClientAutomaton,
	"http-server": HTTPServerAutomaton,
	"mdns-client": MDNSClientAutomaton,
	"mdns-server": MDNSServerAutomaton,
}
