package models

// The six merged automata of the paper's case study (§V: "There are
// six particular cases"). SLPToUPnP is Fig. 4/5; SLPToBonjour is
// Fig. 10. The remaining four are the reverse and diagonal cases
// measured in Fig. 12(b).
//
// Conventions shared by all six:
//   - the same logical service type is spelled "service:printer" (SLP),
//     "urn:printer" (UPnP) and "printer.local" (DNS-SD); T functions
//     translate between the spellings (paper eq. 6);
//   - constants parameterise protocol-fixed fields (an M-SEARCH's MAN
//     header) — content the MDL cannot know and the peer requires;
//   - ${bridge.host} expands to the bridge node's address at runtime,
//     letting reverse-UPnP bridges advertise their own HTTP endpoint.

// SLPToUPnP bridges an SLP user agent to a UPnP device — the paper's
// Fig. 4 merged automaton with Fig. 5's translation specification.
const SLPToUPnP = `
<MergedAutomaton name="slp-to-upnp" initiator="SLP">
 <AutomatonRef protocol="SLP" name="slp-server"/>
 <AutomatonRef protocol="SSDP" name="ssdp-client"/>
 <AutomatonRef protocol="HTTP" name="http-client"/>
 <Equivalence output="SSDPMSearch" inputs="SLPSrvRequest"/>
 <Equivalence output="HTTPGet" inputs="SSDPResponse"/>
 <Equivalence output="SLPSrvReply" inputs="HTTPOk"/>
 <Delta from="SLP:s1" to="SSDP:s0"/>
 <Delta from="SSDP:s2" to="HTTP:s0">
  <Action name="setHost">
   <Arg message="SSDPResponse" xpath="/field/structuredField[label='LOCATION']/primitiveField[label='address']/value"/>
   <Arg message="SSDPResponse" xpath="/field/structuredField[label='LOCATION']/primitiveField[label='port']/value"/>
  </Action>
 </Delta>
 <Delta from="HTTP:s2" to="SLP:s1"/>
 <TranslationLogic>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>2</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>2</Value>
  </Assignment>
  <Assignment function="service-type-to-urn">
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='ST']/value</Xpath></Field>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='SRVType']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='URI']/value</Xpath></Field>
   <Value>*</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>HTTP/1.1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='HOST']/value</Xpath></Field>
   <Value>239.255.255.250:1900</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='MAN']/value</Xpath></Field>
   <Value>"ssdp:discover"</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='MX']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPGet</Message><Xpath>/field/primitiveField[label='URI']/value</Xpath></Field>
   <Field><Message>SSDPResponse</Message><Xpath>/field/structuredField[label='LOCATION']/primitiveField[label='resource']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPGet</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>HTTP/1.1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='URLEntry']/value</Xpath></Field>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='URLBase']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='XID']/value</Xpath></Field>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='XID']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='LangTag']/value</Xpath></Field>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='LangTag']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='URLCount']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
 </TranslationLogic>
</MergedAutomaton>`

// SLPToBonjour bridges an SLP user agent to a Bonjour responder — the
// paper's Fig. 10 merged automaton.
const SLPToBonjour = `
<MergedAutomaton name="slp-to-bonjour" initiator="SLP">
 <AutomatonRef protocol="SLP" name="slp-server"/>
 <AutomatonRef protocol="mDNS" name="mdns-client"/>
 <Equivalence output="DNSQuestion" inputs="SLPSrvRequest"/>
 <Equivalence output="SLPSrvReply" inputs="DNSResponse"/>
 <Delta from="SLP:s1" to="mDNS:s0"/>
 <Delta from="mDNS:s2" to="SLP:s1"/>
 <TranslationLogic>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>2</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>2</Value>
  </Assignment>
  <Assignment function="service-type-to-dns">
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='DomainName']/value</Xpath></Field>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='SRVType']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='QDCount']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='QType']/value</Xpath></Field>
   <Value>12</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='QClass']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment function="service-url">
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='URLEntry']/value</Xpath></Field>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='RDATA']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='XID']/value</Xpath></Field>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='XID']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='LangTag']/value</Xpath></Field>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='LangTag']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='URLCount']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
 </TranslationLogic>
</MergedAutomaton>`

// UPnPToSLP bridges a UPnP control point to an SLP service. The bridge
// answers the M-SEARCH itself (advertising its own HTTP endpoint) and
// serves the device description whose URLBase carries the SLP reply
// URL — the server-role HTTP automaton of DESIGN.md §6.
const UPnPToSLP = `
<MergedAutomaton name="upnp-to-slp" initiator="SSDP">
 <AutomatonRef protocol="SSDP" name="ssdp-server"/>
 <AutomatonRef protocol="SLP" name="slp-client"/>
 <AutomatonRef protocol="HTTP" name="http-server"/>
 <Equivalence output="SLPSrvRequest" inputs="SSDPMSearch"/>
 <Equivalence output="SSDPResponse" inputs="SLPSrvReply"/>
 <Equivalence output="HTTPOk" inputs="SLPSrvReply,HTTPGet"/>
 <Delta from="SSDP:s1" to="SLP:s0"/>
 <Delta from="SLP:s2" to="SSDP:s1"/>
 <Delta from="SSDP:s2" to="HTTP:s0"/>
 <TranslationLogic>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>2</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>2</Value>
  </Assignment>
  <Assignment function="urn-to-service-type">
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='SRVType']/value</Xpath></Field>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='ST']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='LangTag']/value</Xpath></Field>
   <Value>en</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='URI']/value</Xpath></Field>
   <Value>200</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>OK</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='CACHE-CONTROL']/value</Xpath></Field>
   <Value>max-age=1800</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='LOCATION']/value</Xpath></Field>
   <Value>http://${bridge.host}:8080/desc.xml</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='ST']/value</Xpath></Field>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='ST']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='USN']/value</Xpath></Field>
   <Value>uuid:starlink-bridge</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='URI']/value</Xpath></Field>
   <Value>200</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>OK</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='Content-Type']/value</Xpath></Field>
   <Value>text/xml</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='URLBase']/value</Xpath></Field>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='URLEntry']/value</Xpath></Field>
  </Assignment>
  <Assignment function="urlbase-xml">
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='Body']/value</Xpath></Field>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='URLEntry']/value</Xpath></Field>
  </Assignment>
 </TranslationLogic>
</MergedAutomaton>`

// UPnPToBonjour bridges a UPnP control point to a Bonjour responder.
const UPnPToBonjour = `
<MergedAutomaton name="upnp-to-bonjour" initiator="SSDP">
 <AutomatonRef protocol="SSDP" name="ssdp-server"/>
 <AutomatonRef protocol="mDNS" name="mdns-client"/>
 <AutomatonRef protocol="HTTP" name="http-server"/>
 <Equivalence output="DNSQuestion" inputs="SSDPMSearch"/>
 <Equivalence output="SSDPResponse" inputs="DNSResponse"/>
 <Equivalence output="HTTPOk" inputs="DNSResponse,HTTPGet"/>
 <Delta from="SSDP:s1" to="mDNS:s0"/>
 <Delta from="mDNS:s2" to="SSDP:s1"/>
 <Delta from="SSDP:s2" to="HTTP:s0"/>
 <TranslationLogic>
  <Assignment function="urn-to-dns">
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='DomainName']/value</Xpath></Field>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='ST']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='QDCount']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='QType']/value</Xpath></Field>
   <Value>12</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='QClass']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='URI']/value</Xpath></Field>
   <Value>200</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>OK</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='CACHE-CONTROL']/value</Xpath></Field>
   <Value>max-age=1800</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='LOCATION']/value</Xpath></Field>
   <Value>http://${bridge.host}:8080/desc.xml</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='ST']/value</Xpath></Field>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='ST']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPResponse</Message><Xpath>/field/primitiveField[label='USN']/value</Xpath></Field>
   <Value>uuid:starlink-bridge</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='URI']/value</Xpath></Field>
   <Value>200</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>OK</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='Content-Type']/value</Xpath></Field>
   <Value>text/xml</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='URLBase']/value</Xpath></Field>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='RDATA']/value</Xpath></Field>
  </Assignment>
  <Assignment function="urlbase-xml">
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='Body']/value</Xpath></Field>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='RDATA']/value</Xpath></Field>
  </Assignment>
 </TranslationLogic>
</MergedAutomaton>`

// BonjourToUPnP bridges a Bonjour browser to a UPnP device.
const BonjourToUPnP = `
<MergedAutomaton name="bonjour-to-upnp" initiator="mDNS">
 <AutomatonRef protocol="mDNS" name="mdns-server"/>
 <AutomatonRef protocol="SSDP" name="ssdp-client"/>
 <AutomatonRef protocol="HTTP" name="http-client"/>
 <Equivalence output="SSDPMSearch" inputs="DNSQuestion"/>
 <Equivalence output="HTTPGet" inputs="SSDPResponse"/>
 <Equivalence output="DNSResponse" inputs="HTTPOk"/>
 <Delta from="mDNS:s1" to="SSDP:s0"/>
 <Delta from="SSDP:s2" to="HTTP:s0">
  <Action name="setHost">
   <Arg message="SSDPResponse" xpath="/field/structuredField[label='LOCATION']/primitiveField[label='address']/value"/>
   <Arg message="SSDPResponse" xpath="/field/structuredField[label='LOCATION']/primitiveField[label='port']/value"/>
  </Action>
 </Delta>
 <Delta from="HTTP:s2" to="mDNS:s1"/>
 <TranslationLogic>
  <Assignment function="dns-to-urn">
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='ST']/value</Xpath></Field>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='DomainName']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='URI']/value</Xpath></Field>
   <Value>*</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>HTTP/1.1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='HOST']/value</Xpath></Field>
   <Value>239.255.255.250:1900</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='MAN']/value</Xpath></Field>
   <Value>"ssdp:discover"</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='MX']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPGet</Message><Xpath>/field/primitiveField[label='URI']/value</Xpath></Field>
   <Field><Message>SSDPResponse</Message><Xpath>/field/structuredField[label='LOCATION']/primitiveField[label='resource']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>HTTPGet</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>HTTP/1.1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='ID']/value</Xpath></Field>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='ID']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='ANCount']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='AName']/value</Xpath></Field>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='DomainName']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='AType']/value</Xpath></Field>
   <Value>16</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='AClass']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='TTL']/value</Xpath></Field>
   <Value>120</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='RDATA']/value</Xpath></Field>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='URLBase']/value</Xpath></Field>
  </Assignment>
 </TranslationLogic>
</MergedAutomaton>`

// BonjourToSLP bridges a Bonjour browser to an SLP service.
const BonjourToSLP = `
<MergedAutomaton name="bonjour-to-slp" initiator="mDNS">
 <AutomatonRef protocol="mDNS" name="mdns-server"/>
 <AutomatonRef protocol="SLP" name="slp-client"/>
 <Equivalence output="SLPSrvRequest" inputs="DNSQuestion"/>
 <Equivalence output="DNSResponse" inputs="SLPSrvReply"/>
 <Delta from="mDNS:s1" to="SLP:s0"/>
 <Delta from="SLP:s2" to="mDNS:s1"/>
 <TranslationLogic>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>2</Value>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='Version']/value</Xpath></Field>
   <Value>2</Value>
  </Assignment>
  <Assignment function="dns-to-service-type">
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='SRVType']/value</Xpath></Field>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='DomainName']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='LangTag']/value</Xpath></Field>
   <Value>en</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='ID']/value</Xpath></Field>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='ID']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='ANCount']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='AName']/value</Xpath></Field>
   <Field><Message>DNSQuestion</Message><Xpath>/field/primitiveField[label='DomainName']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='AType']/value</Xpath></Field>
   <Value>16</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='AClass']/value</Xpath></Field>
   <Value>1</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='TTL']/value</Xpath></Field>
   <Value>120</Value>
  </Assignment>
  <Assignment>
   <Field><Message>DNSResponse</Message><Xpath>/field/primitiveField[label='RDATA']/value</Xpath></Field>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='URLEntry']/value</Xpath></Field>
  </Assignment>
 </TranslationLogic>
</MergedAutomaton>`

// MergedAutomata maps case name to merged automaton document — the six
// directed pairs of the paper's §V.
var MergedAutomata = map[string]string{
	"slp-to-upnp":     SLPToUPnP,
	"slp-to-bonjour":  SLPToBonjour,
	"upnp-to-slp":     UPnPToSLP,
	"upnp-to-bonjour": UPnPToBonjour,
	"bonjour-to-upnp": BonjourToUPnP,
	"bonjour-to-slp":  BonjourToSLP,
}
