// Package models embeds the Starlink models of the paper's case study
// (§V): the MDL specifications (Figs. 7 and 11 plus the HTTP and mDNS
// equivalents), the k-colored automata (Figs. 1, 2, 3 and 9, in both
// client and server roles), and the six merged automata covering every
// directed pair of SLP, UPnP and Bonjour (Figs. 4 and 10 and the four
// reverse/diagonal cases the paper reports in Fig. 12(b)).
//
// These are data, not code: the same generic framework executes all of
// them, which is the paper's central claim.
package models

// SLPMDL is the paper's Fig. 7: the binary MDL for SLP.
const SLPMDL = `
<MDL protocol="SLP" dialect="binary">
 <Types>
  <Version>Integer</Version>
  <FunctionID>Integer</FunctionID>
  <MessageLength>Integer[f-totallength()]</MessageLength>
  <reserved>Integer</reserved>
  <NextExtOffset>Integer</NextExtOffset>
  <XID>Integer</XID>
  <LangTagLen>Integer</LangTagLen>
  <LangTag>String</LangTag>
  <PRLength>Integer</PRLength>
  <PRStringTable>String</PRStringTable>
  <SRVTypeLength>Integer</SRVTypeLength>
  <SRVType>String</SRVType>
  <PredLength>Integer</PredLength>
  <PredString>String</PredString>
  <SPILength>Integer</SPILength>
  <SPIString>String</SPIString>
  <ErrorCode>Integer</ErrorCode>
  <URLCount>Integer</URLCount>
  <URLEntry>String</URLEntry>
  <URLLength>Integer[f-length(URLEntry)]</URLLength>
 </Types>
 <Header type="SLP">
  <Version>8</Version>
  <FunctionID>8</FunctionID>
  <MessageLength>24</MessageLength>
  <reserved>16</reserved>
  <NextExtOffset>24</NextExtOffset>
  <XID>16</XID>
  <LangTagLen>16</LangTagLen>
  <LangTag>LangTagLen</LangTag>
 </Header>
 <Message type="SLPSrvRequest" mandatory="SRVType">
  <Rule>FunctionID=1</Rule>
  <PRLength>16</PRLength>
  <PRStringTable>PRLength</PRStringTable>
  <SRVTypeLength>16</SRVTypeLength>
  <SRVType>SRVTypeLength</SRVType>
  <PredLength>16</PredLength>
  <PredString>PredLength</PredString>
  <SPILength>16</SPILength>
  <SPIString>SPILength</SPIString>
 </Message>
 <Message type="SLPSrvReply" mandatory="URLEntry,XID">
  <Rule>FunctionID=2</Rule>
  <ErrorCode>16</ErrorCode>
  <URLCount>16</URLCount>
  <URLLength>16</URLLength>
  <URLEntry>URLLength</URLEntry>
 </Message>
</MDL>`

// SSDPMDL is the paper's Fig. 11: the text MDL for SSDP.
const SSDPMDL = `
<MDL protocol="SSDP" dialect="text">
 <Types>
  <Method>String</Method>
  <URI>String</URI>
  <Version>String</Version>
  <ST>String</ST>
  <MX>Integer</MX>
  <MAN>String</MAN>
  <HOST>String</HOST>
  <USN>String</USN>
  <LOCATION>URL</LOCATION>
 </Types>
 <Header type="SSDP">
  <Method>32</Method>
  <URI>32</URI>
  <Version>13,10</Version>
  <Fields>13,10:58</Fields>
 </Header>
 <Message type="SSDPMSearch" mandatory="ST">
  <Rule>Method=M-SEARCH</Rule>
 </Message>
 <Message type="SSDPResponse" mandatory="LOCATION">
  <Rule>Method=HTTP/1.1</Rule>
 </Message>
</MDL>`

// HTTPMDL is the text MDL for the HTTP description-retrieval exchange
// of the paper's Fig. 3 automaton. The 200 OK carries the UPnP device
// description; its XML body is flattened so translation logic can read
// URLBase (the HTTP_OK.URL_BASE of Fig. 5).
const HTTPMDL = `
<MDL protocol="HTTP" dialect="text">
 <Types>
  <Method>String</Method>
  <URI>String</URI>
  <Version>String</Version>
  <HOST>String</HOST>
  <Content-Length>Integer</Content-Length>
  <Content-Type>String</Content-Type>
 </Types>
 <Header type="HTTP">
  <Method>32</Method>
  <URI>32</URI>
  <Version>13,10</Version>
  <Fields>13,10:58</Fields>
 </Header>
 <Message type="HTTPGet" mandatory="URI">
  <Rule>Method=GET</Rule>
 </Message>
 <Message type="HTTPOk" body="xml" mandatory="URLBase">
  <Rule>Method=HTTP/1.1</Rule>
 </Message>
</MDL>`

// MDNSMDL is the binary MDL for Bonjour's mDNS messages (the DNS
// questions and responses of the paper's §V-A: "Bonjour uses DNS
// messages so this MDL describes DNS questions and responses").
// Flags=0 selects a question; Flags=33792 (0x8400: QR|AA) a response.
const MDNSMDL = `
<MDL protocol="mDNS" dialect="binary">
 <Types>
  <ID>Integer</ID>
  <Flags>Integer</Flags>
  <QDCount>Integer</QDCount>
  <ANCount>Integer</ANCount>
  <NSCount>Integer</NSCount>
  <ARCount>Integer</ARCount>
  <DomainName>FQDN</DomainName>
  <QType>Integer</QType>
  <QClass>Integer</QClass>
  <AName>FQDN</AName>
  <AType>Integer</AType>
  <AClass>Integer</AClass>
  <TTL>Integer</TTL>
  <RDLength>Integer</RDLength>
  <RDATA>String</RDATA>
 </Types>
 <Header type="mDNS">
  <ID>16</ID>
  <Flags>16</Flags>
  <QDCount>16</QDCount>
  <ANCount>16</ANCount>
  <NSCount>16</NSCount>
  <ARCount>16</ARCount>
 </Header>
 <Message type="DNSQuestion" mandatory="DomainName">
  <Rule>Flags=0</Rule>
  <DomainName></DomainName>
  <QType>16</QType>
  <QClass>16</QClass>
 </Message>
 <Message type="DNSResponse" mandatory="RDATA">
  <Rule>Flags=33792</Rule>
  <AName></AName>
  <AType>16</AType>
  <AClass>16</AClass>
  <TTL>32</TTL>
  <RDLength>16</RDLength>
  <RDATA>RDLength</RDATA>
 </Message>
</MDL>`

// MDLs maps protocol name to its MDL document.
var MDLs = map[string]string{
	"SLP":  SLPMDL,
	"SSDP": SSDPMDL,
	"HTTP": HTTPMDL,
	"mDNS": MDNSMDL,
}
