// Golden tests pinning the embedded models to the paper's figures.
package models

import (
	"strings"
	"testing"

	"starlink/internal/automata"
	"starlink/internal/mdl"
)

// TestFig1SLPAutomaton checks the SLP colored automaton against the
// paper's Fig. 1: two states, ?SLP_SrvReq then !SLP_SrvReply, colored
// udp/427/async/multicast/239.255.255.253.
func TestFig1SLPAutomaton(t *testing.T) {
	a, err := automata.ParseXMLString(SLPServerAutomaton)
	if err != nil {
		t.Fatal(err)
	}
	if a.Protocol != "SLP" || len(a.States) != 2 {
		t.Fatalf("a = %+v", a)
	}
	s0, _ := a.StateByName("s0")
	for _, want := range []struct{ k, v string }{
		{"transport_protocol", "udp"},
		{"port", "427"},
		{"mode", "async"},
		{"multicast", "yes"},
		{"group", "239.255.255.253"},
	} {
		if got, _ := s0.Color.Get(want.k); got != want.v {
			t.Errorf("color %s = %q, want %q", want.k, got, want.v)
		}
	}
	if a.Transitions[0].Label() != "?SLPSrvRequest" {
		t.Errorf("t0 = %s", a.Transitions[0].Label())
	}
	if a.Transitions[1].Label() != "!SLPSrvReply" {
		t.Errorf("t1 = %s", a.Transitions[1].Label())
	}
}

// TestFig2SSDPAutomaton: !SSDP_Search then ?SSDP_Resp on
// 239.255.255.250:1900.
func TestFig2SSDPAutomaton(t *testing.T) {
	a, err := automata.ParseXMLString(SSDPClientAutomaton)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.States) != 3 {
		t.Fatalf("states = %d (Fig. 2 has s0,s1,s2)", len(a.States))
	}
	s0, _ := a.StateByName("s0")
	if g, _ := s0.Color.Get("group"); g != "239.255.255.250" {
		t.Errorf("group = %q", g)
	}
	if p, _ := s0.Color.GetInt("port"); p != 1900 {
		t.Errorf("port = %d", p)
	}
	if a.Transitions[0].Action != automata.Send || a.Transitions[1].Action != automata.Receive {
		t.Error("Fig. 2 is send-then-receive")
	}
}

// TestFig3HTTPAutomaton: !HTTP_GET then ?HTTP_OK over sync TCP:80.
func TestFig3HTTPAutomaton(t *testing.T) {
	a, err := automata.ParseXMLString(HTTPClientAutomaton)
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := a.StateByName("s0")
	if tr, _ := s0.Color.Get("transport_protocol"); tr != "tcp" {
		t.Errorf("transport = %q", tr)
	}
	if m, _ := s0.Color.Get("mode"); m != "sync" {
		t.Errorf("mode = %q", m)
	}
	if mc, _ := s0.Color.Get("multicast"); mc != "no" {
		t.Errorf("multicast = %q", mc)
	}
	if p, _ := s0.Color.GetInt("port"); p != 80 {
		t.Errorf("port = %d", p)
	}
}

// TestFig9MDNSAutomaton: !DNS_Question then ?DNS_Response on
// 224.0.0.251:5353.
func TestFig9MDNSAutomaton(t *testing.T) {
	a, err := automata.ParseXMLString(MDNSClientAutomaton)
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := a.StateByName("s0")
	if g, _ := s0.Color.Get("group"); g != "224.0.0.251" {
		t.Errorf("group = %q", g)
	}
	if p, _ := s0.Color.GetInt("port"); p != 5353 {
		t.Errorf("port = %d", p)
	}
	if a.Transitions[0].Message != "DNSQuestion" || a.Transitions[1].Message != "DNSResponse" {
		t.Errorf("transitions = %v, %v", a.Transitions[0], a.Transitions[1])
	}
}

// TestDistinctColors: the paper's point about coloring — SLP, SSDP and
// mDNS are all async multicast UDP yet have distinct colors k because
// their groups/ports differ.
func TestDistinctColors(t *testing.T) {
	colors := map[string]automata.Color{}
	for _, name := range []string{"slp-server", "ssdp-client", "mdns-client", "http-client"} {
		a, err := automata.ParseXMLString(Automata[name])
		if err != nil {
			t.Fatal(err)
		}
		colors[name] = a.Colors()[0]
	}
	keys := map[string]string{}
	for name, c := range colors {
		if prev, dup := keys[c.Key()]; dup {
			t.Errorf("%s and %s share color %s", name, prev, c)
		}
		keys[c.Key()] = name
	}
}

// TestFig7SLPMDL checks the SLP MDL against the paper's Fig. 7: the
// header layout bit-widths and the function-typed fields.
func TestFig7SLPMDL(t *testing.T) {
	spec, err := mdl.ParseXMLString(SLPMDL)
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := []struct {
		label string
		bits  int
		ref   string
	}{
		{"Version", 8, ""},
		{"FunctionID", 8, ""},
		{"MessageLength", 24, ""},
		{"reserved", 16, ""},
		{"NextExtOffset", 24, ""},
		{"XID", 16, ""},
		{"LangTagLen", 16, ""},
		{"LangTag", 0, "LangTagLen"},
	}
	if len(spec.Header.Fields) != len(wantHeader) {
		t.Fatalf("header fields = %d", len(spec.Header.Fields))
	}
	for i, want := range wantHeader {
		f := spec.Header.Fields[i]
		if f.Label != want.label || f.SizeBits != want.bits || f.SizeRef != want.ref {
			t.Errorf("header[%d] = %+v, want %+v", i, f, want)
		}
	}
	// Fig. 7 lines 4-5: URLEntry String, URLLength Integer[f-length(URLEntry)].
	td := spec.Types["URLLength"]
	if td.TypeName != "Integer" || td.Func == nil || td.Func.Name != "f-length" || td.Func.Args[0] != "URLEntry" {
		t.Errorf("URLLength = %+v", td)
	}
	// Fig. 7 line 19: rule FunctionID=1 selects SrvRequest.
	req, ok := spec.MessageByName("SLPSrvRequest")
	if !ok || req.Rule.Field != "FunctionID" || req.Rule.Value != "1" {
		t.Errorf("req rule = %+v", req)
	}
}

// TestFig11SSDPMDL checks the SSDP MDL against the paper's Fig. 11:
// space-delimited start line, CRLF fields with ':' inner split, and
// the two message rules.
func TestFig11SSDPMDL(t *testing.T) {
	spec, err := mdl.ParseXMLString(SSDPMDL)
	if err != nil {
		t.Fatal(err)
	}
	h := spec.Header.Fields
	if string(h[0].Delim) != " " || string(h[1].Delim) != " " || string(h[2].Delim) != "\r\n" {
		t.Errorf("start line delims wrong: %v %v %v", h[0].Delim, h[1].Delim, h[2].Delim)
	}
	w := h[3]
	if !w.Wildcard || string(w.Delim) != "\r\n" || w.InnerSplit != ':' {
		t.Errorf("Fields = %+v (want 13,10:58)", w)
	}
	search, _ := spec.MessageByName("SSDPMSearch")
	if search == nil || search.Rule.Value != "M-SEARCH" {
		t.Errorf("search rule = %+v", search)
	}
	resp, _ := spec.MessageByName("SSDPResponse")
	if resp == nil || resp.Rule.Value != "HTTP/1.1" {
		t.Errorf("resp rule = %+v", resp)
	}
}

// TestFig5MergeSpec checks the slp-to-upnp translation logic carries
// the paper's Fig. 5 content: the three equivalences, the ST/URL/XID
// assignments and the setHost δ-action.
func TestFig5MergeSpec(t *testing.T) {
	doc := SLPToUPnP
	for _, want := range []string{
		// line 1-3 equivalences
		`<Equivalence output="SSDPMSearch" inputs="SLPSrvRequest"/>`,
		`<Equivalence output="HTTPGet" inputs="SSDPResponse"/>`,
		`<Equivalence output="SLPSrvReply" inputs="HTTPOk"/>`,
		// line 4: M-Search ST := SrvReq ServiceType
		"[label='ST']",
		"[label='SRVType']",
		// lines 8-9: reply URL and XID
		"[label='URLEntry']",
		"[label='XID']",
		// lines 10-12: the δ-transitions with setHost
		`<Delta from="SLP:s1" to="SSDP:s0"/>`,
		`name="setHost"`,
		`<Delta from="HTTP:s2" to="SLP:s1"/>`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("slp-to-upnp model missing %q", want)
		}
	}
}

// TestDOTExports ensures every automaton renders to Graphviz (the
// regenerable form of Figs. 1/2/3/9).
func TestDOTExports(t *testing.T) {
	for name, doc := range Automata {
		a, err := automata.ParseXMLString(doc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dot := a.DOT()
		if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") {
			t.Errorf("%s: bad DOT:\n%s", name, dot)
		}
	}
}

// TestAllMDLsParse ensures the full MDL corpus stays valid.
func TestAllMDLsParse(t *testing.T) {
	for name, doc := range MDLs {
		spec, err := mdl.ParseXMLString(doc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(spec.Messages) < 2 {
			t.Errorf("%s: only %d messages", name, len(spec.Messages))
		}
	}
}
