package dst

import (
	"fmt"
)

// ReplayReport compares a recorded failure with its re-execution.
type ReplayReport struct {
	// Result is the re-executed run.
	Result *Result
	// TraceMatch is true when the replay's delivery-event trace hash
	// equals the recorded one — the exact interleaving was reproduced.
	TraceMatch bool
	// Divergence describes the first differing trace line when
	// TraceMatch is false.
	Divergence string
	// ViolationsMatch is true when the replay violated exactly the
	// recorded invariants.
	ViolationsMatch bool
}

// Reproduced reports whether the replay reproduced both the recorded
// interleaving and the recorded failure.
func (r *ReplayReport) Reproduced() bool { return r.TraceMatch && r.ViolationsMatch }

// Replay re-executes an artifact's (scenario, seed) pair and checks
// that the recorded interleaving and invariant violations come back.
// A non-reproducing replay is not an error — the report says so — but
// it means determinism itself broke, which is a bug in its own right.
func Replay(a *Artifact, cfg Config) (*ReplayReport, error) {
	res, err := Run(a.Scenario, a.Seed, cfg)
	if err != nil {
		return nil, fmt.Errorf("dst: replay run: %w", err)
	}
	rep := &ReplayReport{Result: res}
	rep.TraceMatch = res.TraceHash == a.TraceHash
	if !rep.TraceMatch {
		rep.Divergence = firstDivergence(a.TraceLines, res.TraceLines)
	}
	rep.ViolationsMatch = violationsEqual(a.Violations, res.Violations)
	return rep, nil
}

// firstDivergence locates the first trace line present in one run but
// not the other, for diagnosing a broken determinism contract.
func firstDivergence(want, got []string) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return fmt.Sprintf("line %d: recorded %q, replayed %q", i+1, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		return fmt.Sprintf("recorded %d trace lines, replayed %d (common prefix identical)",
			len(want), len(got))
	}
	// Same lines, different hash: the artifact was hand-edited or the
	// hash function changed.
	return "trace lines identical but hashes differ"
}

func violationsEqual(recorded []string, replayed []Violation) bool {
	if len(recorded) != len(replayed) {
		return false
	}
	for i, v := range replayed {
		if recorded[i] != v.String() {
			return false
		}
	}
	return true
}
