// Package dst is the deterministic-simulation-testing rig: declarative
// fault scenarios executed on the simnet virtual clock, checked against
// a catalog of whole-system invariants, swept across seeds, and — on
// failure — captured as a self-contained replayable artifact.
//
// A scenario hosts the full dispatcher (every case loaded in the
// registry) on one simulated bridge host, starts the legacy services
// each case bridges to, and fires staggered waves of protocol-native
// clients while a netapi.FaultPlan injects loss, delay, reordering,
// duplication and partitions at the delivery layer. Because the whole
// run — engine goroutines included — is serialized under the
// simulator's WorkTracker contract, one (scenario, seed) pair always
// produces the same delivery-event trace, byte for byte; that is what
// makes a recorded failure replayable.
package dst

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"starlink/internal/netapi"
)

// Scenario declares one deterministic simulation: which cases get
// client workloads, how many clients, the fault plan, and optional
// mid-run drain / hot-reload actions. The zero value is not runnable;
// use the builtin scenarios or fill Name and Cases.
type Scenario struct {
	// Name identifies the scenario (sweep selection, artifacts).
	Name string
	// Info is a one-line human description.
	Info string
	// Cases lists the cases that receive client workloads. The
	// dispatcher always hosts every case loaded in the registry;
	// multicast entry traffic may legitimately open sessions in cases
	// beyond this list (ambiguous dispatch), which the per-case
	// invariants account for.
	Cases []string
	// Clients is the number of clients started per case.
	Clients int
	// Stagger spaces successive client starts within a case (virtual
	// time). Zero starts them all at once.
	Stagger time.Duration
	// MaxSessions caps each engine (0 → engine default).
	MaxSessions int
	// Faults is the delivery-layer fault plan (nil → fault-free run).
	Faults *netapi.FaultPlan
	// Drain, when positive, begins dispatcher drain at that virtual
	// offset: later session entries are refused with ErrDraining while
	// admitted sessions run to completion.
	Drain time.Duration
	// Reload, when positive, hot-loads the models directory into the
	// registry at that virtual offset and Syncs the dispatcher — the
	// zero-restart provisioning path under faults.
	Reload time.Duration
	// AltClients fires that many raw slp-to-upnp-alt unicast requests
	// (entry port 1427) after the reload, Stagger apart. Requires
	// Reload > 0: the alt case only exists once the models directory
	// has been loaded.
	AltClients int
	// Expect lists result-counter floors checked as the "expectations"
	// invariant.
	Expect []Expectation
}

// Expectation is a floor on one aggregate result counter: the run
// violates the expectations invariant when counter < Min. Counter is
// one of: started, ended, completed, failed, parseerrors, ignored,
// rejected, dropped, drainrejected, dispatched, ambiguous, unroutable,
// shed.
type Expectation struct {
	Counter string
	Min     int
}

// expectCounters names the valid Expectation counters.
var expectCounters = map[string]bool{
	"started": true, "ended": true, "completed": true, "failed": true,
	"parseerrors": true, "ignored": true, "rejected": true, "dropped": true,
	"drainrejected": true, "dispatched": true, "ambiguous": true,
	"unroutable": true, "shed": true,
}

// Validate rejects unrunnable scenarios.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("dst: scenario has no name")
	}
	if len(s.Cases) == 0 && s.AltClients == 0 {
		return fmt.Errorf("dst: scenario %s drives no cases", s.Name)
	}
	if s.Clients < 0 || s.MaxSessions < 0 || s.AltClients < 0 {
		return fmt.Errorf("dst: scenario %s has negative counts", s.Name)
	}
	if len(s.Cases) > 0 && s.Clients == 0 {
		return fmt.Errorf("dst: scenario %s lists cases but zero clients", s.Name)
	}
	if s.AltClients > 0 && s.Reload <= 0 {
		return fmt.Errorf("dst: scenario %s wants alt clients without a reload", s.Name)
	}
	for _, e := range s.Expect {
		if !expectCounters[e.Counter] {
			return fmt.Errorf("dst: scenario %s expects unknown counter %q", s.Name, e.Counter)
		}
	}
	return nil
}

// FormatScenario renders a scenario in the line-oriented table form
// ParseScenario reads — the form embedded in failure artifacts, so a
// replay needs no access to the original scenario registry.
func FormatScenario(s *Scenario) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", s.Name)
	if s.Info != "" {
		fmt.Fprintf(&b, "info %s\n", s.Info)
	}
	for _, c := range s.Cases {
		fmt.Fprintf(&b, "case %s\n", c)
	}
	if s.Clients > 0 {
		fmt.Fprintf(&b, "clients %d\n", s.Clients)
	}
	if s.Stagger > 0 {
		fmt.Fprintf(&b, "stagger %s\n", s.Stagger)
	}
	if s.MaxSessions > 0 {
		fmt.Fprintf(&b, "maxsessions %d\n", s.MaxSessions)
	}
	if s.Faults != nil {
		for i := range s.Faults.Rules {
			b.WriteString(netapi.FormatFaultRule(s.Faults.Rules[i]))
			b.WriteByte('\n')
		}
	}
	if s.Drain > 0 {
		fmt.Fprintf(&b, "drain %s\n", s.Drain)
	}
	if s.Reload > 0 {
		fmt.Fprintf(&b, "reload %s\n", s.Reload)
	}
	if s.AltClients > 0 {
		fmt.Fprintf(&b, "altclients %d\n", s.AltClients)
	}
	for _, e := range s.Expect {
		fmt.Fprintf(&b, "expect %s>=%d\n", e.Counter, e.Min)
	}
	return b.String()
}

// ParseScenario reads the table form produced by FormatScenario. Blank
// lines and #-comments are ignored.
func ParseScenario(text string) (*Scenario, error) {
	s := &Scenario{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		var err error
		switch key {
		case "scenario":
			s.Name = rest
		case "info":
			s.Info = rest
		case "case":
			s.Cases = append(s.Cases, rest)
		case "clients":
			s.Clients, err = strconv.Atoi(rest)
		case "stagger":
			s.Stagger, err = time.ParseDuration(rest)
		case "maxsessions":
			s.MaxSessions, err = strconv.Atoi(rest)
		case "fault":
			var r netapi.FaultRule
			if r, err = netapi.ParseFaultRule(line); err == nil {
				if s.Faults == nil {
					s.Faults = &netapi.FaultPlan{}
				}
				s.Faults.Rules = append(s.Faults.Rules, r)
			}
		case "drain":
			s.Drain, err = time.ParseDuration(rest)
		case "reload":
			s.Reload, err = time.ParseDuration(rest)
		case "altclients":
			s.AltClients, err = strconv.Atoi(rest)
		case "expect":
			name, min, ok := strings.Cut(rest, ">=")
			if !ok {
				return nil, fmt.Errorf("dst: line %d: expect wants counter>=min, got %q", ln+1, rest)
			}
			e := Expectation{Counter: strings.TrimSpace(name)}
			if e.Min, err = strconv.Atoi(strings.TrimSpace(min)); err == nil {
				s.Expect = append(s.Expect, e)
			}
		default:
			return nil, fmt.Errorf("dst: line %d: unknown scenario key %q", ln+1, key)
		}
		if err != nil {
			return nil, fmt.Errorf("dst: line %d: %s: %v", ln+1, key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// builtinCases is every merged case the builtin registry ships.
var builtinCases = []string{
	"slp-to-upnp", "slp-to-bonjour",
	"upnp-to-slp", "upnp-to-bonjour",
	"bonjour-to-upnp", "bonjour-to-slp",
}

// Builtin returns the shipped scenario catalog, keyed by name. The
// first five (loss, delay, reorder, duplicate, partition) are the CI
// sweep set; the rest exercise overload, drain and hot-reload paths
// plus seed-pinned regressions. selftest-fail is intentionally
// unsatisfiable — it exists so the artifact/replay pipeline itself is
// covered by an always-failing run.
func Builtin() map[string]*Scenario {
	plan := func(rules ...netapi.FaultRule) *netapi.FaultPlan {
		return &netapi.FaultPlan{Rules: rules}
	}
	m := map[string]*Scenario{}
	add := func(s *Scenario) { m[s.Name] = s }

	add(&Scenario{
		Name:    "loss",
		Info:    "every case under 25% datagram loss",
		Cases:   builtinCases,
		Clients: 2, Stagger: 3 * time.Millisecond,
		Faults: plan(netapi.FaultRule{Name: "lossy", Proto: "udp", Loss: 0.25}),
		Expect: []Expectation{{Counter: "started", Min: 1}},
	})
	add(&Scenario{
		Name:    "delay",
		Info:    "every case under 5ms±4ms added one-way delay",
		Cases:   builtinCases,
		Clients: 2, Stagger: 3 * time.Millisecond,
		Faults: plan(netapi.FaultRule{Name: "slow", Proto: "udp",
			Delay: 5 * time.Millisecond, DelayJitter: 4 * time.Millisecond}),
		Expect: []Expectation{{Counter: "completed", Min: 6}},
	})
	add(&Scenario{
		Name:    "reorder",
		Info:    "every case with 35% of datagrams held past later traffic",
		Cases:   builtinCases,
		Clients: 2, Stagger: 3 * time.Millisecond,
		Faults: plan(netapi.FaultRule{Name: "swap", Proto: "udp", Reorder: 0.35}),
		Expect: []Expectation{{Counter: "completed", Min: 6}},
	})
	add(&Scenario{
		Name:    "duplicate",
		Info:    "every case with 35% of datagrams delivered twice",
		Cases:   builtinCases,
		Clients: 2, Stagger: 3 * time.Millisecond,
		Faults: plan(netapi.FaultRule{Name: "twice", Proto: "udp",
			Duplicate: 0.35, DuplicateDelay: 300 * time.Microsecond}),
		Expect: []Expectation{{Counter: "completed", Min: 6}},
	})
	add(&Scenario{
		Name:    "partition",
		Info:    "bridge cut from the legacy services early, heals mid-run",
		Cases:   builtinCases,
		Clients: 2, Stagger: 3 * time.Millisecond,
		Faults: plan(
			netapi.FaultRule{Name: "cut-upnp", From: "10.0.0.5", To: "10.0.0.7",
				Start: 0, End: 400 * time.Millisecond, Partition: true},
			netapi.FaultRule{Name: "cut-slp", From: "10.0.0.5", To: "10.0.0.9",
				Start: 0, End: 400 * time.Millisecond, Partition: true},
			netapi.FaultRule{Name: "cut-mdns", From: "10.0.0.5", To: "10.0.0.11",
				Start: 0, End: 400 * time.Millisecond, Partition: true},
		),
		Expect: []Expectation{{Counter: "started", Min: 6}},
	})
	add(&Scenario{
		Name:    "flood",
		Info:    "entry flood against a small session cap: admission control under overload",
		Cases:   builtinCases,
		Clients: 12, Stagger: 500 * time.Microsecond, MaxSessions: 8,
		Expect: []Expectation{{Counter: "started", Min: 6}},
	})
	add(&Scenario{
		Name:    "drain-loss",
		Info:    "drain begins while lossy traffic is still arriving",
		Cases:   builtinCases,
		Clients: 3, Stagger: 40 * time.Millisecond,
		Faults: plan(netapi.FaultRule{Name: "lossy", Proto: "udp", Loss: 0.2}),
		Drain:  60 * time.Millisecond,
		Expect: []Expectation{{Counter: "started", Min: 1}},
	})
	add(&Scenario{
		Name:    "churn",
		Info:    "loss, late duplicates, reordering and an early drain all at once",
		Cases:   builtinCases,
		Clients: 3, Stagger: 2 * time.Millisecond,
		Faults: plan(
			netapi.FaultRule{Name: "lossy", Proto: "udp", Loss: 0.1},
			netapi.FaultRule{Name: "late-dup", Proto: "udp",
				Duplicate: 0.5, DuplicateDelay: 40 * time.Millisecond},
			netapi.FaultRule{Name: "swap", Proto: "udp", Reorder: 0.3},
		),
		Drain:  6 * time.Millisecond,
		Expect: []Expectation{{Counter: "started", Min: 1}},
	})
	add(&Scenario{
		Name:    "drain-partition",
		Info:    "drain begins while the legacy side is partitioned; stalled sessions must still terminate",
		Cases:   builtinCases,
		Clients: 2, Stagger: 3 * time.Millisecond,
		Faults: plan(
			netapi.FaultRule{Name: "cut-upnp", From: "10.0.0.5", To: "10.0.0.7",
				Start: 0, End: 100 * time.Millisecond, Partition: true},
			netapi.FaultRule{Name: "cut-slp", From: "10.0.0.5", To: "10.0.0.9",
				Start: 0, End: 100 * time.Millisecond, Partition: true},
			netapi.FaultRule{Name: "cut-mdns", From: "10.0.0.5", To: "10.0.0.11",
				Start: 0, End: 100 * time.Millisecond, Partition: true},
		),
		Drain:  20 * time.Millisecond,
		Expect: []Expectation{{Counter: "started", Min: 1}},
	})
	add(&Scenario{
		Name:    "flood-dup",
		Info:    "entry flood over a small session cap with heavy duplication: lease handling on every refusal path",
		Cases:   builtinCases,
		Clients: 12, Stagger: 500 * time.Microsecond, MaxSessions: 8,
		Faults: plan(netapi.FaultRule{Name: "dup-storm", Proto: "udp",
			Duplicate: 0.8, DuplicateDelay: 20 * time.Millisecond}),
		Expect: []Expectation{{Counter: "started", Min: 6}},
	})
	add(&Scenario{
		Name:    "reload-partition",
		Info:    "slp-to-upnp-alt hot-loaded while the bridge is partitioned from the UPnP device",
		Cases:   []string{"slp-to-upnp", "bonjour-to-upnp"},
		Clients: 2, Stagger: 3 * time.Millisecond,
		Faults: plan(netapi.FaultRule{Name: "cut-upnp", From: "10.0.0.5", To: "10.0.0.7",
			Start: 2 * time.Millisecond, End: 300 * time.Millisecond, Partition: true}),
		Reload: 50 * time.Millisecond, AltClients: 2,
		Expect: []Expectation{{Counter: "started", Min: 2}},
	})
	add(&Scenario{
		Name:    "selftest-fail",
		Info:    "intentionally unsatisfiable: total loss plus a completion floor, to exercise artifacts",
		Cases:   []string{"slp-to-upnp"},
		Clients: 1,
		Faults:  plan(netapi.FaultRule{Name: "void", Proto: "udp", Loss: 1.0}),
		Expect:  []Expectation{{Counter: "completed", Min: 1}},
	})
	return m
}

// Names returns the builtin scenario names, sorted.
func Names() []string {
	m := Builtin()
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SweepSet is the default scenario set for seed sweeps: the five fault
// modes the issue's acceptance gate names.
var SweepSet = []string{"loss", "delay", "reorder", "duplicate", "partition"}

// Lookup resolves a builtin scenario by name.
func Lookup(name string) (*Scenario, error) {
	if s, ok := Builtin()[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("dst: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
}
