package dst

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"starlink/internal/trace"
)

// artifactHeader is the first line of every failure artifact; the
// version bumps if the format ever changes incompatibly.
const artifactHeader = "starlink-dst-artifact v1"

// Artifact is a parsed failure artifact: everything needed to replay
// the run (scenario table + seed) and to verify the replay reproduced
// it (trace hash, trace lines, violations). The counter and
// failed-session sections are human diagnostics and are carried
// verbatim, not parsed.
type Artifact struct {
	Scenario       *Scenario
	Seed           int64
	TraceHash      uint64
	VirtualElapsed time.Duration
	Violations     []string
	TraceLines     []string
}

// ArtifactName is the conventional file name for one failed run.
func ArtifactName(sc *Scenario, seed int64) string {
	return fmt.Sprintf("dst-%s-seed%d.txt", sc.Name, seed)
}

// FormatArtifact renders a failed run as a self-contained text
// artifact: identity, the full scenario table (so replay needs no
// scenario registry), the violated invariants, the final accounting
// surfaces, per-session flight-recorder dumps for failed sessions, and
// the complete delivery-event trace.
func FormatArtifact(r *Result) string {
	var b strings.Builder
	b.WriteString(artifactHeader + "\n")
	fmt.Fprintf(&b, "seed %d\n", r.Seed)
	fmt.Fprintf(&b, "trace-hash %016x\n", r.TraceHash)
	fmt.Fprintf(&b, "virtual-elapsed %s\n", r.VirtualElapsed)

	b.WriteString("\n[scenario]\n")
	b.WriteString(FormatScenario(r.Scenario))

	b.WriteString("\n[violations]\n")
	for _, v := range r.Violations {
		b.WriteString(v.String() + "\n")
	}

	b.WriteString("\n[counters]\n")
	for _, c := range sortedKeys(r.Stats) {
		st := r.Stats[c]
		fmt.Fprintf(&b, "case %s started=%d ended=%d completed=%d failed=%d parseerrors=%d ignored=%d rejected=%d dropped=%d drainrejected=%d live=%d\n",
			c, r.Started[c], r.Ended[c], st.Completed, st.Failed, st.ParseErrors,
			st.Ignored, st.Rejected, st.Dropped, st.DrainRejected, st.Live)
	}
	fmt.Fprintf(&b, "dispatch dispatched=%d ambiguous=%d unroutable=%d parseerrors=%d\n",
		r.Dispatch.Dispatched, r.Dispatch.Ambiguous, r.Dispatch.Unroutable, r.Dispatch.ParseErrors)
	for _, c := range sortedKeys(r.Probes) {
		p := r.Probes[c]
		fmt.Fprintf(&b, "probe %s live=%d sem=%d lanedepth=%d\n", c, p.Live, p.SemInUse, p.LaneDepth)
	}
	for _, c := range sortedKeys(r.Clients) {
		t := r.Clients[c]
		fmt.Fprintf(&b, "clients %s done=%d hits=%d\n", c, t.Done, t.Hits)
	}
	fmt.Fprintf(&b, "lease-delta %d\n", r.LeaseDelta)

	if len(r.FailedSessions) > 0 {
		b.WriteString("\n[failed-sessions]\n")
		for _, f := range r.FailedSessions {
			fmt.Fprintf(&b, "session case=%s origin=%s err=%q\n", f.Case, f.Origin, f.Err)
			if len(f.Trace) > 0 {
				fmt.Fprintf(&b, "  flight %s\n", trace.FormatEvents(f.Trace))
			}
		}
	}

	b.WriteString("\n[trace]\n")
	for _, line := range r.TraceLines {
		b.WriteString(line + "\n")
	}
	return b.String()
}

// ParseArtifact reads an artifact back. Unknown sections are skipped,
// so diagnostics can grow without breaking old readers.
func ParseArtifact(text string) (*Artifact, error) {
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != artifactHeader {
		return nil, fmt.Errorf("dst: not a DST artifact (want %q first line)", artifactHeader)
	}
	a := &Artifact{}
	section := ""
	var scenarioLines []string
	for _, line := range lines[1:] {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "[") && strings.HasSuffix(trimmed, "]") {
			section = strings.Trim(trimmed, "[]")
			continue
		}
		switch section {
		case "":
			if trimmed == "" {
				continue
			}
			key, rest, _ := strings.Cut(trimmed, " ")
			var err error
			switch key {
			case "seed":
				a.Seed, err = strconv.ParseInt(rest, 10, 64)
			case "trace-hash":
				a.TraceHash, err = strconv.ParseUint(rest, 16, 64)
			case "virtual-elapsed":
				a.VirtualElapsed, err = time.ParseDuration(rest)
			default:
				return nil, fmt.Errorf("dst: unknown artifact header key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("dst: artifact header %s: %v", key, err)
			}
		case "scenario":
			scenarioLines = append(scenarioLines, line)
		case "violations":
			if trimmed != "" {
				a.Violations = append(a.Violations, trimmed)
			}
		case "trace":
			if trimmed != "" {
				a.TraceLines = append(a.TraceLines, line)
			}
		}
	}
	sc, err := ParseScenario(strings.Join(scenarioLines, "\n"))
	if err != nil {
		return nil, fmt.Errorf("dst: artifact scenario: %w", err)
	}
	a.Scenario = sc
	return a, nil
}
