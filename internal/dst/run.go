package dst

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"starlink/internal/bench"
	"starlink/internal/composer"
	"starlink/internal/core"
	"starlink/internal/engine"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/provision"
	"starlink/internal/registry"
	"starlink/internal/simnet"
	"starlink/internal/trace"
)

// The simulated topology: one bridge host, one legacy service per
// protocol (the bench workload's printer in each spelling), clients on
// per-case subnets, and a driver node for raw traffic and mid-run
// control actions. The UPnP device IP must agree with bench.HTTPURL —
// the bridge dials the advertised location.
const (
	bridgeIP     = "10.0.0.5"
	upnpIP       = "10.0.0.7"
	slpIP        = "10.0.0.9"
	bonjourIP    = "10.0.0.11"
	driverIP     = "10.250.0.1"
	altEntryPort = 1427
)

// Config parameterizes Run with host-environment facts a scenario
// cannot know.
type Config struct {
	// ModelsDir is the directory reload scenarios hot-load (the
	// slp-to-upnp-alt model set). Empty means "examples/models"
	// relative to the working directory.
	ModelsDir string
	// Registry, when non-nil, is shared across runs to amortize model
	// parsing. Ignored when the scenario reloads: a reload mutates the
	// registry, so those runs always build a fresh one.
	Registry *registry.Registry
}

func (c Config) modelsDir() string {
	if c.ModelsDir != "" {
		return c.ModelsDir
	}
	return "examples/models"
}

// sharedRegistry amortizes builtin model parsing across runs that do
// not mutate the registry (same rationale as the bench package).
var (
	sharedRegOnce sync.Once
	sharedReg     *registry.Registry
	sharedRegErr  error
)

func sharedRegistry() (*registry.Registry, error) {
	sharedRegOnce.Do(func() {
		sharedReg, sharedRegErr = registry.Builtin()
	})
	return sharedReg, sharedRegErr
}

// ClientTally counts one case's client outcomes: Done lookups that
// returned at all, of which Hits carried at least one service URL.
type ClientTally struct {
	Done int
	Hits int
}

// FailedSession is one session that ended in error, with its
// flight-recorder trace when the engine's ring captured one.
type FailedSession struct {
	Case   string
	Origin string
	Err    string
	Trace  []trace.Event
}

// Result is everything one deterministic run produced: the identity
// (scenario, seed), the delivery-event trace that pins the
// interleaving, the final accounting surfaces, and the invariant
// violations (empty on a passing run).
type Result struct {
	Scenario *Scenario
	Seed     int64

	// TraceHash/TraceLines are the simulator's delivery-event trace,
	// captured at quiescence before teardown — the replay comparand.
	TraceHash  uint64
	TraceLines []string
	// VirtualElapsed is how much simulated time the run covered.
	VirtualElapsed time.Duration

	Stats    map[string]engine.Counters
	Dispatch provision.DispatchCounters
	Lanes    map[string]engine.LaneDump
	Probes   map[string]engine.Probe
	Started  map[string]int
	Ended    map[string]int
	Clients  map[string]ClientTally
	// LeaseDelta is outstanding pooled buffers after teardown minus
	// before setup; nonzero means a leak (or double release).
	LeaseDelta int64

	FailedSessions []FailedSession
	Violations     []Violation
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// collector receives dispatcher hooks. Its own mutex makes it safe
// from engine goroutines; reads happen only after quiescence.
type collector struct {
	mu      sync.Mutex
	started map[string]int
	ended   map[string]int
	failed  []FailedSession
}

func (c *collector) hooks() provision.Hooks {
	return provision.Hooks{
		SessionStart: func(caseName string, origin netapi.Addr, at time.Time) {
			c.mu.Lock()
			c.started[caseName]++
			c.mu.Unlock()
		},
		SessionEnd: func(caseName string, s engine.SessionStats) {
			c.mu.Lock()
			c.ended[caseName]++
			if s.Err != nil {
				c.failed = append(c.failed, FailedSession{
					Case:   caseName,
					Origin: s.Origin.String(),
					Err:    s.Err.Error(),
					Trace:  s.Trace,
				})
			}
			c.mu.Unlock()
		},
	}
}

// Run executes one (scenario, seed) simulation to quiescence and
// checks the invariant catalog. The error return is for runs that
// could not be set up at all; a run that executed but violated
// invariants returns a Result with Violations set and a nil error.
//
// Runs must not execute concurrently in one process: the lease-balance
// invariant reads the process-global netapi.LeasedBuffers counter.
func Run(sc *Scenario, seed int64, cfg Config) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var reg *registry.Registry
	var err error
	switch {
	case sc.Reload > 0:
		// The reload mutates the registry; never share one.
		reg, err = registry.Builtin()
	case cfg.Registry != nil:
		reg = cfg.Registry
	default:
		reg, err = sharedRegistry()
	}
	if err != nil {
		return nil, err
	}

	leases0 := netapi.LeasedBuffers()
	opts := []simnet.Option{
		simnet.WithSeed(seed),
		simnet.WithEventTrace(),
		simnet.WithLeasedDelivery(),
	}
	if sc.Faults != nil {
		opts = append(opts, simnet.WithFaults(sc.Faults))
	}
	sim := simnet.New(opts...)
	epoch := sim.Now()

	col := &collector{started: map[string]int{}, ended: map[string]int{}}
	maxSessions := sc.MaxSessions
	if maxSessions == 0 {
		maxSessions = 1024
	}
	fw := core.NewWithRegistry(sim, reg)
	// Host every loaded case (nil filter): multicast entry traffic may
	// classify into any of them, and the invariants account per case.
	// The worker count is pinned — the default tracks GOMAXPROCS,
	// which must not influence a deterministic schedule.
	d, err := fw.DeployDispatcher(context.Background(), bridgeIP, nil,
		provision.WithHooks(col.hooks()),
		provision.WithEngineOptions(
			engine.WithIngestWorkers(4),
			engine.WithMaxSessions(maxSessions),
			engine.WithWindowJitter(bench.BridgeSLPWindowJitter, seed),
			engine.WithTraceRing(64),
		))
	if err != nil {
		return nil, err
	}

	if err := startServices(sim, seed); err != nil {
		_ = d.Close()
		return nil, err
	}

	// cbErr carries the first error raised inside an event callback.
	// Callbacks are serialized by the simulator, and RunToQuiescence
	// synchronizes with them, so plain variables suffice.
	var cbErr error
	fail := func(err error) {
		if err != nil && cbErr == nil {
			cbErr = err
		}
	}

	tallies := map[string]*ClientTally{}
	for ci, caseName := range sc.Cases {
		tally := &ClientTally{}
		tallies[caseName] = tally
		for i := 0; i < sc.Clients; i++ {
			node, err := sim.NewNode(fmt.Sprintf("10.%d.%d.%d", ci+1, i/200, i%200+1))
			if err != nil {
				_ = d.Close()
				return nil, err
			}
			start := time.Millisecond + time.Duration(i)*sc.Stagger
			name := caseName
			node.After(start, func() { startClient(node, name, col, tally, fail) })
		}
	}

	driver, err := sim.NewNode(driverIP)
	if err != nil {
		_ = d.Close()
		return nil, err
	}
	if sc.Drain > 0 {
		driver.After(sc.Drain, func() { d.BeginDrain() })
	}
	if sc.Reload > 0 {
		altWire, err := composeAltRequest(reg)
		if err != nil {
			_ = d.Close()
			return nil, err
		}
		rawSock, err := driver.OpenUDP(0, func(netapi.Packet) {})
		if err != nil {
			_ = d.Close()
			return nil, err
		}
		modelsDir := cfg.modelsDir()
		driver.After(sc.Reload, func() {
			if _, err := provision.LoadDir(reg, modelsDir); err != nil {
				fail(fmt.Errorf("dst: reload: %w", err))
				return
			}
			if err := d.Sync(); err != nil {
				fail(fmt.Errorf("dst: sync after reload: %w", err))
			}
		})
		for i := 0; i < sc.AltClients; i++ {
			at := sc.Reload + 2*time.Millisecond + time.Duration(i)*sc.Stagger
			driver.After(at, func() {
				fail(rawSock.Send(netapi.Addr{IP: bridgeIP, Port: altEntryPort}, altWire))
			})
		}
	}

	sim.RunToQuiescence()
	if cbErr != nil {
		_ = d.Close()
		return nil, cbErr
	}

	// Capture every surface — including the event trace — before
	// teardown: Close iterates internal maps, so its tail of
	// socket-close events is not order-deterministic and stays out of
	// the replay comparand.
	col.mu.Lock()
	res := &Result{
		Scenario:       sc,
		Seed:           seed,
		TraceHash:      sim.TraceHash(),
		TraceLines:     sim.TraceLines(),
		VirtualElapsed: sim.Now().Sub(epoch),
		Stats:          d.Stats(),
		Dispatch:       d.DispatchStats(),
		Lanes:          d.Lanes(),
		Probes:         d.Probe(),
		Started:        col.started,
		Ended:          col.ended,
		FailedSessions: col.failed,
		Clients:        map[string]ClientTally{},
	}
	col.mu.Unlock()
	for name, t := range tallies {
		res.Clients[name] = *t
	}

	_ = d.Close()
	sim.RunToQuiescence()
	res.LeaseDelta = netapi.LeasedBuffers() - leases0
	res.Violations = checkInvariants(sc, res)
	return res, nil
}

// startServices starts the three legacy services every scenario can
// reach: the UPnP printer device (answering *-to-upnp cases), the SLP
// service agent (*-to-slp) and the Bonjour responder (*-to-bonjour).
// Response delays draw from per-service RNGs derived from the run
// seed, so they vary across seeds but never across runs of one seed.
func startServices(sim *simnet.Net, seed int64) error {
	un, err := sim.NewNode(upnpIP)
	if err != nil {
		return err
	}
	if _, err := upnp.NewDevice(un, bench.UPnPType, bench.HTTPURL, 5431,
		upnp.WithSSDPDelay(bench.SSDPDeviceDelayMin, bench.SSDPDeviceDelayMax,
			rand.New(rand.NewSource(seed*7919+1)))); err != nil {
		return err
	}
	sn, err := sim.NewNode(slpIP)
	if err != nil {
		return err
	}
	if _, err := slp.NewServiceAgent(sn, bench.SLPType, bench.ServiceURL,
		slp.WithResponseDelay(bench.SLPResponseDelayMax,
			rand.New(rand.NewSource(seed*7919+2)))); err != nil {
		return err
	}
	bn, err := sim.NewNode(bonjourIP)
	if err != nil {
		return err
	}
	if _, err := dnssd.NewResponder(bn, bench.DNSName, bench.ServiceURL,
		dnssd.WithAnswerDelay(bench.MDNSAnswerDelayMin, bench.MDNSAnswerDelayMax,
			rand.New(rand.NewSource(seed*7919+3)))); err != nil {
		return err
	}
	return nil
}

// startClient fires one protocol-native lookup appropriate for the
// case's initiator side. Wide client windows keep slow bridged paths
// (SLP convergence, fault-delayed replies) inside the window; a client
// whose window closes empty still counts as Done.
func startClient(node netapi.Node, caseName string, col *collector, tally *ClientTally, fail func(error)) {
	record := func(hits int) {
		col.mu.Lock()
		tally.Done++
		if hits > 0 {
			tally.Hits++
		}
		col.mu.Unlock()
	}
	switch {
	case strings.HasPrefix(caseName, "slp-"):
		ua := slp.NewUserAgent(node, slp.WithConvergenceWait(bench.SLPConvergenceWait))
		ua.Lookup(bench.SLPType, func(r slp.LookupResult) { record(len(r.URLs)) })
	case strings.HasPrefix(caseName, "upnp-"):
		cp := upnp.NewControlPoint(node, upnp.WithMX(bench.WideMX))
		cp.Discover(bench.UPnPType, func(r upnp.DiscoverResult) { record(len(r.ServiceURLs)) })
	case strings.HasPrefix(caseName, "bonjour-"):
		b := dnssd.NewBrowser(node, dnssd.WithBrowseWindow(bench.WideBrowse))
		b.Browse(bench.DNSName, func(r dnssd.BrowseResult) { record(len(r.URLs)) })
	default:
		fail(fmt.Errorf("dst: case %q has no known initiator protocol", caseName))
	}
}

// composeAltRequest builds the raw SLP SrvRequest wire form the
// slp-to-upnp-alt entry (unicast :1427) expects, with the same
// MDL-driven composer the bridge uses.
func composeAltRequest(reg *registry.Registry) ([]byte, error) {
	spec, err := reg.Spec("SLP")
	if err != nil {
		return nil, err
	}
	comp, err := composer.New(spec, reg.Types(), nil)
	if err != nil {
		return nil, err
	}
	req := message.New("SLP", "SLPSrvRequest")
	req.AddPrimitive("Version", "Integer", message.Int(2))
	req.AddPrimitive("FunctionID", "Integer", message.Int(1))
	req.AddPrimitive("XID", "Integer", message.Int(99))
	req.AddPrimitive("LangTag", "String", message.Str("en"))
	req.AddPrimitive("SRVType", "String", message.Str(bench.SLPType))
	return comp.Compose(req)
}
