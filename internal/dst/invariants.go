package dst

import (
	"fmt"
	"sort"

	"starlink/internal/lanes"
)

// Violation is one failed invariant: which one, and the numbers that
// broke it.
type Violation struct {
	// Invariant names the catalog entry: sessions-terminal,
	// session-leak, lease-balance, lane-conservation,
	// drain-consistency or expectations.
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Counter resolves one aggregate result counter by the names Expect
// uses (see Expectation).
func (r *Result) Counter(name string) int {
	sum := 0
	switch name {
	case "started":
		for _, n := range r.Started {
			sum += n
		}
	case "ended":
		for _, n := range r.Ended {
			sum += n
		}
	case "dispatched":
		return r.Dispatch.Dispatched
	case "ambiguous":
		return r.Dispatch.Ambiguous
	case "unroutable":
		return r.Dispatch.Unroutable
	case "shed":
		for _, d := range r.Lanes {
			for l := range d.Counters {
				sum += int(d.Counters[l].Shed)
			}
		}
	default:
		for _, c := range r.Stats {
			switch name {
			case "completed":
				sum += c.Completed
			case "failed":
				sum += c.Failed
			case "parseerrors":
				sum += c.ParseErrors
			case "ignored":
				sum += c.Ignored
			case "rejected":
				sum += c.Rejected
			case "dropped":
				sum += c.Dropped
			case "drainrejected":
				sum += c.DrainRejected
			}
		}
	}
	return sum
}

// checkInvariants evaluates the whole catalog against a finished run.
// Every check reads only the Result — the artifact embeds enough to
// re-derive each verdict.
func checkInvariants(sc *Scenario, r *Result) []Violation {
	var out []Violation
	bad := func(inv, format string, args ...any) {
		out = append(out, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}

	// sessions-terminal: every admitted session reached a terminal
	// state, and the terminal counters agree with the lifecycle hooks.
	for _, c := range caseUnion(r) {
		started, ended := r.Started[c], r.Ended[c]
		if started != ended {
			bad("sessions-terminal", "%s: %d sessions started, %d ended", c, started, ended)
		}
		if st, ok := r.Stats[c]; ok {
			if terminal := st.Completed + st.Failed; ended != terminal {
				bad("sessions-terminal", "%s: %d session-end hooks but completed+failed = %d",
					c, ended, terminal)
			}
		}
	}

	// session-leak: at quiescence no engine may still hold a session
	// slot, a semaphore token, or a queued payload.
	for _, c := range sortedKeys(r.Probes) {
		p := r.Probes[c]
		if p.Live != 0 || p.SemInUse != 0 || p.LaneDepth != 0 {
			bad("session-leak", "%s: live=%d sem=%d lanedepth=%d at quiescence",
				c, p.Live, p.SemInUse, p.LaneDepth)
		}
	}
	for _, c := range sortedKeys(r.Stats) {
		if live := r.Stats[c].Live; live != 0 {
			bad("session-leak", "%s: final counters report %d live sessions", c, live)
		}
	}

	// lease-balance: every pooled buffer leased during the run was
	// released exactly once by teardown.
	if r.LeaseDelta != 0 {
		bad("lease-balance", "%+d pooled buffer leases outstanding after teardown", r.LeaseDelta)
	}

	// lane-conservation: per case and lane, every admitted payload was
	// processed, evicted or drained — none vanished, none remain.
	for _, c := range sortedKeys(r.Lanes) {
		d := r.Lanes[c]
		for l := range d.Counters {
			ct := d.Counters[l]
			if out := ct.Processed + ct.Evicted + ct.Drained; ct.Admitted != out {
				bad("lane-conservation", "%s/%s: admitted %d != processed %d + evicted %d + drained %d",
					c, lanes.Lane(l), ct.Admitted, ct.Processed, ct.Evicted, ct.Drained)
			}
			if ct.Depth != 0 {
				bad("lane-conservation", "%s/%s: depth %d at quiescence", c, lanes.Lane(l), ct.Depth)
			}
		}
	}

	// drain-consistency: drain refusals can only happen in a scenario
	// that drains.
	if sc.Drain == 0 {
		if n := r.Counter("drainrejected"); n != 0 {
			bad("drain-consistency", "%d drain rejections in a scenario that never drains", n)
		}
	}

	// expectations: the scenario's counter floors.
	for _, e := range sc.Expect {
		if got := r.Counter(e.Counter); got < e.Min {
			bad("expectations", "%s = %d, want >= %d", e.Counter, got, e.Min)
		}
	}
	return out
}

// caseUnion returns every case name any surface mentions, sorted.
func caseUnion(r *Result) []string {
	set := map[string]bool{}
	for c := range r.Started {
		set[c] = true
	}
	for c := range r.Ended {
		set[c] = true
	}
	for c := range r.Stats {
		set[c] = true
	}
	return sortedKeys(set)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
