package dst

import (
	"strings"
	"testing"
	"time"

	"starlink/internal/netapi"
)

// testConfig points reload scenarios at the repo's models directory.
func testConfig() Config { return Config{ModelsDir: "../../examples/models"} }

// smallScenario is a fast two-case workload used by the determinism
// tests: big enough to exercise ambiguous dispatch and both engines,
// small enough to run many times.
func smallScenario(rules ...netapi.FaultRule) *Scenario {
	sc := &Scenario{
		Name:    "small",
		Cases:   []string{"slp-to-upnp", "bonjour-to-slp"},
		Clients: 2,
		Stagger: 3 * time.Millisecond,
	}
	if len(rules) > 0 {
		sc.Faults = &netapi.FaultPlan{Rules: rules}
	}
	return sc
}

func TestScenarioRoundTrip(t *testing.T) {
	for name, sc := range Builtin() {
		text := FormatScenario(sc)
		got, err := ParseScenario(text)
		if err != nil {
			t.Fatalf("%s: parse formatted scenario: %v\n%s", name, err, text)
		}
		if again := FormatScenario(got); again != text {
			t.Errorf("%s: format not stable:\n%s\nvs\n%s", name, text, again)
		}
	}
}

func TestScenarioParseErrors(t *testing.T) {
	for _, bad := range []string{
		"scenario x\ncase a\nclients nope\n",                  // bad int
		"scenario x\ncase a\nclients 1\nwat 3\n",              // unknown key
		"scenario x\n",                                        // no cases
		"scenario x\ncase a\n",                                // cases but no clients
		"scenario x\ncase a\nclients 1\nexpect completed>1\n", // bad op
		"scenario x\ncase a\nclients 1\nexpect nonsense>=1\n", // unknown counter
		"scenario x\ncase a\nclients 1\naltclients 1\n",       // alt without reload
		"scenario x\ncase a\nclients 1\nfault loss=2\n",       // bad fault
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario accepted %q", bad)
		}
	}
}

func TestBuiltinScenariosValidate(t *testing.T) {
	if len(SweepSet) != 5 {
		t.Fatalf("sweep set has %d scenarios, want 5", len(SweepSet))
	}
	for _, name := range SweepSet {
		if _, err := Lookup(name); err != nil {
			t.Errorf("sweep scenario %s: %v", name, err)
		}
	}
	for name, sc := range Builtin() {
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin scenario %s invalid: %v", name, err)
		}
		if name != sc.Name {
			t.Errorf("scenario registered as %q names itself %q", name, sc.Name)
		}
	}
}

// TestRunDeterminism is the heart of the DST contract: one (scenario,
// seed) pair always produces the same delivery-event trace.
func TestRunDeterminism(t *testing.T) {
	sc := smallScenario(netapi.FaultRule{Proto: "udp", Loss: 0.2, Duplicate: 0.2})
	a, err := Run(sc, 7, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, 7, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("same seed diverged: %016x vs %016x\n%s",
			a.TraceHash, b.TraceHash, firstDivergence(a.TraceLines, b.TraceLines))
	}
	if len(a.TraceLines) == 0 {
		t.Fatal("run recorded no trace lines")
	}
	// The fault plane must actually be in the schedule: a 20% loss /
	// 20% duplication plan over hundreds of datagrams leaves marks.
	var sawDrop, sawDup bool
	for _, line := range a.TraceLines {
		if strings.HasSuffix(line, "drop loss") {
			sawDrop = true
		}
		if strings.HasSuffix(line, " dup") {
			sawDup = true
		}
	}
	if !sawDrop || !sawDup {
		t.Fatalf("fault plan left no trace marks (drop=%v dup=%v) across %d lines",
			sawDrop, sawDup, len(a.TraceLines))
	}
	if a.Counter("started") == 0 {
		t.Fatal("no sessions started — the workload never reached the bridge")
	}
	c, err := Run(sc, 8, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced identical traces — seed is not reaching the schedule")
	}
}

// TestRegressionDeployOrderDeterminism pins the fix for the first bug
// this rig surfaced: the dispatcher deployed cases, bound listeners
// and tore down stale deployments in map-iteration order, so which
// socket drew which ephemeral port — and, on mid-run Sync, the order
// of traced close events — varied between same-seed runs. The loss
// scenario (all six cases, maximal listener sharing) and the
// reload-partition scenario (mid-run Sync) cover both paths; the seeds
// reproduced the divergence roughly every other run before the fix.
func TestRegressionDeployOrderDeterminism(t *testing.T) {
	for _, tc := range []struct {
		scenario string
		seed     int64
	}{{"loss", 7}, {"reload-partition", 11}} {
		sc, err := Lookup(tc.scenario)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(sc, tc.seed, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sc, tc.seed, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if a.TraceHash != b.TraceHash {
			t.Errorf("%s seed %d diverged: %016x vs %016x\n%s", tc.scenario, tc.seed,
				a.TraceHash, b.TraceHash, firstDivergence(a.TraceLines, b.TraceLines))
		}
	}
}

// TestRunInvariantsHold runs a slice of the builtin catalog on a few
// seeds each; any violation is a real bug (or a broken invariant).
func TestRunInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario sweep in -short mode")
	}
	for _, name := range []string{"loss", "duplicate", "partition", "flood", "drain-loss", "reload-partition"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			res, err := Run(sc, seed, testConfig())
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			for _, v := range res.Violations {
				t.Errorf("%s seed %d: %s", name, seed, v)
			}
		}
	}
}

// TestReloadScenarioDeploysAlt checks the hot-reload path actually
// reaches the alt case: after the reload, raw unicast requests must
// open sessions in slp-to-upnp-alt.
func TestReloadScenarioDeploysAlt(t *testing.T) {
	sc, err := Lookup("reload-partition")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, 1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Started["slp-to-upnp-alt"] == 0 {
		t.Fatalf("no sessions in slp-to-upnp-alt after reload; started=%v", res.Started)
	}
}

// TestSelftestFailAndReplay drives the full failure pipeline: the
// intentionally unsatisfiable scenario must violate its expectation,
// the artifact must round-trip, and replaying it must reproduce the
// identical trace and violations.
func TestSelftestFailAndReplay(t *testing.T) {
	sc, err := Lookup("selftest-fail")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, 99, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("selftest-fail passed; it must violate its expectation")
	}

	text := FormatArtifact(res)
	art, err := ParseArtifact(text)
	if err != nil {
		t.Fatalf("parse artifact: %v\n%s", err, text)
	}
	if art.Seed != 99 || art.TraceHash != res.TraceHash {
		t.Fatalf("artifact identity mangled: seed=%d hash=%016x", art.Seed, art.TraceHash)
	}
	if len(art.Violations) != len(res.Violations) {
		t.Fatalf("artifact carries %d violations, run had %d", len(art.Violations), len(res.Violations))
	}
	if FormatScenario(art.Scenario) != FormatScenario(sc) {
		t.Fatal("artifact scenario does not round-trip")
	}

	rep, err := Replay(art, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reproduced() {
		t.Fatalf("replay did not reproduce: trace=%v violations=%v divergence=%s",
			rep.TraceMatch, rep.ViolationsMatch, rep.Divergence)
	}
}

// TestArtifactEmbedsFlightRecorder checks that failed sessions carry
// their engine flight-recorder dumps into the artifact: the partition
// scenario fails every session (the legacy side is unreachable for
// longer than the bridge's discovery windows), and each failure must
// appear with a parseable flight trace.
func TestArtifactEmbedsFlightRecorder(t *testing.T) {
	sc, err := Lookup("partition")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, 1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedSessions) == 0 {
		t.Fatal("partition run failed no sessions; the scenario no longer exercises failure traces")
	}
	for _, f := range res.FailedSessions {
		if len(f.Trace) == 0 {
			t.Fatalf("failed session %s/%s has no flight-recorder trace", f.Case, f.Origin)
		}
	}
	text := FormatArtifact(res)
	if !strings.Contains(text, "[failed-sessions]") || !strings.Contains(text, "  flight ") {
		t.Fatalf("artifact missing flight-recorder section:\n%.800s", text)
	}
}

// TestArtifactRejectsGarbage pins the parser's failure modes.
func TestArtifactRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not an artifact\n",
		artifactHeader + "\nseed nope\n",
		artifactHeader + "\nwat 1\n",
	} {
		if _, err := ParseArtifact(bad); err == nil {
			t.Errorf("ParseArtifact accepted %q", bad)
		}
	}
}

// TestCounterNamesCovered keeps Expectation counters and Result.Counter
// in sync.
func TestCounterNamesCovered(t *testing.T) {
	r := &Result{}
	for name := range expectCounters {
		_ = r.Counter(name) // must not panic; zero Result sums to zero
		if !strings.EqualFold(name, name) {
			t.Fatal("unreachable")
		}
	}
}
