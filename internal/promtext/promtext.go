// Package promtext implements the Prometheus text exposition format
// (version 0.0.4): a Writer that renders metric families with escaped
// labels and histogram triplets, and a Parser that reads an exposition
// back into samples for programmatic assertions (cmd/promcheck, the CI
// smoke test). Only the subset the Starlink collector emits is
// supported: counter, gauge and histogram families with optional HELP
// lines.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair. Writers emit labels in the order
// given, so callers control series identity deterministically.
type Label struct {
	Name  string
	Value string
}

// Bucket is one cumulative histogram bucket: Count samples were ≤ Le
// (in the exposition's unit, conventionally seconds). Use math.Inf(1)
// for the +Inf bucket; Writer adds it automatically if absent.
type Bucket struct {
	Le    float64
	Count uint64
}

// Writer renders an exposition incrementally. The zero value is not
// usable; construct with NewWriter.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter returns a Writer emitting to w. Errors from w are sticky
// and reported by Err.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

// Family opens a metric family: a # HELP line (when help is non-empty)
// and a # TYPE line. Call before the family's samples.
func (w *Writer) Family(name, help, typ string) {
	if help != "" {
		w.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	w.printf("# TYPE %s %s\n", name, typ)
}

// Sample emits one sample line: name{labels} value.
func (w *Writer) Sample(name string, labels []Label, value float64) {
	w.printf("%s%s %s\n", name, formatLabels(labels), formatValue(value))
}

// HistogramSample emits the conventional histogram triplet for one
// series: name_bucket lines (cumulative, with a trailing +Inf bucket
// added if absent), name_sum and name_count.
func (w *Writer) HistogramSample(name string, labels []Label, buckets []Bucket, sum float64, count uint64) {
	hasInf := false
	for _, b := range buckets {
		ls := append(append(make([]Label, 0, len(labels)+1), labels...),
			Label{Name: "le", Value: formatLe(b.Le)})
		w.Sample(name+"_bucket", ls, float64(b.Count))
		if math.IsInf(b.Le, 1) {
			hasInf = true
		}
	}
	if !hasInf {
		ls := append(append(make([]Label, 0, len(labels)+1), labels...),
			Label{Name: "le", Value: "+Inf"})
		w.Sample(name+"_bucket", ls, float64(count))
	}
	w.Sample(name+"_sum", labels, sum)
	w.Sample(name+"_count", labels, float64(count))
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound; +Inf uses the conventional literal.
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Sample is one parsed sample line.
type Sample struct {
	// Name is the sample's metric name (including any _bucket/_sum/
	// _count suffix).
	Name string
	// Labels are the sample's label pairs.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Exposition is a parsed text exposition.
type Exposition struct {
	// Types maps family name → declared TYPE.
	Types map[string]string
	// Help maps family name → HELP text.
	Help map[string]string
	// Samples lists every sample line in document order.
	Samples []Sample
}

// Parse reads a text exposition, validating line syntax, label quoting
// and numeric values. It does not require TYPE lines but records the
// ones present.
func Parse(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: map[string]string{}, Help: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line); err != nil {
				return nil, fmt.Errorf("promtext: line %d: %w", lineno, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineno, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("promtext: %w", err)
	}
	return exp, nil
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		e.Types[fields[2]] = fields[3]
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		e.Help[fields[2]] = help
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Metric name runs to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := -1
		inQuote, esc := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case inQuote && c == '\\':
				esc = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				close = i
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:close], s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimLeft(rest, " \t")
	// Drop an optional timestamp.
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		rest = rest[:sp]
	}
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, line)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string, into map[string]string) error {
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", s[i:])
		}
		name := strings.TrimSpace(s[i : i+eq])
		if !validName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		i++
		var sb strings.Builder
		for {
			if i >= len(s) {
				return fmt.Errorf("unterminated label value for %q", name)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return fmt.Errorf("dangling escape in label %q", name)
				}
				switch s[i+1] {
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				case 'n':
					sb.WriteByte('\n')
				default:
					return fmt.Errorf("unknown escape \\%c in label %q", s[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			sb.WriteByte(c)
			i++
		}
		into[name] = sb.String()
		if i < len(s) {
			if s[i] != ',' {
				return fmt.Errorf("expected ',' after label %q", name)
			}
			i++
		}
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Find returns the samples named name whose labels include every pair
// in match (nil matches all), in document order.
func (e *Exposition) Find(name string, match map[string]string) []Sample {
	var out []Sample
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// Names lists the distinct sample names present, sorted.
func (e *Exposition) Names() []string {
	seen := map[string]bool{}
	for _, s := range e.Samples {
		seen[s.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
