package promtext

import (
	"math"
	"strings"
	"testing"
)

func TestWriterRoundTrip(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Family("starlink_sessions_total", "Finished sessions.", "counter")
	w.Sample("starlink_sessions_total", []Label{
		{Name: "case", Value: "slp-to-upnp"},
		{Name: "result", Value: "completed"},
	}, 42)
	w.Family("starlink_stage_latency_seconds", "Per-stage latency.", "histogram")
	w.HistogramSample("starlink_stage_latency_seconds", []Label{
		{Name: "case", Value: "slp-to-upnp"},
		{Name: "stage", Value: "parse"},
	}, []Bucket{
		{Le: 0.001, Count: 10},
		{Le: 0.01, Count: 12},
	}, 0.0315, 12)
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}

	exp, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, sb.String())
	}
	if got := exp.Types["starlink_sessions_total"]; got != "counter" {
		t.Errorf("type = %q, want counter", got)
	}
	if got := exp.Types["starlink_stage_latency_seconds"]; got != "histogram" {
		t.Errorf("type = %q, want histogram", got)
	}
	ss := exp.Find("starlink_sessions_total", map[string]string{"result": "completed"})
	if len(ss) != 1 || ss[0].Value != 42 {
		t.Errorf("sessions sample = %+v", ss)
	}
	// The writer must have added the +Inf bucket.
	inf := exp.Find("starlink_stage_latency_seconds_bucket", map[string]string{"le": "+Inf"})
	if len(inf) != 1 || inf[0].Value != 12 {
		t.Errorf("+Inf bucket = %+v", inf)
	}
	if n := len(exp.Find("starlink_stage_latency_seconds_bucket", nil)); n != 3 {
		t.Errorf("bucket count = %d, want 3", n)
	}
	cnt := exp.Find("starlink_stage_latency_seconds_count", nil)
	if len(cnt) != 1 || cnt[0].Value != 12 {
		t.Errorf("count = %+v", cnt)
	}
	sum := exp.Find("starlink_stage_latency_seconds_sum", nil)
	if len(sum) != 1 || math.Abs(sum[0].Value-0.0315) > 1e-12 {
		t.Errorf("sum = %+v", sum)
	}
}

func TestLabelEscaping(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Sample("m", []Label{{Name: "k", Value: "a\"b\\c\nd"}}, 1)
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	exp, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, sb.String())
	}
	ms := exp.Find("m", nil)
	if len(ms) != 1 || ms[0].Labels["k"] != "a\"b\\c\nd" {
		t.Errorf("escaped label did not round-trip: %+v", ms)
	}
}

func TestParseSpecialValues(t *testing.T) {
	exp, err := Parse(strings.NewReader("a 1\nb{x=\"y\"} +Inf\nc NaN\nd -Inf\ne 1.5e-3 1712345678\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v := exp.Find("b", nil)[0].Value; !math.IsInf(v, 1) {
		t.Errorf("b = %v, want +Inf", v)
	}
	if v := exp.Find("c", nil)[0].Value; !math.IsNaN(v) {
		t.Errorf("c = %v, want NaN", v)
	}
	if v := exp.Find("d", nil)[0].Value; !math.IsInf(v, -1) {
		t.Errorf("d = %v, want -Inf", v)
	}
	if v := exp.Find("e", nil)[0].Value; math.Abs(v-0.0015) > 1e-12 {
		t.Errorf("e = %v, want 0.0015 (timestamp must be ignored)", v)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"1bad 2",
		"m{unquoted=3} 1",
		"m{k=\"v} 1",
		"m{k=\"v\"",
		"m",
		"m notanumber",
		"# TYPE m wat",
	} {
		if _, err := Parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestNames(t *testing.T) {
	exp, err := Parse(strings.NewReader("b 1\na 2\nb 3\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	names := exp.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}
