package mdl

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ParseXML reads an MDL specification from XML. Field labels are
// element names (as in the paper's Figs. 7 and 11), so decoding walks
// the token stream rather than unmarshalling into fixed structs.
//
// Document shape:
//
//	<MDL protocol="SLP" dialect="binary">
//	  <Types>
//	    <Version>Integer</Version>
//	    <URLLength>Integer[f-length(URLEntry)]</URLLength>
//	  </Types>
//	  <Header type="SLP">
//	    <Version>8</Version>
//	    <LangTag>LangTagLen</LangTag>
//	  </Header>
//	  <Message type="SLPSrvRequest" mandatory="SRVType">
//	    <Rule>FunctionID=1</Rule>
//	    <SRVTypeLength>16</SRVTypeLength>
//	    <SRVType>SRVTypeLength</SRVType>
//	    <Repeat label="Entries" count="URLCount"> ... </Repeat>
//	  </Message>
//	</MDL>
func ParseXML(r io.Reader) (*Spec, error) {
	dec := xml.NewDecoder(r)
	spec := &Spec{Types: map[string]TypeDef{}}
	root, err := nextStart(dec)
	if err != nil {
		return nil, fmt.Errorf("mdl: reading root: %w", err)
	}
	if root.Name.Local != "MDL" {
		return nil, fmt.Errorf("mdl: root element is %q, want MDL", root.Name.Local)
	}
	for _, a := range root.Attr {
		switch a.Name.Local {
		case "protocol":
			spec.Protocol = a.Value
		case "dialect":
			d, err := ParseDialect(a.Value)
			if err != nil {
				return nil, err
			}
			spec.Dialect = d
		}
	}
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("mdl: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch start.Name.Local {
		case "Types":
			if err := parseTypes(dec, spec); err != nil {
				return nil, err
			}
		case "Header":
			h, err := parseHeader(dec, start, spec)
			if err != nil {
				return nil, err
			}
			spec.Header = h
		case "Message":
			m, err := parseMessage(dec, start, spec)
			if err != nil {
				return nil, err
			}
			spec.Messages = append(spec.Messages, m)
		default:
			if err := dec.Skip(); err != nil {
				return nil, fmt.Errorf("mdl: skipping %q: %w", start.Name.Local, err)
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Spec, error) {
	return ParseXML(strings.NewReader(s))
}

func nextStart(dec *xml.Decoder) (xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.StartElement{}, err
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se, nil
		}
	}
}

// elementText collects the character data of the current element until
// its end tag.
func elementText(dec *xml.Decoder) (string, error) {
	var sb strings.Builder
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.CharData:
			if depth == 0 {
				sb.Write(t)
			}
		case xml.StartElement:
			depth++
		case xml.EndElement:
			if depth == 0 {
				return sb.String(), nil
			}
			depth--
		}
	}
}

func parseTypes(dec *xml.Decoder, spec *Spec) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("mdl: in Types: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			content, err := elementText(dec)
			if err != nil {
				return fmt.Errorf("mdl: type %q: %w", t.Name.Local, err)
			}
			td, err := ParseTypeRef(t.Name.Local, content)
			if err != nil {
				return err
			}
			if _, dup := spec.Types[td.Label]; dup {
				return fmt.Errorf("mdl: duplicate type entry %q", td.Label)
			}
			spec.Types[td.Label] = td
		case xml.EndElement:
			return nil
		}
	}
}

func parseHeader(dec *xml.Decoder, start xml.StartElement, spec *Spec) (*HeaderDef, error) {
	h := &HeaderDef{}
	for _, a := range start.Attr {
		if a.Name.Local == "type" {
			h.TypeName = a.Value
		}
	}
	fields, err := parseFieldList(dec, spec, nil)
	if err != nil {
		return nil, fmt.Errorf("mdl: header: %w", err)
	}
	h.Fields = fields
	return h, nil
}

func parseMessage(dec *xml.Decoder, start xml.StartElement, spec *Spec) (*MessageDef, error) {
	m := &MessageDef{}
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "type":
			m.Name = a.Value
		case "mandatory":
			for _, l := range strings.Split(a.Value, ",") {
				if l = strings.TrimSpace(l); l != "" {
					m.Mandatory = append(m.Mandatory, l)
				}
			}
		case "body":
			bk, err := ParseBodyKind(a.Value)
			if err != nil {
				return nil, err
			}
			m.Body = bk
		}
	}
	fields, err := parseFieldList(dec, spec, m)
	if err != nil {
		return nil, fmt.Errorf("mdl: message %q: %w", m.Name, err)
	}
	m.Fields = fields
	return m, nil
}

// parseFieldList reads field entries until the enclosing end element.
// When msg is non-nil, Rule entries are routed to it.
func parseFieldList(dec *xml.Decoder, spec *Spec, msg *MessageDef) ([]*FieldDef, error) {
	var fields []*FieldDef
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			name := t.Name.Local
			if name == "Rule" {
				content, err := elementText(dec)
				if err != nil {
					return nil, err
				}
				if msg == nil {
					return nil, fmt.Errorf("rule outside message")
				}
				rule, err := ParseRule(content)
				if err != nil {
					return nil, err
				}
				msg.Rule = rule
				continue
			}
			if name == "Repeat" {
				g := &FieldDef{}
				for _, a := range t.Attr {
					switch a.Name.Local {
					case "label":
						g.Label = a.Value
					case "count":
						g.CountRef = a.Value
					}
				}
				inner, err := parseFieldList(dec, spec, nil)
				if err != nil {
					return nil, err
				}
				if inner == nil {
					inner = []*FieldDef{}
				}
				g.Group = inner
				fields = append(fields, g)
				continue
			}
			content, err := elementText(dec)
			if err != nil {
				return nil, err
			}
			var f *FieldDef
			switch spec.Dialect {
			case DialectText:
				if name == "Fields" {
					delim, inner, err := ParseTextFieldSpec(content)
					if err != nil {
						return nil, err
					}
					f = &FieldDef{Label: name, Delim: delim, InnerSplit: inner, Wildcard: true}
				} else {
					delim, inner, err := ParseTextFieldSpec(content)
					if err != nil {
						return nil, err
					}
					if inner != 0 {
						return nil, fmt.Errorf("field %q: inner split only valid on Fields", name)
					}
					f = &FieldDef{Label: name, Delim: delim}
				}
			default:
				f, err = ParseBinaryFieldSpec(name, content)
				if err != nil {
					return nil, err
				}
			}
			fields = append(fields, f)
		case xml.EndElement:
			return fields, nil
		}
	}
}
