// Package mdl implements Starlink's Message Description Language
// (paper §IV-A). An MDL specification describes a protocol's wire
// format: the types of fields, the header layout, and per-message body
// layouts selected by rules over header fields. Generic parsers and
// composers (packages parser and composer) interpret MDL specs at
// runtime — this is how Starlink "generates" protocol-specific
// marshalling with no compilation step.
//
// Two dialects are supported, mirroring the paper:
//
//   - binary (Fig. 7): field sizes are bit counts, or references to a
//     previously-parsed integer field holding the size in bytes, or "*"
//     for the remaining tail. Self-delimiting types (FQDN) may use
//     size 0.
//   - text (Fig. 11): field "sizes" are delimiter byte lists
//     ("13,10" = CRLF, "32" = space); the special Fields entry
//     ("13,10:58") introduces a run of label:value lines with an inner
//     split byte.
//
// Extensions over the paper's figures, documented in DESIGN.md §2:
// repeat groups for counted sequences (<Repeat count=...>), mandatory
// field attribution used by the semantic-equivalence operator, and a
// body dialect attribute (none|raw|xml) for text messages that carry a
// payload (HTTP).
package mdl

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Dialect selects the wire syntax family of a protocol.
type Dialect int

// Supported dialects.
const (
	DialectInvalid Dialect = iota
	DialectBinary
	DialectText
)

// String returns the dialect name used in XML.
func (d Dialect) String() string {
	switch d {
	case DialectBinary:
		return "binary"
	case DialectText:
		return "text"
	default:
		return "invalid"
	}
}

// ParseDialect converts an XML attribute value to a Dialect.
func ParseDialect(s string) (Dialect, error) {
	switch s {
	case "binary":
		return DialectBinary, nil
	case "text":
		return DialectText, nil
	default:
		return DialectInvalid, fmt.Errorf("mdl: unknown dialect %q", s)
	}
}

// BodyKind describes how a text message's payload after the blank line
// is parsed.
type BodyKind int

// Supported body kinds for text messages.
const (
	BodyNone BodyKind = iota
	BodyRaw           // single Bytes field labelled "Body"
	BodyXML           // flatten XML elements into primitive fields
)

// ParseBodyKind converts the body attribute to a BodyKind.
func ParseBodyKind(s string) (BodyKind, error) {
	switch s {
	case "", "none":
		return BodyNone, nil
	case "raw":
		return BodyRaw, nil
	case "xml":
		return BodyXML, nil
	default:
		return BodyNone, fmt.Errorf("mdl: unknown body kind %q", s)
	}
}

// FuncRef is a parsed field function reference such as
// f-length(URLEntry) from Integer[f-length(URLEntry)].
type FuncRef struct {
	Name string
	Args []string
}

// TypeDef binds a field label to an MDL type, optionally with a function
// computing its value at composition time.
type TypeDef struct {
	Label    string
	TypeName string
	Func     *FuncRef
}

var typeRefRe = regexp.MustCompile(`^([A-Za-z][A-Za-z0-9]*)(?:\[([a-zA-Z-]+)\(([^)]*)\)\])?$`)

// ParseTypeRef parses the content of a <Types> entry:
// "Integer" or "Integer[f-length(URLEntry)]".
func ParseTypeRef(label, content string) (TypeDef, error) {
	m := typeRefRe.FindStringSubmatch(strings.TrimSpace(content))
	if m == nil {
		return TypeDef{}, fmt.Errorf("mdl: bad type reference %q for %q", content, label)
	}
	td := TypeDef{Label: label, TypeName: m[1]}
	if m[2] != "" {
		fr := &FuncRef{Name: m[2]}
		if args := strings.TrimSpace(m[3]); args != "" {
			for _, a := range strings.Split(args, ",") {
				fr.Args = append(fr.Args, strings.TrimSpace(a))
			}
		}
		td.Func = fr
	}
	return td, nil
}

// FieldDef describes one wire field of a header or message body.
type FieldDef struct {
	// Label names the field; must have a TypeDef in the spec.
	Label string

	// Binary dialect: exactly one of SizeBits / SizeRef / Rest is set
	// (or none, for self-delimiting types like FQDN).
	SizeBits int    // fixed width in bits
	SizeRef  string // label of a previously parsed integer field holding the byte length
	Rest     bool   // consumes the remaining bytes

	// Text dialect: the delimiter byte sequence terminating this field.
	Delim []byte
	// Text dialect, Fields wildcard only: the byte splitting label from
	// value inside each line (e.g. ':').
	InnerSplit byte
	// Wildcard marks the <Fields> entry that absorbs a run of
	// label:value lines until a blank line.
	Wildcard bool

	// Repeat group (binary): non-nil Group means this entry is a
	// counted sequence of sub-fields; CountRef names the integer field
	// holding the element count.
	Group    []*FieldDef
	CountRef string
}

// IsGroup reports whether the field is a repeat group.
func (f *FieldDef) IsGroup() bool { return f.Group != nil }

// Rule relates a message body to header content (paper: the special
// <Rule>FunctionID=1</Rule> label). Only equality is needed by the
// paper's protocols.
type Rule struct {
	Field string
	Value string
}

// Match evaluates the rule against a rendered header field value.
func (r Rule) Match(fieldText string) bool { return r.Value == fieldText }

// MessageDef describes one message type of the protocol.
type MessageDef struct {
	// Name is the abstract message name, e.g. "SLPSrvRequest".
	Name string
	// Rule selects this message from header content.
	Rule Rule
	// Fields is the body layout (after the header).
	Fields []*FieldDef
	// Mandatory lists field labels participating in Mfields(n) for the
	// semantic equivalence operator (paper eq. 1).
	Mandatory []string
	// Body is the payload kind for text messages.
	Body BodyKind
}

// HeaderDef describes the header layout shared by all messages.
type HeaderDef struct {
	// TypeName is the value of the type attribute (protocol family).
	TypeName string
	Fields   []*FieldDef
}

// Spec is a complete MDL specification for one protocol.
type Spec struct {
	// Protocol names the protocol, e.g. "SLP"; abstract messages parsed
	// under this spec carry it.
	Protocol string
	Dialect  Dialect
	Types    map[string]TypeDef
	Header   *HeaderDef
	Messages []*MessageDef
}

// MessageByName returns the message definition with the given name.
func (s *Spec) MessageByName(name string) (*MessageDef, bool) {
	for _, m := range s.Messages {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// SelectMessage picks the message definition whose rule matches the
// rendered header field values.
func (s *Spec) SelectMessage(headerValue func(label string) (string, bool)) (*MessageDef, error) {
	for _, m := range s.Messages {
		v, ok := headerValue(m.Rule.Field)
		if !ok {
			continue
		}
		if m.Rule.Match(v) {
			return m, nil
		}
	}
	return nil, fmt.Errorf("mdl: no message rule matched for protocol %s", s.Protocol)
}

// TypeOf returns the type definition for a field label. Labels without
// an explicit entry default to String (text-dialect wildcard fields).
func (s *Spec) TypeOf(label string) TypeDef {
	if td, ok := s.Types[label]; ok {
		return td
	}
	return TypeDef{Label: label, TypeName: "String"}
}

// Validate checks internal consistency of the specification:
// every field has a usable size specification for the dialect, size and
// count references resolve to earlier integer fields, rules reference
// header fields, mandatory labels exist, and message names are unique.
func (s *Spec) Validate() error {
	if s.Protocol == "" {
		return fmt.Errorf("mdl: spec missing protocol name")
	}
	if s.Dialect != DialectBinary && s.Dialect != DialectText {
		return fmt.Errorf("mdl: spec %s: missing dialect", s.Protocol)
	}
	if s.Header == nil {
		return fmt.Errorf("mdl: spec %s: missing header", s.Protocol)
	}
	if len(s.Messages) == 0 {
		return fmt.Errorf("mdl: spec %s: no messages", s.Protocol)
	}
	headerLabels := map[string]bool{}
	for _, f := range s.Header.Fields {
		headerLabels[f.Label] = true
	}
	if err := s.validateFields(s.Header.Fields, map[string]bool{}, "header"); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, m := range s.Messages {
		if m.Name == "" {
			return fmt.Errorf("mdl: spec %s: message without name", s.Protocol)
		}
		if seen[m.Name] {
			return fmt.Errorf("mdl: spec %s: duplicate message %q", s.Protocol, m.Name)
		}
		seen[m.Name] = true
		if m.Rule.Field == "" {
			return fmt.Errorf("mdl: spec %s: message %q has no rule", s.Protocol, m.Name)
		}
		if !headerLabels[m.Rule.Field] {
			return fmt.Errorf("mdl: spec %s: message %q rule references unknown header field %q",
				s.Protocol, m.Name, m.Rule.Field)
		}
		prior := map[string]bool{}
		for l := range headerLabels {
			prior[l] = true
		}
		if err := s.validateFields(m.Fields, prior, "message "+m.Name); err != nil {
			return err
		}
		bodyLabels := map[string]bool{}
		collectLabels(m.Fields, bodyLabels)
		// Text-dialect wildcard fields carry dynamic labels, so any
		// mandatory label is permitted when a wildcard is present.
		wildcard := false
		for _, f := range s.Header.Fields {
			if f.Wildcard {
				wildcard = true
			}
		}
		for _, f := range m.Fields {
			if f.Wildcard {
				wildcard = true
			}
		}
		for _, l := range m.Mandatory {
			if !bodyLabels[l] && !headerLabels[l] && !wildcard {
				return fmt.Errorf("mdl: spec %s: message %q mandatory field %q not defined",
					s.Protocol, m.Name, l)
			}
		}
	}
	return nil
}

func collectLabels(fields []*FieldDef, into map[string]bool) {
	for _, f := range fields {
		into[f.Label] = true
		if f.IsGroup() {
			collectLabels(f.Group, into)
		}
	}
}

func (s *Spec) validateFields(fields []*FieldDef, prior map[string]bool, where string) error {
	for _, f := range fields {
		if f.Label == "" {
			return fmt.Errorf("mdl: spec %s: %s: field without label", s.Protocol, where)
		}
		if f.IsGroup() {
			if s.Dialect != DialectBinary {
				return fmt.Errorf("mdl: spec %s: %s: repeat group %q only supported in binary dialect",
					s.Protocol, where, f.Label)
			}
			if f.CountRef == "" {
				return fmt.Errorf("mdl: spec %s: %s: repeat group %q missing count", s.Protocol, where, f.Label)
			}
			if !prior[f.CountRef] {
				return fmt.Errorf("mdl: spec %s: %s: repeat group %q count %q not previously defined",
					s.Protocol, where, f.Label, f.CountRef)
			}
			inner := map[string]bool{}
			for k := range prior {
				inner[k] = true
			}
			if err := s.validateFields(f.Group, inner, where+" group "+f.Label); err != nil {
				return err
			}
			prior[f.Label] = true
			continue
		}
		switch s.Dialect {
		case DialectBinary:
			specs := 0
			if f.SizeBits > 0 {
				specs++
			}
			if f.SizeRef != "" {
				specs++
				if !prior[f.SizeRef] {
					return fmt.Errorf("mdl: spec %s: %s: field %q size ref %q not previously defined",
						s.Protocol, where, f.Label, f.SizeRef)
				}
			}
			if f.Rest {
				specs++
			}
			if specs > 1 {
				return fmt.Errorf("mdl: spec %s: %s: field %q has conflicting size specs",
					s.Protocol, where, f.Label)
			}
			if specs == 0 && s.TypeOf(f.Label).TypeName != "FQDN" {
				return fmt.Errorf("mdl: spec %s: %s: field %q has no size and type %q is not self-delimiting",
					s.Protocol, where, f.Label, s.TypeOf(f.Label).TypeName)
			}
		case DialectText:
			if !f.Wildcard && len(f.Delim) == 0 {
				return fmt.Errorf("mdl: spec %s: %s: text field %q has no delimiter",
					s.Protocol, where, f.Label)
			}
			if f.Wildcard && f.InnerSplit == 0 {
				return fmt.Errorf("mdl: spec %s: %s: wildcard %q needs an inner split byte",
					s.Protocol, where, f.Label)
			}
		}
		prior[f.Label] = true
	}
	return nil
}

// parseByteList parses "13,10" into []byte{13,10}.
func parseByteList(s string) ([]byte, error) {
	parts := strings.Split(s, ",")
	out := make([]byte, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 || n > 255 {
			return nil, fmt.Errorf("mdl: bad byte value %q in %q", p, s)
		}
		out = append(out, byte(n))
	}
	return out, nil
}

// ParseTextFieldSpec parses the content of a text-dialect field entry:
// "13,10" (delimiter only) or "13,10:58" (delimiter + inner split, the
// Fields wildcard form of Fig. 11).
func ParseTextFieldSpec(content string) (delim []byte, innerSplit byte, err error) {
	content = strings.TrimSpace(content)
	outer := content
	if i := strings.IndexByte(content, ':'); i >= 0 {
		outer = content[:i]
		innerBytes, err := parseByteList(content[i+1:])
		if err != nil {
			return nil, 0, err
		}
		if len(innerBytes) != 1 {
			return nil, 0, fmt.Errorf("mdl: inner split must be one byte, got %q", content[i+1:])
		}
		innerSplit = innerBytes[0]
	}
	delim, err = parseByteList(outer)
	if err != nil {
		return nil, 0, err
	}
	return delim, innerSplit, nil
}

// ParseBinaryFieldSpec parses the content of a binary-dialect field
// entry: a bit count ("16"), a size reference label ("PRLength"), "*"
// for the remaining tail, or "" for self-delimiting types.
func ParseBinaryFieldSpec(label, content string) (*FieldDef, error) {
	f := &FieldDef{Label: label}
	content = strings.TrimSpace(content)
	switch {
	case content == "*":
		f.Rest = true
	case content == "":
		// self-delimiting; validated against the type later
	default:
		if n, err := strconv.Atoi(content); err == nil {
			if n <= 0 {
				return nil, fmt.Errorf("mdl: field %q has non-positive size %d", label, n)
			}
			f.SizeBits = n
		} else {
			f.SizeRef = content
		}
	}
	return f, nil
}

// ParseRule parses "FunctionID=1" into a Rule.
func ParseRule(content string) (Rule, error) {
	content = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(content), ">"))
	i := strings.IndexByte(content, '=')
	if i <= 0 {
		return Rule{}, fmt.Errorf("mdl: bad rule %q", content)
	}
	return Rule{Field: content[:i], Value: content[i+1:]}, nil
}
