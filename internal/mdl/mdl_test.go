package mdl

import (
	"strings"
	"testing"
)

const slpMDLForTest = `
<MDL protocol="SLP" dialect="binary">
 <Types>
  <Version>Integer</Version>
  <FunctionID>Integer</FunctionID>
  <MessageLength>Integer[f-totallength()]</MessageLength>
  <reserved>Integer</reserved>
  <NextExtOffset>Integer</NextExtOffset>
  <XID>Integer</XID>
  <LangTagLen>Integer</LangTagLen>
  <LangTag>String</LangTag>
  <PRLength>Integer</PRLength>
  <PRStringTable>String</PRStringTable>
  <SRVTypeLength>Integer</SRVTypeLength>
  <SRVType>String</SRVType>
  <URLEntry>String</URLEntry>
  <URLLength>Integer[f-length(URLEntry)]</URLLength>
 </Types>
 <Header type="SLP">
  <Version>8</Version>
  <FunctionID>8</FunctionID>
  <MessageLength>24</MessageLength>
  <reserved>16</reserved>
  <NextExtOffset>24</NextExtOffset>
  <XID>16</XID>
  <LangTagLen>16</LangTagLen>
  <LangTag>LangTagLen</LangTag>
 </Header>
 <Message type="SLPSrvRequest" mandatory="SRVType">
  <Rule>FunctionID=1</Rule>
  <PRLength>16</PRLength>
  <PRStringTable>PRLength</PRStringTable>
  <SRVTypeLength>16</SRVTypeLength>
  <SRVType>SRVTypeLength</SRVType>
 </Message>
 <Message type="SLPSrvReply" mandatory="URLEntry">
  <Rule>FunctionID=2</Rule>
  <URLLength>16</URLLength>
  <URLEntry>URLLength</URLEntry>
 </Message>
</MDL>`

func TestParseXMLBinary(t *testing.T) {
	spec, err := ParseXMLString(slpMDLForTest)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Protocol != "SLP" || spec.Dialect != DialectBinary {
		t.Fatalf("protocol=%q dialect=%v", spec.Protocol, spec.Dialect)
	}
	if len(spec.Header.Fields) != 8 {
		t.Fatalf("header fields = %d", len(spec.Header.Fields))
	}
	if spec.Header.TypeName != "SLP" {
		t.Fatalf("header type = %q", spec.Header.TypeName)
	}
	if got := spec.Header.Fields[2]; got.Label != "MessageLength" || got.SizeBits != 24 {
		t.Fatalf("MessageLength = %+v", got)
	}
	if got := spec.Header.Fields[7]; got.Label != "LangTag" || got.SizeRef != "LangTagLen" {
		t.Fatalf("LangTag = %+v", got)
	}
	if len(spec.Messages) != 2 {
		t.Fatalf("messages = %d", len(spec.Messages))
	}
	req := spec.Messages[0]
	if req.Name != "SLPSrvRequest" || req.Rule.Field != "FunctionID" || req.Rule.Value != "1" {
		t.Fatalf("req = %+v", req)
	}
	if len(req.Mandatory) != 1 || req.Mandatory[0] != "SRVType" {
		t.Fatalf("mandatory = %v", req.Mandatory)
	}
	// Function references.
	td := spec.Types["URLLength"]
	if td.Func == nil || td.Func.Name != "f-length" || td.Func.Args[0] != "URLEntry" {
		t.Fatalf("URLLength type = %+v", td)
	}
	td = spec.Types["MessageLength"]
	if td.Func == nil || td.Func.Name != "f-totallength" || len(td.Func.Args) != 0 {
		t.Fatalf("MessageLength type = %+v", td)
	}
}

const ssdpMDLForTest = `
<MDL protocol="SSDP" dialect="text">
 <Types>
  <Method>String</Method>
  <URI>String</URI>
  <Version>String</Version>
  <ST>String</ST>
  <MX>Integer</MX>
  <LOCATION>URL</LOCATION>
 </Types>
 <Header type="SSDP">
  <Method>32</Method>
  <URI>32</URI>
  <Version>13,10</Version>
  <Fields>13,10:58</Fields>
 </Header>
 <Message type="SSDPMSearch" mandatory="ST">
  <Rule>Method=M-SEARCH</Rule>
 </Message>
 <Message type="SSDPResponse" mandatory="LOCATION">
  <Rule>Method=HTTP/1.1</Rule>
 </Message>
</MDL>`

func TestParseXMLText(t *testing.T) {
	spec, err := ParseXMLString(ssdpMDLForTest)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dialect != DialectText {
		t.Fatalf("dialect = %v", spec.Dialect)
	}
	h := spec.Header.Fields
	if len(h) != 4 {
		t.Fatalf("header fields = %d", len(h))
	}
	if string(h[0].Delim) != " " {
		t.Fatalf("Method delim = %v", h[0].Delim)
	}
	if string(h[2].Delim) != "\r\n" {
		t.Fatalf("Version delim = %v", h[2].Delim)
	}
	w := h[3]
	if !w.Wildcard || string(w.Delim) != "\r\n" || w.InnerSplit != ':' {
		t.Fatalf("Fields = %+v", w)
	}
	if _, ok := spec.MessageByName("SSDPMSearch"); !ok {
		t.Fatal("SSDPMSearch missing")
	}
}

func TestSelectMessage(t *testing.T) {
	spec, err := ParseXMLString(slpMDLForTest)
	if err != nil {
		t.Fatal(err)
	}
	hv := func(label string) (string, bool) {
		if label == "FunctionID" {
			return "2", true
		}
		return "", false
	}
	m, err := spec.SelectMessage(hv)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "SLPSrvReply" {
		t.Fatalf("selected %q", m.Name)
	}
	_, err = spec.SelectMessage(func(string) (string, bool) { return "99", true })
	if err == nil {
		t.Fatal("no rule should match 99")
	}
}

func TestParseTypeRef(t *testing.T) {
	tests := []struct {
		content  string
		wantType string
		wantFunc string
		wantArgs []string
		wantErr  bool
	}{
		{"Integer", "Integer", "", nil, false},
		{" String ", "String", "", nil, false},
		{"Integer[f-length(URLEntry)]", "Integer", "f-length", []string{"URLEntry"}, false},
		{"Integer[f-totallength()]", "Integer", "f-totallength", nil, false},
		{"Integer[f-two(a, b)]", "Integer", "f-two", []string{"a", "b"}, false},
		{"Integer[broken", "", "", nil, true},
		{"", "", "", nil, true},
		{"123abc", "", "", nil, true},
	}
	for _, tt := range tests {
		td, err := ParseTypeRef("L", tt.content)
		if tt.wantErr {
			if err == nil {
				t.Errorf("%q: want error", tt.content)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tt.content, err)
			continue
		}
		if td.TypeName != tt.wantType {
			t.Errorf("%q: type = %q", tt.content, td.TypeName)
		}
		if tt.wantFunc == "" && td.Func != nil {
			t.Errorf("%q: unexpected func %v", tt.content, td.Func)
		}
		if tt.wantFunc != "" {
			if td.Func == nil || td.Func.Name != tt.wantFunc {
				t.Errorf("%q: func = %+v", tt.content, td.Func)
				continue
			}
			if len(td.Func.Args) != len(tt.wantArgs) {
				t.Errorf("%q: args = %v", tt.content, td.Func.Args)
			}
		}
	}
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule("FunctionID=1")
	if err != nil || r.Field != "FunctionID" || r.Value != "1" {
		t.Fatalf("r=%+v err=%v", r, err)
	}
	// The paper's Fig. 7 line 19 has a stray '>' ("FunctionID=1>");
	// accept and trim it.
	r, err = ParseRule("FunctionID=1>")
	if err != nil || r.Value != "1" {
		t.Fatalf("r=%+v err=%v", r, err)
	}
	if _, err := ParseRule("nonsense"); err == nil {
		t.Fatal("rule without = should fail")
	}
	if !r.Match("1") || r.Match("2") {
		t.Fatal("rule match broken")
	}
}

func TestParseTextFieldSpec(t *testing.T) {
	d, inner, err := ParseTextFieldSpec("13,10:58")
	if err != nil || string(d) != "\r\n" || inner != ':' {
		t.Fatalf("d=%v inner=%v err=%v", d, inner, err)
	}
	d, inner, err = ParseTextFieldSpec("32")
	if err != nil || string(d) != " " || inner != 0 {
		t.Fatalf("d=%v inner=%v err=%v", d, inner, err)
	}
	if _, _, err := ParseTextFieldSpec("abc"); err == nil {
		t.Fatal("non-numeric should fail")
	}
	if _, _, err := ParseTextFieldSpec("13:58,59"); err == nil {
		t.Fatal("multi-byte inner split should fail")
	}
	if _, _, err := ParseTextFieldSpec("300"); err == nil {
		t.Fatal("byte out of range should fail")
	}
}

func TestParseBinaryFieldSpec(t *testing.T) {
	f, err := ParseBinaryFieldSpec("X", "16")
	if err != nil || f.SizeBits != 16 {
		t.Fatalf("f=%+v err=%v", f, err)
	}
	f, err = ParseBinaryFieldSpec("X", "PRLength")
	if err != nil || f.SizeRef != "PRLength" {
		t.Fatalf("f=%+v err=%v", f, err)
	}
	f, err = ParseBinaryFieldSpec("X", "*")
	if err != nil || !f.Rest {
		t.Fatalf("f=%+v err=%v", f, err)
	}
	if _, err := ParseBinaryFieldSpec("X", "-5"); err == nil {
		t.Fatal("negative size should fail")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		xml  string
		want string
	}{
		{
			"unknown dialect",
			`<MDL protocol="P" dialect="quantum"></MDL>`,
			"unknown dialect",
		},
		{
			"missing header",
			`<MDL protocol="P" dialect="binary"><Message type="M"><Rule>A=1</Rule></Message></MDL>`,
			"missing header",
		},
		{
			"no messages",
			`<MDL protocol="P" dialect="binary"><Types><A>Integer</A></Types><Header type="P"><A>8</A></Header></MDL>`,
			"no messages",
		},
		{
			"rule references unknown header field",
			`<MDL protocol="P" dialect="binary"><Types><A>Integer</A></Types><Header type="P"><A>8</A></Header>
			 <Message type="M"><Rule>B=1</Rule></Message></MDL>`,
			"unknown header field",
		},
		{
			"size ref to later field",
			`<MDL protocol="P" dialect="binary"><Types><A>Integer</A><B>String</B><C>Integer</C></Types>
			 <Header type="P"><A>8</A></Header>
			 <Message type="M"><Rule>A=1</Rule><B>C</B><C>16</C></Message></MDL>`,
			"not previously defined",
		},
		{
			"duplicate message",
			`<MDL protocol="P" dialect="binary"><Types><A>Integer</A></Types><Header type="P"><A>8</A></Header>
			 <Message type="M"><Rule>A=1</Rule></Message><Message type="M"><Rule>A=2</Rule></Message></MDL>`,
			"duplicate message",
		},
		{
			"mandatory field undefined",
			`<MDL protocol="P" dialect="binary"><Types><A>Integer</A></Types><Header type="P"><A>8</A></Header>
			 <Message type="M" mandatory="Ghost"><Rule>A=1</Rule></Message></MDL>`,
			"mandatory field",
		},
		{
			"variable string without size",
			`<MDL protocol="P" dialect="binary"><Types><A>Integer</A><S>String</S></Types>
			 <Header type="P"><A>8</A></Header>
			 <Message type="M"><Rule>A=1</Rule><S></S></Message></MDL>`,
			"not self-delimiting",
		},
		{
			"repeat group without count",
			`<MDL protocol="P" dialect="binary"><Types><A>Integer</A></Types><Header type="P"><A>8</A></Header>
			 <Message type="M"><Rule>A=1</Rule><Repeat label="G"><A>8</A></Repeat></Message></MDL>`,
			"missing count",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseXMLString(tt.xml)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestRepeatGroupParse(t *testing.T) {
	x := `<MDL protocol="P" dialect="binary">
	 <Types><FID>Integer</FID><N>Integer</N><L>Integer</L><V>String</V></Types>
	 <Header type="P"><FID>8</FID></Header>
	 <Message type="M">
	  <Rule>FID=1</Rule>
	  <N>16</N>
	  <Repeat label="Items" count="N">
	   <L>16</L>
	   <V>L</V>
	  </Repeat>
	 </Message>
	</MDL>`
	spec, err := ParseXMLString(x)
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Messages[0]
	if len(m.Fields) != 2 {
		t.Fatalf("fields = %d", len(m.Fields))
	}
	g := m.Fields[1]
	if !g.IsGroup() || g.Label != "Items" || g.CountRef != "N" || len(g.Group) != 2 {
		t.Fatalf("group = %+v", g)
	}
}

func TestTypeOfDefaultsToString(t *testing.T) {
	spec, err := ParseXMLString(ssdpMDLForTest)
	if err != nil {
		t.Fatal(err)
	}
	td := spec.TypeOf("X-Unknown-Header")
	if td.TypeName != "String" {
		t.Fatalf("default type = %q", td.TypeName)
	}
	td = spec.TypeOf("MX")
	if td.TypeName != "Integer" {
		t.Fatalf("MX type = %q", td.TypeName)
	}
}

func TestDialectString(t *testing.T) {
	if DialectBinary.String() != "binary" || DialectText.String() != "text" || DialectInvalid.String() != "invalid" {
		t.Fatal("dialect names wrong")
	}
	if _, err := ParseBodyKind("xml"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBodyKind("weird"); err == nil {
		t.Fatal("bad body kind should fail")
	}
}
