package engine_test

import (
	"strings"
	"testing"
	"time"

	"starlink/internal/engine"
	"starlink/internal/netapi"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/registry"
	"starlink/internal/simnet"
)

// deploy builds and starts a bridge engine for a case on the sim.
func deploy(t *testing.T, sim *simnet.Net, caseName string, opts ...engine.Option) *engine.Engine {
	t.Helper()
	reg, err := registry.Builtin()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := reg.Merged(caseName)
	if err != nil {
		t.Fatal(err)
	}
	codecs, err := reg.Codecs(merged)
	if err != nil {
		t.Fatal(err)
	}
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(node, merged, codecs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

// Case 1 (paper Fig. 4/5): an SLP user agent discovers a UPnP device.
func TestBridgeSLPToUPnP(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "slp-to-upnp")

	devNode, _ := sim.NewNode("10.0.0.7")
	if _, err := upnp.NewDevice(devNode, "urn:printer", "http://10.0.0.7:5431/svc", 5431); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(500*time.Millisecond))
	var res slp.LookupResult
	done := false
	ua.Lookup("service:printer", func(r slp.LookupResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.URLs) != 1 || res.URLs[0] != "http://10.0.0.7:5431/svc" {
		t.Fatalf("urls = %v", res.URLs)
	}
	if e.Completed != 1 || e.Failed != 0 {
		t.Fatalf("completed=%d failed=%d parseErrs=%d", e.Completed, e.Failed, e.ParseErrors)
	}
}

// Case 2 (paper Fig. 10): an SLP user agent discovers a Bonjour service.
func TestBridgeSLPToBonjour(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "slp-to-bonjour")

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(500*time.Millisecond))
	var res slp.LookupResult
	done := false
	ua.Lookup("service:printer", func(r slp.LookupResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 1 || res.URLs[0] != "service:printer://10.0.0.9:515" {
		t.Fatalf("urls = %v", res.URLs)
	}
	if e.Completed != 1 {
		t.Fatalf("completed=%d failed=%d", e.Completed, e.Failed)
	}
}

// Case 3: a UPnP control point discovers an SLP service. The bridge
// waits the SLP convergence window (~6.25 s virtual), so the control
// point needs Cyberlink's unbounded-wait behaviour (a wide MX).
func TestBridgeUPnPToSLP(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "upnp-to-slp")

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := slp.NewServiceAgent(svcNode, "service:printer", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	cp := upnp.NewControlPoint(cliNode, upnp.WithMX(8*time.Second))
	var res upnp.DiscoverResult
	done := false
	cp.Discover("urn:printer", func(r upnp.DiscoverResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.ServiceURLs) != 1 || res.ServiceURLs[0] != "service:printer://10.0.0.9:515" {
		t.Fatalf("urls = %v (completed=%d failed=%d parse=%d ignored=%d)",
			res.ServiceURLs, e.Completed, e.Failed, e.ParseErrors, e.Ignored)
	}
	if e.Completed != 1 {
		t.Fatalf("completed=%d failed=%d", e.Completed, e.Failed)
	}
}

// Case 4: a UPnP control point discovers a Bonjour service.
func TestBridgeUPnPToBonjour(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "upnp-to-bonjour")

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "http://10.0.0.9:8000/svc"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	cp := upnp.NewControlPoint(cliNode)
	var res upnp.DiscoverResult
	done := false
	cp.Discover("urn:printer", func(r upnp.DiscoverResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.ServiceURLs) != 1 || res.ServiceURLs[0] != "http://10.0.0.9:8000/svc" {
		t.Fatalf("urls = %v", res.ServiceURLs)
	}
	if e.Completed != 1 {
		t.Fatalf("completed=%d failed=%d", e.Completed, e.Failed)
	}
}

// Case 5: a Bonjour browser discovers a UPnP device.
func TestBridgeBonjourToUPnP(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "bonjour-to-upnp")

	devNode, _ := sim.NewNode("10.0.0.7")
	if _, err := upnp.NewDevice(devNode, "urn:printer", "http://10.0.0.7:5431/svc", 5431); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	b := dnssd.NewBrowser(cliNode, dnssd.WithBrowseWindow(500*time.Millisecond))
	var res dnssd.BrowseResult
	done := false
	b.Browse("printer.local", func(r dnssd.BrowseResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 1 || res.URLs[0] != "http://10.0.0.7:5431/svc" {
		t.Fatalf("urls = %v (failed=%d)", res.URLs, e.Failed)
	}
	if e.Completed != 1 {
		t.Fatalf("completed=%d failed=%d", e.Completed, e.Failed)
	}
}

// Case 6: a Bonjour browser discovers an SLP service (the browser must
// outlast the bridge's 6.25 s SLP convergence window).
func TestBridgeBonjourToSLP(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "bonjour-to-slp")

	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := slp.NewServiceAgent(svcNode, "service:printer", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	b := dnssd.NewBrowser(cliNode, dnssd.WithBrowseWindow(8*time.Second))
	var res dnssd.BrowseResult
	done := false
	b.Browse("printer.local", func(r dnssd.BrowseResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 1 || res.URLs[0] != "service:printer://10.0.0.9:515" {
		t.Fatalf("urls = %v (failed=%d parse=%d)", res.URLs, e.Failed, e.ParseErrors)
	}
	if e.Completed != 1 {
		t.Fatalf("completed=%d failed=%d", e.Completed, e.Failed)
	}
}

// Transparency (§V-C): the legacy peers never address the bridge — the
// client still talks to its own protocol's multicast group, and the
// session observer confirms the bridged exchange serves the client's
// request unchanged.
func TestBridgeTransparencyObserver(t *testing.T) {
	sim := simnet.New()
	var stats []engine.SessionStats
	e := deploy(t, sim, "slp-to-bonjour", engine.WithObserver(func(s engine.SessionStats) {
		stats = append(stats, s)
	}))
	_ = e
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:x"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(300*time.Millisecond))
	done := false
	ua.Lookup("service:printer", func(slp.LookupResult) { done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("stats = %d", len(stats))
	}
	if stats[0].Err != nil {
		t.Fatal(stats[0].Err)
	}
	if stats[0].Origin.IP != "10.0.0.1" {
		t.Fatalf("origin = %v", stats[0].Origin)
	}
	if stats[0].Duration <= 0 {
		t.Fatalf("duration = %v", stats[0].Duration)
	}
}

// Two concurrent SLP clients must be bridged in independent sessions.
func TestBridgeConcurrentSessions(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "slp-to-bonjour")
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:x"); err != nil {
		t.Fatal(err)
	}
	doneCount := 0
	okCount := 0
	for i := 0; i < 3; i++ {
		cliNode, _ := sim.NewNode("10.0.1." + string(rune('1'+i)))
		ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(300*time.Millisecond))
		ua.Lookup("service:printer", func(r slp.LookupResult) {
			doneCount++
			if len(r.URLs) == 1 {
				okCount++
			}
		})
	}
	if err := sim.RunUntil(func() bool { return doneCount == 3 }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if okCount != 3 {
		t.Fatalf("ok = %d of 3 (completed=%d failed=%d)", okCount, e.Completed, e.Failed)
	}
	if e.Completed != 3 {
		t.Fatalf("completed = %d", e.Completed)
	}
}

// A lookup for a service type nobody provides must fail the session
// with a convergence timeout, not hang or crash.
func TestBridgeNoServiceTimesOut(t *testing.T) {
	sim := simnet.New()
	var stats []engine.SessionStats
	e := deploy(t, sim, "slp-to-bonjour", engine.WithObserver(func(s engine.SessionStats) {
		stats = append(stats, s)
	}))
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(300*time.Millisecond))
	done := false
	var res slp.LookupResult
	ua.Lookup("service:printer", func(r slp.LookupResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 0 {
		t.Fatalf("urls = %v", res.URLs)
	}
	sim.RunToQuiescence()
	if e.Failed != 1 || len(stats) != 1 || stats[0].Err == nil {
		t.Fatalf("failed=%d stats=%+v", e.Failed, stats)
	}
	if !strings.Contains(stats[0].Err.Error(), "timeout waiting for mDNS/DNSResponse") {
		t.Fatalf("err = %v", stats[0].Err)
	}
}

// Garbage datagrams on the entry listener must be counted and ignored.
func TestBridgeIgnoresGarbage(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "slp-to-bonjour")
	cliNode, _ := sim.NewNode("10.0.0.1")
	sock, _ := cliNode.OpenUDP(0, func(netapi.Packet) {})
	if err := sock.Send(netapi.Addr{IP: slp.Group, Port: slp.Port}, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if e.ParseErrors != 1 {
		t.Fatalf("parse errors = %d", e.ParseErrors)
	}
	if e.Completed != 0 && e.Failed != 0 {
		t.Fatal("garbage must not create sessions")
	}
}

// The compiled program for the paper's Fig. 4 case is exposed for
// inspection; verify its protocol chain is SLP → SSDP → HTTP → SLP.
func TestBridgeProgramChain(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "slp-to-upnp")
	var chain []string
	for _, s := range e.Program() {
		if len(chain) == 0 || chain[len(chain)-1] != s.Protocol {
			chain = append(chain, s.Protocol)
		}
	}
	want := []string{"SLP", "SSDP", "HTTP", "SLP"}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
	if len(e.ColorsInUse()) != 3 {
		t.Fatalf("colors = %v", e.ColorsInUse())
	}
}
