// Package engine implements Starlink's Automata Engine (paper §IV-B):
// the runtime that executes a merged automaton. It is the component
// that makes the bridge work end to end:
//
//   - at a *receiving state* it listens through the Network Engine on
//     the state's color, parses inbound bytes with the protocol's
//     MDL-specialised parser, and pushes the abstract message onto the
//     session's state queue;
//   - at a *bridge state* (a δ-transition) it runs the λ network
//     actions (setHost redirects the next connection);
//   - at a *sending state* it builds the outgoing abstract message by
//     applying the translation logic's assignments against the stored
//     message history, composes it with the MDL-specialised composer,
//     and transmits it with the color's network semantics — unicast
//     back to the session origin for replies.
//
// One Engine hosts one deployed merged automaton; each incoming
// initiator request opens an independent session (concurrent legacy
// clients are bridged in parallel).
package engine

import (
	"fmt"
	"math/rand"
	"time"

	"starlink/internal/automata"
	"starlink/internal/composer"
	"starlink/internal/mdl"
	"starlink/internal/merge"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/netengine"
	"starlink/internal/parser"
	"starlink/internal/translation"
	"starlink/internal/types"
)

// Codec bundles the MDL-driven marshalling machinery for one protocol.
type Codec struct {
	Spec     *mdl.Spec
	Parser   *parser.Parser
	Composer *composer.Composer
	// Framer is required for stream (TCP) colors; nil otherwise.
	Framer *parser.Framer
}

// NewCodec builds a codec from an MDL spec. A framer is attached when
// the spec supports one (needed only for TCP colors).
func NewCodec(spec *mdl.Spec, reg *types.Registry, funcs *types.FuncRegistry) (*Codec, error) {
	p, err := parser.New(spec, reg)
	if err != nil {
		return nil, err
	}
	c, err := composer.New(spec, reg, funcs)
	if err != nil {
		return nil, err
	}
	codec := &Codec{Spec: spec, Parser: p, Composer: c}
	if f, err := parser.NewFramer(spec); err == nil {
		codec.Framer = f
	}
	return codec, nil
}

// SessionStats summarises one completed (or failed) bridge session.
type SessionStats struct {
	// Origin is the legacy client that opened the session.
	Origin netapi.Addr
	// Start is when the framework first received the request.
	Start time.Time
	// ReplyAt is when the first translated response was sent back to
	// the initiator — the endpoint of the paper's §VI translation-time
	// measurement ("until the translated output response was sent on
	// the output socket"). Zero if the session failed before replying.
	ReplyAt time.Time
	// End is when the session finished entirely (for the reverse-UPnP
	// cases this includes serving the description GET).
	End time.Time
	// Duration is the paper's translation time: ReplyAt-Start when a
	// reply was sent, End-Start otherwise.
	Duration time.Duration
	Err      error
}

// Option configures an Engine.
type Option func(*Engine)

// WithVars sets bridge environment variables available to translation
// constants (${bridge.host}, ${bridge.http.port}, ...).
func WithVars(vars map[string]string) Option {
	return func(e *Engine) {
		for k, v := range vars {
			e.vars[k] = v
		}
	}
}

// WithTranslationFuncs overrides the T-function registry.
func WithTranslationFuncs(funcs *translation.FuncRegistry) Option {
	return func(e *Engine) { e.tfuncs = funcs }
}

// WithReceiveTimeout bounds how long a session waits at a receive
// state with no convergence window before failing.
func WithReceiveTimeout(d time.Duration) Option {
	return func(e *Engine) { e.recvTimeout = d }
}

// WithWindowJitter perturbs every convergence window by a uniform
// value in [-d/2, +d/2], modelling the scheduler and retransmission
// variance visible in the paper's Fig. 12(b) min/max columns.
func WithWindowJitter(d time.Duration, rng *rand.Rand) Option {
	return func(e *Engine) { e.windowJitter, e.windowRNG = d, rng }
}

// WithObserver registers a callback invoked as each session ends.
func WithObserver(fn func(SessionStats)) Option {
	return func(e *Engine) { e.observer = fn }
}

// Engine executes one merged automaton on one bridge node.
type Engine struct {
	node    netapi.Node
	net     *netengine.Engine
	merged  *merge.Merged
	program []merge.Step
	codecs  map[string]*Codec
	tfuncs  *translation.FuncRegistry
	vars    map[string]string

	recvTimeout  time.Duration
	windowJitter time.Duration
	windowRNG    *rand.Rand
	observer     func(SessionStats)

	entries  []netapi.Closer
	sessions []*session

	// Counters exposed for tests and diagnostics.
	Completed   int
	Failed      int
	ParseErrors int
	Ignored     int
}

// New builds an engine for the merged automaton. codecs must contain
// an entry for every member protocol.
func New(node netapi.Node, merged *merge.Merged, codecs map[string]*Codec, opts ...Option) (*Engine, error) {
	program, err := merged.Compile()
	if err != nil {
		return nil, err
	}
	for _, a := range merged.Automata {
		c, ok := codecs[a.Protocol]
		if !ok {
			return nil, fmt.Errorf("engine: no codec for protocol %q", a.Protocol)
		}
		if c.Spec.Protocol != a.Protocol {
			return nil, fmt.Errorf("engine: codec protocol %q does not match automaton %q",
				c.Spec.Protocol, a.Protocol)
		}
	}
	specs := map[string]*mdl.Spec{}
	for p, c := range codecs {
		specs[p] = c.Spec
	}
	if err := merged.CheckEquivalences(specs); err != nil {
		return nil, err
	}
	e := &Engine{
		node:        node,
		net:         netengine.New(node),
		merged:      merged,
		program:     program,
		codecs:      codecs,
		tfuncs:      translation.NewFuncRegistry(),
		vars:        map[string]string{"bridge.host": node.IP()},
		recvTimeout: 30 * time.Second,
	}
	if err := merged.Logic.Validate(e.tfuncs); err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Program returns the compiled step list (diagnostics, mdlc tool).
func (e *Engine) Program() []merge.Step { return e.program }

// Start opens the entry listeners. The bridge is then transparently
// deployed: legacy clients of the initiator protocol reach it via
// their normal multicast groups/ports.
func (e *Engine) Start() error {
	entryColors, err := e.merged.EntryProtocols()
	if err != nil {
		return err
	}
	// Deterministic order: initiator first, then program order.
	opened := map[string]bool{}
	for _, step := range e.program {
		color, isEntry := entryColors[step.Protocol]
		if !isEntry || opened[step.Protocol] {
			continue
		}
		opened[step.Protocol] = true
		proto := step.Protocol
		codec := e.codecs[proto]
		closer, err := e.net.Listen(color, codec.Framer, func(data []byte, src netengine.Source) {
			e.onEntry(proto, data, src)
		})
		if err != nil {
			e.closeEntries()
			return fmt.Errorf("engine: %s: %w", e.merged.Name, err)
		}
		e.entries = append(e.entries, closer)
	}
	return nil
}

// Close stops the engine: entry listeners and live sessions.
func (e *Engine) Close() error {
	e.closeEntries()
	for _, s := range e.sessions {
		if !s.done {
			s.cleanup()
		}
	}
	e.sessions = nil
	return nil
}

func (e *Engine) closeEntries() {
	for _, c := range e.entries {
		_ = c.Close()
	}
	e.entries = nil
}

// onEntry handles a payload arriving on an entry listener.
func (e *Engine) onEntry(proto string, data []byte, src netengine.Source) {
	codec := e.codecs[proto]
	msg, err := codec.Parser.Parse(data)
	if err != nil {
		e.ParseErrors++
		return
	}
	// New session?
	first := e.program[0]
	if proto == first.Protocol && msg.Name == first.Message {
		s := newSession(e, msg, src)
		e.sessions = append(e.sessions, s)
		s.advance()
		return
	}
	// Route to a session awaiting this message on this protocol,
	// preferring one opened by the same peer host.
	var fallback *session
	for _, s := range e.sessions {
		if s.done || !s.awaitingEntry(proto, msg.Name) {
			continue
		}
		if s.origin.Addr.IP == src.Addr.IP {
			s.deliverEntry(proto, msg, src)
			return
		}
		if fallback == nil {
			fallback = s
		}
	}
	if fallback != nil {
		fallback.deliverEntry(proto, msg, src)
		return
	}
	e.Ignored++
}

func (e *Engine) sessionDone(s *session, err error) {
	if s.done {
		return
	}
	s.done = true
	s.cleanup()
	end := e.node.Now()
	stats := SessionStats{
		Origin:  s.origin.Addr,
		Start:   s.start,
		ReplyAt: s.replyAt,
		End:     end,
		Err:     err,
	}
	if !s.replyAt.IsZero() {
		stats.Duration = s.replyAt.Sub(s.start)
	} else {
		stats.Duration = end.Sub(s.start)
	}
	if err != nil {
		e.Failed++
	} else {
		e.Completed++
	}
	if e.observer != nil {
		e.observer(stats)
	}
	// Compact the session list occasionally.
	if len(e.sessions) > 64 {
		live := e.sessions[:0]
		for _, x := range e.sessions {
			if !x.done {
				live = append(live, x)
			}
		}
		e.sessions = live
	}
}

// session executes the compiled program for one bridged interaction.
type session struct {
	e  *Engine
	pc int
	// origin is the source of the initiating request.
	origin netengine.Source
	// entrySources remembers, per protocol, the latest entry peer so
	// ReplyToOrigin sends answer the right socket/connection.
	entrySources map[string]netengine.Source
	// history holds every stored message instance per abstract name —
	// the state queues and the ⇒ history operator of §III-B.
	history map[string][]*message.Message
	// requesters are the session's client-role channels per protocol.
	requesters map[string]*netengine.Requester
	// override is the destination set by a setHost λ action, consumed
	// by the next requester opened.
	override netapi.Addr

	// awaiting receive state.
	waitProto string
	waitMsg   string
	collected []*message.Message
	windowed  bool
	timer     netapi.TimerID
	timerSet  bool

	start   time.Time
	replyAt time.Time
	done    bool
}

func newSession(e *Engine, first *message.Message, src netengine.Source) *session {
	s := &session{
		e:            e,
		pc:           1, // step 0 is the initiator receive, satisfied by first
		origin:       src,
		entrySources: map[string]netengine.Source{},
		history:      map[string][]*message.Message{},
		requesters:   map[string]*netengine.Requester{},
		start:        e.node.Now(),
	}
	s.entrySources[e.program[0].Protocol] = src
	s.store(first)
	return s
}

func (s *session) store(m *message.Message) {
	s.history[m.Name] = append(s.history[m.Name], m)
}

// lookup returns the most recent stored instance of a message.
func (s *session) lookup(name string) *message.Message {
	h := s.history[name]
	if len(h) == 0 {
		return nil
	}
	return h[len(h)-1]
}

// History exposes the stored sequence for a message name (tests).
func (s *session) History(name string) []*message.Message { return s.history[name] }

func (s *session) awaitingEntry(proto, msgName string) bool {
	return s.waitProto == proto && s.waitMsg == msgName
}

// advance executes program steps until the session blocks on a receive
// or completes.
func (s *session) advance() {
	for !s.done {
		if s.pc >= len(s.e.program) {
			s.e.sessionDone(s, nil)
			return
		}
		step := s.e.program[s.pc]
		switch step.Kind {
		case merge.StepDelta:
			if err := s.runDelta(step); err != nil {
				s.e.sessionDone(s, err)
				return
			}
			s.pc++
		case merge.StepSend:
			if err := s.runSend(step); err != nil {
				s.e.sessionDone(s, err)
				return
			}
			s.pc++
		case merge.StepRecv:
			s.armReceive(step)
			return
		}
	}
}

// runDelta executes the λ actions of a δ-transition.
func (s *session) runDelta(step merge.Step) error {
	for _, act := range step.Delta.Actions {
		vals, err := act.Resolve(s.lookup)
		if err != nil {
			return err
		}
		switch act.Name {
		case translation.ActionSetHost:
			host := vals[0].Text()
			port, ok := vals[1].AsInt()
			if !ok {
				var n int64
				if _, err := fmt.Sscanf(vals[1].Text(), "%d", &n); err != nil {
					return fmt.Errorf("engine: setHost port %q is not numeric", vals[1].Text())
				}
				port = n
			}
			s.override = netapi.Addr{IP: host, Port: int(port)}
		default:
			return fmt.Errorf("engine: unknown λ action %q", act.Name)
		}
	}
	return nil
}

// runSend builds, translates, composes and transmits a message.
func (s *session) runSend(step merge.Step) error {
	codec := s.e.codecs[step.Protocol]
	out := message.New(step.Protocol, step.Message)
	env := translation.Env{Lookup: s.lookup, Vars: s.e.vars}
	if err := s.e.merged.Logic.Apply(out, env, s.e.tfuncs); err != nil {
		return err
	}
	wire, err := codec.Composer.Compose(out)
	if err != nil {
		return err
	}
	s.store(out) // sent instances join the history (⇒ over sends)

	if step.ReplyToOrigin {
		src, ok := s.entrySources[step.Protocol]
		if !ok {
			src = s.origin
		}
		if err := src.Reply(wire); err != nil {
			return fmt.Errorf("engine: reply: %w", err)
		}
		if s.replyAt.IsZero() && step.Protocol == s.e.merged.Initiator {
			s.replyAt = s.e.node.Now()
		}
		return nil
	}
	r, ok := s.requesters[step.Protocol]
	if !ok {
		dest := s.override
		s.override = netapi.Addr{}
		proto := step.Protocol
		r, err = s.e.net.NewRequester(step.Color, dest, codec.Framer, func(data []byte, src netengine.Source) {
			s.onRequesterData(proto, data)
		})
		if err != nil {
			return err
		}
		s.requesters[step.Protocol] = r
	}
	if err := r.Send(wire); err != nil {
		return fmt.Errorf("engine: send: %w", err)
	}
	return nil
}

// armReceive blocks the session on a receive step.
func (s *session) armReceive(step merge.Step) {
	s.waitProto = step.Protocol
	s.waitMsg = step.Message
	s.collected = nil
	scheme, err := netengine.SchemeOf(step.Color)
	if err != nil {
		s.e.sessionDone(s, err)
		return
	}
	if scheme.Convergence > 0 {
		// Requester-side multicast collection window: gather responses
		// for the full window (the SLP convergence behaviour that
		// dominates the →SLP rows of Fig. 12(b)).
		wait := scheme.Convergence
		if s.e.windowJitter > 0 && s.e.windowRNG != nil {
			wait += time.Duration(s.e.windowRNG.Int63n(int64(s.e.windowJitter))) - s.e.windowJitter/2
		}
		s.windowed = true
		s.timer = s.e.node.After(wait, s.windowExpired)
		s.timerSet = true
		return
	}
	s.windowed = false
	s.timer = s.e.node.After(s.e.recvTimeout, func() {
		s.e.sessionDone(s, fmt.Errorf("engine: timeout waiting for %s/%s", s.waitProto, s.waitMsg))
	})
	s.timerSet = true
}

func (s *session) windowExpired() {
	s.timerSet = false
	if len(s.collected) == 0 {
		s.e.sessionDone(s, fmt.Errorf("engine: no %s/%s response within convergence window", s.waitProto, s.waitMsg))
		return
	}
	s.clearWait()
	s.pc++
	s.advance()
}

func (s *session) clearWait() {
	if s.timerSet {
		s.e.node.Cancel(s.timer)
		s.timerSet = false
	}
	s.waitProto, s.waitMsg = "", ""
	s.collected = nil
}

// onRequesterData handles a response arriving on a client-role channel.
func (s *session) onRequesterData(proto string, data []byte) {
	if s.done {
		return
	}
	codec := s.e.codecs[proto]
	msg, err := codec.Parser.Parse(data)
	if err != nil {
		s.e.ParseErrors++
		return
	}
	s.deliver(proto, msg)
}

// deliverEntry handles an entry-routed message for this session
// (e.g. the control point's HTTP GET in the reverse-UPnP cases).
func (s *session) deliverEntry(proto string, msg *message.Message, src netengine.Source) {
	s.entrySources[proto] = src
	s.deliver(proto, msg)
}

func (s *session) deliver(proto string, msg *message.Message) {
	if s.waitProto != proto || s.waitMsg != msg.Name {
		s.e.Ignored++
		return
	}
	s.store(msg)
	if s.windowed {
		s.collected = append(s.collected, msg)
		return // keep collecting until the window expires
	}
	s.clearWait()
	s.pc++
	s.advance()
}

func (s *session) cleanup() {
	if s.timerSet {
		s.e.node.Cancel(s.timer)
		s.timerSet = false
	}
	for _, r := range s.requesters {
		_ = r.Close()
	}
	s.requesters = map[string]*netengine.Requester{}
}

// ColorsInUse lists the colors of the merged automaton in program
// order; exposed for the mdlc inspection tool.
func (e *Engine) ColorsInUse() []automata.Color {
	var out []automata.Color
	seen := map[string]bool{}
	for _, st := range e.program {
		if st.Color.IsZero() || seen[st.Color.Key()] {
			continue
		}
		seen[st.Color.Key()] = true
		out = append(out, st.Color)
	}
	return out
}
