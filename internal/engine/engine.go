// Package engine implements Starlink's Automata Engine (paper §IV-B):
// the runtime that executes a merged automaton. It is the component
// that makes the bridge work end to end:
//
//   - at a *receiving state* it listens through the Network Engine on
//     the state's color, parses inbound bytes with the protocol's
//     MDL-specialised parser, and pushes the abstract message onto the
//     session's state queue;
//   - at a *bridge state* (a δ-transition) it runs the λ network
//     actions (setHost redirects the next connection);
//   - at a *sending state* it builds the outgoing abstract message by
//     applying the translation logic's assignments against the stored
//     message history, composes it with the MDL-specialised composer,
//     and transmits it with the color's network semantics — unicast
//     back to the session origin for replies.
//
// One Engine hosts one deployed merged automaton; each incoming
// initiator request opens an independent session, and the engine is a
// concurrent session runtime — the paper's "concurrent legacy clients
// are bridged in parallel" made literal:
//
//   - sessions live in a sharded, keyed table (key = entry color +
//     origin address), so listener goroutines contend only on 1/N of
//     the table;
//   - each session's receive→translate→compose loop runs on its own
//     goroutine fed by a bounded inbox channel; timers and requester
//     payloads post events to the inbox instead of touching session
//     state;
//   - inbound entry payloads are parsed and routed by a bounded ingest
//     worker pool, and a max-sessions semaphore rejects (rather than
//     accumulates) load beyond the configured ceiling, so overload
//     degrades gracefully;
//   - on runtimes with a virtual clock the engine reports in-flight
//     work through netapi.WorkTracker, which keeps simulated runs
//     deterministic and engine state safe to read after RunUntil.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/composer"
	"starlink/internal/hist"
	"starlink/internal/lanes"
	"starlink/internal/mdl"
	"starlink/internal/merge"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/netengine"
	"starlink/internal/parser"
	"starlink/internal/serrors"
	"starlink/internal/trace"
	"starlink/internal/translation"
	"starlink/internal/types"
)

// State is an engine's position in its lifecycle. The engine moves
// strictly forward: Starting → Running → (Draining →) Closed.
type State int32

const (
	// StateStarting is the window between New and Start: no listeners
	// are bound and no sessions are admitted yet.
	StateStarting State = iota
	// StateRunning accepts entry payloads and admits new sessions.
	StateRunning
	// StateDraining admits no new sessions but keeps delivering
	// payloads to the live ones so they can finish.
	StateDraining
	// StateClosed has released every listener, worker and session.
	StateClosed
)

// String names the state for logs and metrics.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Defaults for the concurrency knobs; all overridable via options.
const (
	defaultShardCount  = 16
	defaultMaxSessions = 4096
	// defaultTraceRing is the per-session flight-recorder capacity in
	// events; WithTraceRing overrides, 0 disables recording.
	defaultTraceRing = 64
)

// Codec bundles the MDL-driven marshalling machinery for one protocol.
// Parsers and composers are stateless per call, so one codec is shared
// by every session goroutine.
type Codec struct {
	Spec     *mdl.Spec
	Parser   *parser.Parser
	Composer *composer.Composer
	// Framer is required for stream (TCP) colors; nil otherwise.
	Framer *parser.Framer
}

// NewCodec builds a codec from an MDL spec. A framer is attached when
// the spec supports one (needed only for TCP colors).
func NewCodec(spec *mdl.Spec, reg *types.Registry, funcs *types.FuncRegistry) (*Codec, error) {
	p, err := parser.New(spec, reg)
	if err != nil {
		return nil, err
	}
	c, err := composer.New(spec, reg, funcs)
	if err != nil {
		return nil, err
	}
	codec := &Codec{Spec: spec, Parser: p, Composer: c}
	if f, err := parser.NewFramer(spec); err == nil {
		codec.Framer = f
	}
	return codec, nil
}

// SessionStats summarises one completed (or failed) bridge session.
type SessionStats struct {
	// Origin is the legacy client that opened the session.
	Origin netapi.Addr
	// Start is when the framework first received the request.
	Start time.Time
	// ReplyAt is when the first translated response was sent back to
	// the initiator — the endpoint of the paper's §VI translation-time
	// measurement ("until the translated output response was sent on
	// the output socket"). Zero if the session failed before replying.
	ReplyAt time.Time
	// End is when the session finished entirely (for the reverse-UPnP
	// cases this includes serving the description GET).
	End time.Time
	// Duration is the paper's translation time: ReplyAt-Start when a
	// reply was sent, End-Start otherwise.
	Duration time.Duration
	Err      error
	// Trace is the session's flight-recorder dump — its pipeline stage
	// events, oldest first — populated only when the session failed
	// (Err != nil) and the recorder is enabled.
	Trace []trace.Event
}

// Counters is a consistent snapshot of the engine's counters.
type Counters struct {
	Completed   int
	Failed      int
	ParseErrors int
	Ignored     int
	Rejected    int
	Dropped     int
	// DrainRejected counts initiator requests that arrived while the
	// engine was draining and were therefore refused.
	DrainRejected int
	// Live is the number of sessions currently registered.
	Live int
	// Ingested counts payloads accepted off entry listeners;
	// IngestedBatched counts the subset delivered by a multi-packet
	// batched receive syscall (recvmmsg) — the structural evidence
	// that transport batching engages under load.
	Ingested        int
	IngestedBatched int
}

// Hooks are optional lifecycle callbacks. Every field may be nil; all
// invocations are serialised with observer invocations, so hook
// implementations need no locking of their own. Multiple Hooks sets
// compose: each registered set is invoked in registration order.
// Callbacks run on engine goroutines (ingest workers, session
// goroutines): keep them fast, and never call Close or Shutdown
// synchronously from inside one — spawn a goroutine instead.
type Hooks struct {
	// SessionStart fires when an initiator request is admitted as a
	// new session.
	SessionStart func(origin netapi.Addr, at time.Time)
	// SessionEnd fires as each session finishes (same timing as the
	// WithObserver callback).
	SessionEnd func(SessionStats)
	// Drop fires when a payload or session is refused, with the reason
	// classified under the structured taxonomy: serrors.ErrOverloaded
	// for capacity rejections and queue overflow, serrors.ErrDraining
	// for initiator requests arriving mid-shutdown.
	Drop func(origin netapi.Addr, reason error)
}

// Option configures an Engine.
type Option func(*Engine)

// WithVars sets bridge environment variables available to translation
// constants (${bridge.host}, ${bridge.http.port}, ...).
func WithVars(vars map[string]string) Option {
	return func(e *Engine) {
		for k, v := range vars {
			e.vars[k] = v
		}
	}
}

// WithTranslationFuncs overrides the T-function registry.
func WithTranslationFuncs(funcs *translation.FuncRegistry) Option {
	return func(e *Engine) { e.tfuncs = funcs }
}

// WithReceiveTimeout bounds how long a session waits at a receive
// state with no convergence window before failing.
func WithReceiveTimeout(d time.Duration) Option {
	return func(e *Engine) { e.recvTimeout = d }
}

// WithWindowJitter perturbs every convergence window by a uniform
// value in [-d/2, +d/2], modelling the scheduler and retransmission
// variance visible in the paper's Fig. 12(b) min/max columns. Each
// session derives its own RNG from seed and its creation sequence
// number, so concurrent sessions never share a random stream and
// simulated runs stay reproducible.
func WithWindowJitter(d time.Duration, seed int64) Option {
	return func(e *Engine) { e.windowJitter, e.jitterSeed = d, seed }
}

// WithObserver registers a callback invoked as each session ends.
// Invocations are serialised, so the callback needs no locking of its
// own. It is shorthand for WithHooks(Hooks{SessionEnd: fn}).
func WithObserver(fn func(SessionStats)) Option {
	return WithHooks(Hooks{SessionEnd: fn})
}

// WithMaxSessions bounds the number of concurrently live sessions.
// Initiator requests beyond the bound are rejected (counted in
// Rejected) instead of queued, so a flood degrades into dropped
// requests rather than unbounded memory growth. Values < 1 are
// ignored and keep the default (4096).
func WithMaxSessions(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.maxSessions = n
		}
	}
}

// WithIngestWorkers sets the size of the worker pool that parses and
// routes inbound entry payloads.
func WithIngestWorkers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.ingestWorkers = n
		}
	}
}

// WithShardCount sets the number of session-table shards.
func WithShardCount(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.shardCount = n
		}
	}
}

// WithContext ties the engine's lifetime to ctx: when ctx is
// cancelled the engine closes, tearing down in-flight sessions. Every
// session derives its own context from ctx, so cancellation reaches
// each session goroutine directly. The default is context.Background()
// (lifetime governed only by Close/Shutdown).
func WithContext(ctx context.Context) Option {
	return func(e *Engine) {
		if ctx != nil {
			e.baseCtx = ctx
		}
	}
}

// WithHooks registers a set of lifecycle hooks. Hooks compose: every
// registered set is invoked, in registration order.
func WithHooks(h Hooks) Option {
	return func(e *Engine) { e.hooks = append(e.hooks, h) }
}

// WithTraceRing sizes the per-session flight recorder: the number of
// trace events each session retains in its fixed ring (rounded up to a
// power of two). 0 disables recording entirely — sessions carry a nil
// recorder, and every stage-boundary record costs one nil check.
// Values < 0 keep the default (64). Stage latency histograms are
// unaffected: they are always on.
func WithTraceRing(events int) Option {
	return func(e *Engine) {
		if events >= 0 {
			e.traceRing = events
		}
	}
}

// WithLanePolicy bounds and parameterizes the lane-prioritized ingest
// queues: per-lane ring capacity, the high/low pressure watermarks on
// total depth, and the shed mode applied while pressured. Zero fields
// are filled from lanes.DefaultPolicy; the filled policy must validate
// (New rejects inverted or out-of-range watermarks). The configured
// totals are divided across the ingest workers' queues.
func WithLanePolicy(p lanes.Policy) Option {
	return func(e *Engine) { e.lanePolicy = p }
}

// WithFlowGate supplies the transport flow gate the ingest queues
// pause while pressured: the engine's entry listeners (and, under a
// dispatcher, the dispatcher's shared listeners) park their read loops
// while it is blocked. A dispatcher shares one gate across its engines;
// absent this option the engine creates its own.
func WithFlowGate(g *netapi.FlowGate) Option {
	return func(e *Engine) {
		if g != nil {
			e.gate = g
		}
	}
}

// WithEgressTable registers the local address of every requester
// channel the engine's sessions open in t for the requesters'
// lifetime. A multi-case dispatcher shares one table across its
// engines so it can recognise — and not re-bridge — the deployment's
// own outbound requests arriving back on shared multicast listeners.
func WithEgressTable(t *netengine.EgressTable) Option {
	return func(e *Engine) { e.egress = t }
}

// ingestJob is one inbound entry payload awaiting parse + route. It
// carries one work-tracker token, and — when the runtime delivered the
// payload in a leased buffer — the lease, which the ingest worker
// releases right after the parse (the parser never aliases its input)
// or on any drop path. key is the payload's routing key, computed once
// on the listener hot path.
type ingestJob struct {
	proto string
	key   string
	data  []byte
	src   netengine.Source
	lease *netapi.Buffer
	// arrived is the wall-clock listener arrival time, the origin of
	// the payload's recv-stage latency sample and — for an initiator
	// request — the epoch of the session's flight recorder.
	arrived time.Time
}

// ingestTiming carries the wall-clock stage boundaries measured by an
// ingest worker into the session it opens or rendezvouses with.
type ingestTiming struct {
	arrived time.Time
	picked  time.Time
	parsed  time.Time
	bytes   int
}

// releaseJobLease returns the job's leased receive buffer, if any.
func releaseJobLease(job *ingestJob) {
	if job.lease != nil {
		job.lease.Release()
		job.lease = nil
	}
}

// noTracker is the WorkTracker used on runtimes that do not implement
// netapi.WorkTracker.
type noTracker struct{}

func (noTracker) WorkAdd()  {}
func (noTracker) WorkDone() {}

// Engine executes one merged automaton on one bridge node.
type Engine struct {
	node    netapi.Node
	net     *netengine.Engine
	merged  *merge.Merged
	program []merge.Step
	codecs  map[string]*Codec
	tfuncs  *translation.FuncRegistry
	vars    map[string]string
	egress  *netengine.EgressTable

	recvTimeout  time.Duration
	windowJitter time.Duration
	jitterSeed   int64
	hooks        []Hooks

	maxSessions   int
	ingestWorkers int
	shardCount    int
	traceRing     int
	lanePolicy    lanes.Policy

	// Stage latency histograms, always on: one per pipeline stage plus
	// the whole-session distribution. Lock-free; see internal/hist.
	stageHists [trace.NumStages]*hist.Histogram
	sessHist   *hist.Histogram
	// laneHists measures per-lane queue wait: listener arrival to
	// ingest-worker pickup.
	laneHists [lanes.NumLanes]*hist.Histogram

	// Lifecycle. state moves strictly forward; baseCtx is the caller's
	// lifetime context (WithContext), ctx/cancel the engine's own
	// derivation of it that every session context hangs off.
	state   atomic.Int32
	baseCtx context.Context
	ctx     context.Context
	cancel  context.CancelFunc
	// drained is closed (once) when the engine is draining and the
	// last live session has finished.
	drained   chan struct{}
	drainOnce sync.Once

	tracker netapi.WorkTracker
	table   *sessionTable
	sem     chan struct{} // max-sessions semaphore
	// laneQs holds one bounded lane-prioritized queue per ingest
	// worker; payloads are assigned by routing key, so payloads from
	// one origin are always parsed and routed in arrival order. gate is
	// the flow gate the queues pause at their high watermark — the
	// entry listeners' read loops park on it.
	laneQs     []*lanes.Queue[ingestJob]
	gate       *netapi.FlowGate
	quit       chan struct{}
	workerWG   sync.WaitGroup
	sessionWG  sync.WaitGroup
	closeMu    sync.RWMutex // serialises onEntry's token+enqueue against Close
	sessionSeq atomic.Uint64

	entries []netapi.Closer

	// Counters exposed for tests and diagnostics. They are updated
	// under statsMu; read them via Stats, or directly only while the
	// runtime is quiesced (after RunUntil / RunToQuiescence).
	statsMu       sync.Mutex
	Completed     int
	Failed        int
	ParseErrors   int
	Ignored       int
	Rejected      int
	Dropped       int
	DrainRejected int

	// ingestTotal/ingestBatched count entry payloads on the ingest hot
	// path (onEntry), where taking statsMu per payload would serialise
	// the listeners — atomics instead.
	ingestTotal   atomic.Uint64
	ingestBatched atomic.Uint64

	// obsMu serialises observer invocations.
	obsMu sync.Mutex
}

// New builds an engine for the merged automaton. codecs must contain
// an entry for every member protocol.
func New(node netapi.Node, merged *merge.Merged, codecs map[string]*Codec, opts ...Option) (*Engine, error) {
	program, err := merged.Compile()
	if err != nil {
		return nil, err
	}
	for _, a := range merged.Automata {
		c, ok := codecs[a.Protocol]
		if !ok {
			return nil, fmt.Errorf("engine: no codec for protocol %q", a.Protocol)
		}
		if c.Spec.Protocol != a.Protocol {
			return nil, fmt.Errorf("engine: codec protocol %q does not match automaton %q",
				c.Spec.Protocol, a.Protocol)
		}
	}
	specs := map[string]*mdl.Spec{}
	for p, c := range codecs {
		specs[p] = c.Spec
	}
	if err := merged.CheckEquivalences(specs); err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	if workers > 8 {
		workers = 8
	}
	e := &Engine{
		node:          node,
		merged:        merged,
		program:       program,
		codecs:        codecs,
		tfuncs:        translation.NewFuncRegistry(),
		vars:          map[string]string{"bridge.host": node.IP()},
		recvTimeout:   30 * time.Second,
		maxSessions:   defaultMaxSessions,
		ingestWorkers: workers,
		shardCount:    defaultShardCount,
		traceRing:     defaultTraceRing,
		baseCtx:       context.Background(),
		drained:       make(chan struct{}),
	}
	for i := range e.stageHists {
		e.stageHists[i] = &hist.Histogram{}
	}
	e.sessHist = &hist.Histogram{}
	for i := range e.laneHists {
		e.laneHists[i] = &hist.Histogram{}
	}
	for _, o := range opts {
		o(e)
	}
	if err := merged.Logic.Validate(e.tfuncs); err != nil {
		return nil, serrors.Mark(err, serrors.ErrModelInvalid)
	}
	e.lanePolicy = e.lanePolicy.WithDefaults()
	if err := e.lanePolicy.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %s: %w", merged.Name, err)
	}
	if e.gate == nil {
		e.gate = netapi.NewFlowGate()
	}
	// The network engine gates the entry listeners it opens for Start;
	// a dispatcher gates its shared listeners with the same gate it
	// passed via WithFlowGate.
	e.net = netengine.New(node, netengine.WithGate(e.gate))
	e.ctx, e.cancel = context.WithCancel(e.baseCtx)
	e.table = newSessionTable(e.shardCount)
	e.sem = make(chan struct{}, e.maxSessions)
	perWorker := e.lanePolicy.Scale(e.ingestWorkers)
	e.laneQs = make([]*lanes.Queue[ingestJob], e.ingestWorkers)
	for i := range e.laneQs {
		e.laneQs[i] = lanes.NewQueue[ingestJob](perWorker, e.gate)
	}
	e.quit = make(chan struct{})
	if wt, ok := node.(netapi.WorkTracker); ok {
		e.tracker = wt
	} else {
		e.tracker = noTracker{}
	}
	return e, nil
}

// Program returns the compiled step list (diagnostics, mdlc tool).
func (e *Engine) Program() []merge.Step { return e.program }

// Stats returns a consistent snapshot of the engine's counters; safe
// to call from any goroutine at any time. Live is sampled under the
// same lock that orders session finish (table removal + counter
// update), so a finishing session is always counted in exactly one of
// Live or Completed/Failed.
func (e *Engine) Stats() Counters {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return Counters{
		Completed:       e.Completed,
		Failed:          e.Failed,
		ParseErrors:     e.ParseErrors,
		Ignored:         e.Ignored,
		Rejected:        e.Rejected,
		Dropped:         e.Dropped,
		DrainRejected:   e.DrainRejected,
		Live:            e.table.live(),
		Ingested:        int(e.ingestTotal.Load()),
		IngestedBatched: int(e.ingestBatched.Load()),
	}
}

// State returns the engine's lifecycle state.
func (e *Engine) State() State { return State(e.state.Load()) }

// ShardStats returns the number of live sessions per table shard.
func (e *Engine) ShardStats() []int { return e.table.stats() }

// bump increments one of the engine counters under statsMu.
func (e *Engine) bump(counter *int) {
	e.statsMu.Lock()
	*counter++
	e.statsMu.Unlock()
}

// Start opens the entry listeners and the ingest worker pool. The
// bridge is then transparently deployed: legacy clients of the
// initiator protocol reach it via their normal multicast groups/ports.
func (e *Engine) Start() error {
	entryColors, err := e.merged.EntryProtocols()
	if err != nil {
		return err
	}
	// Deterministic order: initiator first, then program order.
	opened := map[string]bool{}
	for _, step := range e.program {
		color, isEntry := entryColors[step.Protocol]
		if !isEntry || opened[step.Protocol] {
			continue
		}
		opened[step.Protocol] = true
		proto := step.Protocol
		codec := e.codecs[proto]
		closer, err := e.net.Listen(color, codec.Framer, func(data []byte, src netengine.Source, lease *netapi.Buffer) {
			e.onEntry(proto, data, src, lease)
		})
		if err != nil {
			e.closeEntries()
			return fmt.Errorf("engine: %s: %w", e.merged.Name, err)
		}
		e.entries = append(e.entries, closer)
	}
	e.startWorkers()
	e.startLifecycle()
	return nil
}

// startLifecycle flips the engine to Running and arms the context
// watcher: cancelling the engine's lifetime context closes it (and
// with it every per-session context).
func (e *Engine) startLifecycle() {
	e.state.CompareAndSwap(int32(StateStarting), int32(StateRunning))
	go func() {
		select {
		case <-e.ctx.Done():
			_ = e.Close()
		case <-e.quit:
		}
	}()
}

// StartManaged starts the engine without binding entry listeners: the
// ingest worker pool runs, but payloads only arrive through Inject.
// This is the mode used under a provisioning dispatcher, which owns
// the shared entry listeners for every case it hosts and classifies
// inbound payloads before handing them to the right engine.
func (e *Engine) StartManaged() error {
	e.startWorkers()
	e.startLifecycle()
	return nil
}

func (e *Engine) startWorkers() {
	for i := range e.laneQs {
		e.workerWG.Add(1)
		go e.ingestLoop(e.laneQs[i])
	}
}

// Inject feeds an entry payload to the engine as if it had arrived on
// an entry listener for the protocol: it is parsed and routed by the
// ingest pool exactly like a listener payload. Safe to call from any
// goroutine. lease is the pooled buffer backing data when the caller
// received it leased (nil otherwise); the engine takes ownership on
// every path, including refusals. Payloads for an unknown protocol
// are counted Ignored and reported; payloads injected after Close are
// refused with an error wrapping serrors.ErrClosed. A draining engine
// still accepts injection — live sessions need their mid-program
// entries to finish — but refuses the ones that would open a new
// session at admission, reporting them through the Drop hook with
// serrors.ErrDraining.
func (e *Engine) Inject(proto string, data []byte, src netengine.Source, lease *netapi.Buffer) error {
	if _, ok := e.codecs[proto]; !ok {
		if lease != nil {
			lease.Release()
		}
		e.bump(&e.Ignored)
		return fmt.Errorf("engine: %s: no codec for protocol %q", e.merged.Name, proto)
	}
	if e.State() == StateClosed {
		if lease != nil {
			lease.Release()
		}
		return serrors.Mark(fmt.Errorf("engine: %s is closed", e.merged.Name), serrors.ErrClosed)
	}
	e.onEntry(proto, data, src, lease)
	return nil
}

// AwaitsEntry reports whether some live session is blocked waiting for
// the given (protocol, message), preferring none in particular — it is
// the dispatcher's routing probe for entry payloads that are not
// initiator requests (e.g. the control point's description GET in the
// reverse-UPnP cases). The answer is a snapshot and may go stale by
// delivery time; the engine re-checks on delivery, so a stale true is
// harmless (the payload is rerouted or counted Ignored).
func (e *Engine) AwaitsEntry(proto, msg, ip string) bool {
	return e.table.findAwaiting(proto, msg, ip) != nil
}

// Close stops the engine immediately: entry listeners, ingest workers,
// and live sessions (their per-session contexts are cancelled),
// draining every session goroutine before returning. For a graceful
// stop that lets live sessions finish first, use Shutdown.
func (e *Engine) Close() error {
	e.closeMu.Lock()
	// state is the single source of truth for the lifecycle; the swap
	// under the write lock doubles as the idempotence latch.
	already := State(e.state.Swap(int32(StateClosed))) == StateClosed
	e.closeMu.Unlock()
	if already {
		return nil
	}
	e.closeEntries()
	close(e.quit)
	// Closing the queues wakes the ingest workers (Dequeue returns
	// false), releases any gate hold a pressured queue has taken — so
	// paused transport read loops wake for teardown — and hands back
	// the tokens and buffer leases of jobs the workers never picked up.
	// onEntry holds closeMu.RLock around its token+enqueue, and closed
	// was flipped under the write lock, so no job can slip in after
	// this.
	for _, q := range e.laneQs {
		q.Close(func(_ lanes.Lane, job ingestJob) {
			releaseJobLease(&job)
			e.tracker.WorkDone()
		})
	}
	e.workerWG.Wait()
	for _, s := range e.table.removeAll() {
		s.cancel()
	}
	e.sessionWG.Wait()
	// Release the engine context last: session teardown above must not
	// race a parent-cancellation signal with individual cancels.
	e.cancel()
	e.signalDrained() // a closed engine has, vacuously, drained
	return nil
}

// Shutdown drains the engine gracefully: it stops admitting new
// sessions immediately (initiator requests arriving from now on are
// refused and reported with serrors.ErrDraining), keeps delivering
// payloads to live sessions so they can finish, and closes the engine
// once the last session ends. If ctx expires first the remaining
// sessions are torn down and the returned error wraps ctx.Err().
// Shutdown of an already closed engine returns nil.
func (e *Engine) Shutdown(ctx context.Context) error {
	if State(e.state.Load()) == StateClosed {
		return nil
	}
	e.BeginDrain()
	select {
	case <-e.drained:
		return e.Close()
	case <-ctx.Done():
		// Both channels may be ready (last session finished right at
		// the deadline, or a zero timeout on an already-idle engine),
		// and the last session may finish between the two checks — a
		// drain that completed is never an error, so an empty table
		// counts as success even if the signal hasn't landed yet.
		select {
		case <-e.drained:
			return e.Close()
		default:
		}
		live := e.table.live() // before Close empties the table
		if live == 0 {
			return e.Close()
		}
		_ = e.Close()
		return fmt.Errorf("engine: %s: drain aborted with %d live session(s): %w",
			e.merged.Name, live, ctx.Err())
	}
}

// BeginDrain flips the engine into StateDraining without blocking:
// initiator requests are refused with serrors.ErrDraining from the
// moment it returns, while live sessions keep running to completion.
// It is the non-blocking prefix of Shutdown, split out so a
// deterministic test harness can start a drain from inside a
// simulator event callback — where Shutdown's wait for the last
// session would deadlock the event loop that must deliver the very
// payloads those sessions are waiting for. No-op on an engine that is
// already draining or closed.
func (e *Engine) BeginDrain() {
	for {
		s := e.state.Load()
		if s == int32(StateClosed) || s == int32(StateDraining) {
			return
		}
		if e.state.CompareAndSwap(s, int32(StateDraining)) {
			break
		}
	}
	// Live is read under statsMu, the same lock that orders session
	// finish, so the "last session already gone" case cannot race
	// sessionDone's own drain check.
	e.statsMu.Lock()
	if e.table.live() == 0 {
		e.signalDrained()
	}
	e.statsMu.Unlock()
}

// signalDrained marks the drain as complete (idempotent).
func (e *Engine) signalDrained() {
	e.drainOnce.Do(func() { close(e.drained) })
}

// hookSessionStart notifies every hook set of an admitted session.
func (e *Engine) hookSessionStart(origin netapi.Addr, at time.Time) {
	if len(e.hooks) == 0 {
		return
	}
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	for _, h := range e.hooks {
		if h.SessionStart != nil {
			h.SessionStart(origin, at)
		}
	}
}

// hookDrop reports a refused payload or session with its structured
// reason.
func (e *Engine) hookDrop(origin netapi.Addr, reason error) {
	if len(e.hooks) == 0 {
		return
	}
	e.obsMu.Lock()
	defer e.obsMu.Unlock()
	for _, h := range e.hooks {
		if h.Drop != nil {
			h.Drop(origin, reason)
		}
	}
}

func (e *Engine) closeEntries() {
	for _, c := range e.entries {
		_ = c.Close()
	}
	e.entries = nil
}

// releaseSlot returns a max-sessions semaphore slot.
func (e *Engine) releaseSlot() { <-e.sem }

// classifyLane assigns an entry payload its priority lane. A payload
// whose routing key has a live session is mid-session data; the
// initiator protocol's payloads are control (session entry and
// classification); a stream payload comes from a connected peer that
// already committed to a session-oriented exchange; anything else —
// multicast chatter, advert/demo traffic no session asked for — is
// telemetry, shed first under pressure.
func (e *Engine) classifyLane(proto, key string, src netengine.Source) lanes.Lane {
	if e.table.contains(key) {
		return lanes.Data
	}
	if proto == e.program[0].Protocol {
		return lanes.Control
	}
	if src.IsStream() {
		return lanes.Data
	}
	return lanes.Telemetry
}

// onEntry accepts a payload arriving on an entry listener: it takes a
// work token, classifies the payload into its priority lane, and
// offers it to the lane queue of the ingest worker owning the
// payload's routing key, so payloads from one origin keep their
// arrival order. Safe to call from any listener goroutine; the read
// lock makes the closed-check + token + enqueue atomic with respect
// to Close, so no token or job can leak past shutdown.
func (e *Engine) onEntry(proto string, data []byte, src netengine.Source, lease *netapi.Buffer) {
	e.closeMu.RLock()
	if e.State() == StateClosed {
		e.closeMu.RUnlock()
		if lease != nil {
			lease.Release()
		}
		return
	}
	e.tracker.WorkAdd()
	e.ingestTotal.Add(1)
	if src.Batch > 1 {
		e.ingestBatched.Add(1)
	}
	key := src.RoutingKey()
	lane := e.classifyLane(proto, key, src)
	q := e.laneQs[fnv32a(key)%uint32(len(e.laneQs))]
	verdict, victim := q.Enqueue(lane, ingestJob{proto: proto, key: key, data: data, src: src, lease: lease, arrived: time.Now()})
	// User hooks run outside closeMu: a callback reacting to the drop
	// (even one that tears the deployment down from a fresh goroutine)
	// must not deadlock against Close's write lock. The work token is
	// still held through the hook so that on a virtual-clock runtime,
	// quiescence implies the observers have already seen the drop.
	e.closeMu.RUnlock()
	switch verdict {
	case lanes.Evicted:
		// The new payload was admitted by displacing the oldest queued
		// item of its lane; that victim is the drop.
		e.shedJob(victim, lane)
	case lanes.Rejected:
		e.shedJob(ingestJob{src: src, lease: lease}, lane)
	}
}

// shedJob accounts one payload shed by a lane queue: its buffer lease
// is released, the drop is counted and reported as ErrOverloaded, and
// its work token is returned.
func (e *Engine) shedJob(job ingestJob, lane lanes.Lane) {
	releaseJobLease(&job)
	e.bump(&e.Dropped)
	e.hookDrop(job.src.Addr, serrors.Mark(
		fmt.Errorf("engine: %s: %s lane shed payload from %s", e.merged.Name, lane, job.src.Addr),
		serrors.ErrOverloaded))
	e.tracker.WorkDone()
}

func (e *Engine) ingestLoop(q *lanes.Queue[ingestJob]) {
	defer e.workerWG.Done()
	for {
		job, lane, ok := q.Dequeue()
		if !ok {
			return // queue closed
		}
		if !job.arrived.IsZero() {
			e.laneHists[lane].Record(time.Since(job.arrived))
		}
		e.ingest(job)
	}
}

// ingest parses one entry payload and routes it: initiator requests
// open (or rendezvous with) a keyed session; anything else goes to a
// session awaiting that message. The job's buffer lease ends here —
// the parse copies everything it keeps into pooled messages, so the
// receive buffer goes back to its pool before any routing happens.
func (e *Engine) ingest(job ingestJob) {
	codec := e.codecs[job.proto]
	picked := time.Now()
	nbytes := len(job.data)
	msg, err := codec.Parser.Parse(job.data)
	parsed := time.Now()
	releaseJobLease(&job)
	if !job.arrived.IsZero() {
		e.stageHists[trace.StageRecv].Record(picked.Sub(job.arrived))
	}
	e.stageHists[trace.StageParse].Record(parsed.Sub(picked))
	if err != nil {
		e.bump(&e.ParseErrors)
		e.tracker.WorkDone()
		return
	}
	tm := ingestTiming{arrived: job.arrived, picked: picked, parsed: parsed, bytes: nbytes}
	first := e.program[0]
	if job.proto == first.Protocol && msg.Name == first.Message {
		e.openSession(job, msg, tm)
		return
	}
	// Route to a session awaiting this message on this protocol,
	// preferring one opened by the same peer host.
	if s := e.table.findAwaiting(job.proto, msg.Name, job.src.Addr.IP); s != nil {
		s.recordIngest(tm)
		e.enqueue(s, sessEvent{kind: evEntry, proto: job.proto, msg: msg, src: job.src})
		return
	}
	e.bump(&e.Ignored)
	msg.Release() // never escaped this worker: recycle
	e.tracker.WorkDone()
}

// openSession handles an initiator request. If the session keyed by
// the payload's routing key is awaiting exactly this message, the
// payload is delivered to it (a rendezvous/re-delivery). Otherwise —
// no session under the key, or a live one already past this message
// (a legacy client reusing one socket for a new interaction) — an
// independent session is admitted against the max-sessions semaphore
// and started on its own goroutine, under a uniquified key when the
// base key is taken. One session per initiator request, as in the
// paper.
func (e *Engine) openSession(job ingestJob, msg *message.Message, tm ingestTiming) {
	key := job.key
	sh := e.table.shardFor(key)
	sh.mu.Lock()
	if s, ok := sh.sessions[key]; ok {
		if ak := s.await.Load(); ak != nil && ak.proto == job.proto && ak.msg == msg.Name {
			if len(s.inbox) < inboxCap {
				s.recordIngest(tm)
				s.inbox <- sessEvent{kind: evEntry, proto: job.proto, msg: msg, src: job.src}
				sh.mu.Unlock()
			} else {
				sh.mu.Unlock()
				e.tracker.WorkDone()
				e.bump(&e.Dropped)
				msg.Release() // dropped before delivery: recycle
			}
			return
		}
		// The keyed session is mid-program: this is a new interaction
		// from the same client socket. Give it its own key. Payloads
		// for one origin are handled by one sticky ingest worker, so
		// no other goroutine can race the creation for this origin.
		sh.mu.Unlock()
		seq := e.sessionSeq.Add(1)
		key = fmt.Sprintf("%s#%d", key, seq)
		sh = e.table.shardFor(key)
		sh.mu.Lock()
		e.admitLocked(sh, key, seq, msg, job.src, tm)
		return
	}
	e.admitLocked(sh, key, e.sessionSeq.Add(1), msg, job.src, tm)
}

// admitLocked creates and starts a session under key. The caller holds
// sh.mu (the shard owning key) and a work token; both are released or
// transferred on every path.
func (e *Engine) admitLocked(sh *tableShard, key string, seq uint64, msg *message.Message, src netengine.Source, tm ingestTiming) {
	switch State(e.state.Load()) {
	case StateClosed:
		sh.mu.Unlock()
		e.tracker.WorkDone()
		msg.Release()
		return
	case StateDraining:
		// Rendezvous deliveries to live sessions were handled by the
		// caller; only brand-new sessions reach here, and a draining
		// engine admits none. The hook fires before the work token is
		// released so quiescence implies observers saw the rejection.
		sh.mu.Unlock()
		e.bump(&e.DrainRejected)
		msg.Release()
		e.hookDrop(src.Addr, serrors.Mark(
			fmt.Errorf("engine: %s: new session from %s rejected: engine is draining", e.merged.Name, src.Addr),
			serrors.ErrDraining))
		e.tracker.WorkDone()
		return
	}
	select {
	case e.sem <- struct{}{}:
	default:
		sh.mu.Unlock()
		e.bump(&e.Rejected)
		msg.Release() // rejected before any session saw it: recycle
		e.hookDrop(src.Addr, serrors.Mark(
			fmt.Errorf("engine: %s: new session from %s rejected: max sessions (%d) live", e.merged.Name, src.Addr, e.maxSessions),
			serrors.ErrOverloaded))
		e.tracker.WorkDone()
		return
	}
	s := newSession(e, key, seq, msg, src, tm)
	sh.sessions[key] = s
	e.sessionWG.Add(1)
	go s.run()
	s.inbox <- sessEvent{kind: evStart} // fresh buffered inbox: never blocks
	sh.mu.Unlock()
	e.hookSessionStart(src.Addr, s.start)
}

// enqueue hands a payload event to a session's inbox if the session
// is still registered. The caller must hold a work token: ownership
// transfers to the session goroutine on success and is released here
// otherwise. The soft inboxCap check keeps drops at the documented
// bound; the channel's physical slack guarantees openSession's
// write-lock-guarded rendezvous send can never block. Timer events
// use deliverTimer, never this path.
func (e *Engine) enqueue(s *session, ev sessEvent) bool {
	sh := e.table.shardFor(s.key)
	sh.mu.RLock()
	if sh.sessions[s.key] != s {
		sh.mu.RUnlock()
		e.tracker.WorkDone()
		releaseEventMsg(ev)
		return false
	}
	if len(s.inbox) >= inboxCap {
		sh.mu.RUnlock()
		e.bump(&e.Dropped)
		releaseEventMsg(ev)
		e.hookDrop(ev.src.Addr, serrors.Mark(
			fmt.Errorf("engine: %s: session inbox full, payload dropped", e.merged.Name),
			serrors.ErrOverloaded))
		e.tracker.WorkDone()
		return false
	}
	select {
	case s.inbox <- ev:
		sh.mu.RUnlock()
		return true
	default:
		sh.mu.RUnlock()
		e.bump(&e.Dropped)
		releaseEventMsg(ev)
		e.hookDrop(ev.src.Addr, serrors.Mark(
			fmt.Errorf("engine: %s: session inbox full, payload dropped", e.merged.Name),
			serrors.ErrOverloaded))
		e.tracker.WorkDone()
		return false
	}
}

// releaseEventMsg recycles the parsed message — and the receive-buffer
// lease — of an event that was never delivered. The enqueuer is the
// sole holder on these paths, so the pooled fast path keeps recycling
// under overload — dropped payloads must not degrade into per-packet
// garbage.
func releaseEventMsg(ev sessEvent) {
	if ev.msg != nil {
		ev.msg.Release()
	}
	if ev.lease != nil {
		ev.lease.Release()
	}
}

// deliverTimer posts a fired receive timer to its session. Timer
// delivery is guaranteed: the dedicated channel is priority-drained
// by the session loop, and in the never-expected case that it is
// momentarily full the delivery is retried — with the token released
// in between so a virtual-clock runtime can advance to the retry —
// rather than dropped, because a lost timer would stall the session
// forever and leak its max-sessions slot.
func (e *Engine) deliverTimer(s *session, gen uint64) {
	sh := e.table.shardFor(s.key)
	sh.mu.RLock()
	alive := sh.sessions[s.key] == s
	if alive {
		select {
		case s.timerCh <- sessEvent{kind: evTimer, gen: gen}:
			sh.mu.RUnlock()
			return
		default:
		}
	}
	sh.mu.RUnlock()
	e.tracker.WorkDone()
	if alive {
		e.node.After(time.Millisecond, func() {
			e.tracker.WorkAdd()
			e.deliverTimer(s, gen)
		})
	}
}

// rerouteEntry gives an entry payload that reached a session already
// past the awaited state one more chance to find the session actually
// awaiting it: the original routing choice is made from a lock-free
// await snapshot, which can go stale by delivery time under realnet
// concurrency, and the payload would otherwise starve the session it
// was meant for. One hop only; if no other session awaits it, the
// payload is counted Ignored. Called from the session goroutine, which
// holds the event's work token (released by its run loop); the forward
// takes a token of its own.
func (e *Engine) rerouteEntry(s *session, ev sessEvent) {
	if !ev.rerouted {
		if s2 := e.table.findAwaiting(ev.proto, ev.msg.Name, ev.src.Addr.IP); s2 != nil && s2 != s {
			ev.rerouted = true
			e.tracker.WorkAdd()
			e.enqueue(s2, ev) // on failure, enqueue recycles the message
			return
		}
	}
	e.bump(&e.Ignored)
	releaseEventMsg(ev) // no session wanted it: recycle
}

// sessionDone finishes a session: it is called only from the session's
// own goroutine.
func (e *Engine) sessionDone(s *session, err error) {
	if s.finished {
		return
	}
	s.finished = true
	s.cleanup()
	end := e.node.Now()
	stats := SessionStats{
		Origin:  s.origin.Addr,
		Start:   s.start,
		ReplyAt: s.replyAt,
		End:     end,
		Err:     err,
	}
	if !s.replyAt.IsZero() {
		stats.Duration = s.replyAt.Sub(s.start)
	} else {
		stats.Duration = end.Sub(s.start)
	}
	e.sessHist.Record(stats.Duration)
	if err != nil {
		// A failed session surfaces its flight-recorder dump so the
		// failure can be diagnosed (and replayed) stage by stage.
		stats.Trace = s.rec.Events()
	}
	// Removal and counter update happen under one lock so Stats never
	// sees the session in neither Live nor Completed/Failed. Lock
	// order is always statsMu → shard mutex, never the reverse. The
	// drain check rides the same critical section: a draining engine
	// whose last session just left the table signals exactly once.
	e.statsMu.Lock()
	e.table.remove(s.key, s)
	if err != nil {
		e.Failed++
	} else {
		e.Completed++
	}
	if State(e.state.Load()) == StateDraining && e.table.live() == 0 {
		e.signalDrained()
	}
	e.statsMu.Unlock()
	e.releaseSlot()
	if len(e.hooks) > 0 {
		e.obsMu.Lock()
		for _, h := range e.hooks {
			if h.SessionEnd != nil {
				h.SessionEnd(stats)
			}
		}
		e.obsMu.Unlock()
	}
}

// ColorsInUse lists the colors of the merged automaton in program
// order; exposed for the mdlc inspection tool.
func (e *Engine) ColorsInUse() []automata.Color {
	var out []automata.Color
	seen := map[string]bool{}
	for _, st := range e.program {
		if st.Color.IsZero() || seen[st.Color.Key()] {
			continue
		}
		seen[st.Color.Key()] = true
		out = append(out, st.Color)
	}
	return out
}
