package engine_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlink/internal/engine"
	"starlink/internal/lanes"
	"starlink/internal/netapi"
	"starlink/internal/netengine"
	"starlink/internal/registry"
	"starlink/internal/serrors"
	"starlink/internal/simnet"
)

// build constructs (without starting) a bridge engine for a case, so a
// test can fill the ingest lanes deterministically: no workers drain
// them until Start or Close.
func build(t *testing.T, sim *simnet.Net, caseName string, opts ...engine.Option) *engine.Engine {
	t.Helper()
	reg, err := registry.Builtin()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := reg.Merged(caseName)
	if err != nil {
		t.Fatal(err)
	}
	codecs, err := reg.Codecs(merged)
	if err != nil {
		t.Fatal(err)
	}
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(node, merged, codecs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// protoPair returns the engine's control protocol (the initiator's,
// program step 0) and some other protocol of the program — whose
// unsolicited datagrams classify as telemetry.
func protoPair(t *testing.T, e *engine.Engine) (control, telemetry string) {
	t.Helper()
	program := e.Program()
	control = program[0].Protocol
	for _, step := range program {
		if step.Protocol != control {
			return control, step.Protocol
		}
	}
	t.Fatalf("case has a single protocol %q", control)
	return "", ""
}

func src(i int) netengine.Source {
	return netengine.Source{Addr: netapi.Addr{IP: fmt.Sprintf("10.9.0.%d", i), Port: 1000}}
}

// With no ingest workers draining (the engine is built but not
// started), the watermark state machine is fully deterministic: the
// high watermark trips the flow gate and starts shedding telemetry —
// oldest first — while control keeps admitting, and every shed payload
// surfaces through the Drop hook marked ErrOverloaded.
func TestLaneWatermarkShedsTelemetryKeepsControl(t *testing.T) {
	sim := simnet.New()
	gate := netapi.NewFlowGate()
	var mu sync.Mutex
	var reasons []error
	e := build(t, sim, "slp-to-bonjour",
		engine.WithIngestWorkers(1),
		engine.WithLanePolicy(lanes.Policy{Capacity: 4, High: 6, Low: 2, Mode: lanes.ShedOldest}),
		engine.WithFlowGate(gate),
		engine.WithHooks(engine.Hooks{Drop: func(_ netapi.Addr, reason error) {
			mu.Lock()
			reasons = append(reasons, reason)
			mu.Unlock()
		}}))
	control, telemetry := protoPair(t, e)

	inject := func(proto string, n *int) {
		*n++
		if err := e.Inject(proto, []byte("garbage"), src(*n), nil); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for i := 0; i < 3; i++ { // depth 3, below the high watermark
		inject(control, &n)
	}
	if gate.Blocked() {
		t.Fatal("gate paused below the high watermark")
	}
	for i := 0; i < 3; i++ { // depth 6 == High: the third crossing pauses
		inject(telemetry, &n)
	}
	if !gate.Blocked() || gate.Pauses() != 1 {
		t.Fatalf("gate blocked=%v pauses=%d after crossing High, want paused once",
			gate.Blocked(), gate.Pauses())
	}
	for i := 0; i < 2; i++ { // pressured: each telemetry arrival evicts the oldest
		inject(telemetry, &n)
	}
	inject(control, &n) // control still admits while pressured

	ld := e.Lanes()
	ctl, tel := ld.Counters[lanes.Control], ld.Counters[lanes.Telemetry]
	if ctl.Admitted != 4 || ctl.Shed != 0 || ctl.Deferred != 1 {
		t.Errorf("control = %+v, want Admitted=4 Shed=0 Deferred=1", ctl)
	}
	if tel.Admitted != 5 || tel.Shed != 2 || tel.Deferred != 2 || tel.Depth != 3 {
		t.Errorf("telemetry = %+v, want Admitted=5 Shed=2 Deferred=2 Depth=3", tel)
	}
	if st := e.Stats(); st.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", st.Dropped)
	}

	mu.Lock()
	got := append([]error(nil), reasons...)
	mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("drop hook fired %d times, want 2 (%v)", len(got), got)
	}
	// Every shed classifies under exactly the ErrOverloaded sentinel.
	for _, reason := range got {
		for _, tc := range []struct {
			sentinel error
			want     bool
		}{
			{serrors.ErrOverloaded, true},
			{serrors.ErrDraining, false},
			{serrors.ErrClosed, false},
			{serrors.ErrAmbiguousPayload, false},
			{serrors.ErrUnknownCase, false},
			{serrors.ErrModelInvalid, false},
		} {
			if errors.Is(reason, tc.sentinel) != tc.want {
				t.Errorf("errors.Is(%v, %v) = %v, want %v", reason, tc.sentinel, !tc.want, tc.want)
			}
		}
	}

	// Teardown releases the pressured queue's gate hold so paused
	// transports wake.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if gate.Blocked() {
		t.Error("gate still blocked after Close")
	}
}

// Saturation under the race detector: concurrent producers flood the
// telemetry lane far past what one ingest worker drains, while control
// payloads keep being admitted. Structural assertions only — exact
// counts depend on scheduling, the accounting identity does not.
func TestLaneSaturationRace(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "slp-to-bonjour",
		engine.WithIngestWorkers(1),
		engine.WithLanePolicy(lanes.Policy{Capacity: 64, High: 8, Low: 4, Mode: lanes.ShedOldest}))
	control, telemetry := protoPair(t, e)

	var shed atomic.Bool
	const producers = 4
	var offered [producers]uint64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; !shed.Load() && i < 1<<20; i++ {
				if err := e.Inject(telemetry, []byte("chatter"), src(p*1000+i%256), nil); err != nil {
					t.Error(err)
					return
				}
				offered[p]++
				if i%64 == 0 && e.Lanes().Counters[lanes.Telemetry].Shed > 0 {
					shed.Store(true)
				}
			}
		}(p)
	}
	// Control keeps flowing throughout the flood.
	const controls = 6
	for i := 0; i < controls; i++ {
		if err := e.Inject(control, []byte("garbage"), src(900+i), nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for e.Lanes().Counters[lanes.Telemetry].Depth > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ld := e.Lanes()
	ctl, tel := ld.Counters[lanes.Control], ld.Counters[lanes.Telemetry]
	if tel.Shed == 0 {
		t.Fatal("flood never shed telemetry")
	}
	if ctl.Shed != 0 {
		t.Errorf("control shed %d payloads during a telemetry flood", ctl.Shed)
	}
	if ctl.Admitted != controls {
		t.Errorf("control admitted %d, want %d", ctl.Admitted, controls)
	}
	var total uint64
	for p := range offered {
		total += offered[p]
	}
	// Conservation: every offered telemetry payload was either admitted
	// (and later processed or still queued) or shed — ShedOldest evicts
	// admitted payloads, so admitted + rejected-at-ingress ≥ offered and
	// nothing is unaccounted.
	if tel.Admitted+tel.Shed < total {
		t.Errorf("telemetry admitted=%d shed=%d < offered=%d", tel.Admitted, tel.Shed, total)
	}
}
