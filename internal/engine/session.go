package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"starlink/internal/merge"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/netengine"
	"starlink/internal/serrors"
	"starlink/internal/trace"
	"starlink/internal/translation"
)

// inboxCap bounds each session's event inbox. A session that cannot
// keep up has its excess payloads dropped (counted in Dropped) instead
// of stalling the listeners — UDP semantics end to end.
const inboxCap = 64

// Timer events must never be lost: a dropped receive timer would
// stall the session forever and leak its max-sessions slot. They
// therefore travel on a dedicated per-session channel (timerCh) that
// the run loop priority-drains, with a token-safe retry on the
// never-expected full case — structurally immune to payload
// backpressure. timerChCap covers the worst case of one stale fire
// from a cleared wait plus a fresh fire of the re-armed timer
// arriving while one event is being handled.
const timerChCap = 4

type eventKind uint8

const (
	// evStart begins executing the compiled program (the initiating
	// request is already in the session history).
	evStart eventKind = iota
	// evEntry is a parsed message routed from an entry listener.
	evEntry
	// evData is a raw payload from one of the session's requester
	// channels; it is parsed on the session goroutine.
	evData
	// evTimer is a fired receive timer (convergence window or timeout).
	evTimer
)

// sessEvent is one unit of session work. Every event in flight holds
// one work-tracker token; the token is released when the session
// finishes handling the event (or when the event is dropped).
type sessEvent struct {
	kind  eventKind
	proto string
	msg   *message.Message
	data  []byte
	// lease is the pooled receive buffer backing data on evData events
	// whose payload the runtime delivered leased; the session releases
	// it right after parsing (or on any drop path).
	lease *netapi.Buffer
	src   netengine.Source
	gen   uint64
	// arrived is the wall-clock arrival time of an evData payload at
	// its requester callback — the origin of its recv-stage sample.
	arrived time.Time
	// rerouted marks an entry event already forwarded once by a
	// session that had moved past the awaited state (no second hop).
	rerouted bool
}

// awaitKey is the published receive state used for entry routing.
type awaitKey struct {
	proto string
	msg   string
}

// session executes the compiled program for one bridged interaction on
// its own goroutine. All fields below the marker are confined to that
// goroutine; cross-goroutine interaction happens only through inbox,
// the session context and the published await snapshot.
type session struct {
	e        *Engine
	key      string
	seq      uint64
	originIP string
	inbox    chan sessEvent
	timerCh  chan sessEvent
	// ctx is the session's own context, derived from the engine's
	// lifetime context: cancelling either tears the session down. The
	// engine cancels individual sessions on Close (and a caller's
	// WithContext cancellation reaches every session through the
	// parent edge).
	ctx    context.Context
	cancel context.CancelFunc
	await  atomic.Pointer[awaitKey]

	// --- goroutine-confined state ---
	pc int
	// origin is the source of the initiating request.
	origin netengine.Source
	// entrySources remembers, per protocol, the latest entry peer so
	// ReplyToOrigin answers the right socket/connection.
	entrySources map[string]netengine.Source
	// history holds every stored message instance per abstract name —
	// the state queues and the ⇒ history operator of §III-B.
	history map[string][]*message.Message
	// requesters are the session's client-role channels per protocol.
	requesters map[string]*netengine.Requester
	// override is the destination set by a setHost λ action, consumed
	// by the next requester opened.
	override netapi.Addr

	// awaiting receive state.
	waitProto string
	waitMsg   string
	collected []*message.Message
	windowed  bool
	timer     netapi.TimerID
	timerSet  bool
	timerGen  uint64

	// rng perturbs this session's convergence windows; deterministically
	// seeded per session so concurrent sessions never share a stream.
	rng *rand.Rand

	// rec is the session's flight recorder — nil when disabled
	// (WithTraceRing(0)). Set once before the session is published in
	// the table and never reassigned, so cross-goroutine writers (the
	// ingest worker recording recv/parse of a rendezvous delivery) see
	// it without locking; the recorder itself is wait-free.
	rec *trace.Recorder

	start    time.Time
	replyAt  time.Time
	finished bool
}

func newSession(e *Engine, key string, seq uint64, first *message.Message, src netengine.Source, tm ingestTiming) *session {
	s := &session{
		e:            e,
		key:          key,
		seq:          seq,
		originIP:     src.Addr.IP,
		inbox:        make(chan sessEvent, inboxCap+e.ingestWorkers+2),
		timerCh:      make(chan sessEvent, timerChCap),
		pc:           1, // step 0 is the initiator receive, satisfied by first
		origin:       src,
		entrySources: map[string]netengine.Source{},
		history:      map[string][]*message.Message{},
		requesters:   map[string]*netengine.Requester{},
		start:        e.node.Now(),
	}
	s.ctx, s.cancel = context.WithCancel(e.ctx)
	if e.windowJitter > 0 {
		s.rng = rand.New(rand.NewSource(e.jitterSeed + int64(s.seq)*0x9E3779B9))
	}
	if e.traceRing > 0 {
		// Epoch is the initiating payload's listener arrival, so every
		// event offset reads as time-into-session.
		epoch := tm.arrived
		if epoch.IsZero() {
			epoch = time.Now()
		}
		s.rec = trace.New(e.traceRing, epoch)
		s.recordIngest(tm)
	}
	s.entrySources[e.program[0].Protocol] = src
	s.store(first)
	return s
}

// recordIngest notes the recv and parse boundaries an ingest worker
// measured for a payload delivered to this session. Safe from any
// goroutine: the recorder is wait-free and nil-safe.
func (s *session) recordIngest(tm ingestTiming) {
	if s.rec == nil {
		return
	}
	if !tm.picked.IsZero() {
		s.rec.RecordAt(trace.StageRecv, trace.OutcomeOK, tm.picked, tm.bytes)
	}
	if !tm.parsed.IsZero() {
		s.rec.RecordAt(trace.StageParse, trace.OutcomeOK, tm.parsed, tm.bytes)
	}
}

// run is the session goroutine: it consumes inbox and timer events
// until the session finishes or the engine shuts it down, then drains
// both channels so every in-flight work token is released. Fired
// timers are drained with priority so payload pressure can never
// starve the session's liveness timer.
func (s *session) run() {
	defer s.e.sessionWG.Done()
	for {
		for !s.finished {
			select {
			case ev := <-s.timerCh:
				s.handle(ev)
				s.e.tracker.WorkDone()
				continue
			default:
			}
			break
		}
		if s.finished {
			s.drainAll()
			return
		}
		select {
		case ev := <-s.inbox:
			s.handle(ev)
			s.e.tracker.WorkDone()
		case ev := <-s.timerCh:
			s.handle(ev)
			s.e.tracker.WorkDone()
		case <-s.ctx.Done():
			// Forcible teardown (engine Close, drain deadline, context
			// cancellation) still reports through sessionDone so the
			// session is counted (Failed) and observers see its end —
			// sessions must never vanish from the metrics surface.
			s.e.sessionDone(s, serrors.Mark(
				fmt.Errorf("engine: %s: session from %s torn down before completion",
					s.e.merged.Name, s.origin.Addr),
				serrors.ErrClosed))
			s.drainAll()
			return
		}
	}
}

// drainAll releases the tokens of events that arrived before the
// session was unregistered from the table (after which no new enqueue
// can target it).
func (s *session) drainAll() {
	for {
		select {
		case ev := <-s.inbox:
			s.e.tracker.WorkDone()
			if ev.msg != nil {
				// Undelivered entry messages were never stored in the
				// (already recycled) history; this drain holds the last
				// reference.
				ev.msg.Release()
			}
			if ev.lease != nil {
				// Undelivered leased payloads return their receive
				// buffer at session cleanup — the backstop of the
				// lease contract.
				ev.lease.Release()
			}
		case <-s.timerCh:
			s.e.tracker.WorkDone()
		default:
			return
		}
	}
}

func (s *session) handle(ev sessEvent) {
	switch ev.kind {
	case evStart:
		s.advance()
	case evEntry:
		if s.waitProto != ev.proto || s.waitMsg != ev.msg.Name {
			// Not ours (stale routing): pass it on without touching
			// this session's reply targets.
			s.e.rerouteEntry(s, ev)
			return
		}
		s.entrySources[ev.proto] = ev.src
		s.deliver(ev.proto, ev.msg)
	case evData:
		codec := s.e.codecs[ev.proto]
		picked := time.Now()
		nbytes := len(ev.data)
		msg, err := codec.Parser.Parse(ev.data)
		parsed := time.Now()
		if ev.lease != nil {
			// The parse copied everything it kept: the receive buffer
			// goes straight back to its pool.
			ev.lease.Release()
			ev.lease = nil
		}
		if !ev.arrived.IsZero() {
			s.e.stageHists[trace.StageRecv].Record(picked.Sub(ev.arrived))
			s.rec.RecordAt(trace.StageRecv, trace.OutcomeOK, picked, nbytes)
		}
		s.e.stageHists[trace.StageParse].Record(parsed.Sub(picked))
		if err != nil {
			s.rec.RecordAt(trace.StageParse, trace.OutcomeErr, parsed, nbytes)
			s.e.bump(&s.e.ParseErrors)
			return
		}
		s.rec.RecordAt(trace.StageParse, trace.OutcomeOK, parsed, nbytes)
		s.deliver(ev.proto, msg)
	case evTimer:
		if !s.timerSet || ev.gen != s.timerGen {
			return // cancelled or superseded timer
		}
		s.timerSet = false
		if s.windowed {
			s.windowExpired()
		} else {
			s.e.sessionDone(s, fmt.Errorf("engine: timeout waiting for %s/%s", s.waitProto, s.waitMsg))
		}
	}
}

func (s *session) store(m *message.Message) {
	s.history[m.Name] = append(s.history[m.Name], m)
}

// lookup returns the most recent stored instance of a message.
func (s *session) lookup(name string) *message.Message {
	h := s.history[name]
	if len(h) == 0 {
		return nil
	}
	return h[len(h)-1]
}

// History exposes the stored sequence for a message name (tests).
func (s *session) History(name string) []*message.Message { return s.history[name] }

// advance executes program steps until the session blocks on a receive
// or completes.
func (s *session) advance() {
	for !s.finished {
		if s.pc >= len(s.e.program) {
			s.e.sessionDone(s, nil)
			return
		}
		step := s.e.program[s.pc]
		switch step.Kind {
		case merge.StepDelta:
			t0 := time.Now()
			err := s.runDelta(step)
			s.e.stageHists[trace.StageTransition].Record(time.Since(t0))
			if err != nil {
				s.rec.Record(trace.StageTransition, trace.OutcomeErr, 0)
				s.e.sessionDone(s, err)
				return
			}
			s.rec.Record(trace.StageTransition, trace.OutcomeOK, 0)
			s.pc++
		case merge.StepSend:
			if err := s.runSend(step); err != nil {
				s.e.sessionDone(s, err)
				return
			}
			s.pc++
		case merge.StepRecv:
			s.armReceive(step)
			return
		}
	}
}

// runDelta executes the λ actions of a δ-transition.
func (s *session) runDelta(step merge.Step) error {
	for _, act := range step.Delta.Actions {
		vals, err := act.Resolve(s.lookup)
		if err != nil {
			return err
		}
		switch act.Name {
		case translation.ActionSetHost:
			host := vals[0].Text()
			port, ok := vals[1].AsInt()
			if !ok {
				var n int64
				if _, err := fmt.Sscanf(vals[1].Text(), "%d", &n); err != nil {
					return fmt.Errorf("engine: setHost port %q is not numeric", vals[1].Text())
				}
				port = n
			}
			s.override = netapi.Addr{IP: host, Port: int(port)}
		default:
			return fmt.Errorf("engine: unknown λ action %q", act.Name)
		}
	}
	return nil
}

// runSend builds, translates, composes and transmits a message, timing
// each of the three stages into the engine's histograms and the
// session's flight recorder.
func (s *session) runSend(step merge.Step) error {
	codec := s.e.codecs[step.Protocol]
	// Pooled: the composed message joins the session history and is
	// recycled with it at cleanup.
	out := message.NewPooled(step.Protocol, step.Message)
	env := translation.Env{Lookup: s.lookup, Vars: s.e.vars}
	t0 := time.Now()
	err := s.e.merged.Logic.Apply(out, env, s.e.tfuncs)
	t1 := time.Now()
	s.e.stageHists[trace.StageTranslate].Record(t1.Sub(t0))
	if err != nil {
		out.Release() // never joined the history
		s.rec.RecordAt(trace.StageTranslate, trace.OutcomeErr, t1, 0)
		return err
	}
	s.rec.RecordAt(trace.StageTranslate, trace.OutcomeOK, t1, 0)
	wire, err := codec.Composer.Compose(out)
	t2 := time.Now()
	s.e.stageHists[trace.StageCompose].Record(t2.Sub(t1))
	if err != nil {
		out.Release()
		s.rec.RecordAt(trace.StageCompose, trace.OutcomeErr, t2, 0)
		return err
	}
	s.rec.RecordAt(trace.StageCompose, trace.OutcomeOK, t2, len(wire))
	s.store(out) // sent instances join the history (⇒ over sends)

	if step.ReplyToOrigin {
		src, ok := s.entrySources[step.Protocol]
		if !ok {
			src = s.origin
		}
		err := src.Reply(wire)
		s.e.stageHists[trace.StageSend].Record(time.Since(t2))
		if err != nil {
			s.rec.Record(trace.StageSend, trace.OutcomeErr, len(wire))
			return fmt.Errorf("engine: reply: %w", err)
		}
		s.rec.Record(trace.StageSend, trace.OutcomeOK, len(wire))
		if s.replyAt.IsZero() && step.Protocol == s.e.merged.Initiator {
			s.replyAt = s.e.node.Now()
		}
		return nil
	}
	r, ok := s.requesters[step.Protocol]
	if !ok {
		dest := s.override
		s.override = netapi.Addr{}
		proto := step.Protocol
		r, err = s.e.net.NewRequester(step.Color, dest, codec.Framer, func(data []byte, src netengine.Source, lease *netapi.Buffer) {
			s.e.tracker.WorkAdd()
			s.e.enqueue(s, sessEvent{kind: evData, proto: proto, data: data, lease: lease, arrived: time.Now()})
		})
		if err != nil {
			return err
		}
		s.requesters[step.Protocol] = r
		if s.e.egress != nil {
			s.e.egress.Add(r.LocalAddr())
		}
	}
	sendErr := r.Send(wire)
	s.e.stageHists[trace.StageSend].Record(time.Since(t2))
	if sendErr != nil {
		s.rec.Record(trace.StageSend, trace.OutcomeErr, len(wire))
		return fmt.Errorf("engine: send: %w", sendErr)
	}
	s.rec.Record(trace.StageSend, trace.OutcomeOK, len(wire))
	return nil
}

// armReceive blocks the session on a receive step. The timer callback
// fires on the runtime dispatcher, so it only posts an event back to
// the inbox — never touches session state.
func (s *session) armReceive(step merge.Step) {
	s.waitProto = step.Protocol
	s.waitMsg = step.Message
	s.collected = nil
	s.await.Store(&awaitKey{proto: step.Protocol, msg: step.Message})
	scheme, err := netengine.SchemeOf(step.Color)
	if err != nil {
		s.e.sessionDone(s, err)
		return
	}
	wait := s.e.recvTimeout
	s.windowed = false
	if scheme.Convergence > 0 {
		// Requester-side multicast collection window: gather responses
		// for the full window (the SLP convergence behaviour that
		// dominates the →SLP rows of Fig. 12(b)).
		wait = scheme.Convergence
		if s.e.windowJitter > 0 && s.rng != nil {
			wait += time.Duration(s.rng.Int63n(int64(s.e.windowJitter))) - s.e.windowJitter/2
		}
		s.windowed = true
	}
	s.timerGen++
	gen := s.timerGen
	s.timerSet = true
	s.timer = s.e.node.After(wait, func() {
		s.e.tracker.WorkAdd()
		s.e.deliverTimer(s, gen)
	})
}

func (s *session) windowExpired() {
	if len(s.collected) == 0 {
		s.e.sessionDone(s, fmt.Errorf("engine: no %s/%s response within convergence window", s.waitProto, s.waitMsg))
		return
	}
	s.clearWait()
	s.pc++
	s.advance()
}

func (s *session) clearWait() {
	if s.timerSet {
		s.e.node.Cancel(s.timer)
		s.timerSet = false
	}
	s.timerGen++ // invalidate a fire already in flight
	s.waitProto, s.waitMsg = "", ""
	s.collected = nil
	s.await.Store(nil)
}

func (s *session) deliver(proto string, msg *message.Message) {
	if s.waitProto != proto || s.waitMsg != msg.Name {
		s.rec.Record(trace.StageRecv, trace.OutcomeDrop, 0)
		s.e.bump(&s.e.Ignored)
		// Freshly parsed on this goroutine and never stored: recycle.
		msg.Release()
		return
	}
	s.store(msg)
	if s.windowed {
		s.collected = append(s.collected, msg)
		return // keep collecting until the window expires
	}
	s.clearWait()
	s.pc++
	s.advance()
}

func (s *session) cleanup() {
	s.cancel() // release the session context (idempotent)
	if s.timerSet {
		s.e.node.Cancel(s.timer)
		s.timerSet = false
	}
	s.timerGen++
	s.await.Store(nil)
	for _, r := range s.requesters {
		if s.e.egress != nil {
			s.e.egress.Remove(r.LocalAddr())
		}
		_ = r.Close()
	}
	s.requesters = map[string]*netengine.Requester{}
	// The session owns every message in its history (parsed inputs and
	// composed outputs); nothing references them once the session ends,
	// so the whole working set returns to the message pools here — the
	// session boundary of the pooled fast path.
	s.collected = nil
	for name, h := range s.history {
		for _, m := range h {
			m.Release()
		}
		delete(s.history, name)
	}
}
