package engine

import "sync"

// fnv32a hashes a routing key (FNV-1a) without allocating; shared by
// the shard selector and the ingest-queue selector.
func fnv32a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// sessionTable is the engine's sharded, keyed session registry. The
// key is the routing key of the initiating payload — entry color +
// origin address (netengine.Source.RoutingKey) — so every payload from
// one legacy client socket maps to one shard, and concurrent listener
// or ingest goroutines contend only on 1/N of the table.
type sessionTable struct {
	shards []tableShard
}

type tableShard struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

func newSessionTable(shards int) *sessionTable {
	if shards < 1 {
		shards = 1
	}
	t := &sessionTable{shards: make([]tableShard, shards)}
	for i := range t.shards {
		t.shards[i].sessions = map[string]*session{}
	}
	return t
}

func (t *sessionTable) shardFor(key string) *tableShard {
	return &t.shards[fnv32a(key)%uint32(len(t.shards))]
}

// contains reports whether a live session is registered under key —
// the ingest lane classifier's "is this mid-session data" probe. A
// stale answer only misgrades a payload's priority, never its
// delivery.
func (t *sessionTable) contains(key string) bool {
	sh := t.shardFor(key)
	sh.mu.RLock()
	_, ok := sh.sessions[key]
	sh.mu.RUnlock()
	return ok
}

// remove unregisters s if it is still the session bound to key.
// Returning from remove guarantees no further enqueue can target s:
// enqueues hold the shard read lock while checking membership.
func (t *sessionTable) remove(key string, s *session) {
	sh := t.shardFor(key)
	sh.mu.Lock()
	if sh.sessions[key] == s {
		delete(sh.sessions, key)
	}
	sh.mu.Unlock()
}

// removeAll empties the table and returns every session that was live.
func (t *sessionTable) removeAll() []*session {
	var out []*session
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.sessions = map[string]*session{}
		sh.mu.Unlock()
	}
	return out
}

// findAwaiting locates a live session blocked on (proto, msg),
// preferring one whose origin host matches ip — the routing rule for
// entry payloads that are not initiator requests (e.g. the control
// point's description GET in the reverse-UPnP cases). Ties are broken
// by the lowest session sequence number (oldest session), keeping the
// choice deterministic despite map iteration order. Sessions publish
// their awaited (proto, msg) via an atomic snapshot, so the scan never
// touches goroutine-confined session state; a stale match is harmless
// because the session re-checks on delivery.
func (t *sessionTable) findAwaiting(proto, msg, ip string) *session {
	var sameIP, fallback *session
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			ak := s.await.Load()
			if ak == nil || ak.proto != proto || ak.msg != msg {
				continue
			}
			if s.originIP == ip {
				if sameIP == nil || s.seq < sameIP.seq {
					sameIP = s
				}
			} else if fallback == nil || s.seq < fallback.seq {
				fallback = s
			}
		}
		sh.mu.RUnlock()
	}
	if sameIP != nil {
		return sameIP
	}
	return fallback
}

// each visits every registered session under its shard's read lock.
// fn must be fast and must only touch the session's published state
// (immutable fields and the wait-free recorder), never its
// goroutine-confined fields.
func (t *sessionTable) each(fn func(*session)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			fn(s)
		}
		sh.mu.RUnlock()
	}
}

// live counts registered sessions.
func (t *sessionTable) live() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// stats returns the per-shard session counts.
func (t *sessionTable) stats() []int {
	out := make([]int, len(t.shards))
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		out[i] = len(sh.sessions)
		sh.mu.RUnlock()
	}
	return out
}
