package engine_test

import (
	"fmt"
	"testing"
	"time"

	"starlink/internal/engine"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/simnet"
)

// A burst of clients from distinct hosts must be bridged as fully
// independent concurrent sessions spread across the sharded table.
// The bonjour-to-slp case holds every session open for the bridge's
// 6.25 s SLP convergence window, so all n sessions are live at once.
func TestBridgeManySessionsSharded(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "bonjour-to-slp", engine.WithShardCount(8))
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := slp.NewServiceAgent(svcNode, "service:printer", "service:x"); err != nil {
		t.Fatal(err)
	}
	const n = 24
	doneCount, okCount := 0, 0
	for i := 0; i < n; i++ {
		cliNode, _ := sim.NewNode(fmt.Sprintf("10.0.1.%d", i+1))
		b := dnssd.NewBrowser(cliNode, dnssd.WithBrowseWindow(8*time.Second))
		b.Browse("printer.local", func(r dnssd.BrowseResult) {
			doneCount++
			if len(r.URLs) == 1 {
				okCount++
			}
		})
	}
	// Let the sessions open, then check they are spread over shards.
	sim.Run(time.Second)
	shards := e.ShardStats()
	live, spread := 0, 0
	for _, c := range shards {
		live += c
		if c > 0 {
			spread++
		}
	}
	if live != n {
		t.Fatalf("live sessions mid-flight = %d, want %d (shards=%v)", live, n, shards)
	}
	if spread < 2 {
		t.Fatalf("all sessions landed on one shard: %v", shards)
	}
	if st := e.Stats(); st.Live != n {
		t.Fatalf("Stats().Live = %d, want %d", st.Live, n)
	}
	if err := sim.RunUntil(func() bool { return doneCount == n }, time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if okCount != n || e.Completed != n || e.Failed != 0 {
		t.Fatalf("ok=%d completed=%d failed=%d", okCount, e.Completed, e.Failed)
	}
	if st := e.Stats(); st.Live != 0 {
		t.Fatalf("sessions leaked: %+v (shards=%v)", st, e.ShardStats())
	}
}

// Load beyond the max-sessions bound is rejected, not queued: with a
// bound of 1, concurrent initiator requests yield exactly one bridged
// session and the rest counted as rejected.
func TestBridgeMaxSessionsRejectsOverload(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "slp-to-bonjour", engine.WithMaxSessions(1))
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:x"); err != nil {
		t.Fatal(err)
	}
	const n = 3
	doneCount := 0
	for i := 0; i < n; i++ {
		cliNode, _ := sim.NewNode(fmt.Sprintf("10.0.1.%d", i+1))
		ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(300*time.Millisecond))
		ua.Lookup("service:printer", func(slp.LookupResult) { doneCount++ })
	}
	if err := sim.RunUntil(func() bool { return doneCount == n }, time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if e.Completed != 1 {
		t.Fatalf("completed = %d, want 1", e.Completed)
	}
	if e.Rejected != n-1 {
		t.Fatalf("rejected = %d, want %d", e.Rejected, n-1)
	}
}

// Convergence-window jitter must be reproducible: identical seeds give
// identical per-session timings even though each session draws from
// its own RNG.
func TestWindowJitterDeterministic(t *testing.T) {
	run := func() time.Duration {
		sim := simnet.New(simnet.WithSeed(7))
		var stats []engine.SessionStats
		e := deploy(t, sim, "upnp-to-slp",
			engine.WithWindowJitter(200*time.Millisecond, 42),
			engine.WithObserver(func(s engine.SessionStats) { stats = append(stats, s) }))
		_ = e
		svcNode, _ := sim.NewNode("10.0.0.9")
		if _, err := slp.NewServiceAgent(svcNode, "service:printer", "service:printer://10.0.0.9:515"); err != nil {
			t.Fatal(err)
		}
		cliNode, _ := sim.NewNode("10.0.0.1")
		cp := upnp.NewControlPoint(cliNode, upnp.WithMX(8*time.Second))
		done := false
		cp.Discover("urn:printer", func(upnp.DiscoverResult) { done = true })
		if err := sim.RunUntil(func() bool { return done }, 2*time.Minute); err != nil {
			t.Fatal(err)
		}
		sim.RunToQuiescence()
		if len(stats) != 1 || stats[0].Err != nil {
			t.Fatalf("stats = %+v", stats)
		}
		return stats[0].Duration
	}
	first := run()
	for i := 0; i < 2; i++ {
		if d := run(); d != first {
			t.Fatalf("run %d: duration %v != %v — jitter not reproducible", i+2, d, first)
		}
	}
}

// Closing an engine with many sessions in flight must drain every
// session goroutine and release every resource without deadlocking.
func TestBridgeCloseDrainsConcurrentSessions(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "bonjour-to-slp") // 6.25 s window: sessions stay live
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := slp.NewServiceAgent(svcNode, "service:printer", "service:x"); err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		cliNode, _ := sim.NewNode(fmt.Sprintf("10.0.1.%d", i+1))
		b := dnssd.NewBrowser(cliNode, dnssd.WithBrowseWindow(8*time.Second))
		b.Browse("printer.local", func(dnssd.BrowseResult) {})
	}
	sim.Run(time.Second)
	if st := e.Stats(); st.Live != n {
		t.Fatalf("live = %d, want %d", st.Live, n)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Live != 0 {
		t.Fatalf("live after close = %d", st.Live)
	}
	sim.RunToQuiescence() // client windows expire cleanly
}
