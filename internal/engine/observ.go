package engine

import (
	"sort"
	"time"

	"starlink/internal/hist"
	"starlink/internal/lanes"
	"starlink/internal/netapi"
	"starlink/internal/trace"
)

// LatencyDump is a snapshot of the engine's staged latency histograms:
// one distribution per pipeline stage plus the whole-session
// distribution (the paper's §VI translation time).
type LatencyDump struct {
	Stages  [trace.NumStages]hist.Snapshot
	Session hist.Snapshot
}

// Merge folds another dump into d (per-case → aggregate rollups).
func (d *LatencyDump) Merge(o LatencyDump) {
	for i := range d.Stages {
		d.Stages[i].Merge(o.Stages[i])
	}
	d.Session.Merge(o.Session)
}

// Latency snapshots the engine's staged latency histograms; safe from
// any goroutine at any time, including after Close.
func (e *Engine) Latency() LatencyDump {
	var d LatencyDump
	for i := range e.stageHists {
		d.Stages[i] = e.stageHists[i].Snapshot()
	}
	d.Session = e.sessHist.Snapshot()
	return d
}

// LaneDump is a snapshot of the engine's ingest-lane accounting: the
// per-lane admit/defer/shed counters and depths rolled up across the
// per-worker queues, plus the per-lane queue-wait distributions
// (listener arrival to ingest-worker pickup).
type LaneDump struct {
	Counters [lanes.NumLanes]lanes.Counters
	Wait     [lanes.NumLanes]hist.Snapshot
}

// Merge folds another dump into d (per-case → aggregate rollups).
func (d *LaneDump) Merge(o LaneDump) {
	d.Counters = lanes.Sum(d.Counters, o.Counters)
	for i := range d.Wait {
		d.Wait[i].Merge(o.Wait[i])
	}
}

// Lanes snapshots the engine's ingest-lane accounting; safe from any
// goroutine at any time, including after Close.
func (e *Engine) Lanes() LaneDump {
	var d LaneDump
	snaps := make([][lanes.NumLanes]lanes.Counters, 0, len(e.laneQs))
	for _, q := range e.laneQs {
		snaps = append(snaps, q.Counters())
	}
	d.Counters = lanes.Sum(snaps...)
	for i := range d.Wait {
		d.Wait[i] = e.laneHists[i].Snapshot()
	}
	return d
}

// RecordClassify attributes a dispatcher classification latency to this
// engine's case (the dispatcher measures it; the engine owns the
// per-case histogram it lands in).
func (e *Engine) RecordClassify(d time.Duration) {
	e.stageHists[trace.StageClassify].Record(d)
}

// LiveSession describes one currently registered session: its table
// key, origin, start time and — when the flight recorder is enabled —
// the trace events recorded so far.
type LiveSession struct {
	Key    string
	Origin netapi.Addr
	Start  time.Time
	Trace  []trace.Event
}

// LiveSessions lists the engine's registered sessions, oldest first.
// The listing reads only session state published before table insertion
// (key, origin, start) plus the wait-free recorder, so it is safe while
// sessions run; a live trace may show an event mid-overwrite.
func (e *Engine) LiveSessions() []LiveSession {
	type row struct {
		seq uint64
		ls  LiveSession
	}
	var rows []row
	e.table.each(func(s *session) {
		rows = append(rows, row{seq: s.seq, ls: LiveSession{
			Key:    s.key,
			Origin: s.origin.Addr,
			Start:  s.start,
			Trace:  s.rec.Events(),
		}})
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })
	out := make([]LiveSession, len(rows))
	for i, r := range rows {
		out[i] = r.ls
	}
	return out
}

// Probe is a point-in-time snapshot of the engine's internal resource
// accounting, exposed for the DST invariant checks: after a quiesced
// teardown every field must read zero (and State must be closed) or
// the run leaked sessions, max-session slots or queued payloads.
type Probe struct {
	// State is the lifecycle state at probe time.
	State State
	// Live is the number of sessions registered in the table.
	Live int
	// SemInUse is the number of max-sessions slots currently held; a
	// nonzero value after teardown means a session finished without
	// releasing its admission slot.
	SemInUse int
	// LaneDepth is the number of payloads queued across every ingest
	// lane queue.
	LaneDepth int
}

// Probe snapshots the engine's internal accounting; safe from any
// goroutine at any time, including after Close.
func (e *Engine) Probe() Probe {
	p := Probe{State: e.State(), Live: e.table.live(), SemInUse: len(e.sem)}
	for _, q := range e.laneQs {
		p.LaneDepth += q.Depth()
	}
	return p
}
