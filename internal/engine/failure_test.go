package engine_test

import (
	"strings"
	"testing"
	"time"

	"starlink/internal/engine"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/ssdp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/registry"
	"starlink/internal/simnet"
)

// A reverse bridge with no SLP service behind it must fail the session
// with a convergence-window error after ~6.25 s — and the control
// point simply times out, as with a genuinely absent device.
func TestBridgeReverseNoServiceFailsSession(t *testing.T) {
	sim := simnet.New()
	var stats []engine.SessionStats
	e := deploy(t, sim, "upnp-to-slp", engine.WithObserver(func(s engine.SessionStats) {
		stats = append(stats, s)
	}))
	_ = e
	cliNode, _ := sim.NewNode("10.0.0.1")
	cp := upnp.NewControlPoint(cliNode, upnp.WithMX(8*time.Second))
	var res upnp.DiscoverResult
	done := false
	cp.Discover("urn:printer", func(r upnp.DiscoverResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if len(res.ServiceURLs) != 0 {
		t.Fatalf("urls = %v", res.ServiceURLs)
	}
	if len(stats) != 1 || stats[0].Err == nil {
		t.Fatalf("stats = %+v", stats)
	}
	if !strings.Contains(stats[0].Err.Error(), "convergence window") {
		t.Fatalf("err = %v", stats[0].Err)
	}
}

// With multiple services answering, the SLP convergence window must
// collect all replies into the session history (the ⇒ history
// operator) and still produce exactly one translated reply.
func TestBridgeConvergenceCollectsMultipleReplies(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "upnp-to-slp")
	for i, ip := range []string{"10.0.0.8", "10.0.0.9"} {
		n, _ := sim.NewNode(ip)
		url := "service:printer://" + ip + ":515"
		if _, err := slp.NewServiceAgent(n, "service:printer", url); err != nil {
			t.Fatalf("service %d: %v", i, err)
		}
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	cp := upnp.NewControlPoint(cliNode, upnp.WithMX(8*time.Second))
	var res upnp.DiscoverResult
	done := false
	cp.Discover("urn:printer", func(r upnp.DiscoverResult) { res = r; done = true })
	if err := sim.RunUntil(func() bool { return done }, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if e.Completed != 1 {
		t.Fatalf("completed = %d failed = %d", e.Completed, e.Failed)
	}
	// The control point received one LOCATION (the bridge's) and one
	// description; the URL is one of the two services.
	if len(res.ServiceURLs) != 1 {
		t.Fatalf("urls = %v", res.ServiceURLs)
	}
	if !strings.HasPrefix(res.ServiceURLs[0], "service:printer://10.0.0.") {
		t.Fatalf("url = %q", res.ServiceURLs[0])
	}
}

// Closing the engine mid-session must release resources without
// crashing; the client's lookup simply returns nothing.
func TestBridgeCloseMidSession(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "bonjour-to-slp") // 6.25 s window: plenty of time
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := slp.NewServiceAgent(svcNode, "service:printer", "service:x"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	b := dnssd.NewBrowser(cliNode, dnssd.WithBrowseWindow(8*time.Second))
	var res dnssd.BrowseResult
	done := false
	b.Browse("printer.local", func(r dnssd.BrowseResult) { res = r; done = true })
	// Let the session start, then kill the bridge one second in.
	sim.Run(time.Second)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(func() bool { return done }, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 0 {
		t.Fatalf("urls = %v after bridge close", res.URLs)
	}
}

// Datagram loss between bridge and target service: the bridge's
// request is dropped, the session times out cleanly, and a later
// retry (fresh request) succeeds once loss stops.
func TestBridgeSurvivesPacketLoss(t *testing.T) {
	sim := simnet.New(simnet.WithLoss(1.0))
	var stats []engine.SessionStats
	e := deploy(t, sim, "slp-to-bonjour", engine.WithObserver(func(s engine.SessionStats) {
		stats = append(stats, s)
	}))
	_ = e
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:x"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(200*time.Millisecond))
	done := false
	ua.Lookup("service:printer", func(slp.LookupResult) { done = true })
	sim.RunToQuiescence()
	// Total loss: the request never even reached the bridge.
	if !done {
		t.Fatal("client window should have expired")
	}
	if len(stats) != 0 {
		t.Fatalf("no session should have started, got %+v", stats)
	}
}

// Two bridges for different cases can coexist on one network as long
// as their entry colors differ (here: SLP entry + mDNS entry).
func TestTwoBridgesCoexist(t *testing.T) {
	sim := simnet.New()
	reg, err := registry.Builtin()
	if err != nil {
		t.Fatal(err)
	}
	deployOn := func(host, caseName string) *engine.Engine {
		merged, err := reg.Merged(caseName)
		if err != nil {
			t.Fatal(err)
		}
		codecs, err := reg.Codecs(merged)
		if err != nil {
			t.Fatal(err)
		}
		node, err := sim.NewNode(host)
		if err != nil {
			t.Fatal(err)
		}
		e, err := engine.New(node, merged, codecs)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = e.Close() })
		return e
	}
	e1 := deployOn("10.0.0.5", "slp-to-upnp")
	e2 := deployOn("10.0.0.6", "bonjour-to-upnp")

	devNode, _ := sim.NewNode("10.0.0.7")
	if _, err := upnp.NewDevice(devNode, "urn:printer", "http://10.0.0.7:5431/svc", 5431); err != nil {
		t.Fatal(err)
	}

	// SLP client goes through bridge 1.
	cli1, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cli1, slp.WithConvergenceWait(400*time.Millisecond))
	slpDone := false
	var slpURLs []string
	ua.Lookup("service:printer", func(r slp.LookupResult) { slpURLs = r.URLs; slpDone = true })

	// Bonjour client goes through bridge 2.
	cli2, _ := sim.NewNode("10.0.0.2")
	br := dnssd.NewBrowser(cli2, dnssd.WithBrowseWindow(400*time.Millisecond))
	bonjourDone := false
	var dnsURLs []string
	br.Browse("printer.local", func(r dnssd.BrowseResult) { dnsURLs = r.URLs; bonjourDone = true })

	if err := sim.RunUntil(func() bool { return slpDone && bonjourDone }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(slpURLs) != 1 || len(dnsURLs) != 1 {
		t.Fatalf("slp=%v dns=%v (e1: %d/%d, e2: %d/%d)",
			slpURLs, dnsURLs, e1.Completed, e1.Failed, e2.Completed, e2.Failed)
	}
}

// The SSDP entry of a UPnP-facing bridge must ignore searches for
// service types it cannot serve... in fact Starlink is type-agnostic:
// it forwards any ST. Verify an unmatched type flows through and fails
// only at the SLP convergence stage (no service answers).
func TestBridgeForwardsUnknownServiceTypes(t *testing.T) {
	sim := simnet.New()
	var stats []engine.SessionStats
	deploy(t, sim, "upnp-to-slp", engine.WithObserver(func(s engine.SessionStats) {
		stats = append(stats, s)
	}))
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := slp.NewServiceAgent(svcNode, "service:printer", "service:x"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	cp := ssdp.NewControlPoint(cliNode)
	done := false
	cp.Search("urn:scanner", 8*time.Second, func([]ssdp.SearchResult, error) { done = true })
	if err := sim.RunUntil(func() bool { return done }, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	sim.RunToQuiescence()
	if len(stats) != 1 || stats[0].Err == nil {
		t.Fatalf("stats = %+v (expected a convergence failure for the unmatched type)", stats)
	}
}

// Session history is per-session: two sequential lookups through one
// bridge must not leak content between sessions (distinct XIDs echo
// correctly).
func TestBridgeSessionIsolation(t *testing.T) {
	sim := simnet.New()
	e := deploy(t, sim, "slp-to-bonjour")
	svcNode, _ := sim.NewNode("10.0.0.9")
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:x"); err != nil {
		t.Fatal(err)
	}
	cliNode, _ := sim.NewNode("10.0.0.1")
	ua := slp.NewUserAgent(cliNode, slp.WithConvergenceWait(200*time.Millisecond))
	for i := 0; i < 3; i++ {
		done := false
		var res slp.LookupResult
		ua.Lookup("service:printer", func(r slp.LookupResult) { res = r; done = true })
		if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
			t.Fatal(err)
		}
		if len(res.URLs) != 1 {
			t.Fatalf("round %d: urls = %v", i, res.URLs)
		}
	}
	if e.Completed != 3 || e.Failed != 0 {
		t.Fatalf("completed=%d failed=%d", e.Completed, e.Failed)
	}
}
