// Package parser implements Starlink's runtime-generated message
// parsers (paper §IV-A). A Parser is a generic interpreter specialised
// by an MDL specification: feeding it the bytes of a legacy protocol
// message yields the protocol-independent abstract message
// representation of §III-A. No protocol-specific code is compiled —
// loading a different MDL re-specialises the same interpreter.
package parser

import (
	"bytes"
	"fmt"
	"strconv"

	"starlink/internal/bitio"
	"starlink/internal/mdl"
	"starlink/internal/message"
	"starlink/internal/types"
)

// newField builds a pooled primitive field. The field joins its
// message's pool lifetime: the message's Release recycles it.
//
//starlink:returns-pooled
func newField(label, typ string, length int, v message.Value) *message.Field {
	f := message.NewField()
	f.Label, f.Type, f.Length, f.Value = label, typ, length, v
	return f
}

// Parser turns wire bytes into abstract messages under an MDL spec.
type Parser struct {
	spec  *mdl.Spec
	types *types.Registry
}

// New returns a parser for the given specification. A nil registry uses
// the built-in types.
func New(spec *mdl.Spec, reg *types.Registry) (*Parser, error) {
	if spec == nil {
		return nil, fmt.Errorf("parser: nil spec")
	}
	if reg == nil {
		reg = types.NewRegistry()
	}
	return &Parser{spec: spec, types: reg}, nil
}

// Spec returns the MDL specification the parser interprets.
func (p *Parser) Spec() *mdl.Spec { return p.spec }

// Parse decodes one complete wire message into an abstract message.
// The returned message comes from the message pool and never aliases
// data; callers that fully consume it may hand it back with Release.
func (p *Parser) Parse(data []byte) (*message.Message, error) {
	switch p.spec.Dialect {
	case mdl.DialectBinary:
		return p.parseBinary(data)
	case mdl.DialectText:
		return p.parseText(data)
	default:
		return nil, fmt.Errorf("parser: spec %s has invalid dialect", p.spec.Protocol)
	}
}

// ---------------------------------------------------------------------
// Binary dialect
// ---------------------------------------------------------------------

func (p *Parser) parseBinary(data []byte) (*message.Message, error) {
	var r bitio.Reader
	r.Init(data)
	msg := message.NewPooled(p.spec.Protocol, "")
	if err := p.parseBinaryFields(&r, data, p.spec.Header.Fields, msg, nil); err != nil {
		msg.Release()
		return nil, fmt.Errorf("parser: %s header: %w", p.spec.Protocol, err)
	}
	def, err := p.spec.SelectMessage(func(label string) (string, bool) {
		f, ok := msg.Field(label)
		if !ok {
			return "", false
		}
		return f.Value.Text(), true
	})
	if err != nil {
		msg.Release()
		return nil, err
	}
	msg.Name = def.Name
	if err := p.parseBinaryFields(&r, data, def.Fields, msg, nil); err != nil {
		msg.Release()
		return nil, fmt.Errorf("parser: %s %s body: %w", p.spec.Protocol, def.Name, err)
	}
	p.markMandatory(msg, def)
	return msg, nil
}

// parseBinaryFields parses a field list. When into is non-nil the
// decoded fields are appended as children (repeat-group items);
// otherwise they are added to msg.
func (p *Parser) parseBinaryFields(r *bitio.Reader, data []byte, defs []*mdl.FieldDef, msg *message.Message, into *message.Field) error {
	addField := func(f *message.Field) {
		if into != nil {
			into.Children = append(into.Children, f)
		} else {
			msg.Add(f)
		}
	}
	lookupInt := func(label string) (int64, error) {
		var f *message.Field
		if into != nil {
			if c, ok := into.Child(label); ok {
				f = c
			}
		}
		if f == nil {
			if c, ok := msg.Field(label); ok {
				f = c
			}
		}
		if f == nil {
			return 0, fmt.Errorf("size/count field %q not yet parsed", label)
		}
		v, ok := f.Value.AsInt()
		if !ok {
			return 0, fmt.Errorf("size/count field %q is not an integer", label)
		}
		return v, nil
	}

	for _, def := range defs {
		if def.IsGroup() {
			n, err := lookupInt(def.CountRef)
			if err != nil {
				return err
			}
			if n < 0 || n > 1<<16 {
				return fmt.Errorf("group %q count %d out of range", def.Label, n)
			}
			group := message.NewField()
			group.Label, group.Type, group.Children = def.Label, "Group", []*message.Field{}
			for i := int64(0); i < n; i++ {
				item := message.NewField()
				item.Label, item.Type, item.Children = strconv.FormatInt(i, 10), "GroupItem", []*message.Field{}
				if err := p.parseBinaryFields(r, data, def.Group, msg, item); err != nil {
					// Neither the partial item nor the group (with the
					// items parsed so far) ever reaches the message;
					// recycle both or the pool shrinks on malformed
					// input.
					item.Release()
					group.Release()
					return fmt.Errorf("group %q item %d: %w", def.Label, i, err)
				}
				group.Children = append(group.Children, item)
			}
			addField(group)
			continue
		}

		td := p.spec.TypeOf(def.Label)
		m, err := p.types.Lookup(td.TypeName)
		if err != nil {
			return fmt.Errorf("field %q: %w", def.Label, err)
		}

		var f *message.Field
		switch {
		case def.SizeBits > 0:
			f, err = p.parseFixed(r, def, td, m)
		case def.SizeRef != "":
			n, lerr := lookupInt(def.SizeRef)
			if lerr != nil {
				return lerr
			}
			if n < 0 {
				return fmt.Errorf("field %q: negative length %d", def.Label, n)
			}
			raw, rerr := r.ReadBytes(int(n))
			if rerr != nil {
				return fmt.Errorf("field %q: %w", def.Label, rerr)
			}
			f, err = p.buildField(def, td, m, raw, 0)
		case def.Rest:
			raw, rerr := r.ReadAll()
			if rerr != nil {
				return fmt.Errorf("field %q: %w", def.Label, rerr)
			}
			f, err = p.buildField(def, td, m, raw, 0)
		default:
			// Self-delimiting type (FQDN): decode from the remaining
			// bytes and skip the consumed amount.
			if !r.Aligned() {
				return fmt.Errorf("field %q: self-delimiting field at unaligned position", def.Label)
			}
			remaining := data[r.Pos()/8:]
			if td.TypeName != "FQDN" {
				return fmt.Errorf("field %q: type %q is not self-delimiting", def.Label, td.TypeName)
			}
			name, n, derr := types.DecodeFQDN(remaining)
			if derr != nil {
				return fmt.Errorf("field %q: %w", def.Label, derr)
			}
			if serr := r.Skip(n * 8); serr != nil {
				return fmt.Errorf("field %q: %w", def.Label, serr)
			}
			f = newField(def.Label, td.TypeName, 0, message.Str(name))
			err = nil
		}
		if err != nil {
			return err
		}
		addField(f)
	}
	return nil
}

// parseFixed reads a fixed-width field.
//
//starlink:returns-pooled
func (p *Parser) parseFixed(r *bitio.Reader, def *mdl.FieldDef, td mdl.TypeDef, m types.Marshaller) (*message.Field, error) {
	bits := def.SizeBits
	if m.Kind() == message.KindInt && bits <= 64 {
		v, err := r.ReadBits(bits)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", def.Label, err)
		}
		return newField(def.Label, td.TypeName, bits, message.Int(int64(v))), nil
	}
	if m.Kind() == message.KindBool && bits <= 64 {
		v, err := r.ReadBits(bits)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", def.Label, err)
		}
		return newField(def.Label, td.TypeName, bits, message.Bool(v != 0)), nil
	}
	if bits%8 != 0 {
		return nil, fmt.Errorf("field %q: non-integer type with unaligned width %d", def.Label, bits)
	}
	raw, err := r.ReadBytes(bits / 8)
	if err != nil {
		return nil, fmt.Errorf("field %q: %w", def.Label, err)
	}
	return p.buildField(def, td, m, raw, bits)
}

// buildField unmarshals raw content into a message field, exploding
// structured types.
//
//starlink:returns-pooled
func (p *Parser) buildField(def *mdl.FieldDef, td mdl.TypeDef, m types.Marshaller, raw []byte, bits int) (*message.Field, error) {
	v, err := m.Unmarshal(raw, bits)
	if err != nil {
		return nil, fmt.Errorf("field %q: %w", def.Label, err)
	}
	f := newField(def.Label, td.TypeName, bits, v)
	if sm, ok := m.(types.StructuredMarshaller); ok {
		children, err := sm.Explode(v)
		if err != nil {
			f.Release()
			return nil, fmt.Errorf("field %q: %w", def.Label, err)
		}
		f.Children = children
	}
	return f, nil
}

// ---------------------------------------------------------------------
// Text dialect
// ---------------------------------------------------------------------

func (p *Parser) parseText(data []byte) (*message.Message, error) {
	msg := message.NewPooled(p.spec.Protocol, "")
	rest := data
	var err error
	for _, def := range p.spec.Header.Fields {
		if def.Wildcard {
			rest, err = p.parseWildcard(rest, def, msg)
			if err != nil {
				msg.Release()
				return nil, fmt.Errorf("parser: %s wildcard: %w", p.spec.Protocol, err)
			}
			continue
		}
		var token []byte
		token, rest, err = cutDelim(rest, def.Delim)
		if err != nil {
			msg.Release()
			return nil, fmt.Errorf("parser: %s field %q: %w", p.spec.Protocol, def.Label, err)
		}
		f, err := p.textField(def.Label, token)
		if err != nil {
			msg.Release()
			return nil, fmt.Errorf("parser: %s: %w", p.spec.Protocol, err)
		}
		msg.Add(f)
	}
	def, err := p.spec.SelectMessage(func(label string) (string, bool) {
		f, ok := msg.Field(label)
		if !ok {
			return "", false
		}
		return f.Value.Text(), true
	})
	if err != nil {
		msg.Release()
		return nil, err
	}
	msg.Name = def.Name
	switch def.Body {
	case mdl.BodyRaw:
		msg.Add(newField("Body", "Bytes", 0, message.Bytes(rest)))
	case mdl.BodyXML:
		if err := flattenXMLBody(rest, msg); err != nil {
			msg.Release()
			return nil, fmt.Errorf("parser: %s xml body: %w", p.spec.Protocol, err)
		}
		// Preserve the raw body so it can be recomposed verbatim.
		msg.Add(newField("Body", "Bytes", 0, message.Bytes(rest)))
	case mdl.BodyNone:
		// Trailing bytes after the blank line are ignored (some stacks
		// pad datagrams).
	}
	p.markMandatory(msg, def)
	return msg, nil
}

// parseWildcard consumes label:value lines until an empty line.
func (p *Parser) parseWildcard(data []byte, def *mdl.FieldDef, msg *message.Message) (rest []byte, err error) {
	rest = data
	for {
		if len(rest) == 0 {
			// Datagram ended exactly at the last line; treat as
			// terminated (tolerates stacks omitting the blank line).
			return rest, nil
		}
		if bytes.HasPrefix(rest, def.Delim) {
			return rest[len(def.Delim):], nil
		}
		var line []byte
		line, rest, err = cutDelim(rest, def.Delim)
		if err != nil {
			return nil, err
		}
		i := bytes.IndexByte(line, def.InnerSplit)
		if i < 0 {
			return nil, fmt.Errorf("line %q has no %q separator", line, string(def.InnerSplit))
		}
		label := string(bytes.TrimSpace(line[:i]))
		value := bytes.TrimSpace(line[i+1:])
		if label == "" {
			return nil, fmt.Errorf("line %q has empty label", line)
		}
		f, ferr := p.textField(label, value)
		if ferr != nil {
			return nil, ferr
		}
		// A repeated header label replaces the earlier line; the parser
		// owns the displaced pooled field, so recycle it.
		if old := msg.Swap(f); old != nil {
			old.Release()
		}
	}
}

// textField builds an abstract field from a text token using the
// spec's type table (unknown labels default to String). token is
// borrowed — marshallers copy what they keep — so the caller avoids a
// string conversion per field.
//
//starlink:returns-pooled
func (p *Parser) textField(label string, token []byte) (*message.Field, error) {
	td := p.spec.TypeOf(label)
	m, err := p.types.Lookup(td.TypeName)
	if err != nil {
		return nil, fmt.Errorf("field %q: %w", label, err)
	}
	var v message.Value
	if m.Kind() == message.KindInt {
		// Text integers arrive as decimal strings; parsed in place so
		// the borrowed token really does avoid a conversion.
		n, err := parseIntBytes(token)
		if err != nil {
			return nil, fmt.Errorf("field %q: %q is not an integer", label, token)
		}
		v = message.Int(n)
	} else {
		var err error
		v, err = m.Unmarshal(token, 0)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", label, err)
		}
	}
	f := newField(label, td.TypeName, 0, v)
	if sm, ok := m.(types.StructuredMarshaller); ok {
		children, err := sm.Explode(v)
		if err != nil {
			f.Release()
			return nil, fmt.Errorf("field %q: %w", label, err)
		}
		f.Children = children
	}
	return f, nil
}

// parseIntBytes is strconv.ParseInt(string(b), 10, 64) over a borrowed
// byte slice, without the string conversion; leading/trailing ASCII
// space is tolerated the way the strings.TrimSpace form was. The full
// int64 range is representable, matching strconv exactly.
func parseIntBytes(b []byte) (int64, error) {
	b = bytes.TrimSpace(b)
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, fmt.Errorf("parser: empty integer")
	}
	// Accumulate unsigned against the sign-dependent cutoff so both
	// MaxInt64 and MinInt64 parse exactly.
	cutoff := uint64(1<<63 - 1)
	if neg {
		cutoff = 1 << 63
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("parser: bad digit %q", c)
		}
		d := uint64(c - '0')
		if n > (cutoff-d)/10 {
			return 0, fmt.Errorf("parser: integer overflow")
		}
		n = n*10 + d
	}
	if neg {
		// n <= 1<<63 here; two's-complement negation yields MinInt64
		// for the n == 1<<63 boundary.
		return -int64(n), nil
	}
	return int64(n), nil
}

// cutDelim splits data at the first occurrence of delim.
func cutDelim(data, delim []byte) (token, rest []byte, err error) {
	i := bytes.Index(data, delim)
	if i < 0 {
		return nil, nil, fmt.Errorf("delimiter %v not found in %q", delim, truncate(data))
	}
	return data[:i], data[i+len(delim):], nil
}

func truncate(b []byte) string {
	if len(b) > 48 {
		return string(b[:48]) + "..."
	}
	return string(b)
}

func (p *Parser) markMandatory(msg *message.Message, def *mdl.MessageDef) {
	for _, l := range def.Mandatory {
		if f, ok := msg.Field(l); ok {
			f.Mandatory = true
		}
	}
}
