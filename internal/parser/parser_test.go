package parser

import (
	"strconv"
	"strings"
	"testing"

	"starlink/internal/mdl"
	"starlink/internal/message"
)

const slpMDL = `
<MDL protocol="SLP" dialect="binary">
 <Types>
  <Version>Integer</Version>
  <FunctionID>Integer</FunctionID>
  <MessageLength>Integer[f-totallength()]</MessageLength>
  <reserved>Integer</reserved>
  <NextExtOffset>Integer</NextExtOffset>
  <XID>Integer</XID>
  <LangTagLen>Integer</LangTagLen>
  <LangTag>String</LangTag>
  <PRLength>Integer</PRLength>
  <PRStringTable>String</PRStringTable>
  <SRVTypeLength>Integer</SRVTypeLength>
  <SRVType>String</SRVType>
  <ErrorCode>Integer</ErrorCode>
  <URLCount>Integer</URLCount>
  <URLEntry>String</URLEntry>
  <URLLength>Integer[f-length(URLEntry)]</URLLength>
 </Types>
 <Header type="SLP">
  <Version>8</Version>
  <FunctionID>8</FunctionID>
  <MessageLength>24</MessageLength>
  <reserved>16</reserved>
  <NextExtOffset>24</NextExtOffset>
  <XID>16</XID>
  <LangTagLen>16</LangTagLen>
  <LangTag>LangTagLen</LangTag>
 </Header>
 <Message type="SLPSrvRequest" mandatory="SRVType">
  <Rule>FunctionID=1</Rule>
  <PRLength>16</PRLength>
  <PRStringTable>PRLength</PRStringTable>
  <SRVTypeLength>16</SRVTypeLength>
  <SRVType>SRVTypeLength</SRVType>
 </Message>
 <Message type="SLPSrvReply" mandatory="URLEntry,XID">
  <Rule>FunctionID=2</Rule>
  <ErrorCode>16</ErrorCode>
  <URLCount>16</URLCount>
  <URLLength>16</URLLength>
  <URLEntry>URLLength</URLEntry>
 </Message>
</MDL>`

// buildSLPRequest hand-assembles an SLP SrvRequest wire message.
func buildSLPRequest(t *testing.T, xid int, srvType string) []byte {
	t.Helper()
	lang := "en"
	var b []byte
	b = append(b, 2, 1)                    // Version, FunctionID=1
	b = append(b, 0, 0, 0)                 // MessageLength (patched below)
	b = append(b, 0, 0)                    // reserved
	b = append(b, 0, 0, 0)                 // NextExtOffset
	b = append(b, byte(xid>>8), byte(xid)) // XID
	b = append(b, 0, byte(len(lang)))
	b = append(b, lang...)
	b = append(b, 0, 0) // PRLength=0
	b = append(b, byte(len(srvType)>>8), byte(len(srvType)))
	b = append(b, srvType...)
	total := len(b)
	b[2], b[3], b[4] = byte(total>>16), byte(total>>8), byte(total)
	return b
}

func TestParseSLPRequest(t *testing.T) {
	spec, err := mdl.ParseXMLString(slpMDL)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire := buildSLPRequest(t, 0x0102, "service:printer")
	msg, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Protocol != "SLP" || msg.Name != "SLPSrvRequest" {
		t.Fatalf("msg = %s/%s", msg.Protocol, msg.Name)
	}
	if f, _ := msg.Field("XID"); mustInt(t, f) != 0x0102 {
		t.Errorf("XID = %d", mustInt(t, f))
	}
	if f, _ := msg.Field("SRVType"); mustStr(t, f) != "service:printer" {
		t.Errorf("SRVType = %q", mustStr(t, f))
	}
	if f, _ := msg.Field("LangTag"); mustStr(t, f) != "en" {
		t.Errorf("LangTag = %q", mustStr(t, f))
	}
	f, _ := msg.Field("SRVType")
	if !f.Mandatory {
		t.Error("SRVType should be mandatory")
	}
	if f, _ := msg.Field("MessageLength"); mustInt(t, f) != int64(len(wire)) {
		t.Errorf("MessageLength = %d, wire = %d", mustInt(t, f), len(wire))
	}
}

func TestParseSLPTruncated(t *testing.T) {
	spec, _ := mdl.ParseXMLString(slpMDL)
	p, _ := New(spec, nil)
	wire := buildSLPRequest(t, 7, "service:x")
	for _, cut := range []int{1, 5, 12, 17, len(wire) - 1} {
		if _, err := p.Parse(wire[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

func TestParseSLPUnknownFunctionID(t *testing.T) {
	spec, _ := mdl.ParseXMLString(slpMDL)
	p, _ := New(spec, nil)
	wire := buildSLPRequest(t, 7, "service:x")
	wire[1] = 99 // unknown FunctionID
	if _, err := p.Parse(wire); err == nil || !strings.Contains(err.Error(), "no message rule") {
		t.Fatalf("err = %v", err)
	}
}

const ssdpMDL = `
<MDL protocol="SSDP" dialect="text">
 <Types>
  <Method>String</Method>
  <URI>String</URI>
  <Version>String</Version>
  <ST>String</ST>
  <MX>Integer</MX>
  <LOCATION>URL</LOCATION>
 </Types>
 <Header type="SSDP">
  <Method>32</Method>
  <URI>32</URI>
  <Version>13,10</Version>
  <Fields>13,10:58</Fields>
 </Header>
 <Message type="SSDPMSearch" mandatory="ST">
  <Rule>Method=M-SEARCH</Rule>
 </Message>
 <Message type="SSDPResponse" mandatory="LOCATION">
  <Rule>Method=HTTP/1.1</Rule>
 </Message>
</MDL>`

func TestParseSSDPMSearch(t *testing.T) {
	spec, err := mdl.ParseXMLString(ssdpMDL)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire := "M-SEARCH * HTTP/1.1\r\n" +
		"HOST: 239.255.255.250:1900\r\n" +
		"MAN: \"ssdp:discover\"\r\n" +
		"MX: 1\r\n" +
		"ST: urn:printer\r\n" +
		"\r\n"
	msg, err := p.Parse([]byte(wire))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Name != "SSDPMSearch" {
		t.Fatalf("name = %q", msg.Name)
	}
	if f, _ := msg.Field("ST"); mustStr(t, f) != "urn:printer" {
		t.Errorf("ST = %q", mustStr(t, f))
	}
	if f, _ := msg.Field("MX"); mustInt(t, f) != 1 {
		t.Errorf("MX = %d", mustInt(t, f))
	}
	if f, _ := msg.Field("Method"); mustStr(t, f) != "M-SEARCH" {
		t.Errorf("Method = %q", mustStr(t, f))
	}
}

// TestParseTextIntegerStrict pins a deliberate strictness decision: an
// Integer-typed text token with trailing junk ("3;ext") is a parse
// error, not a best-effort 3. The fmt.Sscanf-based parser accepted the
// leading digits silently; a protocol bridge should not guess at
// malformed wire content.
func TestParseTextIntegerStrict(t *testing.T) {
	spec, err := mdl.ParseXMLString(ssdpMDL)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire := "M-SEARCH * HTTP/1.1\r\n" +
		"MX: 3;ext\r\n" +
		"ST: urn:printer\r\n" +
		"\r\n"
	if _, err := p.Parse([]byte(wire)); err == nil {
		t.Fatal("malformed integer token should fail the parse")
	}
}

// TestParseIntBytesMatchesStrconv pins parseIntBytes against the
// strconv behavior its doc comment claims, including the int64
// boundaries.
func TestParseIntBytesMatchesStrconv(t *testing.T) {
	for _, s := range []string{
		"0", "1", "-1", "+7", " 42 ", "9223372036854775807", "-9223372036854775808",
		"9223372036854775808", "-9223372036854775809", "", " ", "+", "-", "3;ext", "1.5", "0x10",
	} {
		want, wantErr := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		got, gotErr := parseIntBytes([]byte(s))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("parseIntBytes(%q) err = %v, strconv err = %v", s, gotErr, wantErr)
			continue
		}
		if wantErr == nil && got != want {
			t.Errorf("parseIntBytes(%q) = %d, strconv = %d", s, got, want)
		}
	}
}

func TestParseSSDPResponseStructuredURL(t *testing.T) {
	spec, _ := mdl.ParseXMLString(ssdpMDL)
	p, _ := New(spec, nil)
	wire := "HTTP/1.1 200 OK\r\n" +
		"CACHE-CONTROL: max-age=1800\r\n" +
		"LOCATION: http://10.0.0.7:5431/desc.xml\r\n" +
		"ST: urn:printer\r\n" +
		"USN: uuid:1234\r\n" +
		"\r\n"
	msg, err := p.Parse([]byte(wire))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Name != "SSDPResponse" {
		t.Fatalf("name = %q", msg.Name)
	}
	// LOCATION must explode into the structured URL field of §III-A.
	port, ok := msg.Path("LOCATION.port")
	if !ok {
		t.Fatal("LOCATION.port missing")
	}
	if mustInt(t, port) != 5431 {
		t.Errorf("port = %d", mustInt(t, port))
	}
	addr, _ := msg.Path("LOCATION.address")
	if mustStr(t, addr) != "10.0.0.7" {
		t.Errorf("address = %q", mustStr(t, addr))
	}
	res, _ := msg.Path("LOCATION.resource")
	if mustStr(t, res) != "/desc.xml" {
		t.Errorf("resource = %q", mustStr(t, res))
	}
}

func TestParseTextMissingSeparator(t *testing.T) {
	spec, _ := mdl.ParseXMLString(ssdpMDL)
	p, _ := New(spec, nil)
	if _, err := p.Parse([]byte("M-SEARCH * HTTP/1.1\r\nBADLINE\r\n\r\n")); err == nil {
		t.Fatal("line without colon should fail")
	}
	if _, err := p.Parse([]byte("M-SEARCH")); err == nil {
		t.Fatal("missing delimiters should fail")
	}
}

const httpMDL = `
<MDL protocol="HTTP" dialect="text">
 <Types>
  <Method>String</Method>
  <URI>String</URI>
  <Version>String</Version>
  <Content-Length>Integer</Content-Length>
 </Types>
 <Header type="HTTP">
  <Method>32</Method>
  <URI>32</URI>
  <Version>13,10</Version>
  <Fields>13,10:58</Fields>
 </Header>
 <Message type="HTTPGet">
  <Rule>Method=GET</Rule>
 </Message>
 <Message type="HTTPOk" body="xml" mandatory="URLBase">
  <Rule>Method=HTTP/1.1</Rule>
 </Message>
</MDL>`

func TestParseHTTPOkXMLBody(t *testing.T) {
	spec, err := mdl.ParseXMLString(httpMDL)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := New(spec, nil)
	body := "<root><device><friendlyName>Printer</friendlyName>" +
		"<URLBase>http://10.0.0.7:5431/svc</URLBase></device></root>"
	wire := "HTTP/1.1 200 OK\r\nContent-Type: text/xml\r\n\r\n" + body
	msg, err := p.Parse([]byte(wire))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Name != "HTTPOk" {
		t.Fatalf("name = %q", msg.Name)
	}
	f, ok := msg.Field("URLBase")
	if !ok {
		t.Fatal("URLBase missing")
	}
	if mustStr(t, f) != "http://10.0.0.7:5431/svc" {
		t.Errorf("URLBase = %q", mustStr(t, f))
	}
	if f, _ := msg.Field("friendlyName"); mustStr(t, f) != "Printer" {
		t.Errorf("friendlyName = %q", mustStr(t, f))
	}
	if _, ok := msg.Field("Body"); !ok {
		t.Error("raw Body should be preserved")
	}
}

func TestParseXMLBodyMalformed(t *testing.T) {
	spec, _ := mdl.ParseXMLString(httpMDL)
	p, _ := New(spec, nil)
	wire := "HTTP/1.1 200 OK\r\n\r\n<root><unclosed>"
	if _, err := p.Parse([]byte(wire)); err == nil {
		t.Fatal("malformed xml body should fail")
	}
}

const dnsMDL = `
<MDL protocol="mDNS" dialect="binary">
 <Types>
  <ID>Integer</ID>
  <Flags>Integer</Flags>
  <QDCount>Integer</QDCount>
  <ANCount>Integer</ANCount>
  <NSCount>Integer</NSCount>
  <ARCount>Integer</ARCount>
  <DomainName>FQDN</DomainName>
  <QType>Integer</QType>
  <QClass>Integer</QClass>
  <AName>FQDN</AName>
  <AType>Integer</AType>
  <AClass>Integer</AClass>
  <TTL>Integer</TTL>
  <RDLength>Integer</RDLength>
  <RDATA>String</RDATA>
 </Types>
 <Header type="mDNS">
  <ID>16</ID>
  <Flags>16</Flags>
  <QDCount>16</QDCount>
  <ANCount>16</ANCount>
  <NSCount>16</NSCount>
  <ARCount>16</ARCount>
 </Header>
 <Message type="DNSQuestion" mandatory="DomainName">
  <Rule>Flags=0</Rule>
  <DomainName></DomainName>
  <QType>16</QType>
  <QClass>16</QClass>
 </Message>
 <Message type="DNSResponse" mandatory="RDATA">
  <Rule>Flags=33792</Rule>
  <AName></AName>
  <AType>16</AType>
  <AClass>16</AClass>
  <TTL>32</TTL>
  <RDLength>16</RDLength>
  <RDATA>RDLength</RDATA>
 </Message>
</MDL>`

func TestParseDNSQuestionFQDN(t *testing.T) {
	spec, err := mdl.ParseXMLString(dnsMDL)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := New(spec, nil)
	var wire []byte
	wire = append(wire, 0x12, 0x34) // ID
	wire = append(wire, 0, 0)       // Flags = query
	wire = append(wire, 0, 1, 0, 0, 0, 0, 0, 0)
	wire = append(wire, 7)
	wire = append(wire, "printer"...)
	wire = append(wire, 5)
	wire = append(wire, "local"...)
	wire = append(wire, 0)
	wire = append(wire, 0, 12, 0, 1) // QType=PTR QClass=IN
	msg, err := p.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Name != "DNSQuestion" {
		t.Fatalf("name = %q", msg.Name)
	}
	if f, _ := msg.Field("DomainName"); mustStr(t, f) != "printer.local" {
		t.Errorf("DomainName = %q", mustStr(t, f))
	}
	if f, _ := msg.Field("QType"); mustInt(t, f) != 12 {
		t.Errorf("QType = %d", mustInt(t, f))
	}
}

func TestFramerBinary(t *testing.T) {
	spec, _ := mdl.ParseXMLString(slpMDL)
	fr, err := NewFramer(spec)
	if err != nil {
		t.Fatal(err)
	}
	wire := buildSLPRequest(t, 9, "service:x")
	// Incomplete prefixes need more data.
	for _, cut := range []int{0, 3, 4, len(wire) - 1} {
		n, err := fr.Frame(wire[:cut])
		if err != nil || n != 0 {
			t.Fatalf("cut %d: n=%d err=%v", cut, n, err)
		}
	}
	n, err := fr.Frame(wire)
	if err != nil || n != len(wire) {
		t.Fatalf("full: n=%d err=%v", n, err)
	}
	// Concatenated messages frame one at a time.
	double := append(append([]byte{}, wire...), wire...)
	n, err = fr.Frame(double)
	if err != nil || n != len(wire) {
		t.Fatalf("double: n=%d err=%v", n, err)
	}
}

func TestFramerText(t *testing.T) {
	spec, _ := mdl.ParseXMLString(httpMDL)
	fr, err := NewFramer(spec)
	if err != nil {
		t.Fatal(err)
	}
	body := "<root><URLBase>http://x/</URLBase></root>"
	head := "HTTP/1.1 200 OK\r\nContent-Length: " +
		itoa(len(body)) + "\r\n\r\n"
	wire := []byte(head + body)
	if n, _ := fr.Frame(wire[:10]); n != 0 {
		t.Fatal("partial head should need more")
	}
	if n, _ := fr.Frame(wire[:len(head)+3]); n != 0 {
		t.Fatal("partial body should need more")
	}
	n, err := fr.Frame(wire)
	if err != nil || n != len(wire) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// No Content-Length: frame ends at blank line.
	req := []byte("GET /x HTTP/1.1\r\nHost: h\r\n\r\n")
	n, err = fr.Frame(req)
	if err != nil || n != len(req) {
		t.Fatalf("req n=%d err=%v", n, err)
	}
}

func TestFramerBadContentLength(t *testing.T) {
	spec, _ := mdl.ParseXMLString(httpMDL)
	fr, _ := NewFramer(spec)
	if _, err := fr.Frame([]byte("HTTP/1.1 200 OK\r\nContent-Length: x\r\n\r\n")); err == nil {
		t.Fatal("bad content-length should fail")
	}
}

func TestFramerRequiresLengthField(t *testing.T) {
	spec, _ := mdl.ParseXMLString(dnsMDL) // no f-totallength
	if _, err := NewFramer(spec); err == nil {
		t.Fatal("binary spec without f-totallength should not frame")
	}
}

func itoa(n int) string {
	return message.Int(int64(n)).Text()
}

func mustInt(t *testing.T, f *message.Field) int64 {
	t.Helper()
	if f == nil {
		t.Fatal("nil field")
	}
	v, ok := f.Value.AsInt()
	if !ok {
		t.Fatalf("field %q is not int: %v", f.Label, f.Value.Kind())
	}
	return v
}

func mustStr(t *testing.T, f *message.Field) string {
	t.Helper()
	if f == nil {
		t.Fatal("nil field")
	}
	v, ok := f.Value.AsString()
	if !ok {
		t.Fatalf("field %q is not string: %v", f.Label, f.Value.Kind())
	}
	return v
}
