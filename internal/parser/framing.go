package parser

import (
	"bytes"
	"fmt"

	"starlink/internal/mdl"
)

// Framer delimits complete messages in a byte stream. Datagram
// transports deliver whole messages, but stream transports (the TCP leg
// of the HTTP automaton, Fig. 3) need MDL-driven framing: the framer
// inspects buffered bytes and reports how long the next complete
// message is.
type Framer struct {
	spec *mdl.Spec
	// binary: bit offset and width of the total-length header field,
	// and the byte length of the fixed header prefix needed to read it.
	lenBitOff   int
	lenBits     int
	minBytes    int
	hasLenField bool
}

// NewFramer builds a framer for the spec. Binary specs must declare a
// header field whose type carries f-totallength() at a statically
// computable offset (every preceding header field fixed-width); text
// specs frame on the blank line plus an optional Content-Length field.
func NewFramer(spec *mdl.Spec) (*Framer, error) {
	f := &Framer{spec: spec}
	if spec.Dialect != mdl.DialectBinary {
		return f, nil
	}
	off := 0
	for _, fd := range spec.Header.Fields {
		td := spec.TypeOf(fd.Label)
		if td.Func != nil && td.Func.Name == "f-totallength" {
			if fd.SizeBits <= 0 || fd.SizeBits > 64 {
				return nil, fmt.Errorf("parser: total-length field %q must be fixed <=64 bits", fd.Label)
			}
			f.lenBitOff = off
			f.lenBits = fd.SizeBits
			f.minBytes = (off + fd.SizeBits + 7) / 8
			f.hasLenField = true
			return f, nil
		}
		if fd.SizeBits <= 0 {
			break // variable field before the length: cannot frame statically
		}
		off += fd.SizeBits
	}
	return nil, fmt.Errorf("parser: spec %s has no statically addressable f-totallength field", spec.Protocol)
}

// Frame reports the length in bytes of the first complete message in
// buf, or 0 if more data is needed.
func (f *Framer) Frame(buf []byte) (int, error) {
	if f.spec.Dialect == mdl.DialectBinary {
		return f.frameBinary(buf)
	}
	return f.frameText(buf)
}

func (f *Framer) frameBinary(buf []byte) (int, error) {
	if len(buf) < f.minBytes {
		return 0, nil
	}
	var v uint64
	pos := f.lenBitOff
	for i := 0; i < f.lenBits; i++ {
		b := (buf[pos/8] >> (7 - pos%8)) & 1
		v = v<<1 | uint64(b)
		pos++
	}
	total := int(v)
	if total < f.minBytes {
		return 0, fmt.Errorf("parser: framed length %d shorter than header", total)
	}
	if len(buf) < total {
		return 0, nil
	}
	return total, nil
}

var crlfcrlf = []byte("\r\n\r\n")

func (f *Framer) frameText(buf []byte) (int, error) {
	i := bytes.Index(buf, crlfcrlf)
	if i < 0 {
		return 0, nil
	}
	headEnd := i + len(crlfcrlf)
	// Look for a Content-Length line (case-insensitive) in the head,
	// walking lines in place — this runs per stream read, so it must
	// not allocate.
	head := buf[:headEnd]
	bodyLen := 0
	for len(head) > 0 {
		var line []byte
		if k := bytes.Index(head, crlfcrlf[:2]); k >= 0 {
			line, head = head[:k], head[k+2:]
		} else {
			line, head = head, nil
		}
		j := bytes.IndexByte(line, ':')
		if j < 0 {
			continue
		}
		name := bytes.TrimSpace(line[:j])
		if !equalFold(string(name), "Content-Length") {
			continue
		}
		n, err := parseIntBytes(line[j+1:])
		if err != nil || n < 0 || n > 1<<31-1 {
			return 0, fmt.Errorf("parser: bad Content-Length %q", line)
		}
		bodyLen = int(n)
		break
	}
	total := headEnd + bodyLen
	if len(buf) < total {
		return 0, nil
	}
	return total, nil
}

// equalFold compares ASCII case-insensitively. The string(name)
// conversion at the call site does not allocate: the compiler sees the
// argument never escapes.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
