package parser

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"starlink/internal/message"
)

// flattenXMLBody parses an XML payload and adds every leaf element
// (element whose content is character data only) as a primitive String
// field labelled by the element's local name. Nested container elements
// contribute no field of their own. This supports text messages that
// carry an XML document — the UPnP device description whose URLBase
// element feeds the SLP reply in the paper's Fig. 4 translation logic.
//
// Duplicate leaf names keep the first occurrence, matching the
// "first match wins" reading used by the translation XPath engine.
func flattenXMLBody(body []byte, msg *message.Message) error {
	body = bytes.TrimSpace(body)
	if len(body) == 0 {
		return nil
	}
	dec := xml.NewDecoder(bytes.NewReader(body))
	type frame struct {
		name    string
		text    strings.Builder
		hasElem bool
	}
	var stack []*frame
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("xml body: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) > 0 {
				stack[len(stack)-1].hasElem = true
			}
			stack = append(stack, &frame{name: t.Name.Local})
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.Write(t)
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return fmt.Errorf("xml body: unbalanced end element %q", t.Name.Local)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !top.hasElem {
				label := top.name
				if _, exists := msg.Field(label); !exists {
					msg.Add(&message.Field{
						Label: label,
						Type:  "String",
						Value: message.Str(strings.TrimSpace(top.text.String())),
					})
				}
			}
		}
	}
	return nil
}
