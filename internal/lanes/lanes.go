// Package lanes implements the lane-scheduled bounded-ingest queue
// that sits between the transport read loops and the engine's ingest
// workers: every accepted payload is classified into a priority lane —
// control (session-entry/classify traffic) over data (mid-session
// messages for live sessions) over telemetry (multicast chatter,
// advert/demo traffic) — and queued into a per-lane bounded ring.
// Dequeue is strict-priority: control drains first, telemetry last.
//
// Two watermarks on the queue's total depth drive a hysteresis state
// machine (Normal ⇄ Pressured). Crossing the high watermark takes a
// hold on the queue's netapi.FlowGate — pausing the transport read
// loops that feed it — and starts degrading telemetry per the
// configured ShedMode; draining back to the low watermark releases the
// hold. Shedding is never silent: Enqueue reports exactly which item
// was refused or evicted so the caller can release its buffer lease
// and account the drop (serrors.ErrOverloaded through the observer
// path).
//
// Enqueue and TryDequeue are the per-payload accept path and perform
// no allocation (guarded by AllocsPerRun tests); Dequeue adds only
// condition-variable parking when the queue is empty.
package lanes

import (
	"errors"
	"fmt"
)

// Lane is a payload's priority class. Lower values drain first.
type Lane uint8

const (
	// Control carries session-entry and classification traffic: the
	// initiator requests that open sessions. Shed last.
	Control Lane = iota
	// Data carries mid-session messages for live sessions.
	Data
	// Telemetry carries multicast chatter and advert/demo traffic no
	// session asked for. Shed first.
	Telemetry

	// NumLanes is the number of priority lanes.
	NumLanes = 3
)

// String names the lane for metrics labels and log lines.
func (l Lane) String() string {
	switch l {
	case Control:
		return "control"
	case Data:
		return "data"
	case Telemetry:
		return "telemetry"
	default:
		return "unknown"
	}
}

// ShedMode selects the watermark action: what happens to arriving work
// once the queue is pressured (and to any arrival whose lane ring is
// full).
type ShedMode uint8

const (
	// ShedOldest evicts the oldest queued item of the same lane to
	// admit the arriving one — keeping the freshest traffic, which
	// matters for retransmitted discovery requests. The default.
	ShedOldest ShedMode = iota
	// RejectNew refuses the arriving item, keeping what is queued.
	RejectNew
	// DeferOnly never sheds on pressure alone: the gate pauses the
	// transport and only a full lane ring refuses arrivals. Pure
	// backpressure.
	DeferOnly
)

// String names the mode (the -shed-policy flag values).
func (m ShedMode) String() string {
	switch m {
	case ShedOldest:
		return "shed-oldest"
	case RejectNew:
		return "reject-new"
	case DeferOnly:
		return "defer"
	default:
		return "unknown"
	}
}

// ParseShedMode parses a -shed-policy flag value.
func ParseShedMode(s string) (ShedMode, error) {
	switch s {
	case "shed-oldest":
		return ShedOldest, nil
	case "reject-new":
		return RejectNew, nil
	case "defer":
		return DeferOnly, nil
	default:
		return ShedOldest, fmt.Errorf("lanes: unknown shed mode %q (want shed-oldest, reject-new or defer)", s)
	}
}

// Policy bounds and parameterizes one queue.
type Policy struct {
	// Capacity is the per-lane ring capacity: the queue holds at most
	// NumLanes*Capacity items.
	Capacity int
	// High and Low are the pressure watermarks on the queue's total
	// depth: crossing High pauses the feeding transport and starts
	// shedding telemetry; draining to Low resumes it. Validate requires
	// 0 < Low < High ≤ NumLanes*Capacity.
	High int
	Low  int
	// Mode is the watermark action. The zero value is ShedOldest.
	Mode ShedMode
}

// DefaultPolicy mirrors the pre-lane ingest bound (1024 queued
// payloads total) with watermarks at 75% and 37.5% of the total.
func DefaultPolicy() Policy {
	p := Policy{Capacity: 1024 / NumLanes}
	total := NumLanes * p.Capacity
	p.High = total * 3 / 4
	p.Low = p.High / 2
	return p
}

// WithDefaults fills zero fields from DefaultPolicy, deriving the
// watermarks from the (possibly explicit) capacity.
func (p Policy) WithDefaults() Policy {
	if p.Capacity <= 0 {
		p.Capacity = DefaultPolicy().Capacity
	}
	if p.High <= 0 {
		p.High = NumLanes * p.Capacity * 3 / 4
	}
	if p.Low <= 0 {
		p.Low = p.High / 2
	}
	return p
}

// Validate rejects unusable policies: non-positive capacity, inverted
// or out-of-range watermarks.
func (p Policy) Validate() error {
	if p.Capacity < 1 {
		return fmt.Errorf("lanes: capacity %d, want ≥ 1", p.Capacity)
	}
	if p.Low < 1 {
		return fmt.Errorf("lanes: low watermark %d, want ≥ 1", p.Low)
	}
	if p.High <= p.Low {
		return fmt.Errorf("lanes: high watermark %d must exceed low watermark %d", p.High, p.Low)
	}
	if max := NumLanes * p.Capacity; p.High > max {
		return fmt.Errorf("lanes: high watermark %d exceeds total capacity %d (%d lanes × %d)",
			p.High, max, NumLanes, p.Capacity)
	}
	if p.Mode > DeferOnly {
		return errors.New("lanes: unknown shed mode")
	}
	return nil
}

// Scale divides the policy across n parallel queues (the engine runs
// one queue per ingest worker), keeping the configured totals: each
// queue gets ~1/n of the capacity and watermarks, never below the
// floor needed to stay valid.
func (p Policy) Scale(n int) Policy {
	if n <= 1 {
		return p
	}
	s := p
	s.Capacity = ceilDiv(p.Capacity, n)
	s.High = ceilDiv(p.High, n)
	s.Low = ceilDiv(p.Low, n)
	if s.Low < 1 {
		s.Low = 1
	}
	if s.High <= s.Low {
		s.High = s.Low + 1
	}
	if max := NumLanes * s.Capacity; s.High > max {
		s.High = max
	}
	return s
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Verdict is Enqueue's outcome for the arriving item.
type Verdict uint8

const (
	// Admitted: the item was queued; nothing was displaced.
	Admitted Verdict = iota
	// Evicted: the item was queued and the returned victim — the
	// oldest item of the same lane — was evicted to make room
	// (ShedOldest). The caller owns the victim: release its lease and
	// account the drop.
	Evicted
	// Rejected: the arriving item was refused (pressure shedding, a
	// full ring, or a closed queue). The caller keeps ownership.
	Rejected
)

// Counters is an accounting snapshot for one lane of one queue.
type Counters struct {
	// Admitted counts items accepted into the ring (including those
	// that displaced a victim).
	Admitted uint64
	// Deferred counts items admitted while the queue was pressured —
	// work that rode out the overload behind the paused transport.
	Deferred uint64
	// Shed counts items refused or evicted (each surfaced to the
	// caller for ErrOverloaded drop accounting).
	Shed uint64
	// Processed counts items handed to a consumer via Dequeue or
	// TryDequeue. Together with Evicted and Drained it closes the
	// conservation identity checked by the DST invariants: once a queue
	// is closed, Admitted == Processed + Evicted + Drained.
	Processed uint64
	// Evicted counts admitted items later displaced by a ShedOldest
	// eviction (the victims — a subset of Shed, which also counts
	// refusals that were never admitted).
	Evicted uint64
	// Drained counts admitted items surfaced through Close's drain
	// callback instead of a consumer.
	Drained uint64
	// Depth and Capacity are the lane ring's instantaneous fill.
	Depth    int
	Capacity int
}

// add merges o into c for cross-queue rollups.
func (c *Counters) add(o Counters) {
	c.Admitted += o.Admitted
	c.Deferred += o.Deferred
	c.Shed += o.Shed
	c.Processed += o.Processed
	c.Evicted += o.Evicted
	c.Drained += o.Drained
	c.Depth += o.Depth
	c.Capacity += o.Capacity
}

// Sum rolls per-queue lane counters up into one per-lane set.
func Sum(snaps ...[NumLanes]Counters) [NumLanes]Counters {
	var out [NumLanes]Counters
	for _, s := range snaps {
		for l := range out {
			out[l].add(s[l])
		}
	}
	return out
}
