package lanes

import (
	"sync"

	"starlink/internal/netapi"
)

// ring is a fixed-capacity FIFO. Slots are cleared on pop so the queue
// never pins a dequeued item's buffers.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) push(v T) {
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring[T]) pop() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// Queue is one bounded, lane-prioritized ingest queue: three rings
// (one per lane), strict-priority dequeue, and the watermark state
// machine driving the flow gate. All methods are safe for concurrent
// use; per-lane FIFO order is preserved.
type Queue[T any] struct {
	policy Policy
	gate   *netapi.FlowGate

	mu        sync.Mutex
	cond      sync.Cond
	rings     [NumLanes]ring[T]
	pressured bool
	closed    bool

	admitted  [NumLanes]uint64
	deferred  [NumLanes]uint64
	shed      [NumLanes]uint64
	processed [NumLanes]uint64
	evicted   [NumLanes]uint64
	drained   [NumLanes]uint64
	maxDepth  int
}

// NewQueue builds a queue under policy (which must Validate), pausing
// gate while pressured. A nil gate disables backpressure propagation
// but keeps the bounds and shedding.
func NewQueue[T any](policy Policy, gate *netapi.FlowGate) *Queue[T] {
	q := &Queue[T]{policy: policy, gate: gate}
	q.cond.L = &q.mu
	for l := range q.rings {
		q.rings[l].buf = make([]T, policy.Capacity)
	}
	return q
}

func (q *Queue[T]) depthLocked() int {
	return q.rings[Control].n + q.rings[Data].n + q.rings[Telemetry].n
}

// Enqueue offers an item to its lane and reports the outcome:
//
//   - Admitted: queued, nothing displaced;
//   - Evicted: queued, and the returned victim (oldest same-lane item)
//     must be released and accounted by the caller;
//   - Rejected: refused — the caller keeps the item.
//
// While the queue is pressured, telemetry arrivals are shed (ShedOldest
// replaces the oldest queued telemetry; RejectNew refuses the arrival;
// DeferOnly admits until the ring fills). Control and data keep
// admitting until their own ring fills; a full ring evicts its oldest
// under ShedOldest — except control, which always keeps its oldest,
// refusing the arrival instead.
//
//starlink:hotpath
func (q *Queue[T]) Enqueue(lane Lane, item T) (Verdict, T) {
	var zero T
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return Rejected, zero
	}
	r := &q.rings[lane]
	verdict := Admitted
	victim := zero
	switch {
	case q.pressured && lane == Telemetry && q.policy.Mode != DeferOnly:
		// Pressure shedding: telemetry degrades first, before its ring
		// is anywhere near full, so queue space stays available for
		// control and data.
		if q.policy.Mode == ShedOldest && r.n > 0 {
			victim = r.pop()
			r.push(item)
			verdict = Evicted
		} else {
			// RejectNew, or nothing older to shed: refuse the arrival.
			verdict = Rejected
		}
	case r.n >= len(r.buf):
		if q.policy.Mode == ShedOldest && lane != Control {
			victim = r.pop()
			r.push(item)
			verdict = Evicted
		} else {
			verdict = Rejected
		}
	default:
		r.push(item)
	}
	if verdict != Rejected {
		q.admitted[lane]++
		if q.pressured {
			q.deferred[lane]++
		}
	}
	if verdict != Admitted {
		q.shed[lane]++
	}
	if verdict == Evicted {
		q.evicted[lane]++
	}
	depth := q.depthLocked()
	if depth > q.maxDepth {
		q.maxDepth = depth
	}
	if !q.pressured && depth >= q.policy.High {
		// Gate transitions happen under q.mu so a concurrent drain
		// cannot Resume a hold before it is taken.
		q.pressured = true
		if q.gate != nil {
			q.gate.Pause()
		}
	}
	q.mu.Unlock()
	if verdict != Rejected {
		q.cond.Signal()
	}
	return verdict, victim
}

// TryDequeue pops the highest-priority queued item without blocking.
// ok is false when the queue is empty or closed.
//
//starlink:hotpath
func (q *Queue[T]) TryDequeue() (item T, lane Lane, ok bool) {
	q.mu.Lock()
	item, lane, ok = q.dequeueLocked()
	q.mu.Unlock()
	return item, lane, ok
}

// Dequeue pops the highest-priority queued item, blocking while the
// queue is empty. ok is false once the queue is closed (remaining
// items are surfaced through Close's drain callback, not here).
func (q *Queue[T]) Dequeue() (item T, lane Lane, ok bool) {
	q.mu.Lock()
	for {
		item, lane, ok = q.dequeueLocked()
		if ok || q.closed {
			q.mu.Unlock()
			return item, lane, ok
		}
		q.cond.Wait()
	}
}

func (q *Queue[T]) dequeueLocked() (item T, lane Lane, ok bool) {
	if q.closed {
		return item, lane, false
	}
	for l := Control; l < NumLanes; l++ {
		if q.rings[l].n > 0 {
			item = q.rings[l].pop()
			q.processed[l]++
			if q.pressured && q.depthLocked() <= q.policy.Low {
				// Hysteresis: the transport resumes only after the
				// backlog drained well below the pause point.
				q.pressured = false
				if q.gate != nil {
					q.gate.Resume()
				}
			}
			return item, l, true
		}
	}
	return item, lane, false
}

// Close marks the queue closed — Dequeue returns false, Enqueue
// rejects — and hands every still-queued item to drain (may be nil),
// highest priority first, under the queue lock. A pressured queue
// releases its gate hold so paused transports wake for teardown.
func (q *Queue[T]) Close(drain func(Lane, T)) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	if q.pressured {
		q.pressured = false
		if q.gate != nil {
			q.gate.Resume()
		}
	}
	for l := Control; l < NumLanes; l++ {
		for q.rings[l].n > 0 {
			item := q.rings[l].pop()
			q.drained[l]++
			if drain != nil {
				drain(l, item)
			}
		}
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Counters snapshots the per-lane accounting.
func (q *Queue[T]) Counters() [NumLanes]Counters {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out [NumLanes]Counters
	for l := range out {
		out[l] = Counters{
			Admitted:  q.admitted[l],
			Deferred:  q.deferred[l],
			Shed:      q.shed[l],
			Processed: q.processed[l],
			Evicted:   q.evicted[l],
			Drained:   q.drained[l],
			Depth:     q.rings[l].n,
			Capacity:  len(q.rings[l].buf),
		}
	}
	return out
}

// Depth returns the total queued item count.
func (q *Queue[T]) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

// MaxDepth returns the high-water total depth ever observed — the
// bounded-memory witness for the overload benchmarks.
func (q *Queue[T]) MaxDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.maxDepth
}

// Pressured reports whether the queue is between its watermarks' high
// crossing and low recovery.
func (q *Queue[T]) Pressured() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pressured
}
