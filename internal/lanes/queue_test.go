package lanes

import (
	"sync"
	"sync/atomic"
	"testing"

	"starlink/internal/netapi"
)

func policy(capacity, high, low int, mode ShedMode) Policy {
	return Policy{Capacity: capacity, High: high, Low: low, Mode: mode}
}

func TestLaneStrings(t *testing.T) {
	if Control.String() != "control" || Data.String() != "data" || Telemetry.String() != "telemetry" {
		t.Fatalf("lane names: %s/%s/%s", Control, Data, Telemetry)
	}
	for _, m := range []ShedMode{ShedOldest, RejectNew, DeferOnly} {
		back, err := ParseShedMode(m.String())
		if err != nil || back != m {
			t.Fatalf("ParseShedMode(%q) = %v, %v", m.String(), back, err)
		}
	}
	if _, err := ParseShedMode("bogus"); err == nil {
		t.Fatal("ParseShedMode accepted bogus mode")
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		ok   bool
	}{
		{"default", DefaultPolicy(), true},
		{"explicit", policy(8, 12, 4, ShedOldest), true},
		{"zero capacity", policy(0, 2, 1, ShedOldest), false},
		{"high below low", policy(8, 4, 12, ShedOldest), false},
		{"high equals low", policy(8, 4, 4, ShedOldest), false},
		{"zero low", policy(8, 4, 0, ShedOldest), false},
		{"high beyond total", policy(4, 13, 2, ShedOldest), false},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPolicyScaleStaysValid(t *testing.T) {
	base := DefaultPolicy()
	for n := 1; n <= 64; n++ {
		s := base.Scale(n)
		if err := s.Validate(); err != nil {
			t.Fatalf("Scale(%d) produced invalid policy %+v: %v", n, s, err)
		}
	}
	tiny := policy(1, 3, 1, ShedOldest)
	for n := 1; n <= 8; n++ {
		if err := tiny.Scale(n).Validate(); err != nil {
			t.Fatalf("tiny Scale(%d): %v", n, err)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	q := NewQueue[int](policy(4, 11, 2, ShedOldest), nil)
	q.Enqueue(Telemetry, 30)
	q.Enqueue(Data, 20)
	q.Enqueue(Control, 10)
	q.Enqueue(Control, 11)
	q.Enqueue(Data, 21)
	want := []struct {
		v    int
		lane Lane
	}{{10, Control}, {11, Control}, {20, Data}, {21, Data}, {30, Telemetry}}
	for i, w := range want {
		v, lane, ok := q.TryDequeue()
		if !ok || v != w.v || lane != w.lane {
			t.Fatalf("dequeue %d: got %d/%s/%v, want %d/%s", i, v, lane, ok, w.v, w.lane)
		}
	}
	if _, _, ok := q.TryDequeue(); ok {
		t.Fatal("dequeue from empty queue succeeded")
	}
}

func TestWatermarkPauseResume(t *testing.T) {
	g := netapi.NewFlowGate()
	q := NewQueue[int](policy(4, 3, 1, DeferOnly), g)
	q.Enqueue(Data, 1)
	q.Enqueue(Data, 2)
	if g.Blocked() {
		t.Fatal("gate blocked below high watermark")
	}
	q.Enqueue(Data, 3) // total 3 = high
	if !g.Blocked() {
		t.Fatal("gate open at high watermark")
	}
	if !q.Pressured() {
		t.Fatal("queue not pressured at high watermark")
	}
	q.TryDequeue() // depth 2 > low: still paused (hysteresis)
	if !g.Blocked() {
		t.Fatal("gate reopened above low watermark")
	}
	q.TryDequeue() // depth 1 = low: resume
	if g.Blocked() {
		t.Fatal("gate still blocked at low watermark")
	}
	if q.Pressured() {
		t.Fatal("queue still pressured after recovery")
	}
	if g.Pauses() != 1 {
		t.Fatalf("pause cycles = %d, want 1", g.Pauses())
	}
}

func TestPressureShedsTelemetryFirst(t *testing.T) {
	// High=2 pressures the queue immediately; telemetry then sheds
	// while control and data keep admitting.
	q := NewQueue[int](policy(4, 2, 1, ShedOldest), nil)
	q.Enqueue(Telemetry, 100)
	q.Enqueue(Telemetry, 101) // now pressured
	if !q.Pressured() {
		t.Fatal("queue not pressured")
	}
	v, victim := q.Enqueue(Telemetry, 102)
	if v != Evicted || victim != 100 {
		t.Fatalf("pressured telemetry enqueue: %v, victim %d; want Evicted, 100", v, victim)
	}
	if v, _ := q.Enqueue(Control, 1); v != Admitted {
		t.Fatalf("pressured control enqueue: %v, want Admitted", v)
	}
	if v, _ := q.Enqueue(Data, 2); v != Admitted {
		t.Fatalf("pressured data enqueue: %v, want Admitted", v)
	}
	c := q.Counters()
	if c[Telemetry].Shed != 1 || c[Control].Shed != 0 || c[Data].Shed != 0 {
		t.Fatalf("shed counters: %+v", c)
	}
	if c[Control].Deferred != 1 || c[Data].Deferred != 1 {
		t.Fatalf("deferred counters: %+v", c)
	}
	// Priority still holds on the way out.
	if v, lane, _ := q.TryDequeue(); v != 1 || lane != Control {
		t.Fatalf("first out: %d/%s, want 1/control", v, lane)
	}
}

func TestRejectNewMode(t *testing.T) {
	q := NewQueue[int](policy(4, 2, 1, RejectNew), nil)
	q.Enqueue(Telemetry, 100)
	q.Enqueue(Telemetry, 101)
	if v, _ := q.Enqueue(Telemetry, 102); v != Rejected {
		t.Fatalf("pressured telemetry under reject-new: %v, want Rejected", v)
	}
	// The queued items survive.
	if v, _, _ := q.TryDequeue(); v != 100 {
		t.Fatalf("reject-new displaced queued item: got %d", v)
	}
}

func TestDeferOnlyShedsOnlyOnFullRing(t *testing.T) {
	q := NewQueue[int](policy(2, 3, 1, DeferOnly), nil)
	for i := 0; i < 2; i++ {
		if v, _ := q.Enqueue(Telemetry, i); v != Admitted {
			t.Fatalf("telemetry %d: %v", i, v)
		}
	}
	// Pressured (depth 2 < high 3? no: high=3 needs depth>=3). Fill data.
	q.Enqueue(Data, 10)
	if !q.Pressured() {
		t.Fatal("not pressured at depth 3")
	}
	// Telemetry ring is full: defer-only still refuses, but only
	// because the ring is full, not because of pressure.
	if v, _ := q.Enqueue(Telemetry, 2); v != Rejected {
		t.Fatal("full telemetry ring admitted under defer-only")
	}
	// Data ring has room: admitted despite pressure.
	if v, _ := q.Enqueue(Data, 11); v != Admitted {
		t.Fatal("defer-only shed data with ring room")
	}
}

func TestFullRingBehavior(t *testing.T) {
	// ShedOldest: full data ring evicts its oldest; full control ring
	// refuses the arrival (control keeps its oldest).
	q := NewQueue[int](policy(2, 6, 1, ShedOldest), nil)
	q.Enqueue(Data, 20)
	q.Enqueue(Data, 21)
	v, victim := q.Enqueue(Data, 22)
	if v != Evicted || victim != 20 {
		t.Fatalf("full data ring: %v victim %d, want Evicted 20", v, victim)
	}
	q.Enqueue(Control, 10)
	q.Enqueue(Control, 11)
	if v, _ := q.Enqueue(Control, 12); v != Rejected {
		t.Fatalf("full control ring: %v, want Rejected", v)
	}
	c := q.Counters()
	if c[Data].Shed != 1 || c[Control].Shed != 1 {
		t.Fatalf("shed counters: %+v", c)
	}
}

func TestCloseDrainsAndReleasesGate(t *testing.T) {
	g := netapi.NewFlowGate()
	q := NewQueue[int](policy(4, 2, 1, DeferOnly), g)
	q.Enqueue(Control, 1)
	q.Enqueue(Telemetry, 3)
	q.Enqueue(Data, 2)
	if !g.Blocked() {
		t.Fatal("gate open above high watermark")
	}
	var drained []int
	q.Close(func(_ Lane, v int) { drained = append(drained, v) })
	if g.Blocked() {
		t.Fatal("Close left the gate blocked")
	}
	// Highest priority first.
	if len(drained) != 3 || drained[0] != 1 || drained[1] != 2 || drained[2] != 3 {
		t.Fatalf("drained %v, want [1 2 3]", drained)
	}
	if v, _ := q.Enqueue(Control, 9); v != Rejected {
		t.Fatal("closed queue admitted an item")
	}
	if _, _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue succeeded on closed queue")
	}
	q.Close(nil) // idempotent
}

func TestDequeueBlocksUntilEnqueue(t *testing.T) {
	q := NewQueue[int](policy(4, 11, 2, ShedOldest), nil)
	got := make(chan int, 1)
	go func() {
		v, _, ok := q.Dequeue()
		if ok {
			got <- v
		}
	}()
	q.Enqueue(Data, 7)
	if v := <-got; v != 7 {
		t.Fatalf("blocking dequeue got %d", v)
	}
}

// TestConcurrentProducersConsumers exercises the queue under -race:
// every admitted item is dequeued exactly once, and the shed + drained
// + dequeued total matches what producers offered.
func TestConcurrentProducersConsumers(t *testing.T) {
	g := netapi.NewFlowGate()
	q := NewQueue[uint64](policy(64, 96, 32, ShedOldest), g)
	const producers, perProducer = 8, 2000
	var wg sync.WaitGroup
	var shed, evicted [NumLanes]uint64
	var shedMu sync.Mutex
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				lane := Lane(i % NumLanes)
				v, victim := q.Enqueue(lane, uint64(p*perProducer+i))
				switch v {
				case Rejected:
					shedMu.Lock()
					shed[lane]++
					shedMu.Unlock()
				case Evicted:
					_ = victim
					shedMu.Lock()
					evicted[lane]++
					shedMu.Unlock()
				}
			}
		}(p)
	}
	var consumed atomic.Uint64
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				_, _, ok := q.Dequeue()
				if !ok {
					return
				}
				consumed.Add(1)
			}
		}()
	}
	wg.Wait()
	drained := 0
	q.Close(func(Lane, uint64) { drained++ })
	cwg.Wait()

	c := q.Counters()
	var totalShed uint64
	for l := range c {
		totalShed += c[l].Shed
	}
	var callerShed uint64
	for l := range shed {
		callerShed += shed[l] + evicted[l]
	}
	if totalShed != callerShed {
		t.Fatalf("queue shed %d, callers saw %d", totalShed, callerShed)
	}
	// Every offered item is rejected, evicted, consumed, or drained —
	// exactly once.
	offered := uint64(producers * perProducer)
	if got := consumed.Load() + uint64(drained) + callerShed; got != offered {
		t.Fatalf("accounting: consumed %d + drained %d + shed %d = %d, offered %d",
			consumed.Load(), drained, callerShed, got, offered)
	}
	if q.MaxDepth() > NumLanes*64 {
		t.Fatalf("max depth %d exceeded total capacity %d", q.MaxDepth(), NumLanes*64)
	}
}

func TestSumRollup(t *testing.T) {
	q1 := NewQueue[int](policy(2, 6, 1, ShedOldest), nil)
	q2 := NewQueue[int](policy(2, 6, 1, ShedOldest), nil)
	q1.Enqueue(Control, 1)
	q2.Enqueue(Control, 2)
	q2.Enqueue(Telemetry, 3)
	agg := Sum(q1.Counters(), q2.Counters())
	if agg[Control].Admitted != 2 || agg[Control].Depth != 2 || agg[Control].Capacity != 4 {
		t.Fatalf("control rollup: %+v", agg[Control])
	}
	if agg[Telemetry].Admitted != 1 {
		t.Fatalf("telemetry rollup: %+v", agg[Telemetry])
	}
}

// TestEnqueueDequeueAllocFree pins the accept path at zero
// allocations: lane enqueue and dequeue must not allocate, per the
// //starlink:hotpath contract.
func TestEnqueueDequeueAllocFree(t *testing.T) {
	q := NewQueue[int](policy(16, 40, 8, ShedOldest), netapi.NewFlowGate())
	if avg := testing.AllocsPerRun(1000, func() {
		q.Enqueue(Control, 1)
		q.Enqueue(Telemetry, 2)
		q.TryDequeue()
		q.TryDequeue()
	}); avg != 0 {
		t.Fatalf("enqueue/dequeue allocates %.2f per op, want 0", avg)
	}
}
