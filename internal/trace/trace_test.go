package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageAndOutcomeNames(t *testing.T) {
	want := []string{"classify", "recv", "parse", "transition", "translate", "compose", "send"}
	if NumStages != len(want) {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
	for i, name := range want {
		if got := Stage(i).String(); got != name {
			t.Errorf("Stage(%d) = %q, want %q", i, got, name)
		}
	}
	if got := Stage(200).String(); got != "unknown" {
		t.Errorf("out-of-range stage = %q", got)
	}
	for i, name := range []string{"ok", "err", "drop"} {
		if got := Outcome(i).String(); got != name {
			t.Errorf("Outcome(%d) = %q, want %q", i, got, name)
		}
	}
}

func TestRecorderBasic(t *testing.T) {
	epoch := time.Now()
	r := New(8, epoch)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	if !r.Epoch().Equal(epoch) {
		t.Fatalf("Epoch = %v, want %v", r.Epoch(), epoch)
	}
	r.RecordAt(StageRecv, OutcomeOK, epoch.Add(10*time.Microsecond), 96)
	r.RecordAt(StageParse, OutcomeOK, epoch.Add(35*time.Microsecond), 96)
	r.RecordAt(StageSend, OutcomeErr, epoch.Add(2*time.Millisecond), 118)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("Events = %d, want 3", len(evs))
	}
	wantEvs := []Event{
		{StageRecv, OutcomeOK, 10 * time.Microsecond, 96},
		{StageParse, OutcomeOK, 35 * time.Microsecond, 96},
		{StageSend, OutcomeErr, 2 * time.Millisecond, 118},
	}
	for i, want := range wantEvs {
		if evs[i] != want {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], want)
		}
	}
	if r.Total() != 3 {
		t.Fatalf("Total = %d, want 3", r.Total())
	}
}

func TestRecorderWrap(t *testing.T) {
	r := New(4, time.Now())
	for i := 0; i < 10; i++ {
		r.RecordAt(StageParse, OutcomeOK, r.Epoch().Add(time.Duration(i)*time.Millisecond), i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("wrapped Events = %d, want 4", len(evs))
	}
	// Oldest-first: events 6, 7, 8, 9.
	for i, ev := range evs {
		if ev.Bytes != 6+i {
			t.Errorf("event %d Bytes = %d, want %d (oldest-first)", i, ev.Bytes, 6+i)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
}

func TestRecorderSizing(t *testing.T) {
	if r := New(0, time.Now()); r != nil {
		t.Fatal("New(0) should disable (nil)")
	}
	if r := New(-3, time.Now()); r != nil {
		t.Fatal("New(-3) should disable (nil)")
	}
	for size, want := range map[int]int{1: 4, 4: 4, 5: 8, 64: 64, 100: 128, 1 << 20: 4096} {
		if got := New(size, time.Now()).Cap(); got != want {
			t.Errorf("New(%d).Cap() = %d, want %d", size, got, want)
		}
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Record(StageSend, OutcomeOK, 10) // must not panic
	r.RecordAt(StageSend, OutcomeOK, time.Now(), 10)
	if r.Events() != nil || r.Total() != 0 || r.Cap() != 0 {
		t.Fatal("nil recorder must be an empty no-op")
	}
	if !r.Epoch().IsZero() {
		t.Fatal("nil Epoch should be zero")
	}
}

func TestRecordClampsBytes(t *testing.T) {
	r := New(4, time.Now())
	r.Record(StageSend, OutcomeOK, -17)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Bytes != 0 {
		t.Fatalf("negative bytes should clamp to 0, got %+v", evs)
	}
}

func TestConcurrentRecordAndDump(t *testing.T) {
	r := New(64, time.Now())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Record(StageRecv, OutcomeOK, i)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, ev := range r.Events() {
				if int(ev.Stage) >= NumStages {
					t.Errorf("torn event stage %d", ev.Stage)
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if r.Total() != 20000 {
		t.Fatalf("Total = %d, want 20000", r.Total())
	}
	if got := len(r.Events()); got != 64 {
		t.Fatalf("Events = %d, want full ring of 64", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	evs := []Event{
		{StageClassify, OutcomeOK, 1200, 0},
		{StageRecv, OutcomeOK, 10250, 96},
		{StageParse, OutcomeErr, 31875, 96},
		{StageTransition, OutcomeOK, 40000, 0},
		{StageTranslate, OutcomeOK, 55000, 0},
		{StageCompose, OutcomeOK, 61000, 118},
		{StageSend, OutcomeDrop, 2104708, 118},
	}
	text := FormatEvents(evs)
	if strings.ContainsAny(text, " \n") {
		t.Fatalf("compact form contains whitespace: %q", text)
	}
	back, err := ParseEvents(text)
	if err != nil {
		t.Fatalf("ParseEvents(%q): %v", text, err)
	}
	if len(back) != len(evs) {
		t.Fatalf("round trip length %d, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i] != evs[i] {
			t.Errorf("event %d: %+v != %+v", i, back[i], evs[i])
		}
	}
	if got := FormatEvents(nil); got != "" {
		t.Errorf("FormatEvents(nil) = %q, want empty", got)
	}
	if evs, err := ParseEvents(""); err != nil || len(evs) != 0 {
		t.Errorf("ParseEvents(\"\") = %v, %v", evs, err)
	}
}

func TestParseEventsRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"recv", "recv@", "recv@12", "recv@12+3", "recv@12+3=",
		"warp@12+3=ok", "recv@x+3=ok", "recv@12+x=ok", "recv@12+3=maybe",
		"recv@12+-3=ok", ";",
	} {
		if _, err := ParseEvents(bad); err == nil {
			t.Errorf("ParseEvents(%q) succeeded, want error", bad)
		}
	}
}

// TestRecordAllocs is the zero-allocation contract backing the
// //starlink:hotpath annotations on Record and RecordAt.
func TestRecordAllocs(t *testing.T) {
	r := New(64, time.Now())
	at := time.Now()
	if n := testing.AllocsPerRun(1000, func() { r.Record(StageSend, OutcomeOK, 118) }); n != 0 {
		t.Fatalf("Record allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.RecordAt(StageParse, OutcomeOK, at, 96) }); n != 0 {
		t.Fatalf("RecordAt allocates %v per op, want 0", n)
	}
	var nilR *Recorder
	if n := testing.AllocsPerRun(1000, func() { nilR.Record(StageSend, OutcomeOK, 118) }); n != 0 {
		t.Fatalf("nil Record allocates %v per op, want 0", n)
	}
}

// BenchmarkRecord measures the enabled recorder; BenchmarkRecordNil
// the disabled one (a nil check), the WithFlightRecorder(0) cost.
func BenchmarkRecord(b *testing.B) {
	r := New(64, time.Now())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(StageSend, OutcomeOK, 118)
	}
}

func BenchmarkRecordNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(StageSend, OutcomeOK, 118)
	}
}

func BenchmarkEvents(b *testing.B) {
	r := New(64, time.Now())
	for i := 0; i < 100; i++ {
		r.Record(StageRecv, OutcomeOK, i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Events()
	}
}
