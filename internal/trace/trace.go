// Package trace implements the per-session flight recorder: a
// fixed-size ring of pipeline stage events (stage id, offset from the
// session's arrival epoch, byte count, outcome) recorded at each stage
// boundary of the bridge pipeline — classify, recv, parse, automaton
// transition, translate, compose, egress send.
//
// The recorder is built for the engine's hot path. Recording is
// wait-free and allocation-free (//starlink:hotpath, guarded by
// AllocsPerRun tests): a slot is claimed with one atomic add and
// written as two atomic words, so late writers — an ingest worker
// racing a session that already failed — never corrupt a dump and
// never need a lock. A nil *Recorder is the disabled recorder: every
// method is a nil-check away from free, which is how a deployment with
// WithFlightRecorder(0) pays ~one branch per stage.
//
// Events are dumped into SessionStats on session failure and are
// serializable to a compact one-line text form (FormatEvents /
// ParseEvents) — the seed of a replayable session artifact.
package trace

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies a pipeline stage boundary, in pipeline order.
type Stage uint8

const (
	// StageClassify is the dispatcher's payload classification
	// (signature-index fast path or trial-parse slow path).
	StageClassify Stage = iota
	// StageRecv covers a payload's wait between arrival at the
	// listener callback and pickup by the parsing worker or session.
	StageRecv
	// StageParse is the MDL-driven parse of an inbound payload.
	StageParse
	// StageTransition is one automaton δ-step (state transition and
	// field relocation).
	StageTransition
	// StageTranslate is the translation logic mapping field content
	// into an outbound message.
	StageTranslate
	// StageCompose is the MDL-driven composition of the outbound wire
	// form.
	StageCompose
	// StageSend is the egress transmission of a composed payload.
	StageSend

	// NumStages counts the pipeline stages.
	NumStages = int(iota)
)

var stageNames = [NumStages]string{
	"classify", "recv", "parse", "transition", "translate", "compose", "send",
}

// String names the stage as used in traces and metric labels.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Outcome is how a stage concluded.
type Outcome uint8

const (
	// OutcomeOK is a stage that completed normally.
	OutcomeOK Outcome = iota
	// OutcomeErr is a stage that failed (its error ends the session or
	// is counted as a parse error).
	OutcomeErr
	// OutcomeDrop is a payload discarded at this stage (e.g. a
	// mid-session payload the automaton was not waiting for).
	OutcomeDrop
)

var outcomeNames = [3]string{"ok", "err", "drop"}

// String names the outcome as used in traces.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// Event is one recorded stage boundary. At is the offset from the
// session's epoch (the arrival of its initiating payload), so a trace
// reads as a monotone timeline.
type Event struct {
	Stage   Stage
	Outcome Outcome
	At      time.Duration
	Bytes   int
}

// metaBytesMax bounds the byte count packed into an event slot.
const metaBytesMax = uint64(1)<<48 - 1

// slot is one ring entry, stored as two independently atomic words so
// concurrent recording and dumping never tear a single word. A dump
// racing a wrap-around overwrite can pair one slot's old offset with
// its new metadata — visible only in live dumps of still-active
// sessions, never in a failure dump, where the session goroutine has
// stopped recording.
type slot struct {
	at   atomic.Int64
	meta atomic.Uint64 // stage<<56 | outcome<<48 | bytes
}

// Recorder is a fixed-size session flight recorder. Methods are safe
// for concurrent use and safe on a nil receiver (the disabled form).
type Recorder struct {
	epoch time.Time
	mask  uint64
	next  atomic.Uint64
	slots []slot
}

// New creates a recorder of at least size events (rounded up to a
// power of two, clamped to [4, 4096]) with the given epoch. size ≤ 0
// returns nil — the disabled recorder.
func New(size int, epoch time.Time) *Recorder {
	if size <= 0 {
		return nil
	}
	n := 4
	for n < size && n < 4096 {
		n <<= 1
	}
	return &Recorder{epoch: epoch, mask: uint64(n - 1), slots: make([]slot, n)}
}

// Epoch returns the recorder's time origin.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Cap returns the ring capacity in events (0 when disabled).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns the number of events ever recorded (≥ the ring size
// once the ring has wrapped).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Record notes a stage boundary at the current time.
//
//starlink:hotpath
func (r *Recorder) Record(st Stage, out Outcome, bytes int) {
	if r == nil {
		return
	}
	r.put(st, out, int64(time.Since(r.epoch)), bytes)
}

// RecordAt notes a stage boundary at an explicit completion time (used
// when the caller already read the clock for a histogram sample).
//
//starlink:hotpath
func (r *Recorder) RecordAt(st Stage, out Outcome, at time.Time, bytes int) {
	if r == nil {
		return
	}
	r.put(st, out, int64(at.Sub(r.epoch)), bytes)
}

//starlink:hotpath
func (r *Recorder) put(st Stage, out Outcome, at int64, bytes int) {
	i := (r.next.Add(1) - 1) & r.mask
	b := uint64(bytes)
	if bytes < 0 {
		b = 0
	} else if b > metaBytesMax {
		b = metaBytesMax
	}
	sl := &r.slots[i]
	sl.meta.Store(uint64(st)<<56 | uint64(out)<<48 | b)
	sl.at.Store(at)
}

// Events returns the ring's contents oldest-first: every event when
// fewer than the capacity have been recorded, otherwise the most
// recent Cap() of them.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	size := uint64(len(r.slots))
	count, start := n, uint64(0)
	if n > size {
		count, start = size, n&r.mask
	}
	out := make([]Event, 0, count)
	for k := uint64(0); k < count; k++ {
		sl := &r.slots[(start+k)&r.mask]
		at := sl.at.Load()
		meta := sl.meta.Load()
		out = append(out, Event{
			Stage:   Stage(meta >> 56),
			Outcome: Outcome(meta >> 48 & 0xff),
			At:      time.Duration(at),
			Bytes:   int(meta & metaBytesMax),
		})
	}
	return out
}

// FormatEvents renders events in the compact one-line text form, one
// "stage@offsetns+bytes=outcome" token per event, ';'-separated:
//
//	recv@10250+96=ok;parse@31875+96=ok;send@2104708+118=err
//
// The form round-trips exactly through ParseEvents.
func FormatEvents(evs []Event) string {
	return string(AppendEvents(make([]byte, 0, 32*len(evs)), evs))
}

// AppendEvents appends the compact text form of evs to dst.
func AppendEvents(dst []byte, evs []Event) []byte {
	for i, ev := range evs {
		if i > 0 {
			dst = append(dst, ';')
		}
		dst = append(dst, ev.Stage.String()...)
		dst = append(dst, '@')
		dst = strconv.AppendInt(dst, int64(ev.At), 10)
		dst = append(dst, '+')
		dst = strconv.AppendInt(dst, int64(ev.Bytes), 10)
		dst = append(dst, '=')
		dst = append(dst, ev.Outcome.String()...)
	}
	return dst
}

// ParseEvents parses the compact text form produced by FormatEvents.
// An empty string parses to no events.
func ParseEvents(s string) ([]Event, error) {
	if s == "" {
		return nil, nil
	}
	toks := strings.Split(s, ";")
	out := make([]Event, 0, len(toks))
	for _, tok := range toks {
		ev, err := parseEvent(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

func parseEvent(tok string) (Event, error) {
	at := strings.IndexByte(tok, '@')
	plus := strings.IndexByte(tok, '+')
	eq := strings.LastIndexByte(tok, '=')
	if at < 0 || plus < at || eq < plus {
		return Event{}, fmt.Errorf("trace: malformed event %q (want stage@ns+bytes=outcome)", tok)
	}
	var ev Event
	ok := false
	for i, name := range stageNames {
		if name == tok[:at] {
			ev.Stage, ok = Stage(i), true
			break
		}
	}
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown stage %q in event %q", tok[:at], tok)
	}
	ns, err := strconv.ParseInt(tok[at+1:plus], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("trace: bad offset in event %q: %v", tok, err)
	}
	ev.At = time.Duration(ns)
	bytes, err := strconv.Atoi(tok[plus+1 : eq])
	if err != nil || bytes < 0 {
		return Event{}, fmt.Errorf("trace: bad byte count in event %q", tok)
	}
	ev.Bytes = bytes
	ok = false
	for i, name := range outcomeNames {
		if name == tok[eq+1:] {
			ev.Outcome, ok = Outcome(i), true
			break
		}
	}
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown outcome %q in event %q", tok[eq+1:], tok)
	}
	return ev, nil
}
