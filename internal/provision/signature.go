package provision

import (
	"bytes"
	"strconv"

	"starlink/internal/bitio"
	"starlink/internal/mdl"
)

// protoSignature classifies a wire payload of one protocol without
// parsing it. It is derived from the protocol's MDL specification at
// deploy time: every message of a spec is selected by a rule over one
// header field (FunctionID=1, Method=M-SEARCH, Flags=33792, ...), and
// when that field sits at a statically computable position — a fixed
// bit offset for binary dialects, a delimiter-counted token of the
// first line for text dialects — the rule can be evaluated with a
// bounds check and a byte comparison instead of a full trial parse.
//
// Classify mirrors mdl.Spec.SelectMessage exactly on well-formed
// payloads: it returns the name of the message whose rule matches, or
// ok=false when no rule matches (where a trial parse would fail too).
// It does not validate the message body — a payload with a valid
// discriminator but a malformed tail classifies here and is rejected
// by the owning engine's parser instead.
type protoSignature struct {
	dialect mdl.Dialect

	// Binary dialect: the rule field's absolute bit offset and width in
	// the fixed header prefix, and the prefix length needed to read it.
	bitOff   int
	bits     int
	minBytes int

	// Text dialect: the delimiters of the header fields preceding the
	// rule field, and the rule field's own delimiter, in order.
	leadDelims [][]byte
	ruleDelim  []byte

	// rules maps discriminator values to message names, in spec order
	// (SelectMessage returns the first match). Kept as a slice and
	// compared per entry so text classification never converts the
	// scanned token to a string.
	rules []sigRule
}

type sigRule struct {
	intVal  uint64 // binary dialect
	textVal string // text dialect
	name    string
}

// deriveSignature builds the signature for a spec, or nil when the
// spec's rule field is not statically addressable (a variable-width
// field precedes it, messages disagree on the rule field, or a binary
// rule value is not an integer). A nil signature makes the dispatcher
// fall back to trial parsing for the protocol.
func deriveSignature(spec *mdl.Spec) *protoSignature {
	if len(spec.Messages) == 0 {
		return nil
	}
	ruleField := spec.Messages[0].Rule.Field
	for _, m := range spec.Messages[1:] {
		if m.Rule.Field != ruleField {
			return nil
		}
	}
	s := &protoSignature{dialect: spec.Dialect}
	switch spec.Dialect {
	case mdl.DialectBinary:
		off := 0
		found := false
		for _, fd := range spec.Header.Fields {
			if fd.Label == ruleField {
				if fd.SizeBits <= 0 || fd.SizeBits > 64 {
					return nil
				}
				s.bitOff, s.bits = off, fd.SizeBits
				s.minBytes = (off + fd.SizeBits + 7) / 8
				found = true
				break
			}
			if fd.IsGroup() || fd.SizeBits <= 0 {
				return nil // variable-width field before the rule
			}
			off += fd.SizeBits
		}
		if !found {
			return nil
		}
		// The parser renders the rule field with Value.Text before
		// matching, so the comparison is only integer-vs-decimal when
		// the field's type is integer-kinded and the rule value is in
		// canonical decimal form ("7", never "007" or "+7"). Anything
		// else (Bytes-typed discriminators render as hex, non-canonical
		// values never match) falls back to trial parsing.
		if td := spec.TypeOf(ruleField); td.TypeName != "Integer" {
			return nil
		}
		for _, m := range spec.Messages {
			// ParseInt (not ParseUint): the parser stores the field as a
			// signed message.Int, so values ≥ 2^63 would render
			// negative there and never match — no signature for those.
			v, err := strconv.ParseInt(m.Rule.Value, 10, 64)
			if err != nil || v < 0 || strconv.FormatInt(v, 10) != m.Rule.Value ||
				(s.bits < 64 && uint64(v) >= 1<<uint(s.bits)) {
				return nil
			}
			s.rules = append(s.rules, sigRule{intVal: uint64(v), name: m.Name})
		}
	case mdl.DialectText:
		found := false
		for _, fd := range spec.Header.Fields {
			if fd.Wildcard || len(fd.Delim) == 0 {
				return nil // rule field must precede the wildcard run
			}
			if fd.Label == ruleField {
				s.ruleDelim = fd.Delim
				found = true
				break
			}
			s.leadDelims = append(s.leadDelims, fd.Delim)
		}
		if !found {
			return nil
		}
		// Text rule fields compare as verbatim tokens; an Integer-typed
		// rule field would render "007" as "7" and diverge, so require
		// a plain string type (every paper model qualifies).
		if td := spec.TypeOf(ruleField); td.TypeName != "String" {
			return nil
		}
		for _, m := range spec.Messages {
			s.rules = append(s.rules, sigRule{textVal: m.Rule.Value, name: m.Name})
		}
	default:
		return nil
	}
	return s
}

// Classify resolves the payload's message name from its discriminator
// bytes alone. ok is false when the payload is too short, the rule
// token cannot be delimited, or no message rule matches — all cases in
// which a trial parse would have failed to select a message as well.
// Zero allocations.
//
//starlink:hotpath
func (s *protoSignature) Classify(data []byte) (name string, ok bool) {
	switch s.dialect {
	case mdl.DialectBinary:
		if len(data) < s.minBytes {
			return "", false
		}
		var r bitio.Reader
		r.Init(data)
		if r.Skip(s.bitOff) != nil {
			return "", false
		}
		v, err := r.ReadBits(s.bits)
		if err != nil {
			return "", false
		}
		for _, r := range s.rules {
			if r.intVal == v {
				return r.name, true
			}
		}
		return "", false
	case mdl.DialectText:
		rest := data
		for _, d := range s.leadDelims {
			i := bytes.Index(rest, d)
			if i < 0 {
				return "", false
			}
			rest = rest[i+len(d):]
		}
		i := bytes.Index(rest, s.ruleDelim)
		if i < 0 {
			return "", false
		}
		token := rest[:i]
		for _, r := range s.rules {
			if string(token) == r.textVal { // comparison only: no alloc
				return r.name, true
			}
		}
		return "", false
	}
	return "", false
}

// SignatureRule is one discriminator-value → message entry of a
// SignatureInfo, in spec order.
type SignatureRule struct {
	IntVal  uint64 // binary dialect
	TextVal string // text dialect
	Message string
}

// SignatureInfo is the exported mirror of the dispatcher's derived
// protocol signature, for static model tooling (mdlc lint). It
// describes where a protocol's discriminator lives and which values
// select which message.
type SignatureInfo struct {
	Dialect mdl.Dialect

	// Binary dialect: absolute bit offset and width of the rule field,
	// and the prefix length needed to read it.
	BitOff, Bits, MinBytes int

	// Text dialect: delimiters of the header fields preceding the rule
	// field, and the rule field's own delimiter.
	LeadDelims [][]byte
	RuleDelim  []byte

	Rules []SignatureRule
}

// DeriveSignatureInfo derives the classification signature for a spec
// exactly as the runtime dispatcher does, or nil when the rule field is
// not statically addressable (the dispatcher then falls back to trial
// parsing, and static collision analysis cannot decide overlap).
func DeriveSignatureInfo(spec *mdl.Spec) *SignatureInfo {
	s := deriveSignature(spec)
	if s == nil {
		return nil
	}
	info := &SignatureInfo{
		Dialect:    s.dialect,
		BitOff:     s.bitOff,
		Bits:       s.bits,
		MinBytes:   s.minBytes,
		LeadDelims: s.leadDelims,
		RuleDelim:  s.ruleDelim,
	}
	for _, r := range s.rules {
		info.Rules = append(info.Rules, SignatureRule{IntVal: r.intVal, TextVal: r.textVal, Message: r.name})
	}
	return info
}
