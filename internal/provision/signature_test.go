package provision

import (
	"testing"
	"time"

	"starlink/internal/engine"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/registry"
	"starlink/internal/simnet"
)

// composeSample builds a wire sample of one abstract message under the
// registry's spec for its protocol.
func composeSample(t testing.TB, reg *registry.Registry, msg *message.Message) []byte {
	t.Helper()
	c, err := reg.Compiled(firstCaseFor(t, reg, msg.Protocol))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := c.Codecs[msg.Protocol].Composer.Compose(msg)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// firstCaseFor returns a loaded case involving the protocol.
func firstCaseFor(t testing.TB, reg *registry.Registry, proto string) string {
	t.Helper()
	for _, name := range reg.MergedNames() {
		c, err := reg.Compiled(name)
		if err != nil {
			continue
		}
		if _, ok := c.Codecs[proto]; ok {
			return name
		}
	}
	t.Fatalf("no loaded case uses protocol %s", proto)
	return ""
}

// sampleMessages builds one wire sample per message type of the four
// builtin protocols.
func sampleMessages(t testing.TB, reg *registry.Registry) map[string][]byte {
	t.Helper()
	samples := map[string]*message.Message{}

	req := message.New("SLP", "SLPSrvRequest")
	req.AddPrimitive("Version", "Integer", message.Int(2))
	req.AddPrimitive("XID", "Integer", message.Int(42))
	req.AddPrimitive("LangTag", "String", message.Str("en"))
	req.AddPrimitive("SRVType", "String", message.Str("service:printer"))
	samples["SLPSrvRequest"] = req

	rep := message.New("SLP", "SLPSrvReply")
	rep.AddPrimitive("Version", "Integer", message.Int(2))
	rep.AddPrimitive("XID", "Integer", message.Int(42))
	rep.AddPrimitive("LangTag", "String", message.Str("en"))
	rep.AddPrimitive("URLCount", "Integer", message.Int(1))
	rep.AddPrimitive("URLEntry", "String", message.Str("service:printer://10.0.0.9:515"))
	samples["SLPSrvReply"] = rep

	msearch := message.New("SSDP", "SSDPMSearch")
	msearch.AddPrimitive("URI", "String", message.Str("*"))
	msearch.AddPrimitive("Version", "String", message.Str("HTTP/1.1"))
	msearch.AddPrimitive("ST", "String", message.Str("urn:printer"))
	samples["SSDPMSearch"] = msearch

	resp := message.New("SSDP", "SSDPResponse")
	resp.AddPrimitive("URI", "String", message.Str("200"))
	resp.AddPrimitive("Version", "String", message.Str("OK"))
	resp.AddPrimitive("ST", "String", message.Str("urn:printer"))
	resp.AddPrimitive("LOCATION", "URL", message.Str("http://10.0.0.7:5431/desc.xml"))
	samples["SSDPResponse"] = resp

	get := message.New("HTTP", "HTTPGet")
	get.AddPrimitive("URI", "String", message.Str("/desc.xml"))
	get.AddPrimitive("Version", "String", message.Str("HTTP/1.1"))
	samples["HTTPGet"] = get

	q := message.New("mDNS", "DNSQuestion")
	q.AddPrimitive("ID", "Integer", message.Int(1))
	q.AddPrimitive("QDCount", "Integer", message.Int(1))
	q.AddPrimitive("DomainName", "FQDN", message.Str("printer.local"))
	q.AddPrimitive("QType", "Integer", message.Int(12))
	q.AddPrimitive("QClass", "Integer", message.Int(1))
	samples["DNSQuestion"] = q

	out := map[string][]byte{}
	for name, m := range samples {
		out[name] = composeSample(t, reg, m)
	}
	return out
}

// TestSignatureClassifiesLikeParse checks the core equivalence on the
// message level: for every sample wire of every builtin protocol, the
// derived signature resolves exactly the message name the full parser
// resolves, with zero allocations.
func TestSignatureClassifiesLikeParse(t *testing.T) {
	reg := builtin(t)
	protoOf := map[string]string{
		"SLPSrvRequest": "SLP", "SLPSrvReply": "SLP",
		"SSDPMSearch": "SSDP", "SSDPResponse": "SSDP",
		"HTTPGet":     "HTTP",
		"DNSQuestion": "mDNS",
	}
	for name, wire := range sampleMessages(t, reg) {
		proto := protoOf[name]
		spec, err := reg.Spec(proto)
		if err != nil {
			t.Fatal(err)
		}
		sig := deriveSignature(spec)
		if sig == nil {
			t.Fatalf("%s: no signature derivable", proto)
		}
		got, ok := sig.Classify(wire)
		if !ok || got != name {
			t.Errorf("%s: Classify = %q, %v; want %q", proto, got, ok, name)
		}
		// Cross-check against the authoritative parser.
		c, err := reg.Compiled(firstCaseFor(t, reg, proto))
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := c.Codecs[proto].Parser.Parse(wire)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Name != got {
			t.Errorf("%s: signature says %q, parser says %q", proto, got, parsed.Name)
		}
		parsed.Release()
	}
}

// TestSignatureRejectsUnclassifiable checks that malformed
// discriminators classify as not-ok, matching a failed trial parse.
func TestSignatureRejectsUnclassifiable(t *testing.T) {
	reg := builtin(t)
	slpSpec, _ := reg.Spec("SLP")
	ssdpSpec, _ := reg.Spec("SSDP")
	slpSig, ssdpSig := deriveSignature(slpSpec), deriveSignature(ssdpSpec)
	if slpSig == nil || ssdpSig == nil {
		t.Fatal("signatures must derive for SLP and SSDP")
	}
	for _, data := range [][]byte{nil, {2}, {2, 99, 0, 0}} {
		if name, ok := slpSig.Classify(data); ok {
			t.Errorf("SLP Classify(%v) = %q, want not-ok", data, name)
		}
	}
	for _, data := range [][]byte{nil, []byte("NOTIFY * HTTP/1.1\r\n\r\n"), []byte("no delimiters here")} {
		if name, ok := ssdpSig.Classify(data); ok {
			t.Errorf("SSDP Classify(%q) = %q, want not-ok", data, name)
		}
	}
}

// scenarioResult captures everything classification-relevant from one
// full multi-case run.
type scenarioResult struct {
	urls     []string
	upnpOK   bool
	altURL   string
	altOK    bool
	perCase  map[string]engine.Counters
	counters DispatchCounters
}

// runClassificationScenario drives the full seven-case deployment
// (six builtins plus the hot-loaded slp-to-upnp-alt) through the
// ambiguity, reverse-case and egress-suppression flows and returns the
// observable outcome. Identical inputs, deterministic simulator: two
// runs differing only in classification path must produce identical
// results.
func runClassificationScenario(t *testing.T, opts ...Option) scenarioResult {
	t.Helper()
	sim := simnet.New(simnet.WithSeed(7))
	reg := builtin(t)
	if _, err := LoadDir(reg, fixturesDir); err != nil {
		t.Fatal(err)
	}
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(reg, node, opts...)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Cases(); len(got) != 7 {
		t.Fatalf("cases = %v", got)
	}

	// Legacy services: a Bonjour responder (for slp-to-bonjour and
	// upnp-to-bonjour) and a UPnP device (for slp-to-upnp-alt).
	svcNode, err := sim.NewNode("10.0.0.9")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dnssd.NewResponder(svcNode, "printer.local", "service:printer://10.0.0.9:515"); err != nil {
		t.Fatal(err)
	}
	devNode, err := sim.NewNode("10.0.0.8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := upnp.NewDevice(devNode, "urn:printer", "http://10.0.0.8:5431/print", 5431); err != nil {
		t.Fatal(err)
	}

	var res scenarioResult

	// 1. SLP multicast lookup: ambiguous between slp-to-bonjour and
	// slp-to-upnp; also triggers egress suppression when the bridge's
	// own mDNS question echoes back on the shared listener.
	cliNode, err := sim.NewNode("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	slpDone := false
	slp.NewUserAgent(cliNode, slp.WithConvergenceWait(time.Second)).
		Lookup("service:printer", func(r slp.LookupResult) {
			slpDone = true
			if r.Err != nil {
				t.Error(r.Err)
			}
			res.urls = r.URLs
		})
	if err := sim.RunUntil(func() bool { return slpDone }, time.Minute); err != nil {
		t.Fatal(err)
	}

	// 2. UPnP control point: reverse case with the mid-session
	// description GET classifying via the awaiting-session probe.
	cpNode, err := sim.NewNode("10.0.0.2")
	if err != nil {
		t.Fatal(err)
	}
	upnpDone := false
	upnp.NewControlPoint(cpNode).Discover("urn:printer", func(r upnp.DiscoverResult) {
		upnpDone = true
		res.upnpOK = r.Err == nil
	})
	if err := sim.RunUntil(func() bool { return upnpDone }, time.Minute); err != nil {
		t.Fatal(err)
	}

	// 3. Unicast SLP request to the hot-loaded seventh case.
	altNode, err := sim.NewNode("10.0.0.3")
	if err != nil {
		t.Fatal(err)
	}
	res.altURL, res.altOK = slpUnicastLookup(t, sim, reg, altNode, netapi.Addr{IP: "10.0.0.5", Port: 1427})

	sim.RunToQuiescence()
	res.perCase = d.Stats()
	res.counters = d.DispatchStats()
	return res
}

// TestDispatcherClassificationEquivalence is the dispatcher-level
// equivalence claim: with all seven example cases loaded, the
// signature-index fast path and the trial-parse fallback classify the
// same traffic — including the ambiguous SLP multicast request, the
// reverse-case awaiting-session GET and the deployment's own
// suppressed egress — identically. Only the FastPath/SlowPath hit
// counters may differ.
func TestDispatcherClassificationEquivalence(t *testing.T) {
	fast := runClassificationScenario(t)
	slow := runClassificationScenario(t, WithTrialParseOnly())

	if fast.counters.FastPath == 0 || fast.counters.SlowPath != 0 {
		t.Errorf("fast run: FastPath=%d SlowPath=%d, want all fast-path",
			fast.counters.FastPath, fast.counters.SlowPath)
	}
	if slow.counters.SlowPath == 0 || slow.counters.FastPath != 0 {
		t.Errorf("slow run: FastPath=%d SlowPath=%d, want all slow-path",
			slow.counters.FastPath, slow.counters.SlowPath)
	}
	if fast.counters.FastPath != slow.counters.SlowPath {
		t.Errorf("paths saw different payload counts: fast=%d slow=%d",
			fast.counters.FastPath, slow.counters.SlowPath)
	}

	// Identical classification outcomes.
	fc, sc := fast.counters, slow.counters
	fc.FastPath, fc.SlowPath, sc.FastPath, sc.SlowPath = 0, 0, 0, 0
	if fc != sc {
		t.Errorf("dispatch counters diverge:\n fast: %+v\n slow: %+v", fc, sc)
	}
	if len(fast.perCase) != len(slow.perCase) {
		t.Fatalf("per-case stats diverge: %v vs %v", fast.perCase, slow.perCase)
	}
	for name, f := range fast.perCase {
		s := slow.perCase[name]
		if f.Completed != s.Completed || f.Failed != s.Failed || f.ParseErrors != s.ParseErrors {
			t.Errorf("case %s diverges: fast %+v, slow %+v", name, f, s)
		}
	}
	if len(fast.urls) != 1 || len(slow.urls) != 1 || fast.urls[0] != slow.urls[0] {
		t.Errorf("SLP lookup urls diverge: %v vs %v", fast.urls, slow.urls)
	}
	if !fast.upnpOK || !slow.upnpOK {
		t.Errorf("UPnP discover: fast=%v slow=%v, want both ok", fast.upnpOK, slow.upnpOK)
	}
	if !fast.altOK || !slow.altOK || fast.altURL != slow.altURL {
		t.Errorf("alt case lookup diverges: %q/%v vs %q/%v",
			fast.altURL, fast.altOK, slow.altURL, slow.altOK)
	}
	if fast.counters.Ambiguous == 0 {
		t.Error("scenario never exercised an ambiguous classification")
	}
	if fast.counters.Suppressed == 0 {
		t.Error("scenario never exercised egress suppression")
	}
}

// BenchmarkDispatcherClassify compares the two classification paths on
// a live dispatcher hosting all seven example cases, classifying an
// SLP service request arriving on the shared SLP multicast listener
// (two candidate cases) — the acceptance gate is signature ≥ 2× faster
// than trial-parse.
func BenchmarkDispatcherClassify(b *testing.B) {
	sim := simnet.New()
	reg, err := registry.Builtin()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := LoadDir(reg, fixturesDir); err != nil {
		b.Fatal(err)
	}
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		b.Fatal(err)
	}
	d := NewDispatcher(reg, node)
	if err := d.Sync(); err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if n := len(d.Cases()); n < 4 {
		b.Fatalf("want >= 4 cases loaded, have %d", n)
	}

	req := message.New("SLP", "SLPSrvRequest")
	req.AddPrimitive("Version", "Integer", message.Int(2))
	req.AddPrimitive("XID", "Integer", message.Int(42))
	req.AddPrimitive("LangTag", "String", message.Str("en"))
	req.AddPrimitive("SRVType", "String", message.Str("service:printer"))
	wire := composeSample(b, reg, req)

	// The shared SLP multicast listener (slp-to-bonjour + slp-to-upnp).
	d.mu.RLock()
	var l *listener
	for _, cand := range d.listeners {
		if len(cand.points) == 2 && cand.points[0].proto == "SLP" {
			l = cand
		}
	}
	d.mu.RUnlock()
	if l == nil {
		b.Fatal("no shared SLP listener found")
	}
	if !l.sigOK {
		b.Fatal("SLP listener has no derivable signature index")
	}

	b.Run("signature", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matches, _ := d.classifyFast(l.points, l.sigs, wire, "10.0.0.1")
			if len(matches) != 2 {
				b.Fatalf("matches = %d, want 2 (ambiguous pair)", len(matches))
			}
		}
	})
	b.Run("trialparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matches, _ := d.classifySlow(l.points, wire, "10.0.0.1")
			if len(matches) != 2 {
				b.Fatalf("matches = %d, want 2 (ambiguous pair)", len(matches))
			}
		}
	})
}
