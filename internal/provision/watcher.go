package provision

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"starlink/internal/registry"
)

// fileStamp fingerprints one model file for change detection.
type fileStamp struct {
	size    int64
	modTime time.Time
}

// Watcher keeps a registry synchronised with a model directory: it
// polls the directory for changes (new, modified or touched files) and
// re-runs LoadDir when anything moved, then invokes the onApply hook —
// typically Dispatcher.Sync — so new cases deploy with zero restart.
// Reload can also be driven directly (e.g. from a SIGHUP handler).
type Watcher struct {
	reg      *registry.Registry
	dir      string
	interval time.Duration
	onApply  func(LoadResult)
	logf     func(format string, args ...any)

	mu     sync.Mutex // serialises Reload; guards stamps
	stamps map[string]fileStamp

	startOnce sync.Once
	stopOnce  sync.Once
	quit      chan struct{}
	done      chan struct{}
}

// NewWatcher builds a watcher over dir. interval is the polling
// period for Start (values <= 0 disable polling; Reload still works).
// onApply, if non-nil, runs after every load — including no-op loads
// triggered by Reload — with the load's result. logf, if non-nil,
// receives progress and error lines.
func NewWatcher(reg *registry.Registry, dir string, interval time.Duration, onApply func(LoadResult), logf func(format string, args ...any)) *Watcher {
	return &Watcher{
		reg:      reg,
		dir:      dir,
		interval: interval,
		onApply:  onApply,
		logf:     logf,
		stamps:   map[string]fileStamp{},
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (w *Watcher) logeach(format string, args ...any) {
	if w.logf != nil {
		w.logf(format, args...)
	}
}

// Reload fingerprints the directory and applies it to the registry
// unconditionally, then runs the onApply hook. Unchanged files are
// no-ops inside LoadDir, so a Reload with nothing new mutates nothing.
// Safe for concurrent use.
func (w *Watcher) Reload() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reloadLocked()
}

func (w *Watcher) reloadLocked() error {
	stamps := w.fingerprint()
	res, err := LoadDir(w.reg, w.dir)
	if err == nil {
		// Record the fingerprint only after a successful load: a failed
		// load (broken file, transient read error) must be retried on
		// the next poll even if no size/mtime changes in the meantime.
		w.stamps = stamps
	}
	if res.Changed() {
		w.logeach("provision: %s: %s", w.dir, res)
	}
	// Run the hook even when a file failed: LoadDir applies files up
	// to the failure, and whatever did apply must still be synced to
	// the deployments — otherwise the registry and the dispatcher
	// silently diverge until the next file change.
	if w.onApply != nil {
		w.onApply(res)
	}
	return err
}

// fingerprint stamps every model file in the directory. A missing
// directory fingerprints as empty.
func (w *Watcher) fingerprint() map[string]fileStamp {
	out := map[string]fileStamp{}
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return out
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		info, err := os.Stat(filepath.Join(w.dir, e.Name()))
		if err != nil {
			continue
		}
		out[e.Name()] = fileStamp{size: info.Size(), modTime: info.ModTime()}
	}
	return out
}

// changed reports whether the directory fingerprint differs from the
// last applied one. Caller holds mu.
func (w *Watcher) changedLocked() bool {
	now := w.fingerprint()
	if len(now) != len(w.stamps) {
		return true
	}
	for name, st := range now {
		if w.stamps[name] != st {
			return true
		}
	}
	return false
}

// Start launches the polling goroutine. It is a no-op when the
// watcher was built with a non-positive interval.
func (w *Watcher) Start() {
	w.startOnce.Do(func() {
		if w.interval <= 0 {
			close(w.done)
			return
		}
		go w.loop()
	})
}

func (w *Watcher) loop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.mu.Lock()
			if w.changedLocked() {
				if err := w.reloadLocked(); err != nil {
					w.logeach("provision: reload %s: %v", w.dir, err)
				}
			}
			w.mu.Unlock()
		case <-w.quit:
			return
		}
	}
}

// Stop terminates the polling goroutine and waits for it to exit.
func (w *Watcher) Stop() {
	w.stopOnce.Do(func() { close(w.quit) })
	w.Start() // ensure done is closed even if Start was never called
	<-w.done
}
