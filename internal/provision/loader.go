// Package provision turns Starlink into a dynamically provisioned,
// multi-tenant runtime: bridges are no longer chosen once at process
// start, but assembled from declarative models when heterogeneous
// parties actually meet (the paper's headline *runtime*
// interoperability claim, and the dynamic mediator selection of
// Spalazzese & Inverardi's mediating connectors).
//
// The package has three parts:
//
//   - a model-directory loader (LoadDir) that reads MDL / colored
//     automaton / merged automaton XML files from disk and applies
//     them to a live registry with replace semantics;
//   - a polling Watcher that re-loads the directory when files change
//     (or on demand, e.g. from SIGHUP), so a new case dropped into the
//     directory deploys with zero restart;
//   - a Dispatcher that hosts every loaded case in one daemon at once:
//     it indexes each case's entry colors, binds one shared listener
//     per color, and classifies unknown inbound payloads by
//     trial-parsing them against the candidate entry parsers before
//     handing them to the right engine.
package provision

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"starlink/internal/registry"
)

// DocKind classifies a model document by its root element.
type DocKind int

// Document kinds, in load order: MDLs first (automata need their
// protocol's spec), then automata (merged automata reference them),
// then merged automata.
const (
	KindUnknown DocKind = iota
	KindMDL
	KindAutomaton
	KindMerged
)

// String renders the kind.
func (k DocKind) String() string {
	switch k {
	case KindMDL:
		return "MDL"
	case KindAutomaton:
		return "automaton"
	case KindMerged:
		return "merged automaton"
	default:
		return "unknown"
	}
}

// Classify inspects a model document's root element.
func Classify(doc string) DocKind {
	trimmed := strings.TrimSpace(doc)
	// Skip an XML declaration if present.
	if strings.HasPrefix(trimmed, "<?") {
		if i := strings.Index(trimmed, "?>"); i >= 0 {
			trimmed = strings.TrimSpace(trimmed[i+2:])
		}
	}
	switch {
	case strings.HasPrefix(trimmed, "<MDL"):
		return KindMDL
	case strings.HasPrefix(trimmed, "<Automaton"):
		return KindAutomaton
	case strings.HasPrefix(trimmed, "<MergedAutomaton"):
		return KindMerged
	default:
		return KindUnknown
	}
}

// LoadResult summarises one LoadDir application.
type LoadResult struct {
	// MDLs, Automata and Cases name the models that were effectively
	// loaded or replaced (identical-document no-ops excluded).
	MDLs     []string
	Automata []string
	Cases    []string
	// Unchanged counts files whose document was already loaded
	// byte-identically.
	Unchanged int
}

// Changed reports whether the load mutated the registry.
func (r LoadResult) Changed() bool {
	return len(r.MDLs)+len(r.Automata)+len(r.Cases) > 0
}

// String renders a compact summary.
func (r LoadResult) String() string {
	return fmt.Sprintf("%d MDLs, %d automata, %d cases applied (%d unchanged)",
		len(r.MDLs), len(r.Automata), len(r.Cases), r.Unchanged)
}

// LoadDir reads every *.xml file in dir, classifies each document by
// root element, and applies them to the registry with replace
// semantics, in dependency order: MDLs, then colored automata, then
// merged automata. An automaton's model name is its file base name
// (models/slp-server-alt.xml loads as "slp-server-alt"); MDLs and
// merged automata are named by their documents. Files whose document
// is already loaded byte-identically are no-ops, so re-loading an
// unchanged directory mutates nothing and bumps no generation.
//
// A missing directory is treated as empty. The first file that fails
// to parse or validate aborts the load; models applied before the
// failure stay applied (the watcher logs and retries, mdlc validate
// exits non-zero).
func LoadDir(reg *registry.Registry, dir string) (LoadResult, error) {
	var res LoadResult
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, fmt.Errorf("provision: %w", err)
	}

	type file struct {
		name string // base name without extension
		path string
		doc  string
		kind DocKind
	}
	var files []file
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return res, fmt.Errorf("provision: %w", err)
		}
		doc := string(data)
		kind := Classify(doc)
		if kind == KindUnknown {
			return res, fmt.Errorf("provision: %s: unrecognised document root (want MDL, Automaton or MergedAutomaton)", path)
		}
		files = append(files, file{
			name: strings.TrimSuffix(e.Name(), ".xml"),
			path: path,
			doc:  doc,
			kind: kind,
		})
	}
	// Deterministic application order: by kind, then by file name.
	sort.Slice(files, func(i, j int) bool {
		if files[i].kind != files[j].kind {
			return files[i].kind < files[j].kind
		}
		return files[i].name < files[j].name
	})

	for _, f := range files {
		var changed bool
		var name string
		var err error
		switch f.kind {
		case KindMDL:
			changed, err = reg.ReplaceMDL(f.doc)
			name = f.name
		case KindAutomaton:
			changed, err = reg.ReplaceAutomaton(f.name, f.doc)
			name = f.name
		case KindMerged:
			changed, err = reg.ReplaceMerged(f.doc)
			name = f.name
		}
		if err != nil {
			return res, fmt.Errorf("provision: %s: %w", f.path, err)
		}
		if !changed {
			res.Unchanged++
			continue
		}
		switch f.kind {
		case KindMDL:
			res.MDLs = append(res.MDLs, name)
		case KindAutomaton:
			res.Automata = append(res.Automata, name)
		case KindMerged:
			res.Cases = append(res.Cases, name)
		}
	}
	return res, nil
}
