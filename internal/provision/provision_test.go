package provision

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"starlink/internal/composer"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/parser"
	"starlink/internal/protocols/dnssd"
	"starlink/internal/protocols/slp"
	"starlink/internal/protocols/upnp"
	"starlink/internal/registry"
	"starlink/internal/simnet"
	"starlink/internal/xpath"
)

// fixturesDir is the shipped on-disk model set for the alternate
// Fig. 4 case (examples/models).
const fixturesDir = "../../examples/models"

func builtin(t *testing.T) *registry.Registry {
	t.Helper()
	reg, err := registry.Builtin()
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// copyFixtures copies the shipped model fixtures into a fresh temp
// directory and returns it.
func copyFixtures(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(fixturesDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(fixturesDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestClassify(t *testing.T) {
	cases := map[string]DocKind{
		`<MDL protocol="X">`:            KindMDL,
		`  <Automaton protocol="X">`:    KindAutomaton,
		`<MergedAutomaton name="x">`:    KindMerged,
		`<?xml version="1.0"?><MDL x>`:  KindMDL,
		`<Something>`:                   KindUnknown,
		`plain text`:                    KindUnknown,
		"\n\t<MergedAutomaton name=*>":  KindMerged,
		`<?xml version="1.0"?><Banana>`: KindUnknown,
	}
	for doc, want := range cases {
		if got := Classify(doc); got != want {
			t.Errorf("Classify(%q) = %v, want %v", doc, got, want)
		}
	}
}

// TestLoadDirFixtures loads the shipped examples/models fixtures over
// the builtins: the MDL copy must be an identity no-op, the alternate
// automaton and case must apply, and reloading must change nothing.
func TestLoadDirFixtures(t *testing.T) {
	reg := builtin(t)
	gen := reg.Generation()
	res, err := LoadDir(reg, fixturesDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MDLs) != 0 || res.Unchanged != 1 {
		t.Errorf("SLP MDL fixture should be identity with the builtin: %+v", res)
	}
	if len(res.Automata) != 1 || res.Automata[0] != "slp-server-alt" {
		t.Errorf("automata applied = %v", res.Automata)
	}
	if len(res.Cases) != 1 || res.Cases[0] != "slp-to-upnp-alt" {
		t.Errorf("cases applied = %v", res.Cases)
	}
	if reg.Generation() == gen {
		t.Error("effective load must bump the generation")
	}
	if _, err := reg.Compiled("slp-to-upnp-alt"); err != nil {
		t.Fatalf("alt case does not compile: %v", err)
	}

	// Loading a second time must be a complete no-op.
	gen = reg.Generation()
	res, err = LoadDir(reg, fixturesDir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed() || res.Unchanged != 3 {
		t.Errorf("reload should be all-unchanged: %+v", res)
	}
	if reg.Generation() != gen {
		t.Error("no-op load must not bump the generation")
	}
}

func TestLoadDirMissingAndBadDocs(t *testing.T) {
	reg := builtin(t)
	if res, err := LoadDir(reg, filepath.Join(t.TempDir(), "missing")); err != nil || res.Changed() {
		t.Errorf("missing dir should load as empty, got %+v, %v", res, err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.xml"), []byte("<Banana/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(reg, dir); err == nil || !strings.Contains(err.Error(), "bad.xml") {
		t.Errorf("unclassifiable file should fail naming the file, got %v", err)
	}
}

// TestDispatcherHostsAllCases is the multi-tenant core claim: one
// dispatcher hosts all six builtin cases at once behind shared
// listeners, an SLP lookup and a UPnP M-SEARCH each reach the right
// case, and the deployment's own multicast requests are suppressed
// rather than bridged back through the opposite-direction cases.
func TestDispatcherHostsAllCases(t *testing.T) {
	sim := simnet.New()
	reg := builtin(t)
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	d := NewDispatcher(reg, node, WithLogf(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, format)
		mu.Unlock()
	}))
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Cases(); len(got) != 6 {
		t.Fatalf("cases = %v", got)
	}

	devNode, err := sim.NewNode("10.0.0.7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dnssd.NewResponder(devNode, "printer.local", "service:printer://10.0.0.7:515"); err != nil {
		t.Fatal(err)
	}
	cliNode, err := sim.NewNode("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	done := false
	var urls []string
	slp.NewUserAgent(cliNode, slp.WithConvergenceWait(time.Second)).
		Lookup("service:printer", func(r slp.LookupResult) {
			done = true
			if r.Err != nil {
				t.Error(r.Err)
			}
			urls = r.URLs
		})
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(urls) != 1 || urls[0] != "service:printer://10.0.0.7:515" {
		t.Fatalf("urls = %v", urls)
	}

	// The SLP request was ambiguous between slp-to-bonjour and
	// slp-to-upnp; the lexicographically first case must have won.
	stats := d.Stats()
	if stats["slp-to-bonjour"].Completed != 1 {
		t.Errorf("slp-to-bonjour stats = %+v", stats["slp-to-bonjour"])
	}
	if stats["slp-to-upnp"].Completed != 0 {
		t.Errorf("slp-to-upnp should not have bridged: %+v", stats["slp-to-upnp"])
	}
	dc := d.DispatchStats()
	if dc.Ambiguous != 1 || dc.Dispatched != 1 {
		t.Errorf("dispatch counters = %+v", dc)
	}
	// The bridge's own multicast DNSQuestion reached the shared mDNS
	// listener and must have been suppressed, not bridged through
	// bonjour-to-*.
	if dc.Suppressed == 0 {
		t.Errorf("expected egress suppression, counters = %+v", dc)
	}
	if stats["bonjour-to-slp"].Completed != 0 || stats["bonjour-to-upnp"].Completed != 0 {
		t.Errorf("opposite-direction cases bridged our own request: %+v", stats)
	}
	mu.Lock()
	defer mu.Unlock()
	foundAmbig := false
	for _, l := range lines {
		if strings.Contains(l, "matches cases") {
			foundAmbig = true
		}
	}
	if !foundAmbig {
		t.Errorf("ambiguous dispatch was not logged: %q", lines)
	}
}

// TestDispatcherReverseCase drives a UPnP control point against the
// hosted upnp-to-* cases: the M-SEARCH classifies on the shared SSDP
// listener and the mid-session description GET classifies on the
// shared HTTP listener via the awaiting-session probe.
func TestDispatcherReverseCase(t *testing.T) {
	sim := simnet.New()
	reg := builtin(t)
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(reg, node)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	devNode, err := sim.NewNode("10.0.0.7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dnssd.NewResponder(devNode, "printer.local", "service:printer://10.0.0.7:515"); err != nil {
		t.Fatal(err)
	}
	cpNode, err := sim.NewNode("10.0.0.2")
	if err != nil {
		t.Fatal(err)
	}
	done := false
	upnp.NewControlPoint(cpNode).Discover("urn:printer", func(r upnp.DiscoverResult) {
		done = true
		if r.Err != nil {
			t.Error(r.Err)
		}
	})
	if err := sim.RunUntil(func() bool { return done }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats()["upnp-to-bonjour"]; st.Completed != 1 {
		t.Errorf("upnp-to-bonjour stats = %+v", st)
	}
}

// slpUnicastLookup drives one raw SLP SrvRequest to addr and returns
// the replied URL.
func slpUnicastLookup(t *testing.T, sim *simnet.Net, reg *registry.Registry, cliNode netapi.Node, addr netapi.Addr) (string, bool) {
	t.Helper()
	spec, err := reg.Spec("SLP")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := composer.New(spec, reg.Types(), nil)
	if err != nil {
		t.Fatal(err)
	}
	req := message.New("SLP", "SLPSrvRequest")
	req.AddPrimitive("Version", "Integer", message.Int(2))
	req.AddPrimitive("FunctionID", "Integer", message.Int(1))
	req.AddPrimitive("XID", "Integer", message.Int(7))
	req.AddPrimitive("LangTag", "String", message.Str("en"))
	req.AddPrimitive("SRVType", "String", message.Str("service:printer"))
	wire, err := comp.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parser.New(spec, reg.Types())
	if err != nil {
		t.Fatal(err)
	}
	urlPath := xpath.MustCompile("/field/primitiveField[label='URLEntry']/value")
	url := ""
	done := false
	sock, err := cliNode.OpenUDP(0, func(pkt netapi.Packet) {
		reply, err := p.Parse(pkt.Data)
		if err != nil {
			t.Error(err)
		} else if v, err := urlPath.Get(reply); err != nil {
			t.Error(err)
		} else {
			url = v.Text()
		}
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	if err := sock.Send(addr, wire); err != nil {
		t.Fatal(err)
	}
	_ = sim.RunUntil(func() bool { return done }, 5*time.Second)
	return url, done
}

// TestDispatcherHotReload is the zero-restart provisioning loop: a
// dispatcher hosting the six builtin cases picks up a seventh case
// dropped into a watched model directory, deploys it without touching
// the running six, bridges a session through it, and undeploys it when
// the case is unloaded.
func TestDispatcherHotReload(t *testing.T) {
	sim := simnet.New()
	reg := builtin(t)
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(reg, node)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	before := map[string]any{}
	for _, name := range d.Cases() {
		eng, _ := d.Engine(name)
		before[name] = eng
	}

	dir := copyFixtures(t)
	w := NewWatcher(reg, dir, 0, func(LoadResult) {
		if err := d.Sync(); err != nil {
			t.Error(err)
		}
	}, nil)
	if err := w.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := d.Cases(); len(got) != 7 {
		t.Fatalf("cases after reload = %v", got)
	}
	// The running six were not redeployed.
	for name, eng := range before {
		got, ok := d.Engine(name)
		if !ok || any(got) != eng {
			t.Errorf("case %s was redeployed by an unrelated hot load", name)
		}
	}

	// The UPnP printer the new case chains to.
	devNode, err := sim.NewNode("10.0.0.8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := upnp.NewDevice(devNode, "urn:printer", "http://10.0.0.8:5431/print", 5431); err != nil {
		t.Fatal(err)
	}
	cliNode, err := sim.NewNode("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	url, ok := slpUnicastLookup(t, sim, reg, cliNode, netapi.Addr{IP: "10.0.0.5", Port: 1427})
	if !ok || url != "http://10.0.0.8:5431/print" {
		t.Fatalf("hot-deployed case lookup: ok=%v url=%q", ok, url)
	}

	// Unload undeploys the case and unbinds its listener.
	if err := reg.Unload("slp-to-upnp-alt"); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := d.Cases(); len(got) != 6 {
		t.Fatalf("cases after unload = %v", got)
	}
	if _, ok := d.Engine("slp-to-upnp-alt"); ok {
		t.Error("unloaded case still has a live engine")
	}
	if _, ok := slpUnicastLookup(t, sim, reg, cliNode, netapi.Addr{IP: "10.0.0.5", Port: 1427}); ok {
		t.Error("unbound entry endpoint still answered")
	}
}

// TestWatcherPolling exercises the change-driven polling loop against
// real files and a real ticker.
func TestWatcherPolling(t *testing.T) {
	reg := builtin(t)
	dir := t.TempDir()
	applied := make(chan LoadResult, 16)
	w := NewWatcher(reg, dir, 5*time.Millisecond, func(res LoadResult) {
		if res.Changed() {
			applied <- res
		}
	}, nil)
	w.Start()
	defer w.Stop()

	data, err := os.ReadFile(filepath.Join(fixturesDir, "slp-server-alt.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "slp-server-alt.xml"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-applied:
		if len(res.Automata) != 1 || res.Automata[0] != "slp-server-alt" {
			t.Errorf("applied = %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never picked up the new model file")
	}
	if _, err := reg.Automaton("slp-server-alt"); err != nil {
		t.Fatal(err)
	}
}

// TestWatcherRetriesFailedLoad pins the hot-reload retry contract: a
// failed directory load must not record the fingerprint, so the next
// poll retries even when no file size/mtime changed in the meantime.
func TestWatcherRetriesFailedLoad(t *testing.T) {
	reg := builtin(t)
	dir := t.TempDir()
	broken := filepath.Join(dir, "broken.xml")
	if err := os.WriteFile(broken, []byte(`<MDL protocol="X">not xml`), 0o644); err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(reg, dir, 0, nil, nil)
	if err := w.Reload(); err == nil {
		t.Fatal("broken model file should fail the load")
	}
	w.mu.Lock()
	changed := w.changedLocked()
	w.mu.Unlock()
	if !changed {
		t.Error("failed load must leave the directory marked changed so polling retries")
	}
	// Fixing the file makes the load succeed and record the state.
	valid, err := os.ReadFile(filepath.Join(fixturesDir, "slp-server-alt.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(broken, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Reload(); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	changed = w.changedLocked()
	w.mu.Unlock()
	if changed {
		t.Error("successful load must record the fingerprint")
	}
}

// TestDispatcherExplicitCases checks the -case list path: only the
// named cases deploy, and unknown names fail Sync.
func TestDispatcherExplicitCases(t *testing.T) {
	sim := simnet.New()
	reg := builtin(t)
	node, err := sim.NewNode("10.0.0.5")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(reg, node, WithCases("slp-to-upnp", "upnp-to-slp"))
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.Cases(); len(got) != 2 || got[0] != "slp-to-upnp" || got[1] != "upnp-to-slp" {
		t.Fatalf("cases = %v", got)
	}

	node2, err := sim.NewNode("10.0.0.6")
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDispatcher(reg, node2, WithCases("no-such-case"))
	if err := d2.Sync(); err == nil || !strings.Contains(err.Error(), "no-such-case") {
		t.Fatalf("unknown explicit case should fail Sync, got %v", err)
	}
	_ = d2.Close()
}
