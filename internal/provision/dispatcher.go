package provision

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"starlink/internal/automata"
	"starlink/internal/engine"
	"starlink/internal/hist"
	"starlink/internal/message"
	"starlink/internal/netapi"
	"starlink/internal/netengine"
	"starlink/internal/registry"
	"starlink/internal/serrors"
)

// Option configures a Dispatcher.
type Option func(*Dispatcher)

// WithCases restricts the dispatcher to an explicit case list instead
// of hosting every case in the registry. Sync fails if an explicitly
// requested case is not loaded.
func WithCases(names ...string) Option {
	return func(d *Dispatcher) { d.cases = names }
}

// WithEngineOptions passes engine options (max sessions, timeouts,
// jitter, ...) to every engine the dispatcher deploys.
func WithEngineOptions(opts ...engine.Option) Option {
	return func(d *Dispatcher) { d.engOpts = opts }
}

// WithSessionObserver registers a per-session callback tagged with the
// case name that bridged the session — the multi-tenant form of
// engine.WithObserver. It is shorthand for
// WithHooks(Hooks{SessionEnd: fn}).
func WithSessionObserver(fn func(caseName string, s engine.SessionStats)) Option {
	return WithHooks(Hooks{SessionEnd: fn})
}

// WithLogf routes the dispatcher's operational log lines (deploys,
// undeploys, ambiguous classifications) to fn.
func WithLogf(fn func(format string, args ...any)) Option {
	return func(d *Dispatcher) { d.logf = fn }
}

// WithTrialParseOnly disables the signature-index fast path: every
// payload is classified by trial-parsing against the candidate entry
// parsers. For diagnostics, equivalence tests and benchmarking the two
// classification paths against each other.
func WithTrialParseOnly() Option {
	return func(d *Dispatcher) { d.trialParseOnly = true }
}

// WithOwnedNode makes the dispatcher own its bridge node: Close and
// Shutdown release the node after undeploying everything. Deployment
// factories that create a node per dispatcher (core.DeployDispatcher)
// use this so a failed or finished deployment never leaks the host.
func WithOwnedNode() Option {
	return func(d *Dispatcher) { d.ownsNode = true }
}

// WithContext ties the dispatcher's lifetime to ctx: when ctx is
// cancelled the dispatcher closes, undeploying every hosted case. The
// context is also the parent of every hosted engine's context, so
// cancellation reaches in-flight sessions directly.
func WithContext(ctx context.Context) Option {
	return func(d *Dispatcher) {
		if ctx != nil {
			d.ctx = ctx
		}
	}
}

// WithHooks registers a set of dispatcher lifecycle hooks. Hooks
// compose: every registered set is invoked, in registration order.
func WithHooks(h Hooks) Option {
	return func(d *Dispatcher) { d.hooks = append(d.hooks, h) }
}

// Hooks are optional dispatcher lifecycle callbacks; any field may be
// nil. Per-case session and drop callbacks are forwarded from the
// hosted engines tagged with the case name; invocation order within
// one engine is serialised by that engine.
type Hooks struct {
	// Deployed fires when a case is (re)deployed, with the registry
	// generation its artifacts were compiled at.
	Deployed func(caseName string, generation uint64)
	// Undeployed fires when a case is undeployed (unloaded, changed,
	// or dispatcher shutdown).
	Undeployed func(caseName string)
	// SessionStart fires when a case's engine admits a new session.
	SessionStart func(caseName string, origin netapi.Addr, at time.Time)
	// SessionEnd fires as a case's session finishes.
	SessionEnd func(caseName string, s engine.SessionStats)
	// Classified fires for every payload handed to an engine, after
	// classification. Events with Ambiguous set carry an Err marked
	// serrors.ErrAmbiguousPayload and the full candidate list.
	Classified func(ev ClassifyEvent)
	// Dropped fires when a payload or session is refused — by an
	// engine (capacity, draining) or by the dispatcher itself (target
	// engine already closed). caseName is empty when the drop happened
	// before a case was chosen.
	Dropped func(caseName string, origin netapi.Addr, reason error)
}

// ClassifyEvent describes one classified entry payload.
type ClassifyEvent struct {
	// Case is the case the payload was dispatched to.
	Case string
	// Protocol and Message identify the classified entry message.
	Protocol string
	Message  string
	// Origin is the payload's source address.
	Origin netapi.Addr
	// Candidates lists every matching case when the classification was
	// ambiguous (nil otherwise).
	Candidates []string
	// Ambiguous reports whether more than one case matched.
	Ambiguous bool
	// FastPath reports whether the signature index classified the
	// payload without parsing.
	FastPath bool
	// Err is non-nil for ambiguous classifications, marked with
	// serrors.ErrAmbiguousPayload.
	Err error
}

// DispatchCounters snapshots the dispatcher's classification counters.
type DispatchCounters struct {
	// Dispatched counts payloads handed to an engine.
	Dispatched int
	// Ambiguous counts payloads that matched the entry parser of more
	// than one case (each was still dispatched, deterministically).
	Ambiguous int
	// Unroutable counts payloads that parsed under some candidate
	// protocol but matched no case's entry message and no awaiting
	// session.
	Unroutable int
	// ParseErrors counts payloads no candidate entry parser accepted.
	ParseErrors int
	// Suppressed counts payloads originating from this dispatcher's
	// own bridge sessions (their requester sockets): the deployment
	// hearing its own multicast requests. Re-bridging those through an
	// opposite-direction case would loop traffic forever.
	Suppressed int
	// Rejected counts payloads that classified to a case whose engine
	// refused them outright (already closed — e.g. one engine finished
	// draining before the rest during Shutdown).
	Rejected int
	// FastPath counts payloads classified by the signature index alone
	// (a bounds check plus a byte comparison — no parsing).
	FastPath int
	// SlowPath counts payloads classified by trial-parsing, because a
	// candidate protocol's signature was underivable or the fast path
	// is disabled.
	SlowPath int
}

// sortedMapKeys returns m's string keys sorted. Reconciliation paths
// iterate with it instead of ranging the map directly: deploy, bind
// and teardown order decide which socket gets which ephemeral port and
// when close events fire, and on a simulated network those choices are
// part of the observable schedule — map order would make two runs of
// one seed diverge.
func sortedMapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// deployment is one hosted case: its engine plus the compiled
// artifacts it was deployed from (pointer identity against
// registry.Compiled detects staleness).
type deployment struct {
	name     string
	compiled *registry.CompiledCase
	eng      *engine.Engine
}

// entryPoint is one case's claim on a listener color: the protocol it
// receives there and, for the initiator protocol, the message that
// opens a session.
type entryPoint struct {
	dep       *deployment
	proto     string
	initiator bool
	initMsg   string
}

// listener is one shared entry listener: a bound color plus the entry
// points of every case currently listening on it, sorted by case name
// so classification ties break deterministically.
type listener struct {
	color  automata.Color
	closer netapi.Closer
	points []entryPoint
	// sigs maps each candidate protocol to its derived signature; sigOK
	// is true when every candidate protocol has one, enabling the
	// parse-free fast path. Rebuilt (never mutated) by rebindLocked.
	sigs  map[string]*protoSignature
	sigOK bool
}

// Dispatcher hosts every loaded (or explicitly selected) case of a
// registry on one bridge node at once. It owns the entry listeners —
// one per distinct entry color across all deployed cases — and
// classifies each inbound payload by trial-parsing it against the
// candidate entry parsers ("entry sniffing"), then hands it to the
// engine of the case it belongs to. Engines run in managed mode
// (engine.StartManaged): they never bind sockets of their own, so two
// cases sharing an entry endpoint (e.g. both SLP-initiated bridges on
// the SLP multicast group) coexist without port conflicts or duplicate
// deliveries.
//
// Sync reconciles the deployments with the registry's current state
// and is cheap when nothing changed, so it can run after every model
// reload; payload dispatch proceeds concurrently under a read lock.
type Dispatcher struct {
	reg  *registry.Registry
	node netapi.Node
	net  *netengine.Engine
	// gate is the flow gate shared by every hosted engine's ingest
	// queues and the dispatcher's entry listeners: when any engine's
	// queue crosses its high watermark the listeners' read loops pause,
	// and they resume once it drains to its low watermark.
	gate *netapi.FlowGate
	// egress tracks the requester sockets of every hosted engine so
	// dispatch can suppress the deployment's own outbound requests.
	egress *netengine.EgressTable

	cases          []string // explicit case filter; nil hosts all
	engOpts        []engine.Option
	logf           func(format string, args ...any)
	hooks          []Hooks
	trialParseOnly bool
	ownsNode       bool
	ctx            context.Context

	// state moves strictly forward: Running → (Draining →) Closed.
	state atomic.Int32
	// quit ends the context watcher when the dispatcher closes first.
	quit chan struct{}

	mu        sync.RWMutex
	deployed  map[string]*deployment
	listeners map[string]*listener // by color key
	closed    bool
	// final snapshots each case's engine counters at Close so Stats
	// (and the public Metrics) stay truthful on a closed dispatcher;
	// finalLatency and finalLanes do the same for the staged latency
	// histograms and the ingest-lane accounting.
	final        map[string]engine.Counters
	finalLatency map[string]engine.LatencyDump
	finalLanes   map[string]engine.LaneDump

	// classifyHists time the classification decision itself, split by
	// path: [0] the signature-index fast path, [1] trial parsing.
	classifyHists [2]*hist.Histogram

	// obsMu serialises hook invocations made by the dispatcher itself
	// (classification, dispatcher-level drops); per-engine callbacks
	// are serialised by their engine.
	obsMu sync.Mutex

	statsMu  sync.Mutex
	counters DispatchCounters
}

// NewDispatcher builds a dispatcher for the registry on the node. Call
// Sync to deploy; the zero deployment set serves nothing.
func NewDispatcher(reg *registry.Registry, node netapi.Node, opts ...Option) *Dispatcher {
	gate := netapi.NewFlowGate()
	d := &Dispatcher{
		reg:       reg,
		node:      node,
		net:       netengine.New(node, netengine.WithGate(gate)),
		gate:      gate,
		egress:    netengine.NewEgressTable(),
		deployed:  map[string]*deployment{},
		listeners: map[string]*listener{},
		ctx:       context.Background(),
		quit:      make(chan struct{}),
	}
	for i := range d.classifyHists {
		d.classifyHists[i] = &hist.Histogram{}
	}
	for _, o := range opts {
		o(d)
	}
	d.state.Store(int32(engine.StateStarting))
	if d.ctx.Done() != nil {
		ctx := d.ctx
		go func() {
			select {
			case <-ctx.Done():
				_ = d.Close()
			case <-d.quit:
			}
		}()
	}
	return d
}

// State returns the dispatcher's lifecycle state.
func (d *Dispatcher) State() engine.State { return engine.State(d.state.Load()) }

func (d *Dispatcher) logeach(format string, args ...any) {
	if d.logf != nil {
		d.logf(format, args...)
	}
}

// hookClassified reports one classified payload to every hook set.
func (d *Dispatcher) hookClassified(ev ClassifyEvent) {
	if len(d.hooks) == 0 {
		return
	}
	d.obsMu.Lock()
	defer d.obsMu.Unlock()
	for _, h := range d.hooks {
		if h.Classified != nil {
			h.Classified(ev)
		}
	}
}

// hookDropped reports a dispatcher-level refusal to every hook set.
func (d *Dispatcher) hookDropped(caseName string, origin netapi.Addr, reason error) {
	if len(d.hooks) == 0 {
		return
	}
	d.obsMu.Lock()
	defer d.obsMu.Unlock()
	for _, h := range d.hooks {
		if h.Dropped != nil {
			h.Dropped(caseName, origin, reason)
		}
	}
}

// hookDeployed / hookUndeployed report deployment changes.
func (d *Dispatcher) hookDeployed(caseName string, generation uint64) {
	d.obsMu.Lock()
	defer d.obsMu.Unlock()
	for _, h := range d.hooks {
		if h.Deployed != nil {
			h.Deployed(caseName, generation)
		}
	}
}

func (d *Dispatcher) hookUndeployed(caseName string) {
	d.obsMu.Lock()
	defer d.obsMu.Unlock()
	for _, h := range d.hooks {
		if h.Undeployed != nil {
			h.Undeployed(caseName)
		}
	}
}

// desiredCases resolves the case list to host. With an explicit filter
// every name must be loaded; otherwise all loaded cases are desired.
func (d *Dispatcher) desiredCases() ([]string, error) {
	if d.cases == nil {
		return d.reg.MergedNames(), nil
	}
	loaded := map[string]bool{}
	for _, n := range d.reg.MergedNames() {
		loaded[n] = true
	}
	var missing []string
	for _, n := range d.cases {
		if !loaded[n] {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		return nil, serrors.Mark(fmt.Errorf("provision: case(s) not loaded: %s (have %s)",
			strings.Join(missing, ", "), strings.Join(d.reg.MergedNames(), ", ")),
			serrors.ErrUnknownCase)
	}
	out := append([]string(nil), d.cases...)
	sort.Strings(out)
	return out, nil
}

// Sync reconciles the hosted deployments with the registry: new cases
// are compiled (from the registry's compiled-case cache) and deployed,
// cases whose models changed are redeployed, and unloaded cases are
// undeployed. Shared entry listeners are rebound to match. Unchanged
// cases are left entirely alone — same engine, same sessions — so a
// Sync with nothing changed is a cheap no-op.
func (d *Dispatcher) Sync() error {
	names, err := d.desiredCases()
	if err != nil {
		return err
	}
	desired := make(map[string]*registry.CompiledCase, len(names))
	for _, n := range names {
		c, err := d.reg.Compiled(n)
		if err != nil {
			return fmt.Errorf("provision: case %s: %w", n, err)
		}
		desired[n] = c
	}

	var stale []*deployment
	var staleListeners []netapi.Closer
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return serrors.Mark(fmt.Errorf("provision: dispatcher is closed"), serrors.ErrClosed)
	}
	if d.State() == engine.StateDraining {
		d.mu.Unlock()
		return serrors.Mark(fmt.Errorf("provision: dispatcher is draining"), serrors.ErrDraining)
	}
	// Undeploy removed or changed cases. Iteration is sorted so that
	// teardown — and with it the socket-close events a simulated run
	// traces — happens in the same order every time; map order here
	// would break the DST determinism contract.
	for _, name := range sortedMapKeys(d.deployed) {
		dep := d.deployed[name]
		if c, ok := desired[name]; ok && c == dep.compiled {
			continue
		}
		delete(d.deployed, name)
		stale = append(stale, dep)
	}
	// Deploy new or changed cases. A failing deploy does not abort the
	// reconciliation: the listeners must still be rebound to the cases
	// that ARE live, or stale entry points would keep routing payloads
	// to engines closed above.
	// names is sorted, so engines come up — and allocate their sockets
	// and ephemeral ports — in deterministic order.
	var deployErr error
	var freshlyDeployed []*deployment
	for _, name := range names {
		c := desired[name]
		if _, ok := d.deployed[name]; ok {
			continue
		}
		dep, err := d.deploy(name, c)
		if err != nil {
			if deployErr == nil {
				deployErr = fmt.Errorf("provision: deploying %s: %w", name, err)
			}
			continue
		}
		d.deployed[name] = dep
		freshlyDeployed = append(freshlyDeployed, dep)
	}
	staleListeners, err = d.rebindLocked()
	d.mu.Unlock()
	// Hooks fire outside d.mu so a callback may freely call back into
	// the dispatcher (Cases, Stats, Metrics) without deadlocking.
	for _, dep := range freshlyDeployed {
		d.hookDeployed(dep.name, dep.compiled.Generation)
	}
	d.closeAll(stale, staleListeners)
	if deployErr != nil {
		return deployErr
	}
	if err == nil {
		// First successful reconciliation: the dispatcher is serving.
		d.state.CompareAndSwap(int32(engine.StateStarting), int32(engine.StateRunning))
	}
	return err
}

// deploy builds and starts a managed engine for one case. Caller holds
// d.mu.
func (d *Dispatcher) deploy(name string, c *registry.CompiledCase) (*deployment, error) {
	opts := append([]engine.Option(nil), d.engOpts...)
	opts = append(opts, engine.WithEgressTable(d.egress), engine.WithContext(d.ctx),
		engine.WithFlowGate(d.gate))
	if len(d.hooks) > 0 {
		caseName := name
		opts = append(opts, engine.WithHooks(engine.Hooks{
			SessionStart: func(origin netapi.Addr, at time.Time) {
				for _, h := range d.hooks {
					if h.SessionStart != nil {
						h.SessionStart(caseName, origin, at)
					}
				}
			},
			SessionEnd: func(s engine.SessionStats) {
				for _, h := range d.hooks {
					if h.SessionEnd != nil {
						h.SessionEnd(caseName, s)
					}
				}
			},
			Drop: func(origin netapi.Addr, reason error) {
				for _, h := range d.hooks {
					if h.Dropped != nil {
						h.Dropped(caseName, origin, reason)
					}
				}
			},
		}))
	}
	eng, err := engine.New(d.node, c.Merged, c.Codecs, opts...)
	if err != nil {
		return nil, err
	}
	if err := eng.StartManaged(); err != nil {
		return nil, err
	}
	d.logeach("provision: deployed case %s (generation %d)", name, c.Generation)
	// The Deployed hook is fired by Sync after d.mu is released.
	return &deployment{name: name, compiled: c, eng: eng}, nil
}

// rebindLocked reconciles the shared listeners with the deployed
// cases' entry colors: existing listeners get fresh entry-point sets,
// new colors are bound, orphaned listeners are returned for closing.
// Caller holds d.mu.
func (d *Dispatcher) rebindLocked() ([]netapi.Closer, error) {
	type spec struct {
		color  automata.Color
		points []entryPoint
	}
	needed := map[string]*spec{}
	for _, dep := range d.deployed {
		init := dep.compiled.Program[0]
		for proto, color := range dep.compiled.Entries {
			key := color.Key()
			s := needed[key]
			if s == nil {
				s = &spec{color: color}
				needed[key] = s
			}
			s.points = append(s.points, entryPoint{
				dep:       dep,
				proto:     proto,
				initiator: proto == init.Protocol,
				initMsg:   init.Message,
			})
		}
	}
	for _, s := range needed {
		sort.Slice(s.points, func(i, j int) bool {
			if s.points[i].dep.name != s.points[j].dep.name {
				return s.points[i].dep.name < s.points[j].dep.name
			}
			return s.points[i].proto < s.points[j].proto
		})
	}

	// Both walks are sorted: listener close and bind order decides
	// which socket gets which ephemeral port, and a simulated run's
	// event trace must not depend on map iteration.
	var stale []netapi.Closer
	for _, key := range sortedMapKeys(d.listeners) {
		l := d.listeners[key]
		if s, ok := needed[key]; ok {
			l.points = s.points // refresh candidates on the kept binding
			l.sigs, l.sigOK = deriveSignatures(s.points)
			continue
		}
		stale = append(stale, l.closer)
		delete(d.listeners, key)
	}
	for _, key := range sortedMapKeys(needed) {
		s := needed[key]
		if _, ok := d.listeners[key]; ok {
			continue
		}
		l := &listener{color: s.color, points: s.points}
		l.sigs, l.sigOK = deriveSignatures(s.points)
		// A color carries one protocol's network semantics, so every
		// candidate shares the framer; take it from the first.
		framer := s.points[0].dep.compiled.Codecs[s.points[0].proto].Framer
		key := key
		closer, err := d.net.Listen(s.color, framer, func(data []byte, src netengine.Source, lease *netapi.Buffer) {
			d.dispatch(key, data, src, lease)
		})
		if err != nil {
			return stale, fmt.Errorf("provision: binding %s: %w", s.color, err)
		}
		l.closer = closer
		d.listeners[key] = l
	}
	return stale, nil
}

// deriveSignatures derives the per-protocol signatures for a
// listener's entry points. ok is true only when every candidate
// protocol yields one — the precondition for the parse-free fast path.
func deriveSignatures(points []entryPoint) (map[string]*protoSignature, bool) {
	sigs := make(map[string]*protoSignature, 2)
	ok := true
	for _, p := range points {
		if _, seen := sigs[p.proto]; seen {
			continue
		}
		sig := deriveSignature(p.dep.compiled.Codecs[p.proto].Spec)
		sigs[p.proto] = sig
		if sig == nil {
			ok = false
		}
	}
	return sigs, ok
}

// closeAll closes stale engines and listeners outside the lock.
// Listeners close first so no payload races a draining engine.
func (d *Dispatcher) closeAll(deps []*deployment, listeners []netapi.Closer) {
	for _, c := range listeners {
		_ = c.Close()
	}
	for _, dep := range deps {
		_ = dep.eng.Close()
		d.logeach("provision: undeployed case %s", dep.name)
		d.hookUndeployed(dep.name)
	}
}

// dispatch classifies one inbound payload and hands it to the engine
// of the case it belongs to:
//
//  1. the payload is classified per candidate protocol — on the fast
//     path by the signature index (a byte-prefix check derived from the
//     MDL specs, no parsing), falling back to trial-parsing with the
//     candidate entry parsers only when some candidate protocol has no
//     derivable signature (once per protocol either way — cases of one
//     registry share specs, so the result is case-independent);
//  2. cases whose initiator entry message matches win first — this is
//     the request that opens a session;
//  3. otherwise cases with a live session awaiting the message win
//     (mid-session entry payloads, e.g. the description GET the
//     bridge serves in reverse-UPnP cases);
//  4. a payload matching several cases is dispatched to the
//     lexicographically first case name — deterministic — and the
//     ambiguity is counted and logged.
//
// Both paths implement the same decision procedure, so a payload
// classifies identically on either; the only difference is that the
// fast path defers body validation to the chosen engine's parser.
func (d *Dispatcher) dispatch(colorKey string, data []byte, src netengine.Source, lease *netapi.Buffer) {
	// The dispatcher owns the payload's buffer lease until it hands the
	// payload to an engine (Inject takes ownership on every path).
	release := func() {
		if lease != nil {
			lease.Release()
		}
	}
	if d.egress.Contains(src.Addr) {
		// Our own multicast request echoed back by the group: an
		// opposite-direction case must not bridge it.
		release()
		d.statsMu.Lock()
		d.counters.Suppressed++
		d.statsMu.Unlock()
		return
	}
	d.mu.RLock()
	l := d.listeners[colorKey]
	if l == nil || d.closed {
		d.mu.RUnlock()
		release()
		return
	}
	// rebind replaces these, never mutates them in place.
	points, sigs, sigOK := l.points, l.sigs, l.sigOK
	d.mu.RUnlock()

	var matches []match
	var anyClassified bool
	fast := sigOK && !d.trialParseOnly
	t0 := time.Now()
	if fast {
		matches, anyClassified = d.classifyFast(points, sigs, data, src.Addr.IP)
	} else {
		matches, anyClassified = d.classifySlow(points, data, src.Addr.IP)
	}
	classifyDur := time.Since(t0)
	if fast {
		d.classifyHists[0].Record(classifyDur)
	} else {
		d.classifyHists[1].Record(classifyDur)
	}

	d.statsMu.Lock()
	if fast {
		d.counters.FastPath++
	} else {
		d.counters.SlowPath++
	}
	if len(matches) == 0 {
		if anyClassified {
			d.counters.Unroutable++
		} else {
			d.counters.ParseErrors++
		}
		d.statsMu.Unlock()
		release()
		return
	}
	chosen := matches[0]
	d.counters.Dispatched++
	if len(matches) > 1 {
		d.counters.Ambiguous++
	}
	d.statsMu.Unlock()
	// The chosen case owns the per-case classify histogram: the
	// dispatcher measured the decision, the engine files it.
	chosen.pt.dep.eng.RecordClassify(classifyDur)
	ev := ClassifyEvent{
		Case:     chosen.pt.dep.name,
		Protocol: chosen.pt.proto,
		Message:  chosen.msg,
		Origin:   src.Addr,
		FastPath: fast,
	}
	if len(matches) > 1 {
		names := make([]string, len(matches))
		for i, m := range matches {
			names[i] = m.pt.dep.name
		}
		ev.Ambiguous = true
		ev.Candidates = names
		ev.Err = serrors.Mark(
			fmt.Errorf("provision: payload from %s on %s matches cases %s; dispatched to %s",
				src.Addr, chosen.pt.proto, strings.Join(names, ", "), chosen.pt.dep.name),
			serrors.ErrAmbiguousPayload)
		d.logeach("provision: payload from %s on %s matches cases %s; dispatching to %s",
			src.Addr, chosen.pt.proto, strings.Join(names, ", "), chosen.pt.dep.name)
	}
	d.hookClassified(ev)
	if err := chosen.pt.dep.eng.Inject(chosen.pt.proto, data, src, lease); err != nil {
		// The chosen engine refused outright — it closed between
		// classification and delivery (e.g. it finished draining ahead
		// of its siblings during Shutdown). While the dispatcher as a
		// whole is still draining, that refusal IS a drain rejection:
		// tag it ErrDraining so observers asserting the documented
		// drain contract see every late arrival, whichever engine it
		// classified to.
		if d.State() == engine.StateDraining {
			err = serrors.Mark(err, serrors.ErrDraining)
		}
		d.statsMu.Lock()
		// The payload was never handed to an engine after all: keep
		// Dispatched meaning exactly that.
		d.counters.Dispatched--
		d.counters.Rejected++
		d.statsMu.Unlock()
		d.hookDropped(chosen.pt.dep.name, src.Addr, err)
	}
}

// match is one classified candidate: the entry point plus the message
// name the payload classified as under that point's protocol.
type match struct {
	pt  entryPoint
	msg string
}

// classifyFast resolves the matching entry points from the signature
// index alone: no parsing, no allocation beyond the match list.
func (d *Dispatcher) classifyFast(points []entryPoint, sigs map[string]*protoSignature, data []byte, srcIP string) (matches []match, anyClassified bool) {
	// Classification per protocol is memoized in a tiny linear cache —
	// listeners host at most a handful of protocols.
	type res struct {
		proto string
		name  string
		ok    bool
	}
	var cache [4]res
	nc := 0
	classify := func(proto string) (string, bool) {
		for i := 0; i < nc; i++ {
			if cache[i].proto == proto {
				return cache[i].name, cache[i].ok
			}
		}
		name, ok := sigs[proto].Classify(data)
		if nc < len(cache) {
			cache[nc] = res{proto: proto, name: name, ok: ok}
			nc++
		}
		return name, ok
	}
	for _, p := range points {
		name, ok := classify(p.proto)
		if !ok {
			continue
		}
		anyClassified = true
		if p.initiator && name == p.initMsg {
			matches = append(matches, match{pt: p, msg: name})
		}
	}
	if len(matches) == 0 {
		for _, p := range points {
			if name, ok := classify(p.proto); ok && p.dep.eng.AwaitsEntry(p.proto, name, srcIP) {
				matches = append(matches, match{pt: p, msg: name})
			}
		}
	}
	return matches, anyClassified
}

// classifySlow resolves the matching entry points by trial-parsing the
// payload with each candidate protocol's entry parser (once per
// protocol). Parsed messages are classification scratch only — the
// chosen engine re-parses from the raw payload — so they are recycled
// before returning.
func (d *Dispatcher) classifySlow(points []entryPoint, data []byte, srcIP string) (matches []match, anyParsed bool) {
	type outcome struct {
		msg *message.Message
		ok  bool
	}
	parsed := map[string]outcome{}
	parse := func(p entryPoint) outcome {
		o, seen := parsed[p.proto]
		if !seen {
			m, err := p.dep.compiled.Codecs[p.proto].Parser.Parse(data)
			o = outcome{msg: m, ok: err == nil}
			parsed[p.proto] = o
		}
		return o
	}
	defer func() {
		for _, o := range parsed {
			if o.ok {
				o.msg.Release()
			}
		}
	}()

	for _, p := range points {
		o := parse(p)
		if !o.ok {
			continue
		}
		anyParsed = true
		if p.initiator && o.msg.Name == p.initMsg {
			matches = append(matches, match{pt: p, msg: o.msg.Name})
		}
	}
	if len(matches) == 0 {
		for _, p := range points {
			if o := parse(p); o.ok && p.dep.eng.AwaitsEntry(p.proto, o.msg.Name, srcIP) {
				matches = append(matches, match{pt: p, msg: o.msg.Name})
			}
		}
	}
	return matches, anyParsed
}

// Cases lists the currently deployed case names, sorted.
func (d *Dispatcher) Cases() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.deployed))
	for n := range d.deployed {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Engine returns the live engine for a deployed case.
func (d *Dispatcher) Engine(caseName string) (*engine.Engine, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	dep, ok := d.deployed[caseName]
	if !ok {
		return nil, false
	}
	return dep.eng, true
}

// Stats snapshots the per-case engine counters. After Close it keeps
// returning the final counters captured at teardown.
func (d *Dispatcher) Stats() map[string]engine.Counters {
	d.mu.RLock()
	deps := make([]*deployment, 0, len(d.deployed))
	for _, dep := range d.deployed {
		deps = append(deps, dep)
	}
	final := d.final
	d.mu.RUnlock()
	out := make(map[string]engine.Counters, len(deps)+len(final))
	for name, c := range final {
		out[name] = c
	}
	for _, dep := range deps {
		out[dep.name] = dep.eng.Stats()
	}
	return out
}

// DispatchStats snapshots the classification counters.
func (d *Dispatcher) DispatchStats() DispatchCounters {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.counters
}

// Latency snapshots the per-case staged latency histograms. After
// Close it keeps returning the final dumps captured at teardown,
// mirroring Stats.
func (d *Dispatcher) Latency() map[string]engine.LatencyDump {
	d.mu.RLock()
	deps := make([]*deployment, 0, len(d.deployed))
	for _, dep := range d.deployed {
		deps = append(deps, dep)
	}
	final := d.finalLatency
	d.mu.RUnlock()
	out := make(map[string]engine.LatencyDump, len(deps)+len(final))
	for name, l := range final {
		out[name] = l
	}
	for _, dep := range deps {
		out[dep.name] = dep.eng.Latency()
	}
	return out
}

// Lanes snapshots the per-case ingest-lane accounting. After Close it
// keeps returning the final dumps captured at teardown, mirroring
// Stats and Latency.
func (d *Dispatcher) Lanes() map[string]engine.LaneDump {
	d.mu.RLock()
	deps := make([]*deployment, 0, len(d.deployed))
	for _, dep := range d.deployed {
		deps = append(deps, dep)
	}
	final := d.finalLanes
	d.mu.RUnlock()
	out := make(map[string]engine.LaneDump, len(deps)+len(final))
	for name, l := range final {
		out[name] = l
	}
	for _, dep := range deps {
		out[dep.name] = dep.eng.Lanes()
	}
	return out
}

// ClassifyLatency snapshots the classification-decision histograms for
// the signature fast path and the trial-parse slow path.
func (d *Dispatcher) ClassifyLatency() (fast, slow hist.Snapshot) {
	return d.classifyHists[0].Snapshot(), d.classifyHists[1].Snapshot()
}

// LiveSessions lists each deployed case's currently registered
// sessions. Closed cases contribute nothing (their sessions are gone).
func (d *Dispatcher) LiveSessions() map[string][]engine.LiveSession {
	d.mu.RLock()
	deps := make([]*deployment, 0, len(d.deployed))
	for _, dep := range d.deployed {
		deps = append(deps, dep)
	}
	d.mu.RUnlock()
	out := make(map[string][]engine.LiveSession, len(deps))
	for _, dep := range deps {
		if ls := dep.eng.LiveSessions(); len(ls) > 0 {
			out[dep.name] = ls
		}
	}
	return out
}

// Node returns the bridge host node.
func (d *Dispatcher) Node() netapi.Node { return d.node }

// Close undeploys everything immediately: listeners first (stopping
// inflow), then every engine, tearing down their sessions. For a
// graceful stop that lets live sessions finish, use Shutdown.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.state.Store(int32(engine.StateClosed))
	close(d.quit)
	var deps []*deployment
	var closers []netapi.Closer
	for _, l := range d.listeners {
		closers = append(closers, l.closer)
	}
	for _, dep := range d.deployed {
		deps = append(deps, dep)
	}
	d.listeners = map[string]*listener{}
	d.deployed = map[string]*deployment{}
	// A provisional snapshot is taken in the same critical section that
	// empties the deployment map, so Stats/Metrics never dip to zero
	// while the engines tear down; the snapshot is refreshed with the
	// true final counters (teardown failures included) once closeAll
	// returns.
	provisional := make(map[string]engine.Counters, len(deps))
	provisionalLat := make(map[string]engine.LatencyDump, len(deps))
	provisionalLanes := make(map[string]engine.LaneDump, len(deps))
	for _, dep := range deps {
		provisional[dep.name] = dep.eng.Stats()
		provisionalLat[dep.name] = dep.eng.Latency()
		provisionalLanes[dep.name] = dep.eng.Lanes()
	}
	d.final = provisional
	d.finalLatency = provisionalLat
	d.finalLanes = provisionalLanes
	d.mu.Unlock()
	d.closeAll(deps, closers)
	final := make(map[string]engine.Counters, len(deps))
	finalLat := make(map[string]engine.LatencyDump, len(deps))
	finalLanes := make(map[string]engine.LaneDump, len(deps))
	for _, dep := range deps {
		final[dep.name] = dep.eng.Stats()
		finalLat[dep.name] = dep.eng.Latency()
		finalLanes[dep.name] = dep.eng.Lanes()
	}
	d.mu.Lock()
	d.final = final
	d.finalLatency = finalLat
	d.finalLanes = finalLanes
	d.mu.Unlock()
	if d.ownsNode {
		return d.node.Close()
	}
	return nil
}

// Shutdown drains the dispatcher gracefully: every hosted engine stops
// admitting new sessions immediately (late initiator requests are
// refused and reported through the Dropped hooks with an error marked
// serrors.ErrDraining), live sessions keep receiving their mid-program
// entry payloads and run to completion, and once every engine has
// drained — or ctx has expired, whichever comes first — the dispatcher
// closes fully. The returned error wraps ctx.Err() if any engine was
// torn down with sessions still live. Shutdown of an already closed
// dispatcher returns nil.
func (d *Dispatcher) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	for {
		s := d.state.Load()
		if s >= int32(engine.StateDraining) {
			break
		}
		if d.state.CompareAndSwap(s, int32(engine.StateDraining)) {
			break
		}
	}
	deps := make([]*deployment, 0, len(d.deployed))
	for _, dep := range d.deployed {
		deps = append(deps, dep)
	}
	d.mu.Unlock()

	// Drain every engine concurrently: each refuses new sessions from
	// this point on, and the wait is bounded by the slowest engine (or
	// ctx). Listeners stay bound during the drain so live sessions
	// still receive the entry payloads they are waiting for.
	errs := make([]error, len(deps))
	var wg sync.WaitGroup
	for i, dep := range deps {
		wg.Add(1)
		go func(i int, dep *deployment) {
			defer wg.Done()
			errs[i] = dep.eng.Shutdown(ctx)
		}(i, dep)
	}
	wg.Wait()
	cerr := d.Close()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	return cerr
}

// BeginDrain flips the dispatcher and every hosted engine into the
// draining state without blocking: from the moment it returns, new
// initiator requests are refused with serrors.ErrDraining while live
// sessions keep running. It is the non-blocking prefix of Shutdown,
// for callers — the DST scenario engine — that must start a drain from
// inside a simulator event callback and let the event loop run the
// sessions to completion before closing. No-op once closed.
func (d *Dispatcher) BeginDrain() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	for {
		s := d.state.Load()
		if s >= int32(engine.StateDraining) {
			break
		}
		if d.state.CompareAndSwap(s, int32(engine.StateDraining)) {
			break
		}
	}
	deps := make([]*deployment, 0, len(d.deployed))
	for _, dep := range d.deployed {
		deps = append(deps, dep)
	}
	d.mu.Unlock()
	for _, dep := range deps {
		dep.eng.BeginDrain()
	}
}

// Probe snapshots every hosted engine's internal resource accounting
// (see engine.Probe), keyed by case name — the DST invariant surface.
func (d *Dispatcher) Probe() map[string]engine.Probe {
	d.mu.Lock()
	deps := make([]*deployment, 0, len(d.deployed))
	for _, dep := range d.deployed {
		deps = append(deps, dep)
	}
	d.mu.Unlock()
	out := make(map[string]engine.Probe, len(deps))
	for _, dep := range deps {
		out[dep.name] = dep.eng.Probe()
	}
	return out
}
