// Package bitio provides bit-granular readers and writers over byte
// slices. Binary MDL specifications describe field lengths in bits
// (paper Fig. 7: an SLP Version field is 8 bits, MessageLength 24 bits),
// so parsers and composers need sub-byte addressing.
//
// Bits are numbered most-significant first within a byte, matching
// network wire order for the protocols modelled in the paper.
package bitio

import (
	"errors"
	"fmt"
	"sync"
)

// ErrShortData is returned when a read runs past the end of input.
var ErrShortData = errors.New("bitio: not enough data")

// Reader reads bit fields from a byte slice.
type Reader struct {
	data []byte
	pos  int // absolute bit position
}

// NewReader returns a Reader over data. The Reader does not copy data;
// callers must not mutate it while reading.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Init (re)points the reader at data and rewinds it — the
// allocation-free alternative to NewReader for value-embedded readers.
func (r *Reader) Init(data []byte) {
	r.data = data
	r.pos = 0
}

// Pos returns the current absolute bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.data)*8 - r.pos }

// Aligned reports whether the position is on a byte boundary.
func (r *Reader) Aligned() bool { return r.pos%8 == 0 }

// ReadBits reads n bits (1..64) as an unsigned big-endian integer.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 1 || n > 64 {
		return 0, fmt.Errorf("bitio: invalid bit count %d", n)
	}
	if r.Remaining() < n {
		return 0, fmt.Errorf("%w: need %d bits, have %d", ErrShortData, n, r.Remaining())
	}
	// Byte-aligned whole-byte reads are the overwhelmingly common case
	// (MDL fields are usually 8/16/24/32 bits on byte boundaries).
	if r.pos%8 == 0 && n%8 == 0 {
		var v uint64
		start := r.pos / 8
		for i := 0; i < n/8; i++ {
			v = v<<8 | uint64(r.data[start+i])
		}
		r.pos += n
		return v, nil
	}
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := r.pos / 8
		bitIdx := 7 - r.pos%8
		bit := (r.data[byteIdx] >> bitIdx) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// ReadBytes reads n whole bytes. The read need not start byte-aligned.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitio: negative byte count %d", n)
	}
	if r.Remaining() < n*8 {
		return nil, fmt.Errorf("%w: need %d bytes, have %d bits", ErrShortData, n, r.Remaining())
	}
	out := make([]byte, n)
	if r.Aligned() {
		start := r.pos / 8
		copy(out, r.data[start:start+n])
		r.pos += n * 8
		return out, nil
	}
	for i := 0; i < n; i++ {
		b, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(b)
	}
	return out, nil
}

// ReadAll returns every remaining byte. It fails if the position is not
// byte aligned (variable tails are only meaningful on byte boundaries).
func (r *Reader) ReadAll() ([]byte, error) {
	if !r.Aligned() {
		return nil, fmt.Errorf("bitio: ReadAll at unaligned bit position %d", r.pos)
	}
	out := make([]byte, len(r.data)-r.pos/8)
	copy(out, r.data[r.pos/8:])
	r.pos = len(r.data) * 8
	return out, nil
}

// Skip advances the position by n bits.
func (r *Reader) Skip(n int) error {
	if r.Remaining() < n {
		return fmt.Errorf("%w: skip %d bits, have %d", ErrShortData, n, r.Remaining())
	}
	r.pos += n
	return nil
}

// Writer assembles a byte slice from bit fields.
type Writer struct {
	data []byte
	pos  int // absolute bit position
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// AcquireWriter returns an empty Writer from the pool; pair with
// ReleaseWriter. Pooled writers keep their grown buffers, so composers
// on the steady-state path stop paying per-message buffer growth.
func AcquireWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// ReleaseWriter resets w and returns it to the pool. The caller must
// not use w (or retain slices from a previous Bytes call's copy — those
// are safe, being copies) afterwards.
func ReleaseWriter(w *Writer) {
	w.Reset()
	writerPool.Put(w)
}

// Reset rewinds the writer, keeping the allocated buffer.
func (w *Writer) Reset() {
	w.data = w.data[:0]
	w.pos = 0
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.pos }

// Aligned reports whether the position is on a byte boundary.
func (w *Writer) Aligned() bool { return w.pos%8 == 0 }

func (w *Writer) grow(bits int) {
	needBytes := (w.pos + bits + 7) / 8
	if needBytes <= len(w.data) {
		return
	}
	if needBytes <= cap(w.data) {
		// Re-exposed capacity may hold stale bits from a previous use;
		// zero it so unwritten padding bits stay zero.
		old := len(w.data)
		w.data = w.data[:needBytes]
		for i := old; i < needBytes; i++ {
			w.data[i] = 0
		}
		return
	}
	nd := make([]byte, needBytes, max(2*needBytes, 64))
	copy(nd, w.data)
	w.data = nd
}

// WriteBits writes the low n bits of v (1..64), most significant first.
func (w *Writer) WriteBits(v uint64, n int) error {
	if n < 1 || n > 64 {
		return fmt.Errorf("bitio: invalid bit count %d", n)
	}
	if n < 64 && v >= 1<<uint(n) {
		return fmt.Errorf("bitio: value %d does not fit in %d bits", v, n)
	}
	w.grow(n)
	for i := n - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		byteIdx := w.pos / 8
		bitIdx := 7 - w.pos%8
		if bit == 1 {
			w.data[byteIdx] |= 1 << bitIdx
		} else {
			w.data[byteIdx] &^= 1 << bitIdx
		}
		w.pos++
	}
	return nil
}

// WriteBytes writes whole bytes at the current position.
func (w *Writer) WriteBytes(p []byte) error {
	if w.Aligned() {
		w.grow(len(p) * 8)
		copy(w.data[w.pos/8:], p)
		w.pos += len(p) * 8
		return nil
	}
	for _, b := range p {
		if err := w.WriteBits(uint64(b), 8); err != nil {
			return err
		}
	}
	return nil
}

// Bytes returns the assembled bytes. A trailing partial byte is padded
// with zero bits. The returned slice is a copy.
func (w *Writer) Bytes() []byte {
	out := make([]byte, (w.pos+7)/8)
	copy(out, w.data)
	return out
}

// PatchBits overwrites n bits at absolute bit position pos with the low
// n bits of v, without moving the write position. Used by composers to
// fill in length fields computed after the message body is known
// (paper §IV-A function fields such as f-length).
func (w *Writer) PatchBits(pos int, v uint64, n int) error {
	if pos < 0 || pos+n > w.pos {
		return fmt.Errorf("bitio: patch [%d,%d) outside written range [0,%d)", pos, pos+n, w.pos)
	}
	if n < 1 || n > 64 {
		return fmt.Errorf("bitio: invalid bit count %d", n)
	}
	if n < 64 && v >= 1<<uint(n) {
		return fmt.Errorf("bitio: value %d does not fit in %d bits", v, n)
	}
	for i := n - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		byteIdx := pos / 8
		bitIdx := 7 - pos%8
		if bit == 1 {
			w.data[byteIdx] |= 1 << bitIdx
		} else {
			w.data[byteIdx] &^= 1 << bitIdx
		}
		pos++
	}
	return nil
}
