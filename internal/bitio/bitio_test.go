package bitio

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadBitsBasic(t *testing.T) {
	r := NewReader([]byte{0b10110100, 0b01100001})
	tests := []struct {
		n    int
		want uint64
	}{
		{1, 1}, {3, 0b011}, {4, 0b0100}, {8, 0b01100001},
	}
	for i, tt := range tests {
		got, err := r.ReadBits(tt.n)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got != tt.want {
			t.Fatalf("step %d: got %b, want %b", i, got, tt.want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}

func TestReadBitsErrors(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := r.ReadBits(65); err == nil {
		t.Error("n=65 should fail")
	}
	if _, err := r.ReadBits(9); !errors.Is(err, ErrShortData) {
		t.Errorf("want ErrShortData, got %v", err)
	}
}

func TestReadBytesAligned(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestReadBytesUnaligned(t *testing.T) {
	// 4-bit offset: bytes read should straddle boundaries.
	r := NewReader([]byte{0xAB, 0xCD, 0xEF})
	if _, err := r.ReadBits(4); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0xBC, 0xDE}) {
		t.Fatalf("got %x", got)
	}
}

func TestReadAll(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if _, err := r.ReadBytes(1); err != nil {
		t.Fatal(err)
	}
	rest, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, []byte{2, 3}) {
		t.Fatalf("rest = %v", rest)
	}
	if r.Remaining() != 0 {
		t.Fatal("should be drained")
	}
	// Unaligned ReadAll must fail.
	r2 := NewReader([]byte{1, 2})
	if _, err := r2.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.ReadAll(); err == nil {
		t.Fatal("unaligned ReadAll should fail")
	}
}

func TestSkip(t *testing.T) {
	r := NewReader([]byte{0x0F})
	if err := r.Skip(4); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadBits(4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x0F {
		t.Fatalf("v = %x", v)
	}
	if err := r.Skip(1); !errors.Is(err, ErrShortData) {
		t.Fatalf("skip past end: %v", err)
	}
}

func TestWriteBitsBasic(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0b101, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(0b10100, 5); err != nil {
		t.Fatal(err)
	}
	got := w.Bytes()
	if !bytes.Equal(got, []byte{0b10110100}) {
		t.Fatalf("got %08b", got)
	}
}

func TestWriteBitsOverflow(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(4, 2); err == nil {
		t.Fatal("4 does not fit in 2 bits")
	}
	if err := w.WriteBits(1, 0); err == nil {
		t.Fatal("n=0 invalid")
	}
	if err := w.WriteBits(1, 65); err == nil {
		t.Fatal("n=65 invalid")
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0xA, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBytes([]byte{0xBC}); err != nil {
		t.Fatal(err)
	}
	got := w.Bytes()
	if !bytes.Equal(got, []byte{0xAB, 0xC0}) {
		t.Fatalf("got %x", got)
	}
}

func TestPatchBits(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0, 16); err != nil { // placeholder
		t.Fatal(err)
	}
	if err := w.WriteBytes([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := w.PatchBits(0, 3, 16); err != nil {
		t.Fatal(err)
	}
	got := w.Bytes()
	want := append([]byte{0, 3}, []byte("abc")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Patch outside written range fails.
	if err := w.PatchBits(100, 1, 8); err == nil {
		t.Fatal("patch past end should fail")
	}
	if err := w.PatchBits(0, 9, 2); err == nil {
		t.Fatal("overflow patch should fail")
	}
}

// Property: any sequence of (value,width) writes reads back identically.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%32) + 1
		type fieldSpec struct {
			v    uint64
			bits int
		}
		fields := make([]fieldSpec, n)
		w := NewWriter()
		for i := range fields {
			bits := rng.Intn(64) + 1
			var v uint64
			if bits == 64 {
				v = rng.Uint64()
			} else {
				v = rng.Uint64() % (1 << uint(bits))
			}
			fields[i] = fieldSpec{v, bits}
			if err := w.WriteBits(v, bits); err != nil {
				return false
			}
		}
		r := NewReader(w.Bytes())
		for _, fs := range fields {
			got, err := r.ReadBits(fs.bits)
			if err != nil || got != fs.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: writing bytes then reading bytes is identity at any bit offset.
func TestQuickBytesRoundtripAtOffset(t *testing.T) {
	f := func(data []byte, offset uint8) bool {
		off := int(offset % 8)
		w := NewWriter()
		if off > 0 {
			if err := w.WriteBits(0, off); err != nil {
				return false
			}
		}
		if err := w.WriteBytes(data); err != nil {
			return false
		}
		r := NewReader(w.Bytes())
		if off > 0 {
			if _, err := r.ReadBits(off); err != nil {
				return false
			}
		}
		got, err := r.ReadBytes(len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
