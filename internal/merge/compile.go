package merge

import (
	"fmt"
	"strings"

	"starlink/internal/automata"
)

// StepKind enumerates the operations of a compiled merged automaton.
type StepKind int

// Step kinds.
const (
	StepInvalid StepKind = iota
	StepRecv             // wait for an abstract message (?m)
	StepSend             // translate, compose and send a message (!m)
	StepDelta            // take a δ-transition: run λ actions, switch automata
)

// String renders the kind.
func (k StepKind) String() string {
	switch k {
	case StepRecv:
		return "recv"
	case StepSend:
		return "send"
	case StepDelta:
		return "δ"
	default:
		return "invalid"
	}
}

// Step is one operation of the compiled program. The automata engine
// executes a session by walking the step list with a program counter —
// the runtime form of the merged automaton's single δ-chained path.
type Step struct {
	Kind StepKind
	// Protocol owning the state where the op happens.
	Protocol string
	// State is the op's source state.
	State string
	// Color of the source state (recv: where to listen / how long to
	// collect; send: how to transmit).
	Color automata.Color
	// Message is the abstract message name for recv/send.
	Message string
	// ReplyToOrigin marks sends addressed to the session's origin.
	ReplyToOrigin bool
	// Delta carries the δ-transition for StepDelta.
	Delta *Delta
}

// String renders a compact description, e.g. "SLP:s0 recv SLPSrvRequest".
func (s Step) String() string {
	switch s.Kind {
	case StepDelta:
		return fmt.Sprintf("%s:%s δ-> %s", s.Protocol, s.State, s.Delta.To)
	default:
		return fmt.Sprintf("%s:%s %s %s", s.Protocol, s.State, s.Kind, s.Message)
	}
}

// Compile linearises the merged automaton into the execution order a
// session follows, simulating the paper's operational rules:
//
//   - arriving at a state via a send/receive transition, a pending
//     (unused) δ-transition is taken immediately — this is how a bridge
//     state (bi-colored node of Fig. 4) hands over to the next protocol;
//   - arriving via a δ-transition (a return), execution continues with
//     the state's own transitions — the queued output is sent;
//   - each transition and each δ runs exactly once.
//
// Compile fails if the walk is nondeterministic (a state offers more
// than one unused transition), incomplete (transitions or δs never
// executed), or does not end in a final state.
//
// The result (program or error) is memoized on the Merged value: load
// validation, engine deployment and entry indexing all share one
// compilation. Callers must treat the returned slice as read-only.
func (m *Merged) Compile() ([]Step, error) {
	m.compileOnce.Do(func() {
		m.program, m.compileErr = m.compileProgram()
		if m.compileErr == nil && m.Logic != nil {
			// Steady-state sessions apply translation logic per send;
			// build its per-target index here, at case-compile time.
			m.Logic.Precompile()
		}
	})
	return m.program, m.compileErr
}

// Recompile runs the compiler from scratch, bypassing and leaving
// untouched the memoized program. It exists for diagnostics and
// benchmarks that need the true compilation cost; everything on the
// runtime path goes through Compile.
func (m *Merged) Recompile() ([]Step, error) { return m.compileProgram() }

func (m *Merged) compileProgram() ([]Step, error) {
	init, ok := m.AutomatonFor(m.Initiator)
	if !ok {
		return nil, fmt.Errorf("merge: %s: initiator %q missing", m.Name, m.Initiator)
	}
	type pos struct {
		a *automata.Automaton
		s string
	}
	cur := pos{init, init.Initial}
	usedDeltas := map[*Delta]bool{}
	usedTrans := map[*automata.Transition]bool{}
	var program []Step
	justDelta := false

	colorOf := func(a *automata.Automaton, state string) automata.Color {
		st, _ := a.StateByName(state)
		if st == nil {
			return automata.Color{}
		}
		return st.Color
	}

	for steps := 0; ; steps++ {
		if steps > 10000 {
			return nil, fmt.Errorf("merge: %s: compilation did not terminate", m.Name)
		}
		// δ first, unless we just arrived via one.
		if !justDelta {
			var pending *Delta
			for _, d := range m.Deltas {
				if !usedDeltas[d] && d.From.Protocol == cur.a.Protocol && d.From.State == cur.s {
					if pending != nil {
						return nil, fmt.Errorf("merge: %s: two unused δ-transitions leave %s:%s",
							m.Name, cur.a.Protocol, cur.s)
					}
					pending = d
				}
			}
			if pending != nil {
				usedDeltas[pending] = true
				program = append(program, Step{
					Kind: StepDelta, Protocol: cur.a.Protocol, State: cur.s,
					Color: colorOf(cur.a, cur.s), Delta: pending,
				})
				next, ok := m.AutomatonFor(pending.To.Protocol)
				if !ok {
					return nil, fmt.Errorf("merge: %s: δ to unknown automaton %q", m.Name, pending.To.Protocol)
				}
				cur = pos{next, pending.To.State}
				justDelta = true
				continue
			}
		}
		justDelta = false
		var next *automata.Transition
		for _, t := range cur.a.OutTransitions(cur.s) {
			if usedTrans[t] {
				continue
			}
			if next != nil {
				return nil, fmt.Errorf("merge: %s: nondeterministic choice at %s:%s (%s vs %s)",
					m.Name, cur.a.Protocol, cur.s, next.Label(), t.Label())
			}
			next = t
		}
		if next == nil {
			break // halted
		}
		usedTrans[next] = true
		kind := StepRecv
		if next.Action == automata.Send {
			kind = StepSend
		}
		program = append(program, Step{
			Kind: kind, Protocol: cur.a.Protocol, State: cur.s,
			Color: colorOf(cur.a, cur.s), Message: next.Message,
			ReplyToOrigin: next.ReplyToOrigin,
		})
		cur = pos{cur.a, next.To}
	}

	// Completeness checks.
	if !cur.a.IsFinal(cur.s) {
		return nil, fmt.Errorf("merge: %s: execution halts at non-final state %s:%s",
			m.Name, cur.a.Protocol, cur.s)
	}
	if len(usedDeltas) != len(m.Deltas) {
		var unused []string
		for _, d := range m.Deltas {
			if !usedDeltas[d] {
				unused = append(unused, d.From.String()+"->"+d.To.String())
			}
		}
		return nil, fmt.Errorf("merge: %s: δ-transitions never executed: %s", m.Name, strings.Join(unused, ", "))
	}
	for _, a := range m.Automata {
		for _, t := range a.Transitions {
			if !usedTrans[t] {
				return nil, fmt.Errorf("merge: %s: transition %s %s->%s never executed",
					m.Name, t.Label(), a.Protocol+":"+t.From, a.Protocol+":"+t.To)
			}
		}
	}
	if len(program) == 0 || program[0].Kind != StepRecv || program[0].Protocol != m.Initiator {
		return nil, fmt.Errorf("merge: %s: program must begin by receiving the initiator's request", m.Name)
	}
	return program, nil
}

// EntryProtocols returns, for each protocol whose first compiled step
// is a receive, the color it must listen on. These are the automata in
// server role: the initiator, plus e.g. the HTTP automaton when the
// bridge itself serves the device description in reverse-UPnP cases.
//
// The result is memoized alongside Compile's program; callers must
// treat the returned map as read-only.
func (m *Merged) EntryProtocols() (map[string]automata.Color, error) {
	m.entryOnce.Do(func() {
		program, err := m.Compile()
		if err != nil {
			m.entryErr = err
			return
		}
		out := map[string]automata.Color{}
		seen := map[string]bool{}
		for _, step := range program {
			if step.Kind == StepDelta {
				continue
			}
			if seen[step.Protocol] {
				continue
			}
			seen[step.Protocol] = true
			if step.Kind == StepRecv {
				out[step.Protocol] = step.Color
			}
		}
		m.entries = out
	})
	return m.entries, m.entryErr
}
