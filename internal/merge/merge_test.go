package merge

import (
	"strings"
	"testing"

	"starlink/internal/automata"
	"starlink/internal/mdl"
	"starlink/internal/translation"
	"starlink/internal/xpath"
)

func color(port string, group string) automata.Color {
	attrs := []automata.Attr{
		{Key: automata.AttrTransport, Value: "udp"},
		{Key: automata.AttrPort, Value: port},
		{Key: automata.AttrMode, Value: "async"},
	}
	if group != "" {
		attrs = append(attrs,
			automata.Attr{Key: automata.AttrMulticast, Value: "yes"},
			automata.Attr{Key: automata.AttrGroup, Value: group})
	} else {
		attrs = append(attrs, automata.Attr{Key: automata.AttrMulticast, Value: "no"})
	}
	return automata.NewColor(attrs...)
}

// slpA is the paper's Fig. 1 (server-side view: receive request, send reply).
func slpA() *automata.Automaton {
	c := color("427", "239.255.255.253")
	return &automata.Automaton{
		Protocol: "SLP",
		States:   []*automata.State{{Name: "s0", Color: c}, {Name: "s1", Color: c}},
		Initial:  "s0", Finals: []string{"s1"},
		Transitions: []*automata.Transition{
			{From: "s0", To: "s1", Action: automata.Receive, Message: "SLPSrvRequest"},
			{From: "s1", To: "s1", Action: automata.Send, Message: "SLPSrvReply", ReplyToOrigin: true},
		},
	}
}

// ssdpA is the paper's Fig. 2 (client-side view: send search, receive response).
func ssdpA() *automata.Automaton {
	c := color("1900", "239.255.255.250")
	return &automata.Automaton{
		Protocol: "SSDP",
		States: []*automata.State{
			{Name: "s0", Color: c}, {Name: "s1", Color: c}, {Name: "s2", Color: c},
		},
		Initial: "s0", Finals: []string{"s2"},
		Transitions: []*automata.Transition{
			{From: "s0", To: "s1", Action: automata.Send, Message: "SSDPMSearch"},
			{From: "s1", To: "s2", Action: automata.Receive, Message: "SSDPResponse"},
		},
	}
}

// httpA is the paper's Fig. 3.
func httpA() *automata.Automaton {
	c := automata.NewColor(
		automata.Attr{Key: automata.AttrTransport, Value: "tcp"},
		automata.Attr{Key: automata.AttrPort, Value: "80"},
		automata.Attr{Key: automata.AttrMode, Value: "sync"},
		automata.Attr{Key: automata.AttrMulticast, Value: "no"},
	)
	return &automata.Automaton{
		Protocol: "HTTP",
		States: []*automata.State{
			{Name: "s0", Color: c}, {Name: "s1", Color: c}, {Name: "s2", Color: c},
		},
		Initial: "s0", Finals: []string{"s2"},
		Transitions: []*automata.Transition{
			{From: "s0", To: "s1", Action: automata.Send, Message: "HTTPGet"},
			{From: "s1", To: "s2", Action: automata.Receive, Message: "HTTPOk"},
		},
	}
}

func ref(msg, label string) translation.FieldRef {
	return translation.FieldRef{
		Message: msg,
		Path:    xpath.MustCompile("/field/primitiveField[label='" + label + "']/value"),
	}
}

func someLogic() *translation.Logic {
	src := ref("SLPSrvRequest", "SRVType")
	src2 := ref("HTTPOk", "URLBase")
	src3 := ref("SLPSrvRequest", "XID")
	src4 := ref("SSDPResponse", "LOCATION")
	return &translation.Logic{Assignments: []*translation.Assignment{
		{Target: ref("SSDPMSearch", "ST"), Source: &src},
		{Target: ref("HTTPGet", "URI"), Source: &src4},
		{Target: ref("SLPSrvReply", "URLEntry"), Source: &src2},
		{Target: ref("SLPSrvReply", "XID"), Source: &src3},
	}}
}

// fig4 builds the paper's Fig. 4 merged automaton: SLP ⊗ SSDP ⊗ HTTP.
func fig4() *Merged {
	setHost := &translation.Action{Name: translation.ActionSetHost, Args: []translation.FieldRef{
		{Message: "SSDPResponse", Path: xpath.MustCompile("/field/structuredField[label='LOCATION']/primitiveField[label='address']/value")},
		{Message: "SSDPResponse", Path: xpath.MustCompile("/field/structuredField[label='LOCATION']/primitiveField[label='port']/value")},
	}}
	return &Merged{
		Name:      "slp-to-upnp",
		Initiator: "SLP",
		Automata:  []*automata.Automaton{slpA(), ssdpA(), httpA()},
		Deltas: []*Delta{
			{From: StateRef{"SLP", "s1"}, To: StateRef{"SSDP", "s0"}},
			{From: StateRef{"SSDP", "s2"}, To: StateRef{"HTTP", "s0"}, Actions: []*translation.Action{setHost}},
			{From: StateRef{"HTTP", "s2"}, To: StateRef{"SLP", "s1"}},
		},
		Equivalences: []Equivalence{
			{Output: "SSDPMSearch", Inputs: []string{"SLPSrvRequest"}},
			{Output: "HTTPGet", Inputs: []string{"SSDPResponse"}},
			{Output: "SLPSrvReply", Inputs: []string{"HTTPOk"}},
		},
		Logic: someLogic(),
	}
}

func TestValidateFig4(t *testing.T) {
	m := fig4()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.IsStronglyMerged() {
		t.Error("Fig. 4 is weakly merged, not strongly")
	}
	order := m.ChainOrder()
	if len(order) != 3 || order[0] != "SLP" || order[1] != "SSDP" || order[2] != "HTTP" {
		t.Fatalf("chain = %v", order)
	}
	names := m.MessageNames()
	if len(names) != 6 {
		t.Fatalf("message names = %v", names)
	}
}

func TestValidateConstraint2(t *testing.T) {
	// δ leaving a state with no incoming receive violates (2).
	m := fig4()
	m.Deltas[0].From = StateRef{"SLP", "s0"} // s0 has no incoming receive
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "constraint (2)") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateConstraint3(t *testing.T) {
	// Return δ into a state with no outgoing send violates (3):
	// SSDP s1 can only receive.
	m := fig4()
	m.Deltas[2] = &Delta{From: StateRef{"HTTP", "s2"}, To: StateRef{"SSDP", "s1"}}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "constraint (3)") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateNeitherConstraint(t *testing.T) {
	m := fig4()
	// Target neither initial nor source final.
	m.Deltas[1].From = StateRef{"SSDP", "s1"}
	m.Deltas[1].To = StateRef{"HTTP", "s1"}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "neither merge constraint") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateWeakMergeChain(t *testing.T) {
	// Removing the return δ breaks constraint (4): the initiator's
	// reply transition can never execute.
	m := fig4()
	m.Deltas = m.Deltas[:2]
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "never executed") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateNoInitiatorDelta(t *testing.T) {
	m := fig4()
	m.Initiator = "HTTP"
	m.Deltas = []*Delta{
		{From: StateRef{"SLP", "s1"}, To: StateRef{"SSDP", "s0"}},
	}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "never executed") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileFig4Program(t *testing.T) {
	m := fig4()
	program, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range program {
		got = append(got, s.String())
	}
	want := []string{
		"SLP:s0 recv SLPSrvRequest",
		"SLP:s1 δ-> SSDP:s0",
		"SSDP:s0 send SSDPMSearch",
		"SSDP:s1 recv SSDPResponse",
		"SSDP:s2 δ-> HTTP:s0",
		"HTTP:s0 send HTTPGet",
		"HTTP:s1 recv HTTPOk",
		"HTTP:s2 δ-> SLP:s1",
		"SLP:s1 send SLPSrvReply",
	}
	if len(got) != len(want) {
		t.Fatalf("program:\n%s", strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The final reply must be flagged reply-to-origin.
	last := program[len(program)-1]
	if !last.ReplyToOrigin {
		t.Fatal("final send must reply to origin")
	}
}

func TestEntryProtocols(t *testing.T) {
	m := fig4()
	entries, err := m.EntryProtocols()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
	c, ok := entries["SLP"]
	if !ok {
		t.Fatal("SLP entry missing")
	}
	if g, _ := c.Get(automata.AttrGroup); g != "239.255.255.253" {
		t.Fatalf("entry color = %v", c)
	}
}

func TestValidateMiscErrors(t *testing.T) {
	t.Run("single automaton", func(t *testing.T) {
		m := &Merged{Name: "x", Initiator: "SLP", Automata: []*automata.Automaton{slpA()}}
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "at least two") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate protocol", func(t *testing.T) {
		m := fig4()
		m.Automata = append(m.Automata, slpA())
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate automaton") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown initiator", func(t *testing.T) {
		m := fig4()
		m.Initiator = "CORBA"
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "not a member") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("delta within one automaton", func(t *testing.T) {
		m := fig4()
		m.Deltas[0].To = StateRef{"SLP", "s0"}
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "stays within") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("delta to unknown state", func(t *testing.T) {
		m := fig4()
		m.Deltas[0].To = StateRef{"SSDP", "ghost"}
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "unknown state") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("missing logic", func(t *testing.T) {
		m := fig4()
		m.Logic = nil
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "translation logic") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestParseStateRef(t *testing.T) {
	r, err := ParseStateRef("SLP:s1")
	if err != nil || r.Protocol != "SLP" || r.State != "s1" {
		t.Fatalf("r=%v err=%v", r, err)
	}
	for _, bad := range []string{"SLP", ":s1", "SLP:", ""} {
		if _, err := ParseStateRef(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
	if r.String() != "SLP:s1" {
		t.Fatalf("String = %q", r.String())
	}
}

const slpMiniMDL = `
<MDL protocol="SLP" dialect="binary">
 <Types><FID>Integer</FID><XID>Integer</XID><SRVTypeLength>Integer</SRVTypeLength><SRVType>String</SRVType>
  <URLLength>Integer</URLLength><URLEntry>String</URLEntry></Types>
 <Header type="SLP"><FID>8</FID><XID>16</XID></Header>
 <Message type="SLPSrvRequest" mandatory="SRVType"><Rule>FID=1</Rule>
  <SRVTypeLength>16</SRVTypeLength><SRVType>SRVTypeLength</SRVType></Message>
 <Message type="SLPSrvReply" mandatory="URLEntry,XID"><Rule>FID=2</Rule>
  <URLLength>16</URLLength><URLEntry>URLLength</URLEntry></Message>
</MDL>`

const ssdpMiniMDL = `
<MDL protocol="SSDP" dialect="text">
 <Types><Method>String</Method><URI>String</URI><Version>String</Version><ST>String</ST><LOCATION>URL</LOCATION></Types>
 <Header type="SSDP"><Method>32</Method><URI>32</URI><Version>13,10</Version><Fields>13,10:58</Fields></Header>
 <Message type="SSDPMSearch" mandatory="ST"><Rule>Method=M-SEARCH</Rule></Message>
 <Message type="SSDPResponse" mandatory="LOCATION"><Rule>Method=HTTP/1.1</Rule></Message>
</MDL>`

const httpMiniMDL = `
<MDL protocol="HTTP" dialect="text">
 <Types><Method>String</Method><URI>String</URI><Version>String</Version></Types>
 <Header type="HTTP"><Method>32</Method><URI>32</URI><Version>13,10</Version><Fields>13,10:58</Fields></Header>
 <Message type="HTTPGet" mandatory="URI"><Rule>Method=GET</Rule></Message>
 <Message type="HTTPOk" body="xml" mandatory="URLBase"><Rule>Method=HTTP/1.1</Rule></Message>
</MDL>`

func loadSpecs(t *testing.T) map[string]*mdl.Spec {
	t.Helper()
	out := map[string]*mdl.Spec{}
	for name, x := range map[string]string{"SLP": slpMiniMDL, "SSDP": ssdpMiniMDL, "HTTP": httpMiniMDL} {
		s, err := mdl.ParseXMLString(x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = s
	}
	return out
}

func TestCheckEquivalencesHolds(t *testing.T) {
	m := fig4()
	if err := m.CheckEquivalences(loadSpecs(t)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckEquivalencesFailsWithoutAssignment(t *testing.T) {
	m := fig4()
	// Drop the assignment feeding SLPSrvReply.URLEntry: ⊨ must fail for
	// the mandatory URLEntry field.
	var kept []*translation.Assignment
	for _, a := range m.Logic.Assignments {
		if a.Target.Message == "SLPSrvReply" {
			continue
		}
		kept = append(kept, a)
	}
	m.Logic = &translation.Logic{Assignments: kept}
	err := m.CheckEquivalences(loadSpecs(t))
	if err == nil || !strings.Contains(err.Error(), "no semantically equivalent source") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckEquivalencesUnknownMessages(t *testing.T) {
	m := fig4()
	m.Equivalences = []Equivalence{{Output: "Ghost", Inputs: []string{"SLPSrvRequest"}}}
	if err := m.CheckEquivalences(loadSpecs(t)); err == nil {
		t.Fatal("unknown output should fail")
	}
	m.Equivalences = []Equivalence{{Output: "SSDPMSearch", Inputs: []string{"Ghost"}}}
	if err := m.CheckEquivalences(loadSpecs(t)); err == nil {
		t.Fatal("unknown input should fail")
	}
}

func resolver() Resolver {
	return ResolverFunc(func(p string) (*automata.Automaton, error) {
		switch p {
		case "SLP":
			return slpA(), nil
		case "SSDP":
			return ssdpA(), nil
		case "HTTP":
			return httpA(), nil
		}
		return nil, &unknownProto{p}
	})
}

type unknownProto struct{ p string }

func (e *unknownProto) Error() string { return "unknown protocol " + e.p }

const fig4XML = `
<MergedAutomaton name="slp-to-upnp" initiator="SLP">
 <AutomatonRef protocol="SLP"/>
 <AutomatonRef protocol="SSDP"/>
 <AutomatonRef protocol="HTTP"/>
 <Equivalence output="SSDPMSearch" inputs="SLPSrvRequest"/>
 <Equivalence output="HTTPGet" inputs="SSDPResponse"/>
 <Equivalence output="SLPSrvReply" inputs="HTTPOk"/>
 <Delta from="SLP:s1" to="SSDP:s0"/>
 <Delta from="SSDP:s2" to="HTTP:s0">
  <Action name="setHost">
   <Arg message="SSDPResponse" xpath="/field/structuredField[label='LOCATION']/primitiveField[label='address']/value"/>
   <Arg message="SSDPResponse" xpath="/field/structuredField[label='LOCATION']/primitiveField[label='port']/value"/>
  </Action>
 </Delta>
 <Delta from="HTTP:s2" to="SLP:s1"/>
 <TranslationLogic>
  <Assignment>
   <Field><Message>SSDPMSearch</Message><Xpath>/field/primitiveField[label='ST']/value</Xpath></Field>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='SRVType']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='URLEntry']/value</Xpath></Field>
   <Field><Message>HTTPOk</Message><Xpath>/field/primitiveField[label='URLBase']/value</Xpath></Field>
  </Assignment>
  <Assignment>
   <Field><Message>SLPSrvReply</Message><Xpath>/field/primitiveField[label='XID']/value</Xpath></Field>
   <Field><Message>SLPSrvRequest</Message><Xpath>/field/primitiveField[label='XID']/value</Xpath></Field>
  </Assignment>
 </TranslationLogic>
</MergedAutomaton>`

func TestParseXMLFig4(t *testing.T) {
	m, err := ParseXMLString(fig4XML, resolver())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "slp-to-upnp" || m.Initiator != "SLP" {
		t.Fatalf("m = %+v", m)
	}
	if len(m.Deltas) != 3 || len(m.Deltas[1].Actions) != 1 {
		t.Fatalf("deltas = %+v", m.Deltas)
	}
	if m.Deltas[1].Actions[0].Name != translation.ActionSetHost {
		t.Fatalf("action = %+v", m.Deltas[1].Actions[0])
	}
	if len(m.Logic.Assignments) != 3 {
		t.Fatalf("assignments = %d", len(m.Logic.Assignments))
	}
	if len(m.Equivalences) != 3 {
		t.Fatalf("equivalences = %d", len(m.Equivalences))
	}
}

func TestParseXMLErrors(t *testing.T) {
	if _, err := ParseXMLString(`<MergedAutomaton name="x" initiator="SLP"><AutomatonRef protocol="NOPE"/></MergedAutomaton>`, resolver()); err == nil {
		t.Fatal("unresolvable automaton should fail")
	}
	if _, err := ParseXMLString(`<MergedAutomaton name="x" initiator="SLP"><AutomatonRef protocol="SLP"/><AutomatonRef protocol="SSDP"/><Delta from="bad" to="SSDP:s0"/></MergedAutomaton>`, resolver()); err == nil {
		t.Fatal("bad state ref should fail")
	}
	if _, err := ParseXMLString(`garbage`, resolver()); err == nil {
		t.Fatal("bad xml should fail")
	}
}

// TestCompileMemoized checks that Compile and EntryProtocols are
// computed once per Merged value: validation, deployment and entry
// indexing share one compilation.
func TestCompileMemoized(t *testing.T) {
	m := fig4()
	p1, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &p2[0] {
		t.Error("Compile recompiled instead of returning the memoized program")
	}
	e1, err := m.EntryProtocols()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := m.EntryProtocols()
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) != 1 {
		t.Fatalf("entries = %v", e1)
	}
	// Same map instance, not a recomputed copy.
	e1["sentinel"] = e1["SLP"]
	if _, ok := e2["sentinel"]; !ok {
		t.Error("EntryProtocols recomputed instead of returning the memoized index")
	}
	delete(e1, "sentinel")

	// Recompile bypasses the memo and yields a fresh program.
	p3, err := m.Recompile()
	if err != nil {
		t.Fatal(err)
	}
	if &p3[0] == &p1[0] {
		t.Error("Recompile returned the memoized program")
	}
	if len(p3) != len(p1) {
		t.Errorf("Recompile program differs: %d vs %d steps", len(p3), len(p1))
	}

	// Errors memoize too.
	bad := &Merged{Name: "bad", Initiator: "GHOST", Automata: []*automata.Automaton{slpA()}}
	if _, err1 := bad.Compile(); err1 == nil {
		t.Fatal("invalid merge should not compile")
	} else if _, err2 := bad.Compile(); err2 != err1 {
		t.Error("compile error was not memoized")
	}
}
