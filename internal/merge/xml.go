package merge

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"starlink/internal/automata"
	"starlink/internal/translation"
	"starlink/internal/xpath"
)

// XML form of a merged automaton:
//
//	<MergedAutomaton name="slp-to-upnp" initiator="SLP">
//	  <AutomatonRef protocol="SLP"/>
//	  <AutomatonRef protocol="SSDP"/>
//	  <AutomatonRef protocol="HTTP"/>
//	  <Equivalence output="SSDPMSearch" inputs="SLPSrvRequest"/>
//	  <Delta from="SLP:s1" to="SSDP:s0"/>
//	  <Delta from="SSDP:s2" to="HTTP:s0">
//	    <Action name="setHost">
//	      <Arg message="SSDPResponse" xpath="..."/>
//	      <Arg message="SSDPResponse" xpath="..."/>
//	    </Action>
//	  </Delta>
//	  <Delta from="HTTP:s2" to="SLP:s1"/>
//	  <TranslationLogic> ... Fig. 8 assignments ... </TranslationLogic>
//	</MergedAutomaton>
//
// AutomatonRef entries are resolved against a resolver (the model
// registry) so colored automata are modelled once per protocol and
// reused across merges, matching the paper's §V-C reuse claim.
type xmlMerged struct {
	XMLName       xml.Name         `xml:"MergedAutomaton"`
	Name          string           `xml:"name,attr"`
	Initiator     string           `xml:"initiator,attr"`
	AutomatonRefs []xmlAutomRef    `xml:"AutomatonRef"`
	Equivalences  []xmlEquivalence `xml:"Equivalence"`
	Deltas        []xmlDelta       `xml:"Delta"`
	Logic         xmlRawLogic      `xml:"TranslationLogic"`
}

type xmlAutomRef struct {
	Protocol string `xml:"protocol,attr"`
	// Name optionally selects a role-specific automaton model
	// (e.g. "slp-client" vs "slp-server" — the same protocol behaves
	// differently depending on which side of it the bridge plays).
	// Defaults to the protocol name.
	Name string `xml:"name,attr"`
}

type xmlEquivalence struct {
	Output string `xml:"output,attr"`
	Inputs string `xml:"inputs,attr"`
}

type xmlDelta struct {
	From    string      `xml:"from,attr"`
	To      string      `xml:"to,attr"`
	Actions []xmlAction `xml:"Action"`
}

type xmlAction struct {
	Name string   `xml:"name,attr"`
	Args []xmlArg `xml:"Arg"`
}

type xmlArg struct {
	Message string `xml:"message,attr"`
	Xpath   string `xml:"xpath,attr"`
}

// xmlRawLogic captures the inner XML of TranslationLogic for re-parsing
// with the translation package's decoder.
type xmlRawLogic struct {
	Inner []byte `xml:",innerxml"`
}

// Resolver supplies colored automata by protocol name.
type Resolver interface {
	AutomatonFor(protocol string) (*automata.Automaton, error)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(protocol string) (*automata.Automaton, error)

// AutomatonFor implements Resolver.
func (f ResolverFunc) AutomatonFor(protocol string) (*automata.Automaton, error) {
	return f(protocol)
}

// ParseXML loads a merged automaton, resolving member automata through
// the resolver, and validates the merge constraints.
func ParseXML(r io.Reader, res Resolver) (*Merged, error) {
	var x xmlMerged
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	m := &Merged{Name: x.Name, Initiator: x.Initiator}
	for _, ref := range x.AutomatonRefs {
		key := ref.Name
		if key == "" {
			key = ref.Protocol
		}
		a, err := res.AutomatonFor(key)
		if err != nil {
			return nil, fmt.Errorf("merge: %s: %w", x.Name, err)
		}
		if ref.Protocol != "" && a.Protocol != ref.Protocol {
			return nil, fmt.Errorf("merge: %s: automaton %q is for protocol %q, ref says %q",
				x.Name, key, a.Protocol, ref.Protocol)
		}
		m.Automata = append(m.Automata, a)
	}
	for _, e := range x.Equivalences {
		eq := Equivalence{Output: e.Output}
		for _, in := range strings.Split(e.Inputs, ",") {
			if in = strings.TrimSpace(in); in != "" {
				eq.Inputs = append(eq.Inputs, in)
			}
		}
		m.Equivalences = append(m.Equivalences, eq)
	}
	for _, d := range x.Deltas {
		from, err := ParseStateRef(d.From)
		if err != nil {
			return nil, fmt.Errorf("merge: %s: %w", x.Name, err)
		}
		to, err := ParseStateRef(d.To)
		if err != nil {
			return nil, fmt.Errorf("merge: %s: %w", x.Name, err)
		}
		delta := &Delta{From: from, To: to}
		for _, a := range d.Actions {
			act := &translation.Action{Name: a.Name}
			for _, arg := range a.Args {
				p, err := xpath.Compile(strings.TrimSpace(arg.Xpath))
				if err != nil {
					return nil, fmt.Errorf("merge: %s: δ %s->%s: %w", x.Name, d.From, d.To, err)
				}
				act.Args = append(act.Args, translation.FieldRef{Message: arg.Message, Path: p})
			}
			delta.Actions = append(delta.Actions, act)
		}
		m.Deltas = append(m.Deltas, delta)
	}
	logicXML := "<TranslationLogic>" + string(x.Logic.Inner) + "</TranslationLogic>"
	logic, err := translation.ParseLogicXMLString(logicXML)
	if err != nil {
		return nil, fmt.Errorf("merge: %s: %w", x.Name, err)
	}
	m.Logic = logic
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string, res Resolver) (*Merged, error) {
	return ParseXML(strings.NewReader(s), res)
}
