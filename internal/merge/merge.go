// Package merge implements Starlink's merged automata (paper §III-C).
// A merged automaton A_{k1...kn} connects the k-colored automata of n
// protocols with δ-transitions: edges that exchange no messages but
// perform network-layer actions λ (package translation). Interoperation
// is possible — the automata are *mergeable* — when δ-transitions
// satisfying the paper's merge constraints (2) and (3) exist, and the
// semantic equivalence operator ⊨ (eq. 1) holds between the messages an
// automaton must emit and the sequences another has received.
package merge

import (
	"fmt"
	"strings"
	"sync"

	"starlink/internal/automata"
	"starlink/internal/mdl"
	"starlink/internal/translation"
)

// StateRef names a state within one of the merged automata.
type StateRef struct {
	Protocol string
	State    string
}

// String renders "SLP:s1".
func (r StateRef) String() string { return r.Protocol + ":" + r.State }

// ParseStateRef parses "SLP:s1".
func ParseStateRef(s string) (StateRef, error) {
	i := strings.IndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return StateRef{}, fmt.Errorf("merge: bad state ref %q (want PROTOCOL:state)", s)
	}
	return StateRef{Protocol: s[:i], State: s[i+1:]}, nil
}

// Delta is a δ-transition between two automata (different colors, no
// message I/O), carrying the λ action sequence to run when taken.
type Delta struct {
	From    StateRef
	To      StateRef
	Actions []*translation.Action
}

// Equivalence declares n ⊨ m⃗: the output message (by abstract name)
// is semantically equivalent to the sequence of input messages —
// every mandatory field of Output is derivable from the Inputs.
type Equivalence struct {
	Output string
	Inputs []string
}

// Merged is a merged automaton: the automata, the δ-transitions
// connecting them, the declared equivalences and the translation logic.
// A Merged is immutable once loaded: Compile and EntryProtocols
// memoize their result on the value (every validation, engine
// deployment and entry indexing of a case shares one compilation), so
// mutating the model after the first Compile has no effect.
type Merged struct {
	// Name identifies the bridge, e.g. "slp-to-upnp".
	Name string
	// Initiator is the protocol whose incoming request opens a session;
	// the δ chain must start and end in this automaton (constraint 4).
	Initiator    string
	Automata     []*automata.Automaton
	Deltas       []*Delta
	Equivalences []Equivalence
	Logic        *translation.Logic

	// Memoized compile artifacts (see Compile / EntryProtocols).
	compileOnce sync.Once
	program     []Step
	compileErr  error
	entryOnce   sync.Once
	entries     map[string]automata.Color
	entryErr    error
}

// AutomatonFor returns the member automaton for a protocol.
func (m *Merged) AutomatonFor(protocol string) (*automata.Automaton, bool) {
	for _, a := range m.Automata {
		if a.Protocol == protocol {
			return a, true
		}
	}
	return nil, false
}

// DeltasFrom returns the δ-transitions leaving the given state.
func (m *Merged) DeltasFrom(ref StateRef) []*Delta {
	var out []*Delta
	for _, d := range m.Deltas {
		if d.From == ref {
			out = append(out, d)
		}
	}
	return out
}

// MessageNames returns the union M = ∪ M_i of abstract message names
// used by the member automata's transitions.
func (m *Merged) MessageNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range m.Automata {
		for _, t := range a.Transitions {
			if !seen[t.Message] {
				seen[t.Message] = true
				out = append(out, t.Message)
			}
		}
	}
	return out
}

// Validate checks the merged automaton against the paper's constraints:
//
//   - every member automaton is individually well-formed;
//   - δ-transitions reference existing states of distinct automata;
//   - constraint (2): a δ entering automaton A_j lands on A_j's initial
//     state, and leaves a state of A_i reached by a receive-transition
//     (the bridge has content in the state queue to translate from);
//   - constraint (3): a δ returning into an automaton leaves a final
//     state of the left automaton and enters a state with an outgoing
//     send-transition (the pending output can be emitted);
//   - constraint (4), weak merge: the δ-transitions chain the automata
//     through a directed path that starts and ends in the initiator.
func (m *Merged) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("merge: merged automaton without name")
	}
	if len(m.Automata) < 2 {
		return fmt.Errorf("merge: %s: need at least two automata", m.Name)
	}
	protos := map[string]bool{}
	for _, a := range m.Automata {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("merge: %s: %w", m.Name, err)
		}
		if protos[a.Protocol] {
			return fmt.Errorf("merge: %s: duplicate automaton for %q", m.Name, a.Protocol)
		}
		protos[a.Protocol] = true
	}
	if !protos[m.Initiator] {
		return fmt.Errorf("merge: %s: initiator %q is not a member automaton", m.Name, m.Initiator)
	}
	if len(m.Deltas) == 0 {
		return fmt.Errorf("merge: %s: no δ-transitions; automata are not merged", m.Name)
	}
	for _, d := range m.Deltas {
		if err := m.validateDelta(d); err != nil {
			return err
		}
	}
	if err := m.CheckWeaklyMerged(); err != nil {
		return err
	}
	if m.Logic == nil {
		return fmt.Errorf("merge: %s: missing translation logic", m.Name)
	}
	return nil
}

func (m *Merged) validateDelta(d *Delta) error {
	if d.From.Protocol == d.To.Protocol {
		return fmt.Errorf("merge: %s: δ %s -> %s stays within one automaton", m.Name, d.From, d.To)
	}
	fromA, ok := m.AutomatonFor(d.From.Protocol)
	if !ok {
		return fmt.Errorf("merge: %s: δ from unknown automaton %q", m.Name, d.From.Protocol)
	}
	toA, ok := m.AutomatonFor(d.To.Protocol)
	if !ok {
		return fmt.Errorf("merge: %s: δ to unknown automaton %q", m.Name, d.To.Protocol)
	}
	if _, ok := fromA.StateByName(d.From.State); !ok {
		return fmt.Errorf("merge: %s: δ from unknown state %s", m.Name, d.From)
	}
	if _, ok := toA.StateByName(d.To.State); !ok {
		return fmt.Errorf("merge: %s: δ to unknown state %s", m.Name, d.To)
	}
	for _, act := range d.Actions {
		if err := act.Validate(); err != nil {
			return fmt.Errorf("merge: %s: δ %s -> %s: %w", m.Name, d.From, d.To, err)
		}
	}

	// Constraint (2): forward δ lands on the target's initial state and
	// leaves a state reached by a receive-transition (so the state queue
	// holds content to translate). When the target automaton is in
	// *server role* (its initial transition is itself a receive), the
	// rationale does not apply — the bridge is waiting for a peer, not
	// producing an output — so the source may be send-reached. This
	// extension covers the reverse-UPnP cases where the bridge serves
	// the HTTP description itself (DESIGN.md §6). Constraint (3):
	// return δ leaves a final state and lands on a state that can send.
	if d.To.State == toA.Initial {
		received := false
		for _, t := range fromA.InTransitions(d.From.State) {
			if t.Action == automata.Receive {
				received = true
			}
		}
		targetServerRole := false
		for _, t := range toA.OutTransitions(toA.Initial) {
			if t.Action == automata.Receive {
				targetServerRole = true
			}
		}
		if !received && !targetServerRole {
			return fmt.Errorf("merge: %s: δ %s -> %s violates constraint (2): source state has no incoming receive-transition",
				m.Name, d.From, d.To)
		}
		return nil
	}
	if fromA.IsFinal(d.From.State) {
		canSend := false
		for _, t := range toA.OutTransitions(d.To.State) {
			if t.Action == automata.Send {
				canSend = true
			}
		}
		if !canSend {
			return fmt.Errorf("merge: %s: δ %s -> %s violates constraint (3): target state has no outgoing send-transition",
				m.Name, d.From, d.To)
		}
		return nil
	}
	return fmt.Errorf("merge: %s: δ %s -> %s satisfies neither merge constraint (2) nor (3): target is not initial and source is not final",
		m.Name, d.From, d.To)
}

// CheckWeaklyMerged verifies constraint (4): the δ-transitions chain
// the automata through a directed path that starts in the initiator
// and executes every transition and δ exactly once, ending in a final
// state (the formula's path s^1_{i1} δ→ s^2_0, …, s^n_n δ→ s with
// s ∈ States(A¹) ∪ States(Aⁿ)). The check runs the same deterministic
// walk the engine executes — see Compile.
func (m *Merged) CheckWeaklyMerged() error {
	_, err := m.Compile()
	return err
}

// IsStronglyMerged reports whether the automata are mergeable two by
// two (the paper's strong merge): every ordered pair of member automata
// is connected by some δ-transition in each direction along the chain.
// The paper notes this constraint is usually too strong; the case-study
// automata are weakly merged.
func (m *Merged) IsStronglyMerged() bool {
	for _, a := range m.Automata {
		for _, b := range m.Automata {
			if a.Protocol == b.Protocol {
				continue
			}
			found := false
			for _, d := range m.Deltas {
				if d.From.Protocol == a.Protocol && d.To.Protocol == b.Protocol {
					found = true
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// CheckEquivalences verifies the declared n ⊨ m⃗ relations against the
// MDL specifications (eq. 1): every *mandatory* field of the output
// message must be obtainable — either a translation-logic assignment
// targets it, or an input message carries a same-labelled field.
// specs maps protocol name to its MDL.
func (m *Merged) CheckEquivalences(specs map[string]*mdl.Spec) error {
	defFor := func(msgName string) (*mdl.MessageDef, *mdl.Spec) {
		for _, s := range specs {
			if d, ok := s.MessageByName(msgName); ok {
				return d, s
			}
		}
		return nil, nil
	}
	for _, eq := range m.Equivalences {
		outDef, _ := defFor(eq.Output)
		if outDef == nil {
			return fmt.Errorf("merge: %s: equivalence output %q not in any MDL", m.Name, eq.Output)
		}
		inputs := map[string]*mdl.MessageDef{}
		for _, in := range eq.Inputs {
			d, _ := defFor(in)
			if d == nil {
				return fmt.Errorf("merge: %s: equivalence input %q not in any MDL", m.Name, in)
			}
			inputs[in] = d
		}
		for _, mandatory := range outDef.Mandatory {
			if m.mandatoryCovered(eq, mandatory, inputs) {
				continue
			}
			return fmt.Errorf("merge: %s: %s ⊨ %v fails: mandatory field %q of %s has no semantically equivalent source",
				m.Name, eq.Output, eq.Inputs, mandatory, eq.Output)
		}
	}
	return nil
}

func (m *Merged) mandatoryCovered(eq Equivalence, field string, inputs map[string]*mdl.MessageDef) bool {
	// Covered by an explicit assignment (possibly via T)? The source
	// may be any message of the received history m⃗ — eq. 1 quantifies
	// over the stored sequence, which includes the session's earlier
	// messages (Fig. 5 line 9 takes the reply XID from the original
	// request, not from the declared input HTTPOk).
	if m.Logic != nil {
		for _, a := range m.Logic.ForTarget(eq.Output) {
			if pathTargetsLabel(a.Target.Path.String(), field) {
				return true
			}
		}
	}
	// Covered by a same-labelled field in an input message definition?
	for _, def := range inputs {
		for _, f := range def.Fields {
			if f.Label == field {
				return true
			}
		}
	}
	return false
}

// pathTargetsLabel reports whether an XPath expression's first field
// step addresses the given top-level label.
func pathTargetsLabel(expr, label string) bool {
	return strings.Contains(expr, "[label='"+label+"']") ||
		strings.Contains(expr, `[label="`+label+`"]`)
}

// ChainOrder returns the protocols in δ-chain order starting at the
// initiator (e.g. [SLP, SSDP, HTTP]); it assumes Validate passed.
func (m *Merged) ChainOrder() []string {
	order := []string{m.Initiator}
	cur := m.Initiator
	used := map[*Delta]bool{}
	for {
		var next *Delta
		for _, d := range m.Deltas {
			if !used[d] && d.From.Protocol == cur {
				next = d
				break
			}
		}
		if next == nil || next.To.Protocol == m.Initiator {
			return order
		}
		used[next] = true
		order = append(order, next.To.Protocol)
		cur = next.To.Protocol
	}
}
