// Package translation implements Starlink's translation logic
// (paper §III-D and Fig. 8). Translation logic describes how message
// content moves between semantically equivalent messages:
//
//   - assignments (eq. 5) copy a field of a stored message into a field
//     of an outgoing message: s1.m1.fa = s2.m2.fb;
//   - translation functions T (eq. 6) convert content whose types do
//     not match directly: s1.m1.fa = T(s2.m2.fb);
//   - constants parameterise outgoing messages with protocol-fixed
//     content (an M-SEARCH's MAN header) or bridge environment values
//     ("${bridge.host}") — the mechanism behind λ actions such as
//     selfLocation that must name the bridge itself;
//   - λ actions (the {λ} of δ-transitions) perform network-layer
//     transformations, e.g. setHost redirects the next connection to an
//     address carried inside a previously received message (Fig. 5,
//     line 11).
package translation

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"starlink/internal/message"
	"starlink/internal/xpath"
)

// FieldRef addresses one field of a named abstract message via an XPath
// expression (the on-disk form used by Fig. 8).
type FieldRef struct {
	// Message is the abstract message name, e.g. "SSDPMSearch".
	Message string
	// Path addresses the field inside the message.
	Path *xpath.Path
}

// String renders msg@path for diagnostics.
func (r FieldRef) String() string {
	if r.Path == nil {
		return r.Message + "@<nil>"
	}
	return r.Message + "@" + r.Path.String()
}

// Assignment is one translation step: Target.field = [Func](source).
// Exactly one of Source / Const is set.
type Assignment struct {
	Target FieldRef
	Source *FieldRef
	// Const is a literal value; "${var}" references are expanded
	// against the engine's environment at apply time.
	Const *string
	// Func names a translation function T applied to the source value.
	Func string
}

// Validate checks structural sanity at model-load time.
func (a *Assignment) Validate(funcs *FuncRegistry) error {
	if a.Target.Message == "" || a.Target.Path == nil {
		return fmt.Errorf("translation: assignment without target: %v", a.Target)
	}
	if (a.Source == nil) == (a.Const == nil) {
		return fmt.Errorf("translation: assignment to %v needs exactly one of source/const", a.Target)
	}
	if a.Source != nil && (a.Source.Message == "" || a.Source.Path == nil) {
		return fmt.Errorf("translation: assignment to %v has incomplete source", a.Target)
	}
	if a.Func != "" {
		if _, err := funcs.Lookup(a.Func); err != nil {
			return err
		}
	}
	return nil
}

// Logic is an ordered list of assignments forming the translation logic
// of one merged automaton.
type Logic struct {
	Assignments []*Assignment

	// compiled steady-state program: assignments grouped by target
	// message, with literal constants pre-built as Values. Built once
	// (Precompile / first Apply); Assignments must not be mutated after.
	compileOnce sync.Once
	byTarget    map[string][]compiledAssign
}

// compiledAssign is one assignment with its apply-time constants
// resolved ahead of time.
type compiledAssign struct {
	a *Assignment
	// constVal is the pre-built value for literal constants (no ${}
	// references); constLit marks it valid.
	constVal message.Value
	constLit bool
}

// Precompile builds the per-target assignment index so steady-state
// Apply calls do no scanning, no path parsing and no constant
// re-expansion. Called by the case compiler (merge.Compile); safe and
// cheap to call repeatedly.
func (l *Logic) Precompile() {
	l.compileOnce.Do(func() {
		byTarget := make(map[string][]compiledAssign)
		for _, a := range l.Assignments {
			ca := compiledAssign{a: a}
			if a.Const != nil && !strings.Contains(*a.Const, "${") {
				ca.constVal = message.Str(*a.Const)
				ca.constLit = true
			}
			byTarget[a.Target.Message] = append(byTarget[a.Target.Message], ca)
		}
		l.byTarget = byTarget
	})
}

// ForTarget returns the assignments whose target is the named message.
func (l *Logic) ForTarget(msgName string) []*Assignment {
	var out []*Assignment
	for _, a := range l.Assignments {
		if a.Target.Message == msgName {
			out = append(out, a)
		}
	}
	return out
}

// Validate validates every assignment.
func (l *Logic) Validate(funcs *FuncRegistry) error {
	for _, a := range l.Assignments {
		if err := a.Validate(funcs); err != nil {
			return err
		}
	}
	return nil
}

// Env supplies apply-time context: stored messages of the session and
// bridge environment variables.
type Env struct {
	// Lookup returns the most recent stored instance of a message by
	// abstract name, or nil.
	Lookup func(msgName string) *message.Message
	// Vars expands ${name} references in constants, e.g. bridge.host.
	Vars map[string]string
}

// Apply runs every assignment targeting target.Name, mutating target.
// Missing source *messages* are errors (the automaton should have
// stored them); missing source *fields* are errors too, surfacing model
// bugs rather than silently composing empty messages.
func (l *Logic) Apply(target *message.Message, env Env, funcs *FuncRegistry) error {
	l.Precompile()
	for _, ca := range l.byTarget[target.Name] {
		if err := applyOne(ca, target, env, funcs); err != nil {
			return err
		}
	}
	return nil
}

func applyOne(ca compiledAssign, target *message.Message, env Env, funcs *FuncRegistry) error {
	a := ca.a
	var v message.Value
	switch {
	case ca.constLit:
		v = ca.constVal
	case a.Const != nil:
		v = message.Str(expandVars(*a.Const, env.Vars))
	default:
		src := env.Lookup(a.Source.Message)
		if src == nil {
			return fmt.Errorf("translation: %v: source message %q not stored", a.Target, a.Source.Message)
		}
		got, err := a.Source.Path.Eval(src)
		if err != nil {
			return fmt.Errorf("translation: %v: %w", a.Target, err)
		}
		v = got
	}
	if a.Func != "" {
		fn, err := funcs.Lookup(a.Func)
		if err != nil {
			return err
		}
		out, err := fn(v)
		if err != nil {
			return fmt.Errorf("translation: %v: T %q: %w", a.Target, a.Func, err)
		}
		v = out
	}
	if err := a.Target.Path.Set(target, v); err != nil {
		return fmt.Errorf("translation: %v: %w", a.Target, err)
	}
	return nil
}

// expandVars substitutes ${name} references; unknown names expand to
// the empty string so model typos surface as visible blanks in tests.
func expandVars(s string, vars map[string]string) string {
	if !strings.Contains(s, "${") {
		return s
	}
	var sb strings.Builder
	for {
		i := strings.Index(s, "${")
		if i < 0 {
			sb.WriteString(s)
			return sb.String()
		}
		sb.WriteString(s[:i])
		rest := s[i+2:]
		j := strings.IndexByte(rest, '}')
		if j < 0 {
			sb.WriteString(s[i:])
			return sb.String()
		}
		sb.WriteString(vars[rest[:j]])
		s = rest[j+1:]
	}
}

// Func is a translation function T (paper eq. 6): it converts a value
// whose content is semantically equivalent but not directly assignable.
type Func func(message.Value) (message.Value, error)

// FuncRegistry maps T names to implementations.
type FuncRegistry struct {
	byName map[string]Func
}

// NewFuncRegistry returns a registry preloaded with the built-in
// translation functions.
func NewFuncRegistry() *FuncRegistry {
	r := &FuncRegistry{byName: make(map[string]Func)}
	r.MustRegister("identity", func(v message.Value) (message.Value, error) { return v, nil })
	r.MustRegister("to-string", toString)
	r.MustRegister("to-int", toInt)
	r.MustRegister("trim", trim)
	r.MustRegister("service-url", serviceURL)
	// Discovery-domain type-name translations (paper eq. 6): the same
	// logical service type is written "service:printer" in SLP,
	// "urn:printer" in UPnP/SSDP, and "printer.local" in DNS-SD.
	r.MustRegister("service-type-to-urn", prefixSwap("service:", "urn:"))
	r.MustRegister("urn-to-service-type", prefixSwap("urn:", "service:"))
	r.MustRegister("service-type-to-dns", toDNSName("service:"))
	r.MustRegister("dns-to-service-type", fromDNSName("service:"))
	r.MustRegister("urn-to-dns", toDNSName("urn:"))
	r.MustRegister("dns-to-urn", fromDNSName("urn:"))
	r.MustRegister("urlbase-xml", urlbaseXML)
	return r
}

// prefixSwap returns a T replacing one scheme prefix with another.
func prefixSwap(from, to string) Func {
	return func(v message.Value) (message.Value, error) {
		s, ok := v.AsString()
		if !ok {
			return message.Value{}, fmt.Errorf("prefix swap: value is %v", v.Kind())
		}
		if rest, found := strings.CutPrefix(s, from); found {
			return message.Str(to + rest), nil
		}
		return message.Str(s), nil
	}
}

// toDNSName maps "service:printer" style names to "printer.local".
func toDNSName(prefix string) Func {
	return func(v message.Value) (message.Value, error) {
		s, ok := v.AsString()
		if !ok {
			return message.Value{}, fmt.Errorf("dns name: value is %v", v.Kind())
		}
		s = strings.TrimPrefix(s, prefix)
		if s == "" {
			return message.Value{}, fmt.Errorf("dns name: empty service type")
		}
		return message.Str(s + ".local"), nil
	}
}

// fromDNSName maps "printer.local" back to "service:printer" style.
func fromDNSName(prefix string) Func {
	return func(v message.Value) (message.Value, error) {
		s, ok := v.AsString()
		if !ok {
			return message.Value{}, fmt.Errorf("dns name: value is %v", v.Kind())
		}
		s = strings.TrimSuffix(s, ".local")
		if s == "" {
			return message.Value{}, fmt.Errorf("dns name: empty name")
		}
		return message.Str(prefix + s), nil
	}
}

// urlbaseXML wraps a service URL in the minimal UPnP description
// document the bridge serves in the reverse-UPnP cases.
func urlbaseXML(v message.Value) (message.Value, error) {
	s, ok := v.AsString()
	if !ok {
		return message.Value{}, fmt.Errorf("urlbase-xml: value is %v", v.Kind())
	}
	esc := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;").Replace(s)
	return message.Str("<root><URLBase>" + esc + "</URLBase></root>"), nil
}

// Register adds a translation function.
func (r *FuncRegistry) Register(name string, fn Func) error {
	if _, exists := r.byName[name]; exists {
		return fmt.Errorf("translation: T %q already registered", name)
	}
	r.byName[name] = fn
	return nil
}

// MustRegister is Register, panicking on error; for package setup only.
func (r *FuncRegistry) MustRegister(name string, fn Func) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// Lookup returns the named translation function.
func (r *FuncRegistry) Lookup(name string) (Func, error) {
	fn, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("translation: unknown T %q", name)
	}
	return fn, nil
}

func toString(v message.Value) (message.Value, error) {
	return message.Str(v.Text()), nil
}

func toInt(v message.Value) (message.Value, error) {
	if i, ok := v.AsInt(); ok {
		return message.Int(i), nil
	}
	s, ok := v.AsString()
	if !ok {
		return message.Value{}, fmt.Errorf("cannot convert %v to int", v.Kind())
	}
	i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return message.Value{}, fmt.Errorf("cannot convert %q to int", s)
	}
	return message.Int(i), nil
}

func trim(v message.Value) (message.Value, error) {
	s, ok := v.AsString()
	if !ok {
		return v, nil
	}
	return message.Str(strings.TrimSpace(s)), nil
}

// serviceURL normalises discovery URLs: DNS-SD RDATA and UPnP URLBase
// values become SLP-style service URLs unchanged if already absolute,
// otherwise prefixed with "service:".
func serviceURL(v message.Value) (message.Value, error) {
	s, ok := v.AsString()
	if !ok {
		return message.Value{}, fmt.Errorf("service-url: value is %v", v.Kind())
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return message.Value{}, fmt.Errorf("service-url: empty value")
	}
	if strings.Contains(s, "://") || strings.HasPrefix(s, "service:") {
		return message.Str(s), nil
	}
	return message.Str("service:" + s), nil
}

// Action is a λ network action attached to a δ-transition. The network
// engine interprets actions by name; setHost is the paper's example
// (Fig. 5 line 11: redirect the next TCP connection to the host/port
// carried in a received message).
type Action struct {
	Name string
	// Args reference fields of stored messages, in the action's
	// positional order (setHost: host, port).
	Args []FieldRef
}

// Known λ action names.
const (
	ActionSetHost = "setHost"
)

// Validate checks the action is well-formed.
func (a *Action) Validate() error {
	switch a.Name {
	case ActionSetHost:
		if len(a.Args) != 2 {
			return fmt.Errorf("translation: setHost wants 2 args (host, port), got %d", len(a.Args))
		}
	default:
		return fmt.Errorf("translation: unknown λ action %q", a.Name)
	}
	for _, arg := range a.Args {
		if arg.Message == "" || arg.Path == nil {
			return fmt.Errorf("translation: λ %s has incomplete arg %v", a.Name, arg)
		}
	}
	return nil
}

// Resolve evaluates the action's arguments against stored messages.
func (a *Action) Resolve(lookup func(string) *message.Message) ([]message.Value, error) {
	out := make([]message.Value, 0, len(a.Args))
	for _, arg := range a.Args {
		src := lookup(arg.Message)
		if src == nil {
			return nil, fmt.Errorf("translation: λ %s: message %q not stored", a.Name, arg.Message)
		}
		v, err := arg.Path.Eval(src)
		if err != nil {
			return nil, fmt.Errorf("translation: λ %s: %w", a.Name, err)
		}
		out = append(out, v)
	}
	return out, nil
}
