package translation

import (
	"strings"
	"testing"

	"starlink/internal/message"
	"starlink/internal/xpath"
)

func ref(msg, path string) FieldRef {
	return FieldRef{Message: msg, Path: xpath.MustCompile(path)}
}

func stPath() string      { return "/field/primitiveField[label='ST']/value" }
func srvTypePath() string { return "/field/primitiveField[label='SRVType']/value" }

func storedSLPRequest() *message.Message {
	m := message.New("SLP", "SLPSrvRequest")
	m.AddPrimitive("SRVType", "String", message.Str("service:printer"))
	m.AddPrimitive("XID", "Integer", message.Int(99))
	return m
}

func TestApplyFieldAssignment(t *testing.T) {
	// Fig. 4 node 1: SSDP M-Search ST := SLP SrvReq ServiceType.
	src := ref("SLPSrvRequest", srvTypePath())
	logic := &Logic{Assignments: []*Assignment{
		{Target: ref("SSDPMSearch", stPath()), Source: &src},
	}}
	funcs := NewFuncRegistry()
	if err := logic.Validate(funcs); err != nil {
		t.Fatal(err)
	}
	target := message.New("SSDP", "SSDPMSearch")
	stored := storedSLPRequest()
	env := Env{Lookup: func(name string) *message.Message {
		if name == "SLPSrvRequest" {
			return stored
		}
		return nil
	}}
	if err := logic.Apply(target, env, funcs); err != nil {
		t.Fatal(err)
	}
	f, ok := target.Field("ST")
	if !ok {
		t.Fatal("ST not assigned")
	}
	if s, _ := f.Value.AsString(); s != "service:printer" {
		t.Fatalf("ST = %q", s)
	}
}

func TestApplyConstWithVars(t *testing.T) {
	c := "http://${bridge.host}:${bridge.http.port}/desc.xml"
	logic := &Logic{Assignments: []*Assignment{
		{Target: ref("SSDPResponse", "/field/primitiveField[label='LOCATION']/value"), Const: &c},
	}}
	funcs := NewFuncRegistry()
	target := message.New("SSDP", "SSDPResponse")
	env := Env{
		Lookup: func(string) *message.Message { return nil },
		Vars:   map[string]string{"bridge.host": "10.0.0.1", "bridge.http.port": "8080"},
	}
	if err := logic.Apply(target, env, funcs); err != nil {
		t.Fatal(err)
	}
	f, _ := target.Field("LOCATION")
	if s, _ := f.Value.AsString(); s != "http://10.0.0.1:8080/desc.xml" {
		t.Fatalf("LOCATION = %q", s)
	}
}

func TestApplyWithTranslationFunction(t *testing.T) {
	src := ref("DNSResponse", "/field/primitiveField[label='RDATA']/value")
	logic := &Logic{Assignments: []*Assignment{
		{Target: ref("SLPSrvReply", "/field/primitiveField[label='URLEntry']/value"),
			Source: &src, Func: "service-url"},
	}}
	funcs := NewFuncRegistry()
	stored := message.New("mDNS", "DNSResponse")
	stored.AddPrimitive("RDATA", "String", message.Str("printer._ipp.local"))
	target := message.New("SLP", "SLPSrvReply")
	env := Env{Lookup: func(name string) *message.Message { return stored }}
	if err := logic.Apply(target, env, funcs); err != nil {
		t.Fatal(err)
	}
	f, _ := target.Field("URLEntry")
	if s, _ := f.Value.AsString(); s != "service:printer._ipp.local" {
		t.Fatalf("URLEntry = %q", s)
	}
}

func TestApplyMissingSourceMessage(t *testing.T) {
	src := ref("Ghost", stPath())
	logic := &Logic{Assignments: []*Assignment{
		{Target: ref("SSDPMSearch", stPath()), Source: &src},
	}}
	target := message.New("SSDP", "SSDPMSearch")
	env := Env{Lookup: func(string) *message.Message { return nil }}
	err := logic.Apply(target, env, NewFuncRegistry())
	if err == nil || !strings.Contains(err.Error(), "not stored") {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyMissingSourceField(t *testing.T) {
	src := ref("SLPSrvRequest", "/field/primitiveField[label='Ghost']/value")
	logic := &Logic{Assignments: []*Assignment{
		{Target: ref("SSDPMSearch", stPath()), Source: &src},
	}}
	target := message.New("SSDP", "SSDPMSearch")
	stored := storedSLPRequest()
	env := Env{Lookup: func(string) *message.Message { return stored }}
	if err := logic.Apply(target, env, NewFuncRegistry()); err == nil {
		t.Fatal("missing source field should fail")
	}
}

func TestAssignmentValidate(t *testing.T) {
	funcs := NewFuncRegistry()
	src := ref("A", stPath())
	c := "x"
	tests := []struct {
		name string
		a    *Assignment
		ok   bool
	}{
		{"valid source", &Assignment{Target: ref("B", stPath()), Source: &src}, true},
		{"valid const", &Assignment{Target: ref("B", stPath()), Const: &c}, true},
		{"no source or const", &Assignment{Target: ref("B", stPath())}, false},
		{"both source and const", &Assignment{Target: ref("B", stPath()), Source: &src, Const: &c}, false},
		{"missing target", &Assignment{Source: &src}, false},
		{"unknown T", &Assignment{Target: ref("B", stPath()), Source: &src, Func: "nope"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.a.Validate(funcs)
			if (err == nil) != tt.ok {
				t.Fatalf("err = %v, ok = %v", err, tt.ok)
			}
		})
	}
}

func TestBuiltinTranslationFuncs(t *testing.T) {
	funcs := NewFuncRegistry()
	cases := []struct {
		fn   string
		in   message.Value
		want string
		ok   bool
	}{
		{"identity", message.Str("x"), "x", true},
		{"to-string", message.Int(42), "42", true},
		{"to-int", message.Str(" 17 "), "17", true},
		{"to-int", message.Str("abc"), "", false},
		{"trim", message.Str("  padded  "), "padded", true},
		{"service-url", message.Str("http://h:1/x"), "http://h:1/x", true},
		{"service-url", message.Str("printer.local"), "service:printer.local", true},
		{"service-url", message.Str("service:lpr://h"), "service:lpr://h", true},
		{"service-url", message.Str(""), "", false},
	}
	for _, tt := range cases {
		fn, err := funcs.Lookup(tt.fn)
		if err != nil {
			t.Fatalf("%s: %v", tt.fn, err)
		}
		out, err := fn(tt.in)
		if tt.ok != (err == nil) {
			t.Errorf("%s(%v): err = %v", tt.fn, tt.in, err)
			continue
		}
		if tt.ok && out.Text() != tt.want {
			t.Errorf("%s(%v) = %q, want %q", tt.fn, tt.in, out.Text(), tt.want)
		}
	}
	if _, err := funcs.Lookup("missing"); err == nil {
		t.Error("unknown T should fail")
	}
	if err := funcs.Register("identity", nil); err == nil {
		t.Error("duplicate T should fail")
	}
}

func TestExpandVars(t *testing.T) {
	vars := map[string]string{"a": "1", "b.c": "2"}
	tests := []struct{ in, want string }{
		{"plain", "plain"},
		{"${a}", "1"},
		{"x${a}y${b.c}z", "x1y2z"},
		{"${missing}", ""},
		{"${unterminated", "${unterminated"},
	}
	for _, tt := range tests {
		if got := expandVars(tt.in, vars); got != tt.want {
			t.Errorf("expandVars(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestActionSetHost(t *testing.T) {
	act := &Action{Name: ActionSetHost, Args: []FieldRef{
		ref("SSDPResponse", "/field/structuredField[label='LOCATION']/primitiveField[label='address']/value"),
		ref("SSDPResponse", "/field/structuredField[label='LOCATION']/primitiveField[label='port']/value"),
	}}
	if err := act.Validate(); err != nil {
		t.Fatal(err)
	}
	stored := message.New("SSDP", "SSDPResponse")
	stored.Add(&message.Field{Label: "LOCATION", Children: []*message.Field{
		{Label: "address", Value: message.Str("10.0.0.7")},
		{Label: "port", Value: message.Int(5431)},
	}})
	vals, err := act.Resolve(func(string) *message.Message { return stored })
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("vals = %d", len(vals))
	}
	if s, _ := vals[0].AsString(); s != "10.0.0.7" {
		t.Errorf("host = %q", s)
	}
	if p, _ := vals[1].AsInt(); p != 5431 {
		t.Errorf("port = %d", p)
	}
}

func TestActionValidateErrors(t *testing.T) {
	if err := (&Action{Name: "teleport"}).Validate(); err == nil {
		t.Error("unknown action should fail")
	}
	if err := (&Action{Name: ActionSetHost, Args: []FieldRef{ref("A", stPath())}}).Validate(); err == nil {
		t.Error("setHost with 1 arg should fail")
	}
}

func TestActionResolveMissingMessage(t *testing.T) {
	act := &Action{Name: ActionSetHost, Args: []FieldRef{ref("A", stPath()), ref("A", stPath())}}
	if _, err := act.Resolve(func(string) *message.Message { return nil }); err == nil {
		t.Fatal("missing stored message should fail")
	}
}

const fig8XML = `
<TranslationLogic>
 <Assignment>
  <Field>
   <Message>SSDPMSearch</Message>
   <Xpath>/field/primitiveField[label='ST']/value</Xpath>
  </Field>
  <Field>
   <Message>SLPSrvRequest</Message>
   <Xpath>/field/primitiveField[label='SRVType']/value</Xpath>
  </Field>
 </Assignment>
 <Assignment>
  <Field>
   <Message>SSDPMSearch</Message>
   <Xpath>/field/primitiveField[label='MAN']/value</Xpath>
  </Field>
  <Value>"ssdp:discover"</Value>
 </Assignment>
 <Assignment function="service-url">
  <Field>
   <Message>SLPSrvReply</Message>
   <Xpath>/field/primitiveField[label='URLEntry']/value</Xpath>
  </Field>
  <Field>
   <Message>HTTPOk</Message>
   <Xpath>/field/primitiveField[label='URLBase']/value</Xpath>
  </Field>
 </Assignment>
</TranslationLogic>`

func TestParseLogicXMLFig8(t *testing.T) {
	logic, err := ParseLogicXMLString(fig8XML)
	if err != nil {
		t.Fatal(err)
	}
	if len(logic.Assignments) != 3 {
		t.Fatalf("assignments = %d", len(logic.Assignments))
	}
	a := logic.Assignments[0]
	if a.Target.Message != "SSDPMSearch" || a.Source.Message != "SLPSrvRequest" {
		t.Fatalf("a = %+v", a)
	}
	b := logic.Assignments[1]
	if b.Const == nil || *b.Const != `"ssdp:discover"` {
		t.Fatalf("b = %+v", b)
	}
	c := logic.Assignments[2]
	if c.Func != "service-url" {
		t.Fatalf("c = %+v", c)
	}
	if err := logic.Validate(NewFuncRegistry()); err != nil {
		t.Fatal(err)
	}
	if got := len(logic.ForTarget("SSDPMSearch")); got != 2 {
		t.Fatalf("ForTarget = %d", got)
	}
}

func TestParseLogicXMLErrors(t *testing.T) {
	bad := []string{
		`<TranslationLogic><Assignment></Assignment></TranslationLogic>`,
		`<TranslationLogic><Assignment><Field><Message>A</Message><Xpath>/field/primitiveField[label='x']/value</Xpath></Field></Assignment></TranslationLogic>`,
		`<TranslationLogic><Assignment><Field><Message>A</Message><Xpath>bad path</Xpath></Field><Value>v</Value></Assignment></TranslationLogic>`,
		`<TranslationLogic><Assignment><Field><Xpath>/field/primitiveField[label='x']/value</Xpath></Field><Value>v</Value></Assignment></TranslationLogic>`,
		`not xml`,
	}
	for i, x := range bad {
		if _, err := ParseLogicXMLString(x); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
