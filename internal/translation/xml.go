package translation

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"starlink/internal/xpath"
)

// XML representation of translation logic, the Fig. 8 format:
//
//	<TranslationLogic>
//	  <Assignment function="service-url">
//	    <Field>
//	      <Message>SSDPMSearch</Message>
//	      <Xpath>/field/primitiveField[label='ST']/value</Xpath>
//	    </Field>
//	    <Field>
//	      <Message>SLPSrvRequest</Message>
//	      <Xpath>/field/primitiveField[label='SRVType']/value</Xpath>
//	    </Field>
//	  </Assignment>
//	  <Assignment>
//	    <Field>...</Field>
//	    <Value>HTTP/1.1</Value>
//	  </Assignment>
//	</TranslationLogic>
//
// The first <Field> is the assignment target, the second the source
// (paper §IV-B: "the engine reads the value from the second field ...
// and then writes the content to the abstract message whose field is
// pointed to by the first field node").
type xmlLogic struct {
	XMLName     xml.Name        `xml:"TranslationLogic"`
	Assignments []xmlAssignment `xml:"Assignment"`
}

type xmlAssignment struct {
	Function string     `xml:"function,attr"`
	Fields   []xmlField `xml:"Field"`
	Value    *string    `xml:"Value"`
}

type xmlField struct {
	Message string `xml:"Message"`
	Xpath   string `xml:"Xpath"`
}

// ParseLogicXML reads translation logic from its XML form.
func ParseLogicXML(r io.Reader) (*Logic, error) {
	var x xmlLogic
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("translation: %w", err)
	}
	return logicFromXML(x)
}

// ParseLogicXMLString is ParseLogicXML over a string.
func ParseLogicXMLString(s string) (*Logic, error) {
	return ParseLogicXML(strings.NewReader(s))
}

func logicFromXML(x xmlLogic) (*Logic, error) {
	l := &Logic{}
	for i, xa := range x.Assignments {
		a := &Assignment{Func: xa.Function}
		if len(xa.Fields) == 0 {
			return nil, fmt.Errorf("translation: assignment %d has no target field", i)
		}
		target, err := fieldRefFromXML(xa.Fields[0])
		if err != nil {
			return nil, fmt.Errorf("translation: assignment %d target: %w", i, err)
		}
		a.Target = target
		switch {
		case len(xa.Fields) >= 2 && xa.Value != nil:
			return nil, fmt.Errorf("translation: assignment %d has both source field and value", i)
		case len(xa.Fields) >= 2:
			src, err := fieldRefFromXML(xa.Fields[1])
			if err != nil {
				return nil, fmt.Errorf("translation: assignment %d source: %w", i, err)
			}
			a.Source = &src
		case xa.Value != nil:
			v := *xa.Value
			a.Const = &v
		default:
			return nil, fmt.Errorf("translation: assignment %d has no source", i)
		}
		l.Assignments = append(l.Assignments, a)
	}
	return l, nil
}

func fieldRefFromXML(x xmlField) (FieldRef, error) {
	if x.Message == "" {
		return FieldRef{}, fmt.Errorf("field without message name")
	}
	p, err := xpath.Compile(strings.TrimSpace(x.Xpath))
	if err != nil {
		return FieldRef{}, err
	}
	return FieldRef{Message: x.Message, Path: p}, nil
}
